package core

import (
	"context"
	"time"

	"ulipc/internal/obs"
)

// Vectored (batched) variants of Send/Receive/Reply. The scalar
// protocol pays one wake-up per message; these paths move k messages
// per semaphore V — one wake-up, one enqueue burst, k messages — the
// same way AllocN amortises pool CASes. The wake-token accounting is
// unchanged from the scalar Figure 4 protocol: a producer issues at
// most one V per TAS-cleared awake flag regardless of how many
// messages the burst carried, and the consumer's TAS-drain on the
// dequeue success path still retires any redundant token, so batching
// cannot leak or lose wakes (DESIGN.md §10 walks the accounting).

// BatchPort is an optional Port extension: an endpoint that can accept
// a burst of messages with one routing/locking decision. TryEnqueueBatch
// appends a prefix of ms and returns how many were taken (0 when full).
// Ports without the extension fall back to per-message TryEnqueue.
type BatchPort interface {
	TryEnqueueBatch(ms []Msg) int
}

// tryEnqueueBatch appends a prefix of ms to q, via the port's vectored
// path when it has one.
func tryEnqueueBatch(q Port, ms []Msg) int {
	if bp, ok := q.(BatchPort); ok {
		return bp.TryEnqueueBatch(ms)
	}
	n := 0
	for _, m := range ms {
		if !q.TryEnqueue(m) {
			break
		}
		n++
	}
	return n
}

// SendBatch sends every message in msgs and returns the replies (in
// arrival order, which under a sharded server is not necessarily send
// order). One wake-up is issued per enqueue burst, not per message.
// Fewer replies than requests means the system shut down mid-batch —
// the missing replies are the shutdown marker's territory, exactly as
// a scalar Send would have returned it.
func (c *Client) SendBatch(msgs []Msg) []Msg {
	if len(msgs) == 0 {
		return nil
	}
	for i := range msgs {
		msgs[i].Client = c.ID
	}
	for c.lag > 0 {
		if stale := c.recvReply(); stale.Op == OpShutdown && stale.Client < 0 {
			return nil
		}
		c.lag--
	}
	obsOn := c.Obs.Enabled()
	var t0 time.Time
	if obsOn {
		c.Obs.Note(obs.EvSend, int64(msgs[0].Seq))
		t0 = time.Now()
		c.Obs.Batch(len(msgs))
	}
	out := make([]Msg, 0, len(msgs))
	sent := 0
	for sent < len(msgs) {
		if portRefusing(c.Srv) {
			break
		}
		n := tryEnqueueBatch(c.Srv, msgs[sent:])
		if n > 0 {
			sent += n
			if c.Alg != BSS {
				wakeConsumer(c.Srv, c.A)
			}
			continue
		}
		// Request queue full. When the batch is larger than the queues,
		// progress requires consuming replies while requests are still
		// being fed in — collect any that are ready before napping, or a
		// batch of k > cap(request)+cap(reply) would deadlock.
		if len(out) < sent {
			if m, ok := c.Rcv.TryDequeue(); ok {
				out = append(out, m)
				continue
			}
		}
		if portClosed(c.Srv) {
			break
		}
		if c.Alg == BSS {
			c.A.BusyWait()
		} else {
			c.A.SleepSec(1)
		}
	}
	for len(out) < sent {
		m := c.recvReply()
		if m.Op == OpShutdown && m.Client < 0 {
			c.lag += sent - len(out)
			break
		}
		out = append(out, m)
	}
	if c.M != nil {
		c.M.MsgsSent.Add(int64(sent))
	}
	if obsOn {
		c.Obs.RTT(time.Since(t0))
		if len(out) > 0 {
			c.Obs.Note(obs.EvRecv, int64(out[len(out)-1].Seq))
		}
	}
	return out
}

// SendBatchCtx is SendBatch with deadline/cancellation support. On a
// context error the replies already collected are returned alongside
// the error; replies still owed for enqueued requests are tracked as
// lag and drained by the next Send/SendCtx/SendBatch on this handle,
// exactly like a cancelled scalar SendCtx.
func (c *Client) SendBatchCtx(ctx context.Context, msgs []Msg) ([]Msg, error) {
	if c.disconnected {
		return nil, ErrDisconnected
	}
	if len(msgs) == 0 {
		return nil, nil
	}
	for i := range msgs {
		msgs[i].Client = c.ID
	}
	for c.lag > 0 {
		if _, err := c.recvReplyCtx(ctx); err != nil {
			return nil, err
		}
		c.lag--
	}
	if err := c.admit(); err != nil {
		return nil, err
	}
	ca, _ := c.A.(CtxActor)
	obsOn := c.Obs.Enabled()
	var t0 time.Time
	if obsOn {
		c.Obs.Note(obs.EvSend, int64(msgs[0].Seq))
		t0 = time.Now()
		c.Obs.Batch(len(msgs))
	}
	out := make([]Msg, 0, len(msgs))
	sent := 0
	var bo backoff
	fail := func(err error) ([]Msg, error) {
		c.lag += sent - len(out)
		if c.M != nil {
			c.M.MsgsSent.Add(int64(sent))
		}
		return out, err
	}
	for sent < len(msgs) {
		if portRefusing(c.Srv) {
			return fail(shutdownErr(c.Srv))
		}
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		n := tryEnqueueBatch(c.Srv, msgs[sent:])
		if n > 0 {
			sent += n
			c.Budget.credit()
			bo.reset()
			if c.Alg != BSS {
				wakeConsumer(c.Srv, c.A)
			}
			continue
		}
		if len(out) < sent {
			if m, ok := c.Rcv.TryDequeue(); ok {
				out = append(out, m)
				continue
			}
		}
		if err := bo.sleep(ctx, ca, c.Budget, c.M); err != nil {
			return fail(err)
		}
	}
	for len(out) < sent {
		m, err := c.recvReplyCtx(ctx)
		if err != nil {
			return fail(err)
		}
		out = append(out, m)
	}
	if c.M != nil {
		c.M.MsgsSent.Add(int64(sent))
	}
	if obsOn {
		c.Obs.RTT(time.Since(t0))
		if len(out) > 0 {
			c.Obs.Note(obs.EvRecv, int64(out[len(out)-1].Seq))
		}
	}
	return out, nil
}

// ReceiveBatch receives up to len(buf) requests: one blocking Receive
// for the head, then a non-blocking drain of whatever else is already
// queued — the batching a single wake-up pays for. It returns the
// number of messages stored. A shutdown marker (from the blocking
// head receive) is stored like any message; the drain itself can never
// fabricate one, since markers are synthesised, not queued.
func (s *Server) ReceiveBatch(buf []Msg) int {
	if len(buf) == 0 {
		return 0
	}
	m := s.Receive()
	buf[0] = m
	if m.Op == OpShutdown && m.Client < 0 && portClosed(s.Rcv) {
		return 1
	}
	n := s.drainInto(buf, 1)
	if s.Obs.Enabled() {
		s.Obs.Batch(n)
	}
	return n
}

// ReceiveBatchCtx is ReceiveBatch with deadline/cancellation support on
// the blocking head receive (the drain is non-blocking already).
func (s *Server) ReceiveBatchCtx(ctx context.Context, buf []Msg) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	m, err := s.ReceiveCtx(ctx)
	if err != nil {
		return 0, err
	}
	buf[0] = m
	n := s.drainInto(buf, 1)
	if s.Obs.Enabled() {
		s.Obs.Batch(n)
	}
	return n, nil
}

// drainInto fills buf[from:] with already-queued requests, applying the
// same per-message accounting as Receive (count, wake retirement,
// outstanding-request audit, deadline shed), and returns the new
// length. Shed messages are dropped in place, not stored — the burst
// just comes up shorter.
func (s *Server) drainInto(buf []Msg, from int) int {
	n := from
	for n < len(buf) {
		m, ok := s.Rcv.TryDequeue()
		if !ok {
			break
		}
		if s.M != nil {
			s.M.MsgsReceived.Add(1)
		}
		s.retireWake(m.Client)
		if s.shed(m) {
			continue
		}
		if s.ValidClient(m.Client) {
			s.noteReceived(m.Client)
		}
		buf[n] = m
		n++
	}
	return n
}

// Reply pairs a response message with its destination client for
// ReplyBatch.
type Reply struct {
	Client int32
	Msg    Msg
}

// ReplyBatch enqueues every reply, then issues at most one wake-up per
// distinct destination client — the reply-side half of the k-messages-
// per-V amortisation. Control-path replies (connect/disconnect) keep
// their immediate, throttle-bypassing wake, as in scalar Reply.
// Replies to invalid client numbers are dropped, as in scalar Reply.
func (s *Server) ReplyBatch(batch []Reply) {
	if len(batch) == 0 {
		return
	}
	touched := s.markClients(batch)
	if s.Obs.Enabled() {
		s.Obs.Batch(len(batch))
	}
	for _, c := range touched {
		s.pendWake[c] = false
		s.wakeClient(c)
	}
}

// markClients enqueues the batch and returns the distinct data-path
// clients still owed a wake. Scratch state lives on the Server so the
// hot path stays allocation-free.
func (s *Server) markClients(batch []Reply) []int32 {
	if len(s.pendWake) < len(s.Replies) {
		s.pendWake = make([]bool, len(s.Replies))
	}
	touched := s.touched[:0]
	for _, r := range batch {
		if !s.ValidClient(r.Client) {
			continue
		}
		s.noteReplied(r.Client)
		q := s.Replies[r.Client]
		if s.Alg == BSS {
			busySpinUntil(s.A, q, func() bool { return q.TryEnqueue(r.Msg) })
			continue
		}
		if !enqueueOrSleepObs(q, s.A, r.Msg, s.Obs) {
			continue // shutdown: the client is being unblocked anyway
		}
		if r.Msg.Op == OpConnect || r.Msg.Op == OpDisconnect {
			wakeConsumer(q, s.A)
			continue
		}
		if !s.pendWake[r.Client] {
			s.pendWake[r.Client] = true
			touched = append(touched, r.Client)
		}
	}
	s.touched = touched
	return touched
}

// ReplyBatchCtx is ReplyBatch with deadline/cancellation support and
// the ReplyCtx misuse audit. Replies with no outstanding request are
// skipped and reported as ErrDoubleReply after the rest of the batch
// has been delivered; an enqueue failure (shutdown, context) stops the
// batch, flushes the wakes already owed, and returns that error.
func (s *Server) ReplyBatchCtx(ctx context.Context, batch []Reply) error {
	if len(batch) == 0 {
		return nil
	}
	if len(s.pendWake) < len(s.Replies) {
		s.pendWake = make([]bool, len(s.Replies))
	}
	touched := s.touched[:0]
	flush := func() {
		for _, c := range touched {
			s.pendWake[c] = false
			s.wakeClient(c)
		}
		s.touched = touched[:0]
	}
	var firstErr error
	for _, r := range batch {
		if !s.ValidClient(r.Client) || s.outstanding == nil || s.outstanding[r.Client] <= 0 {
			if firstErr == nil {
				firstErr = ErrDoubleReply
			}
			continue
		}
		q := s.Replies[r.Client]
		if s.Alg == BSS {
			if err := spinEnqueueCtx(ctx, s.A, q, r.Msg); err != nil {
				flush()
				return err
			}
			s.noteReplied(r.Client)
			continue
		}
		if err := enqueueOrSleepCtxObs(ctx, q, s.A, r.Msg, s.M, nil, s.Obs); err != nil {
			flush()
			return err
		}
		s.noteReplied(r.Client)
		if r.Msg.Op == OpConnect || r.Msg.Op == OpDisconnect {
			wakeConsumer(q, s.A)
			continue
		}
		if !s.pendWake[r.Client] {
			s.pendWake[r.Client] = true
			touched = append(touched, r.Client)
		}
	}
	if s.Obs.Enabled() {
		s.Obs.Batch(len(batch))
	}
	flush()
	return firstErr
}

// ServeBatch is the vectored Serve loop: ReceiveBatch up to batch
// requests per wake-up, process them, ReplyBatch the responses with
// one wake per client. Exit conditions match Serve: the shutdown
// marker, or every connected client having disconnected. Requests
// already drained when a disconnect empties the connection count are
// still answered before the loop exits.
func (s *Server) ServeBatch(work func(*Msg), batch int) (served int64) {
	if batch < 1 {
		batch = 1
	}
	buf := make([]Msg, batch)
	out := make([]Reply, 0, batch)
	connected := 0
	everConnected := false
	for {
		n := s.ReceiveBatch(buf)
		out = out[:0]
		stop := false
		for i := 0; i < n; i++ {
			m := buf[i]
			if m.Op == OpShutdown && m.Client < 0 && portClosed(s.Rcv) {
				stop = true
				break
			}
			if !s.ValidClient(m.Client) {
				continue
			}
			switch m.Op {
			case OpConnect:
				connected++
				everConnected = true
				s.connected = connected
				s.Reply(m.Client, m)
			case OpDisconnect:
				connected--
				s.connected = connected
				s.Reply(m.Client, m)
				if everConnected && connected == 0 {
					stop = true
				}
			default:
				if m.Op == OpWork && work != nil {
					work(&m)
				}
				served++
				out = append(out, Reply{Client: m.Client, Msg: m})
			}
		}
		s.ReplyBatch(out)
		if stop {
			return served
		}
	}
}

// ServeBatchCtx is ServeBatch with deadline/cancellation support: a
// graceful shutdown ends the loop with a nil error (matching ServeCtx),
// a context end returns ctx.Err().
func (s *Server) ServeBatchCtx(ctx context.Context, work func(*Msg), batch int) (served int64, err error) {
	if batch < 1 {
		batch = 1
	}
	buf := make([]Msg, batch)
	out := make([]Reply, 0, batch)
	connected := 0
	everConnected := false
	for {
		n, rerr := s.ReceiveBatchCtx(ctx, buf)
		if rerr != nil {
			if rerr == ErrShutdown {
				return served, nil
			}
			return served, rerr
		}
		out = out[:0]
		stop := false
		for i := 0; i < n; i++ {
			m := buf[i]
			if m.Op == OpShutdown && m.Client < 0 && portClosed(s.Rcv) {
				stop = true
				break
			}
			if !s.ValidClient(m.Client) {
				continue
			}
			switch m.Op {
			case OpConnect:
				connected++
				everConnected = true
				s.connected = connected
				s.Reply(m.Client, m)
			case OpDisconnect:
				connected--
				s.connected = connected
				s.Reply(m.Client, m)
				if everConnected && connected == 0 {
					stop = true
				}
			default:
				if m.Op == OpWork && work != nil {
					work(&m)
				}
				served++
				out = append(out, Reply{Client: m.Client, Msg: m})
			}
		}
		s.ReplyBatch(out)
		if stop {
			return served, nil
		}
	}
}
