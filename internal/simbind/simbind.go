// Package simbind binds the protocol code of internal/core to the
// discrete-event kernel of internal/sim. Every shared-memory operation
// (queue op, awake-flag access) is a timed step, so operations from
// different simulated processes interleave at the same granularity the
// paper's race analysis (Figure 4) considers, and multiprocessor lock
// contention on the two-lock queue is modelled in virtual time.
package simbind

import (
	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/sim"
)

// spinLock models one lock of the Michael & Scott two-lock queue: it is
// considered held until freeAt; an acquirer whose attempt lands earlier
// spins (consuming virtual CPU) until then. On a uniprocessor the engine
// serialises steps so the lock never spins; on the multiprocessor model
// it captures queue-op serialisation between CPUs.
type spinLock struct {
	freeAt sim.Time
}

func (l *spinLock) acquire(p *sim.Proc, opCost, hold sim.Time) {
	p.Step(opCost)
	for l.freeAt > p.Now() {
		p.Step(l.freeAt - p.Now())
	}
	l.freeAt = p.Now() + hold
}

// SQueue is a simulated shared-memory FIFO queue with the consumer-side
// wake state (awake flag + counting semaphore) the protocols need. The
// head and tail locks follow the two-lock queue: enqueuers and dequeuers
// do not contend with each other.
type SQueue struct {
	name     string
	capacity int
	msgs     []core.Msg
	headLock spinLock
	tailLock spinLock
	awake    bool
	waiters  int // worker-pool registrations (counted-waiters discipline)
	sem      sim.SemID

	// Enqueues and Dequeues count successful operations (diagnostics).
	Enqueues int64
	Dequeues int64
}

// NewQueue creates a simulated shared queue with the given capacity (the
// size of the fixed-message free pool) whose consumer sleeps on a fresh
// kernel semaphore. The awake flag starts true: a consumer is awake until
// it declares otherwise.
func NewQueue(k *sim.Kernel, name string, capacity int) *SQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &SQueue{
		name:     name,
		capacity: capacity,
		awake:    true,
		sem:      k.NewSem(0),
	}
}

// Name returns the queue's diagnostic name.
func (q *SQueue) Name() string { return q.name }

// Len returns the current number of queued messages.
func (q *SQueue) Len() int { return len(q.msgs) }

// Port is a process's endpoint on a simulated shared queue. It implements
// core.Port, charging the machine model's primitive costs per operation.
type Port struct {
	q    *SQueue
	p    *sim.Proc
	mach *machine.Model
}

// NewPort returns p's endpoint view of q.
func NewPort(p *sim.Proc, q *SQueue) *Port {
	return &Port{q: q, p: p, mach: p.Kernel().Machine()}
}

// TryEnqueue implements core.Port.
func (sp *Port) TryEnqueue(m core.Msg) bool {
	sp.q.tailLock.acquire(sp.p, sp.mach.EnqueueCost, sp.mach.LockHold)
	if len(sp.q.msgs) >= sp.q.capacity {
		return false
	}
	sp.q.msgs = append(sp.q.msgs, m)
	sp.q.Enqueues++
	return true
}

// TryDequeue implements core.Port.
func (sp *Port) TryDequeue() (core.Msg, bool) {
	sp.q.headLock.acquire(sp.p, sp.mach.DequeueCost, sp.mach.LockHold)
	if len(sp.q.msgs) == 0 {
		return core.Msg{}, false
	}
	m := sp.q.msgs[0]
	sp.q.msgs = sp.q.msgs[1:]
	sp.q.Dequeues++
	return m, true
}

// Empty implements core.Port (the BSLS non-destructive poll).
func (sp *Port) Empty() bool {
	sp.p.Step(sp.mach.EmptyCost)
	return len(sp.q.msgs) == 0
}

// SetAwake implements core.Port.
func (sp *Port) SetAwake(v bool) {
	sp.p.Step(sp.mach.StoreCost)
	sp.q.awake = v
}

// TASAwake implements core.Port.
func (sp *Port) TASAwake() bool {
	sp.p.Step(sp.mach.TASCost)
	old := sp.q.awake
	sp.q.awake = true
	return old
}

// Sem implements core.Port.
func (sp *Port) Sem() core.SemID { return core.SemID(sp.q.sem) }

// Actor adapts a simulated process to core.Actor.
type Actor struct {
	p    *sim.Proc
	mach *machine.Model
}

// NewActor returns the core.Actor view of a simulated process.
func NewActor(p *sim.Proc) *Actor {
	return &Actor{p: p, mach: p.Kernel().Machine()}
}

// Yield implements core.Actor.
func (a *Actor) Yield() { a.p.Yield() }

// BusyWait implements core.Actor: yield() on a uniprocessor, a fixed
// delay loop on a multiprocessor (Section 4.1: "the software is identical
// ... except that busy-waiting is implemented as a yield() system call on
// the uniprocessor and as a busy-wait delay loop on the multiprocessor").
func (a *Actor) BusyWait() {
	if a.mach.BusyWaitSpin {
		a.p.Step(a.mach.SpinPollCost)
		return
	}
	a.p.Yield()
}

// PollDelay implements core.Actor (one poll_queue iteration).
func (a *Actor) PollDelay() { a.BusyWait() }

// SleepSec implements core.Actor.
func (a *Actor) SleepSec(s int) { a.p.SleepSec(s) }

// P implements core.Actor.
func (a *Actor) P(id core.SemID) { a.p.SemP(sim.SemID(id)) }

// V implements core.Actor.
func (a *Actor) V(id core.SemID) { a.p.SemV(sim.SemID(id)) }

// Handoff implements core.Actor, mapping the protocol-level targets onto
// the kernel's handoff system call.
func (a *Actor) Handoff(target int) {
	switch target {
	case core.HandoffSelf:
		a.p.Handoff(sim.PIDSelf)
	case core.HandoffAny:
		a.p.Handoff(sim.PIDAny)
	default:
		a.p.Handoff(target)
	}
}

var (
	_ core.Port  = (*Port)(nil)
	_ core.Actor = (*Actor)(nil)
)

// PoolPort is a process's endpoint on a simulated shared queue whose
// consumer side is a worker pool (counted waiters instead of the single
// awake flag). It implements core.PoolPort.
type PoolPort struct {
	q    *SQueue
	p    *sim.Proc
	mach *machine.Model
}

// NewPoolPort returns p's pool-endpoint view of q.
func NewPoolPort(p *sim.Proc, q *SQueue) *PoolPort {
	return &PoolPort{q: q, p: p, mach: p.Kernel().Machine()}
}

// TryEnqueue implements core.PoolPort.
func (sp *PoolPort) TryEnqueue(m core.Msg) bool {
	return (&Port{q: sp.q, p: sp.p, mach: sp.mach}).TryEnqueue(m)
}

// TryDequeue implements core.PoolPort.
func (sp *PoolPort) TryDequeue() (core.Msg, bool) {
	return (&Port{q: sp.q, p: sp.p, mach: sp.mach}).TryDequeue()
}

// Empty implements core.PoolPort.
func (sp *PoolPort) Empty() bool {
	return (&Port{q: sp.q, p: sp.p, mach: sp.mach}).Empty()
}

// RegisterWaiter implements core.PoolPort (an atomic increment on shared
// memory: test-and-set weight).
func (sp *PoolPort) RegisterWaiter() {
	sp.p.Step(sp.mach.TASCost)
	sp.q.waiters++
}

// TryUnregisterWaiter implements core.PoolPort.
func (sp *PoolPort) TryUnregisterWaiter() bool {
	sp.p.Step(sp.mach.TASCost)
	if sp.q.waiters > 0 {
		sp.q.waiters--
		return true
	}
	return false
}

// ClaimWaiter implements core.PoolPort.
func (sp *PoolPort) ClaimWaiter() bool {
	sp.p.Step(sp.mach.TASCost)
	if sp.q.waiters > 0 {
		sp.q.waiters--
		return true
	}
	return false
}

// Sem implements core.PoolPort.
func (sp *PoolPort) Sem() core.SemID { return core.SemID(sp.q.sem) }

var _ core.PoolPort = (*PoolPort)(nil)
