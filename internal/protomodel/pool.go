package protomodel

import "fmt"

// Multi-consumer extension: Section 2.1 contemplates "multiple clients
// and multiple server threads" on the shared queues, but the paper's
// protocol tracks the consumer side with a single boolean awake flag —
// which cannot represent two sleeping workers. PoolCheck model-checks
// the multi-consumer case for two consumer-side disciplines:
//
//   - SharedFlag: the paper's protocol verbatim, flag shared by all
//     consumers. Exhaustive exploration finds the lost-wakeup deadlock
//     (one V wakes one worker; the flag — now set — suppresses the wake
//     for the second sleeping worker even though its message is queued).
//   - Counted waiters (SharedFlag=false): the fix used by
//     internal/core's worker pool — a waiter counter; producers claim a
//     waiter (atomic decrement) before issuing V, consumers register
//     before their re-check and drain the pending V if they were claimed
//     after finding a message anyway.
type PoolConfig struct {
	Consumers int // worker pool size (1..maxConsumers)
	Producers int
	Msgs      int // per producer; Producers*Msgs must divide by Consumers

	// SharedFlag selects the paper's single-awake-flag discipline;
	// false selects the counted-waiters discipline.
	SharedFlag bool
}

const maxConsumers = 2

// Pool consumer program counters.
const (
	pcTop    = iota // dequeue attempt
	pcReg           // clear flag / register as waiter
	pcDeq2          // second dequeue attempt
	pcUnreg         // counted: try to unregister after a late success
	pcDrainP        // consume the claimed V
	pcSleep         // P()
	pcWake          // counted: nothing; shared: set flag
	pcDone
)

// poolState is the exploration state for the pool model.
type poolState struct {
	queue    int8
	flag     bool // shared-flag discipline
	waiters  int8 // counted discipline
	sem      int8
	consumed int8

	cpc [maxConsumers]int8
	// cnt is each worker's consumption count. Workers exit at their
	// quota (total/consumers): a finished worker cannot cover for a
	// sleeping sibling, which is what exposes the shared-flag hazard —
	// with a single immortal worker any wake-up drains the whole queue
	// and the flaw stays hidden.
	cnt  [maxConsumers]int8
	ppc  [maxProducers]int8
	sent [maxProducers]int8
}

// PoolCheck exhaustively explores the multi-consumer protocol variant.
func PoolCheck(cfg PoolConfig) (Result, error) {
	if cfg.Consumers < 1 || cfg.Consumers > maxConsumers {
		return Result{}, fmt.Errorf("protomodel: consumers must be in [1,%d]", maxConsumers)
	}
	if cfg.Producers < 1 || cfg.Producers > maxProducers {
		return Result{}, fmt.Errorf("protomodel: producers must be in [1,%d]", maxProducers)
	}
	if cfg.Msgs < 1 || cfg.Msgs > 3 {
		return Result{}, fmt.Errorf("protomodel: msgs must be in [1,3]")
	}
	total := cfg.Producers * cfg.Msgs
	if total%cfg.Consumers != 0 {
		return Result{}, fmt.Errorf("protomodel: total messages (%d) must divide by consumers (%d)", total, cfg.Consumers)
	}
	c := &poolChecker{
		cfg: cfg, target: int8(total), quota: int8(total / cfg.Consumers),
		seen: map[poolState]bool{}, allConsumed: true,
	}
	init := poolState{flag: true}
	for i := 0; i < cfg.Consumers; i++ {
		init.cpc[i] = pcTop
	}
	for i := cfg.Consumers; i < maxConsumers; i++ {
		init.cpc[i] = pcDone
	}
	for i := 0; i < cfg.Producers; i++ {
		init.ppc[i] = pEnq
	}
	c.explore(init, nil)
	c.res.States = len(c.seen)
	c.res.AllConsumed = c.res.Terminal > 0 && c.allConsumed
	return c.res, nil
}

type poolChecker struct {
	cfg         PoolConfig
	target      int8
	quota       int8 // per-worker consumption before it leaves the pool
	seen        map[poolState]bool
	res         Result
	allConsumed bool
}

func (c *poolChecker) explore(s poolState, path []string) {
	if c.seen[s] {
		return
	}
	c.seen[s] = true
	if int(s.sem) > c.res.MaxSem {
		c.res.MaxSem = int(s.sem)
	}
	moved := false
	for i := 0; i < c.cfg.Consumers; i++ {
		if ns, label, ok := c.stepConsumer(s, i); ok {
			moved = true
			c.explore(ns, pathAppend(path, label))
		}
	}
	for i := 0; i < c.cfg.Producers; i++ {
		if ns, label, ok := c.stepProducer(s, i); ok {
			moved = true
			c.explore(ns, pathAppend(path, label))
		}
	}
	if moved {
		return
	}
	producersDone := true
	for i := 0; i < c.cfg.Producers; i++ {
		if s.ppc[i] != pDone {
			producersDone = false
		}
	}
	// A worker pool never drains completely: with every message consumed
	// and every producer done, workers that are exited OR parked asleep
	// (blocked in P with nothing pending) form a legitimate final state —
	// exactly how an idle server pool looks. Anything else stuck is a
	// deadlock (e.g. a worker asleep while its message sits queued).
	if producersDone && s.consumed == c.target {
		parkedOK := true
		for i := 0; i < c.cfg.Consumers; i++ {
			if s.cpc[i] != pcDone && s.cpc[i] != pcSleep {
				parkedOK = false
			}
		}
		if parkedOK {
			c.res.Terminal++
			return
		}
	}
	if !c.res.Deadlock {
		c.res.Deadlock = true
		c.res.DeadlockPath = append([]string(nil), path...)
	}
	if producersDone && s.consumed != c.target {
		c.allConsumed = false
	}
}

// afterConsume routes worker i after handling a message (or a spurious
// wake): it exits at its quota, otherwise loops.
func (c *poolChecker) afterConsume(s *poolState, i int) {
	if s.cnt[i] >= c.quota {
		s.cpc[i] = pcDone
		return
	}
	s.cpc[i] = pcTop
}

// take records worker i consuming one message.
func (c *poolChecker) take(s *poolState, i int) {
	s.queue--
	s.consumed++
	s.cnt[i]++
}

func (c *poolChecker) stepConsumer(s poolState, i int) (poolState, string, bool) {
	name := func(step string) string { return fmt.Sprintf("C%d.%s", i+1, step) }
	switch s.cpc[i] {
	case pcTop:
		if s.cnt[i] >= c.quota {
			s.cpc[i] = pcDone
			return s, name("exit"), true
		}
		if s.queue > 0 {
			c.take(&s, i)
			c.afterConsume(&s, i)
			return s, name("1 dequeue-ok"), true
		}
		s.cpc[i] = pcReg
		return s, name("1 dequeue-empty"), true

	case pcReg:
		if c.cfg.SharedFlag {
			s.flag = false
		} else {
			s.waiters++
		}
		s.cpc[i] = pcDeq2
		return s, name("2 register"), true

	case pcDeq2:
		if s.queue > 0 {
			c.take(&s, i)
			s.cpc[i] = pcUnreg
			return s, name("3 dequeue-ok"), true
		}
		s.cpc[i] = pcSleep
		return s, name("3 dequeue-empty"), true

	case pcUnreg:
		if c.cfg.SharedFlag {
			// Paper's drain: tas the flag; pending V if it was set.
			old := s.flag
			s.flag = true
			if old {
				s.cpc[i] = pcDrainP
			} else {
				c.afterConsume(&s, i)
			}
			return s, name("3' tas(flag)"), true
		}
		if s.waiters > 0 {
			s.waiters--
			c.afterConsume(&s, i)
			return s, name("3' unregister"), true
		}
		// Claimed by a producer: leave the V alone. Draining here — even
		// non-blockingly — can steal a live wake-up from a sleeping
		// sibling (the V at hand may be the claim of ITS registration);
		// the exhaustive checker finds that deadlock. A stale V is
		// benign: it wakes some below-quota worker spuriously, and that
		// worker must re-check the queue before sleeping again.
		c.afterConsume(&s, i)
		return s, name("3' claimed-skip"), true

	case pcDrainP:
		// Only the shared-flag discipline drains (single consumer: the
		// pending V is provably its own).
		if s.sem > 0 {
			s.sem--
			c.afterConsume(&s, i)
			return s, name("3' P(drain)"), true
		}
		return s, "", false

	case pcSleep:
		if s.sem > 0 {
			s.sem--
			s.cpc[i] = pcWake
			return s, name("4 P()"), true
		}
		return s, "", false

	case pcWake:
		if c.cfg.SharedFlag {
			s.flag = true
		}
		// Counted: the registration was consumed by the producer's claim.
		s.cpc[i] = pcTop
		return s, name("5 wake"), true
	}
	return s, "", false
}

func (c *poolChecker) stepProducer(s poolState, i int) (poolState, string, bool) {
	name := func(step string) string { return fmt.Sprintf("P%d.%s", i+1, step) }
	switch s.ppc[i] {
	case pEnq:
		s.queue++
		s.sent[i]++
		s.ppc[i] = pTAS
		return s, name("1 enqueue"), true

	case pTAS:
		if c.cfg.SharedFlag {
			old := s.flag
			s.flag = true
			if !old {
				s.ppc[i] = pV
			} else {
				s.ppc[i] = c.nextMsg(s, i)
			}
			return s, name("2 tas(flag)"), true
		}
		if s.waiters > 0 {
			s.waiters-- // claim one waiter
			s.ppc[i] = pV
		} else {
			s.ppc[i] = c.nextMsg(s, i)
		}
		return s, name("2 claim"), true

	case pV:
		s.sem++
		s.ppc[i] = c.nextMsg(s, i)
		return s, name("3 V"), true
	}
	return s, "", false
}

func (c *poolChecker) nextMsg(s poolState, i int) int8 {
	if int(s.sent[i]) >= c.cfg.Msgs {
		return pDone
	}
	return pEnq
}
