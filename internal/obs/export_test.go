package obs

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parsePromLine splits one sample line into name, labels and value,
// enforcing the text exposition format's basic shape.
func parsePromLine(t *testing.T, line string) (name string, labels map[string]string, value float64) {
	t.Helper()
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		t.Fatalf("no value separator in %q", line)
	}
	v, err := strconv.ParseFloat(line[sp+1:], 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	series := line[:sp]
	labels = map[string]string{}
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			t.Fatalf("unterminated label set in %q", line)
		}
		name = series[:i]
		for _, kv := range strings.Split(series[i+1:len(series)-1], ",") {
			eq := strings.IndexByte(kv, '=')
			if eq < 0 {
				t.Fatalf("bad label pair %q in %q", kv, line)
			}
			val, err := strconv.Unquote(kv[eq+1:])
			if err != nil {
				t.Fatalf("label value not quoted in %q: %v", line, err)
			}
			labels[kv[:eq]] = val
		}
	} else {
		name = series
	}
	return name, labels, v
}

func TestWritePrometheusFormat(t *testing.T) {
	o := New(Config{RecorderCap: 64})
	h := o.Hook(int(0), o.RegisterActor("client0"))
	for i := 1; i <= 100; i++ {
		h.RTT(time.Duration(i) * time.Microsecond)
	}
	h.Sleep(3 * time.Millisecond)
	h.Note(EvSend, 1)

	var b strings.Builder
	o.WritePrometheus(&b)
	out := b.String()

	var (
		sawRTTHelp, sawRTTType  bool
		bucketCounts            []float64
		sumNs, countVal, infVal float64
	)
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 3 || (f[1] != "HELP" && f[1] != "TYPE") {
				t.Fatalf("malformed comment line %q", line)
			}
			if f[2] == "ulipc_rtt_ns" {
				if f[1] == "HELP" {
					sawRTTHelp = true
				}
				if f[1] == "TYPE" {
					sawRTTType = true
					if f[3] != "histogram" {
						t.Fatalf("rtt TYPE = %q, want histogram", f[3])
					}
				}
			}
			continue
		}
		name, labels, v := parsePromLine(t, line)
		if !strings.HasPrefix(name, "ulipc_") {
			t.Fatalf("series %q lacks the ulipc_ prefix", name)
		}
		switch name {
		case "ulipc_rtt_ns_bucket":
			if labels["proto"] != "BSS" {
				t.Fatalf("bucket proto = %q, want BSS", labels["proto"])
			}
			if labels["le"] == "+Inf" {
				infVal = v
			} else {
				if _, err := strconv.ParseUint(labels["le"], 10, 64); err != nil {
					t.Fatalf("non-numeric le %q", labels["le"])
				}
				bucketCounts = append(bucketCounts, v)
			}
		case "ulipc_rtt_ns_sum":
			sumNs = v
		case "ulipc_rtt_ns_count":
			countVal = v
		}
	}
	if !sawRTTHelp || !sawRTTType {
		t.Fatalf("missing HELP/TYPE for ulipc_rtt_ns:\n%s", out)
	}
	if countVal != 100 || infVal != 100 {
		t.Fatalf("count = %v, +Inf = %v, want 100", countVal, infVal)
	}
	if want := float64(5050) * 1000; sumNs != want {
		t.Fatalf("sum = %v, want %v", sumNs, want)
	}
	// Prometheus histograms are cumulative: bucket counts never decrease.
	for i := 1; i < len(bucketCounts); i++ {
		if bucketCounts[i] < bucketCounts[i-1] {
			t.Fatalf("bucket counts not monotonic at %d: %v", i, bucketCounts)
		}
	}
	if len(bucketCounts) == 0 || bucketCounts[len(bucketCounts)-1] != 100 {
		t.Fatalf("last finite bucket should hold all 100 observations: %v", bucketCounts)
	}
	if !strings.Contains(out, "ulipc_sleep_ns_count") {
		t.Errorf("sleep phase series missing:\n%s", out)
	}
	if !strings.Contains(out, "ulipc_flight_events_total 1") {
		t.Errorf("flight recorder counter missing or wrong:\n%s", out)
	}
	// Families with no observations are omitted entirely.
	if strings.Contains(out, "ulipc_queue_wait_ns") {
		t.Errorf("empty queue_wait family should be omitted:\n%s", out)
	}
}

func TestWritePrometheusCounter(t *testing.T) {
	var b strings.Builder
	WritePrometheusCounter(&b, "ulipc_msgs_sent", "messages sent", 42)
	out := b.String()
	for _, want := range []string{
		"# HELP ulipc_msgs_sent_total messages sent",
		"# TYPE ulipc_msgs_sent_total counter",
		"ulipc_msgs_sent_total 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	WritePrometheusCounter(&b, "already_total", "h", 1)
	if strings.Contains(b.String(), "already_total_total") {
		t.Errorf("_total suffix doubled:\n%s", b.String())
	}
}

func TestCumulativeMonotonic(t *testing.T) {
	var h Histogram
	for i := 0; i < 5000; i++ {
		h.Record(time.Duration(i%997) * time.Microsecond)
	}
	cum := h.Snapshot().Cumulative()
	if len(cum) == 0 {
		t.Fatal("no cumulative buckets")
	}
	for i := 1; i < len(cum); i++ {
		if cum[i].Count < cum[i-1].Count {
			t.Fatalf("cumulative counts decreased at %d: %+v", i, cum)
		}
		if cum[i].UpperNS <= cum[i-1].UpperNS {
			t.Fatalf("bucket bounds not increasing at %d: %+v", i, cum)
		}
	}
	if cum[len(cum)-1].Count != 5000 {
		t.Fatalf("final cumulative count = %d, want 5000", cum[len(cum)-1].Count)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	o := New(Config{})
	o.Hook(3, -1).RTT(time.Millisecond)
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	o.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `ulipc_rtt_ns_count{proto="BSLS"} 1`) {
		t.Fatalf("body missing BSLS rtt count:\n%s", rec.Body.String())
	}
}

func TestNilObserverExports(t *testing.T) {
	var o *Observer
	var b strings.Builder
	o.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatalf("nil observer wrote %q", b.String())
	}
	if o.Snapshot() != nil || o.Proto(0) != nil || o.Recorder() != nil {
		t.Fatal("nil observer accessors should return nil")
	}
	if got := fmt.Sprint(o.Hook(0, 0).Enabled()); got != "false" {
		t.Fatalf("hook from nil observer enabled = %s", got)
	}
}
