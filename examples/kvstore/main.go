// kvstore: a small key-value store served over user-level IPC — the
// client-server shape (multiple clients, one single-threaded server,
// per-client reply queues) that motivated the paper's work on a database
// server.
//
// The fixed-size message carries the operation in Op-adjacent encoding:
// Seq is the key and Val the value, exactly the kind of compact protocol
// the paper's fixed 24-byte messages support. Larger payloads would hang
// off a shared-memory reference carried in Val (Section 2.1).
package main

import (
	"fmt"
	"log"
	"sync"

	"ulipc"
)

// Store opcodes, layered above the transport ops.
const (
	opPut = ulipc.OpWork // Seq = key, Val = value
	opGet = ulipc.OpEcho // Seq = key; reply Val = value (NaN-free: 0 if missing)
)

func main() {
	const clients = 4
	const opsPerClient = 1000

	sys, err := ulipc.NewSystem(ulipc.Options{
		Alg:     ulipc.BSLS,
		Clients: clients,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The server owns the table outright — a single-threaded server
	// needs no locks, one of the simplifications the paper's
	// architecture buys.
	table := map[int32]float64{}
	srv := sys.Server()
	done := make(chan int64, 1)
	go func() {
		done <- srv.Serve(func(m *ulipc.Msg) {
			// OpWork = PUT. Serve echoes the message back as the ack.
			table[m.Seq] = m.Val
		})
	}()

	// GETs need the server to fill in the value: drive Receive/Reply for
	// them through the OpEcho path by pre-loading with PUTs and then
	// reading back and checking.
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		cl, err := sys.Client(c)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(c int, cl *ulipc.Client) {
			defer wg.Done()
			cl.Send(ulipc.Msg{Op: ulipc.OpConnect})
			base := int32(c * opsPerClient)
			// Phase 1: PUT a window of keys.
			for i := int32(0); i < opsPerClient; i++ {
				cl.Send(ulipc.Msg{Op: opPut, Seq: base + i, Val: float64(base+i) * 2})
			}
			cl.Send(ulipc.Msg{Op: ulipc.OpDisconnect})
		}(c, cl)
	}
	wg.Wait()
	served := <-done

	// Verify the table contents after the server loop exits.
	bad := 0
	for c := 0; c < clients; c++ {
		base := int32(c * opsPerClient)
		for i := int32(0); i < opsPerClient; i++ {
			if table[base+i] != float64(base+i)*2 {
				bad++
			}
		}
	}
	fmt.Printf("kvstore: %d clients x %d puts, server handled %d requests, table size %d, mismatches %d\n",
		clients, opsPerClient, served, len(table), bad)
	if bad > 0 {
		log.Fatal("kvstore: table verification failed")
	}
}
