package workload

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/livebind"
	"ulipc/internal/metrics"
)

// The open-loop load generator (DESIGN.md §14). The closed-loop harness
// in live.go cannot overload the system — each client waits for its
// reply before sending again, so the offered rate is capped by the
// completion rate. Real traffic is open-loop: arrivals come from a
// clock, not from completions, so offered load can exceed capacity and
// the interesting question becomes what the system does with the
// excess. This runner decouples the two rates: a Poisson (or bursty
// on/off) arrival process stamps each message with a deadline and
// injects it with the fire-and-forget async send, a bare polling
// collector drains replies, and the result separates offered load,
// admitted load, and goodput — replies that made their deadline.
//
// The collector never parks: its reply-queue awake flag is primed true
// once at start, so the server's reply-side TASAwake always sees an
// awake consumer and issues no V. No semaphore tokens accumulate over
// thousands of un-awaited replies, and the Figure 4 token conservation
// holds trivially for the collector (zero tokens in, zero out).

// OpenLoopConfig describes one open-loop overload cell.
type OpenLoopConfig struct {
	Alg     core.Algorithm
	Clients int

	// Rate is the aggregate offered arrival rate (messages/second)
	// across all clients; each client generates Rate/Clients.
	Rate float64

	// Duration is the arrival-generation window.
	Duration time.Duration

	// Burst switches the Poisson process to on/off modulation: arrivals
	// come at twice the rate during the first half of each BurstPeriod
	// and not at all during the second — same mean rate, clumped.
	Burst       bool
	BurstPeriod time.Duration // full on+off cycle; default 20ms

	// Deadline is stamped on every message (Val carries the absolute
	// deadline in nanoseconds since the run epoch): the server sheds
	// messages that expire before dequeue, the collector counts replies
	// arriving past it as Expiries rather than goodput. Default 5ms.
	Deadline time.Duration

	// Grace is the post-arrival drain window: how long the collectors
	// keep draining replies after the last arrival so the server can
	// finish (or shed) the backlog. Clients exit early once the request
	// queue is empty and no replies have arrived for a settle interval
	// longer than the producer backoff ceiling. Default 2*Deadline+50ms.
	Grace time.Duration

	// Seed makes the arrival streams deterministic; each client derives
	// its own xorshift stream from it. Default 1.
	Seed uint64

	// Overload doctrine knobs (zero disables each, as in
	// livebind.Admission): admission high-water mark, client retry
	// budget, group-mode quarantine circuit.
	HighWater  int
	RetryCap   float64
	Quarantine int

	// PaySize, when > 0, attaches a payload of that many bytes to every
	// request (OpWork zero-copy echo): sheds then exercise the
	// claim-free drop path and the post-run lease audit is non-trivial.
	// Not supported in group mode.
	PaySize int

	// Blocks overrides the arena slot count (PaySize cells only);
	// default 4*(Clients+1), minimum 32.
	Blocks int

	// CopyFallback degrades arena exhaustion to the heap overflow table
	// (PaySize cells only; see livebind.WithCopyFallback).
	CopyFallback bool

	MaxSpin    int
	QueueCap   int
	SpinIters  int
	SleepScale time.Duration

	// Shards, when > 0, runs the cell against a server group (the
	// quarantine circuit only exists there).
	Shards int
	Batch  int // vectored serve batch in group mode; default 16

	// Watchdog bounds the whole cell; default Duration+Grace+10s.
	Watchdog time.Duration
}

// OpenLoopResult is one open-loop cell's outcome. The load-balance
// identity is Offered = Admitted + Rejected + AllocFails; admitted
// messages end as Good, Expired, or Unanswered (shed, or stranded by a
// tripped watchdog).
type OpenLoopResult struct {
	Label string

	Offered    int64 // arrivals generated
	Admitted   int64 // successfully enqueued
	Rejected   int64 // fast-rejected (core.ErrOverload)
	AllocFails int64 // payload allocation denied (exhausted arena, no fallback)
	Completed  int64 // replies collected
	Good       int64 // replies collected within their deadline
	Expired    int64 // replies collected past their deadline
	Unanswered int64 // Admitted - Completed: shed or stranded

	OfferedPerSec float64
	GoodputPerSec float64

	// Goodput latency distribution (send to collection, ns); expired
	// replies are excluded — they are failures, not slow successes.
	P50Ns, P95Ns, P99Ns, MaxNs float64

	Duration time.Duration    // the arrival window
	All      metrics.Snapshot // aggregate counters (Sheds, Overloads, ...)
	Clients  metrics.Snapshot // client-side aggregate
}

func (cfg *OpenLoopConfig) defaults() error {
	if cfg.Clients < 1 {
		return fmt.Errorf("workload: open loop needs at least 1 client")
	}
	if cfg.Rate <= 0 {
		return fmt.Errorf("workload: open loop needs a positive arrival rate")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 300 * time.Millisecond
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 5 * time.Millisecond
	}
	if cfg.Grace <= 0 {
		cfg.Grace = 2*cfg.Deadline + 50*time.Millisecond
	}
	if cfg.BurstPeriod <= 0 {
		cfg.BurstPeriod = 20 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.SleepScale == 0 {
		cfg.SleepScale = time.Millisecond
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}
	if cfg.Watchdog <= 0 {
		cfg.Watchdog = cfg.Duration + cfg.Grace + 10*time.Second
	}
	if cfg.PaySize > 0 && cfg.Shards > 0 {
		return fmt.Errorf("workload: open-loop payload cells not supported in group mode")
	}
	return nil
}

// RunOpenLoop executes one open-loop overload cell: paced arrivals for
// cfg.Duration, a drain grace window, teardown, lease audit.
func RunOpenLoop(cfg OpenLoopConfig) (OpenLoopResult, error) {
	if err := cfg.defaults(); err != nil {
		return OpenLoopResult{}, err
	}
	blockSlots := 0
	if cfg.PaySize > 0 {
		blockSlots = cfg.Blocks
		if blockSlots <= 0 {
			blockSlots = 4 * (cfg.Clients + 1)
			if blockSlots < 32 {
				blockSlots = 32
			}
		}
	}
	maxSpin, _ := tuneFor(cfg.Alg, cfg.MaxSpin, 0)
	ms := metrics.NewSet()
	opts := livebind.Options{
		Alg:        cfg.Alg,
		MaxSpin:    maxSpin,
		Clients:    cfg.Clients,
		QueueCap:   cfg.QueueCap,
		SpinIters:  cfg.SpinIters,
		SleepScale: cfg.SleepScale,
		BlockSlots: blockSlots,
		Metrics:    ms,
		Admission: livebind.Admission{
			HighWater:       cfg.HighWater,
			RetryCap:        cfg.RetryCap,
			QuarantineAfter: cfg.Quarantine,
		},
		CopyFallback: cfg.CopyFallback && blockSlots > 0,
	}
	var (
		sys *livebind.System
		err error
	)
	if cfg.Shards > 0 {
		sys, err = livebind.NewSystemGroup(cfg.Shards, opts)
	} else {
		sys, err = livebind.NewSystem(opts)
	}
	if err != nil {
		return OpenLoopResult{}, err
	}
	return runOpenLoop(cfg, sys, ms)
}

// olCounters is one client's tally; summed after the run.
type olCounters struct {
	offered, admitted, rejected, allocFails int64
	completed, good, expired                int64
	hist                                    latHist
}

func runOpenLoop(cfg OpenLoopConfig, sys *livebind.System, ms *metrics.Set) (OpenLoopResult, error) {
	rootCtx, cancel := context.WithTimeout(context.Background(), cfg.Watchdog)
	defer cancel()

	var (
		errsMu sync.Mutex
		errs   []string
	)
	noteErr := func(format string, args ...any) {
		errsMu.Lock()
		if len(errs) < 8 {
			errs = append(errs, fmt.Sprintf(format, args...))
		}
		errsMu.Unlock()
	}

	// One shared run epoch: deadlines stamped by clients and checked by
	// the server's shed hook read the same clock.
	epoch := time.Now()
	nowNs := func() int64 { return time.Since(epoch).Nanoseconds() }
	dlNs := cfg.Deadline.Nanoseconds()
	shed := &core.ShedPolicy{
		// Only the stamped request ops carry deadlines; control traffic
		// (connect/disconnect, shutdown markers) is never shed.
		Deadline: func(m core.Msg) (int64, bool) {
			if m.Op != core.OpEcho && m.Op != core.OpWork {
				return 0, false
			}
			return int64(m.Val), true
		},
		Now: nowNs,
	}

	// Servers: scalar ServeCtx or one vectored ServeBatchCtx per shard;
	// both run until Shutdown (no connect handshake — an overloaded
	// client may never get a disconnect through, so teardown cannot
	// depend on the connection protocol).
	var swg sync.WaitGroup
	var srv0 *core.Server // scalar-mode server, kept for the teardown reclaim
	if cfg.Shards > 0 {
		srvs, err := sys.ShardServers()
		if err != nil {
			return OpenLoopResult{}, err
		}
		for _, srv := range srvs {
			srv.Shed = shed
			swg.Add(1)
			go func(sv *core.Server) {
				defer swg.Done()
				if _, err := sv.ServeBatchCtx(rootCtx, nil, cfg.Batch); err != nil {
					noteErr("shard: %v", err)
				}
			}(srv)
		}
	} else {
		srv := sys.Server()
		srv.Shed = shed
		srv0 = srv
		var work func(*core.Msg)
		if cfg.PaySize > 0 {
			// Zero-copy echo: claim the request lease, re-attach it to
			// the reply. A lost claim (ErrPayloadLost) clears the ref.
			work = func(m *core.Msg) {
				p, err := srv.Payload(*m)
				if err != nil {
					m.ClearBlock()
					return
				}
				m.AttachPayload(p)
			}
		}
		swg.Add(1)
		go func() {
			defer swg.Done()
			if _, err := srv.ServeCtx(rootCtx, work); err != nil {
				noteErr("server: %v", err)
			}
		}()
	}

	durNs := cfg.Duration.Nanoseconds()
	graceNs := cfg.Grace.Nanoseconds()
	counts := make([]olCounters, cfg.Clients)
	cls := make([]*core.Client, cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		cl, err := sys.Client(i)
		if err != nil {
			cancel()
			swg.Wait()
			return OpenLoopResult{}, err
		}
		cls[i] = cl
		wg.Add(1)
		go func(i int, cl *core.Client) {
			defer wg.Done()
			c := &counts[i]
			cctx, ccancel := context.WithCancel(rootCtx)
			defer ccancel()
			openLoopClient(cctx, cfg, cl, c, i, nowNs, dlNs, durNs, graceNs, noteErr)
		}(i, cl)
	}
	wg.Wait()

	// Teardown before reading counters: Shutdown closes the request
	// channels, the serve loops exit on ErrShutdown, and batched caches
	// spill. Only cancel the root context if shutdown failed to release
	// them (a premature cancel turns a clean shard exit into an error).
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
	if err := sys.Shutdown(shutCtx); err != nil {
		noteErr("shutdown: %v", err)
		cancel()
	}
	shutCancel()
	swg.Wait()
	tripped := rootCtx.Err() != nil

	// Teardown reclaim: the run ends on a wall-clock edge, not a drained
	// system, so arrivals the server never dequeued are still in the
	// request queue and replies sent after the collector's last drain sit
	// in the reply queues — all holding live leases. Claim-and-free them
	// (the shed path's discipline, applied at teardown) so the audit
	// below measures protocol conservation, not the teardown cut line.
	if cfg.PaySize > 0 && !tripped && srv0 != nil {
		for {
			m, ok := srv0.Rcv.TryDequeue()
			if !ok {
				break
			}
			if m.HasBlock() {
				if p, err := srv0.Payload(m); err == nil {
					_ = p.Release()
				}
			}
		}
		for _, cl := range cls {
			for {
				m, ok := cl.Rcv.TryDequeue()
				if !ok {
					break
				}
				if m.HasBlock() {
					if p, err := cl.Payload(m); err == nil {
						_ = p.Release()
					}
				}
			}
		}
	}

	// Lease-conservation audit: every payload block allocated during the
	// run must be back — released by the collector, claim-freed by a
	// shed, or freed on a rejected send. Skipped if the watchdog tripped
	// (stranded participants legitimately hold leases then).
	if pool := sys.Blocks(); pool != nil && !tripped {
		if leaked := int64(pool.Capacity()) - pool.TotalFree(); leaked != 0 {
			noteErr("payload blocks leaked: %d", leaked)
		}
		if fb := sys.FallbackLive(); fb != 0 {
			noteErr("fallback blocks leaked: %d", fb)
		}
	}

	res := OpenLoopResult{Duration: cfg.Duration}
	var hist latHist
	for i := range counts {
		c := &counts[i]
		res.Offered += c.offered
		res.Admitted += c.admitted
		res.Rejected += c.rejected
		res.AllocFails += c.allocFails
		res.Completed += c.completed
		res.Good += c.good
		res.Expired += c.expired
		hist.merge(&c.hist)
	}
	res.Unanswered = res.Admitted - res.Completed
	secs := cfg.Duration.Seconds()
	res.OfferedPerSec = float64(res.Offered) / secs
	res.GoodputPerSec = float64(res.Good) / secs
	res.P50Ns = hist.quantile(0.50)
	res.P95Ns = hist.quantile(0.95)
	res.P99Ns = hist.quantile(0.99)
	res.MaxNs = float64(hist.max)
	res.All = ms.Total()
	res.Clients = ms.ByPrefix("client")
	res.Label = fmt.Sprintf("openloop/%s/%dc", cfg.Alg, cfg.Clients)
	if cfg.Shards > 0 {
		res.Label += fmt.Sprintf("/%ds", cfg.Shards)
	}
	if cfg.Burst {
		res.Label += "/burst"
	}

	if tripped {
		noteErr("watchdog tripped after %v", cfg.Watchdog)
	}
	if len(errs) > 0 {
		return res, fmt.Errorf("workload: open loop failed: %v", errs)
	}
	return res, nil
}

// openLoopClient is one client's generate-and-collect loop.
func openLoopClient(ctx context.Context, cfg OpenLoopConfig, cl *core.Client, c *olCounters,
	id int, nowNs func() int64, dlNs, durNs, graceNs int64, noteErr func(string, ...any)) {
	// Prime the collector awake: the reply-side producer's TASAwake
	// always sees true, so no wake tokens accumulate while replies are
	// drained by polling (see the package comment above).
	cl.Rcv.SetAwake(true)

	drain := func() int {
		n := 0
		for {
			m, ok := cl.Rcv.TryDequeue()
			if !ok {
				return n
			}
			n++
			if m.Op != core.OpEcho && m.Op != core.OpWork {
				continue // shutdown marker or stray control op
			}
			if m.HasBlock() {
				if p, err := cl.Payload(m); err == nil {
					_ = p.Release()
				}
			}
			c.completed++
			now := nowNs()
			dl := int64(m.Val)
			if now > dl {
				c.expired++
				if cl.M != nil {
					cl.M.Expiries.Add(1)
				}
			} else {
				c.good++
				c.hist.add(now - (dl - dlNs))
			}
		}
	}

	rng := cfg.Seed + uint64(id+1)*0x9E3779B97F4A7C15
	if rng == 0 {
		rng = 1
	}
	perNs := cfg.Rate / float64(cfg.Clients) / 1e9 // arrivals per nanosecond
	if cfg.Burst {
		perNs *= 2 // on-half rate; the off-half contributes nothing
	}
	burstNs := cfg.BurstPeriod.Nanoseconds()
	var seq int32
	next := nowNs() + expNs(&rng, perNs)
	for ctx.Err() == nil {
		if cfg.Burst {
			// Arrivals scheduled into the off-half clump at the start of
			// the next period — the on/off square wave.
			if ph := next % burstNs; ph >= burstNs/2 {
				next += burstNs - ph
			}
		}
		if next >= durNs {
			break
		}
		// Pace to the arrival clock, draining replies while ahead. On a
		// single-CPU host time.Sleep granularity is coarse, so only
		// sleep when comfortably ahead of schedule; otherwise yield.
		for ctx.Err() == nil {
			d := next - nowNs()
			if d <= 0 {
				break
			}
			drain()
			if d > 500_000 {
				time.Sleep(time.Duration(d - 200_000))
			} else {
				runtime.Gosched()
			}
		}
		// Drain before every send, even when behind schedule. A collector
		// that only drains while ahead can deadlock a generator that has
		// fallen permanently behind: its reply queue fills, the server
		// naps in Reply against it and stops dequeuing, the request queue
		// fills, and the next blocking send then waits on queue space only
		// the napping server could free. Draining here caps the reply
		// backlog below the window the server can refill while one send
		// blocks, which breaks the cycle.
		drain()
		c.offered++
		seq++
		m := core.Msg{Op: core.OpEcho, Seq: seq, Val: float64(nowNs() + dlNs)}
		var payRef uint32
		hasPay := false
		if cfg.PaySize > 0 {
			p, err := cl.AllocPayload(cfg.PaySize)
			if err != nil {
				// Exhausted arena without fallback: the arrival is lost
				// at the allocator, the open-loop analogue of a reject.
				c.allocFails++
				next += expNs(&rng, perNs)
				continue
			}
			m.Op = core.OpWork
			payRef, hasPay = p.Ref(), true
			m.AttachPayload(p)
		}
		switch err := cl.SendAsyncCtx(ctx, m); {
		case err == nil:
			c.admitted++
		case errors.Is(err, core.ErrOverload):
			c.rejected++
			if hasPay {
				// Never enqueued: the lease is still ours — return it.
				_ = cl.Blocks.Free(payRef)
			}
		default:
			if hasPay {
				_ = cl.Blocks.Free(payRef)
			}
			if ctx.Err() == nil {
				noteErr("client%d: send: %v", id, err)
			}
			return
		}
		next += expNs(&rng, perNs)
	}

	// Grace drain: collect the backlog's replies until the request queue
	// is empty and nothing has arrived for a settle window longer than
	// the reply producer's backoff ceiling (8 scaled "seconds"), so a
	// server napping against this client's momentarily-full reply queue
	// still gets its retry in before the collector leaves.
	depth := func() int {
		if d, ok := cl.Srv.(core.DepthPort); ok {
			return d.Depth()
		}
		return 0
	}
	settle := 8*cfg.SleepScale.Nanoseconds() + 4_000_000
	hardEnd := durNs + graceNs
	quietSince := int64(-1)
	for ctx.Err() == nil && nowNs() < hardEnd {
		if drain() > 0 || depth() > 0 {
			quietSince = -1
		} else {
			now := nowNs()
			if quietSince < 0 {
				quietSince = now
			} else if now-quietSince > settle {
				break
			}
		}
		time.Sleep(500 * time.Microsecond)
	}
	drain()
}

// expNs draws an exponential interarrival gap (ns) for the given
// per-nanosecond rate from a client-private xorshift64 stream.
func expNs(s *uint64, perNs float64) int64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	u := float64(x>>11) / (1 << 53) // uniform [0,1)
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	d := -math.Log(1-u) / perNs
	if d < 1 {
		d = 1
	}
	if d > 1e9 {
		d = 1e9 // one-second ceiling keeps a tiny rate from stalling the loop
	}
	return int64(d)
}

// latHist is a log2 histogram with 4 sub-buckets per octave — ~12%
// relative error on the reported quantiles, fixed 2KB footprint, no
// allocation on the hot path.
type latHist struct {
	count   int64
	max     int64
	buckets [256]int64
}

func (h *latHist) add(ns int64) {
	if ns < 1 {
		ns = 1
	}
	if ns > h.max {
		h.max = ns
	}
	b := bits.Len64(uint64(ns)) // 1..63
	sub := 0
	if b >= 3 {
		sub = int((uint64(ns) >> uint(b-3)) & 3)
	}
	idx := (b-1)*4 + sub
	if idx > 255 {
		idx = 255
	}
	h.buckets[idx]++
	h.count++
}

func (h *latHist) merge(o *latHist) {
	h.count += o.count
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
}

// quantile returns the q-quantile's bucket midpoint in nanoseconds.
func (h *latHist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum int64
	for i, cnt := range h.buckets {
		cum += cnt
		if cum > target {
			b := i/4 + 1
			sub := int64(i % 4)
			lo := int64(1) << uint(b-1)
			if b >= 3 {
				lo |= sub << uint(b-3)
				return float64(lo + int64(1)<<uint(b-3)/2)
			}
			return float64(lo)
		}
	}
	return float64(h.max)
}
