package core

import (
	"context"
	"time"

	"ulipc/internal/metrics"
	"ulipc/internal/obs"
)

// This file contains the shared building blocks of the four protocols,
// transcribed from the paper's Figures 1, 5, 7 and 9, plus their
// context-threaded variants (cancellation, deadlines, shutdown).

// enqueueOrSleep implements the producer-side queue-full handling common
// to Send and Reply: "the process will sleep for at least one second...
// the queue full condition seldom occurs and the implication is that the
// consumer is saturated". It reports false — without enqueueing — when
// the port shut down (or started refusing new messages) underneath the
// retry loop. The producer side needs only the enqueue operation, so it
// accepts any endpoint flavour (Port or PoolPort).
func enqueueOrSleep(q interface{ TryEnqueue(Msg) bool }, a Actor, m Msg) bool {
	for {
		if portRefusing(q) {
			return false
		}
		if q.TryEnqueue(m) {
			return true
		}
		a.SleepSec(1)
	}
}

// enqueueOrSleepCtx is enqueueOrSleep with cancellation and bounded
// retry-with-backoff: instead of the paper's flat sleep(1) forever, the
// nap ceiling doubles (1, 2, 4, 8 "seconds", scaled by the actor's
// sleep scale) with uniform jitter below it (see backoff), and the
// loop gives up when ctx ends, the port refuses, or the optional retry
// budget runs dry (ErrOverload). Each retry is counted in pm.Retries;
// each successful enqueue credits the budget.
func enqueueOrSleepCtx(ctx context.Context, q interface{ TryEnqueue(Msg) bool }, a Actor, m Msg, pm *metrics.Proc, budget *RetryBudget) error {
	ca, _ := a.(CtxActor)
	var bo backoff
	for {
		if portRefusing(q) {
			return shutdownErr(q)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if q.TryEnqueue(m) {
			budget.credit()
			return nil
		}
		if err := bo.sleep(ctx, ca, budget, pm); err != nil {
			return err
		}
	}
}

// wakeConsumer implements steps P.2/P.3 with the Figure 4 race-2 fix:
// test-and-set ensures only the first producer to find the awake flag
// clear issues the (expensive) wake-up system call.
//
//	if( !tas( &(Q->awake) ) ) V( sem );
func wakeConsumer(q Port, a Actor) bool {
	if !q.TASAwake() {
		a.V(q.Sem())
		return true
	}
	return false
}

// consumerWait implements the consumer side of the blocking protocol
// (steps C.1–C.5 of Figure 4 with both race fixes), shared by BSW, BSWY
// and BSLS:
//
//	while( !dequeue( Q, msg ) ) {
//	    <preWait hook — BSWY's busy_wait "try to handoff">
//	    Q->awake = 0;
//	    if( !dequeue( Q, msg ) ) {
//	        P( sem );          /* wait for producer */
//	        Q->awake = 1;
//	    } else {               /* message ready */
//	        if( tas( &Q->awake ) ) P( sem ); /* fix race condition */
//	        break;
//	    }
//	}
//
// The second dequeue (step C.3) is required because a producer may check
// the awake flag after the first dequeue fails but before the flag is
// cleared (Execution Interleaving 4 — the consumer would sleep forever).
// The tas on the success path drains a pending redundant wake-up so the
// semaphore count cannot accumulate (Execution Interleaving 3).
// Shutdown interacts with the loop through the port state: a closed
// port's semaphore no longer blocks, so a parked consumer wakes, drains
// any message still queued (the first dequeue of the next iteration)
// and otherwise returns the OpShutdown marker.
func consumerWait(q Port, a Actor, preWait func()) Msg {
	for {
		if m, ok := q.TryDequeue(); ok {
			return m
		}
		if portClosed(q) {
			return ShutdownMsg()
		}
		if preWait != nil {
			preWait()
		}
		q.SetAwake(false)
		if m, ok := q.TryDequeue(); ok {
			// Reply/request arrived between the dequeues: re-set the
			// flag ourselves; if a producer already set it, it has also
			// issued a V we must consume without blocking.
			if q.TASAwake() {
				a.P(q.Sem())
			}
			return m
		}
		a.P(q.Sem())
		q.SetAwake(true)
	}
}

// consumerWaitCtx is consumerWait with cancellation, deadline and
// shutdown support. The delicate part is the wake-token accounting on
// the cancel path — the Figure 4 awake-flag race, revisited under
// cancellation:
//
//   - PCtx guarantees that a cancelled wait consumed NO token: a token
//     granted concurrently with the cancellation is handed back to the
//     semaphore (re-credited or passed to the next waiter).
//   - The cancelled consumer then re-sets the awake flag with a
//     test-and-set. If the flag was still clear, no producer has issued
//     (or will issue) a wake for the current queue state, and setting
//     it suppresses any future producer's V — clean exit. If the flag
//     was already set, a producer won the race: it enqueued a message
//     and issued a V this wait did not consume. The consumer drains
//     that token (the P returns promptly: the V is issued, or the
//     semaphore was closed) and takes the message — success beats
//     cancellation when the two race, and the semaphore count stays
//     bounded either way: no wake destined for a live waiter is ever
//     swallowed, and no cancelled waiter leaves a token behind.
func consumerWaitCtx(ctx context.Context, q Port, a Actor, preWait func()) (Msg, error) {
	ca, _ := a.(CtxActor)
	for {
		if m, ok := q.TryDequeue(); ok {
			return m, nil
		}
		if portClosed(q) {
			return Msg{}, shutdownErr(q)
		}
		if err := ctx.Err(); err != nil {
			return Msg{}, err
		}
		if preWait != nil {
			preWait()
		}
		q.SetAwake(false)
		if m, ok := q.TryDequeue(); ok {
			if q.TASAwake() {
				a.P(q.Sem())
			}
			return m, nil
		}
		if ca == nil {
			// Can't park cancellably: restore the flag with the same
			// token accounting as the cancel path below.
			if q.TASAwake() {
				a.P(q.Sem())
				if m, ok := q.TryDequeue(); ok {
					return m, nil
				}
			}
			return Msg{}, ErrNotCancellable
		}
		if err := ca.PCtx(ctx, q.Sem()); err != nil {
			if q.TASAwake() {
				a.P(q.Sem())
				if m, ok := q.TryDequeue(); ok {
					return m, nil
				}
			}
			return Msg{}, deadOr(q, err)
		}
		q.SetAwake(true)
	}
}

// spinEnqueueCtx busy-waits an enqueue with cancellation (the BSS send
// leg of the ctx paths). It accepts any endpoint flavour.
func spinEnqueueCtx(ctx context.Context, a Actor, q interface {
	TryEnqueue(Msg) bool
}, m Msg) error {
	for {
		if portRefusing(q) {
			return shutdownErr(q)
		}
		if q.TryEnqueue(m) {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		a.BusyWait()
	}
}

// spinPoll implements the BSLS limited-spin prefix (Figure 9):
//
//	spincnt = 0;
//	while( empty(Q) && spincnt++ < MAX_SPIN )
//	    poll_queue( Q );
//
// It records the Section 4.2 statistics (how often the loop fell through
// to the blocking path, and the iteration count) when m is non-nil. The
// poll needs only the non-destructive empty check, so it accepts any
// endpoint flavour (Port or PoolPort).
func spinPoll(q interface{ Empty() bool }, a Actor, maxSpin int, m *metrics.Proc) {
	if m != nil {
		m.SpinLoops.Add(1)
	}
	spincnt := 0
	for q.Empty() && spincnt < maxSpin {
		a.PollDelay()
		spincnt++
		if m != nil {
			m.SpinIters.Add(1)
		}
	}
	if spincnt >= maxSpin && m != nil {
		m.SpinFallThrus.Add(1)
	}
}

// Observability wrappers. Each forwards to the plain helper when the
// hook is disabled, so the legacy fast path pays one nil-check and no
// clock reads; with a hook attached, the phase durations land in the
// per-protocol histograms and retries/backoffs on the flight recorder.
// Timestamps are taken only once a wait actually begins (first failed
// enqueue), so the uncontended path stays clock-free even when enabled.

// spinPollObs is spinPoll with the spin-phase duration recorded.
func spinPollObs(q interface{ Empty() bool }, a Actor, maxSpin int, m *metrics.Proc, h obs.Hook) {
	if h.H == nil {
		spinPoll(q, a, maxSpin, m)
		return
	}
	t0 := time.Now()
	spinPoll(q, a, maxSpin, m)
	h.Spin(time.Since(t0))
}

// enqueueOrSleepObs is enqueueOrSleep with the queue-wait duration
// recorded when (and only when) the queue was full at least once.
func enqueueOrSleepObs(q interface{ TryEnqueue(Msg) bool }, a Actor, m Msg, h obs.Hook) bool {
	if !h.Enabled() {
		return enqueueOrSleep(q, a, m)
	}
	if portRefusing(q) {
		return false
	}
	if q.TryEnqueue(m) {
		return true // fast path: no clock read
	}
	t0 := time.Now()
	for {
		h.Note(obs.EvRetry, int64(m.Client))
		a.SleepSec(1)
		if portRefusing(q) {
			return false
		}
		if q.TryEnqueue(m) {
			h.QueueWait(time.Since(t0))
			return true
		}
	}
}

// enqueueOrSleepCtxObs is enqueueOrSleepCtx with the queue-wait
// duration recorded when the first attempt found the queue full.
func enqueueOrSleepCtxObs(ctx context.Context, q interface{ TryEnqueue(Msg) bool }, a Actor, m Msg, pm *metrics.Proc, budget *RetryBudget, h obs.Hook) error {
	if !h.Enabled() {
		return enqueueOrSleepCtx(ctx, q, a, m, pm, budget)
	}
	// First iteration inline (identical to the plain helper's) so the
	// uncontended path takes no timestamp.
	if portRefusing(q) {
		return shutdownErr(q)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if q.TryEnqueue(m) {
		budget.credit()
		return nil
	}
	t0 := time.Now()
	h.Note(obs.EvRetry, int64(m.Client))
	err := enqueueOrSleepCtx(ctx, q, a, m, pm, budget)
	if err == nil {
		h.QueueWait(time.Since(t0))
	}
	return err
}

// busySpinUntil busy-waits (Figure 1's busy_wait) until ready() holds,
// polling q's shutdown state so a BSS spinner does not spin forever on
// a dead system; it reports false on shutdown. Endpoints without port
// state (the simulator's) spin exactly as before.
func busySpinUntil(a Actor, q any, ready func() bool) bool {
	for !ready() {
		if portClosed(q) {
			return false
		}
		a.BusyWait()
	}
	return true
}

// spinDequeueCtx busy-waits a dequeue with cancellation (the BSS
// receive leg of the ctx paths). It accepts any endpoint flavour (Port
// or PoolPort).
func spinDequeueCtx(ctx context.Context, a Actor, q interface {
	TryDequeue() (Msg, bool)
}) (Msg, error) {
	for {
		if m, ok := q.TryDequeue(); ok {
			return m, nil
		}
		if portClosed(q) {
			return Msg{}, shutdownErr(q)
		}
		if err := ctx.Err(); err != nil {
			return Msg{}, err
		}
		a.BusyWait()
	}
}
