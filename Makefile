GO ?= go

.PHONY: build test race vet bench bench-live

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem

# Regenerate the live wall-clock benchmark document. One run per cell of
# {queue configuration} x {protocol} x {1,4,16 clients}; see DESIGN.md §6.
bench-live:
	$(GO) run ./cmd/ipcbench -live -json -o BENCH_live.json
	@echo wrote BENCH_live.json
