package sim

// Scheduler is the pluggable CPU scheduling policy. Implementations live
// in internal/sim/sched; the engine calls these hooks at well-defined
// points. All calls happen from the engine goroutine, so implementations
// need no locking.
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string

	// Attach is called once before the simulation starts.
	Attach(k *Kernel)

	// Ready inserts p into the run queue. p is guaranteed not to be
	// queued already.
	Ready(p *Proc)

	// Pick removes and returns the next process to run on the given CPU,
	// or nil if the run queue is empty. The engine passes the process
	// currently on the CPU (possibly nil) so policies can prefer the
	// incumbent on priority ties — the source of the paper's
	// "yield does not switch" behaviour.
	Pick(cpu int, incumbent *Proc) *Proc

	// Steal removes a specific process from the run queue (for handoff).
	// It reports whether p was queued.
	Steal(p *Proc) bool

	// OnYield is invoked when p voluntarily yields, before Ready(p).
	OnYield(p *Proc)

	// Charge accounts d of CPU consumption to p (drives priority aging).
	Charge(p *Proc, d Time)

	// QuantumFor returns the time slice to grant p on dispatch.
	QuantumFor(p *Proc) Time

	// ReadyCount returns the number of queued runnable processes.
	ReadyCount() int
}
