package protomodel

import "testing"

// The futex rendezvous with the kernel val-check must be deadlock-free
// and token-conserving under every interleaving of wakers and waiters.
func TestFutexNoLostWake(t *testing.T) {
	for wakers := 1; wakers <= 3; wakers++ {
		for tokens := 1; tokens <= 2; tokens++ {
			for waiters := 1; waiters <= 2; waiters++ {
				if (wakers*tokens)%waiters != 0 {
					continue
				}
				cfg := FutexConfig{Wakers: wakers, Tokens: tokens, Waiters: waiters}
				res, err := FutexCheck(cfg)
				if err != nil {
					t.Fatal(err)
				}
				tag := "wakers=" + itoa(wakers) + " tokens=" + itoa(tokens) + " waiters=" + itoa(waiters)
				if res.Deadlock {
					t.Errorf("%s: deadlock; one path:\n%s", tag, pathString(res.DeadlockPath))
				}
				if !res.Conserved {
					t.Errorf("%s: some terminal state lost or duplicated a token", tag)
				}
				if res.Crashed || res.Rescued {
					t.Errorf("%s: crash/rescue explored in a crash-free run", tag)
				}
			}
		}
	}
}

// The naive variant — park without the kernel's val-check — must
// exhibit the lost wake: the checker finds an interleaving where the
// waker's increment and its waiters==0 skip both land between the
// waiter's failed try-acquire and its waiters++, so the waiter parks
// on a token it is never shown. This is the property that makes the
// val-check (and ProcSem's poison-in-the-word) load-bearing.
func TestFutexNaiveVariantLosesWake(t *testing.T) {
	res, err := FutexCheck(FutexConfig{Wakers: 1, Tokens: 1, Waiters: 1, NoValCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlock {
		t.Fatal("unconditional park explored no lost-wake deadlock — the model is too weak to justify the val-check")
	}
	t.Logf("lost-wake interleaving:\n%s", pathString(res.DeadlockPath))
}

// A waker that crashes at the worst instants — before an increment, or
// between an increment and the wake it owes — must never strand a
// waiter: the sweeper's poison (dead flag + poison bit in the futex
// word + wake-all) rescues every interleaving.
func TestFutexCrashRescuedByPoison(t *testing.T) {
	for wakers := 1; wakers <= 2; wakers++ {
		for waiters := 1; waiters <= 2; waiters++ {
			if (wakers*2)%waiters != 0 {
				continue
			}
			cfg := FutexConfig{Wakers: wakers, Tokens: 2, Waiters: waiters, Crash: true}
			res, err := FutexCheck(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tag := "wakers=" + itoa(wakers) + " waiters=" + itoa(waiters)
			if res.Deadlock {
				t.Errorf("%s: crash stranded a waiter; one path:\n%s", tag, pathString(res.DeadlockPath))
			}
			if !res.Conserved {
				t.Errorf("%s: crash lost or duplicated a token", tag)
			}
			if !res.Crashed {
				t.Errorf("%s: no explored path crashed a waker", tag)
			}
			if !res.Rescued {
				t.Errorf("%s: no waiter ever took the poisoned exit", tag)
			}
		}
	}
}

// The crash machinery must be inert when disabled, and expand the
// state space when enabled.
func TestFutexCrashExpandsStateSpace(t *testing.T) {
	base, err := FutexCheck(FutexConfig{Wakers: 2, Tokens: 2, Waiters: 2})
	if err != nil {
		t.Fatal(err)
	}
	crash, err := FutexCheck(FutexConfig{Wakers: 2, Tokens: 2, Waiters: 2, Crash: true})
	if err != nil {
		t.Fatal(err)
	}
	if crash.States <= base.States {
		t.Fatalf("crash-enabled run explored %d states, base %d — crashes added nothing", crash.States, base.States)
	}
}
