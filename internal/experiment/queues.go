package experiment

import (
	"fmt"

	"ulipc/internal/chart"
	"ulipc/internal/core"
	"ulipc/internal/queue"
	"ulipc/internal/workload"
)

// RunQueues is ablation A2: the live runtime's round-trip throughput
// over the three queue implementations (the paper's two-lock Michael &
// Scott queue, the lock-free M&S queue, and a bounded MPMC ring). Run on
// the host, so absolute numbers depend on the machine executing the
// suite; the comparison across kinds is the point.
func RunQueues(opt Options) (*Report, error) {
	r := newReport("queues", "Queue implementation ablation (live runtime, host timing)",
		"the paper uses the two-lock M&S queue; this ablation checks the protocol stack over lock-free and ring alternatives")
	msgs := opt.msgs()

	t := &chart.Table{
		Title:   "Live round-trip throughput by queue kind (messages/ms, host-dependent)",
		Headers: []string{"queue", "1 client", "4 clients"},
	}
	for _, kind := range queue.Kinds() {
		var cells []string
		for _, n := range []int{1, 4} {
			res, err := workload.RunLive(workload.LiveConfig{
				Alg: core.BSLS, MaxSpin: 20, Clients: n, Msgs: msgs, QueueKind: kind,
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, f2(res.Throughput))
			r.Records[fmt.Sprintf("queues/%s/%d", kind, n)] = res.Throughput
		}
		t.AddRow(append([]string{kind.String()}, cells...)...)
	}
	r.Tables = append(r.Tables, t)
	r.note("Host timing: absolute values vary run to run; see bench_test.go for testing.B measurements with -benchmem.")
	return r, nil
}
