package core

import (
	"context"
	"errors"
)

// The zero-copy lease discipline (Section 2.1 realised end to end): a
// payload is a shared-memory block a fixed-size message points at. At
// any instant exactly one endpoint holds the block's lease:
//
//	client AllocPayload  →  fill in place  →  SendPayload   (lease rides the message)
//	server Payload(m)    →  read/write in place             (server claims the lease)
//	server reply         →  Release (block returns to pool) or re-lease it
//	                         for the response (reply carries the ref back)
//	client reply payload →  read in place  →  Release
//
// Payload bytes never cross a queue — only the 32-bit reference does.
// The lease tag (shm.BlockPool owner words) tracks the current holder
// so a sweeper can return a dead endpoint's blocks; Claim (a tag CAS)
// resolves the race between a receiver adopting a payload and a sweeper
// reclaiming its dead sender's leases: exactly one side wins, so a
// block is never freed twice and never used after reclaim.

// Typed sentinels for the payload paths.
var (
	// ErrNoBlocks: the system was built without a payload arena
	// (Options.BlockSlots == 0 / SegConfig.Blocks == 0).
	ErrNoBlocks = errors.New("core: no payload block arena configured")
	// ErrBlocksExhausted: every size class that fits the request is
	// empty — backpressure, exactly like a full queue.
	ErrBlocksExhausted = errors.New("core: payload block classes exhausted")
	// ErrNoPayload: the message carries no payload reference.
	ErrNoPayload = errors.New("core: message carries no payload")
	// ErrPayloadLost: the payload's previous holder died and a sweeper
	// reclaimed the block before it could be claimed; the bytes are
	// gone (the slot may already be reallocated).
	ErrPayloadLost = errors.New("core: payload block reclaimed after peer death")
)

// BlockStore is the slab-arena surface the lease discipline runs over.
// *shm.BlockPool implements it directly; livebind wraps it with a
// per-producer batched cache.
type BlockStore interface {
	// Alloc returns a block of at least n bytes (false on exhaustion).
	Alloc(n int) (ref uint32, data []byte, ok bool)
	// Get resolves a block's storage.
	Get(ref uint32) ([]byte, error)
	// Free returns a block to its class, clearing its lease tag.
	Free(ref uint32) error
	// Lease tags the block as held by owner.
	Lease(ref uint32, owner uint32) error
	// Claim transfers the lease to owner; false if already reclaimed.
	Claim(ref uint32, owner uint32) bool
	// MaxBlock is the largest allocatable payload.
	MaxBlock() int
}

// Payload is a leased view of a shared-memory block: the full class
// storage plus the current payload length. The holder may read and
// write Bytes() in place; the view is dead after Release or after the
// lease is transferred by SendPayload/ReplyPayload.
type Payload struct {
	store BlockStore
	ref   uint32
	buf   []byte
	n     int
}

// Bytes returns the payload bytes (length Len, writable in place).
func (p *Payload) Bytes() []byte { return p.buf[:p.n] }

// Len returns the current payload length.
func (p *Payload) Len() int { return p.n }

// Cap returns the block's class size — the ceiling for Resize.
func (p *Payload) Cap() int { return len(p.buf) }

// Ref returns the block reference the message will carry.
func (p *Payload) Ref() uint32 { return p.ref }

// Resize sets the payload length within the block's capacity, e.g. to
// reuse a request's block for a differently-sized response.
func (p *Payload) Resize(n int) error {
	if n < 0 || n > len(p.buf) {
		return ErrBlocksExhausted
	}
	p.n = n
	return nil
}

// Release returns the block to the pool. The view is unusable after.
func (p *Payload) Release() error {
	if p.store == nil {
		return ErrNoPayload
	}
	err := p.store.Free(p.ref)
	p.store = nil
	return err
}

// AttachPayload transfers p's lease onto m, for handler-style servers
// whose reply is the mutated request (Serve/ServeCtx work callbacks):
// the message carries the reference onward and the view is dead.
func (m *Msg) AttachPayload(p *Payload) {
	m.SetBlock(p.ref, p.n)
	p.store = nil
}

// allocPayload / resolvePayload are the shared client/server halves.

func allocPayload(store BlockStore, owner uint32, n int) (*Payload, error) {
	if store == nil {
		return nil, ErrNoBlocks
	}
	ref, buf, ok := store.Alloc(n)
	if !ok {
		return nil, ErrBlocksExhausted
	}
	if err := store.Lease(ref, owner); err != nil {
		_ = store.Free(ref)
		return nil, err
	}
	return &Payload{store: store, ref: ref, buf: buf, n: n}, nil
}

// resolvePayload claims the lease on a received message's payload and
// builds the view. A failed claim means a sweeper got there first
// (the sender died): the payload is lost, not usable.
func resolvePayload(store BlockStore, owner uint32, m Msg) (*Payload, error) {
	if store == nil {
		return nil, ErrNoBlocks
	}
	if !m.HasBlock() {
		return nil, ErrNoPayload
	}
	ref, n := m.Block()
	if !store.Claim(ref, owner) {
		return nil, ErrPayloadLost
	}
	buf, err := store.Get(ref)
	if err != nil {
		return nil, err
	}
	if n > len(buf) {
		n = len(buf)
	}
	return &Payload{store: store, ref: ref, buf: buf, n: n}, nil
}

// dropPayload claim-frees a payload whose message was discarded (a
// stale reply drained after cancellation, a drained orphan). The claim
// makes it race-free against the sweeper: tag already cleared → someone
// else returned it.
func dropPayload(store BlockStore, owner uint32, m Msg) {
	if store == nil || !m.HasBlock() {
		return
	}
	ref, _ := m.Block()
	if store.Claim(ref, owner) {
		_ = store.Free(ref)
	}
}

// ---- Client surface ----

// AllocPayload leases a block of at least n bytes for an outgoing
// request; fill Bytes() in place and pass it to SendPayload.
func (c *Client) AllocPayload(n int) (*Payload, error) {
	return allocPayload(c.Blocks, c.Owner, n)
}

// Payload resolves (claims) the payload of a reply returned by
// SendCtx/Send. The caller owns the lease: Release it, or keep the
// block for a later SendPayload.
func (c *Client) Payload(m Msg) (*Payload, error) {
	return resolvePayload(c.Blocks, c.Owner, m)
}

// SendPayload performs a request/response exchange carrying p (which
// may be nil for a control-only message). On success the request
// lease has been transferred; the reply's payload — if the server
// attached or re-leased one — is claimed and returned, and the caller
// owns it.
//
// On error: if the request was never enqueued the payload has been
// returned to the pool; if it was enqueued (reply lost to cancellation
// or peer death) the lease is in flight and the recovery layer — the
// sweeper's owner walk, the stale-reply drain, or the post-mortem
// Reclaim — accounts for it. Either way the caller must forget p.
func (c *Client) SendPayload(ctx context.Context, m Msg, p *Payload) (Msg, *Payload, error) {
	if p != nil {
		m.SetBlock(p.ref, p.n)
		p.store = nil // lease leaves this handle with the message
	}
	ans, err := c.SendCtx(ctx, m)
	if err != nil {
		if p != nil && c.lag == 0 {
			// The request never reached the queue (the exchange failed
			// before enqueue): the lease is still ours — return it.
			_ = c.Blocks.Free(p.ref)
		}
		return Msg{}, nil, err
	}
	if p != nil {
		c.Obs.Payload(p.n)
	}
	if !ans.HasBlock() {
		return ans, nil, nil
	}
	rp, rerr := resolvePayload(c.Blocks, c.Owner, ans)
	if rerr != nil {
		return ans, nil, rerr
	}
	return ans, rp, nil
}

// ---- Server surface ----

// Payload resolves (claims) the payload of a received request. The
// server owns the lease: Release it before an empty reply, or re-lease
// it for the response via ReplyPayload / Msg.SetBlock.
func (s *Server) Payload(m Msg) (*Payload, error) {
	return resolvePayload(s.Blocks, s.Owner, m)
}

// AllocPayload leases a fresh block for a response.
func (s *Server) AllocPayload(n int) (*Payload, error) {
	return allocPayload(s.Blocks, s.Owner, n)
}

// ReplyPayload replies to client with m carrying p's lease (p nil
// clears any stale reference instead). After the call the server no
// longer owns p — the receiving client claims it.
func (s *Server) ReplyPayload(client int32, m Msg, p *Payload) {
	if p != nil {
		s.Obs.Payload(p.n)
		m.SetBlock(p.ref, p.n)
		p.store = nil
	} else {
		m.ClearBlock()
	}
	s.Reply(client, m)
}

// ReplyPayloadCtx is ReplyPayload with deadline/cancellation support
// and the double-reply audit. On error the lease stays with the server
// (p remains valid and must still be released or retried).
func (s *Server) ReplyPayloadCtx(ctx context.Context, client int32, m Msg, p *Payload) error {
	if p != nil {
		m.SetBlock(p.ref, p.n)
	} else {
		m.ClearBlock()
	}
	if err := s.ReplyCtx(ctx, client, m); err != nil {
		return err
	}
	if p != nil {
		p.store = nil
	}
	return nil
}
