//go:build !linux

package livebind

import "runtime"

// osYield degrades to a runtime yield where sched_yield is unavailable.
func osYield() { runtime.Gosched() }

// pidAlive cannot probe foreign processes portably; report alive and
// let lease-based (heartbeat) detection do the work.
func pidAlive(pid int) bool { return true }
