package core

import "ulipc/internal/metrics"

// This file implements the alternative server architecture Section 2.1
// sketches: "an alternative architecture might be to have a server
// thread per client, but that would require two queues per client to
// implement the full-duplex virtual connection." Each client gets a
// dedicated server handler and a pair of unidirectional queues; both
// endpoints use the same sleep/wake-up protocols as the shared-queue
// architecture.

// DuplexClient is the client endpoint of a full-duplex virtual
// connection: it enqueues requests on the client-to-server queue and
// waits for responses on the server-to-client queue.
type DuplexClient struct {
	Alg     Algorithm
	MaxSpin int
	Snd     Port // enqueue endpoint of the client->server queue
	Rcv     Port // dequeue endpoint of the server->client queue
	A       Actor
	M       *metrics.Proc
}

// Send performs a synchronous request/response exchange on the
// connection.
func (c *DuplexClient) Send(m Msg) Msg {
	if c.M != nil {
		defer c.M.MsgsSent.Add(1)
	}
	switch c.Alg {
	case BSS:
		busySpinUntil(c.A, func() bool { return c.Snd.TryEnqueue(m) })
		var ans Msg
		busySpinUntil(c.A, func() bool {
			var ok bool
			ans, ok = c.Rcv.TryDequeue()
			return ok
		})
		return ans
	case BSW:
		enqueueOrSleep(c.Snd, c.A, m)
		wakeConsumer(c.Snd, c.A)
		return consumerWait(c.Rcv, c.A, nil)
	case BSWY:
		enqueueOrSleep(c.Snd, c.A, m)
		if !c.Snd.TASAwake() {
			c.A.V(c.Snd.Sem())
			c.A.BusyWait()
		}
		return consumerWait(c.Rcv, c.A, c.A.BusyWait)
	case BSLS:
		enqueueOrSleep(c.Snd, c.A, m)
		wakeConsumer(c.Snd, c.A)
		spinPoll(c.Rcv, c.A, c.maxSpin(), c.M)
		return consumerWait(c.Rcv, c.A, c.A.BusyWait)
	}
	panic("core: unknown algorithm")
}

func (c *DuplexClient) maxSpin() int {
	if c.MaxSpin <= 0 {
		return DefaultMaxSpin
	}
	return c.MaxSpin
}

// DuplexHandler is the server endpoint of one full-duplex connection —
// the body of a per-client server thread.
type DuplexHandler struct {
	Alg     Algorithm
	MaxSpin int
	Rcv     Port // dequeue endpoint of the client->server queue
	Snd     Port // enqueue endpoint of the server->client queue
	A       Actor
	M       *metrics.Proc
}

func (h *DuplexHandler) maxSpin() int {
	if h.MaxSpin <= 0 {
		return DefaultMaxSpin
	}
	return h.MaxSpin
}

// Receive returns the connection's next request.
func (h *DuplexHandler) Receive() Msg {
	var m Msg
	switch h.Alg {
	case BSS:
		busySpinUntil(h.A, func() bool {
			var ok bool
			m, ok = h.Rcv.TryDequeue()
			return ok
		})
	case BSW:
		m = consumerWait(h.Rcv, h.A, nil)
	case BSWY:
		if got, ok := h.Rcv.TryDequeue(); ok {
			m = got
			break
		}
		h.A.Yield()
		m = consumerWait(h.Rcv, h.A, nil)
	case BSLS:
		spinPoll(h.Rcv, h.A, h.maxSpin(), h.M)
		m = consumerWait(h.Rcv, h.A, nil)
	default:
		panic("core: unknown algorithm")
	}
	if h.M != nil {
		h.M.MsgsReceived.Add(1)
	}
	return m
}

// Reply sends the response on the connection.
func (h *DuplexHandler) Reply(m Msg) {
	if h.Alg == BSS {
		busySpinUntil(h.A, func() bool { return h.Snd.TryEnqueue(m) })
		return
	}
	enqueueOrSleep(h.Snd, h.A, m)
	wakeConsumer(h.Snd, h.A)
}

// ServeConn runs the echo loop for one connection until the client
// disconnects, returning the number of data requests served.
func (h *DuplexHandler) ServeConn(work func(*Msg)) (served int64) {
	for {
		m := h.Receive()
		switch m.Op {
		case OpDisconnect:
			h.Reply(m)
			return served
		case OpWork:
			if work != nil {
				work(&m)
			}
			served++
			h.Reply(m)
		default: // OpConnect, OpEcho
			if m.Op != OpConnect {
				served++
			}
			h.Reply(m)
		}
	}
}
