package workload

import (
	"fmt"
	"sync/atomic"

	"ulipc/internal/core"
	"ulipc/internal/metrics"
	"ulipc/internal/sim"
)

// runSimSysV runs the kernel-mediated baseline: the same client/server
// workload over simulated System V message queues (one receive queue at
// the server, one reply queue per client), costing four system calls per
// round trip — a msgsnd/msgrcv pair at both the client and the server.
func runSimSysV(k *sim.Kernel, cfg Config, ms *metrics.Set) (Result, error) {
	rec := &recorder{}
	capacity := cfg.queueCap()

	recvQ := k.NewMsgQueue(capacity)
	replyQs := make([]sim.QID, cfg.Clients)
	for i := range replyQs {
		replyQs[i] = k.NewMsgQueue(capacity)
	}
	barrier := k.NewBarrier(cfg.Clients)
	op := opForRun(cfg)

	var stop atomic.Bool
	spawnBackground(k, cfg, &stop)

	k.Spawn("server", cfg.ServerPrio, func(p *sim.Proc) {
		connected := 0
		ever := false
		for {
			m := p.MsgRcv(recvQ).(core.Msg)
			p.M.MsgsReceived.Add(1)
			switch m.Op {
			case core.OpConnect:
				connected++
				ever = true
			case core.OpDisconnect:
				connected--
			case core.OpWork:
				if cfg.ServerWork > 0 {
					p.Step(cfg.ServerWork)
				}
			}
			p.MsgSnd(replyQs[m.Client], m)
			if ever && connected == 0 && m.Op == core.OpDisconnect {
				rec.lastDone = p.Now()
				stop.Store(true)
				return
			}
		}
	})

	for i := 0; i < cfg.Clients; i++ {
		i := i
		k.Spawn(fmt.Sprintf("client%d", i), cfg.ClientPrio, func(p *sim.Proc) {
			send := func(m core.Msg) core.Msg {
				m.Client = int32(i)
				p.MsgSnd(recvQ, m)
				p.M.MsgsSent.Add(1)
				return p.MsgRcv(replyQs[i]).(core.Msg)
			}
			send(core.Msg{Op: core.OpConnect})
			p.Barrier(barrier)
			rec.noteStart(p.Now())
			for j := 0; j < cfg.Msgs; j++ {
				if cfg.ClientThink > 0 {
					p.Step(cfg.ClientThink)
				}
				ans := send(core.Msg{Op: op, Seq: int32(j), Val: float64(j)})
				if ans.Seq != int32(j) || ans.Val != float64(j) {
					rec.noteErr("client%d: reply mismatch at %d: %+v", i, j, ans)
				}
			}
			send(core.Msg{Op: core.OpDisconnect})
		})
	}

	if err := k.Run(); err != nil {
		return Result{}, err
	}
	label := fmt.Sprintf("SYSV/%s/%dc", cfg.Machine.Name, cfg.Clients)
	return buildResult(cfg, rec, ms, label)
}
