// Package ulipc is a Go reproduction of "Efficient Sleep/Wake-up
// Protocols for User-Level IPC" (Unrau & Krieger, ICPP 1998): a
// Send/Receive/Reply client-server IPC facility layered over
// shared-memory FIFO queues, with the paper's four sleep/wake-up
// protocols (BSS, BSW, BSWY, BSLS) plus BSA, an adaptive fifth that
// tunes the paper's hand-set constants online (WithAdaptive).
//
// Two bindings execute the same protocol code:
//
//   - The live runtime (NewSystem) runs over real atomics, Michael &
//     Scott two-lock queues in an offset-addressed arena, and counting
//     semaphores — this is the API a Go program uses.
//   - The discrete-event simulator (internal/sim + internal/experiment,
//     driven by cmd/ipcbench and cmd/ipcsim) reproduces the paper's
//     evaluation: scheduler interactions, context-switch accounting, and
//     every table and figure.
//
// Quick start (v2 surface — context-threaded, error-returning):
//
//	sys, err := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSLS, Clients: 1})
//	if err != nil { ... }
//	srv := sys.Server()
//	go srv.ServeCtx(context.Background(), nil)
//	cl, _ := sys.Client(0)
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	reply, err := cl.SendCtx(ctx, ulipc.Msg{Op: ulipc.OpEcho, Val: 42})
//	...
//	sys.Shutdown(ctx) // graceful drain; parked waiters get ErrShutdown
//
// The legacy error-less methods (Send, Serve, ...) remain: where a v1
// path is unblocked by a shutdown it returns the OpShutdown marker
// message instead of an error.
//
// See DESIGN.md for the system inventory (§7 covers the cancellation
// and wake-token protocol) and EXPERIMENTS.md for the paper-vs-measured
// record of every reproduced artefact.
package ulipc

import (
	"os"

	"ulipc/internal/core"
	"ulipc/internal/livebind"
	"ulipc/internal/obs"
	"ulipc/internal/queue"
	"ulipc/internal/shm"
)

// Msg is the fixed-size IPC message (opcode, reply channel, sequence
// number, double-precision argument, payload block reference). The
// reply route and payload reference live in the embedded MsgMeta;
// field promotion makes m.Client and m.Ref work directly, so the
// nested type only shows up when constructing a Msg literal that sets
// them.
type Msg = core.Msg

// MsgMeta is the runtime-owned part of a Msg: the reply route (Client)
// and the payload block reference (Ref, encoded by Msg.SetBlock). It is
// a separate embedded struct so Msg stays within the compiler's
// four-field limit for keeping struct copies in registers — see the
// core.Msg doc comment before changing either.
type MsgMeta = core.MsgMeta

// Operation codes understood by Server.Serve.
const (
	OpEcho       = core.OpEcho
	OpConnect    = core.OpConnect
	OpDisconnect = core.OpDisconnect
	OpWork       = core.OpWork

	// OpShutdown marks the message legacy (error-less) blocking calls
	// return when the system is shut down underneath them.
	OpShutdown = core.OpShutdown
)

// Sentinel errors of the context-threaded (v2) API surface. Branch with
// errors.Is; constructor errors may wrap additional detail.
var (
	// ErrShutdown: the system was shut down — parked waiters are
	// unblocked with it and new sends fail fast while draining.
	ErrShutdown = core.ErrShutdown

	// ErrNotCancellable: a *Ctx method's binding cannot park cancellably
	// (the simulator's Actor, for example).
	ErrNotCancellable = core.ErrNotCancellable

	// ErrDisconnected: send on a connection after a completed
	// disconnect handshake.
	ErrDisconnected = core.ErrDisconnected

	// ErrDoubleReply: ReplyCtx with no request outstanding for the
	// target client.
	ErrDoubleReply = core.ErrDoubleReply

	// ErrUnknownAlgorithm: an Algorithm value outside the registered
	// protocols (legacy methods panic with this same sentinel).
	ErrUnknownAlgorithm = core.ErrUnknownAlgorithm

	// ErrOverload: a *Ctx send rejected by admission control (request
	// queue at or past the WithAdmission high-water mark) or by a dry
	// retry budget. The request was not enqueued; back off or shed
	// load — retrying immediately is what admission exists to stop.
	ErrOverload = core.ErrOverload

	// ErrBadClients, ErrBadOption, ErrSPSCTopology: typed NewSystem
	// validation failures. ErrNoFreeSlots: Connect found no free client
	// slot.
	ErrBadClients   = livebind.ErrBadClients
	ErrBadOption    = livebind.ErrBadOption
	ErrSPSCTopology = livebind.ErrSPSCTopology
	ErrNoFreeSlots  = livebind.ErrNoFreeSlots

	// ErrBadTuning: a contradictory tuning configuration — the adaptive
	// controller (WithAdaptive / BSA) combined with a hand-set MaxSpin,
	// a wake Throttle, or an explicit non-BSA protocol.
	ErrBadTuning = livebind.ErrBadTuning
)

// Algorithm selects a sleep/wake-up protocol.
type Algorithm = core.Algorithm

// The four protocols of the paper, plus the adaptive extension.
const (
	BSS  = core.BSS  // Both Sides Spin (Figure 1)
	BSW  = core.BSW  // Both Sides Wait (Figure 5)
	BSWY = core.BSWY // Both Sides Wait and Yield (Figure 7)
	BSLS = core.BSLS // Both Sides Limited Spin (Figure 9)
	BSA  = core.BSA  // Both Sides Adaptive (online spin-budget controller)
)

// DefaultMaxSpin is the MAX_SPIN the paper recommends for BSLS.
const DefaultMaxSpin = core.DefaultMaxSpin

// Algorithms returns the registered protocols in presentation order.
func Algorithms() []Algorithm { return core.Algorithms() }

// AlgorithmByName parses a protocol name ("BSS", "BSW", "BSWY", "BSLS",
// "BSA"; lowercase accepted).
func AlgorithmByName(s string) (Algorithm, error) { return core.AlgorithmByName(s) }

// Client is the client side of a connection: synchronous Send plus the
// asynchronous SendAsync/RecvReply pair.
type Client = core.Client

// Server is the single-threaded server loop: Receive/Reply, or the
// canonical echo Serve loop.
type Server = core.Server

// Options configures a live IPC system.
type Options = livebind.Options

// Option is a functional setting applied by NewSystem on top of the
// Options struct (WithReplyKind, WithAllocBatch, WithMaxSpin, ...).
type Option = livebind.Option

// Tuning consolidates the protocol tuning knobs (spin budget, nap
// scale, wake throttle) in one struct, applied with WithTuning. Set
// Adaptive — or use WithAdaptive — to hand the knobs to the BSA
// controller instead of choosing numbers.
type Tuning = livebind.Tuning

// TunerSnapshot is a point-in-time view of one BSA controller (budget
// gauge plus decision counters), from System.TunerSnapshots.
type TunerSnapshot = core.TunerSnapshot

// Functional options — the v2 idiom for Options fields whose zero value
// is meaningful:
//
//	sys, err := ulipc.NewSystem(ulipc.Options{Clients: 4},
//		ulipc.WithReplyKind(ulipc.QueueRing),
//		ulipc.WithAdaptive())
var (
	WithReplyKind   = livebind.WithReplyKind
	WithAllocBatch  = livebind.WithAllocBatch
	WithTuning      = livebind.WithTuning
	WithAdaptive    = livebind.WithAdaptive
	WithDuplex      = livebind.WithDuplex
	WithObserver    = livebind.WithObserver
	WithHistograms  = livebind.WithHistograms
	WithShards      = livebind.WithShards
	WithShardPicker = livebind.WithShardPicker
	WithStealBatch  = livebind.WithStealBatch
	WithNoSteal     = livebind.WithNoSteal

	// Overload doctrine (DESIGN.md §14): WithAdmission turns on
	// bounded admission, retry budgets and (group mode) the per-shard
	// quarantine circuit; WithCopyFallback degrades exhausted payload
	// allocations to heap blocks instead of failing them.
	WithAdmission    = livebind.WithAdmission
	WithCopyFallback = livebind.WithCopyFallback
)

// Admission is the overload-doctrine configuration applied with
// WithAdmission. Every field is opt-in — the zero value keeps the
// system fully open at zero send-path cost: HighWater (request-queue
// depth past which *Ctx sends fail fast with ErrOverload), RetryCap /
// RetryRefill (token bucket bounding queue-full retry rounds), and
// QuarantineAfter / ReprobeAfter (the per-shard circuit, group mode).
type Admission = livebind.Admission

// ShedPolicy configures deadline-aware shedding at the server's
// dequeue: assign one to Server.Shed and messages whose Deadline has
// passed are dropped before any service time is spent on them (payload
// lease claim-freed, Sheds counter ticked, the sender's consumer woken
// through the token-conserving TAS guard). Pair it with deadline-aware
// clients — a shed message's reply never comes.
type ShedPolicy = core.ShedPolicy

// Deprecated single-knob tuning options, kept as thin aliases of the
// livebind originals.
//
// Deprecated: use WithTuning (one struct for MaxSpin, SleepScale and
// Throttle) or WithAdaptive (the BSA controller chooses them online).
var (
	WithMaxSpin    = livebind.WithMaxSpin
	WithThrottle   = livebind.WithThrottle
	WithSleepScale = livebind.WithSleepScale
)

// Observer collects per-protocol phase-latency histograms (send RTT,
// queue wait, spin, sleep) and — when configured with a RecorderCap —
// a bounded in-memory flight recorder of recent IPC events. Attach one
// to a System with WithObserver (or use WithHistograms for the
// histogram-only default); read results through System.MetricsV2,
// System.WritePrometheus, or Observer.Snapshot.
type Observer = obs.Observer

// ObserverConfig configures NewObserver (protocol names and the flight
// recorder capacity).
type ObserverConfig = obs.Config

// NewObserver builds an observer. The zero config attaches the four
// protocol histogram sets and no flight recorder.
func NewObserver(cfg ObserverConfig) *Observer { return obs.New(cfg) }

// System wires one server and its clients over live shared queues.
// System.Shutdown(ctx) tears it down gracefully: drain, unblock, spill.
type System = livebind.System

// NewSystem builds a live IPC system. Configuration errors wrap the
// typed sentinels (ErrBadClients, ErrBadOption, ErrSPSCTopology).
func NewSystem(opts Options, extra ...Option) (*System, error) {
	return livebind.NewSystem(opts, extra...)
}

// NewSystemGroup builds a sharded system: a group of server shards,
// each owning one SPSC request lane per client, with client-side shard
// selection (WithShardPicker) and bounded inter-shard work stealing
// (WithStealBatch / WithNoSteal). Run each shard's ServeBatch (from
// System.ShardServer or System.ShardServers) on its own goroutine:
//
//	sys, err := ulipc.NewSystemGroup(4, ulipc.Options{Alg: ulipc.BSW, Clients: 16})
//	if err != nil { ... }
//	srvs, _ := sys.ShardServers()
//	for _, srv := range srvs {
//		go srv.ServeBatchCtx(ctx, nil, 16) // vectored echo loop, batch 16
//	}
//	cl, _ := sys.Client(0)
//	replies, err := cl.SendBatchCtx(ctx, msgs) // k messages per wake
func NewSystemGroup(shards int, opts Options, extra ...Option) (*System, error) {
	return livebind.NewSystemGroup(shards, opts, extra...)
}

// ShardPicker selects the destination shard for each request a client
// sends on a sharded system; ShardView is the load/liveness snapshot a
// picker decides from.
type (
	ShardPicker = livebind.ShardPicker
	ShardView   = livebind.ShardView
)

// The built-in shard-selection policies: hash pinning (the default),
// first-touch least-loaded with affinity, and per-request least-loaded.
type (
	PickHash        = livebind.PickHash
	PickAffinity    = livebind.PickAffinity
	PickLeastLoaded = livebind.PickLeastLoaded
)

// Reply pairs a client id with its reply message for Server.ReplyBatch,
// the vectored reply path (one wake per client per batch).
type Reply = core.Reply

// QueueKind selects the shared-queue implementation.
type QueueKind = queue.Kind

// Queue implementations: the paper's two-lock Michael & Scott queue, the
// lock-free M&S queue, a bounded MPMC ring, and a Lamport SPSC ring.
// QueueSPSC is only valid for the per-client reply channels — set with
// WithReplyKind, where it is already the default — because those are
// the one place the system can prove the single-producer/
// single-consumer topology it requires.
const (
	QueueTwoLock  = queue.KindTwoLock
	QueueLockFree = queue.KindLockFree
	QueueRing     = queue.KindRing
	QueueSPSC     = queue.KindSPSC
)

// DuplexClient and DuplexHandler are the endpoints of a full-duplex
// virtual connection — the thread-per-client server architecture
// Section 2.1 sketches as the alternative to the shared receive queue.
// Obtain pairs from System.DuplexPair (requires Options.Duplex).
type (
	DuplexClient  = core.DuplexClient
	DuplexHandler = core.DuplexHandler
)

// BlockPool is the offset-addressed slab arena storing the
// variable-sized components fixed-size messages reference (Section
// 2.1): size-classed blocks under lock-free free lists, allocatable
// from any process mapping the segment. Obtain one from System.Blocks
// (requires Options.BlockSlots); prefer the lease discipline below to
// raw Alloc/Free + Msg.SetBlock.
type BlockPool = shm.BlockPool

// BlockRef is a position-independent reference into a BlockPool.
type BlockRef = shm.BlockRef

// BlockClassStats is one size class's point-in-time view (capacity,
// free blocks, fallback and exhaustion counters), from BlockPool.Stats
// — the backpressure signal for sizing Options.BlockSlots.
type BlockClassStats = shm.BlockClassStats

// Payload is a leased view of a shared-memory block — the zero-copy
// path for variable-size message bodies. Exactly one endpoint holds a
// block's lease at any instant:
//
//	p, err := cl.AllocPayload(len(body))   // client leases a block
//	copy(p.Bytes(), body)                  // fill in place
//	ans, rp, err := cl.SendPayload(ctx, ulipc.Msg{Op: ulipc.OpWork}, p)
//	// the request lease rode the message; rp (if non-nil) is the
//	// reply's payload, now leased to this client
//	... use rp.Bytes() ...
//	rp.Release()
//
// Server side, inside a ServeCtx work callback:
//
//	p, err := srv.Payload(*m) // claim the request's payload
//	... read or rewrite p.Bytes() in place ...
//	m.AttachPayload(p)        // the auto-reply carries the lease back
//
// Payload bytes never cross a queue — only the 32-bit reference does.
// If an endpoint dies mid-lease, the recovery sweep returns its blocks
// to the pool; a receiver that loses that race gets ErrPayloadLost.
type Payload = core.Payload

// Sentinel errors of the payload lease paths.
var (
	// ErrNoBlocks: the system was built without a payload arena
	// (Options.BlockSlots == 0 / SegConfig.Blocks == 0).
	ErrNoBlocks = core.ErrNoBlocks
	// ErrBlocksExhausted: every size class that fits the request is
	// empty — backpressure, exactly like a full queue.
	ErrBlocksExhausted = core.ErrBlocksExhausted
	// ErrNoPayload: the message carries no payload reference.
	ErrNoPayload = core.ErrNoPayload
	// ErrPayloadLost: the payload's previous holder died and the
	// recovery sweep reclaimed the block before the receiver could
	// claim it; the bytes are gone.
	ErrPayloadLost = core.ErrPayloadLost
)

// PoolWorker and PoolClient are the endpoints of a worker-pool server
// ("multiple server threads" on one shared queue, Section 2.1). The pool
// replaces the single awake flag — provably broken for more than one
// sleeping worker, see internal/protomodel — with a model-checked
// counted-waiters wake discipline. Obtain workers from System.WorkerPool
// and clients from System.PoolClient.
type (
	PoolWorker = core.PoolWorker
	PoolClient = core.PoolClient
)

// Conn is a dynamically managed client connection: System.Connect claims
// a free reply-queue slot and performs the connect handshake; Conn.Close
// disconnects and releases the slot for reuse, so a long-running server
// serves arbitrarily many short-lived clients over a bounded shared
// segment.
type Conn = livebind.Conn

// Cross-process transport: the same Send/Receive/Reply protocols over
// a file- or memfd-backed shared-memory segment, with futex-backed
// semaphores (a portable polling fallback builds with -tags nofutex)
// and a process-granular lifetable, so peers survive each other's
// SIGKILL with ErrPeerDead instead of a hang. One process creates the
// segment and attaches the server; other processes map the same
// segment — by inherited descriptor or by path — and attach clients:
//
//	// parent / server process
//	seg, f, err := ulipc.CreateMemfdSeg("app", ulipc.SegConfig{Clients: 4})
//	srv, err := ulipc.AttachProcServer(seg, ulipc.ProcOptions{Alg: ulipc.BSW})
//	go srv.ServeCtx(ctx, nil)
//	// pass f to children via exec.Cmd.ExtraFiles (it becomes their fd 3)
//
//	// child / client process
//	seg, err := ulipc.MapFDSeg(3)
//	cl, err := ulipc.AttachProcClient(seg, 0, ulipc.ProcOptions{Alg: ulipc.BSW})
//	reply, err := cl.SendCtx(ctx, ulipc.Msg{Op: ulipc.OpEcho, Val: 42})
//
// See DESIGN.md §12 for the segment ABI, the futex rendezvous, and the
// peer-death recovery doctrine.
type (
	Seg         = shm.Seg
	SegConfig   = shm.SegConfig
	ProcOptions = livebind.ProcOptions
	ProcSystem  = livebind.ProcSystem
	ProcServer  = livebind.ProcServer
	ProcClient  = livebind.ProcClient
	ProcStats   = livebind.ProcStats
)

// FutexBackend names the sleep/wake implementation this binary was
// built with: "futex" (Linux FUTEX_WAIT/FUTEX_WAKE) or "poll" (the
// portable fallback, forced with -tags nofutex).
const FutexBackend = livebind.FutexBackend

// Segment constructors. Create* initialise a fresh segment; Map*/Open*
// attach to an existing one (validating magic, version and geometry,
// with the typed Err* sentinels below wrapped in any failure). On
// platforms without a mapping backend they return ErrMapUnsupported.
func CreateFileSeg(path string, cfg SegConfig) (*Seg, error) { return shm.CreateFileSeg(path, cfg) }

// CreateMemfdSeg creates an anonymous memory-backed segment; pass the
// returned file to child processes via exec.Cmd.ExtraFiles.
func CreateMemfdSeg(name string, cfg SegConfig) (*Seg, *os.File, error) {
	return shm.CreateMemfdSeg(name, cfg)
}

// MapFileSeg maps an existing segment file created by CreateFileSeg.
func MapFileSeg(path string) (*Seg, error) { return shm.MapFileSeg(path) }

// MapFDSeg maps a segment from an inherited file descriptor
// (ExtraFiles[0] is fd 3 in the child).
func MapFDSeg(fd uintptr) (*Seg, error) { return shm.MapFDSeg(fd) }

// Mapping sentinels, for errors.Is on the Map*/Create* paths.
var (
	// ErrMapUnsupported: this platform has no file-mapping backend.
	ErrMapUnsupported = shm.ErrMapUnsupported
	// ErrShortSegment: the file is smaller than its header claims.
	ErrShortSegment = shm.ErrShortSegment
	// ErrBadMagic: the file is not a ulipc segment.
	ErrBadMagic = shm.ErrBadMagic
	// ErrVersionMismatch: the segment was built by an incompatible
	// layout version of this library.
	ErrVersionMismatch = shm.ErrVersionMismatch
	// ErrBadGeometry: the header's client/ring/node counts are
	// inconsistent with the segment size.
	ErrBadGeometry = shm.ErrBadGeometry
	// ErrMapped / ErrNotMapped: double-map or unmap-without-map misuse.
	ErrMapped    = shm.ErrMapped
	ErrNotMapped = shm.ErrNotMapped
)

// AttachProcServer claims the segment's server slot and returns the
// serving handle; there can be only one live server per segment.
func AttachProcServer(seg *Seg, opts ProcOptions) (*ProcServer, error) {
	return livebind.AttachProcServer(seg, opts)
}

// AttachProcClient claims client slot id (in [0, SegConfig.Clients))
// and returns the sending handle.
func AttachProcClient(seg *Seg, id int, opts ProcOptions) (*ProcClient, error) {
	return livebind.AttachProcClient(seg, id, opts)
}
