package livebind

import (
	"sync"
	"testing"

	"ulipc/internal/core"
)

func TestConnectLifecycle(t *testing.T) {
	sys, err := NewSystem(Options{Alg: core.BSLS, Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := sys.Server()
	done := make(chan int64, 1)
	go func() { done <- srv.Serve(nil) }()

	c1, err := sys.Connect()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sys.Connect()
	if err != nil {
		t.Fatal(err)
	}
	if c1.Slot() == c2.Slot() {
		t.Fatal("two connections share a slot")
	}
	// All slots in use.
	if _, err := sys.Connect(); err == nil {
		t.Fatal("third connection accepted with 2 slots")
	}
	ans, err := c1.Send(core.Msg{Op: core.OpEcho, Val: 5})
	if err != nil || ans.Val != 5 {
		t.Fatalf("send: %v %v", ans, err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	// The slot is reusable.
	c3, err := sys.Connect()
	if err != nil {
		t.Fatalf("reconnect after close: %v", err)
	}
	if c3.Slot() != c1.Slot() {
		t.Fatalf("slot not reused: %d vs %d", c3.Slot(), c1.Slot())
	}
	c3.Close()
	c2.Close()
	<-done
}

func TestConnClosedOps(t *testing.T) {
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := sys.Server()
	go srv.Serve(nil)
	c, err := sys.Connect()
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
	if _, err := c.Send(core.Msg{Op: core.OpEcho}); err == nil {
		t.Fatal("send on closed connection accepted")
	}
	if err := c.SendAsync(core.Msg{Op: core.OpEcho}); err == nil {
		t.Fatal("async send on closed connection accepted")
	}
	if _, err := c.RecvReply(); err == nil {
		t.Fatal("recv on closed connection accepted")
	}
}

func TestConnectChurn(t *testing.T) {
	// Many short-lived clients over few slots: the long-running server
	// must survive arbitrary connect/disconnect sequences. Serve exits
	// when the connected count hits zero, so the test holds one anchor
	// connection open for the duration.
	sys, err := NewSystem(Options{Alg: core.BSLS, MaxSpin: 4, Clients: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := sys.Server()
	done := make(chan int64, 1)
	go func() { done <- srv.Serve(nil) }()

	anchor, err := sys.Connect()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, err := sys.Connect()
				if err != nil {
					continue // transient slot exhaustion is expected
				}
				for j := 0; j < 5; j++ {
					ans, err := c.Send(core.Msg{Op: core.OpEcho, Seq: int32(j)})
					if err != nil || ans.Seq != int32(j) {
						t.Errorf("g%d: bad reply %+v %v", g, ans, err)
					}
				}
				c.Close()
			}
		}(g)
	}
	wg.Wait()
	anchor.Close()
	<-done
}
