// Package trace records and renders execution time-lines from the
// simulator — the same "Execution Interleaving" presentation the paper's
// Figure 4 uses: one column per process, steps progressing downwards.
package trace

import (
	"fmt"
	"io"
	"strings"

	"ulipc/internal/sim"
)

// Event is one recorded engine event.
type Event struct {
	T      sim.Time
	CPU    int
	Proc   string
	What   string
	Detail string
}

// Recorder accumulates engine trace events. The engine is single
// threaded, so no locking is needed.
type Recorder struct {
	Events []Event
	Max    int // stop recording beyond this many events (0 = 100000)
}

// Fn returns the sim.TraceFn to plug into sim.Config.Trace.
func (r *Recorder) Fn() sim.TraceFn {
	return func(t sim.Time, cpu int, proc string, what, detail string) {
		limit := r.Max
		if limit == 0 {
			limit = 100000
		}
		if len(r.Events) >= limit {
			return
		}
		r.Events = append(r.Events, Event{T: t, CPU: cpu, Proc: proc, What: what, Detail: detail})
	}
}

// Render writes a flat chronological listing.
func (r *Recorder) Render(w io.Writer) {
	for _, e := range r.Events {
		detail := e.Detail
		if detail != "" {
			detail = " " + detail
		}
		fmt.Fprintf(w, "%12.3fus cpu%d %-10s %s%s\n", float64(e.T)/1000, e.CPU, e.Proc, e.What, detail)
	}
}

// RenderInterleaving writes a Figure 4 style multi-column time-line for
// the named processes; events from other processes are dropped.
func (r *Recorder) RenderInterleaving(w io.Writer, procs []string) {
	col := map[string]int{}
	for i, p := range procs {
		col[p] = i
	}
	const width = 26
	header := make([]string, len(procs))
	for i, p := range procs {
		header[i] = pad(p, width)
	}
	fmt.Fprintf(w, "%14s  %s\n", "time (us)", strings.Join(header, ""))
	for _, e := range r.Events {
		c, ok := col[e.Proc]
		if !ok {
			continue
		}
		cells := make([]string, len(procs))
		for i := range cells {
			cells[i] = strings.Repeat(" ", width)
		}
		text := e.What
		if e.Detail != "" {
			text += " " + e.Detail
		}
		cells[c] = pad(text, width)
		fmt.Fprintf(w, "%14.3f  %s\n", float64(e.T)/1000, strings.Join(cells, ""))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	return s + strings.Repeat(" ", w-len(s))
}
