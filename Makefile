GO ?= go

.PHONY: build test race vet bench bench-live lint lint-deprecated cover bench-gate ab chaos xproc overload

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem

# Regenerate the live wall-clock benchmark document. One run per cell of
# {queue configuration} x {protocol} x {1,4,16 clients}, then the
# server-group scale-out sweep: {2,4,8 shards} x {16,64,256 clients},
# then the zero-copy payload sweep (0/64/1K/4K bytes, each non-zero size
# as an interleaved copy vs lease-transfer pair with a bytes/s column),
# then the cross-process sweep (each xproc cell preceded by its
# in-process xproc-base twin, plus the payload pairs cross-process),
# each group of cells interleaved with its baseline on the same machine
# state (DESIGN.md §6, §10, §12, §13).
# -watchdog 0 keeps the recorded trajectory on the legacy (error-less)
# send path so successive BENCH_live.json snapshots stay comparable;
# payload cells run context-threaded and get a watchdog regardless.
bench-live:
	$(GO) run ./cmd/ipcbench -live -proc -watchdog 0 -best 3 -shards 2,4,8 -paysize 0,64,1024,4096 -json -o BENCH_live.json
	@echo wrote BENCH_live.json

# Same linters as the CI lint job (.golangci.yml). Needs golangci-lint
# on PATH; CI installs it via golangci/golangci-lint-action.
lint:
	golangci-lint run ./...

# The repo's own code must not use the deprecated single-knob tuning
# options (WithMaxSpin/WithThrottle/WithSleepScale) — they exist for
# downstream compatibility only; in-repo callers take WithTuning or
# WithAdaptive. The definitions (internal/livebind/system.go) and the
# facade aliases (ulipc.go) are the only legitimate mentions.
lint-deprecated:
	@bad=$$(grep -rn --include='*.go' -E 'WithMaxSpin\(|WithThrottle\(|WithSleepScale\(' . \
		| grep -v -E '^\./(internal/livebind/system\.go|ulipc\.go):' || true); \
	if [ -n "$$bad" ]; then \
		echo "deprecated tuning options used in-repo (use WithTuning/WithAdaptive):"; \
		echo "$$bad"; exit 1; \
	fi
	@echo lint-deprecated: clean

# Statement coverage over the library packages, gated on the committed
# floor (.github/coverage-floor) exactly as the CI coverage job does.
cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	floor=$$(cat .github/coverage-floor); \
	echo "total statement coverage: $$total% (floor: $$floor%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit !(t+0 >= f+0) }' || \
		{ echo "coverage $$total% fell below the committed floor $$floor%"; exit 1; }

# The PR bench gate, runnable locally: a short BSS/BSLS/BSA subset plus
# one sharded cell (4 clients x 2 shards with its interleaved baseline)
# and one payload pair (1KiB copy vs zero-copy, gated on bytes/s),
# three runs, each cell's fastest sample compared against the committed
# BENCH_live.json (warn >10%, fail >25%).
bench-gate:
	for i in 1 2 3; do \
		$(GO) run ./cmd/ipcbench -live -watchdog 0 -json -algs BSS,BSLS,BSA -clients 1 -shards 2 -shardclients 4 -paysize 1024 -msgs 1000 -o /tmp/bench_pr_$$i.json || exit 1; \
	done
	$(GO) run ./cmd/benchcmp -warn 10 -fail 25 BENCH_live.json /tmp/bench_pr_1.json /tmp/bench_pr_2.json /tmp/bench_pr_3.json

# Observability overhead A/B: interleaved pairs of the BSLS/1-client
# cell with the hooks disabled and enabled, medians compared.
ab:
	$(GO) run ./cmd/ipcbench -live -ab 7 -algs BSLS -clients 1 -msgs 5000

# Chaos sweep: seeded fault injection (crashes in queue critical
# sections, dropped/duplicated/delayed wake-ups) across the protocol
# matrix — including the payload-leak cells, whose lease-conservation
# audit fails the cell if any arena block goes missing — plus the
# crash/recovery model check. Exits non-zero if any cell deadlocks,
# leaks pool refs or payload blocks, or misses a peer death — see
# DESIGN.md §9, §13. Override the seed with SEED=n.
SEED ?= 1
chaos:
	$(GO) run ./cmd/ipcrace -chaos
	$(GO) run ./cmd/ipcbench -chaos -seed $(SEED) -paysize 1024

# Overload doctrine sweep: the open-loop unit/chaos cells under the
# race detector (deadline shedding, admission, the SIGKILL-a-client-
# mid-overload cell), then the full open-loop overload sweep — per
# protocol a closed-loop capacity probe anchors open-loop cells at
# 0.5x/1x/2x that capacity, Poisson and bursty arrivals. The headline:
# at 2x the goodput column should hold near the 1x plateau while sheds
# and rejects absorb the excess (DESIGN.md §14). Override the seed with
# SEED=n.
overload:
	$(GO) test -race -count=1 -run 'OpenLoop|Overload|Shed|Admission|Backoff|RetryBudget|Circuit|CopyFallback' ./internal/...
	$(GO) run ./cmd/ipcbench -openloop -burst -seed $(SEED)

# Cross-process smoke, runnable locally: the futex wait/wake model
# check, two real processes exchanging messages through a memfd arena
# (in-process vs cross-process A/B, plus the 1KiB copy/zero-copy payload
# pair), then the SIGKILL-the-server chaos cells — header-only and
# mid-lease — the same sequence as the CI cross-process-smoke job. See
# DESIGN.md §12, §13. Override the seed with SEED=n.
xproc:
	$(GO) test -run TestFutex ./internal/protomodel/
	$(GO) run -race ./cmd/ipcbench -proc -quick -msgs 500 -paysize 1024
	$(GO) run -race ./cmd/ipcbench -proc -chaos -seed $(SEED) -paysize 0,1024
