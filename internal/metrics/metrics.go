// Package metrics collects the per-process and per-run counters the paper
// uses to explain its results: voluntary/involuntary context switches (the
// getrusage analysis of Section 2.2), yields per round trip, semaphore
// operations, and the BSLS spin-loop statistics of Section 4.2.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Proc holds counters for a single (simulated or live) process. All fields
// are updated with atomics so the live runtime can share the type.
type Proc struct {
	Name string

	VoluntaryCS   atomic.Int64 // context switches where the process gave up the CPU
	InvoluntaryCS atomic.Int64 // quantum expiry / preemption
	Yields        atomic.Int64 // yield() system calls
	BusyWaits     atomic.Int64 // busy_wait invocations (spin or yield)
	SemP          atomic.Int64 // semaphore down operations
	SemV          atomic.Int64 // semaphore up operations
	Blocks        atomic.Int64 // P operations that actually slept
	Wakeups       atomic.Int64 // V operations that woke a sleeper
	Sleeps        atomic.Int64 // sleep(1) queue-full naps
	Syscalls      atomic.Int64 // total system calls
	Handoffs      atomic.Int64 // handoff() system calls

	MsgsSent     atomic.Int64
	MsgsReceived atomic.Int64

	// Allocation-batching statistics: batched transfers between a
	// producer port's private ref cache and the shared free pool
	// (livebind Options.AllocBatch). Refills/MsgsSent approximates 1/k
	// when batching is effective.
	PoolRefills atomic.Int64 // batched refill fetches from the pool
	PoolSpills  atomic.Int64 // batched returns of cached refs

	// Payload-arena statistics: batched block-cache transfers (the slab
	// analogue of PoolRefills/PoolSpills) and allocation backpressure
	// (class-exhaustion fall-throughs surfaced to callers).
	BlockRefills atomic.Int64 // batched block refills from the slab arena
	BlockSpills  atomic.Int64 // batched block returns to the slab arena
	BlockFails   atomic.Int64 // payload allocations refused (all classes empty)

	// BSLS spin-loop statistics (Section 4.2): how often the poll loop
	// fell through to the blocking path, and total iterations executed.
	SpinLoops     atomic.Int64 // number of poll loops entered
	SpinIters     atomic.Int64 // total poll iterations
	SpinFallThrus atomic.Int64 // loops that exhausted MAX_SPIN

	// Robustness-layer statistics (the *Ctx paths): deadline expiries,
	// cancellations, and bounded queue-full retries.
	Timeouts atomic.Int64 // cancellable waits ended by a deadline
	Cancels  atomic.Int64 // cancellable waits ended by explicit cancel
	Retries  atomic.Int64 // queue-full retry-with-backoff rounds

	// Overload-doctrine statistics (DESIGN.md §14): admission rejects,
	// server-side deadline sheds, client-observed late replies, payload
	// heap fallbacks, and shard quarantine trips.
	Overloads     atomic.Int64 // sends rejected by admission or a dry retry budget
	Sheds         atomic.Int64 // expired messages dropped at server dequeue
	Expiries      atomic.Int64 // replies that arrived after their deadline
	CopyFallbacks atomic.Int64 // payload allocs degraded to the heap fallback
	Quarantines   atomic.Int64 // shard circuits opened on sustained high water

	// Recovery statistics (the chaos/peer-death machinery): what the
	// sweeper detected and repaired. Attributed to the sweeper's own
	// Proc, so they roll up through Total() like everything else.
	Crashes      atomic.Int64 // injected crash panics recovered by wrappers
	PeerDeaths   atomic.Int64 // actors declared dead by the sweeper
	LockReclaims atomic.Int64 // robust queue locks revoked from dead holders
	OrphanMsgs   atomic.Int64 // orphaned queued messages drained to the pool
	OrphanRefs   atomic.Int64 // leaked in-flight refs returned to the pool
	OrphanBlocks atomic.Int64 // payload blocks reclaimed from dead peers
	WakeRescues  atomic.Int64 // rescue Vs issued for lost wake-ups

	CPUTimeNS atomic.Int64 // virtual (sim) or estimated (live) CPU time
}

// SwitchesTotal returns voluntary + involuntary context switches.
func (p *Proc) SwitchesTotal() int64 {
	return p.VoluntaryCS.Load() + p.InvoluntaryCS.Load()
}

// FallThroughRate returns the fraction of BSLS poll loops that exhausted
// MAX_SPIN and fell through to the blocking path.
func (p *Proc) FallThroughRate() float64 {
	loops := p.SpinLoops.Load()
	if loops == 0 {
		return 0
	}
	return float64(p.SpinFallThrus.Load()) / float64(loops)
}

// AvgSpinIters returns the mean number of poll iterations per poll loop.
func (p *Proc) AvgSpinIters() float64 {
	loops := p.SpinLoops.Load()
	if loops == 0 {
		return 0
	}
	return float64(p.SpinIters.Load()) / float64(loops)
}

// Snapshot is a plain-value copy of a Proc's counters, suitable for
// aggregation and printing.
type Snapshot struct {
	Name          string
	VoluntaryCS   int64
	InvoluntaryCS int64
	Yields        int64
	BusyWaits     int64
	SemP          int64
	SemV          int64
	Blocks        int64
	Wakeups       int64
	Sleeps        int64
	Syscalls      int64
	Handoffs      int64
	MsgsSent      int64
	MsgsReceived  int64
	PoolRefills   int64
	PoolSpills    int64
	BlockRefills  int64
	BlockSpills   int64
	BlockFails    int64
	SpinLoops     int64
	SpinIters     int64
	SpinFallThrus int64
	Timeouts      int64
	Cancels       int64
	Retries       int64
	Overloads     int64
	Sheds         int64
	Expiries      int64
	CopyFallbacks int64
	Quarantines   int64
	Crashes       int64
	PeerDeaths    int64
	LockReclaims  int64
	OrphanMsgs    int64
	OrphanRefs    int64
	OrphanBlocks  int64
	WakeRescues   int64
	CPUTimeNS     int64
}

// Snapshot returns a point-in-time copy of the counters.
func (p *Proc) Snapshot() Snapshot {
	return Snapshot{
		Name:          p.Name,
		VoluntaryCS:   p.VoluntaryCS.Load(),
		InvoluntaryCS: p.InvoluntaryCS.Load(),
		Yields:        p.Yields.Load(),
		BusyWaits:     p.BusyWaits.Load(),
		SemP:          p.SemP.Load(),
		SemV:          p.SemV.Load(),
		Blocks:        p.Blocks.Load(),
		Wakeups:       p.Wakeups.Load(),
		Sleeps:        p.Sleeps.Load(),
		Syscalls:      p.Syscalls.Load(),
		Handoffs:      p.Handoffs.Load(),
		MsgsSent:      p.MsgsSent.Load(),
		MsgsReceived:  p.MsgsReceived.Load(),
		PoolRefills:   p.PoolRefills.Load(),
		PoolSpills:    p.PoolSpills.Load(),
		BlockRefills:  p.BlockRefills.Load(),
		BlockSpills:   p.BlockSpills.Load(),
		BlockFails:    p.BlockFails.Load(),
		SpinLoops:     p.SpinLoops.Load(),
		SpinIters:     p.SpinIters.Load(),
		SpinFallThrus: p.SpinFallThrus.Load(),
		Timeouts:      p.Timeouts.Load(),
		Cancels:       p.Cancels.Load(),
		Retries:       p.Retries.Load(),
		Overloads:     p.Overloads.Load(),
		Sheds:         p.Sheds.Load(),
		Expiries:      p.Expiries.Load(),
		CopyFallbacks: p.CopyFallbacks.Load(),
		Quarantines:   p.Quarantines.Load(),
		Crashes:       p.Crashes.Load(),
		PeerDeaths:    p.PeerDeaths.Load(),
		LockReclaims:  p.LockReclaims.Load(),
		OrphanMsgs:    p.OrphanMsgs.Load(),
		OrphanRefs:    p.OrphanRefs.Load(),
		OrphanBlocks:  p.OrphanBlocks.Load(),
		WakeRescues:   p.WakeRescues.Load(),
		CPUTimeNS:     p.CPUTimeNS.Load(),
	}
}

// Add accumulates other into s (Name is kept).
func (s *Snapshot) Add(other Snapshot) {
	s.VoluntaryCS += other.VoluntaryCS
	s.InvoluntaryCS += other.InvoluntaryCS
	s.Yields += other.Yields
	s.BusyWaits += other.BusyWaits
	s.SemP += other.SemP
	s.SemV += other.SemV
	s.Blocks += other.Blocks
	s.Wakeups += other.Wakeups
	s.Sleeps += other.Sleeps
	s.Syscalls += other.Syscalls
	s.Handoffs += other.Handoffs
	s.MsgsSent += other.MsgsSent
	s.MsgsReceived += other.MsgsReceived
	s.PoolRefills += other.PoolRefills
	s.PoolSpills += other.PoolSpills
	s.BlockRefills += other.BlockRefills
	s.BlockSpills += other.BlockSpills
	s.BlockFails += other.BlockFails
	s.SpinLoops += other.SpinLoops
	s.SpinIters += other.SpinIters
	s.SpinFallThrus += other.SpinFallThrus
	s.Timeouts += other.Timeouts
	s.Cancels += other.Cancels
	s.Retries += other.Retries
	s.Overloads += other.Overloads
	s.Sheds += other.Sheds
	s.Expiries += other.Expiries
	s.CopyFallbacks += other.CopyFallbacks
	s.Quarantines += other.Quarantines
	s.Crashes += other.Crashes
	s.PeerDeaths += other.PeerDeaths
	s.LockReclaims += other.LockReclaims
	s.OrphanMsgs += other.OrphanMsgs
	s.OrphanRefs += other.OrphanRefs
	s.OrphanBlocks += other.OrphanBlocks
	s.WakeRescues += other.WakeRescues
	s.CPUTimeNS += other.CPUTimeNS
}

// SwitchesTotal returns voluntary + involuntary context switches.
func (s Snapshot) SwitchesTotal() int64 { return s.VoluntaryCS + s.InvoluntaryCS }

// YieldsPerMsg returns yields divided by messages sent (the paper's
// "~2.5 yields per round-trip" instrumentation), or 0 if no messages.
func (s Snapshot) YieldsPerMsg() float64 {
	if s.MsgsSent == 0 {
		return 0
	}
	return float64(s.Yields) / float64(s.MsgsSent)
}

func (s Snapshot) String() string {
	return fmt.Sprintf("%s: vcs=%d ivcs=%d yields=%d P=%d V=%d blocks=%d wake=%d msgs=%d/%d",
		s.Name, s.VoluntaryCS, s.InvoluntaryCS, s.Yields, s.SemP, s.SemV,
		s.Blocks, s.Wakeups, s.MsgsSent, s.MsgsReceived)
}

// Set is a collection of per-process metrics for one run. Registration
// and aggregation are safe for concurrent use (the live runtime creates
// client handles dynamically).
type Set struct {
	mu    sync.Mutex
	procs []*Proc
}

// NewSet returns an empty metrics set.
func NewSet() *Set { return &Set{} }

// NewProc registers and returns a new per-process counter block.
func (s *Set) NewProc(name string) *Proc {
	p := &Proc{Name: name}
	s.mu.Lock()
	s.procs = append(s.procs, p)
	s.mu.Unlock()
	return p
}

// Procs returns the registered processes in registration order.
func (s *Set) Procs() []*Proc {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Proc(nil), s.procs...)
}

// Snapshots returns snapshots of all processes, sorted by name.
func (s *Set) Snapshots() []Snapshot {
	procs := s.Procs()
	out := make([]Snapshot, 0, len(procs))
	for _, p := range procs {
		out = append(out, p.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Total returns the sum over all processes.
func (s *Set) Total() Snapshot {
	t := Snapshot{Name: "total"}
	for _, p := range s.Procs() {
		t.Add(p.Snapshot())
	}
	return t
}

// ByPrefix sums the processes whose name begins with prefix (e.g. "client").
func (s *Set) ByPrefix(prefix string) Snapshot {
	t := Snapshot{Name: prefix + "*"}
	for _, p := range s.Procs() {
		if strings.HasPrefix(p.Name, prefix) {
			t.Add(p.Snapshot())
		}
	}
	return t
}

// Find returns the snapshot for the named process, if present.
func (s *Set) Find(name string) (Snapshot, bool) {
	for _, p := range s.Procs() {
		if p.Name == name {
			return p.Snapshot(), true
		}
	}
	return Snapshot{}, false
}
