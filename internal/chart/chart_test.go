package chart

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("short", "1.00")
	tbl.AddRow("much-longer-name", "2.50")
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "name", "value", "short", "much-longer-name", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: 'value' header and both values start at the same
	// offset.
	h := strings.Index(lines[1], "value")
	r1 := strings.Index(lines[3], "1.00")
	r2 := strings.Index(lines[4], "2.50")
	if h != r1 || r1 != r2 {
		t.Errorf("columns misaligned: %d %d %d\n%s", h, r1, r2, out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := &Table{Headers: []string{"a"}}
	tbl.AddRow("x", "extra")
	var sb strings.Builder
	tbl.Render(&sb) // must not panic
	if !strings.Contains(sb.String(), "extra") {
		t.Error("extra cell dropped")
	}
}

func TestPlotRenderContainsMarkers(t *testing.T) {
	p := &Plot{
		Title:  "throughput",
		XLabel: "clients",
		YLabel: "msg/ms",
		X:      []float64{1, 2, 3},
		Series: []Series{
			{Name: "BSS", Y: []float64{1, 2, 3}},
			{Name: "SYSV", Y: []float64{1, 1, 1}},
		},
	}
	var sb strings.Builder
	p.Render(&sb, 40, 10)
	out := sb.String()
	for _, want := range []string{"throughput", "*", "o", "BSS", "SYSV", "clients", "msg/ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotEmptyData(t *testing.T) {
	var sb strings.Builder
	(&Plot{Title: "empty"}).Render(&sb, 40, 10)
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("empty plot output: %q", sb.String())
	}

	sb.Reset()
	(&Plot{Title: "nan", X: []float64{1}, Series: []Series{{Name: "s", Y: nil}}}).Render(&sb, 40, 10)
	if sb.Len() == 0 {
		t.Error("nan plot produced nothing")
	}
}

func TestPlotFlatSeries(t *testing.T) {
	p := &Plot{
		X:      []float64{1, 2},
		Series: []Series{{Name: "flat", Y: []float64{5, 5}}},
	}
	var sb strings.Builder
	p.Render(&sb, 30, 8) // must not divide by zero
	if !strings.Contains(sb.String(), "*") {
		t.Error("flat series not drawn")
	}
}

func TestPlotDefaultSize(t *testing.T) {
	p := &Plot{X: []float64{0, 1}, Series: []Series{{Name: "s", Y: []float64{0, 1}}}}
	var sb strings.Builder
	p.Render(&sb, 0, 0)
	if sb.Len() == 0 {
		t.Error("default-size plot empty")
	}
}

func TestPad(t *testing.T) {
	if pad("ab", 4) != "ab  " {
		t.Errorf("pad = %q", pad("ab", 4))
	}
	if pad("abcd", 2) != "abcd" {
		t.Errorf("pad = %q", pad("abcd", 2))
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tbl := &Table{Title: "demo", Headers: []string{"a", "b"}}
	tbl.AddRow("1", "x|y")
	var sb strings.Builder
	tbl.RenderMarkdown(&sb)
	out := sb.String()
	for _, want := range []string{"**demo**", "| a | b |", "| --- | --- |", "x\\|y"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	var empty strings.Builder
	(&Table{}).RenderMarkdown(&empty) // must not panic
}
