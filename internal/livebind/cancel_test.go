package livebind

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/metrics"
)

// TestCancelRacingWakeup drives SendCtx with deadlines straddling the
// park window of each blocking protocol while the server keeps
// replying: the awake-flag race of Figure 4, revisited under
// cancellation. The assertions are exactly the acceptance property —
// cancelled waits return promptly, and no wake destined for a live
// waiter is ever swallowed (the final full-deadline exchange succeeds
// and the reply semaphore count stays bounded).
func TestCancelRacingWakeup(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 100
	}
	for _, alg := range []core.Algorithm{core.BSW, core.BSWY, core.BSLS} {
		t.Run(alg.String(), func(t *testing.T) {
			sys, err := NewSystem(Options{Alg: alg, Clients: 1, SleepScale: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			srv := sys.Server()
			serverDone := make(chan error, 1)
			go func() {
				// Stall occasionally so some clients cancel while parked
				// waiting for the reply rather than on the fast path.
				n := 0
				_, err := srv.ServeCtx(context.Background(), func(m *core.Msg) {
					n++
					if n%7 == 0 {
						time.Sleep(20 * time.Microsecond)
					}
				})
				serverDone <- err
			}()

			cl, err := sys.Client(0)
			if err != nil {
				t.Fatal(err)
			}
			long := func() (context.Context, context.CancelFunc) {
				return context.WithTimeout(context.Background(), 10*time.Second)
			}
			ctx, cancel := long()
			if _, err := cl.SendCtx(ctx, core.Msg{Op: core.OpConnect}); err != nil {
				t.Fatal(err)
			}
			cancel()

			cancelled := 0
			for i := 0; i < iters; i++ {
				d := time.Duration(i%9) * 5 * time.Microsecond
				ctx, cancel := context.WithTimeout(context.Background(), d)
				ans, err := cl.SendCtx(ctx, core.Msg{Op: core.OpEcho, Seq: int32(i), Val: float64(i)})
				cancel()
				switch {
				case err == nil:
					if ans.Seq != int32(i) || ans.Val != float64(i) {
						t.Fatalf("iter %d: misattributed reply %+v", i, ans)
					}
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					cancelled++
				default:
					t.Fatalf("iter %d: unexpected error %v", i, err)
				}
			}
			t.Logf("%s: %d/%d sends cancelled, lag drained to %d", alg, cancelled, iters, cl.Lag())

			// Zero lost wake-ups: a full-deadline exchange still completes.
			ctx, cancel = long()
			ans, err := cl.SendCtx(ctx, core.Msg{Op: core.OpEcho, Seq: 7777, Val: 42})
			if err != nil || ans.Seq != 7777 {
				t.Fatalf("post-stress exchange: %+v, %v", ans, err)
			}
			if _, err := cl.SendCtx(ctx, core.Msg{Op: core.OpDisconnect}); err != nil {
				t.Fatalf("disconnect: %v", err)
			}
			cancel()
			if err := <-serverDone; err != nil {
				t.Fatalf("server: %v", err)
			}
			if n := sys.ReplyChannel(0).SemCount(); n > 1 {
				t.Fatalf("reply semaphore count %d at quiescence: tokens leaked", n)
			}
			shutCtx, shutCancel := context.WithTimeout(context.Background(), time.Second)
			defer shutCancel()
			if err := sys.Shutdown(shutCtx); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		})
	}
}

// TestShutdownUnblocksParkedClients parks BSLS clients waiting for
// replies that will never come (no server is consuming), with
// non-empty producer caches from an earlier served phase, then shuts
// down: every parked waiter must return ErrShutdown well before its
// own deadline, and the batched caches must spill back to the pool.
func TestShutdownUnblocksParkedClients(t *testing.T) {
	const clients = 3
	ms := metrics.NewSet()
	sys, err := NewSystem(Options{
		Alg:        core.BSLS,
		Clients:    clients,
		SleepScale: time.Millisecond,
		AllocBatch: 8,
		Metrics:    ms,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: a served burst, so the batched producer ports hold
	// cached refs and the system has real traffic behind it.
	srv := sys.Server()
	serverDone := make(chan error, 1)
	go func() {
		_, err := srv.ServeCtx(context.Background(), nil)
		serverDone <- err
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	// Connect everyone before the first disconnect, or the server's
	// connected count would hit zero early and ServeCtx would exit.
	phase1 := make([]*core.Client, clients)
	for i := range phase1 {
		cl, err := sys.Client(i)
		if err != nil {
			t.Fatal(err)
		}
		phase1[i] = cl
		if _, err := cl.SendCtx(ctx, core.Msg{Op: core.OpConnect}); err != nil {
			t.Fatal(err)
		}
	}
	for i, cl := range phase1 {
		for j := 0; j < 20; j++ {
			if _, err := cl.SendCtx(ctx, core.Msg{Op: core.OpEcho, Seq: int32(j)}); err != nil {
				t.Fatalf("client %d echo %d: %v", i, j, err)
			}
		}
	}
	for _, cl := range phase1 {
		if _, err := cl.SendCtx(ctx, core.Msg{Op: core.OpDisconnect}); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}

	// Phase 2: fresh handles send with nobody consuming — each request
	// is enqueued and the client parks on its reply semaphore.
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cl, err := sys.Client(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cl *core.Client) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_, err := cl.SendCtx(ctx, core.Msg{Op: core.OpEcho})
			errCh <- err
		}(cl)
	}
	time.Sleep(20 * time.Millisecond) // let the BSLS spin budgets expire and the waiters park

	start := time.Now()
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer shutCancel()
	serr := sys.Shutdown(shutCtx)
	if !errors.Is(serr, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with undrainable requests = %v, want DeadlineExceeded", serr)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("parked clients took %v to unblock", elapsed)
	}
	for i := 0; i < clients; i++ {
		if err := <-errCh; !errors.Is(err, core.ErrShutdown) {
			t.Fatalf("parked SendCtx = %v, want ErrShutdown", err)
		}
	}
	if total := ms.Total(); total.PoolSpills == 0 {
		t.Fatalf("no cache spills recorded: %+v", total)
	}
	// Idempotent: a second Shutdown does not re-run teardown; it returns
	// the first call's result, so the drain-deadline failure stays
	// visible to every caller.
	if err := sys.Shutdown(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second Shutdown = %v, want first call's DeadlineExceeded", err)
	}
}

// TestShutdownUnblocksPoolWorkers parks a BSLS worker pool on an empty
// receive queue and shuts down: every ServeCtx must return promptly
// and cleanly.
func TestShutdownUnblocksPoolWorkers(t *testing.T) {
	const workers = 3
	sys, err := NewSystem(Options{Alg: core.BSLS, Clients: 2, SleepScale: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := sys.WorkerPool(workers)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, workers)
	for _, w := range pool {
		go func(w *core.PoolWorker) {
			done <- w.ServeCtx(context.Background(), nil)
		}(w)
	}

	// A little real traffic first, then leave the workers parked.
	cl, err := sys.PoolClient(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for j := 0; j < 10; j++ {
		if ans, err := cl.SendCtx(ctx, core.Msg{Op: core.OpEcho, Seq: int32(j)}); err != nil || ans.Seq != int32(j) {
			t.Fatalf("echo %d: %+v, %v", j, ans, err)
		}
	}
	time.Sleep(10 * time.Millisecond)

	shutCtx, shutCancel := context.WithTimeout(context.Background(), time.Second)
	defer shutCancel()
	if err := sys.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i := 0; i < workers; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("worker ServeCtx = %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("worker still parked after Shutdown")
		}
	}
	// New sends observe the refusing/closed port and fail fast.
	if _, err := cl.SendCtx(ctx, core.Msg{Op: core.OpEcho}); !errors.Is(err, core.ErrShutdown) {
		t.Fatalf("post-shutdown SendCtx = %v, want ErrShutdown", err)
	}
}

// TestSendCtxDeadlineWhileParked checks the headline acceptance bound
// directly: a client parked in each blocking protocol with no server
// returns context.DeadlineExceeded close to its deadline.
func TestSendCtxDeadlineWhileParked(t *testing.T) {
	for _, alg := range []core.Algorithm{core.BSW, core.BSWY, core.BSLS} {
		t.Run(alg.String(), func(t *testing.T) {
			sys, err := NewSystem(Options{Alg: alg, Clients: 1, SleepScale: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			cl, err := sys.Client(0)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			_, err = cl.SendCtx(ctx, core.Msg{Op: core.OpEcho})
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want DeadlineExceeded", err)
			}
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Fatalf("deadline overshot: %v", elapsed)
			}
			if cl.Lag() != 1 {
				t.Fatalf("lag = %d, want 1 (request enqueued, reply owed)", cl.Lag())
			}
		})
	}
}

// TestConnectCtxCancelledDoesNotReuseSlot pins the slot-quarantine
// rule: a handshake cancelled after its request was enqueued leaves a
// reply owed, so the slot must not return to the free list (a new
// conn there would inherit the stale reply).
func TestConnectCtxCancelledDoesNotReuseSlot(t *testing.T) {
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 2, SleepScale: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// No server: ConnectCtx enqueues the handshake and parks.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := sys.ConnectCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ConnectCtx = %v, want DeadlineExceeded", err)
	}

	// Now serve, and connect until the slots run out: the quarantined
	// slot must be missing from the pool.
	srv := sys.Server()
	go func() { _, _ = srv.ServeCtx(context.Background(), nil) }()
	long, lcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer lcancel()
	c1, err := sys.ConnectCtx(long)
	if err != nil {
		t.Fatalf("connect on remaining slot: %v", err)
	}
	if _, err := sys.ConnectCtx(long); !errors.Is(err, ErrNoFreeSlots) {
		t.Fatalf("second connect = %v, want ErrNoFreeSlots (one slot quarantined)", err)
	}
	if ans, err := c1.SendCtx(long, core.Msg{Op: core.OpEcho, Seq: 5}); err != nil || ans.Seq != 5 {
		t.Fatalf("echo on live conn: %+v, %v", ans, err)
	}
	if err := c1.CloseCtx(long); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Send on a closed conn is a typed misuse error.
	if _, err := c1.SendCtx(long, core.Msg{Op: core.OpEcho}); !errors.Is(err, core.ErrDisconnected) {
		t.Fatalf("send on closed conn = %v, want ErrDisconnected", err)
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), time.Second)
	defer shutCancel()
	if err := sys.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestShutdownConcurrent hammers Shutdown from many goroutines at once:
// exactly one runs the teardown phases, every caller gets the first
// call's result, and the race detector sees no unsynchronised state.
// (Sequential idempotence is asserted in
// TestShutdownUnblocksParkedClients; this is the concurrent half of the
// contract.)
func TestShutdownConcurrent(t *testing.T) {
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 1, SleepScale: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := sys.Server()
	serverDone := make(chan error, 1)
	go func() {
		_, err := srv.ServeCtx(context.Background(), nil)
		serverDone <- err
	}()
	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := cl.SendCtx(ctx, core.Msg{Op: core.OpConnect}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SendCtx(ctx, core.Msg{Op: core.OpDisconnect}); err != nil {
		t.Fatal(err)
	}
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}

	const callers = 8
	errs := make(chan error, callers)
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		go func() {
			start.Wait()
			sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer scancel()
			errs <- sys.Shutdown(sctx)
		}()
	}
	start.Done()
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent Shutdown = %v", err)
		}
	}
}
