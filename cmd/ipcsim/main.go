// Command ipcsim runs a single client/server configuration on the
// discrete-event kernel and reports throughput, round-trip time, and the
// per-process counters (context switches, yields, semaphore traffic) the
// paper's analysis relies on. With -trace it also prints the scheduler
// event time-line.
//
// Examples:
//
//	ipcsim -machine sgi -alg BSS -clients 3 -msgs 1000
//	ipcsim -machine linux -policy linuxmod -alg BSWY -handoff
//	ipcsim -machine challenge -alg BSLS -maxspin 2 -clients 6
//	ipcsim -machine sgi -alg BSW -clients 1 -msgs 3 -trace
package main

import (
	"flag"
	"fmt"
	"os"

	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/trace"
	"ulipc/internal/workload"
)

func main() {
	var (
		machineName = flag.String("machine", "sgi", "machine model: sgi, ibm, challenge, linux")
		policy      = flag.String("policy", "", "scheduler policy: degrading (default), fixed, linux10, linuxmod")
		algName     = flag.String("alg", "BSS", "protocol: BSS, BSW, BSWY, BSLS (or 'sysv' for the baseline)")
		clients     = flag.Int("clients", 1, "number of client processes")
		msgs        = flag.Int("msgs", 1000, "requests per client")
		maxSpin     = flag.Int("maxspin", core.DefaultMaxSpin, "BSLS MAX_SPIN")
		queueCap    = flag.Int("queuecap", 64, "shared queue capacity")
		handoff     = flag.Bool("handoff", false, "use the handoff(pid) extension")
		throttle    = flag.Int("throttle", 0, "server wake throttle (0 = unlimited)")
		serverWork  = flag.Int64("work", 0, "server-side processing per request, microseconds")
		think       = flag.Int64("think", 0, "client think time between requests, microseconds")
		background  = flag.Int("bg", 0, "CPU-bound background processes (multiprogramming)")
		duplex      = flag.Bool("duplex", false, "thread-per-client architecture (duplex queue pair per client)")
		workers     = flag.Int("workers", 1, "server worker pool size (>1: shared queue, counted-waiters wakes)")
		traceEvents = flag.Int("trace", 0, "print the first N scheduler events (0 = no trace)")
	)
	flag.Parse()

	m, ok := machine.ByName(*machineName)
	if !ok {
		fmt.Fprintf(os.Stderr, "ipcsim: unknown machine %q\n", *machineName)
		os.Exit(2)
	}
	cfg := workload.Config{
		Machine:     m,
		Policy:      *policy,
		Clients:     *clients,
		Msgs:        *msgs,
		MaxSpin:     *maxSpin,
		QueueCap:    *queueCap,
		Handoff:     *handoff,
		Throttle:    *throttle,
		ServerWork:  *serverWork * 1000,
		ClientThink: *think * 1000,
		Background:  *background,
	}
	if *workers > 1 {
		cfg.ServerWorkers = *workers
	}
	var rec *trace.Recorder
	if *traceEvents > 0 {
		rec = &trace.Recorder{Max: *traceEvents}
		cfg.Trace = rec.Fn()
	}
	if *duplex {
		cfg.Arch = workload.ArchThreadPerClient
	}
	if *algName == "sysv" || *algName == "SYSV" {
		cfg.Transport = workload.TransportSysV
	} else {
		alg, err := core.AlgorithmByName(*algName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipcsim:", err)
			os.Exit(2)
		}
		cfg.Alg = alg
	}

	res, err := workload.RunSim(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipcsim:", err)
		os.Exit(1)
	}

	fmt.Printf("machine   %s, policy %s\n", m, flagOr(*policy, "degrading"))
	fmt.Printf("workload  %d client(s) x %d msgs, arch %s, transport %s", *clients, *msgs, cfg.Arch, cfg.Transport)
	if cfg.Transport == workload.TransportULIPC {
		fmt.Printf("/%s", cfg.Alg)
		if cfg.Alg == core.BSLS {
			fmt.Printf(" (MAX_SPIN=%d)", *maxSpin)
		}
	}
	fmt.Println()
	fmt.Printf("result    %.2f messages/ms, %.1f us mean round trip, %.3f ms elapsed\n",
		res.Throughput, res.RTTMicros, float64(res.Duration)/1e6)
	fmt.Println()
	fmt.Println("per-process counters:")
	fmt.Printf("  %-8s vcs=%-7d ivcs=%-5d yields=%-7d P=%-7d V=%-7d blocks=%-7d sleeps=%d\n",
		"server", res.Server.VoluntaryCS, res.Server.InvoluntaryCS, res.Server.Yields,
		res.Server.SemP, res.Server.SemV, res.Server.Blocks, res.Server.Sleeps)
	fmt.Printf("  %-8s vcs=%-7d ivcs=%-5d yields=%-7d P=%-7d V=%-7d blocks=%-7d sleeps=%d\n",
		"clients", res.Clients.VoluntaryCS, res.Clients.InvoluntaryCS, res.Clients.Yields,
		res.Clients.SemP, res.Clients.SemV, res.Clients.Blocks, res.Clients.Sleeps)
	if res.Clients.SpinLoops > 0 {
		fmt.Printf("  spin loops: %.1f%% fall-through, %.1f iterations on average\n",
			float64(res.Clients.SpinFallThrus)/float64(res.Clients.SpinLoops)*100,
			float64(res.Clients.SpinIters)/float64(res.Clients.SpinLoops))
	}
	fmt.Printf("  yields per message: client %.2f, server %.2f\n",
		res.Clients.YieldsPerMsg(),
		perMsg(res.Server.Yields, res.Server.MsgsReceived))
	if *background > 0 {
		fmt.Printf("  background: %d process(es), CPU share %.2f during the measurement\n",
			*background, res.BackgroundCPUShare())
	}
	if rec != nil {
		fmt.Printf("\nfirst %d scheduler events:\n", len(rec.Events))
		rec.Render(os.Stdout)
	}
}

func perMsg(v, msgs int64) float64 {
	if msgs == 0 {
		return 0
	}
	return float64(v) / float64(msgs)
}

func flagOr(v, def string) string {
	if v == "" {
		return def
	}
	return v
}
