package livebind

import (
	"sync"
	"sync/atomic"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/fault"
	"ulipc/internal/metrics"
	"ulipc/internal/obs"
	"ulipc/internal/queue"
	"ulipc/internal/shm"
)

// This file is the peer-death detection and self-healing layer: a
// lifetable of per-actor records plus a sweeper goroutine that, when an
// actor dies, reclaims whatever it left behind — robust queue locks,
// orphaned in-flight nodes, and peers blocked forever on a participant
// that will never answer. It is the in-process analogue of the robust-
// futex protocol: crash *notification* normally arrives from the
// goroutine wrapper that recovers an injected fault.Crash panic (the
// FUTEX_OWNER_DIED analogue), with lease expiry as an opt-in secondary
// detector for actors that vanish without a report.

// RecoveryOptions configures the sweeper (see WithRecovery).
type RecoveryOptions struct {
	// SweepInterval is the sweeper's polling period (default 200µs).
	SweepInterval time.Duration

	// Lease, when positive, enables lease-based death detection: a live
	// actor whose beat counter has not moved for longer than the lease
	// is declared dead. Beats are recorded on semaphore operations and
	// sleeps, so an actor parked in a long P with no traffic can trip a
	// short lease — use leases only where actors guarantee periodic
	// activity, or as a last-resort hung-actor detector. 0 disables
	// (deaths are then detected only via ReportCrash/KillActor).
	Lease time.Duration

	// NoRescue disables the lost-wake rescue heuristic (a channel whose
	// queue stays non-empty across consecutive sweeps while its consumer
	// is parked gets a compensating V).
	NoRescue bool
}

// lifeSlot is one actor's record in the recovery lifetable.
type lifeSlot struct {
	id   int32
	name string

	// state: 0 live, 1 dead (reported, not yet swept), 2 recovered.
	// Written under recovery.mu.
	state int

	// beat counts liveness progress; bumped lock-free by the actor's hot
	// operations, sampled by the sweeper for lease expiry.
	beat atomic.Int64

	// What the actor touches, for targeted recovery. Registered at
	// handle-construction time under recovery.mu.
	produces []*Channel
	consumes []*Channel
	ports    []*Port
	bcache   *shm.BlockCache // private payload cache (spilled on death)

	// Sweeper-local lease bookkeeping.
	lastBeat int64
	lastMove time.Time
}

// chanMeta tracks which actors sit on each side of a channel so the
// sweeper knows when a whole side is gone.
type chanMeta struct {
	ch        *Channel
	producers int // registered producer actors
	consumers int // registered consumer actors
	deadProd  int
	deadCons  int
	stuck     int // consecutive sweeps non-empty with a parked consumer
}

// recovery is the sweeper state hung off a System built WithRecovery.
type recovery struct {
	s    *System
	opts RecoveryOptions
	m    *metrics.Proc // the sweeper's own counters ("sweeper" proc)

	mu    sync.Mutex
	slots map[int32]*lifeSlot
	chans map[*Channel]*chanMeta

	stop chan struct{}
	done chan struct{}
}

// ReportCrash inspects a recovered panic value; if it is an injected
// fault.Crash it marks the actor dead in the lifetable — the crash
// notification the harness wrappers deliver — and reports true. Any
// other value (or a system without recovery) reports false, and the
// caller should re-panic: a non-injected panic is a real bug.
func (s *System) ReportCrash(v any) bool {
	c, ok := fault.AsCrash(v)
	if !ok || s.rec == nil {
		return false
	}
	s.rec.m.Crashes.Add(1)
	s.obs.Recorder().Note(obs.EvCrash, c.Actor, int64(c.Point))
	s.rec.kill(c.Actor)
	return true
}

// KillActor marks an actor dead by id (tests, or external supervisors
// that learn of a death out of band). Unknown ids are ignored.
func (s *System) KillActor(id int32) {
	if s.rec != nil {
		s.rec.kill(id)
	}
}

// SweepNow runs one synchronous sweep (recover newly dead actors, drain
// dead channels, rescue lost wakes). The background sweeper does this
// on every tick; tests and teardown call it directly for determinism.
func (s *System) SweepNow() {
	if s.rec != nil {
		s.rec.sweep()
	}
}

func newRecovery(s *System, opts RecoveryOptions) *recovery {
	if opts.SweepInterval <= 0 {
		opts.SweepInterval = 200 * time.Microsecond
	}
	return &recovery{
		s:     s,
		opts:  opts,
		m:     s.ms.NewProc("sweeper"),
		slots: make(map[int32]*lifeSlot),
		chans: make(map[*Channel]*chanMeta),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// register adds an actor and its channel topology to the lifetable.
// Called from the handle constructors.
func (r *recovery) register(a *Actor, consumes, produces []*Channel, ports ...*Port) {
	slot := &lifeSlot{
		id:       a.ID,
		name:     nameOf(a),
		consumes: consumes,
		produces: produces,
		ports:    ports,
		lastMove: time.Now(),
	}
	a.life = slot
	r.mu.Lock()
	r.slots[a.ID] = slot
	for _, ch := range produces {
		r.meta(ch).producers++
	}
	for _, ch := range consumes {
		r.meta(ch).consumers++
	}
	r.mu.Unlock()
}

// registerBlockCache attaches a handle's private payload cache to its
// actor's lifetable slot so the sweeper can spill it post-mortem.
func (r *recovery) registerBlockCache(id int32, c *shm.BlockCache) {
	r.mu.Lock()
	if slot := r.slots[id]; slot != nil {
		slot.bcache = c
	}
	r.mu.Unlock()
}

// meta returns (creating if needed) the channel record; r.mu held.
func (r *recovery) meta(ch *Channel) *chanMeta {
	m := r.chans[ch]
	if m == nil {
		m = &chanMeta{ch: ch}
		r.chans[ch] = m
	}
	return m
}

func nameOf(a *Actor) string {
	if a.M != nil {
		return a.M.Name
	}
	return ""
}

// kill marks an actor dead; the next sweep recovers what it held.
func (r *recovery) kill(id int32) {
	r.mu.Lock()
	slot := r.slots[id]
	if slot != nil && slot.state == 0 {
		slot.state = 1
	}
	r.mu.Unlock()
}

// run is the sweeper goroutine body.
func (r *recovery) run() {
	defer close(r.done)
	t := time.NewTicker(r.opts.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.sweep()
		}
	}
}

// halt stops the background sweeper and waits for it to exit; the final
// teardown sweep is the caller's (Shutdown's) job.
func (r *recovery) halt() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
}

// sweep is one pass of the recovery loop. Serialised by r.mu, so the
// background ticker and SweepNow callers never interleave a recovery.
func (r *recovery) sweep() {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()

	// Lease expiry: a live actor whose beat counter stalled too long is
	// declared dead (opt-in; see RecoveryOptions.Lease).
	if lease := r.opts.Lease; lease > 0 {
		for _, slot := range r.slots {
			if slot.state != 0 {
				continue
			}
			if b := slot.beat.Load(); b != slot.lastBeat {
				slot.lastBeat, slot.lastMove = b, now
			} else if now.Sub(slot.lastMove) > lease {
				slot.state = 1
			}
		}
	}

	// Recover newly dead actors. Head locks first, across ALL dead
	// actors: the tail repair in recoverLocked acquires the head lock,
	// which would spin forever on a head lock still held by another
	// actor that died in the same window (see queue.RecoverDeadTail).
	for _, slot := range r.slots {
		if slot.state == 1 {
			for _, ch := range r.touched(slot) {
				if tl, ok := ch.q.(*queue.TwoLock); ok {
					if n := tl.RecoverDeadHead(slot.id); n > 0 {
						r.m.LockReclaims.Add(int64(n))
						r.s.obs.Recorder().Note(obs.EvReclaim, slot.id, int64(n))
					}
				}
			}
		}
	}
	for _, slot := range r.slots {
		if slot.state == 1 {
			r.recoverLocked(slot)
			slot.state = 2
		}
	}

	// Channels whose every consumer is dead accumulate orphaned
	// messages (producers racing the dead flag can still slip one in);
	// drain them back to the pool on every pass.
	for _, cm := range r.chans {
		if cm.consumers > 0 && cm.deadCons == cm.consumers {
			var n int
			if r.s.blocks != nil {
				// Drained messages may carry payload leases nobody will
				// resolve: claim-free each one alongside its node.
				n = queue.DrainFunc(cm.ch.q, r.reclaimMsgBlock)
			} else {
				n = queue.Drain(cm.ch.q)
			}
			if n > 0 {
				r.m.OrphanMsgs.Add(int64(n))
				r.s.obs.Recorder().Note(obs.EvReclaim, -1, int64(n))
			}
		}
	}

	// Lost-wake rescue: a channel that stays non-empty across two
	// consecutive sweeps while its consumer is parked has plausibly
	// lost a wake-up (dropped V, or a producer that died owing one);
	// issue a compensating V. A spurious rescue is harmless — the
	// protocols' token accounting absorbs redundant wake-ups — so the
	// heuristic errs toward liveness.
	if !r.opts.NoRescue {
		for _, cm := range r.chans {
			ch := cm.ch
			if ch.closed.Load() || ch.q.Empty() {
				cm.stuck = 0
				continue
			}
			if ch.sem.Sleeping() == 0 && ch.sem.Waiters() == 0 {
				cm.stuck = 0
				continue
			}
			cm.stuck++
			if cm.stuck >= 2 {
				cm.stuck = 0
				ch.sem.V()
				r.m.WakeRescues.Add(1)
				r.s.obs.Recorder().Note(obs.EvRescue, -1, int64(ch.id))
			}
		}
	}
}

// sweepOwner is the lease tag the sweeper claims under while freeing a
// drained message's payload — far above the actor-id owner domain.
const sweepOwner = ^uint32(0) - 1

// reclaimMsgBlock claim-frees one drained message's payload lease (its
// receiver is dead, so nobody else will resolve it). A failed claim
// means another reclaimer got there first — not an error.
func (r *recovery) reclaimMsgBlock(m core.Msg) {
	if !m.HasBlock() {
		return
	}
	ref, _ := m.Block()
	if r.s.blocks.Claim(ref, sweepOwner) {
		_ = r.s.blocks.Free(ref)
		r.m.OrphanBlocks.Add(1)
	}
}

// touched returns the deduplicated set of channels a dead actor sat on
// either side of; r.mu held.
func (r *recovery) touched(slot *lifeSlot) []*Channel {
	seen := map[*Channel]bool{}
	var out []*Channel
	for _, ch := range append(append([]*Channel{}, slot.produces...), slot.consumes...) {
		if !seen[ch] {
			seen[ch] = true
			out = append(out, ch)
		}
	}
	return out
}

// recoverLocked reclaims everything one dead actor held; r.mu held.
func (r *recovery) recoverLocked(slot *lifeSlot) {
	r.m.PeerDeaths.Add(1)
	r.s.obs.Recorder().Note(obs.EvPeerDead, slot.id, int64(slot.id))

	// Robust queue locks: revoke the tail lock (with node-list repair) on
	// any channel the dead actor touched. Head locks were already revoked
	// in the sweep's first pass (see queue.TwoLock.RecoverDead for the
	// ordering requirement).
	for _, ch := range r.touched(slot) {
		if tl, ok := ch.q.(*queue.TwoLock); ok {
			if n := tl.RecoverDeadTail(slot.id); n > 0 {
				r.m.LockReclaims.Add(int64(n))
				r.s.obs.Recorder().Note(obs.EvReclaim, slot.id, int64(n))
			}
		}
	}

	// Orphaned in-flight ref: a node the actor allocated but never
	// linked (or unlinked but never freed) goes back to the pool.
	if r.s.inj != nil && r.s.inj.ReclaimPending(slot.id) {
		r.m.OrphanRefs.Add(1)
		r.s.obs.Recorder().Note(obs.EvReclaim, slot.id, 1)
	}

	// Spill the dead actor's private allocation caches so parked refs
	// rejoin the pool's flow control.
	for _, p := range slot.ports {
		p.Close()
	}

	// Payload leases: spill the dead actor's private block cache (parked
	// blocks are free, just invisible), then return every block still
	// leased under its tag. Claim races with a live receiver adopting an
	// in-flight payload resolve to one winner, so nothing double-frees.
	if r.s.blocks != nil {
		if slot.bcache != nil {
			slot.bcache.Drain()
		}
		if n := r.s.blocks.ReclaimOwner(uint32(slot.id)); n > 0 {
			r.m.OrphanBlocks.Add(int64(n))
			r.s.obs.Recorder().Note(obs.EvReclaim, slot.id, int64(n))
		}
	}

	// Side accounting: when a whole side of a channel is gone, the
	// survivors must stop waiting on it.
	for _, ch := range slot.produces {
		cm := r.meta(ch)
		cm.deadProd++
		if cm.deadProd == cm.producers {
			// Every producer is dead: the consumer would park forever
			// waiting for traffic that cannot come.
			ch.MarkPeerDead()
		}
	}
	for _, ch := range slot.consumes {
		cm := r.meta(ch)
		cm.deadCons++
		if cm.deadCons == cm.consumers {
			// Every consumer is dead: producers would block on a full
			// queue forever, and queued messages are orphans (drained by
			// the per-sweep pass).
			ch.MarkPeerDead()
		}
	}

	// Server groups: if the dead actor was serving a shard, mark the
	// shard dead and bounce parked clients so they observe it (see
	// System.noteActorDead).
	r.s.noteActorDead(slot.id)
}
