package livebind

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/queue"
)

// fakeView is a scripted ShardView for picker unit tests.
type fakeView struct {
	depths []int
	alive  []bool
}

func (v fakeView) Shards() int      { return len(v.depths) }
func (v fakeView) Depth(s int) int  { return v.depths[s] }
func (v fakeView) Alive(s int) bool { return v.alive[s] }

// TestPickHashStable: hash pinning is a pure function of the client id
// — stable across calls, indifferent to load and liveness, and spread
// across the group.
func TestPickHashStable(t *testing.T) {
	v := fakeView{depths: []int{100, 0, 50, 3}, alive: []bool{false, true, true, true}}
	var p PickHash
	hit := make(map[int]bool)
	for c := int32(0); c < 16; c++ {
		first := p.Pick(c, -1, v)
		for last := -1; last < 4; last++ {
			if got := p.Pick(c, last, v); got != first {
				t.Fatalf("client %d: pick moved %d -> %d (last=%d)", c, first, got, last)
			}
		}
		if first != int(c)%4 {
			t.Fatalf("client %d pinned to %d, want %d", c, first, int(c)%4)
		}
		hit[first] = true
	}
	if len(hit) != 4 {
		t.Fatalf("16 clients spread over %d of 4 shards", len(hit))
	}
	if !p.Sticky() {
		t.Fatal("hash picker must be sticky (peer-death surfaces as ErrPeerDead)")
	}
}

// TestPickAffinitySticky: first touch goes to the least-loaded live
// shard; every later pick keeps that shard no matter how the load view
// changes.
func TestPickAffinitySticky(t *testing.T) {
	var p PickAffinity
	v := fakeView{depths: []int{9, 4, 0, 7}, alive: []bool{true, true, true, true}}
	first := p.Pick(5, -1, v)
	if first != 2 {
		t.Fatalf("first pick = %d, want least-loaded shard 2", first)
	}
	// Load inverts, shard even goes dead: the binding must not move.
	v = fakeView{depths: []int{0, 0, 99, 0}, alive: []bool{true, true, false, true}}
	if got := p.Pick(5, first, v); got != first {
		t.Fatalf("affinity moved %d -> %d after load shift", first, got)
	}
	// Dead shards are skipped on first touch.
	v = fakeView{depths: []int{5, 0, 1, 2}, alive: []bool{true, false, true, true}}
	if got := p.Pick(5, -1, v); got != 2 {
		t.Fatalf("first pick = %d, want 2 (shallowest live; 1 is dead)", got)
	}
	if !p.Sticky() {
		t.Fatal("affinity picker must be sticky")
	}
}

// TestPickLeastLoadedSkew: under skew the picker always lands on the
// shallowest live shard; ties prefer the previous shard (then lowest
// index), and a fully dead view falls back to hash.
func TestPickLeastLoadedSkew(t *testing.T) {
	var p PickLeastLoaded
	v := fakeView{depths: []int{40, 2, 17, 5}, alive: []bool{true, true, true, true}}
	if got := p.Pick(0, -1, v); got != 1 {
		t.Fatalf("pick = %d, want shallowest shard 1", got)
	}
	v.alive[1] = false
	if got := p.Pick(0, 1, v); got != 3 {
		t.Fatalf("pick = %d, want 3 (next-shallowest live)", got)
	}
	// Tie: keep the previous shard to avoid pointless bouncing.
	v = fakeView{depths: []int{3, 3, 3, 3}, alive: []bool{true, true, true, true}}
	if got := p.Pick(0, 2, v); got != 2 {
		t.Fatalf("tie pick = %d, want previous shard 2", got)
	}
	if got := p.Pick(0, -1, v); got != 0 {
		t.Fatalf("tie pick with no history = %d, want lowest index 0", got)
	}
	v = fakeView{depths: []int{0, 0}, alive: []bool{false, false}}
	if got := p.Pick(7, 0, v); got != 1 {
		t.Fatalf("all-dead fallback = %d, want hash home 1", got)
	}
	if p.Sticky() {
		t.Fatal("least-loaded picker must not be sticky (it routes around deaths)")
	}
}

// runGroupEcho is the shared harness: shards ServeBatch on their own
// goroutines, every client sends `rounds` batches of k echo requests
// and checks it got back exactly its own sequence set (stealing may
// reorder replies, so the check is a multiset, not a sequence).
func runGroupEcho(t *testing.T, sys *System, clients, rounds, k int) (served int64) {
	t.Helper()
	srvs, err := sys.ShardServers()
	if err != nil {
		t.Fatal(err)
	}
	var total atomic.Int64
	var wg sync.WaitGroup
	for _, srv := range srvs {
		wg.Add(1)
		go func(sv *core.Server) {
			defer wg.Done()
			total.Add(sv.ServeBatch(nil, k))
		}(srv)
	}
	var cwg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cwg.Add(1)
		go func(id int) {
			defer cwg.Done()
			cl, err := sys.Client(id)
			if err != nil {
				t.Error(err)
				return
			}
			msgs := make([]core.Msg, k)
			for r := 0; r < rounds; r++ {
				for j := range msgs {
					msgs[j] = core.Msg{Op: core.OpEcho, Seq: int32(r*k + j)}
				}
				out := cl.SendBatch(msgs)
				if len(out) != k {
					t.Errorf("client %d round %d: %d replies, want %d", id, r, len(out), k)
					return
				}
				seen := make(map[int32]bool, k)
				for _, m := range out {
					if m.Client != int32(id) {
						t.Errorf("client %d got a reply addressed to %d", id, m.Client)
					}
					if seen[m.Seq] {
						t.Errorf("client %d round %d: duplicate seq %d", id, r, m.Seq)
					}
					seen[m.Seq] = true
				}
				for j := 0; j < k; j++ {
					if !seen[int32(r*k+j)] {
						t.Errorf("client %d round %d: missing seq %d", id, r, r*k+j)
					}
				}
			}
		}(i)
	}
	cwg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	wg.Wait()
	return total.Load()
}

// TestGroupEchoBatch: end-to-end vectored echo over a server group, for
// the two sleep-capable protocols and each built-in picker.
func TestGroupEchoBatch(t *testing.T) {
	const clients, shards, rounds, k = 4, 2, 8, 16
	for _, alg := range []core.Algorithm{core.BSW, core.BSLS} {
		for _, tc := range []struct {
			name   string
			picker ShardPicker
		}{
			{"hash", PickHash{}},
			{"affinity", PickAffinity{}},
			{"leastloaded", PickLeastLoaded{}},
		} {
			t.Run(alg.String()+"/"+tc.name, func(t *testing.T) {
				sys, err := NewSystemGroup(shards, Options{Alg: alg, Clients: clients},
					WithShardPicker(tc.picker))
				if err != nil {
					t.Fatal(err)
				}
				served := runGroupEcho(t, sys, clients, rounds, k)
				if want := int64(clients * rounds * k); served != want {
					t.Fatalf("shards served %d, want %d", served, want)
				}
			})
		}
	}
}

// TestGroupStealTakesDeepestAndRewakes drives a shard's receive port by
// hand: with its own lanes dry it must steal a bounded batch from the
// deepest sibling, and — because the victim may have parked while the
// steal held its lane lock — re-wake the victim whenever its lanes are
// left non-empty.
func TestGroupStealTakesDeepestAndRewakes(t *testing.T) {
	sys, err := NewSystemGroup(2, Options{Alg: core.BSW, Clients: 2,
		StealBatch: 4, StealThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ShardServer(0); err != nil {
		t.Fatal(err)
	}
	srv1, err := sys.ShardServer(1)
	if err != nil {
		t.Fatal(err)
	}
	g := sys.grp
	for j := 0; j < 6; j++ {
		if !g.reqLanes[0].Lane(0).Enqueue(core.Msg{Op: core.OpEcho, Seq: int32(j)}) {
			t.Fatal("seed enqueue failed")
		}
	}
	// Simulate a parked victim: awake false, no token. The steal must
	// restore the token since it leaves 2 messages behind.
	g.recvs[0].awake.Store(false)

	var seqs []int32
	for j := 0; j < 4; j++ {
		m, ok := srv1.Rcv.TryDequeue()
		if !ok {
			t.Fatalf("dequeue %d failed (steal batch should hold 4)", j)
		}
		seqs = append(seqs, m.Seq)
	}
	if got := g.recvs[0].SemCount(); got != 1 {
		t.Fatalf("victim sem count after partial steal = %d, want 1 (residue re-wake)", got)
	}
	for j := 4; j < 6; j++ {
		m, ok := srv1.Rcv.TryDequeue()
		if !ok {
			t.Fatalf("dequeue %d failed (second steal should take the rest)", j)
		}
		seqs = append(seqs, m.Seq)
	}
	if _, ok := srv1.Rcv.TryDequeue(); ok {
		t.Fatal("dequeue fabricated a message")
	}
	for j, s := range seqs {
		if s != int32(j) {
			t.Fatalf("stolen sequence %v not FIFO", seqs)
		}
	}
	// Victim drained: no further re-wake owed.
	if got := g.recvs[0].SemCount(); got != 1 {
		t.Fatalf("victim sem count after full drain = %d, want still 1 (no spurious V)", got)
	}
}

// TestGroupStealUnderRace skews all the load onto shard 0 (hash-pinned
// even clients plus a slow work function) while shard 1 runs hot; run
// under -race this exercises owner/thief lane handoff and the stolen
// reply path. Correctness bar: every client gets exactly its own
// replies, nothing lost, nothing duplicated.
func TestGroupStealUnderRace(t *testing.T) {
	const clients, shards, rounds, k = 4, 2, 6, 8
	sys, err := NewSystemGroup(shards, Options{Alg: core.BSW, Clients: clients,
		StealBatch: 4, StealThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	srvs, err := sys.ShardServers()
	if err != nil {
		t.Fatal(err)
	}
	var total atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // shard 0: slow per-message work -> backlog builds
		defer wg.Done()
		total.Add(srvs[0].ServeBatch(func(*core.Msg) { time.Sleep(50 * time.Microsecond) }, k))
	}()
	go func() { // shard 1: fast, steals shard 0's backlog between its own
		defer wg.Done()
		total.Add(srvs[1].ServeBatch(func(*core.Msg) { time.Sleep(50 * time.Microsecond) }, k))
	}()
	var cwg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cwg.Add(1)
		go func(id int) {
			defer cwg.Done()
			cl, err := sys.Client(id)
			if err != nil {
				t.Error(err)
				return
			}
			msgs := make([]core.Msg, k)
			for r := 0; r < rounds; r++ {
				for j := range msgs {
					msgs[j] = core.Msg{Op: core.OpWork, Seq: int32(r*k + j)}
				}
				out := cl.SendBatch(msgs)
				if len(out) != k {
					t.Errorf("client %d round %d: %d replies, want %d", id, r, len(out), k)
					return
				}
				seen := make(map[int32]bool, k)
				for _, m := range out {
					if m.Client != int32(id) || seen[m.Seq] {
						t.Errorf("client %d: bad reply %+v", id, m)
					}
					seen[m.Seq] = true
				}
			}
		}(i)
	}
	cwg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	wg.Wait()
	if want := int64(clients * rounds * k); total.Load() != want {
		t.Fatalf("served %d, want %d", total.Load(), want)
	}
}

// TestGroupBatchTokenConservation: after a quiescent batched run every
// client semaphore holds at most one surplus token (the bounded
// carry-over the TAS-drain absorbs on the next dequeue), never an
// unbounded leak — the exact-V-conservation bar of DESIGN.md §10.
func TestGroupBatchTokenConservation(t *testing.T) {
	const clients, shards, rounds, k = 4, 2, 10, 8
	sys, err := NewSystemGroup(shards, Options{Alg: core.BSW, Clients: clients})
	if err != nil {
		t.Fatal(err)
	}
	srvs, err := sys.ShardServers()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, srv := range srvs {
		wg.Add(1)
		go func(sv *core.Server) { defer wg.Done(); sv.ServeBatch(nil, k) }(srv)
	}
	var cwg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cwg.Add(1)
		go func(id int) {
			defer cwg.Done()
			cl, err := sys.Client(id)
			if err != nil {
				t.Error(err)
				return
			}
			msgs := make([]core.Msg, k)
			for r := 0; r < rounds; r++ {
				for j := range msgs {
					msgs[j] = core.Msg{Op: core.OpEcho, Seq: int32(r*k + j)}
				}
				if out := cl.SendBatch(msgs); len(out) != k {
					t.Errorf("client %d: %d replies, want %d", id, len(out), k)
					return
				}
			}
		}(i)
	}
	cwg.Wait()
	// Quiescent: every reply consumed, no send in flight.
	for i := 0; i < clients; i++ {
		if n := sys.ReplyChannel(i).SemCount(); n < 0 || n > 1 {
			t.Errorf("client %d reply sem = %d tokens at quiescence, want 0 or 1", i, n)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	wg.Wait()
}

// TestGroupSendBatchCtxCancelStress fires batches under aggressive
// deadlines (many cancel mid-batch, leaving reply lag), then checks the
// lag protocol restores exact accounting: a final unhurried batch
// succeeds in full and the semaphores end bounded.
func TestGroupSendBatchCtxCancelStress(t *testing.T) {
	const clients, shards, k = 4, 2, 8
	sys, err := NewSystemGroup(shards, Options{Alg: core.BSW, Clients: clients,
		SleepScale: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	srvs, err := sys.ShardServers()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, srv := range srvs {
		wg.Add(1)
		go func(sv *core.Server) { defer wg.Done(); sv.ServeBatch(nil, k) }(srv)
	}
	var cwg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cwg.Add(1)
		go func(id int) {
			defer cwg.Done()
			cl, err := sys.Client(id)
			if err != nil {
				t.Error(err)
				return
			}
			msgs := make([]core.Msg, k)
			for r := 0; r < 30; r++ {
				for j := range msgs {
					msgs[j] = core.Msg{Op: core.OpEcho, Seq: int32(r*k + j)}
				}
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(r%5)*20*time.Microsecond)
				_, _ = cl.SendBatchCtx(ctx, msgs) // cancellation mid-batch is the point
				cancel()
			}
			for j := range msgs {
				msgs[j] = core.Msg{Op: core.OpEcho, Seq: int32(1000 + j)}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			out, err := cl.SendBatchCtx(ctx, msgs)
			if err != nil {
				t.Errorf("client %d final batch: %v", id, err)
				return
			}
			if len(out) != k {
				t.Errorf("client %d final batch: %d replies, want %d", id, len(out), k)
			}
		}(i)
	}
	cwg.Wait()
	for i := 0; i < clients; i++ {
		if n := sys.ReplyChannel(i).SemCount(); n < 0 || n > 1 {
			t.Errorf("client %d reply sem = %d tokens after cancel stress, want 0 or 1", i, n)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	wg.Wait()
}

// TestGroupShardKill kills one shard of a two-shard group: the hash-
// pinned client of the dead shard must unblock from its parked wait
// with ErrPeerDead (and fail fast afterwards), the other shard's client
// must keep completing batches, and the dead shard's lanes must drain
// via the sweeper's orphan pass so Shutdown's drain-wait terminates.
func TestGroupShardKill(t *testing.T) {
	const clients, shards, k = 2, 2, 4
	sys, err := NewSystemGroup(shards, Options{Alg: core.BSW, Clients: clients},
		WithNoSteal(), // strict lane ownership: death strands exactly the dead shard's clients
		WithRecovery(RecoveryOptions{SweepInterval: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	srvs, err := sys.ShardServers()
	if err != nil {
		t.Fatal(err)
	}
	shard0ID := srvs[0].A.(*Actor).ID

	// Shard 1 serves normally; shard 0 never runs (its clients park).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); srvs[1].ServeBatch(nil, k) }()

	cl0, err := sys.Client(0) // home shard 0
	if err != nil {
		t.Fatal(err)
	}
	cl1, err := sys.Client(1) // home shard 1
	if err != nil {
		t.Fatal(err)
	}
	mkBatch := func(base int) []core.Msg {
		msgs := make([]core.Msg, k)
		for j := range msgs {
			msgs[j] = core.Msg{Op: core.OpEcho, Seq: int32(base + j)}
		}
		return msgs
	}

	res := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := cl0.SendBatchCtx(ctx, mkBatch(0))
		res <- err
	}()
	time.Sleep(20 * time.Millisecond) // requests enqueued, client parked

	sys.KillActor(shard0ID)
	sys.SweepNow()

	select {
	case err := <-res:
		if !errors.Is(err, core.ErrPeerDead) {
			t.Fatalf("parked batch after shard death = %v, want ErrPeerDead", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client of dead shard still parked after sweep")
	}
	if !sys.ShardDead(0) || sys.ShardDead(1) {
		t.Fatalf("ShardDead = (%v,%v), want (true,false)", sys.ShardDead(0), sys.ShardDead(1))
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	if _, err := cl0.SendBatchCtx(ctx, mkBatch(100)); !errors.Is(err, core.ErrPeerDead) {
		t.Fatalf("new send to dead shard = %v, want ErrPeerDead", err)
	}
	cancel()

	// The surviving shard keeps serving its own clients.
	ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
	out, err := cl1.SendBatchCtx(ctx, mkBatch(200))
	cancel()
	if err != nil || len(out) != k {
		t.Fatalf("survivor client batch = (%d replies, %v), want (%d, nil)", len(out), err, k)
	}

	// Dead shard's lanes drained by the orphan pass -> drain-wait ends.
	if !sys.ShardChannel(0).Queue().Empty() {
		t.Fatal("dead shard's lanes not drained by recovery")
	}
	ctx, cancel = context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	wg.Wait()
}

// TestGroupModeGuards: the combinators that assume the scalar topology
// must refuse (or panic, for error-less Server) on a sharded system,
// and group-mode configuration errors carry the typed sentinels.
func TestGroupModeGuards(t *testing.T) {
	if _, err := NewSystem(Options{Alg: core.BSW, Clients: 2, Shards: 2, Duplex: true}); !errors.Is(err, ErrBadOption) {
		t.Fatalf("Shards+Duplex = %v, want ErrBadOption", err)
	}
	if _, err := NewSystem(Options{Alg: core.BSW, Clients: 2, Shards: 2, Throttle: 1}); !errors.Is(err, ErrBadOption) {
		t.Fatalf("Shards+Throttle = %v, want ErrBadOption", err)
	}
	if _, err := NewSystemGroup(0, Options{Alg: core.BSW, Clients: 2}); !errors.Is(err, ErrBadOption) {
		t.Fatalf("NewSystemGroup(0) = %v, want ErrBadOption", err)
	}
	if _, err := NewSystem(Options{Alg: core.BSW, Clients: 2, Shards: 2},
		WithReplyKind(queue.KindRing)); !errors.Is(err, ErrSPSCTopology) {
		t.Fatalf("Shards+ReplyKind = %v, want ErrSPSCTopology", err)
	}
	sys, err := NewSystemGroup(2, Options{Alg: core.BSW, Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WorkerPool(2); !errors.Is(err, ErrBadOption) {
		t.Fatalf("WorkerPool = %v, want ErrBadOption", err)
	}
	if _, err := sys.PoolClient(0); !errors.Is(err, ErrBadOption) {
		t.Fatalf("PoolClient = %v, want ErrBadOption", err)
	}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("Server() on a sharded system did not panic")
			}
		}()
		sys.Server()
	}()
	if _, err := sys.ShardServer(2); err == nil {
		t.Fatal("out-of-range ShardServer did not error")
	}
	if _, err := sys.ShardServer(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ShardServer(0); !errors.Is(err, ErrSPSCTopology) {
		t.Fatalf("double ShardServer = %v, want ErrSPSCTopology", err)
	}
	if sys.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", sys.Shards())
	}
}

// TestBatchSingleServer: the vectored API is not shard-only — on the
// scalar topology SendBatch/ServeBatch move k messages per wake over
// the shared receive queue, and replies come back in order (no
// stealing to reorder them).
func TestBatchSingleServer(t *testing.T) {
	const rounds, k = 6, 16
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := sys.Server()
	done := make(chan int64, 1)
	go func() { done <- srv.ServeBatch(nil, k) }()
	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([]core.Msg, k)
	for r := 0; r < rounds; r++ {
		for j := range msgs {
			msgs[j] = core.Msg{Op: core.OpEcho, Seq: int32(r*k + j)}
		}
		out := cl.SendBatch(msgs)
		if len(out) != k {
			t.Fatalf("round %d: %d replies, want %d", r, len(out), k)
		}
		for j, m := range out {
			if m.Seq != int32(r*k+j) {
				t.Fatalf("round %d: reply %d has seq %d, want %d (single server preserves order)", r, j, m.Seq, r*k+j)
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	if served := <-done; served != rounds*k {
		t.Fatalf("served %d, want %d", served, rounds*k)
	}
}

// TestBatchOversizedDeadlockFree sends one batch far larger than the
// request and reply queues combined: progress then requires the client
// to interleave reply draining with request feeding, which is exactly
// what SendBatch's full-queue path does.
func TestBatchOversizedDeadlockFree(t *testing.T) {
	const k = 64
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 1, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := sys.Server()
	go srv.ServeBatch(nil, 8)
	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([]core.Msg, k)
	for j := range msgs {
		msgs[j] = core.Msg{Op: core.OpEcho, Seq: int32(j)}
	}
	outc := make(chan []core.Msg, 1)
	go func() { outc <- cl.SendBatch(msgs) }()
	select {
	case out := <-outc:
		if len(out) != k {
			t.Fatalf("%d replies, want %d", len(out), k)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("oversized batch deadlocked")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
}
