package core

import (
	"context"
	"sync/atomic"
	"time"

	"ulipc/internal/metrics"
)

// The overload doctrine (DESIGN.md §14). Closed-loop clients cannot
// overload the system — each waits for its reply before sending again —
// but open-loop traffic (arrivals decoupled from completions) can push
// the offered rate past capacity, and a queue that never drains defeats
// every sleep/wake-up protocol in this package: the paper optimises the
// cost of waking a consumer, not the fate of work that will miss its
// deadline anyway. This file holds the client half of the answer:
//
//   - bounded admission: a send observing a request-queue depth at or
//     above a high-water mark fails fast with ErrOverload instead of
//     joining a queue it would only lengthen;
//   - retry budgets: a token bucket bounds full-queue retries, so a
//     client that makes no progress stops napping against a saturated
//     server and surfaces ErrOverload to its caller;
//   - jittered backoff: the shared full-queue nap helper desynchronises
//     clients that hit a full queue together.
//
// The server half — deadline-aware shedding at dequeue — is ShedPolicy
// below plus the shed hook in server.go/batch.go; the shard quarantine
// circuit lives in livebind/group.go.

// DepthPort is optionally implemented by enqueue endpoints that can
// report their current queue depth (number of queued messages). The
// admission check discovers it by assertion; endpoints without it (the
// simulator's) admit everything.
type DepthPort interface {
	Depth() int
}

// RetryBudget is a token bucket bounding full-queue retries on one
// handle. Each backoff nap spends one token; each successful enqueue
// earns Refill back (capped at Cap), so a client that makes progress
// retries indefinitely while one that does not drains its bucket and
// fails fast with ErrOverload instead of napping forever. The zero
// value (or a nil pointer) means unbounded retry — the pre-overload
// behaviour. A budget belongs to one handle, and handles are
// single-goroutine, so plain fields suffice.
type RetryBudget struct {
	Cap    float64 // bucket size (burst of retries tolerated); <= 0 disables
	Refill float64 // tokens credited per successful enqueue

	tokens float64
	primed bool
}

// take spends one retry token; false means the bucket is dry.
func (b *RetryBudget) take() bool {
	if b == nil || b.Cap <= 0 {
		return true
	}
	if !b.primed {
		b.tokens = b.Cap
		b.primed = true
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// credit rewards progress: a successful enqueue earns Refill tokens.
func (b *RetryBudget) credit() {
	if b == nil || b.Cap <= 0 || b.Refill <= 0 {
		return
	}
	if !b.primed {
		return // bucket still full
	}
	b.tokens += b.Refill
	if b.tokens > b.Cap {
		b.tokens = b.Cap
	}
}

// backoffSeed dealiases the jitter streams: each lazily-seeded backoff
// draws a distinct odd xorshift seed, so handles created together do
// not nap in identical patterns.
var backoffSeed atomic.Uint32

// backoff is the shared full-queue retry state of the *Ctx producer
// paths (scalar enqueueOrSleepCtx and the batch send loop): an
// exponential nap ceiling (1, 2, 4, 8 "seconds", scaled by the actor's
// sleep scale) with uniform jitter below it. The two loops this helper
// replaced doubled deterministically, which made clients that hit a
// full queue in the same instant retry in phase forever — a retry
// storm that re-fills the queue on every beat. The zero value is ready
// to use; seeding happens on the first nap, so paths that never hit a
// full queue never touch the seed counter.
type backoff struct {
	nap uint32 // current ceiling (1..8); 0 = not yet seeded
	rng uint32 // xorshift32 jitter state; 0 = not yet seeded
}

// next draws the jittered nap — uniform in [1, ceiling] — and doubles
// the ceiling toward 8.
func (b *backoff) next() int {
	if b.rng == 0 {
		b.rng = backoffSeed.Add(0x9E3779B9) | 1
		if b.nap == 0 {
			b.nap = 1
		}
	}
	x := b.rng
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	b.rng = x
	nap := int(x%b.nap) + 1
	if b.nap < 8 {
		b.nap <<= 1
	}
	return nap
}

// reset restores the ceiling after progress (the batch path resets
// between successful bursts; the jitter stream keeps running).
func (b *backoff) reset() { b.nap = 1 }

// sleep is one full-queue retry round: count the retry, spend a budget
// token (ErrOverload when the bucket is dry), nap the jittered
// backoff. Shared by enqueueOrSleepCtx and SendBatchCtx.
func (b *backoff) sleep(ctx context.Context, ca CtxActor, budget *RetryBudget, pm *metrics.Proc) error {
	if pm != nil {
		pm.Retries.Add(1)
	}
	if ca == nil {
		return ErrNotCancellable
	}
	if !budget.take() {
		if pm != nil {
			pm.Overloads.Add(1)
		}
		return ErrOverload
	}
	return ca.SleepCtx(ctx, b.next())
}

// admit is the bounded-admission fast check of the *Ctx send paths:
// with a HighWater mark configured and a depth-reporting request port,
// a send observing depth at or above the mark is rejected with
// ErrOverload before anything is enqueued. Disabled (HighWater <= 0,
// the default) it costs one predictable branch — the bar the
// interleaved closed-loop A/B cells hold it to.
func (c *Client) admit() error {
	if c.HighWater <= 0 {
		return nil
	}
	if d, ok := c.Srv.(DepthPort); ok && d.Depth() >= c.HighWater {
		if c.M != nil {
			c.M.Overloads.Add(1)
		}
		return ErrOverload
	}
	return nil
}

// ShedPolicy configures deadline-aware shedding at the server's
// dequeue: a message whose deadline has already passed is dropped
// before any service time is spent on it — its reply would be late
// anyway, so serving it steals capacity from messages that can still
// meet theirs. Deadline extracts a message's absolute deadline;
// ok=false exempts it (control traffic, unstamped messages). Now is
// the matching clock, defaulting to wall time in nanoseconds. Both run
// on the server's own goroutine.
//
// Shedding pairs with deadline-aware clients: the shed message's reply
// never comes, so its sender must bound its own wait (an open-loop
// collector, or a SendCtx deadline at or before the message's).
type ShedPolicy struct {
	Deadline func(Msg) (deadline int64, ok bool)
	Now      func() int64
}

func (p *ShedPolicy) now() int64 {
	if p.Now != nil {
		return p.Now()
	}
	return time.Now().UnixNano()
}

// shed drops m if its deadline has passed: any payload lease is
// claim-freed through the standard drop discipline, the Sheds counter
// ticks, and the sender's consumer is woken through the TAS-guarded
// wake — at most one compensating V per shed batch per client, the
// same accounting as the vectored reply path (a producer issues at
// most one V per TAS-cleared awake flag; DESIGN.md §10): a client
// parked on a reply that now never comes re-checks its queue instead
// of sleeping until its deadline, and a client that was not parked
// absorbs nothing.
func (s *Server) shed(m Msg) bool {
	p := s.Shed
	if p == nil || p.Deadline == nil {
		return false
	}
	dl, ok := p.Deadline(m)
	if !ok || p.now() < dl {
		return false
	}
	dropPayload(s.Blocks, s.Owner, m)
	if s.M != nil {
		s.M.Sheds.Add(1)
	}
	if s.ValidClient(m.Client) {
		wakeConsumer(s.Replies[m.Client], s.A)
	}
	return true
}
