// Mapped segments: the cross-process arena backend.
//
// A Seg is the arena plus everything two address spaces need to run the
// paper's protocols against each other: a header (magic/version/geometry
// plus the shared pool head), a process lifetable (pid + lease heartbeat
// words the recovery sweeper reads), one wake slot per consumer (the
// futex count/waiters words and the awake flag), a pair of SPSC ref
// lanes per client (request and reply), and the node arena itself.
//
// Every cross-process reference is a Ref (an index), never a pointer,
// and every control word is a fixed-offset atomic — so the same file or
// memfd can be mapped at a different base address in every process. The
// in-process Arena/Node/Ref types are reused verbatim: the mapped node
// region is viewed as the same []Node the heap arena uses.
package shm

import (
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// Typed sentinels for the mapping error paths. Mapping a hostile or
// stale file must fail with a diagnosable error, never a panic: the
// segment file is the trust boundary between processes.
var (
	// ErrShortSegment: the file is smaller than its header claims (or
	// smaller than a header at all) — truncated, or not a segment.
	ErrShortSegment = errors.New("shm: segment file shorter than its declared geometry")
	// ErrBadMagic: the file does not start with the segment magic.
	ErrBadMagic = errors.New("shm: not a ulipc segment (bad magic)")
	// ErrVersionMismatch: the segment was written by an incompatible
	// layout version.
	ErrVersionMismatch = errors.New("shm: segment layout version mismatch")
	// ErrBadGeometry: the header's geometry words are self-inconsistent
	// (zero clients, absurd node count, foreign node size...).
	ErrBadGeometry = errors.New("shm: segment geometry invalid")
	// ErrMapped: Map on a segment that is already mapped.
	ErrMapped = errors.New("shm: segment already mapped")
	// ErrNotMapped: Unmap (or a view accessor) on a segment that is not
	// currently mapped.
	ErrNotMapped = errors.New("shm: segment not mapped")
	// ErrMapUnsupported: this platform has no file-mapping backend.
	ErrMapUnsupported = errors.New("shm: mapped segments unsupported on this platform")
)

// SegMagic identifies a segment file; SegVersion is the layout version
// checked on every map.
const (
	SegMagic   uint64 = 0x756c6970632d7631 // "ulipc-v1"
	SegVersion uint32 = 2                  // v2: payload slab arena + Msg.Ref
)

// Segment lifecycle states (SegHeader.State).
const (
	SegInit     uint32 = iota // created, header not fully initialised
	SegReady                  // serving
	SegShutdown               // graceful shutdown: ports report Closed
	SegDead                   // a process died: ports report PeerDead
)

// SegConfig is the geometry of a new segment.
type SegConfig struct {
	Clients int // reply channels / client lifetable slots
	Nodes   int // arena size (shared free pool)
	RingCap int // per-lane slot count (rounded up to a power of two)

	// Blocks is the payload slab arena geometry: slots per size class.
	// 0 disables the arena (control-message-only segment, the pre-v2
	// shape). BlockSizes are the class sizes (ascending multiples of 8,
	// at most MaxBlockClasses); empty defaults to DefaultBlockSizes.
	Blocks     int
	BlockSizes []int
}

func (c *SegConfig) defaults() error {
	if c.Clients < 1 {
		return fmt.Errorf("%w: need at least 1 client", ErrBadGeometry)
	}
	if c.RingCap <= 0 {
		c.RingCap = 256
	}
	c.RingCap = 1 << uint(bits.Len(uint(c.RingCap-1))) // next pow2
	if c.Nodes <= 0 {
		// Enough for every lane to be full simultaneously, plus slack
		// for in-flight allocations.
		c.Nodes = 2*c.Clients*c.RingCap + 64
	}
	if c.Nodes >= int(NilRef) {
		return fmt.Errorf("%w: %d nodes exceeds ref space", ErrBadGeometry, c.Nodes)
	}
	if c.Blocks < 0 {
		return fmt.Errorf("%w: negative block count %d", ErrBadGeometry, c.Blocks)
	}
	if c.Blocks > 0 && len(c.BlockSizes) == 0 {
		c.BlockSizes = append([]int(nil), DefaultBlockSizes...)
	}
	return nil
}

// SegHeader is the first three cache lines of every segment. All fields
// are atomics: the header is concurrently read and written from
// multiple processes.
type SegHeader struct {
	Magic    atomic.Uint64
	Version  atomic.Uint32
	NodeSize atomic.Uint32 // sizeof(Node) of the writer — ABI check
	Nodes    atomic.Uint32
	RingCap  atomic.Uint32
	Clients  atomic.Uint32
	State    atomic.Uint32
	DeadSlot atomic.Int32  // first lifetable slot declared dead (-1 none)
	Epoch    atomic.Uint32 // bumped by the sweeper on every declaration

	// Payload slab arena geometry (v2). BlockSlots is the per-class slot
	// count (0 = no arena); BlockClasses the class count; BlockSizes the
	// class sizes (only the first BlockClasses entries are meaningful).
	BlockSlots   atomic.Uint32
	BlockClasses atomic.Uint32
	BlockSizes   [MaxBlockClasses]atomic.Uint32

	PoolHead atomic.Uint64 // Treiber head: tag<<32 | top ref
	_        [56]byte
	PoolFree atomic.Int64 // approximate free count (diagnostics/audit)
	_        [56]byte
}

// LifeSlot is one process's row in the lifetable: its pid (for
// kill(pid, 0) liveness probes) and a heartbeat counter its runtime
// bumps on a timer (for lease-based detection where pid probes lie —
// pid reuse, foreign pid namespaces).
type LifeSlot struct {
	Pid   atomic.Uint32
	State atomic.Uint32
	Beat  atomic.Uint64
	_     [48]byte
}

// Lifetable slot states.
const (
	LifeFree uint32 = iota // never joined
	LifeLive               // joined, heartbeating
	LifeDead               // declared dead by a sweeper
	LifeDone               // exited gracefully
)

// SemSlot is one consumer's wake state: the futex semaphore words
// (count is the futex word; waiters gates the FUTEX_WAKE syscall) plus
// the protocol's awake flag and a poison flag the sweeper sets to turn
// parked waits into prompt returns.
type SemSlot struct {
	Count   atomic.Uint32
	Waiters atomic.Uint32
	Dead    atomic.Uint32
	Awake   atomic.Uint32
	_       [48]byte
}

// laneCtl is an SPSC lane's cursor pair, one cache line each: the
// producer owns Tail, the consumer owns Head.
type laneCtl struct {
	Head atomic.Uint64
	_    [56]byte
	Tail atomic.Uint64
	_    [56]byte
}

// Compile-time layout pins: the segment ABI depends on these sizes.
var (
	_ [192 - unsafe.Sizeof(SegHeader{})]byte
	_ [64 - unsafe.Sizeof(LifeSlot{})]byte
	_ [64 - unsafe.Sizeof(SemSlot{})]byte
	_ [128 - unsafe.Sizeof(laneCtl{})]byte
)

// Layout is the computed region map of a segment.
type Layout struct {
	Cfg       SegConfig
	LifeOff   int // lifetable (1 server + Clients slots)
	SemOff    int // wake slots (1 server + Clients)
	LaneOff   int // lane controls (2*Clients)
	SlotOff   int // lane slot arrays (2*Clients × RingCap refs)
	ArenaOff  int // node array
	BlockOff  int // payload slab arena (0 when Cfg.Blocks == 0)
	Size      int
	slotBytes int // per-lane slot array, 64-padded
	blockLay  BlockLayout
}

func align64(n int) int { return (n + 63) &^ 63 }

// LayoutFor computes the region offsets for a geometry.
func LayoutFor(cfg SegConfig) (Layout, error) {
	if err := cfg.defaults(); err != nil {
		return Layout{}, err
	}
	l := Layout{Cfg: cfg}
	off := int(unsafe.Sizeof(SegHeader{}))
	l.LifeOff = off
	off += (1 + cfg.Clients) * int(unsafe.Sizeof(LifeSlot{}))
	l.SemOff = off
	off += (1 + cfg.Clients) * int(unsafe.Sizeof(SemSlot{}))
	l.LaneOff = off
	off += 2 * cfg.Clients * int(unsafe.Sizeof(laneCtl{}))
	l.SlotOff = off
	l.slotBytes = align64(cfg.RingCap * 4)
	off += 2 * cfg.Clients * l.slotBytes
	l.ArenaOff = align64(off)
	off = l.ArenaOff + cfg.Nodes*int(unsafe.Sizeof(Node{}))
	if cfg.Blocks > 0 {
		bl, err := BlockLayoutFor(cfg.BlockSizes, cfg.Blocks)
		if err != nil {
			return Layout{}, fmt.Errorf("%w: %v", ErrBadGeometry, err)
		}
		l.BlockOff = align64(off)
		l.blockLay = bl
		off = l.BlockOff + bl.Size
	}
	l.Size = align64(off)
	return l, nil
}

// Seg is a segment handle: some backing memory (file mapping, memfd
// mapping, or plain heap for in-process use and tests) plus the typed
// views into it. A Seg is created mapped; Unmap invalidates the views.
type Seg struct {
	mem    []byte
	lay    Layout
	view   *SegView
	mapped bool

	// remap re-establishes the mapping after an Unmap (nil for heap
	// segments, which cannot be remapped — their memory is gone).
	remap func() ([]byte, error)
	// unmap releases the mapping (nil for heap segments).
	unmap func([]byte) error
}

// SegView is the typed window onto a mapped segment. It is invalid
// after Seg.Unmap.
type SegView struct {
	Hdr    *SegHeader
	Life   []LifeSlot
	Sems   []SemSlot
	Pool   *SegPool
	Blocks *BlockPool // payload slab arena; nil when the geometry has none
	arena  *Arena
	lanes  []Lane
	lay    Layout
}

// viewOver builds the typed views. The caller has validated geometry.
func viewOver(mem []byte, lay Layout) *SegView {
	v := &SegView{
		Hdr: (*SegHeader)(unsafe.Pointer(&mem[0])),
		lay: lay,
	}
	cfg := lay.Cfg
	v.Life = unsafe.Slice((*LifeSlot)(unsafe.Pointer(&mem[lay.LifeOff])), 1+cfg.Clients)
	v.Sems = unsafe.Slice((*SemSlot)(unsafe.Pointer(&mem[lay.SemOff])), 1+cfg.Clients)
	nodes := unsafe.Slice((*Node)(unsafe.Pointer(&mem[lay.ArenaOff])), cfg.Nodes)
	v.arena = &Arena{nodes: nodes}
	v.Pool = &SegPool{arena: v.arena, head: &v.Hdr.PoolHead, free: &v.Hdr.PoolFree}
	v.lanes = make([]Lane, 2*cfg.Clients)
	for i := range v.lanes {
		ctl := (*laneCtl)(unsafe.Pointer(&mem[lay.LaneOff+i*int(unsafe.Sizeof(laneCtl{}))]))
		slots := unsafe.Slice((*atomic.Uint32)(unsafe.Pointer(&mem[lay.SlotOff+i*lay.slotBytes])), cfg.RingCap)
		v.lanes[i] = Lane{ctl: ctl, slots: slots, cap: uint64(cfg.RingCap)}
	}
	if cfg.Blocks > 0 {
		v.Blocks = viewBlockPool(mem[lay.BlockOff:lay.BlockOff+lay.blockLay.Size:lay.BlockOff+lay.blockLay.Size], lay.blockLay)
	}
	return v
}

// Arena exposes the mapped node arena (the same type the in-process
// pool uses — refs are portable between the two worlds of one process).
func (v *SegView) Arena() *Arena { return v.arena }

// ReqLane returns client i's request lane (client produces, server
// consumes); ReplyLane the reverse.
func (v *SegView) ReqLane(i int) *Lane   { return &v.lanes[2*i] }
func (v *SegView) ReplyLane(i int) *Lane { return &v.lanes[2*i+1] }

// Clients returns the geometry's client count.
func (v *SegView) Clients() int { return v.lay.Cfg.Clients }

// Config returns the geometry the segment was created with.
func (v *SegView) Config() SegConfig { return v.lay.Cfg }

// init formats a fresh segment: geometry words, threaded free list,
// awake flags (consumers start awake, as in NewChannel), ready state.
func (v *SegView) init(lay Layout) {
	cfg := lay.Cfg
	v.Hdr.Version.Store(SegVersion)
	v.Hdr.NodeSize.Store(uint32(unsafe.Sizeof(Node{})))
	v.Hdr.Nodes.Store(uint32(cfg.Nodes))
	v.Hdr.RingCap.Store(uint32(cfg.RingCap))
	v.Hdr.Clients.Store(uint32(cfg.Clients))
	v.Hdr.DeadSlot.Store(-1)
	for i := 0; i < cfg.Nodes-1; i++ {
		v.arena.Node(Ref(i)).SetNext(Ref(i + 1))
	}
	v.arena.Node(Ref(cfg.Nodes - 1)).SetNext(NilRef)
	v.Hdr.PoolHead.Store(packHead(0, 0))
	v.Hdr.PoolFree.Store(int64(cfg.Nodes))
	v.Hdr.BlockSlots.Store(uint32(cfg.Blocks))
	v.Hdr.BlockClasses.Store(uint32(len(cfg.BlockSizes)))
	if cfg.Blocks > 0 {
		for i, size := range cfg.BlockSizes {
			v.Hdr.BlockSizes[i].Store(uint32(size))
		}
		v.Blocks.initBlocks()
	}
	for i := range v.Sems {
		v.Sems[i].Awake.Store(1)
	}
	// Magic and ready state last: a concurrent mapper that wins the race
	// against initialisation sees a bad magic, not half-built geometry.
	v.Hdr.Magic.Store(SegMagic)
	v.Hdr.State.Store(SegReady)
}

// validateHeader checks a candidate mapping's header against the ABI
// and returns its layout. memLen is the total bytes available.
func validateHeader(mem []byte) (Layout, error) {
	if len(mem) < int(unsafe.Sizeof(SegHeader{})) {
		return Layout{}, fmt.Errorf("%w: %d bytes, header needs %d", ErrShortSegment, len(mem), unsafe.Sizeof(SegHeader{}))
	}
	h := (*SegHeader)(unsafe.Pointer(&mem[0]))
	if h.Magic.Load() != SegMagic {
		return Layout{}, ErrBadMagic
	}
	if got := h.Version.Load(); got != SegVersion {
		return Layout{}, fmt.Errorf("%w: file v%d, runtime v%d", ErrVersionMismatch, got, SegVersion)
	}
	if got := h.NodeSize.Load(); got != uint32(unsafe.Sizeof(Node{})) {
		return Layout{}, fmt.Errorf("%w: node size %d, runtime %d", ErrBadGeometry, got, unsafe.Sizeof(Node{}))
	}
	cfg := SegConfig{
		Clients: int(h.Clients.Load()),
		Nodes:   int(h.Nodes.Load()),
		RingCap: int(h.RingCap.Load()),
		Blocks:  int(h.BlockSlots.Load()),
	}
	if cfg.Clients < 1 || cfg.Nodes < 1 || cfg.RingCap < 1 || cfg.RingCap&(cfg.RingCap-1) != 0 {
		return Layout{}, fmt.Errorf("%w: clients=%d nodes=%d ringcap=%d", ErrBadGeometry, cfg.Clients, cfg.Nodes, cfg.RingCap)
	}
	if cfg.Blocks > 0 {
		classes := int(h.BlockClasses.Load())
		if classes < 1 || classes > MaxBlockClasses {
			return Layout{}, fmt.Errorf("%w: %d block classes", ErrBadGeometry, classes)
		}
		for i := 0; i < classes; i++ {
			cfg.BlockSizes = append(cfg.BlockSizes, int(h.BlockSizes[i].Load()))
		}
	}
	lay, err := LayoutFor(cfg)
	if err != nil {
		return Layout{}, err
	}
	if len(mem) < lay.Size {
		return Layout{}, fmt.Errorf("%w: %d bytes, geometry needs %d", ErrShortSegment, len(mem), lay.Size)
	}
	return lay, nil
}

// View returns the typed views, or ErrNotMapped after Unmap.
func (s *Seg) View() (*SegView, error) {
	if !s.mapped {
		return nil, ErrNotMapped
	}
	return s.view, nil
}

// Layout returns the segment's region map.
func (s *Seg) Layout() Layout { return s.lay }

// Mapped reports whether the segment memory is currently accessible.
func (s *Seg) Mapped() bool { return s.mapped }

// Map re-establishes a mapping dropped by Unmap. Mapping an
// already-mapped segment is refused with ErrMapped; heap segments
// (whose memory was released) refuse with ErrNotMapped.
func (s *Seg) Map() error {
	if s.mapped {
		return ErrMapped
	}
	if s.remap == nil {
		return fmt.Errorf("%w: heap segment cannot be remapped", ErrNotMapped)
	}
	mem, err := s.remap()
	if err != nil {
		return err
	}
	lay, err := validateHeader(mem)
	if err != nil {
		if s.unmap != nil {
			_ = s.unmap(mem)
		}
		return err
	}
	s.mem, s.lay, s.view, s.mapped = mem, lay, viewOver(mem, lay), true
	return nil
}

// Unmap releases the mapping. The views handed out by View become
// invalid. Unmapping an unmapped segment returns ErrNotMapped.
func (s *Seg) Unmap() error {
	if !s.mapped {
		return ErrNotMapped
	}
	s.mapped = false
	s.view = nil
	mem := s.mem
	s.mem = nil
	if s.unmap != nil {
		return s.unmap(mem)
	}
	return nil
}

// Close is Unmap tolerant of an already-unmapped segment (deferred
// cleanup paths).
func (s *Seg) Close() error {
	if !s.mapped {
		return nil
	}
	return s.Unmap()
}

// NewHeapSeg builds a segment in ordinary process memory: the portable
// backend (no file, no mapping) used by tests and by single-process
// deployments that still want the segment data structures.
func NewHeapSeg(cfg SegConfig) (*Seg, error) {
	lay, err := LayoutFor(cfg)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, lay.Size+63)
	base := uintptr(unsafe.Pointer(&raw[0]))
	off := int((64 - base%64) % 64)
	mem := raw[off : off+lay.Size]
	s := &Seg{mem: mem, lay: lay, view: viewOver(mem, lay), mapped: true}
	s.view.init(lay)
	return s, nil
}

// SegPool is the shared free pool of a mapped segment: the same
// ABA-tagged Treiber stack as Pool, but with the head and free-count
// words living inside the segment header so every mapping of the file
// shares them. (Pool keeps its words in the Go struct — one indirection
// cheaper — which is why the two types stay separate.)
type SegPool struct {
	arena *Arena
	head  *atomic.Uint64
	free  *atomic.Int64
}

// Arena returns the backing arena.
func (p *SegPool) Arena() *Arena { return p.arena }

// Alloc pops a free node, reporting false on exhaustion.
func (p *SegPool) Alloc() (Ref, bool) {
	for {
		h := p.head.Load()
		tag, top := unpackHead(h)
		if top == NilRef {
			return NilRef, false
		}
		if int(top) >= p.arena.Len() {
			// A crashed or hostile peer corrupted the head: fail closed
			// rather than indexing out of the arena.
			return NilRef, false
		}
		next := p.arena.Node(top).Next()
		if p.head.CompareAndSwap(h, packHead(tag+1, next)) {
			p.free.Add(-1)
			return top, true
		}
	}
}

// Free pushes a node back onto the free list.
func (p *SegPool) Free(r Ref) {
	n := p.arena.Node(r)
	for {
		h := p.head.Load()
		tag, top := unpackHead(h)
		n.SetNext(top)
		if p.head.CompareAndSwap(h, packHead(tag+1, r)) {
			p.free.Add(1)
			return
		}
	}
}

// FreeCount returns the approximate number of free nodes.
func (p *SegPool) FreeCount() int64 { return p.free.Load() }

// Lane is one SPSC ring of refs in segment memory: the producer owns
// the tail cursor, the consumer the head cursor, and the slot array
// carries position-independent refs. Exactly one producer process and
// one consumer process may use a lane — the topology the segment
// builder enforces (client i produces on ReqLane(i), the server
// consumes; reversed for ReplyLane).
type Lane struct {
	ctl   *laneCtl
	slots []atomic.Uint32
	cap   uint64
}

// TryPush appends a ref, reporting false when the lane is full.
func (l *Lane) TryPush(r Ref) bool {
	t := l.ctl.Tail.Load()
	if t-l.ctl.Head.Load() >= l.cap {
		return false
	}
	l.slots[t%l.cap].Store(r)
	l.ctl.Tail.Store(t + 1)
	return true
}

// TryPop removes the head ref, reporting false when the lane is empty.
func (l *Lane) TryPop() (Ref, bool) {
	h := l.ctl.Head.Load()
	if h == l.ctl.Tail.Load() {
		return NilRef, false
	}
	r := l.slots[h%l.cap].Load()
	l.ctl.Head.Store(h + 1)
	return r, true
}

// Empty is the non-destructive poll (BSLS spin loop).
func (l *Lane) Empty() bool { return l.ctl.Head.Load() == l.ctl.Tail.Load() }

// Len returns the queued ref count (approximate under concurrency).
func (l *Lane) Len() int { return int(l.ctl.Tail.Load() - l.ctl.Head.Load()) }

// Reclaim audits and repairs a segment after its peers are gone. It
// must only be called with exclusive access (every other process dead
// or exited — the post-mortem doctrine): it drains every lane back to
// the pool (queued messages whose consumer died), then walks the free
// list and returns every unreachable node (refs a dead process held
// in-flight), and finally audits the payload slab arena the same way —
// every block unreachable from its class's free list was leased by a
// corpse and is returned. After Reclaim the pools are whole:
// Pool.FreeCount == Nodes and Blocks.TotalFree == Blocks.Capacity.
//
// Returns the three orphan classes separately — queued messages,
// in-flight node refs, leaked payload blocks — mirroring the in-process
// sweeper's OrphanMsgs / OrphanRefs / OrphanBlocks counters.
func (v *SegView) Reclaim() (orphanMsgs, orphanRefs, orphanBlocks int, err error) {
	nodes := v.lay.Cfg.Nodes
	for i := range v.lanes {
		for {
			r, ok := v.lanes[i].TryPop()
			if !ok {
				break
			}
			if int(r) >= nodes {
				return orphanMsgs, orphanRefs, 0, fmt.Errorf("%w: lane %d held ref %d outside arena", ErrBadGeometry, i, r)
			}
			v.Pool.Free(r)
			orphanMsgs++
		}
	}
	seen := make([]bool, nodes)
	_, top := unpackHead(v.Hdr.PoolHead.Load())
	walked := 0
	for r := top; r != NilRef; r = v.arena.Node(r).Next() {
		if int(r) >= nodes || seen[r] {
			return orphanMsgs, orphanRefs, 0, fmt.Errorf("%w: free list cycle or wild ref at %d", ErrBadGeometry, r)
		}
		seen[r] = true
		walked++
	}
	for i := 0; i < nodes; i++ {
		if !seen[i] {
			v.Pool.Free(Ref(i))
			orphanRefs++
		}
	}
	v.Hdr.PoolFree.Store(int64(nodes))
	if v.Blocks != nil {
		orphanBlocks, err = v.Blocks.ReclaimAll()
		if err != nil {
			return orphanMsgs, orphanRefs, orphanBlocks, err
		}
	}
	return orphanMsgs, orphanRefs, orphanBlocks, nil
}
