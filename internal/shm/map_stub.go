//go:build !linux

package shm

import "os"

// Non-Linux platforms have no mapping backend yet: the heap segment
// (NewHeapSeg) remains available for single-process use, and every
// file/fd entry point fails with the typed sentinel.

// CreateFileSeg is unsupported on this platform.
func CreateFileSeg(path string, cfg SegConfig) (*Seg, error) {
	return nil, ErrMapUnsupported
}

// OpenFileSeg is unsupported on this platform.
func OpenFileSeg(path string) (*Seg, error) { return nil, ErrMapUnsupported }

// MapFileSeg is unsupported on this platform.
func MapFileSeg(path string) (*Seg, error) { return nil, ErrMapUnsupported }

// CreateMemfdSeg is unsupported on this platform.
func CreateMemfdSeg(name string, cfg SegConfig) (*Seg, *os.File, error) {
	return nil, nil, ErrMapUnsupported
}

// MapFDSeg is unsupported on this platform.
func MapFDSeg(fd uintptr) (*Seg, error) { return nil, ErrMapUnsupported }
