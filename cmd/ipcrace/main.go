// Command ipcrace explores the sleep/wake-up protocol races of the
// paper's Figure 4 with an exhaustive interleaving model checker. For
// each protocol variant it reports whether any interleaving deadlocks
// (a lost wake-up), how high the semaphore count can climb (the
// accumulation/overflow hazard), and — for broken variants — one
// concrete counterexample interleaving, in the same step vocabulary the
// paper uses (C.1–C.5, P.1–P.3).
//
// Usage:
//
//	ipcrace             # check the four Figure 4 scenarios
//	ipcrace -producers 3 -msgs 2
//	ipcrace -chaos      # crash/recovery scenarios: a producer dies owing
//	                    # its wake-up V; the run asserts the hazard
//	                    # deadlocks without the recovery sweeper and is
//	                    # fully rescued with it, exiting non-zero otherwise
package main

import (
	"flag"
	"fmt"
	"os"

	"ulipc/internal/protomodel"
)

func main() {
	var (
		producers = flag.Int("producers", 2, "number of producers (1-3)")
		msgs      = flag.Int("msgs", 2, "messages per producer (1-4)")
		chaos     = flag.Bool("chaos", false, "check the crash/recovery scenarios (peer death before V, with and without the sweeper) and exit non-zero if the model contradicts the recovery claims")
	)
	flag.Parse()

	if *chaos {
		os.Exit(runChaos(*producers, *msgs))
	}

	type scenario struct {
		name   string
		mutate func(*protomodel.Config)
		expect string
	}
	scenarios := []scenario{
		{
			name:   "full protocol (Figure 5: counting semaphores + TAS fixes + step C.3)",
			mutate: func(c *protomodel.Config) {},
			expect: "safe: no deadlock, bounded semaphore",
		},
		{
			name:   "Interleaving 1: event-style wake-up (wake-up does not remain pending)",
			mutate: func(c *protomodel.Config) { c.CountingSem = false },
			expect: "harmful: consumer can sleep forever",
		},
		{
			name:   "Interleaving 2: producers read the awake flag without test-and-set",
			mutate: func(c *protomodel.Config) { c.ProducerTAS = false },
			expect: "not fatal, but redundant wake-ups accumulate (semaphore overflow hazard)",
		},
		{
			name:   "Interleaving 3: consumer skips the test-and-set drain on a late reply",
			mutate: func(c *protomodel.Config) { c.ConsumerDrain = false },
			expect: "not fatal, but a pending wake-up leaks into later cycles",
		},
		{
			name:   "Interleaving 4: consumer drops the second dequeue (step C.3)",
			mutate: func(c *protomodel.Config) { c.UseC3 = false },
			expect: "harmful: consumer can sleep forever",
		},
	}

	for _, sc := range scenarios {
		cfg := protomodel.FullProtocol(*producers, *msgs)
		sc.mutate(&cfg)
		res, err := protomodel.Check(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipcrace:", err)
			os.Exit(1)
		}
		report(sc.name, sc.expect, res)
	}

	// Worker-pool scenarios (the Section 2.1 "multiple server threads"
	// extension): the paper's single awake flag vs the counted-waiters
	// discipline internal/core's pool uses.
	poolScenarios := []struct {
		name   string
		cfg    protomodel.PoolConfig
		expect string
	}{
		{
			name:   "worker pool, 2 workers sharing the paper's single awake flag",
			cfg:    protomodel.PoolConfig{Consumers: 2, Producers: 2, Msgs: 1, SharedFlag: true},
			expect: "harmful: one V satisfies the flag; the second sleeping worker is never woken",
		},
		{
			name:   "worker pool, 2 workers with the counted-waiters discipline",
			cfg:    protomodel.PoolConfig{Consumers: 2, Producers: 2, Msgs: 1},
			expect: "safe: register/claim/unregister keeps a wake-up per sleeping worker",
		},
	}
	for _, sc := range poolScenarios {
		res, err := protomodel.PoolCheck(sc.cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipcrace:", err)
			os.Exit(1)
		}
		report(sc.name, sc.expect, res)
	}
}

// runChaos model-checks the peer-death hazard the chaos harness tests
// end-to-end: a producer dies after enqueueing its last message (and,
// under TAS, after setting the awake flag) but before its V. Without
// recovery every protocol with a blocking consumer admits a
// sleep-forever deadlock — the TAS'd flag makes every surviving
// producer skip its own V, so more producers do not help. With the
// sweeper's compensating V (livebind's lost-wake rescue + peer-death
// close) no interleaving deadlocks and every message, including the
// dead producer's last one, is still consumed.
//
// Unlike the Figure 4 scenarios, these expectations are asserted: a
// violation exits non-zero so CI can gate on the recovery claims.
func runChaos(producers, msgs int) int {
	bad := 0

	crash := protomodel.FullProtocol(producers, msgs)
	crash.CrashLastV = true
	res, err := protomodel.Check(crash)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipcrace:", err)
		return 1
	}
	report("peer death: producer 1 crashes before the V of its last message",
		"harmful: the dead producer owes a V; the TAS'd awake flag silences every survivor", res)
	if !res.Deadlock {
		fmt.Fprintln(os.Stderr, "ipcrace: VIOLATION: crash-before-V did not deadlock — the hazard the sweeper exists for is gone from the model")
		bad = 1
	}

	rescued := crash
	rescued.Sweeper = true
	res, err = protomodel.Check(rescued)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipcrace:", err)
		return 1
	}
	report("peer death + recovery sweeper (compensating V while the consumer is blocked)",
		"safe: the compensating V rescues every interleaving; all messages consumed; compensation bounded", res)
	if res.Deadlock {
		fmt.Fprintln(os.Stderr, "ipcrace: VIOLATION: sweeper failed to rescue a crash interleaving")
		bad = 1
	}
	if !res.AllConsumed {
		fmt.Fprintln(os.Stderr, "ipcrace: VIOLATION: sweeper run lost messages in some terminal state")
		bad = 1
	}
	if res.MaxSem > producers+1 {
		fmt.Fprintf(os.Stderr, "ipcrace: VIOLATION: sweeper compensation unbounded (max sem %d > %d)\n", res.MaxSem, producers+1)
		bad = 1
	}
	return bad
}

func report(name, expect string, res protomodel.Result) {
	fmt.Printf("== %s ==\n", name)
	fmt.Printf("paper: %s\n", expect)
	fmt.Printf("explored %d states, %d terminal; deadlock=%v; max pending wake-ups=%d; all messages consumed=%v\n",
		res.States, res.Terminal, res.Deadlock, res.MaxSem, res.AllConsumed)
	if res.Deadlock {
		fmt.Println("counterexample interleaving:")
		for _, step := range res.DeadlockPath {
			fmt.Printf("    %s\n", step)
		}
	}
	fmt.Println()
}
