package experiment

import (
	"fmt"

	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/workload"
)

// Fig11Spins are the MAX_SPIN values of the three middle curves of
// Figure 11. (The paper's exact values are not legible in our source;
// what matters for the shape is that the collapse point moves right as
// MAX_SPIN grows.)
var Fig11Spins = []int{1, 2, 4}

// mpClientSweep is the client axis of the multiprocessor figure: up to
// CPUs-1 clients so that the server and every client has a processor.
func mpClientSweep(quick bool) []int {
	if quick {
		return []int{1, 3, 5, 7}
	}
	return []int{1, 2, 3, 4, 5, 6, 7}
}

// RunFig11 reproduces Figure 11: server throughput on the 8-processor
// SGI Challenge for BSS, BSLS with three MAX_SPIN values, and SYSV.
func RunFig11(opt Options) (*Report, error) {
	r := newReport("fig11", "Multiprocessor server throughput (8-CPU SGI Challenge)",
		"BSS rises until the server saturates then stays stable; BSLS matches BSS up to a point then collapses (wake-up positive feedback); SYSV is worst and does not scale")
	clients := mpClientSweep(opt.Quick)
	msgs := opt.msgs()
	m := machine.SGIChallenge8()

	bss, _, err := sweep(workload.Config{Machine: m, Alg: core.BSS}, clients, msgs)
	if err != nil {
		return nil, err
	}
	curves := map[string][]float64{"BSS": bss}
	order := []string{"BSS"}
	r.recordCurve("fig11/bss", clients, bss)

	for _, spin := range Fig11Spins {
		ths, _, err := sweep(workload.Config{Machine: m, Alg: core.BSLS, MaxSpin: spin}, clients, msgs)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("BSLS-%d", spin)
		curves[name] = ths
		order = append(order, name)
		r.recordCurve(fmt.Sprintf("fig11/spin%d", spin), clients, ths)
	}

	sysv, _, err := sweep(workload.Config{Machine: m, Transport: workload.TransportSysV}, clients, msgs)
	if err != nil {
		return nil, err
	}
	curves["SYSV"] = sysv
	order = append(order, "SYSV")
	r.recordCurve("fig11/sysv", clients, sysv)

	r.Tables = append(r.Tables, throughputTable(
		"Figure 11 — "+m.Name+" (messages/ms)", clients, curves, order))
	r.Plots = append(r.Plots, throughputPlot("Figure 11 — "+m.Name, clients, curves, order))
	r.note("poll_queue is a 25us busy-wait loop on the multiprocessor (Section 5); busy_wait is a delay loop instead of yield().")
	r.note("The BSLS collapse is the paper's positive feedback: once one client exceeds MAX_SPIN the server pays V+wakeup per message, slowing replies and pushing more clients past MAX_SPIN.")
	return r, nil
}
