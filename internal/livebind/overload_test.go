package livebind

import (
	"context"
	"errors"
	"testing"

	"ulipc/internal/core"
	"ulipc/internal/metrics"
)

// ---- heap-overflow table (the CopyFallback degraded mode) ----

func TestHeapOverflowLifecycle(t *testing.T) {
	o := newHeapOverflow(256)

	ref, buf, ok := o.alloc(64)
	if !ok {
		t.Fatal("alloc failed on an empty table")
	}
	if !isOverflowRef(ref) {
		t.Fatalf("ref %#x not in the overflow class", ref)
	}
	if len(buf) != 256 {
		t.Fatalf("buf len %d, want the full max block 256", len(buf))
	}
	if got := o.live(); got != 1 {
		t.Fatalf("live = %d after alloc, want 1", got)
	}

	// The lease/claim discipline mirrors the arena's: claim wins only
	// while leased, frees clear the lease.
	if o.claim(ref, 9) {
		t.Fatal("claim succeeded before any lease")
	}
	if err := o.lease(ref, 3); err != nil {
		t.Fatalf("lease: %v", err)
	}
	if !o.claim(ref, 9) {
		t.Fatal("claim of a leased block failed")
	}
	if _, err := o.get(ref); err != nil {
		t.Fatalf("get: %v", err)
	}
	if err := o.free(ref); err != nil {
		t.Fatalf("free: %v", err)
	}
	if got := o.live(); got != 0 {
		t.Fatalf("live = %d after free, want 0", got)
	}
	if err := o.free(ref); err == nil {
		t.Fatal("double free not rejected")
	}
	if o.claim(ref, 9) {
		t.Fatal("claim succeeded on a freed block")
	}
	if _, err := o.get(ref); err == nil {
		t.Fatal("get of a freed block not rejected")
	}

	// Freed slots are recycled, not leaked: the next alloc reuses the
	// slot index instead of growing the table.
	ref2, _, ok := o.alloc(10)
	if !ok {
		t.Fatal("alloc after free failed")
	}
	if ref2 != ref {
		t.Fatalf("freed slot not recycled: got %#x, want %#x", ref2, ref)
	}
	if len(o.slots) != 1 {
		t.Fatalf("table grew to %d slots despite a free slot", len(o.slots))
	}
}

func TestHeapOverflowBounds(t *testing.T) {
	o := newHeapOverflow(128)
	// Degraded mode never accepts a payload the normal mode would
	// reject: past MaxBlock the alloc fails.
	if _, _, ok := o.alloc(129); ok {
		t.Fatal("alloc past MaxBlock succeeded")
	}
	if _, _, ok := o.alloc(-1); ok {
		t.Fatal("negative alloc succeeded")
	}
	// Bad refs are rejected, not dereferenced.
	bad := uint32(overflowClass)<<24 | 42
	if err := o.free(bad); err == nil {
		t.Fatal("free of an unallocated slot not rejected")
	}
	if o.claim(bad, 1) {
		t.Fatal("claim of an unallocated slot succeeded")
	}
}

// The nil table (systems built without CopyFallback) fails every
// operation instead of panicking — overflow refs must never appear
// there, and if one does the error names the misuse.
func TestHeapOverflowNil(t *testing.T) {
	var o *heapOverflow
	if _, _, ok := o.alloc(1); ok {
		t.Fatal("nil table alloc succeeded")
	}
	ref := uint32(overflowClass) << 24
	if err := o.free(ref); err == nil {
		t.Fatal("nil table free not rejected")
	}
	if _, err := o.get(ref); err == nil {
		t.Fatal("nil table get not rejected")
	}
	if err := o.lease(ref, 1); err == nil {
		t.Fatal("nil table lease not rejected")
	}
	if o.claim(ref, 1) {
		t.Fatal("nil table claim succeeded")
	}
	if o.live() != 0 {
		t.Fatal("nil table reports live blocks")
	}
}

// ---- CopyFallback end to end through a system's block source ----

// Exhausting the slab arena on a WithCopyFallback system degrades
// allocation to the heap table (counted, audited by FallbackLive)
// instead of failing; releasing the payloads drains the table again.
func TestCopyFallbackDegradesExhaustion(t *testing.T) {
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 1, BlockSlots: 2}, WithCopyFallback())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown(context.Background())
	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}

	// Drain the largest size class (2 slots, and no bigger class to
	// spill into) and keep going: the overflow table must absorb the
	// excess.
	max := sys.Blocks().MaxBlock()
	var pays []*core.Payload
	for i := 0; i < 5; i++ {
		p, err := cl.AllocPayload(max)
		if err != nil {
			t.Fatalf("alloc %d degraded to error %v, want heap fallback", i, err)
		}
		pays = append(pays, p)
	}
	fell := sys.FallbackLive()
	if fell == 0 {
		t.Fatal("no allocation fell back despite an exhausted class")
	}
	if got := cl.M.CopyFallbacks.Load(); got != fell {
		t.Errorf("CopyFallbacks = %d, want %d (one per overflow block)", got, fell)
	}
	overflowSeen := false
	for _, p := range pays {
		if isOverflowRef(p.Ref()) {
			overflowSeen = true
			// Overflow payloads are real payloads: writable storage.
			p.Bytes()[0] = 0xAB
		}
	}
	if !overflowSeen {
		t.Fatal("FallbackLive > 0 but no payload carries an overflow ref")
	}
	for _, p := range pays {
		p.Release()
	}
	if got := sys.FallbackLive(); got != 0 {
		t.Errorf("FallbackLive = %d after releasing everything, want 0", got)
	}
	if free := sys.Blocks().TotalFree(); free != int64(sys.Blocks().Capacity()) {
		t.Errorf("arena free %d / %d after releasing everything", free, sys.Blocks().Capacity())
	}
}

// Without CopyFallback the same exhaustion surfaces as
// ErrBlocksExhausted — the pre-doctrine contract is unchanged.
func TestNoFallbackStillFailsExhaustion(t *testing.T) {
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 1, BlockSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown(context.Background())
	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	var pays []*core.Payload
	for {
		p, err := cl.AllocPayload(64)
		if err != nil {
			if !errors.Is(err, core.ErrBlocksExhausted) {
				t.Fatalf("exhaustion error = %v, want ErrBlocksExhausted", err)
			}
			break
		}
		pays = append(pays, p)
		if len(pays) > 1024 {
			t.Fatal("arena never exhausted")
		}
	}
	if sys.FallbackLive() != 0 {
		t.Fatal("overflow table active without WithCopyFallback")
	}
	for _, p := range pays {
		p.Release()
	}
}

// ---- admission option validation ----

func TestAdmissionValidation(t *testing.T) {
	base := func() Options { return Options{Alg: core.BSW, Clients: 1} }
	for _, tc := range []struct {
		name string
		mut  func(*Options)
	}{
		{"negative high water", func(o *Options) { o.Admission.HighWater = -1 }},
		{"negative retry cap", func(o *Options) { o.Admission.RetryCap = -1 }},
		{"negative retry refill", func(o *Options) { o.Admission.RetryRefill = -0.5 }},
		{"negative quarantine", func(o *Options) { o.Admission.QuarantineAfter = -1 }},
		{"negative reprobe", func(o *Options) { o.Admission.ReprobeAfter = -1 }},
		{"quarantine without high water", func(o *Options) { o.Admission.QuarantineAfter = 8 }},
		{"fallback without arena", func(o *Options) { o.CopyFallback = true }},
	} {
		o := base()
		tc.mut(&o)
		if _, err := NewSystem(o); !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: err = %v, want ErrBadOption", tc.name, err)
		}
	}

	// Defaults: a retry cap implies a refill, a quarantine implies a
	// reprobe interval.
	o := base()
	o.Admission = Admission{HighWater: 32, RetryCap: 16, QuarantineAfter: 8}
	if err := o.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if o.Admission.RetryRefill != 0.1 {
		t.Errorf("RetryRefill defaulted to %g, want 0.1", o.Admission.RetryRefill)
	}
	if o.Admission.ReprobeAfter != 64 {
		t.Errorf("ReprobeAfter defaulted to %d, want 64", o.Admission.ReprobeAfter)
	}
}

// A system with admission configured hands every client handle the
// high-water mark and a private retry budget; one without hands out
// neither (the zero-cost default).
func TestAdmissionPlumbedToClients(t *testing.T) {
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 2},
		WithAdmission(Admission{HighWater: 32, RetryCap: 16}))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown(context.Background())
	c0, _ := sys.Client(0)
	c1, _ := sys.Client(1)
	if c0.HighWater != 32 || c1.HighWater != 32 {
		t.Errorf("HighWater = %d/%d, want 32/32", c0.HighWater, c1.HighWater)
	}
	if c0.Budget == nil || c1.Budget == nil {
		t.Fatal("retry budget not plumbed")
	}
	if c0.Budget == c1.Budget {
		t.Error("clients share one retry budget; it must be per handle")
	}
	if c0.Budget.Cap != 16 || c0.Budget.Refill != 0.1 {
		t.Errorf("budget = %+v, want Cap 16 Refill 0.1", c0.Budget)
	}

	open, err := NewSystem(Options{Alg: core.BSW, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer open.Shutdown(context.Background())
	cl, _ := open.Client(0)
	if cl.HighWater != 0 || cl.Budget != nil {
		t.Errorf("open system client got HighWater %d Budget %v", cl.HighWater, cl.Budget)
	}
}

// ---- quarantine circuit state machine ----

func circuitGroup(quarAfter, reprobeAfter, highWater int) *group {
	return &group{
		shards:       1,
		quarAfter:    quarAfter,
		reprobeAfter: reprobeAfter,
		highWater:    highWater,
		circuits:     make([]shardCircuit, 1),
	}
}

func TestCircuitOpensOnSustainedHighWater(t *testing.T) {
	g := circuitGroup(3, 4, 10)
	m := &metrics.Proc{}

	// Interleaved low observations reset the strike count: only
	// CONSECUTIVE high-water picks open the circuit.
	g.observeShard(0, 12, m)
	g.observeShard(0, 11, m)
	g.observeShard(0, 2, m) // drained: strikes reset
	g.observeShard(0, 15, m)
	g.observeShard(0, 15, m)
	if st := g.circuits[0].state.Load(); st != circClosed {
		t.Fatalf("circuit state %d after a reset sequence, want closed", st)
	}
	if !g.circuitAllows(0) {
		t.Fatal("closed circuit refused a pick")
	}

	g.observeShard(0, 10, m) // third consecutive at the mark (>=)
	if st := g.circuits[0].state.Load(); st != circOpen {
		t.Fatalf("circuit state %d after 3 consecutive highs, want open", st)
	}
	if got := m.Quarantines.Load(); got != 1 {
		t.Fatalf("Quarantines = %d, want 1", got)
	}

	// Open: picks are refused while the shard sits out ReprobeAfter
	// rounds; the pick that crosses the threshold wins the half-open
	// CAS and goes through as the trial.
	satOut := 0
	for !g.circuitAllows(0) {
		satOut++
		if satOut > 16 {
			t.Fatal("open circuit never half-opened")
		}
	}
	if satOut != 3 {
		t.Fatalf("sat out %d picks before the trial, want ReprobeAfter-1 = 3", satOut)
	}
	if st := g.circuits[0].state.Load(); st != circHalfOpen {
		t.Fatalf("state %d after the trial pick, want half-open", st)
	}

	// Trial verdict "still saturated": re-open and sit out again.
	g.observeShard(0, 99, m)
	if st := g.circuits[0].state.Load(); st != circOpen {
		t.Fatalf("state %d after a saturated trial, want open", st)
	}
	if got := m.Quarantines.Load(); got != 1 {
		t.Errorf("re-opening counted as a new quarantine: %d", got)
	}

	// Next trial sees a drained lane: the circuit closes and stays
	// closed through further low observations.
	for i := 0; i < 8 && g.circuits[0].state.Load() == circOpen; i++ {
		g.circuitAllows(0)
	}
	g.observeShard(0, 0, m)
	if st := g.circuits[0].state.Load(); st != circClosed {
		t.Fatalf("state %d after a drained trial, want closed", st)
	}
	if !g.circuitAllows(0) {
		t.Fatal("closed circuit refused a pick after recovery")
	}
}

// With circuits disabled (QuarantineAfter 0) observation is a no-op
// and every pick is allowed — the zero-cost default.
func TestCircuitDisabled(t *testing.T) {
	g := circuitGroup(0, 0, 10)
	for i := 0; i < 100; i++ {
		g.observeShard(0, 1000, nil)
		if !g.circuitAllows(0) {
			t.Fatal("disabled circuit refused a pick")
		}
	}
	if st := g.circuits[0].state.Load(); st != circClosed {
		t.Fatalf("disabled circuit changed state to %d", st)
	}
}
