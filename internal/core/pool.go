package core

import (
	"context"
	"sync/atomic"
	"time"

	"ulipc/internal/metrics"
	"ulipc/internal/obs"
)

// Worker-pool server: Section 2.1 contemplates "multiple clients and
// multiple server threads" on the shared queues, but the paper's single
// awake flag cannot represent several sleeping workers — one V satisfies
// the flag and a second sleeping worker is never woken even though its
// message is queued (internal/protomodel finds the interleaving
// exhaustively). The pool uses the counted-waiters discipline instead,
// verified by the same model checker:
//
//   - a worker REGISTERS (waiters++) before its re-check, and sleeps if
//     the re-check still finds nothing;
//   - a producer, after enqueueing, CLAIMS a waiter (atomic decrement if
//     positive) and only then issues the V;
//   - a worker whose re-check found a message tries to unregister
//     (atomic decrement if positive); if it was already claimed it just
//     moves on — the stale V wakes some worker spuriously, and every
//     woken worker re-checks the queue before sleeping again. Draining
//     the V here instead would steal a live wake-up from a sibling (the
//     checker finds that deadlock too).
//
// Cancellation composes with the same discipline: a worker cancelled
// while parked consumed no token (PCtx hands a racing grant back), and
// it withdraws its registration on the way out. If a producer already
// claimed the registration, the producer's V stays in the semaphore and
// the next parked sibling absorbs it as a spurious wake — the message
// is in the queue, so no wake-up is lost.

// PoolPort is a queue endpoint whose consumer side is a pool of workers
// synchronised by a waiter counter.
type PoolPort interface {
	TryEnqueue(m Msg) bool
	TryDequeue() (Msg, bool)
	Empty() bool

	// RegisterWaiter increments the waiter count (a worker is about to
	// re-check and then sleep).
	RegisterWaiter()

	// TryUnregisterWaiter atomically decrements the waiter count if it
	// is positive; false means a producer already claimed this
	// registration (its V is, or will be, pending).
	TryUnregisterWaiter() bool

	// ClaimWaiter atomically decrements the waiter count if it is
	// positive; true directs the producer to issue the wake-up V.
	ClaimWaiter() bool

	// Sem identifies the counting semaphore the pool sleeps on.
	Sem() SemID
}

// poolWake is the producer-side wake: claim a waiter, then V.
func poolWake(q PoolPort, a Actor) {
	if q.ClaimWaiter() {
		a.V(q.Sem())
	}
}

// PoolCoordinator is the shared bookkeeping of one worker pool:
// connection accounting and shutdown broadcast. All fields are atomic so
// the same type serves the live runtime and the simulator.
type PoolCoordinator struct {
	Workers int

	connected atomic.Int64
	ever      atomic.Bool
	served    atomic.Int64
	stop      atomic.Bool
}

// Stopped reports whether the pool has been shut down.
func (pc *PoolCoordinator) Stopped() bool { return pc.stop.Load() }

// Stop marks the pool as shut down. It only raises the flag; the caller
// must also wake parked workers (System.Shutdown broadcasts Vs, and the
// last-disconnect path in Serve does the same) so they observe it.
func (pc *PoolCoordinator) Stop() { pc.stop.Store(true) }

// Served returns the number of data requests handled across workers.
func (pc *PoolCoordinator) Served() int64 { return pc.served.Load() }

// PoolWorker is one server thread of a worker pool. All workers of a
// pool share the receive PoolPort, the reply ports and the coordinator;
// each has its own Actor (its own process/goroutine context).
type PoolWorker struct {
	Alg     Algorithm
	MaxSpin int
	Tuner   *Tuner // BSA spin-budget controller (lazily built if nil)
	Rcv     PoolPort
	Replies []Port
	A       Actor
	C       *PoolCoordinator
	M       *metrics.Proc
	Obs     obs.Hook // optional phase histograms + flight recorder

	// outstanding[i] counts requests this worker received from client i
	// and has not yet replied to — the double-reply audit consulted by
	// ReplyCtx. A worker handle is single-goroutine, so plain ints
	// suffice (each request is received and replied by the same worker).
	outstanding []int32
}

func (w *PoolWorker) maxSpin() int {
	if w.MaxSpin <= 0 {
		return DefaultMaxSpin
	}
	return w.MaxSpin
}

// spinRcv runs the pre-block spin prefix on the shared pool queue:
// BSLS's fixed budget, or BSA's controller-tuned budget.
func (w *PoolWorker) spinRcv() {
	if w.Alg == BSA {
		if w.Tuner == nil {
			w.Tuner = NewTuner(TunerConfig{})
		}
		adaptiveSpin(w.Rcv, w.A, w.Tuner, w.M, w.Obs)
		return
	}
	spinPollObs(w.Rcv, w.A, w.maxSpin(), w.M, w.Obs)
}

func (w *PoolWorker) noteReceived(client int32) {
	if client < 0 || int(client) >= len(w.Replies) {
		return
	}
	if w.outstanding == nil {
		w.outstanding = make([]int32, len(w.Replies))
	}
	w.outstanding[client]++
}

func (w *PoolWorker) noteReplied(client int32) {
	if w.outstanding != nil && w.outstanding[client] > 0 {
		w.outstanding[client]--
	}
}

// Receive returns the next request, or false when the pool has shut
// down. Wake-ups are re-checked against both the queue and the stop
// flag, so spurious wakes (stale claimed Vs, shutdown broadcast) are
// absorbed here.
func (w *PoolWorker) Receive() (Msg, bool) {
	for {
		if w.C.Stopped() {
			return Msg{}, false
		}
		if m, ok := w.Rcv.TryDequeue(); ok {
			if w.M != nil {
				w.M.MsgsReceived.Add(1)
			}
			w.noteReceived(m.Client)
			return m, true
		}
		switch w.Alg {
		case BSS:
			// Busy-wait with stop checks; no registration needed.
			w.A.BusyWait()
			continue
		case BSWY:
			w.A.Yield()
		case BSLS, BSA:
			w.spinRcv()
		}
		w.Rcv.RegisterWaiter()
		if m, ok := w.Rcv.TryDequeue(); ok {
			// Late success: unregister, or — if a producer claimed us —
			// leave the stale V for a sibling's re-check cycle.
			w.Rcv.TryUnregisterWaiter()
			if w.M != nil {
				w.M.MsgsReceived.Add(1)
			}
			w.noteReceived(m.Client)
			return m, true
		}
		if w.C.Stopped() {
			// Don't park across shutdown; the registration is stale but
			// harmless (no producer will claim it).
			return Msg{}, false
		}
		w.A.P(w.Rcv.Sem())
		// Woken (possibly spuriously): loop to re-check.
	}
}

// ReceiveCtx is Receive with deadline/cancellation support. It returns
// ErrShutdown once the pool has stopped (or the system shut down) and
// ctx.Err() when the context ends first.
func (w *PoolWorker) ReceiveCtx(ctx context.Context) (Msg, error) {
	ca, _ := w.A.(CtxActor)
	for {
		if w.C.Stopped() {
			return Msg{}, ErrShutdown
		}
		if err := ctx.Err(); err != nil {
			return Msg{}, err
		}
		if m, ok := w.Rcv.TryDequeue(); ok {
			if w.M != nil {
				w.M.MsgsReceived.Add(1)
			}
			w.noteReceived(m.Client)
			return m, nil
		}
		switch w.Alg {
		case BSS:
			w.A.BusyWait()
			continue
		case BSWY:
			w.A.Yield()
		case BSLS, BSA:
			w.spinRcv()
		}
		w.Rcv.RegisterWaiter()
		if m, ok := w.Rcv.TryDequeue(); ok {
			w.Rcv.TryUnregisterWaiter()
			if w.M != nil {
				w.M.MsgsReceived.Add(1)
			}
			w.noteReceived(m.Client)
			return m, nil
		}
		if w.C.Stopped() {
			return Msg{}, ErrShutdown
		}
		if ca == nil {
			w.Rcv.TryUnregisterWaiter()
			return Msg{}, ErrNotCancellable
		}
		if err := ca.PCtx(ctx, w.Rcv.Sem()); err != nil {
			// Cancelled without a token (PCtx handed any racing grant
			// back). Withdraw the registration; if a producer already
			// claimed it the V stays pending and a parked sibling absorbs
			// it as a spurious wake — the message is queued, so no
			// wake-up is lost.
			w.Rcv.TryUnregisterWaiter()
			return Msg{}, err
		}
		// Woken (possibly spuriously): loop to re-check.
	}
}

// Reply sends a response to the client and wakes it if needed. Reply
// queues have a single consumer each, so the paper's flag protocol
// applies unchanged; a synchronous client has at most one outstanding
// request, so no two workers touch the same reply queue concurrently.
func (w *PoolWorker) Reply(client int32, m Msg) {
	if client < 0 || int(client) >= len(w.Replies) {
		return // hostile/corrupted reply channel: drop
	}
	w.noteReplied(client)
	q := w.Replies[client]
	if w.Alg == BSS {
		busySpinUntil(w.A, q, func() bool { return q.TryEnqueue(m) })
		return
	}
	if !enqueueOrSleepObs(q, w.A, m, w.Obs) {
		return // shutdown: the client is being unblocked anyway
	}
	wakeConsumer(q, w.A)
}

// ReplyCtx is Reply with deadline/cancellation support and the
// double-reply audit: replying to a client this worker has no received
// request outstanding for returns ErrDoubleReply.
func (w *PoolWorker) ReplyCtx(ctx context.Context, client int32, m Msg) error {
	if client < 0 || int(client) >= len(w.Replies) {
		return ErrDoubleReply
	}
	if w.outstanding == nil || w.outstanding[client] <= 0 {
		return ErrDoubleReply
	}
	q := w.Replies[client]
	if w.Alg == BSS {
		if err := spinEnqueueCtx(ctx, w.A, q, m); err != nil {
			return err
		}
		w.noteReplied(client)
		return nil
	}
	if err := enqueueOrSleepCtxObs(ctx, q, w.A, m, w.M, nil, w.Obs); err != nil {
		return err
	}
	w.noteReplied(client)
	wakeConsumer(q, w.A)
	return nil
}

// Serve runs this worker's echo loop until the pool shuts down (all
// clients disconnected). The worker that processes the last disconnect
// broadcasts shutdown by waking every sibling.
func (w *PoolWorker) Serve(work func(*Msg)) {
	for {
		m, ok := w.Receive()
		if !ok {
			return
		}
		if client := m.Client; client < 0 || int(client) >= len(w.Replies) {
			continue
		}
		if w.step(m, work) {
			return
		}
	}
}

// ServeCtx is Serve with deadline/cancellation support: it returns nil
// when the pool stops (last disconnect or graceful system shutdown) and
// ctx.Err() when the context ends first.
func (w *PoolWorker) ServeCtx(ctx context.Context, work func(*Msg)) error {
	for {
		m, err := w.ReceiveCtx(ctx)
		if err == ErrShutdown {
			return nil
		}
		if err != nil {
			return err
		}
		if client := m.Client; client < 0 || int(client) >= len(w.Replies) {
			continue
		}
		if w.step(m, work) {
			return nil
		}
	}
}

// step processes one received request; it reports true when this worker
// broadcast pool shutdown (last disconnect) and should exit.
func (w *PoolWorker) step(m Msg, work func(*Msg)) (stop bool) {
	switch m.Op {
	case OpConnect:
		w.C.connected.Add(1)
		w.C.ever.Store(true)
		w.Reply(m.Client, m)
	case OpDisconnect:
		left := w.C.connected.Add(-1)
		w.Reply(m.Client, m)
		if w.C.ever.Load() && left == 0 {
			w.C.stop.Store(true)
			// Shutdown broadcast: unconditional Vs so parked
			// siblings wake, observe the stop flag and exit.
			for i := 0; i < w.C.Workers; i++ {
				w.A.V(w.Rcv.Sem())
			}
			return true
		}
	case OpWork:
		if work != nil {
			work(&m)
		}
		w.C.served.Add(1)
		w.Reply(m.Client, m)
	default: // OpEcho
		w.C.served.Add(1)
		w.Reply(m.Client, m)
	}
	return false
}

// PoolClient is the client side of a worker-pool server: requests go to
// the shared pool queue with claim-based wake-ups; replies arrive on the
// client's own single-consumer queue using the paper's flag protocol.
// Like Client, the handle is single-goroutine and drains replies owed
// for cancelled sends before enqueueing anything new; pool workers may
// retire cancelled requests out of order, but the client's reply queue
// still receives exactly one reply per enqueued request, so draining by
// count is sufficient.
type PoolClient struct {
	ID      int32
	Alg     Algorithm
	MaxSpin int
	Tuner   *Tuner   // BSA spin-budget controller (lazily built if nil)
	Srv     PoolPort // enqueue endpoint of the pool's receive queue
	Rcv     Port     // dequeue endpoint of this client's reply queue
	A       Actor
	M       *metrics.Proc
	Obs     obs.Hook // optional phase histograms + flight recorder

	lag int
}

func (c *PoolClient) maxSpin() int {
	if c.MaxSpin <= 0 {
		return DefaultMaxSpin
	}
	return c.MaxSpin
}

// spinRcv runs the pre-block spin prefix on the reply queue: BSLS's
// fixed budget, or BSA's controller-tuned budget.
func (c *PoolClient) spinRcv() {
	if c.Alg == BSA {
		if c.Tuner == nil {
			c.Tuner = NewTuner(TunerConfig{})
		}
		adaptiveSpin(c.Rcv, c.A, c.Tuner, c.M, c.Obs)
		return
	}
	spinPollObs(c.Rcv, c.A, c.maxSpin(), c.M, c.Obs)
}

// Lag reports how many replies are still owed for cancelled sends
// (diagnostics and tests).
func (c *PoolClient) Lag() int { return c.lag }

// Send performs a synchronous exchange with the worker pool. On
// shutdown it returns the OpShutdown marker message.
func (c *PoolClient) Send(m Msg) Msg {
	m.Client = c.ID
	for c.lag > 0 {
		if stale := c.recvReply(); stale.Op == OpShutdown {
			return stale
		}
		c.lag--
	}
	if c.M != nil {
		defer c.M.MsgsSent.Add(1)
	}
	if !c.Obs.Enabled() {
		return c.dispatchSend(m)
	}
	c.Obs.Note(obs.EvSend, int64(m.Seq))
	t0 := time.Now()
	ans := c.dispatchSend(m)
	c.Obs.RTT(time.Since(t0))
	c.Obs.Note(obs.EvRecv, int64(ans.Seq))
	return ans
}

// dispatchSend routes a request through the configured protocol.
func (c *PoolClient) dispatchSend(m Msg) Msg {
	if c.Alg == BSS {
		if !busySpinUntil(c.A, c.Srv, func() bool { return c.Srv.TryEnqueue(m) }) {
			return ShutdownMsg()
		}
		return c.recvReply()
	}
	if !enqueueOrSleepObs(c.Srv, c.A, m, c.Obs) {
		return ShutdownMsg()
	}
	poolWake(c.Srv, c.A)
	if c.Alg == BSWY {
		c.A.BusyWait()
	}
	return c.recvReply()
}

// SendCtx is Send with deadline/cancellation support (see
// Client.SendCtx for the error contract).
func (c *PoolClient) SendCtx(ctx context.Context, m Msg) (Msg, error) {
	m.Client = c.ID
	for c.lag > 0 {
		if _, err := c.recvReplyCtx(ctx); err != nil {
			return Msg{}, err
		}
		c.lag--
	}
	var t0 time.Time
	obsOn := c.Obs.Enabled()
	if obsOn {
		c.Obs.Note(obs.EvSend, int64(m.Seq))
		t0 = time.Now()
	}
	if c.Alg == BSS {
		if err := spinEnqueueCtx(ctx, c.A, c.Srv, m); err != nil {
			return Msg{}, err
		}
	} else {
		if err := enqueueOrSleepCtxObs(ctx, c.Srv, c.A, m, c.M, nil, c.Obs); err != nil {
			return Msg{}, err
		}
		poolWake(c.Srv, c.A)
		if c.Alg == BSWY {
			c.A.BusyWait()
		}
	}
	c.lag++
	ans, err := c.recvReplyCtx(ctx)
	if err != nil {
		return Msg{}, err
	}
	c.lag--
	if obsOn {
		c.Obs.RTT(time.Since(t0))
		c.Obs.Note(obs.EvRecv, int64(ans.Seq))
	}
	if c.M != nil {
		c.M.MsgsSent.Add(1)
	}
	return ans, nil
}

// recvReply is the per-protocol blocking reply dequeue.
func (c *PoolClient) recvReply() Msg {
	switch c.Alg {
	case BSS:
		var ans Msg
		if !busySpinUntil(c.A, c.Rcv, func() bool {
			var ok bool
			ans, ok = c.Rcv.TryDequeue()
			return ok
		}) {
			return ShutdownMsg()
		}
		return ans
	case BSW:
		return consumerWait(c.Rcv, c.A, nil)
	case BSWY:
		return consumerWait(c.Rcv, c.A, c.A.BusyWait)
	case BSLS, BSA:
		c.spinRcv()
		return consumerWait(c.Rcv, c.A, c.A.BusyWait)
	}
	panic(ErrUnknownAlgorithm)
}

// recvReplyCtx is the per-protocol cancellable reply dequeue.
func (c *PoolClient) recvReplyCtx(ctx context.Context) (Msg, error) {
	switch c.Alg {
	case BSS:
		return spinDequeueCtx(ctx, c.A, c.Rcv)
	case BSW:
		return consumerWaitCtx(ctx, c.Rcv, c.A, nil)
	case BSWY:
		return consumerWaitCtx(ctx, c.Rcv, c.A, c.A.BusyWait)
	case BSLS, BSA:
		c.spinRcv()
		return consumerWaitCtx(ctx, c.Rcv, c.A, c.A.BusyWait)
	}
	return Msg{}, ErrUnknownAlgorithm
}
