package sched

import "ulipc/internal/sim"

// Linux10 models the simplistic scheduler of Linux 1.0.32 as the paper
// found it (Section 6): sched_yield does not expire the caller's quantum,
// so a spinning process keeps the CPU until its quantum runs out, giving
// BSS "response times on the order of 33 milliseconds instead of the 120
// microseconds we were expecting".
type Linux10 struct {
	q       runq
	quantum sim.Time
}

// NewLinux10 builds the unmodified Linux 1.0.32 policy.
func NewLinux10() *Linux10 { return &Linux10{} }

// Name implements sim.Scheduler.
func (l *Linux10) Name() string { return "linux10" }

// Attach implements sim.Scheduler.
func (l *Linux10) Attach(k *sim.Kernel) { l.quantum = k.Machine().Quantum }

// Ready implements sim.Scheduler.
func (l *Linux10) Ready(p *sim.Proc) { l.q.add(p) }

// Pick implements sim.Scheduler. On a yield (incumbent non-nil) the
// incumbent is always re-picked — the Linux 1.0 bug the paper fixes. At
// quantum expiry the engine passes a nil incumbent and the queue rotates
// FIFO.
func (l *Linux10) Pick(cpu int, incumbent *sim.Proc) *sim.Proc {
	if incumbent != nil && l.q.remove(incumbent) {
		return incumbent
	}
	return l.q.pickFIFO()
}

// Steal implements sim.Scheduler.
func (l *Linux10) Steal(p *sim.Proc) bool { return l.q.remove(p) }

// OnYield implements sim.Scheduler.
func (l *Linux10) OnYield(p *sim.Proc) {}

// Charge implements sim.Scheduler.
func (l *Linux10) Charge(p *sim.Proc, dur sim.Time) {}

// QuantumFor implements sim.Scheduler.
func (l *Linux10) QuantumFor(p *sim.Proc) sim.Time { return l.quantum }

// ReadyCount implements sim.Scheduler.
func (l *Linux10) ReadyCount() int { return l.q.len() }

// LinuxMod models the paper's modified sched_yield: the call expires the
// caller's quantum and forces a context switch, so a yield always hands
// the CPU to the next ready process (this restored the 120us BSS round
// trip on the 66 MHz 486).
type LinuxMod struct {
	q       runq
	quantum sim.Time
}

// NewLinuxMod builds the modified-yield Linux policy.
func NewLinuxMod() *LinuxMod { return &LinuxMod{} }

// Name implements sim.Scheduler.
func (l *LinuxMod) Name() string { return "linuxmod" }

// Attach implements sim.Scheduler.
func (l *LinuxMod) Attach(k *sim.Kernel) { l.quantum = k.Machine().Quantum }

// Ready implements sim.Scheduler.
func (l *LinuxMod) Ready(p *sim.Proc) { l.q.add(p) }

// Pick implements sim.Scheduler: strict FIFO round-robin; a yield always
// switches when another process is ready.
func (l *LinuxMod) Pick(cpu int, incumbent *sim.Proc) *sim.Proc {
	return l.q.pickFIFO()
}

// Steal implements sim.Scheduler.
func (l *LinuxMod) Steal(p *sim.Proc) bool { return l.q.remove(p) }

// OnYield implements sim.Scheduler.
func (l *LinuxMod) OnYield(p *sim.Proc) {}

// Charge implements sim.Scheduler.
func (l *LinuxMod) Charge(p *sim.Proc, dur sim.Time) {}

// QuantumFor implements sim.Scheduler.
func (l *LinuxMod) QuantumFor(p *sim.Proc) sim.Time { return l.quantum }

// ReadyCount implements sim.Scheduler.
func (l *LinuxMod) ReadyCount() int { return l.q.len() }
