package experiment

import (
	"fmt"

	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/workload"
)

// RunAblation implements the Section 5 "future work" idea: "We could
// break the positive feedback in the BSLS algorithm by having the server
// recognize the fact that it is overloaded, and limit the number of
// clients it wakes up at any given time. The challenge is constraining
// the concurrency in this fashion while guaranteeing that starvation
// doesn't occur."
//
// Our server parks clients past a cap on the simultaneously awake set
// and re-admits them FIFO with pacing plus an age-based force (no
// starvation). The ablation sweeps the multiprocessor collapse scenario
// with the throttle off and at two cap values.
func RunAblation(opt Options) (*Report, error) {
	r := newReport("ablation", "BSLS wake-throttling on the multiprocessor",
		"paper (future work): limiting concurrent wake-ups should break the BSLS positive-feedback collapse without starving clients")
	clients := mpClientSweep(opt.Quick)
	msgs := opt.msgs()
	m := machine.SGIChallenge8()
	const spin = 1 // the MAX_SPIN with the earliest collapse

	curves := map[string][]float64{}
	var order []string
	for _, throttle := range []int{0, 2, 4} {
		ths, _, err := sweep(workload.Config{
			Machine: m, Alg: core.BSLS, MaxSpin: spin, Throttle: throttle,
		}, clients, msgs)
		if err != nil {
			return nil, err
		}
		name := "no-throttle"
		if throttle > 0 {
			name = fmt.Sprintf("throttle=%d", throttle)
		}
		curves[name] = ths
		order = append(order, name)
		r.recordCurve(fmt.Sprintf("ablation/throttle%d", throttle), clients, ths)
	}

	r.Tables = append(r.Tables, throughputTable(
		fmt.Sprintf("Ablation — BSLS MAX_SPIN=%d wake throttle (messages/ms)", spin),
		clients, curves, order))
	r.Plots = append(r.Plots, throughputPlot("Ablation — BSLS wake throttle", clients, curves, order))
	r.note("Parked clients stall with their reply already enqueued; admission is FIFO with pacing, so no client starves (asserted by the core test suite).")
	r.note("The throttle recovers part of the collapsed throughput but is no free lunch: engaged below saturation it simply limits concurrency — consistent with the paper leaving the policy as future work.")
	return r, nil
}
