package livebind

import (
	"sync"
	"testing"

	"ulipc/internal/core"
)

// runPool drives a live worker pool end-to-end and returns total served.
func runPool(t *testing.T, alg core.Algorithm, workers, clients, msgs int) int64 {
	t.Helper()
	maxSpin := 4
	if alg == core.BSA {
		maxSpin = 0 // the controller owns the budget; a fixed one is rejected
	}
	sys, err := NewSystem(Options{Alg: alg, Clients: clients, MaxSpin: maxSpin})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := sys.WorkerPool(workers)
	if err != nil {
		t.Fatal(err)
	}
	var swg sync.WaitGroup
	for _, w := range pool {
		swg.Add(1)
		go func(w *core.PoolWorker) {
			defer swg.Done()
			w.Serve(nil)
		}(w)
	}

	var barrier, wg sync.WaitGroup
	barrier.Add(clients)
	for i := 0; i < clients; i++ {
		cl, err := sys.PoolClient(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, cl *core.PoolClient) {
			defer wg.Done()
			if ans := cl.Send(core.Msg{Op: core.OpConnect}); ans.Op != core.OpConnect {
				t.Errorf("client %d: bad connect reply %+v", i, ans)
			}
			barrier.Done()
			barrier.Wait()
			for j := 0; j < msgs; j++ {
				ans := cl.Send(core.Msg{Op: core.OpEcho, Seq: int32(j), Val: float64(j)})
				if ans.Seq != int32(j) || ans.Val != float64(j) {
					t.Errorf("client %d: reply mismatch at %d: %+v", i, j, ans)
					return
				}
			}
			cl.Send(core.Msg{Op: core.OpDisconnect})
		}(i, cl)
	}
	wg.Wait()
	swg.Wait() // every worker must observe the shutdown broadcast
	return pool[0].C.Served()
}

func TestPoolLiveAllAlgorithms(t *testing.T) {
	for _, alg := range core.Algorithms() {
		served := runPool(t, alg, 3, 4, 200)
		if served != 800 {
			t.Errorf("%s: served %d, want 800", alg, served)
		}
	}
}

func TestPoolLiveSingleWorker(t *testing.T) {
	if served := runPool(t, core.BSW, 1, 2, 150); served != 300 {
		t.Errorf("served %d", served)
	}
}

func TestPoolLiveManyWorkersFewClients(t *testing.T) {
	// More workers than clients: surplus workers must park and shut
	// down cleanly via the broadcast.
	if served := runPool(t, core.BSW, 6, 2, 100); served != 200 {
		t.Errorf("served %d", served)
	}
}

func TestPoolValidation(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WorkerPool(0); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := sys.PoolClient(5); err == nil {
		t.Error("out-of-range pool client accepted")
	}
}

func TestPoolPortWaiterOps(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPoolPort(sys.ReceiveChannel())
	if p.ClaimWaiter() {
		t.Fatal("claim on zero waiters succeeded")
	}
	p.RegisterWaiter()
	p.RegisterWaiter()
	if !p.ClaimWaiter() {
		t.Fatal("claim failed with registered waiters")
	}
	if !p.TryUnregisterWaiter() {
		t.Fatal("unregister failed")
	}
	if p.TryUnregisterWaiter() {
		t.Fatal("unregister succeeded on zero count")
	}
}
