package workload

import (
	"testing"
	"testing/quick"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/livebind"
	"ulipc/internal/machine"
	"ulipc/internal/queue"
)

func runLive(t *testing.T, cfg LiveConfig) Result {
	t.Helper()
	if cfg.Msgs == 0 {
		cfg.Msgs = 200
	}
	if cfg.Clients == 0 {
		cfg.Clients = 1
	}
	res, err := RunLive(cfg)
	if err != nil {
		t.Fatalf("RunLive(%+v): %v", cfg, err)
	}
	return res
}

func TestLiveAllAlgorithms(t *testing.T) {
	for _, alg := range core.Algorithms() {
		for _, clients := range []int{1, 4} {
			res := runLive(t, LiveConfig{Alg: alg, Clients: clients, Msgs: 300})
			if res.Throughput <= 0 {
				t.Errorf("live %s/%dc: throughput %.2f", alg, clients, res.Throughput)
			}
		}
	}
}

func TestLiveAllQueueKinds(t *testing.T) {
	for _, kind := range queue.Kinds() {
		res := runLive(t, LiveConfig{Alg: core.BSLS, Clients: 3, Msgs: 300, QueueKind: kind})
		if res.TotalMsgs != 900 {
			t.Errorf("live %s: total %d", kind, res.TotalMsgs)
		}
	}
}

func TestLiveSpinFlavour(t *testing.T) {
	res := runLive(t, LiveConfig{Alg: core.BSLS, Clients: 2, Msgs: 200, SpinIters: 50})
	if res.Throughput <= 0 {
		t.Errorf("throughput %.2f", res.Throughput)
	}
}

func TestLiveThrottle(t *testing.T) {
	res := runLive(t, LiveConfig{Alg: core.BSLS, Clients: 5, Msgs: 200, MaxSpin: 2, Throttle: 2})
	if res.TotalMsgs != 1000 {
		t.Errorf("total %d, want 1000 (throttled run must not lose messages)", res.TotalMsgs)
	}
}

func TestLiveSmallQueueExercisesFullPath(t *testing.T) {
	// Capacity 2 with 4 clients forces queue-full; the compressed
	// sleep(1) keeps the test fast while exercising the flow-control
	// path.
	res := runLive(t, LiveConfig{
		Alg: core.BSW, Clients: 4, Msgs: 100, QueueCap: 2,
		SleepScale: 100 * time.Microsecond,
	})
	if res.TotalMsgs != 400 {
		t.Errorf("total %d, want 400", res.TotalMsgs)
	}
}

func TestLiveBSSSingleQueueCapOne(t *testing.T) {
	res := runLive(t, LiveConfig{Alg: core.BSS, Clients: 2, Msgs: 100, QueueCap: 1})
	if res.TotalMsgs != 200 {
		t.Errorf("total %d, want 200", res.TotalMsgs)
	}
}

// TestLiveGroupSharded drives the group-mode path: sharded system,
// batched sends, and the default hash picker. TotalMsgs counts replies
// actually served across all shards.
func TestLiveGroupSharded(t *testing.T) {
	for _, alg := range []core.Algorithm{core.BSW, core.BSLS} {
		for _, shards := range []int{2, 3} {
			res := runLive(t, LiveConfig{
				Alg: alg, Clients: 4, Msgs: 192, Shards: shards, Batch: 16,
				Watchdog: 30 * time.Second,
			})
			if res.TotalMsgs != 4*192 {
				t.Errorf("group %s/%ds: total %d, want %d", alg, shards, res.TotalMsgs, 4*192)
			}
			if res.Throughput <= 0 {
				t.Errorf("group %s/%ds: throughput %.2f", alg, shards, res.Throughput)
			}
		}
	}
}

// TestLiveGroupPickersAndNoSteal covers the non-default picker policies
// and the strict-ownership (NoSteal) configuration end to end.
func TestLiveGroupPickersAndNoSteal(t *testing.T) {
	cases := []struct {
		name string
		cfg  LiveConfig
	}{
		{"affinity", LiveConfig{Picker: livebind.PickAffinity{}}},
		{"leastloaded", LiveConfig{Picker: livebind.PickLeastLoaded{}}},
		{"nosteal", LiveConfig{NoSteal: true}},
	}
	for _, tc := range cases {
		cfg := tc.cfg
		cfg.Alg, cfg.Clients, cfg.Msgs, cfg.Shards, cfg.Batch = core.BSLS, 4, 128, 2, 8
		cfg.Watchdog = 30 * time.Second
		res := runLive(t, cfg)
		if res.TotalMsgs != 4*128 {
			t.Errorf("%s: total %d, want %d", tc.name, res.TotalMsgs, 4*128)
		}
	}
}

func TestLivePoolAllAlgorithms(t *testing.T) {
	for _, alg := range core.Algorithms() {
		res, err := RunLivePool(LiveConfig{Alg: alg, Clients: 3, Msgs: 150, MaxSpin: 4}, 2)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.TotalMsgs != 450 {
			t.Errorf("%s: total %d", alg, res.TotalMsgs)
		}
	}
}

func TestLivePoolValidation(t *testing.T) {
	if _, err := RunLivePool(LiveConfig{Clients: 1, Msgs: 1}, 0); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := RunLivePool(LiveConfig{Clients: 0, Msgs: 1}, 1); err == nil {
		t.Error("0 clients accepted")
	}
}

// TestQuickSimConservation drives random small sim configurations and
// checks the conservation invariants: the measured totals always match
// clients*msgs and determinism holds per configuration.
func TestQuickSimConservation(t *testing.T) {
	check := func(algSel, clientSel, msgSel, spinSel uint8, sysv bool) bool {
		algs := core.Algorithms()
		cfg := Config{
			Machine: machine.SGIIndy(),
			Alg:     algs[int(algSel)%len(algs)],
			Clients: 1 + int(clientSel)%4,
			Msgs:    20 + int(msgSel)%60,
			MaxSpin: 1 + int(spinSel)%20,
		}
		if sysv {
			cfg.Transport = TransportSysV
		}
		a, err := RunSim(cfg)
		if err != nil {
			return false
		}
		if a.TotalMsgs != int64(cfg.Clients*cfg.Msgs) {
			return false
		}
		b, err := RunSim(cfg)
		if err != nil {
			return false
		}
		return a.Duration == b.Duration && a.Throughput == b.Throughput
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
