package core

import "testing"

// fakePoolPort is a deterministic in-memory PoolPort.
type fakePoolPort struct {
	msgs     []Msg
	capacity int
	waiters  int
	sem      SemID
}

func newFakePoolPort(sem SemID, capacity int) *fakePoolPort {
	return &fakePoolPort{capacity: capacity, sem: sem}
}

func (p *fakePoolPort) TryEnqueue(m Msg) bool {
	if len(p.msgs) >= p.capacity {
		return false
	}
	p.msgs = append(p.msgs, m)
	return true
}

func (p *fakePoolPort) TryDequeue() (Msg, bool) {
	if len(p.msgs) == 0 {
		return Msg{}, false
	}
	m := p.msgs[0]
	p.msgs = p.msgs[1:]
	return m, true
}

func (p *fakePoolPort) Empty() bool { return len(p.msgs) == 0 }

func (p *fakePoolPort) RegisterWaiter() { p.waiters++ }

func (p *fakePoolPort) TryUnregisterWaiter() bool {
	if p.waiters > 0 {
		p.waiters--
		return true
	}
	return false
}

func (p *fakePoolPort) ClaimWaiter() bool {
	if p.waiters > 0 {
		p.waiters--
		return true
	}
	return false
}

func (p *fakePoolPort) Sem() SemID { return p.sem }

var _ PoolPort = (*fakePoolPort)(nil)

func TestPoolWakeClaimsBeforeV(t *testing.T) {
	q := newFakePoolPort(0, 8)
	a := newFakeActor(1)
	poolWake(q, a) // no waiters: no V
	if a.sems[0] != 0 {
		t.Fatal("V issued with no registered waiter")
	}
	q.RegisterWaiter()
	poolWake(q, a)
	if a.sems[0] != 1 || q.waiters != 0 {
		t.Fatalf("sem=%d waiters=%d, want 1/0", a.sems[0], q.waiters)
	}
}

func TestPoolClientSendStampsAndWakes(t *testing.T) {
	for _, alg := range Algorithms() {
		srv := newFakePoolPort(0, 8)
		rcv := newFakePort(1, 8)
		a := newFakeActor(2)
		cl := &PoolClient{ID: 5, Alg: alg, MaxSpin: 2, Srv: srv, Rcv: rcv, A: a}
		echo := func() {
			if m, ok := srv.TryDequeue(); ok {
				rcv.msgs = append(rcv.msgs, m)
			}
		}
		a.onBusy = echo
		a.onYield = echo
		a.onP = func(id SemID) { echo(); a.sems[id]++ }
		srv.RegisterWaiter() // one worker is asleep
		ans := cl.Send(Msg{Op: OpEcho, Seq: 3})
		if ans.Client != 5 || ans.Seq != 3 {
			t.Errorf("%s: reply %+v", alg, ans)
		}
		if alg != BSS && srv.waiters != 0 {
			t.Errorf("%s: sleeping worker not claimed", alg)
		}
		if alg == BSS && srv.waiters != 1 {
			t.Errorf("%s: BSS must not claim waiters", alg)
		}
	}
}

func TestPoolWorkerReceiveDrainsQueueFirst(t *testing.T) {
	q := newFakePoolPort(0, 8)
	a := newFakeActor(1)
	coord := &PoolCoordinator{Workers: 1}
	w := &PoolWorker{Alg: BSW, Rcv: q, Replies: nil, A: a, C: coord}
	q.TryEnqueue(Msg{Seq: 1})
	m, ok := w.Receive()
	if !ok || m.Seq != 1 {
		t.Fatalf("got %+v %v", m, ok)
	}
	if q.waiters != 0 {
		t.Fatal("hot receive must not register")
	}
}

func TestPoolWorkerReceiveRegistersThenSleeps(t *testing.T) {
	q := newFakePoolPort(0, 8)
	a := newFakeActor(1)
	coord := &PoolCoordinator{Workers: 1}
	w := &PoolWorker{Alg: BSW, Rcv: q, A: a, C: coord}
	a.onP = func(id SemID) {
		// Producer runs: enqueue, claim, V.
		q.TryEnqueue(Msg{Seq: 9})
		if !q.ClaimWaiter() {
			t.Error("producer found no registered waiter")
		}
		a.sems[id]++
	}
	m, ok := w.Receive()
	if !ok || m.Seq != 9 {
		t.Fatalf("got %+v %v", m, ok)
	}
	if a.blockedAt != 1 {
		t.Fatalf("blockedAt = %d", a.blockedAt)
	}
}

func TestPoolWorkerLateSuccessClaimedSkip(t *testing.T) {
	// The message lands between register and re-check AND the producer
	// claimed the registration: the worker must NOT drain the V (a
	// sibling may legitimately own it) and must not block.
	q := newFakePoolPort(0, 8)
	a := newFakeActor(1)
	coord := &PoolCoordinator{Workers: 2}
	w := &PoolWorker{Alg: BSW, Rcv: q, A: a, C: coord}
	registered := false
	wrapped := &registerHookPool{fakePoolPort: q, onRegister: func() {
		if !registered {
			registered = true
			q.msgs = append(q.msgs, Msg{Seq: 4})
			q.waiters = 0 // producer claimed
			a.sems[0]++   // and issued the V
		}
	}}
	w.Rcv = wrapped
	m, ok := w.Receive()
	if !ok || m.Seq != 4 {
		t.Fatalf("got %+v %v", m, ok)
	}
	if a.blockedAt != 0 {
		t.Fatal("claimed-skip path must not block")
	}
	if a.sems[0] != 1 {
		t.Fatalf("pending V = %d, want 1 (left for a sibling)", a.sems[0])
	}
}

type registerHookPool struct {
	*fakePoolPort
	onRegister func()
}

func (p *registerHookPool) RegisterWaiter() {
	p.fakePoolPort.RegisterWaiter()
	if p.onRegister != nil {
		p.onRegister()
	}
}

func TestPoolWorkerStopsOnShutdown(t *testing.T) {
	q := newFakePoolPort(0, 8)
	a := newFakeActor(1)
	coord := &PoolCoordinator{Workers: 1}
	coord.stop.Store(true)
	w := &PoolWorker{Alg: BSW, Rcv: q, A: a, C: coord}
	if _, ok := w.Receive(); ok {
		t.Fatal("Receive must fail after shutdown")
	}
}

func TestPoolServeShutdownBroadcast(t *testing.T) {
	q := newFakePoolPort(0, 8)
	reply := newFakePort(1, 8)
	a := newFakeActor(2)
	coord := &PoolCoordinator{Workers: 3}
	w := &PoolWorker{Alg: BSW, Rcv: q, Replies: []Port{reply}, A: a, C: coord}
	q.TryEnqueue(Msg{Op: OpConnect, MsgMeta: MsgMeta{Client: 0}})
	q.TryEnqueue(Msg{Op: OpEcho, MsgMeta: MsgMeta{Client: 0}})
	q.TryEnqueue(Msg{Op: OpDisconnect, MsgMeta: MsgMeta{Client: 0}})
	w.Serve(nil)
	if !coord.Stopped() {
		t.Fatal("pool not stopped after last disconnect")
	}
	if coord.Served() != 1 {
		t.Fatalf("served = %d", coord.Served())
	}
	// The broadcast issues one V per worker so parked siblings wake.
	if a.sems[0] != 3 {
		t.Fatalf("broadcast Vs = %d, want 3", a.sems[0])
	}
}

func TestPoolWorkerReplyValidation(t *testing.T) {
	q := newFakePoolPort(0, 8)
	reply := newFakePort(1, 8)
	a := newFakeActor(2)
	w := &PoolWorker{Alg: BSW, Rcv: q, Replies: []Port{reply}, A: a, C: &PoolCoordinator{Workers: 1}}
	w.Reply(-1, Msg{})
	w.Reply(7, Msg{})
	if len(reply.msgs) != 0 {
		t.Fatal("invalid reply channels must be dropped")
	}
}
