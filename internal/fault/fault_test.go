package fault

import (
	"strings"
	"testing"
	"time"
)

// fakePool records frees so tests can watch pending-ref reclamation.
type fakePool struct{ freed []uint32 }

func (f *fakePool) Free(r uint32) { f.freed = append(f.freed, r) }

func TestZeroHookDisabled(t *testing.T) {
	var h Hook
	if h.Enabled() {
		t.Fatal("zero hook reports enabled")
	}
	if h.Actor() != -1 {
		t.Fatalf("zero hook actor = %d, want -1", h.Actor())
	}
	// None of these may panic or do anything.
	h.Crashpoint(PtEnqueueLocked)
	if op := h.WakeOp(); op != WakeNone {
		t.Fatalf("zero hook wake op = %v, want none", op)
	}
	if d := h.WakeDelayDur(); d != 0 {
		t.Fatalf("zero hook delay = %v, want 0", d)
	}
	h.SetPending(&fakePool{}, 7)
	h.ClearPending()
}

func TestDeterministicPerActorStreams(t *testing.T) {
	plan := UniformPlan(42, 0, 0.2, 0.1, 0.1)
	draw := func() [2][]WakeOp {
		inj := NewInjector(plan)
		var out [2][]WakeOp
		for a := int32(0); a < 2; a++ {
			h := inj.Hook(a)
			for i := 0; i < 64; i++ {
				out[a] = append(out[a], h.WakeOp())
			}
		}
		return out
	}
	first, second := draw(), draw()
	for a := 0; a < 2; a++ {
		for i := range first[a] {
			if first[a][i] != second[a][i] {
				t.Fatalf("actor %d draw %d differs across runs: %v vs %v",
					a, i, first[a][i], second[a][i])
			}
		}
	}
	// Different actors must not mirror each other's streams.
	same := 0
	for i := range first[0] {
		if first[0][i] == first[1][i] {
			same++
		}
	}
	if same == len(first[0]) {
		t.Fatal("actor 0 and actor 1 drew identical fault streams")
	}
}

func TestCrashpointPanicsOnceAndCounts(t *testing.T) {
	plan := Plan{Seed: 1}
	plan.Crash[PtEnqueueLocked] = 1.0
	inj := NewInjector(plan)
	h := inj.Hook(3)

	crashed := func() (c Crash, ok bool) {
		defer func() { c, ok = AsCrash(recover()) }()
		h.Crashpoint(PtEnqueueLocked)
		return
	}
	c, ok := crashed()
	if !ok {
		t.Fatal("crashpoint with probability 1 did not panic")
	}
	if c.Actor != 3 || c.Point != PtEnqueueLocked {
		t.Fatalf("crash = %+v, want actor 3 at enqueue-locked", c)
	}
	if c.Error() == "" {
		t.Fatal("crash error string empty")
	}
	// A crashed actor stays dead: no second panic.
	if _, again := crashed(); again {
		t.Fatal("crashed actor crashed a second time")
	}
	got := inj.Counts()
	if got.Crashes != 1 || got.ByPoint[PtEnqueueLocked] != 1 {
		t.Fatalf("counts = %+v, want exactly one enqueue-locked crash", got)
	}
}

func TestMaxCrashesBudget(t *testing.T) {
	plan := Plan{Seed: 9, MaxCrashes: 2}
	for i := range plan.Crash {
		plan.Crash[i] = 1.0
	}
	inj := NewInjector(plan)
	crashes := 0
	for a := int32(0); a < 5; a++ {
		func() {
			defer func() {
				if _, ok := AsCrash(recover()); ok {
					crashes++
				}
			}()
			inj.Hook(a).Crashpoint(PtBody)
		}()
	}
	if crashes != 2 {
		t.Fatalf("injected %d crashes, budget was 2", crashes)
	}
	if got := inj.Counts().Crashes; got != 2 {
		t.Fatalf("counted %d crashes, want 2", got)
	}
}

func TestPendingRefReclaim(t *testing.T) {
	inj := NewInjector(Plan{Seed: 5})
	h := inj.Hook(1)
	fp := &fakePool{}

	// Cleared pending must not be reclaimed.
	h.SetPending(fp, 11)
	h.ClearPending()
	if inj.ReclaimPending(1) {
		t.Fatal("reclaimed a cleared pending ref")
	}

	// Set-but-not-cleared pending is reclaimed exactly once.
	h.SetPending(fp, 23)
	if !inj.ReclaimPending(1) {
		t.Fatal("failed to reclaim a pending ref")
	}
	if inj.ReclaimPending(1) {
		t.Fatal("reclaimed the same pending ref twice")
	}
	if len(fp.freed) != 1 || fp.freed[0] != 23 {
		t.Fatalf("freed = %v, want [23]", fp.freed)
	}

	// Unknown actors have nothing pending.
	if inj.ReclaimPending(99) {
		t.Fatal("reclaimed pending for unknown actor")
	}
}

func TestWakeOpCountsAndDelay(t *testing.T) {
	inj := NewInjector(UniformPlan(7, 0, 1.0, 0, 0)) // every V dropped
	h := inj.Hook(0)
	for i := 0; i < 10; i++ {
		if op := h.WakeOp(); op != WakeDrop {
			t.Fatalf("draw %d = %v, want drop", i, op)
		}
	}
	if got := inj.Counts().WakeDrops; got != 10 {
		t.Fatalf("drop count = %d, want 10", got)
	}
	if d := h.WakeDelayDur(); d != 200*time.Microsecond {
		t.Fatalf("default delay = %v, want 200µs", d)
	}
}

func TestPointStrings(t *testing.T) {
	for p := Point(0); p < NumPoints; p++ {
		if s := p.String(); s == "" || strings.HasPrefix(s, "point(") {
			t.Fatalf("point %d has fallback string %q", p, s)
		}
	}
	if s := Point(200).String(); !strings.HasPrefix(s, "point(") {
		t.Fatalf("unknown point string = %q", s)
	}
}
