// Package sched implements the scheduler policies the paper evaluates
// against: degrading (aging) priorities in IRIX and AIX flavours, fixed
// (non-degrading) priorities, the simplistic Linux 1.0.32 scheduler, the
// paper's modified sched_yield, and hand-off scheduling support.
package sched

import "ulipc/internal/sim"

// entry is one run-queue slot.
type entry struct {
	p   *sim.Proc
	seq uint64 // insertion order for FIFO tie-breaking
}

// runq is a small priority run queue. Queues in these workloads hold at
// most a handful of processes, so a slice scan is both simple and fast.
type runq struct {
	entries []entry
	seq     uint64
}

func (q *runq) add(p *sim.Proc) {
	q.seq++
	q.entries = append(q.entries, entry{p: p, seq: q.seq})
}

func (q *runq) remove(p *sim.Proc) bool {
	for i, e := range q.entries {
		if e.p == p {
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			return true
		}
	}
	return false
}

func (q *runq) len() int { return len(q.entries) }

// pickBest removes and returns the entry with the highest priority
// according to prio(p). Ties go to the incumbent if it is queued,
// otherwise to the earliest-inserted entry (FIFO).
func (q *runq) pickBest(incumbent *sim.Proc, prio func(*sim.Proc) float64) *sim.Proc {
	if len(q.entries) == 0 {
		return nil
	}
	best := -1
	var bestPrio float64
	var bestSeq uint64
	for i, e := range q.entries {
		pr := prio(e.p)
		switch {
		case best < 0 || pr > bestPrio:
			best, bestPrio, bestSeq = i, pr, e.seq
		case pr == bestPrio:
			if e.p == incumbent {
				best, bestSeq = i, e.seq
			} else if q.entries[best].p != incumbent && e.seq < bestSeq {
				best, bestSeq = i, e.seq
			}
		}
	}
	p := q.entries[best].p
	q.entries = append(q.entries[:best], q.entries[best+1:]...)
	return p
}

// pickFIFO removes and returns the earliest-inserted entry.
func (q *runq) pickFIFO() *sim.Proc {
	if len(q.entries) == 0 {
		return nil
	}
	p := q.entries[0].p
	q.entries = q.entries[1:]
	return p
}
