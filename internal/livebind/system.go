package livebind

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/fault"
	"ulipc/internal/metrics"
	"ulipc/internal/obs"
	"ulipc/internal/queue"
	"ulipc/internal/shm"
)

// Options configures a live IPC system (one server, n client slots).
type Options struct {
	Alg       core.Algorithm
	MaxSpin   int        // BSLS MAX_SPIN (core.DefaultMaxSpin if zero)
	Clients   int        // number of client slots (reply queues)
	QueueCap  int        // per-queue capacity; default 64
	QueueKind queue.Kind // shared receive-queue implementation; default two-lock
	SpinIters int        // >0: multiprocessor busy_wait flavour
	Throttle  int        // server wake throttle (0 = unlimited)

	// replyKind selects the queue implementation for the per-client
	// channels (reply queues, and the client->server queues in Duplex
	// mode), set via WithReplyKind. nil picks the SPSC fast path: those
	// channels have exactly one producer (the server, or the
	// per-connection duplex peer) and one consumer, so the padded
	// Lamport ring with cached indices applies and the hot path does no
	// CAS and no cross-core loads. System enforces the topology: handle
	// constructors fail (or panic, for the error-less Server) on any
	// acquisition that would attach a second producer to an SPSC
	// channel, and WorkerPool — whose workers all produce into every
	// reply queue — transparently falls back to QueueKind when the SPSC
	// default is in effect (or errors if SPSC was requested explicitly).
	// Select an MPMC kind to restore the old shared-queue behaviour.
	// QueueKind may NOT be KindSPSC: the receive queue is shared by all
	// clients.
	//
	// This was an exported pointer field (Options.ReplyKind) in v1; the
	// pointer idiom is gone — WithReplyKind is the only way to set it.
	// See DESIGN.md ("Migration: Options pointers to functional
	// options").
	replyKind *queue.Kind

	// Adaptive switches the system to the BSA protocol: every handle
	// gets an online controller (core.Tuner) that tunes its spin budget
	// and nap scale from observed feedback, replacing the hand-set
	// MaxSpin/Throttle knobs. Those knobs conflict with the controller
	// and are rejected with ErrBadTuning when combined. Prefer
	// WithAdaptive or WithTuning.
	Adaptive bool

	// AllocBatch, when > 1, gives each producer port a private cache of
	// that many free-pool refs, refilled/spilled in batched operations —
	// one Treiber-stack CAS per AllocBatch messages instead of one per
	// message (two-lock queues only; the other kinds have no shared node
	// pool). Trade-off: cached refs are invisible to other producers, so
	// flow control turns conservative — a queue can report full while up
	// to (producers-1)*AllocBatch refs sit in caches. 0 disables.
	// Worker-pool reply ports never batch (w workers x k refs would
	// strand most of a reply pool).
	AllocBatch int

	// SleepScale compresses the queue-full sleep(1); 0 keeps the paper's
	// full-second UNIX semantics.
	SleepScale time.Duration

	// BlockSlots, when positive, attaches a shared block pool for
	// variable-sized message components (Section 2.1), with that many
	// slots per size class.
	BlockSlots int

	// Duplex additionally wires a client->server queue per client so
	// the thread-per-client architecture (DuplexPair) can be used.
	Duplex bool

	Metrics *metrics.Set // optional; created if nil

	// Observer, when non-nil, attaches per-protocol phase-latency
	// histograms (and, if configured with a RecorderCap, a flight
	// recorder) to every handle the system builds. nil keeps the legacy
	// fast path: handles carry a zero obs.Hook, whose every method is a
	// single nil-check. Prefer WithObserver/WithHistograms.
	Observer *obs.Observer

	// Faults, when non-nil, threads the injector's per-actor hooks
	// through every handle the system builds: queue critical sections
	// gain crashpoints, semaphore Vs may be dropped/duplicated/delayed.
	// nil keeps the zero hook (one nil-check) on every path. Prefer
	// WithFaults.
	Faults *fault.Injector

	// Recovery, when non-nil, starts the peer-death sweeper (lifetable,
	// robust-lock reclaim, orphan drain, ErrPeerDead delivery). Prefer
	// WithRecovery.
	Recovery *RecoveryOptions

	// Shards, when > 0, builds a server group instead of a single
	// server: that many shards, each owning one SPSC request lane per
	// client (see group.go). The group topology replaces the shared
	// receive queue outright, so it composes with neither Duplex,
	// WorkerPool, Throttle, nor an explicit ReplyKind. Prefer
	// WithShards/NewSystemGroup.
	Shards int

	// Picker selects each request's destination shard (group mode
	// only); nil defaults to PickHash. Prefer WithShardPicker.
	Picker ShardPicker

	// StealBatch bounds how many messages one steal moves from a
	// sibling shard (group mode only); 0 defaults to 8 on a
	// multiprocessor runtime. On GOMAXPROCS=1 the default is no
	// stealing at all: stealing exists to put an idle processor on a
	// backlogged lane, and with a single processor there is no idle
	// one — every probe and residue re-wake is pure overhead (measured
	// ~35% of group throughput). Set StealBatch explicitly to force
	// stealing regardless. Prefer WithStealBatch.
	StealBatch int

	// StealThreshold is the minimum victim lane depth worth stealing
	// from (group mode only); 0 defaults to 4.
	StealThreshold int

	// NoSteal disables work stealing between shards (group mode only).
	// Prefer WithNoSteal. Useful when strict lane-ownership semantics
	// matter more than load balance — e.g. the shard-kill chaos suite,
	// where a dead shard must strand exactly its own clients' traffic.
	NoSteal bool

	// Admission configures overload admission control: a request-queue
	// high-water mark past which client sends fast-reject with
	// core.ErrOverload, a client retry budget bounding queue-full retry
	// rounds, and (group mode) the per-shard quarantine circuit. The
	// zero value keeps the system fully open — no depth checks, no
	// budget, no circuits — at zero cost on the send path. Prefer
	// WithAdmission.
	Admission Admission

	// CopyFallback degrades payload allocation instead of failing it:
	// when the slab arena's size classes are exhausted, Alloc is served
	// from a mutex-guarded heap overflow table (counted in
	// CopyFallbacks) rather than returning core.ErrBlocksExhausted.
	// Slower but lossless — the degraded mode of DESIGN.md §14. Requires
	// BlockSlots > 0; in-process only (heap blocks cannot cross an
	// address space). Prefer WithCopyFallback.
	CopyFallback bool
}

// Admission is the overload-doctrine configuration (DESIGN.md §14).
// Every field is opt-in: a zero field disables that mechanism.
type Admission struct {
	// HighWater, when > 0, is the request-queue depth at which client
	// *Ctx sends stop enqueueing and fail fast with core.ErrOverload.
	// On a sharded system the depth consulted is the pinned shard's
	// lane depth (sticky pickers) or the shallowest live shard's
	// (non-sticky — if even the best shard is past high water, the
	// group is saturated).
	HighWater int

	// RetryCap, when > 0, bounds queue-full retry rounds with a token
	// bucket of that capacity per client handle: each backoff nap
	// spends a token, each successful enqueue earns RetryRefill back,
	// and a dry bucket turns the retry into core.ErrOverload. Zero
	// keeps the unbounded exponential-backoff retry.
	RetryCap float64

	// RetryRefill is the budget earned back per successful send;
	// defaults to 0.1 when RetryCap > 0 (ten successes buy one retry).
	RetryRefill float64

	// QuarantineAfter, when > 0 (group mode), opens a shard's circuit
	// after that many consecutive picks observed its lane at or above
	// HighWater: ShardView.Alive reports the shard down, so non-sticky
	// pickers route around it while it drains. Requires HighWater > 0.
	QuarantineAfter int

	// ReprobeAfter is how many picks a quarantined shard sits out
	// before one half-open trial pick re-probes it (close the circuit
	// if the lane drained, re-open otherwise). Defaults to 64 when
	// QuarantineAfter > 0.
	ReprobeAfter int
}

// Option is a functional setting applied by NewSystem on top of the
// Options struct — the v2 idiom for the fields whose zero value is
// meaningful (so "unset" and "zero" need distinguishing, which the
// struct forces through pointers).
type Option func(*Options)

// WithReplyKind selects the per-client channel queue implementation
// (the sole way to override the SPSC default since the v1
// Options.ReplyKind pointer field was removed).
func WithReplyKind(k queue.Kind) Option {
	return func(o *Options) { o.replyKind = &k }
}

// Tuning consolidates the protocol tuning knobs that were previously
// spread across three scalar options. The zero value means "all
// defaults"; set Adaptive to hand every knob to the BSA controller
// instead of choosing numbers:
//
//	sys, err := NewSystem(Options{Clients: 4},
//		WithTuning(Tuning{MaxSpin: 64, SleepScale: time.Millisecond}))
//	sys, err := NewSystem(Options{Clients: 4}, WithAdaptive())
//
// Adaptive conflicts with a hand-set MaxSpin or Throttle (the
// controller owns both decisions) and with an explicit non-BSA
// protocol; NewSystem rejects such combinations with ErrBadTuning.
type Tuning struct {
	// MaxSpin is the BSLS fixed spin budget (core.DefaultMaxSpin if
	// zero). Mutually exclusive with Adaptive.
	MaxSpin int

	// SleepScale compresses the queue-full sleep(1); 0 keeps the
	// paper's full-second UNIX semantics.
	SleepScale time.Duration

	// Throttle bounds consecutive server wake-ups (0 = unlimited).
	// Mutually exclusive with Adaptive — the controller's
	// oversubscription backoff replaces it.
	Throttle int

	// Adaptive selects the BSA protocol: per-handle controllers tune
	// the spin budget and nap scale online.
	Adaptive bool
}

// WithTuning applies a consolidated tuning configuration. It overwrites
// MaxSpin, SleepScale and Throttle (so the struct is the single source
// of truth for the three knobs) and turns Adaptive on if the struct
// asks for it.
func WithTuning(t Tuning) Option {
	return func(o *Options) {
		o.MaxSpin = t.MaxSpin
		o.SleepScale = t.SleepScale
		o.Throttle = t.Throttle
		if t.Adaptive {
			o.Adaptive = true
		}
	}
}

// WithAdaptive selects the BSA protocol: instead of hand-tuning
// MaxSpin/Throttle, every handle gets an online controller that learns
// its spin budget from observed arrival lag and backs off under
// oversubscription. Equivalent to WithTuning(Tuning{Adaptive: true})
// or setting Options.Alg to core.BSA.
func WithAdaptive() Option {
	return func(o *Options) { o.Adaptive = true }
}

// WithAllocBatch sets the producer-side allocation batch (see
// Options.AllocBatch).
func WithAllocBatch(n int) Option {
	return func(o *Options) { o.AllocBatch = n }
}

// WithMaxSpin sets the BSLS MAX_SPIN budget (see Options.MaxSpin).
//
// Deprecated: use WithTuning(Tuning{MaxSpin: n}) — or WithAdaptive to
// stop choosing the number at all.
func WithMaxSpin(n int) Option {
	return func(o *Options) { o.MaxSpin = n }
}

// WithThrottle sets the server wake throttle (see Options.Throttle).
//
// Deprecated: use WithTuning(Tuning{Throttle: n}).
func WithThrottle(n int) Option {
	return func(o *Options) { o.Throttle = n }
}

// WithSleepScale compresses the queue-full sleep(1) (see
// Options.SleepScale).
//
// Deprecated: use WithTuning(Tuning{SleepScale: d}).
func WithSleepScale(d time.Duration) Option {
	return func(o *Options) { o.SleepScale = d }
}

// WithDuplex wires the client->server queues for the thread-per-client
// architecture (see Options.Duplex).
func WithDuplex() Option {
	return func(o *Options) { o.Duplex = true }
}

// WithObserver attaches an existing observer (see Options.Observer) —
// use this to share one observer, or one configured with a flight
// recorder, across systems.
func WithObserver(ob *obs.Observer) Option {
	return func(o *Options) { o.Observer = ob }
}

// WithHistograms attaches a fresh observer with per-protocol phase
// histograms and no flight recorder — the cheapest always-on
// configuration.
func WithHistograms() Option {
	return func(o *Options) { o.Observer = obs.New(obs.Config{}) }
}

// WithFaults attaches a fault injector (see Options.Faults). Usually
// paired with WithRecovery so the injected faults are survivable.
func WithFaults(inj *fault.Injector) Option {
	return func(o *Options) { o.Faults = inj }
}

// WithRecovery starts the peer-death sweeper (see Options.Recovery and
// RecoveryOptions).
func WithRecovery(opts RecoveryOptions) Option {
	return func(o *Options) { o.Recovery = &opts }
}

// WithShards builds a server group of n shards (see Options.Shards).
func WithShards(n int) Option {
	return func(o *Options) { o.Shards = n }
}

// WithShardPicker sets the client-side shard-selection policy (see
// Options.Picker).
func WithShardPicker(p ShardPicker) Option {
	return func(o *Options) { o.Picker = p }
}

// WithStealBatch bounds the per-steal message count (see
// Options.StealBatch).
func WithStealBatch(n int) Option {
	return func(o *Options) { o.StealBatch = n }
}

// WithNoSteal disables inter-shard work stealing (see Options.NoSteal).
func WithNoSteal() Option {
	return func(o *Options) { o.NoSteal = true }
}

// WithAdmission configures overload admission control (see Admission).
func WithAdmission(a Admission) Option {
	return func(o *Options) { o.Admission = a }
}

// WithCopyFallback degrades exhausted payload allocations to a heap
// overflow table instead of failing them (see Options.CopyFallback).
func WithCopyFallback() Option {
	return func(o *Options) { o.CopyFallback = true }
}

// NewSystemGroup builds a sharded system: shards server shards, each
// owning one SPSC request lane per client, with client-side shard
// selection and bounded work stealing. Equivalent to NewSystem with
// WithShards(shards) appended. shards must be at least 1 — a zero
// count is rejected rather than silently degrading to an unsharded
// system (callers wanting that should use NewSystem directly).
func NewSystemGroup(shards int, opts Options, extra ...Option) (*System, error) {
	if shards < 1 {
		return nil, fmt.Errorf("%w: NewSystemGroup needs at least 1 shard, got %d", ErrBadOption, shards)
	}
	extra = append(append([]Option(nil), extra...), WithShards(shards))
	return NewSystem(opts, extra...)
}

// validate rejects nonsensical configurations with typed errors and
// fills defaults.
func (o *Options) validate() error {
	if o.Clients < 1 {
		return fmt.Errorf("%w: need at least 1 client, got %d", ErrBadClients, o.Clients)
	}
	if o.QueueCap < 0 {
		return fmt.Errorf("%w: negative QueueCap %d", ErrBadOption, o.QueueCap)
	}
	if o.MaxSpin < 0 {
		return fmt.Errorf("%w: negative MaxSpin %d", ErrBadOption, o.MaxSpin)
	}
	if o.AllocBatch < 0 {
		return fmt.Errorf("%w: negative AllocBatch %d", ErrBadOption, o.AllocBatch)
	}
	if o.Throttle < 0 {
		return fmt.Errorf("%w: negative Throttle %d", ErrBadOption, o.Throttle)
	}
	if o.SpinIters < 0 {
		return fmt.Errorf("%w: negative SpinIters %d", ErrBadOption, o.SpinIters)
	}
	if o.BlockSlots < 0 {
		return fmt.Errorf("%w: negative BlockSlots %d", ErrBadOption, o.BlockSlots)
	}
	if !core.ValidAlgorithm(o.Alg) {
		return fmt.Errorf("%w: unknown algorithm %d", ErrBadOption, o.Alg)
	}
	// Adaptive tuning and BSA imply each other. The zero Alg (BSS) is
	// treated as "unset" when Adaptive is requested — an explicit
	// different protocol plus Adaptive is contradictory, as are the
	// hand-tuned knobs the controller replaces.
	if o.Alg == core.BSA {
		o.Adaptive = true
	}
	if o.Adaptive {
		if o.Alg != core.BSA && o.Alg != core.BSS {
			return fmt.Errorf("%w: Adaptive selects BSA, but Alg is %v", ErrBadTuning, o.Alg)
		}
		o.Alg = core.BSA
		if o.MaxSpin > 0 {
			return fmt.Errorf("%w: Adaptive and a fixed MaxSpin (%d) are mutually exclusive — the controller owns the spin budget", ErrBadTuning, o.MaxSpin)
		}
		if o.Throttle > 0 {
			return fmt.Errorf("%w: Adaptive and a wake Throttle (%d) are mutually exclusive — the controller's oversubscription backoff replaces it", ErrBadTuning, o.Throttle)
		}
	}
	if o.QueueKind == queue.KindSPSC {
		return fmt.Errorf("%w: QueueKind cannot be KindSPSC: the shared receive queue has one producer per client; use WithReplyKind for the per-client channels", ErrSPSCTopology)
	}
	if o.Shards < 0 {
		return fmt.Errorf("%w: negative Shards %d", ErrBadOption, o.Shards)
	}
	if o.StealBatch < 0 {
		return fmt.Errorf("%w: negative StealBatch %d", ErrBadOption, o.StealBatch)
	}
	if o.StealThreshold < 0 {
		return fmt.Errorf("%w: negative StealThreshold %d", ErrBadOption, o.StealThreshold)
	}
	if o.Shards > 0 {
		if o.Duplex {
			return fmt.Errorf("%w: Shards and Duplex are mutually exclusive (a group has no per-connection handler threads)", ErrBadOption)
		}
		if o.Throttle > 0 {
			return fmt.Errorf("%w: Throttle applies to the single-server wake path, not a server group", ErrBadOption)
		}
		if o.replyKind != nil && *o.replyKind != queue.KindSPSC {
			return fmt.Errorf("%w: a server group's reply lanes are structurally SPSC; ReplyKind cannot override them", ErrSPSCTopology)
		}
		if o.Picker == nil {
			o.Picker = PickHash{}
		}
		if o.StealBatch == 0 && runtime.GOMAXPROCS(0) > 1 {
			o.StealBatch = 8
		}
		if o.StealBatch == 0 {
			o.NoSteal = true
		}
		if o.StealThreshold == 0 {
			o.StealThreshold = 4
		}
	}
	if o.Admission.HighWater < 0 {
		return fmt.Errorf("%w: negative Admission.HighWater %d", ErrBadOption, o.Admission.HighWater)
	}
	if o.Admission.RetryCap < 0 {
		return fmt.Errorf("%w: negative Admission.RetryCap %g", ErrBadOption, o.Admission.RetryCap)
	}
	if o.Admission.RetryRefill < 0 {
		return fmt.Errorf("%w: negative Admission.RetryRefill %g", ErrBadOption, o.Admission.RetryRefill)
	}
	if o.Admission.QuarantineAfter < 0 {
		return fmt.Errorf("%w: negative Admission.QuarantineAfter %d", ErrBadOption, o.Admission.QuarantineAfter)
	}
	if o.Admission.ReprobeAfter < 0 {
		return fmt.Errorf("%w: negative Admission.ReprobeAfter %d", ErrBadOption, o.Admission.ReprobeAfter)
	}
	if o.Admission.QuarantineAfter > 0 && o.Admission.HighWater <= 0 {
		return fmt.Errorf("%w: Admission.QuarantineAfter needs a HighWater mark to observe", ErrBadOption)
	}
	if o.Admission.RetryCap > 0 && o.Admission.RetryRefill == 0 {
		o.Admission.RetryRefill = 0.1
	}
	if o.Admission.QuarantineAfter > 0 && o.Admission.ReprobeAfter == 0 {
		o.Admission.ReprobeAfter = 64
	}
	if o.CopyFallback && o.BlockSlots <= 0 {
		return fmt.Errorf("%w: CopyFallback degrades the payload arena, which needs BlockSlots > 0", ErrBadOption)
	}
	if o.QueueCap == 0 {
		o.QueueCap = 64
	}
	return nil
}

// System wires a server and its clients over live channels. It is the
// top-level entry point of the library: create a System, run Server()
// in its own goroutine, and issue requests through the Client handles.
type System struct {
	opts    Options
	recv    *Channel // shared receive channel; nil in group mode
	grp     *group   // sharded topology; nil unless Options.Shards > 0
	replies []*Channel
	c2s     []*Channel // per-client request channels (Duplex only)
	sems    []*Semaphore
	blocks  *shm.BlockPool
	over    *heapOverflow // CopyFallback overflow table; nil unless enabled
	ms      *metrics.Set
	obs     *obs.Observer // nil unless Options.Observer was set

	connMu sync.Mutex
	conns  connPool

	// Fault injection and recovery (nil when not configured).
	inj      *fault.Injector
	rec      *recovery
	actorSeq atomic.Int32 // actor id allocator

	// BSA controllers, one per handle, registered as handles are built
	// so the exporters can read every live budget gauge.
	tunMu  sync.Mutex
	tuners []TunerSample

	// Shutdown bookkeeping: batched producer ports (whose caches must
	// spill before teardown) and worker-pool coordinators (whose stop
	// flag must rise before the pool semaphore closes). The once/err
	// pair is the shutdown latch: the first Shutdown call runs the five
	// phases inside the Once, so concurrent and later calls block until
	// that run finishes and then return its stored result.
	downMu   sync.Mutex
	ports    []*Port
	bcaches  []*shm.BlockCache // per-handle payload caches (spill on teardown)
	pools    []*core.PoolCoordinator
	downOnce sync.Once
	downErr  error

	// SPSC topology bookkeeping: which producer endpoints have been
	// issued. Only consulted while the per-client channels are SPSC.
	topoMu       sync.Mutex
	replySPSC    bool   // per-client channels are SPSC rings
	replyAuto    bool   // SPSC was the default, not an explicit request
	serverTaken  bool   // Server() issued (produces into every reply queue)
	duplexTaken  []bool // DuplexPair(i) issued
	replyHandles bool   // any handle on the per-client channels issued
}

// NewSystem builds the shared state for one server and opts.Clients
// clients. Functional options (WithReplyKind, WithAllocBatch, ...) are
// applied on top of the struct before validation; configuration errors
// wrap the typed sentinels (ErrBadClients, ErrBadOption,
// ErrSPSCTopology).
func NewSystem(opts Options, extra ...Option) (*System, error) {
	for _, apply := range extra {
		apply(&opts)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewSet()
	}
	s := &System{opts: opts, ms: opts.Metrics, obs: opts.Observer, duplexTaken: make([]bool, opts.Clients)}

	if opts.Shards > 0 {
		// Server group: a lane mesh replaces the shared receive queue
		// and the scalar reply channels (see group.go).
		if err := s.buildGroup(); err != nil {
			return nil, err
		}
	} else {
		replyKind := queue.KindSPSC
		s.replySPSC, s.replyAuto = true, true
		if opts.replyKind != nil {
			replyKind = *opts.replyKind
			s.replySPSC = replyKind == queue.KindSPSC
			s.replyAuto = false
		}
		newReply := func() (*Channel, error) {
			if replyKind == queue.KindSPSC {
				return newSPSCChannel(opts.QueueCap)
			}
			return NewChannel(replyKind, opts.QueueCap)
		}

		var err error
		if s.recv, err = NewChannel(opts.QueueKind, opts.QueueCap); err != nil {
			return nil, err
		}
		s.addSem(s.recv)
		for i := 0; i < opts.Clients; i++ {
			ch, err := newReply()
			if err != nil {
				return nil, err
			}
			s.addSem(ch)
			s.replies = append(s.replies, ch)
		}
		if opts.Duplex {
			for i := 0; i < opts.Clients; i++ {
				ch, err := newReply()
				if err != nil {
					return nil, err
				}
				s.addSem(ch)
				s.c2s = append(s.c2s, ch)
			}
		}
	}
	if opts.BlockSlots > 0 {
		pool, err := shm.NewDefaultBlockPool(opts.BlockSlots)
		if err != nil {
			return nil, err
		}
		s.blocks = pool
		if opts.CopyFallback {
			s.over = newHeapOverflow(pool.MaxBlock())
		}
	}
	s.inj = opts.Faults
	if opts.Recovery != nil {
		s.rec = newRecovery(s, *opts.Recovery)
		go s.rec.run()
	}
	return s, nil
}

// Blocks returns the shared block pool for variable-sized message
// components, or nil if Options.BlockSlots was zero.
func (s *System) Blocks() *shm.BlockPool { return s.blocks }

// blockSource adapts the shared slab arena to one handle's
// core.BlockStore, folding allocation-batching and backpressure counts
// into the handle's metrics. With AllocBatch > 1 allocations go through
// a private per-handle BlockCache (one shared-head CAS per batch); the
// cache's parked blocks are spilled by Shutdown and by the recovery
// sweeper when the handle's actor dies.
type blockSource struct {
	pool  *shm.BlockPool
	cache *shm.BlockCache // nil: uncached, straight to the pool
	over  *heapOverflow   // nil: exhaustion fails instead of degrading
	m     *metrics.Proc
}

func (b *blockSource) Alloc(n int) (uint32, []byte, bool) {
	if b.cache == nil {
		ref, buf, ok := b.pool.Alloc(n)
		if !ok {
			return b.allocFallback(n)
		}
		return ref, buf, ok
	}
	ref, buf, ok, refilled := b.cache.Alloc(n)
	if b.m != nil && refilled {
		b.m.BlockRefills.Add(1)
	}
	if !ok {
		return b.allocFallback(n)
	}
	return ref, buf, ok
}

// allocFallback is the degraded allocation path: serve the request from
// the heap overflow table (CopyFallbacks) when the system opted in,
// otherwise report the failure (BlockFails) to the caller's flow
// control exactly as before.
func (b *blockSource) allocFallback(n int) (uint32, []byte, bool) {
	if b.over != nil {
		if ref, buf, ok := b.over.alloc(n); ok {
			if b.m != nil {
				b.m.CopyFallbacks.Add(1)
			}
			return ref, buf, true
		}
	}
	if b.m != nil {
		b.m.BlockFails.Add(1)
	}
	return shm.NilBlock, nil, false
}

func (b *blockSource) Free(ref uint32) error {
	if isOverflowRef(ref) {
		return b.over.free(ref)
	}
	if b.cache == nil {
		return b.pool.Free(ref)
	}
	spilled, err := b.cache.Free(ref)
	if spilled && b.m != nil {
		b.m.BlockSpills.Add(1)
	}
	return err
}

func (b *blockSource) Get(ref uint32) ([]byte, error) {
	if isOverflowRef(ref) {
		return b.over.get(ref)
	}
	return b.pool.Get(ref)
}

func (b *blockSource) Lease(ref uint32, owner uint32) error {
	if isOverflowRef(ref) {
		return b.over.lease(ref, owner)
	}
	return b.pool.Lease(ref, owner)
}

func (b *blockSource) Claim(ref uint32, owner uint32) bool {
	if isOverflowRef(ref) {
		return b.over.claim(ref, owner)
	}
	return b.pool.Claim(ref, owner)
}

func (b *blockSource) MaxBlock() int { return b.pool.MaxBlock() }

// blockStore builds the payload source for a handle owned by actor a,
// or returns nil when the system has no arena. The handle's lease owner
// is the actor id, so the sweeper can attribute a dead actor's leases.
func (s *System) blockStore(a *Actor) core.BlockStore {
	if s.blocks == nil {
		return nil
	}
	bs := &blockSource{pool: s.blocks, over: s.over, m: a.M}
	if s.opts.AllocBatch > 1 {
		bs.cache = s.blocks.NewBlockCache(s.opts.AllocBatch)
		s.downMu.Lock()
		s.bcaches = append(s.bcaches, bs.cache)
		s.downMu.Unlock()
		if s.rec != nil {
			s.rec.registerBlockCache(a.ID, bs.cache)
		}
	}
	return bs
}

// producerPort builds an enqueue endpoint for a channel owned by the
// given actor, attaching a private allocation cache when
// Options.AllocBatch asks for one and the channel's queue supports it.
// Batched ports are tracked so Shutdown can spill their caches back to
// the shared pool. The actor's fault identity (lock ownership,
// crashpoints) is bound to the port when injection is on.
func (s *System) producerPort(c *Channel, a *Actor) *Port {
	if s.opts.AllocBatch > 1 {
		p := newBatchedPort(c, s.opts.AllocBatch, a.M)
		if p.cache != nil {
			s.downMu.Lock()
			s.ports = append(s.ports, p)
			s.downMu.Unlock()
		}
		return p.bindActor(a)
	}
	return NewPort(c).bindActor(a)
}

// Shutdown gracefully tears the system down:
//
//  1. the request-bearing channels (receive queue, duplex c2s queues)
//     start REFUSING new messages — producers observe the state and
//     fail fast with core.ErrShutdown, while servers keep consuming;
//  2. Shutdown waits for the in-flight requests to drain (bounded by
//     ctx: on expiry it proceeds to teardown and returns ctx.Err());
//  3. worker pools are stopped;
//  4. every channel is closed: remaining producers and consumers are
//     unblocked — parked waiters are released by the semaphore close —
//     and the *Ctx paths surface core.ErrShutdown (legacy paths return
//     the OpShutdown marker message);
//  5. batched producer caches are spilled back to the shared free pool
//     so no refs leak from the pool's flow control — and, when a
//     recovery sweeper is attached, the sweeper is halted after one
//     final synchronous sweep.
//
// Shutdown is idempotent and concurrency-safe: the first call runs the
// phases; concurrent and later calls wait for that run to finish and
// return the same result (so every caller observes a fully torn-down
// system, and a drain-deadline error is not swallowed by a racing
// second call).
func (s *System) Shutdown(ctx context.Context) error {
	s.downOnce.Do(func() { s.downErr = s.shutdownPhases(ctx) })
	return s.downErr
}

// shutdownPhases is the body of the first Shutdown call; see Shutdown
// for the phase contract.
func (s *System) shutdownPhases(ctx context.Context) error {
	// Phase 1: refuse new requests; replies stay open so in-flight
	// requests still get answered.
	s.notePhase(1)
	for _, ch := range s.requestChannels() {
		ch.Refuse()
	}

	// Phase 2: drain-wait.
	s.notePhase(2)
	var derr error
	for !s.requestsDrained() {
		if err := ctx.Err(); err != nil {
			derr = err
			break
		}
		time.Sleep(50 * time.Microsecond)
	}

	// Phase 3: stop worker pools before their semaphore closes, so a
	// worker woken by the close observes the stop flag, not a spurious
	// wake.
	s.notePhase(3)
	s.downMu.Lock()
	pools := append([]*core.PoolCoordinator(nil), s.pools...)
	ports := append([]*Port(nil), s.ports...)
	bcaches := append([]*shm.BlockCache(nil), s.bcaches...)
	s.downMu.Unlock()
	for _, pc := range pools {
		pc.Stop()
	}

	// Phase 4: close every channel, releasing all parked waiters. If the
	// drain deadline expired, discard the undelivered requests first so
	// servers exit on their next dequeue instead of processing stale
	// work against closed reply channels.
	s.notePhase(4)
	reqs := s.requestChannels()
	if derr != nil {
		for _, ch := range reqs {
			queue.Drain(ch.q)
		}
	}
	for _, ch := range reqs {
		ch.CloseDown()
	}
	for _, ch := range s.replies {
		ch.CloseDown()
	}

	// Phase 5: spill batched producer caches, then retire the recovery
	// sweeper: one final synchronous sweep reclaims anything a crashed
	// actor still held before the background goroutine exits.
	s.notePhase(5)
	for _, p := range ports {
		p.Close()
	}
	for _, c := range bcaches {
		c.Drain()
	}
	if s.rec != nil {
		s.rec.halt()
		s.rec.sweep()
	}
	return derr
}

// notePhase records a shutdown-phase transition on the flight recorder
// (arg: phase 1..5, actor -1 = the system itself). No-op without a
// recorder.
func (s *System) notePhase(phase int64) {
	s.obs.Recorder().Note(obs.EvShutdown, -1, phase)
}

// requestChannels returns every request-bearing channel: the shard
// channels in group mode, otherwise the shared receive queue plus any
// duplex c2s queues.
func (s *System) requestChannels() []*Channel {
	if s.grp != nil {
		return s.grp.recvs
	}
	return append([]*Channel{s.recv}, s.c2s...)
}

// requestsDrained reports whether every request-bearing queue is empty.
func (s *System) requestsDrained() bool {
	for _, ch := range s.requestChannels() {
		if !ch.q.Empty() {
			return false
		}
	}
	return true
}

// DuplexPair returns the two endpoints of client i's full-duplex virtual
// connection — the thread-per-client architecture of Section 2.1. The
// handler is meant to run on its own goroutine (the "server thread").
// Requires Options.Duplex.
//
// With SPSC per-client channels (the default), each pair may be taken
// once, and not after Server() — either would attach a second producer
// to the reply ring. Violations wrap ErrSPSCTopology.
func (s *System) DuplexPair(i int) (*core.DuplexClient, *core.DuplexHandler, error) {
	if !s.opts.Duplex {
		return nil, nil, fmt.Errorf("livebind: system built without Options.Duplex")
	}
	if i < 0 || i >= len(s.c2s) {
		return nil, nil, fmt.Errorf("livebind: client index %d out of range [0,%d)", i, len(s.c2s))
	}
	s.topoMu.Lock()
	if s.replySPSC {
		if s.serverTaken {
			s.topoMu.Unlock()
			return nil, nil, fmt.Errorf("%w: reply channel %d already has a producer (Server); set WithReplyKind to an MPMC kind to mix modes", ErrSPSCTopology, i)
		}
		if s.duplexTaken[i] {
			s.topoMu.Unlock()
			return nil, nil, fmt.Errorf("%w: duplex pair %d already taken; set WithReplyKind to an MPMC kind to share it", ErrSPSCTopology, i)
		}
	}
	s.duplexTaken[i] = true
	s.replyHandles = true
	s.topoMu.Unlock()

	ca := s.newActor(fmt.Sprintf("client%d", i))
	csnd := s.producerPort(s.c2s[i], ca)
	cl := &core.DuplexClient{
		Alg:     s.opts.Alg,
		MaxSpin: s.opts.MaxSpin,
		Tuner:   s.newTuner(fmt.Sprintf("client%d", i), ca),
		Snd:     csnd,
		Rcv:     NewPort(s.replies[i]).bindActor(ca),
		A:       ca,
		M:       ca.M,
		Obs:     ca.Obs,
	}
	s.registerActor(ca, []*Channel{s.replies[i]}, []*Channel{s.c2s[i]}, csnd)
	ha := s.newActor(fmt.Sprintf("server%d", i))
	hsnd := s.producerPort(s.replies[i], ha)
	h := &core.DuplexHandler{
		Alg:     s.opts.Alg,
		MaxSpin: s.opts.MaxSpin,
		Tuner:   s.newTuner(fmt.Sprintf("server%d", i), ha),
		Rcv:     NewPort(s.c2s[i]).bindActor(ha),
		Snd:     hsnd,
		A:       ha,
		M:       ha.M,
		Obs:     ha.Obs,
	}
	s.registerActor(ha, []*Channel{s.c2s[i]}, []*Channel{s.replies[i]}, hsnd)
	return cl, h, nil
}

func (s *System) addSem(c *Channel) {
	if s.opts.Alg == core.BSA {
		// BSA channels park on the waiting-array semaphore: per-waiter
		// hand-off slots, O(1) V and cancellation, no cond convoy. The
		// swap happens before any endpoint exists, so no waiter is lost.
		c.sem = NewWaitArraySemaphore(0)
	}
	c.id = core.SemID(len(s.sems))
	s.sems = append(s.sems, c.sem)
}

// Metrics returns the system's metrics set.
func (s *System) Metrics() *metrics.Set { return s.ms }

// ReceiveChannel exposes the server receive channel (diagnostics).
func (s *System) ReceiveChannel() *Channel { return s.recv }

// ReplyChannel exposes a client's reply channel (diagnostics).
func (s *System) ReplyChannel(i int) *Channel { return s.replies[i] }

func (s *System) newActor(name string) *Actor {
	a := &Actor{
		ID:         s.actorSeq.Add(1) - 1,
		sems:       s.sems,
		SpinIters:  s.opts.SpinIters,
		SleepScale: s.opts.SleepScale,
		M:          s.ms.NewProc(name),
	}
	if s.obs != nil {
		a.Obs = s.obs.Hook(int(s.opts.Alg), s.obs.RegisterActor(name))
	}
	if s.inj != nil {
		a.FH = s.inj.Hook(a.ID)
	}
	return a
}

// newTuner builds and registers the BSA controller for one handle
// (attaching it to the handle's actor so queue-full naps stretch with
// the oversubscription backoff), or returns nil for the fixed-budget
// protocols — handles treat a nil Tuner as "build one lazily", so the
// nil is harmless even if Alg were BSA.
func (s *System) newTuner(name string, a *Actor) *core.Tuner {
	if s.opts.Alg != core.BSA {
		return nil
	}
	t := core.NewTuner(core.TunerConfig{})
	a.Tun = t
	s.tunMu.Lock()
	s.tuners = append(s.tuners, TunerSample{Name: name, T: t})
	s.tunMu.Unlock()
	return t
}

// TunerSample pairs one handle's name with its live BSA controller.
type TunerSample struct {
	Name string
	T    *core.Tuner
}

// Tuners returns the live BSA controllers in handle-creation order
// (empty unless the system runs BSA). The exporters read budgets and
// decision counters through these.
func (s *System) Tuners() []TunerSample {
	s.tunMu.Lock()
	defer s.tunMu.Unlock()
	return append([]TunerSample(nil), s.tuners...)
}

// TunerSnapshots reads every live controller's gauge and counters.
func (s *System) TunerSnapshots() map[string]core.TunerSnapshot {
	ts := s.Tuners()
	if len(ts) == 0 {
		return nil
	}
	out := make(map[string]core.TunerSnapshot, len(ts))
	for _, t := range ts {
		out[t.Name] = t.T.Snapshot()
	}
	return out
}

// registerActor files an actor's channel topology with the recovery
// sweeper; a no-op when the system was built without WithRecovery.
func (s *System) registerActor(a *Actor, consumes, produces []*Channel, ports ...*Port) {
	if s.rec != nil {
		s.rec.register(a, consumes, produces, ports...)
	}
}

// WorkerPool builds a pool of n server workers sharing the receive
// queue (the "multiple server threads" of Section 2.1, using the
// model-checked counted-waiters wake discipline) plus the matching
// client constructor. Run each worker's Serve on its own goroutine and
// issue requests through PoolClient handles.
func (s *System) WorkerPool(n int) ([]*core.PoolWorker, error) {
	if s.grp != nil {
		return nil, fmt.Errorf("%w: WorkerPool unavailable on a sharded system (shards are the parallel servers; use ShardServer)", ErrBadOption)
	}
	if n < 1 {
		return nil, fmt.Errorf("livebind: worker pool needs >= 1 worker, got %d", n)
	}
	// Every worker produces into every reply queue, so SPSC reply rings
	// are off the table. When SPSC was merely the default, rebuild the
	// reply queues with the system's MPMC kind before any endpoint
	// exists; when the caller explicitly asked for SPSC, refuse.
	s.topoMu.Lock()
	if s.replySPSC {
		if !s.replyAuto {
			s.topoMu.Unlock()
			return nil, fmt.Errorf("%w: worker pool needs multi-producer reply queues, but ReplyKind is KindSPSC", ErrSPSCTopology)
		}
		if s.replyHandles {
			s.topoMu.Unlock()
			return nil, fmt.Errorf("%w: worker pool must be built before any client/server/duplex handle (the SPSC reply queues are rebuilt as %s)", ErrSPSCTopology, s.opts.QueueKind)
		}
		for _, ch := range s.replies {
			q, err := queue.New(s.opts.QueueKind, s.opts.QueueCap)
			if err != nil {
				s.topoMu.Unlock()
				return nil, err
			}
			ch.q, ch.kind = q, s.opts.QueueKind
		}
		s.replySPSC = false
	}
	s.replyHandles = true
	s.topoMu.Unlock()

	coord := &core.PoolCoordinator{Workers: n}
	s.downMu.Lock()
	s.pools = append(s.pools, coord)
	s.downMu.Unlock()
	workers := make([]*core.PoolWorker, n)
	for w := 0; w < n; w++ {
		a := s.newActor(fmt.Sprintf("server%d", w))
		replies := make([]core.Port, len(s.replies))
		replyPorts := make([]*Port, len(s.replies))
		for i, ch := range s.replies {
			replyPorts[i] = NewPort(ch).bindActor(a)
			replies[i] = replyPorts[i]
		}
		s.registerActor(a, []*Channel{s.recv}, s.replies, replyPorts...)
		workers[w] = &core.PoolWorker{
			Alg:     s.opts.Alg,
			MaxSpin: s.opts.MaxSpin,
			Tuner:   s.newTuner(fmt.Sprintf("server%d", w), a),
			Rcv:     NewPoolPort(s.recv),
			Replies: replies,
			A:       a,
			C:       coord,
			M:       a.M,
			Obs:     a.Obs,
		}
	}
	return workers, nil
}

// PoolClient builds the client handle for slot i against a worker pool
// built with WorkerPool (which must be built first: it converts the
// reply queues from the SPSC default to a multi-producer kind).
func (s *System) PoolClient(i int) (*core.PoolClient, error) {
	if s.grp != nil {
		return nil, fmt.Errorf("%w: PoolClient unavailable on a sharded system; use Client", ErrBadOption)
	}
	if i < 0 || i >= len(s.replies) {
		return nil, fmt.Errorf("livebind: client index %d out of range [0,%d)", i, len(s.replies))
	}
	s.topoMu.Lock()
	if s.replySPSC {
		s.topoMu.Unlock()
		return nil, fmt.Errorf("%w: build the WorkerPool before its PoolClients (reply queue %d is still an SPSC ring)", ErrSPSCTopology, i)
	}
	s.replyHandles = true
	s.topoMu.Unlock()
	a := s.newActor(fmt.Sprintf("client%d", i))
	s.registerActor(a, []*Channel{s.replies[i]}, []*Channel{s.recv})
	return &core.PoolClient{
		ID:      int32(i),
		Alg:     s.opts.Alg,
		MaxSpin: s.opts.MaxSpin,
		Tuner:   s.newTuner(fmt.Sprintf("client%d", i), a),
		Srv:     NewPoolPort(s.recv),
		Rcv:     NewPort(s.replies[i]).bindActor(a),
		A:       a,
		M:       a.M,
		Obs:     a.Obs,
	}, nil
}

// Server builds the server-side handle. Run its Serve loop (or drive
// Receive/Reply directly) on a dedicated goroutine.
//
// With SPSC reply channels (the default) the server handle is the
// single producer of every reply ring, so it may be built only once and
// not combined with DuplexPair; violations panic with an error wrapping
// ErrSPSCTopology (this constructor predates the SPSC default and
// returns no error). Set WithReplyKind to an MPMC kind to lift the
// restriction.
func (s *System) Server() *core.Server {
	if s.grp != nil {
		panic(fmt.Errorf("%w: Server() unavailable on a sharded system; use ShardServer", ErrBadOption))
	}
	s.topoMu.Lock()
	if s.replySPSC {
		if s.serverTaken {
			s.topoMu.Unlock()
			panic(fmt.Errorf("%w: Server() taken twice with SPSC reply channels; set WithReplyKind to an MPMC kind", ErrSPSCTopology))
		}
		for i, taken := range s.duplexTaken {
			if taken {
				s.topoMu.Unlock()
				panic(fmt.Errorf("%w: reply channel %d already has a producer (DuplexPair); set WithReplyKind to an MPMC kind", ErrSPSCTopology, i))
			}
		}
	}
	s.serverTaken = true
	s.replyHandles = true
	s.topoMu.Unlock()

	a := s.newActor("server")
	replies := make([]core.Port, len(s.replies))
	replyPorts := make([]*Port, len(s.replies))
	for i, ch := range s.replies {
		replyPorts[i] = s.producerPort(ch, a)
		replies[i] = replyPorts[i]
	}
	s.registerActor(a, []*Channel{s.recv}, s.replies, replyPorts...)
	return &core.Server{
		Alg:      s.opts.Alg,
		MaxSpin:  s.opts.MaxSpin,
		Tuner:    s.newTuner("server", a),
		Rcv:      NewPort(s.recv).bindActor(a),
		Replies:  replies,
		A:        a,
		M:        a.M,
		Obs:      a.Obs,
		Throttle: s.opts.Throttle,
		Blocks:   s.blockStore(a),
		Owner:    uint32(a.ID),
	}
}

// Client builds the handle for client slot i. Each handle is owned by a
// single goroutine. With SPSC reply channels (the default) there must
// also be at most one live handle per slot — System.Connect/Conn.Close
// manage that automatically for dynamic clients.
func (s *System) Client(i int) (*core.Client, error) {
	if i < 0 || i >= len(s.replies) {
		return nil, fmt.Errorf("livebind: client index %d out of range [0,%d)", i, len(s.replies))
	}
	if s.grp != nil {
		return s.groupClient(i)
	}
	s.topoMu.Lock()
	s.replyHandles = true
	s.topoMu.Unlock()
	a := s.newActor(fmt.Sprintf("client%d", i))
	srv := s.producerPort(s.recv, a)
	s.registerActor(a, []*Channel{s.replies[i]}, []*Channel{s.recv}, srv)
	return &core.Client{
		ID:        int32(i),
		Alg:       s.opts.Alg,
		MaxSpin:   s.opts.MaxSpin,
		Tuner:     s.newTuner(fmt.Sprintf("client%d", i), a),
		Srv:       srv,
		Rcv:       NewPort(s.replies[i]).bindActor(a),
		A:         a,
		M:         a.M,
		Obs:       a.Obs,
		Blocks:    s.blockStore(a),
		Owner:     uint32(a.ID),
		HighWater: s.opts.Admission.HighWater,
		Budget:    s.retryBudget(),
	}, nil
}

// retryBudget builds one handle's retry token bucket, or nil when the
// admission configuration leaves retries unbounded. Each handle gets
// its own bucket (the handle is single-goroutine, so the bucket needs
// no synchronisation).
func (s *System) retryBudget() *core.RetryBudget {
	if s.opts.Admission.RetryCap <= 0 {
		return nil
	}
	return &core.RetryBudget{Cap: s.opts.Admission.RetryCap, Refill: s.opts.Admission.RetryRefill}
}

// FallbackLive returns the number of outstanding heap-overflow payload
// blocks (0 unless WithCopyFallback is on) — the degraded-mode half of
// the post-run lease audit.
func (s *System) FallbackLive() int64 { return s.over.live() }
