package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketInvariants(t *testing.T) {
	// Every bucket's bounds tile the value space: lower < upper, and
	// values at both edges map back into the bucket.
	for i := 0; i < histBuckets; i++ {
		lo, hi := bucketLower(i), bucketUpper(i)
		if lo >= hi {
			t.Fatalf("bucket %d: lower %d >= upper %d", i, lo, hi)
		}
		if got := bucketOf(lo); got != i {
			t.Fatalf("bucketOf(lower %d) = %d, want %d", lo, got, i)
		}
		if i < histBuckets-1 {
			if got := bucketOf(hi - 1); got != i {
				t.Fatalf("bucketOf(upper-1 %d) = %d, want %d", hi-1, got, i)
			}
			if got := bucketOf(hi); got != i+1 {
				t.Fatalf("bucketOf(upper %d) = %d, want %d", hi, got, i+1)
			}
		}
	}
	// Exact unit buckets below 16ns.
	for v := uint64(0); v < histSub; v++ {
		if got := bucketOf(v); got != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want exact bucket", v, got)
		}
	}
	// Relative resolution stays within 1/16 above the exact range.
	for _, v := range []uint64{100, 1000, 12345, 1 << 20, 1e9} {
		lo, hi := bucketLower(bucketOf(v)), bucketUpper(bucketOf(v))
		if rel := float64(hi-lo) / float64(lo); rel > 1.0/histSub+1e-9 {
			t.Fatalf("bucket width at %d: %.4f relative, want <= 1/%d", v, rel, histSub)
		}
	}
}

func TestHistogramRecordAndQuantile(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Max != uint64(1000*time.Microsecond) {
		t.Fatalf("max = %d, want 1000us", s.Max)
	}
	wantMean := 500.5 * 1000 // ns
	if m := s.Mean(); math.Abs(m-wantMean)/wantMean > 0.07 {
		t.Fatalf("mean = %v, want ~%v", m, wantMean)
	}
	for _, q := range []struct{ q, want float64 }{
		{0.5, 500e3}, {0.95, 950e3}, {0.99, 990e3}, {1, 1000e3},
	} {
		got := s.Quantile(q.q)
		if math.Abs(got-q.want)/q.want > 0.08 {
			t.Errorf("q%.2f = %v, want within 8%% of %v", q.q, got, q.want)
		}
	}
}

func TestHistogramNegativeClampsAndHugeValues(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	h.Record(30 * time.Minute) // beyond the top octave: clamps into the last bucket
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.Counts[0] != 1 {
		t.Fatalf("negative duration did not clamp to bucket 0: %v", s.Counts[:4])
	}
	if s.Max != uint64(30*time.Minute) {
		t.Fatalf("max = %d, want exact 30min despite bucket clamp", s.Max)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// while snapshots run, then verifies the final snapshot lost no counts.
// Run under -race this also proves Record/Snapshot are data-race free.
func TestHistogramConcurrent(t *testing.T) {
	const (
		writers    = 8
		perWriter  = 5000
		totalCount = writers * perWriter
	)
	var h Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshotter: monotonic counts, never over total.
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		prev := uint64(0)
		for {
			s := h.Snapshot()
			if s.Count < prev {
				t.Errorf("snapshot count went backwards: %d -> %d", prev, s.Count)
				return
			}
			prev = s.Count
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Record(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	s := h.Snapshot()
	if s.Count != totalCount {
		t.Fatalf("final count = %d, want %d (lost updates)", s.Count, totalCount)
	}
	sumBuckets := uint64(0)
	for _, c := range s.Counts {
		sumBuckets += c
	}
	if sumBuckets != totalCount {
		t.Fatalf("bucket sum = %d, want %d", sumBuckets, totalCount)
	}
}

// TestSnapshotMergeConcurrent merges per-goroutine snapshots taken from
// independent histograms and checks the merged totals are exact.
func TestSnapshotMergeConcurrent(t *testing.T) {
	const shards = 6
	const per = 2000
	hists := make([]Histogram, shards)
	var wg sync.WaitGroup
	for i := range hists {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				hists[i].Record(time.Duration(1+j%512) * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	var merged HistSnapshot
	for i := range hists {
		merged.Merge(hists[i].Snapshot())
	}
	if merged.Count != shards*per {
		t.Fatalf("merged count = %d, want %d", merged.Count, shards*per)
	}
	single := hists[0].Snapshot()
	if merged.Max != single.Max {
		t.Fatalf("merged max = %d, want %d (all shards identical)", merged.Max, single.Max)
	}
	if merged.Sum != single.Sum*shards {
		t.Fatalf("merged sum = %d, want %d", merged.Sum, single.Sum*shards)
	}
}

func TestQuantileEmptyAndEdge(t *testing.T) {
	var s HistSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot should report zeros")
	}
	var h Histogram
	h.Record(42 * time.Nanosecond)
	one := h.Snapshot()
	if got := one.Quantile(1); got != 42 {
		t.Fatalf("q1 of single obs = %v, want 42", got)
	}
	if got := one.Quantile(-1); got < 0 {
		t.Fatalf("negative q clamped wrong: %v", got)
	}
}
