// Benchmarks regenerating the paper's tables and figures (simulated
// platforms, deterministic virtual-time throughput reported as
// msgs/vms) and measuring the live runtime on the host (wall-clock).
//
//	go test -bench . -benchmem
//
// Figure benches report the simulated server throughput via
// b.ReportMetric as "msgs/vms" (messages per virtual millisecond) —
// the metric the paper's y-axes use; ns/op for those benches is the
// host cost of simulating the workload, not the IPC cost itself.
package ulipc_test

import (
	"fmt"
	"runtime"
	"testing"

	"ulipc"
	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/protomodel"
	"ulipc/internal/queue"
	"ulipc/internal/shm"
	"ulipc/internal/workload"
)

const benchMsgs = 300

// benchSim runs one simulated workload per iteration and reports the
// virtual-time throughput of the last run.
func benchSim(b *testing.B, cfg workload.Config) {
	b.Helper()
	if cfg.Msgs == 0 {
		cfg.Msgs = benchMsgs
	}
	var th float64
	for i := 0; i < b.N; i++ {
		res, err := workload.RunSim(cfg)
		if err != nil {
			b.Fatal(err)
		}
		th = res.Throughput
	}
	b.ReportMetric(th, "msgs/vms")
}

// BenchmarkTable1 regenerates the primitive-operation rows of Table 1,
// reporting the simulated microseconds per primitive.
func BenchmarkTable1(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  workload.Config
		rtt  bool
	}{
		{"SGI/BSS1client", workload.Config{Machine: machine.SGIIndy(), Alg: core.BSS, Clients: 1}, true},
		{"SGI/SYSV1client", workload.Config{Machine: machine.SGIIndy(), Transport: workload.TransportSysV, Clients: 1}, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := tc.cfg
			cfg.Msgs = benchMsgs
			var rtt float64
			for i := 0; i < b.N; i++ {
				res, err := workload.RunSim(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rtt = res.RTTMicros
			}
			b.ReportMetric(rtt, "vus/rtt")
		})
	}
}

// BenchmarkFig2 regenerates Figure 2 (uniprocessor BSS vs SYSV).
func BenchmarkFig2(b *testing.B) {
	for _, m := range []*machine.Model{machine.SGIIndy(), machine.IBMP4()} {
		for _, n := range []int{1, 6} {
			b.Run(fmt.Sprintf("%s/BSS/%dclients", m.Name, n), func(b *testing.B) {
				benchSim(b, workload.Config{Machine: m, Alg: core.BSS, Clients: n})
			})
			b.Run(fmt.Sprintf("%s/SYSV/%dclients", m.Name, n), func(b *testing.B) {
				benchSim(b, workload.Config{Machine: m, Transport: workload.TransportSysV, Clients: n})
			})
		}
	}
}

// BenchmarkFig3 regenerates Figure 3 (fixed priorities).
func BenchmarkFig3(b *testing.B) {
	for _, m := range []*machine.Model{machine.SGIIndy(), machine.IBMP4()} {
		b.Run(m.Name+"/BSSfixed/1clients", func(b *testing.B) {
			benchSim(b, workload.Config{Machine: m, Alg: core.BSS, Policy: "fixed", Clients: 1})
		})
	}
}

// BenchmarkFig6 regenerates Figure 6 (Both Sides Wait).
func BenchmarkFig6(b *testing.B) {
	for _, m := range []*machine.Model{machine.SGIIndy(), machine.IBMP4()} {
		for _, n := range []int{1, 6} {
			b.Run(fmt.Sprintf("%s/BSW/%dclients", m.Name, n), func(b *testing.B) {
				benchSim(b, workload.Config{Machine: m, Alg: core.BSW, Clients: n})
			})
		}
	}
}

// BenchmarkFig8 regenerates Figure 8 (Both Sides Wait and Yield).
func BenchmarkFig8(b *testing.B) {
	for _, m := range []*machine.Model{machine.SGIIndy(), machine.IBMP4()} {
		for _, n := range []int{1, 6} {
			b.Run(fmt.Sprintf("%s/BSWY/%dclients", m.Name, n), func(b *testing.B) {
				benchSim(b, workload.Config{Machine: m, Alg: core.BSWY, Clients: n})
			})
		}
	}
	b.Run(machine.SGIIndy().Name+"/BSWYfixed/1clients", func(b *testing.B) {
		benchSim(b, workload.Config{Machine: machine.SGIIndy(), Alg: core.BSWY, Policy: "fixed", Clients: 1})
	})
}

// BenchmarkFig10 regenerates Figure 10 (BSLS MAX_SPIN sensitivity).
func BenchmarkFig10(b *testing.B) {
	for _, spin := range []int{1, 2, 5, 20} {
		for _, n := range []int{1, 6} {
			b.Run(fmt.Sprintf("SGI/BSLSspin%d/%dclients", spin, n), func(b *testing.B) {
				benchSim(b, workload.Config{Machine: machine.SGIIndy(), Alg: core.BSLS, MaxSpin: spin, Clients: n})
			})
		}
	}
}

// BenchmarkFig11 regenerates Figure 11 (8-CPU Challenge).
func BenchmarkFig11(b *testing.B) {
	m := machine.SGIChallenge8()
	for _, n := range []int{1, 4, 7} {
		b.Run(fmt.Sprintf("BSS/%dclients", n), func(b *testing.B) {
			benchSim(b, workload.Config{Machine: m, Alg: core.BSS, Clients: n})
		})
		for _, spin := range []int{1, 4} {
			b.Run(fmt.Sprintf("BSLSspin%d/%dclients", spin, n), func(b *testing.B) {
				benchSim(b, workload.Config{Machine: m, Alg: core.BSLS, MaxSpin: spin, Clients: n})
			})
		}
		b.Run(fmt.Sprintf("SYSV/%dclients", n), func(b *testing.B) {
			benchSim(b, workload.Config{Machine: m, Transport: workload.TransportSysV, Clients: n})
		})
	}
}

// BenchmarkFig12 regenerates Figure 12 (modified sched_yield in Linux).
func BenchmarkFig12(b *testing.B) {
	m := machine.Linux486()
	for _, tc := range []struct {
		name string
		cfg  workload.Config
	}{
		{"linuxmod/BSS/1clients", workload.Config{Machine: m, Policy: "linuxmod", Alg: core.BSS, Clients: 1}},
		{"linuxmod/BSWY/1clients", workload.Config{Machine: m, Policy: "linuxmod", Alg: core.BSWY, Clients: 1}},
		{"linuxmod/BSWYhandoff/1clients", workload.Config{Machine: m, Policy: "linuxmod", Alg: core.BSWY, Handoff: true, Clients: 1}},
		{"linuxmod/SYSV/1clients", workload.Config{Machine: m, Policy: "linuxmod", Transport: workload.TransportSysV, Clients: 1}},
	} {
		b.Run(tc.name, func(b *testing.B) { benchSim(b, tc.cfg) })
	}
}

// BenchmarkAblationThrottle regenerates the wake-throttling ablation at
// the MP collapse point.
func BenchmarkAblationThrottle(b *testing.B) {
	m := machine.SGIChallenge8()
	for _, throttle := range []int{0, 2} {
		b.Run(fmt.Sprintf("BSLSspin1/5clients/throttle%d", throttle), func(b *testing.B) {
			benchSim(b, workload.Config{Machine: m, Alg: core.BSLS, MaxSpin: 1, Clients: 5, Throttle: throttle})
		})
	}
}

// BenchmarkLiveRoundTrip measures a synchronous round trip on the live
// runtime (host wall-clock) for each protocol.
func BenchmarkLiveRoundTrip(b *testing.B) {
	for _, alg := range ulipc.Algorithms() {
		b.Run(alg.String(), func(b *testing.B) {
			sys, err := ulipc.NewSystem(ulipc.Options{Alg: alg, Clients: 1, MaxSpin: 20})
			if err != nil {
				b.Fatal(err)
			}
			srv := sys.Server()
			done := make(chan struct{})
			go func() { srv.Serve(nil); close(done) }()
			cl, err := sys.Client(0)
			if err != nil {
				b.Fatal(err)
			}
			cl.Send(ulipc.Msg{Op: ulipc.OpConnect})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cl.Send(ulipc.Msg{Op: ulipc.OpEcho, Seq: int32(i)})
			}
			b.StopTimer()
			cl.Send(ulipc.Msg{Op: ulipc.OpDisconnect})
			<-done
		})
	}
}

// BenchmarkLiveAsyncBatch measures the per-message cost of asynchronous
// batches on the live runtime — the batching amortisation the async
// experiment shows in virtual time.
func BenchmarkLiveAsyncBatch(b *testing.B) {
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			sys, err := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSW, Clients: 1, QueueCap: batch * 2})
			if err != nil {
				b.Fatal(err)
			}
			srv := sys.Server()
			done := make(chan struct{})
			go func() { srv.Serve(nil); close(done) }()
			cl, err := sys.Client(0)
			if err != nil {
				b.Fatal(err)
			}
			cl.Send(ulipc.Msg{Op: ulipc.OpConnect})
			b.ResetTimer()
			sent := 0
			for sent < b.N {
				n := batch
				if b.N-sent < n {
					n = b.N - sent
				}
				for i := 0; i < n; i++ {
					cl.SendAsync(ulipc.Msg{Op: ulipc.OpEcho})
				}
				for i := 0; i < n; i++ {
					cl.RecvReply()
				}
				sent += n
			}
			b.StopTimer()
			cl.Send(ulipc.Msg{Op: ulipc.OpDisconnect})
			<-done
		})
	}
}

// BenchmarkQueue measures the raw queue implementations (ablation A2):
// uncontended enqueue/dequeue pairs. The SPSC ring rides along as the
// reply-path comparator — it is excluded from Kinds() because the
// generic constructor cannot prove its topology, but a single-threaded
// enqueue/dequeue pair trivially satisfies the contract.
func BenchmarkQueue(b *testing.B) {
	bench := func(q queue.Queue) func(*testing.B) {
		return func(b *testing.B) {
			m := core.Msg{Op: core.OpEcho, Val: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !q.Enqueue(m) {
					b.Fatal("enqueue failed")
				}
				if _, ok := q.Dequeue(); !ok {
					b.Fatal("dequeue failed")
				}
			}
		}
	}
	for _, kind := range queue.Kinds() {
		q, err := queue.New(kind, 1024)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.String(), bench(q))
	}
	spsc, err := queue.NewSPSC(1024)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("spsc", bench(spsc))
}

// BenchmarkQueuePipe measures each queue as a cross-goroutine pipe: one
// producer, one consumer, messages flowing one way. This is the shape of
// the live runtime's reply path, and the cell where the SPSC ring's
// cached indices should beat the MPMC implementations.
func BenchmarkQueuePipe(b *testing.B) {
	bench := func(q queue.Queue) func(*testing.B) {
		return func(b *testing.B) {
			done := make(chan struct{})
			b.ResetTimer()
			go func() {
				m := core.Msg{Op: core.OpEcho}
				for i := 0; i < b.N; i++ {
					for !q.Enqueue(m) {
						runtime.Gosched()
					}
				}
				close(done)
			}()
			for i := 0; i < b.N; i++ {
				for {
					if _, ok := q.Dequeue(); ok {
						break
					}
					runtime.Gosched()
				}
			}
			<-done
		}
	}
	for _, kind := range queue.Kinds() {
		q, err := queue.New(kind, 1024)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind.String(), bench(q))
	}
	spsc, err := queue.NewSPSC(1024)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("spsc", bench(spsc))
}

// BenchmarkQueueContended measures the queues under producer/consumer
// concurrency.
func BenchmarkQueueContended(b *testing.B) {
	for _, kind := range queue.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			q, err := queue.New(kind, 1024)
			if err != nil {
				b.Fatal(err)
			}
			b.RunParallel(func(pb *testing.PB) {
				m := core.Msg{Op: core.OpEcho}
				for pb.Next() {
					if q.Enqueue(m) {
						q.Dequeue()
					} else {
						q.Dequeue()
					}
				}
			})
		})
	}
}

// BenchmarkLiveDuplexRoundTrip measures the thread-per-client duplex
// architecture on the live runtime.
func BenchmarkLiveDuplexRoundTrip(b *testing.B) {
	sys, err := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSW, Clients: 1, Duplex: true})
	if err != nil {
		b.Fatal(err)
	}
	cl, h, err := sys.DuplexPair(0)
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() { h.ServeConn(nil); close(done) }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.Send(ulipc.Msg{Op: ulipc.OpEcho})
	}
	b.StopTimer()
	cl.Send(ulipc.Msg{Op: ulipc.OpDisconnect})
	<-done
}

// BenchmarkBlockPool measures the variable-size component allocator.
func BenchmarkBlockPool(b *testing.B) {
	for _, size := range []int{48, 200, 900} {
		b.Run(fmt.Sprintf("alloc%d", size), func(b *testing.B) {
			pool, err := shm.NewDefaultBlockPool(64)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ref, _, ok := pool.Alloc(size)
				if !ok {
					b.Fatal("alloc failed")
				}
				pool.Free(ref)
			}
		})
	}
}

// BenchmarkArch regenerates the architecture ablation at 6 clients on
// the uniprocessor.
func BenchmarkArch(b *testing.B) {
	for _, tc := range []struct {
		name string
		arch workload.Arch
	}{
		{"shared-queue", workload.ArchSharedQueue},
		{"thread-per-client", workload.ArchThreadPerClient},
	} {
		b.Run(tc.name, func(b *testing.B) {
			benchSim(b, workload.Config{
				Machine: machine.SGIIndy(), Alg: core.BSLS, MaxSpin: 20,
				Clients: 6, Arch: tc.arch,
			})
		})
	}
}

// BenchmarkProtomodel measures the exhaustive checker itself.
func BenchmarkProtomodel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := protomodel.Check(protomodel.FullProtocol(2, 2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveGoChannels is the idiomatic-Go comparator: the same echo
// round trip over plain Go channels (the runtime's own kernel-mediated
// analogue). It situates the live ulipc numbers against what a Go
// program would otherwise use.
func BenchmarkLiveGoChannels(b *testing.B) {
	req := make(chan ulipc.Msg, 64)
	rsp := make(chan ulipc.Msg, 64)
	done := make(chan struct{})
	go func() {
		for m := range req {
			rsp <- m
		}
		close(done)
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req <- ulipc.Msg{Op: ulipc.OpEcho, Seq: int32(i)}
		<-rsp
	}
	b.StopTimer()
	close(req)
	<-done
}

// BenchmarkLiveConnect measures the dynamic connect/close lifecycle.
func BenchmarkLiveConnect(b *testing.B) {
	sys, err := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSLS, Clients: 4})
	if err != nil {
		b.Fatal(err)
	}
	srv := sys.Server()
	done := make(chan struct{})
	go func() { srv.Serve(nil); close(done) }()
	anchor, err := sys.Connect()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := sys.Connect()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Send(ulipc.Msg{Op: ulipc.OpEcho}); err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
	b.StopTimer()
	anchor.Close()
	<-done
}

// benchLive runs one live workload sized to b.N total messages and
// reports wall-clock ns per round trip and server msgs/s.
func benchLive(b *testing.B, cfg workload.LiveConfig) {
	b.Helper()
	cfg.Msgs = (b.N + cfg.Clients - 1) / cfg.Clients
	if cfg.MaxSpin == 0 {
		cfg.MaxSpin = 20
	}
	res, err := workload.RunLive(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.RTTMicros*1e3, "ns/rtt")
	b.ReportMetric(res.Throughput*1e3, "msgs/s")
}

// BenchmarkLiveMatrix is the wall-clock benchmark matrix — the same
// cells `ipcbench -live` writes to BENCH_live.json: {queue
// configuration} x {protocol} x {client count}. The "ring" vs
// "ring+spsc" pair isolates the SPSC reply-path win; "default" is the
// library's out-of-the-box configuration.
func BenchmarkLiveMatrix(b *testing.B) {
	for _, k := range workload.DefaultLiveBenchKinds() {
		for _, alg := range ulipc.Algorithms() {
			for _, n := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("%s/%s/%dclients", k.Name, alg, n), func(b *testing.B) {
					reply := k.Reply
					benchLive(b, workload.LiveConfig{
						Alg: alg, Clients: n,
						QueueKind: k.Recv, ReplyKind: &reply,
					})
				})
			}
		}
	}
}

// BenchmarkLiveReplyKind isolates the reply leg: identical workloads
// that differ only in the reply-queue implementation.
func BenchmarkLiveReplyKind(b *testing.B) {
	for _, reply := range []ulipc.QueueKind{ulipc.QueueSPSC, ulipc.QueueRing, ulipc.QueueTwoLock} {
		reply := reply
		b.Run(reply.String(), func(b *testing.B) {
			benchLive(b, workload.LiveConfig{
				Alg: ulipc.BSLS, Clients: 1,
				QueueKind: ulipc.QueueRing, ReplyKind: &reply,
			})
		})
	}
}

// BenchmarkLiveAllocBatch measures producer-side allocation batching on
// the two-lock receive queue: one Treiber-stack CAS per k messages
// instead of one per message.
func BenchmarkLiveAllocBatch(b *testing.B) {
	for _, batch := range []int{0, 8, 32} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			benchLive(b, workload.LiveConfig{
				Alg: ulipc.BSW, Clients: 4,
				QueueKind: ulipc.QueueTwoLock, AllocBatch: batch,
			})
		})
	}
}

// BenchmarkLivePool measures worker-pool round trips on the live runtime
// across pool sizes.
func BenchmarkLivePool(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			msgs := b.N
			if msgs < 1 {
				msgs = 1
			}
			res, err := workload.RunLivePool(workload.LiveConfig{
				Alg: ulipc.BSW, Clients: 2, Msgs: (msgs + 1) / 2, MaxSpin: 8,
			}, workers)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Throughput, "msgs/ms")
		})
	}
}
