package sim

// Kernel-managed synchronisation and IPC objects: counting semaphores
// (the paper's sleep/wake-up primitive), System V style message queues
// (the kernel-mediated baseline), and barriers (workload start line-up).

// SemID names a kernel counting semaphore.
type SemID int

// QID names a kernel (System V style) message queue.
type QID int

// BarrierID names a kernel barrier.
type BarrierID int

type semaphore struct {
	count   int64
	waiters []*Proc // FIFO
}

type msgQueue struct {
	msgs       []any
	capacity   int
	sndWaiters []*Proc // blocked senders, payload parked in p.sysRet
	rcvWaiters []*Proc // blocked receivers
}

type barrier struct {
	parties int
	arrived []*Proc
	waiting bool
}

// NewSem creates a counting semaphore with the given initial count.
func (k *Kernel) NewSem(initial int64) SemID {
	k.sems = append(k.sems, &semaphore{count: initial})
	return SemID(len(k.sems) - 1)
}

// SemCount returns the current count of a semaphore (diagnostics only).
func (k *Kernel) SemCount(id SemID) int64 { return k.sems[id].count }

// SemWaiters returns the number of processes blocked on the semaphore.
func (k *Kernel) SemWaiters(id SemID) int { return len(k.sems[id].waiters) }

// NewMsgQueue creates a System V style message queue holding at most
// capacity messages.
func (k *Kernel) NewMsgQueue(capacity int) QID {
	if capacity < 1 {
		capacity = 1
	}
	k.msgqs = append(k.msgqs, &msgQueue{capacity: capacity})
	return QID(len(k.msgqs) - 1)
}

// QueueLen returns the number of messages currently in the queue.
func (k *Kernel) QueueLen(q QID) int { return len(k.msgqs[q].msgs) }

// NewBarrier creates a barrier for the given number of parties.
func (k *Kernel) NewBarrier(parties int) BarrierID {
	k.barriers = append(k.barriers, &barrier{parties: parties})
	return BarrierID(len(k.barriers) - 1)
}
