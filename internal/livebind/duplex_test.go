package livebind

import (
	"sync"
	"testing"

	"ulipc/internal/core"
)

func TestDuplexRequiresOption(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.DuplexPair(0); err == nil {
		t.Fatal("DuplexPair without Options.Duplex accepted")
	}
}

func TestDuplexPairBounds(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 2, Duplex: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.DuplexPair(2); err == nil {
		t.Fatal("out-of-range duplex index accepted")
	}
	if _, _, err := sys.DuplexPair(-1); err == nil {
		t.Fatal("negative duplex index accepted")
	}
}

func TestDuplexEchoAllAlgorithms(t *testing.T) {
	for _, alg := range core.Algorithms() {
		sys, err := NewSystem(Options{Alg: alg, Clients: 3, Duplex: true})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			cl, h, err := sys.DuplexPair(i)
			if err != nil {
				t.Fatal(err)
			}
			served := make(chan int64, 1)
			go func() { served <- h.ServeConn(nil) }()
			wg.Add(1)
			go func(i int, cl *core.DuplexClient) {
				defer wg.Done()
				for j := 0; j < 200; j++ {
					ans := cl.Send(core.Msg{Op: core.OpEcho, Seq: int32(j), Val: float64(j)})
					if ans.Seq != int32(j) || ans.Val != float64(j) {
						t.Errorf("%s conn %d: reply mismatch at %d: %+v", alg, i, j, ans)
						return
					}
				}
				cl.Send(core.Msg{Op: core.OpDisconnect})
				if got := <-served; got != 200 {
					t.Errorf("%s conn %d: served %d, want 200", alg, i, got)
				}
			}(i, cl)
		}
		wg.Wait()
	}
}

func TestDuplexWorkCallback(t *testing.T) {
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 1, Duplex: true})
	if err != nil {
		t.Fatal(err)
	}
	cl, h, err := sys.DuplexPair(0)
	if err != nil {
		t.Fatal(err)
	}
	go h.ServeConn(func(m *core.Msg) { m.Val *= 3 })
	ans := cl.Send(core.Msg{Op: core.OpWork, Val: 7})
	if ans.Val != 21 {
		t.Fatalf("work reply = %v, want 21", ans.Val)
	}
	cl.Send(core.Msg{Op: core.OpDisconnect})
}

func TestBlocksRoundTrip(t *testing.T) {
	sys, err := NewSystem(Options{Alg: core.BSLS, Clients: 1, BlockSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	pool := sys.Blocks()
	if pool == nil {
		t.Fatal("no block pool")
	}

	srv := sys.Server()
	go srv.Serve(func(m *core.Msg) {
		// Uppercase the variable-sized component in place.
		ref, n := m.Block()
		buf, err := pool.Get(ref)
		if err != nil {
			t.Errorf("server: %v", err)
			return
		}
		for i := 0; i < n; i++ {
			if buf[i] >= 'a' && buf[i] <= 'z' {
				buf[i] -= 'a' - 'A'
			}
		}
	})

	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	cl.Send(core.Msg{Op: core.OpConnect})

	payload := "hello, variable-sized world"
	ref, buf, ok := pool.Alloc(len(payload))
	if !ok {
		t.Fatal("block alloc failed")
	}
	copy(buf, payload)
	req := core.Msg{Op: core.OpWork}
	req.SetBlock(ref, len(payload))
	ans := cl.Send(req)

	gotRef, n := ans.Block()
	got, err := pool.Get(gotRef)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:n]) != "HELLO, VARIABLE-SIZED WORLD" {
		t.Fatalf("got %q", got[:n])
	}
	pool.Free(gotRef)
	cl.Send(core.Msg{Op: core.OpDisconnect})
}

func TestBlocksAbsentByDefault(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Blocks() != nil {
		t.Fatal("block pool present without BlockSlots")
	}
}
