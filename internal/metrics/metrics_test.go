package metrics

import (
	"strings"
	"testing"
)

func TestSnapshotCopiesCounters(t *testing.T) {
	s := NewSet()
	p := s.NewProc("worker")
	p.Yields.Add(3)
	p.SemP.Add(2)
	p.MsgsSent.Add(10)
	snap := p.Snapshot()
	p.Yields.Add(100)
	if snap.Yields != 3 || snap.SemP != 2 || snap.MsgsSent != 10 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestAddAccumulates(t *testing.T) {
	a := Snapshot{Name: "a", Yields: 1, Blocks: 2, CPUTimeNS: 10}
	b := Snapshot{Name: "b", Yields: 3, Blocks: 4, CPUTimeNS: 20}
	a.Add(b)
	if a.Yields != 4 || a.Blocks != 6 || a.CPUTimeNS != 30 {
		t.Fatalf("sum = %+v", a)
	}
	if a.Name != "a" {
		t.Fatal("Add must keep the receiver's name")
	}
}

func TestByPrefix(t *testing.T) {
	s := NewSet()
	for _, name := range []string{"client0", "client1", "server"} {
		p := s.NewProc(name)
		p.Yields.Add(1)
	}
	clients := s.ByPrefix("client")
	if clients.Yields != 2 {
		t.Fatalf("client yields = %d", clients.Yields)
	}
	total := s.Total()
	if total.Yields != 3 {
		t.Fatalf("total yields = %d", total.Yields)
	}
}

func TestFind(t *testing.T) {
	s := NewSet()
	s.NewProc("x")
	if _, ok := s.Find("x"); !ok {
		t.Error("Find missed x")
	}
	if _, ok := s.Find("y"); ok {
		t.Error("Find invented y")
	}
}

func TestSnapshotsSorted(t *testing.T) {
	s := NewSet()
	s.NewProc("b")
	s.NewProc("a")
	snaps := s.Snapshots()
	if len(snaps) != 2 || snaps[0].Name != "a" || snaps[1].Name != "b" {
		t.Fatalf("snaps = %v", snaps)
	}
}

func TestRates(t *testing.T) {
	var p Proc
	p.Yields.Add(5)
	p.MsgsSent.Add(2)
	if got := p.Snapshot().YieldsPerMsg(); got != 2.5 {
		t.Fatalf("yields/msg = %v", got)
	}
	if (Snapshot{}).YieldsPerMsg() != 0 {
		t.Fatal("zero messages must give 0 rate")
	}

	p.SpinLoops.Add(4)
	p.SpinFallThrus.Add(1)
	p.SpinIters.Add(8)
	if got := p.FallThroughRate(); got != 0.25 {
		t.Fatalf("fall-through = %v", got)
	}
	if got := p.AvgSpinIters(); got != 2 {
		t.Fatalf("avg iters = %v", got)
	}
	var empty Proc
	if empty.FallThroughRate() != 0 || empty.AvgSpinIters() != 0 {
		t.Fatal("empty proc rates must be 0")
	}
}

func TestSwitchesTotal(t *testing.T) {
	var p Proc
	p.VoluntaryCS.Add(3)
	p.InvoluntaryCS.Add(4)
	if p.SwitchesTotal() != 7 {
		t.Fatalf("total = %d", p.SwitchesTotal())
	}
	if p.Snapshot().SwitchesTotal() != 7 {
		t.Fatal("snapshot total mismatch")
	}
}

func TestStringContainsName(t *testing.T) {
	s := Snapshot{Name: "thing", VoluntaryCS: 1}
	if !strings.Contains(s.String(), "thing") {
		t.Fatalf("String() = %q", s.String())
	}
}
