// Package shm provides the shared-memory substrate the live runtime
// builds its queues on: a fixed-size arena of message nodes addressed by
// 32-bit offsets (refs) and a lock-free free pool.
//
// All cross-"process" references are indices, never Go pointers, so the
// arena layout is position-independent — the same structure could live in
// a memory-mapped segment shared across address spaces, which is how the
// paper deploys it. The free pool implements the fixed-size-message
// free-pool management Section 2.1 calls out as the reason for fixed
// message sizes.
package shm

import (
	"fmt"
	"sync/atomic"

	"ulipc/internal/core"
)

// Ref is a position-independent reference to a node in an arena.
type Ref = uint32

// NilRef is the null reference.
const NilRef Ref = ^Ref(0)

// Node is one fixed-size message slot: a link and the message payload
// (the paper's 24-byte message: opcode, reply channel, argument).
type Node struct {
	next atomic.Uint32
	msg  core.Msg
}

// Next returns the node's link.
func (n *Node) Next() Ref { return n.next.Load() }

// SetNext stores the node's link.
func (n *Node) SetNext(r Ref) { n.next.Store(r) }

// Msg returns the node's message payload.
func (n *Node) Msg() core.Msg { return n.msg }

// SetMsg stores the node's message payload.
func (n *Node) SetMsg(m core.Msg) { n.msg = m }

// Arena is a fixed-size array of nodes addressed by Ref.
type Arena struct {
	nodes []Node
}

// NewArena allocates an arena with n node slots.
func NewArena(n int) (*Arena, error) {
	if n < 1 {
		return nil, fmt.Errorf("shm: arena size must be >= 1, got %d", n)
	}
	if n >= int(NilRef) {
		return nil, fmt.Errorf("shm: arena size %d exceeds ref space", n)
	}
	return &Arena{nodes: make([]Node, n)}, nil
}

// Len returns the number of node slots.
func (a *Arena) Len() int { return len(a.nodes) }

// Node returns the node at ref r. It panics on NilRef or out-of-range
// refs — those indicate corruption, not recoverable conditions.
func (a *Arena) Node(r Ref) *Node {
	return &a.nodes[r]
}

// packed pool head: high 32 bits are an ABA tag, low 32 bits the top ref.
func packHead(tag uint32, top Ref) uint64 { return uint64(tag)<<32 | uint64(top) }
func unpackHead(h uint64) (tag uint32, top Ref) {
	return uint32(h >> 32), Ref(h & 0xFFFFFFFF)
}

// Pool is a lock-free free list (Treiber stack with an ABA tag) of arena
// nodes. Exhaustion of the pool is the queue-full condition the
// protocols' flow control reacts to.
type Pool struct {
	arena *Arena
	head  atomic.Uint64
	free  atomic.Int64 // approximate free count (diagnostics)
}

// NewPool builds a pool owning every node of a fresh arena.
func NewPool(arena *Arena) *Pool {
	p := &Pool{arena: arena}
	p.head.Store(packHead(0, NilRef))
	// Thread all nodes onto the free list.
	for i := arena.Len() - 1; i >= 0; i-- {
		p.Free(Ref(i))
	}
	return p
}

// NewPoolSize is a convenience constructor: arena + pool of n nodes.
func NewPoolSize(n int) (*Pool, error) {
	a, err := NewArena(n)
	if err != nil {
		return nil, err
	}
	return NewPool(a), nil
}

// Arena returns the backing arena.
func (p *Pool) Arena() *Arena { return p.arena }

// Alloc pops a free node, reporting false if the pool is exhausted.
func (p *Pool) Alloc() (Ref, bool) {
	for {
		h := p.head.Load()
		tag, top := unpackHead(h)
		if top == NilRef {
			return NilRef, false
		}
		next := p.arena.Node(top).Next()
		if p.head.CompareAndSwap(h, packHead(tag+1, next)) {
			p.free.Add(-1)
			return top, true
		}
	}
}

// Free pushes a node back onto the free list.
func (p *Pool) Free(r Ref) {
	n := p.arena.Node(r)
	for {
		h := p.head.Load()
		tag, top := unpackHead(h)
		n.SetNext(top)
		if p.head.CompareAndSwap(h, packHead(tag+1, r)) {
			p.free.Add(1)
			return
		}
	}
}

// FreeCount returns the approximate number of free nodes.
func (p *Pool) FreeCount() int64 { return p.free.Load() }
