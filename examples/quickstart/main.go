// Quickstart: one client, one echo server, the BSLS protocol — the
// smallest complete use of the ulipc public API.
package main

import (
	"fmt"
	"log"

	"ulipc"
)

func main() {
	// A System owns the shared state: the server's receive queue and one
	// reply queue per client, each with an awake flag and a counting
	// semaphore — the layout of the paper's shared-memory segment.
	sys, err := ulipc.NewSystem(ulipc.Options{
		Alg:     ulipc.BSLS, // poll a bounded number of times, then sleep
		MaxSpin: ulipc.DefaultMaxSpin,
		Clients: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The server is a single-threaded Receive/Reply loop. Serve echoes
	// requests until every connected client has disconnected.
	srv := sys.Server()
	done := make(chan int64, 1)
	go func() { done <- srv.Serve(nil) }()

	cl, err := sys.Client(0)
	if err != nil {
		log.Fatal(err)
	}

	// Connect, make a few synchronous calls, disconnect.
	cl.Send(ulipc.Msg{Op: ulipc.OpConnect})
	for i := 0; i < 5; i++ {
		req := ulipc.Msg{Op: ulipc.OpEcho, Seq: int32(i), Val: float64(i) * 1.5}
		ans := cl.Send(req)
		fmt.Printf("request %d: sent val=%.1f, got val=%.1f\n", i, req.Val, ans.Val)
	}
	cl.Send(ulipc.Msg{Op: ulipc.OpDisconnect})

	fmt.Printf("server echoed %d messages\n", <-done)
}
