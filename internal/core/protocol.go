package core

import "ulipc/internal/metrics"

// This file contains the shared building blocks of the four protocols,
// transcribed from the paper's Figures 1, 5, 7 and 9.

// enqueueOrSleep implements the producer-side queue-full handling common
// to Send and Reply: "the process will sleep for at least one second...
// the queue full condition seldom occurs and the implication is that the
// consumer is saturated".
func enqueueOrSleep(q Port, a Actor, m Msg) {
	for !q.TryEnqueue(m) {
		a.SleepSec(1)
	}
}

// wakeConsumer implements steps P.2/P.3 with the Figure 4 race-2 fix:
// test-and-set ensures only the first producer to find the awake flag
// clear issues the (expensive) wake-up system call.
//
//	if( !tas( &(Q->awake) ) ) V( sem );
func wakeConsumer(q Port, a Actor) bool {
	if !q.TASAwake() {
		a.V(q.Sem())
		return true
	}
	return false
}

// consumerWait implements the consumer side of the blocking protocol
// (steps C.1–C.5 of Figure 4 with both race fixes), shared by BSW, BSWY
// and BSLS:
//
//	while( !dequeue( Q, msg ) ) {
//	    <preWait hook — BSWY's busy_wait "try to handoff">
//	    Q->awake = 0;
//	    if( !dequeue( Q, msg ) ) {
//	        P( sem );          /* wait for producer */
//	        Q->awake = 1;
//	    } else {               /* message ready */
//	        if( tas( &Q->awake ) ) P( sem ); /* fix race condition */
//	        break;
//	    }
//	}
//
// The second dequeue (step C.3) is required because a producer may check
// the awake flag after the first dequeue fails but before the flag is
// cleared (Execution Interleaving 4 — the consumer would sleep forever).
// The tas on the success path drains a pending redundant wake-up so the
// semaphore count cannot accumulate (Execution Interleaving 3).
func consumerWait(q Port, a Actor, preWait func()) Msg {
	for {
		if m, ok := q.TryDequeue(); ok {
			return m
		}
		if preWait != nil {
			preWait()
		}
		q.SetAwake(false)
		if m, ok := q.TryDequeue(); ok {
			// Reply/request arrived between the dequeues: re-set the
			// flag ourselves; if a producer already set it, it has also
			// issued a V we must consume without blocking.
			if q.TASAwake() {
				a.P(q.Sem())
			}
			return m
		}
		a.P(q.Sem())
		q.SetAwake(true)
	}
}

// spinPoll implements the BSLS limited-spin prefix (Figure 9):
//
//	spincnt = 0;
//	while( empty(Q) && spincnt++ < MAX_SPIN )
//	    poll_queue( Q );
//
// It records the Section 4.2 statistics (how often the loop fell through
// to the blocking path, and the iteration count) when m is non-nil. The
// poll needs only the non-destructive empty check, so it accepts any
// endpoint flavour (Port or PoolPort).
func spinPoll(q interface{ Empty() bool }, a Actor, maxSpin int, m *metrics.Proc) {
	if m != nil {
		m.SpinLoops.Add(1)
	}
	spincnt := 0
	for q.Empty() && spincnt < maxSpin {
		a.PollDelay()
		spincnt++
		if m != nil {
			m.SpinIters.Add(1)
		}
	}
	if spincnt >= maxSpin && m != nil {
		m.SpinFallThrus.Add(1)
	}
}

// busySpinUntil busy-waits (Figure 1's busy_wait) until ready() holds.
func busySpinUntil(a Actor, ready func() bool) {
	for !ready() {
		a.BusyWait()
	}
}
