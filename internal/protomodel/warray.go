// Waiting-array model: exhaustive interleaving checking for the
// livebind waiting-array semaphore under the cancellable consumer wait
// (core.consumerWaitCtx) — the BSA parking path.
//
// The real semaphore guards every operation with one mutex, so each
// operation (fast-path P, park, V's hole-skip + direct grant, cancel's
// hole-mark, the cancel-after-grant hand-back) is a single atomic step
// here. The consumer runs the Figure 4 shape with the cancel-path
// token accounting of consumerWaitCtx: a nondeterministic cancel can
// strike while the consumer is parked, and if the cancel raced a grant
// the token is handed back inside the semaphore; either way the
// consumer re-runs the TAS drain before retrying, so a token destined
// for it is never lost and never double-counted.
//
// Verified claims (WArrayCheck):
//   - no interleaving deadlocks (no lost wake-up, even with cancels
//     striking at every parked state);
//   - every terminal state consumed every message;
//   - the semaphore count at quiescence is at most 1 (the one
//     redundant-V credit the TAS discipline permits transiently, never
//     an accumulating leak).
package protomodel

import "fmt"

// WArrayConfig selects the waiting-array scenario to model-check.
type WArrayConfig struct {
	Producers int // producer processes in [1,3]
	Msgs      int // messages each producer enqueues, in [1,4]

	// MaxCancels bounds the nondeterministic cancellations injected
	// while the consumer is parked. The bound must be finite: an
	// always-enabled cancel would give every parked state an outgoing
	// transition and mask genuine lost-wake deadlocks as livelocks.
	MaxCancels int
}

// WArrayResult summarises the exhaustive exploration.
type WArrayResult struct {
	States       int      // distinct states explored
	Deadlock     bool     // some interleaving wedges the system
	DeadlockPath []string // step labels of one wedging interleaving
	MaxSem       int      // highest count over all interleavings
	TermSemMax   int      // highest count over terminal states (quiescence)
	AllConsumed  bool     // every terminal state consumed every message
	Terminal     int      // number of distinct terminal states
	Cancelled    bool     // at least one explored path cancelled a park
}

// Consumer program counters: the consumerWaitCtx shape, plus the
// cancel-path drain (wCxl*) it runs after a cancelled park.
const (
	wTop       = iota // dequeue attempt
	wClear            // awake <- false
	wDeq2             // second dequeue attempt
	wDrain            // tas(awake) after a successful second dequeue
	wDrainP           // drain the pending V
	wPark             // PCtx: fast path or park on a waiting-array slot
	wParked           // parked; wakes by direct grant (or cancels)
	wWake             // awake <- true
	wCxl              // cancelled: tas(awake) token accounting
	wCxlP             // cancelled with a signal pending: P to claim it
	wCxlParked        // the claim parked (plain P on the waiting array)
	wCxlDeq           // claimed the token: dequeue the message it covers
	wDone
)

// Waiting-array slot states for the (single) consumer's slot. A
// cancelled slot is a hole the next V absorbs in the same locked step
// that grants a live waiter, so holes need no state of their own here.
const (
	slotNone int8 = iota
	slotWaiting
	slotGranted
)

// wstate is the full exploration state (a value type used as a map
// key, so exploration memoises on the complete state).
type wstate struct {
	queue    int8
	awake    bool
	sem      int8 // semaphore count (tokens not yet granted directly)
	slot     int8 // the consumer's waiting-array slot
	consumed int8
	cancels  int8 // cancellations injected so far

	cpc  int8
	ppc  [maxProducers]int8
	sent [maxProducers]int8
}

// WArrayCheck exhaustively explores every interleaving of the
// waiting-array consumer wait against TAS+V producers with injected
// cancellations.
func WArrayCheck(cfg WArrayConfig) (WArrayResult, error) {
	if cfg.Producers < 1 || cfg.Producers > maxProducers {
		return WArrayResult{}, fmt.Errorf("protomodel: producers must be in [1,%d]", maxProducers)
	}
	if cfg.Msgs < 1 || cfg.Msgs > 4 {
		return WArrayResult{}, fmt.Errorf("protomodel: msgs must be in [1,4]")
	}
	if cfg.MaxCancels < 0 || cfg.MaxCancels > 4 {
		return WArrayResult{}, fmt.Errorf("protomodel: max cancels must be in [0,4]")
	}
	c := &wchecker{cfg: cfg, target: int8(cfg.Producers * cfg.Msgs), seen: map[wstate]bool{}, allConsumed: true}
	init := wstate{awake: true, cpc: wTop}
	for i := 0; i < cfg.Producers; i++ {
		init.ppc[i] = pEnq
	}
	c.explore(init, nil)
	c.res.States = len(c.seen)
	c.res.AllConsumed = c.res.Terminal > 0 && c.allConsumed
	return c.res, nil
}

type wchecker struct {
	cfg         WArrayConfig
	target      int8
	seen        map[wstate]bool
	res         WArrayResult
	allConsumed bool
}

func (c *wchecker) explore(s wstate, path []string) {
	if c.seen[s] {
		return
	}
	c.seen[s] = true
	if int(s.sem) > c.res.MaxSem {
		c.res.MaxSem = int(s.sem)
	}

	moved := false
	if ns, label, ok := c.stepConsumer(s); ok {
		moved = true
		c.explore(ns, pathAppend(path, label))
	}
	// Cancellation is a second, independent transition out of the
	// parked states, so grant-vs-cancel races are explored both ways.
	if ns, label, ok := c.stepCancel(s); ok {
		moved = true
		c.res.Cancelled = true
		c.explore(ns, pathAppend(path, label))
	}
	for i := 0; i < c.cfg.Producers; i++ {
		if ns, label, ok := c.stepWProducer(s, i); ok {
			moved = true
			c.explore(ns, pathAppend(path, label))
		}
	}
	if moved {
		return
	}

	producersDone := true
	for i := 0; i < c.cfg.Producers; i++ {
		if s.ppc[i] != pDone {
			producersDone = false
		}
	}
	if s.cpc == wDone && producersDone {
		c.res.Terminal++
		if s.consumed != c.target {
			c.allConsumed = false
		}
		if int(s.sem) > c.res.TermSemMax {
			c.res.TermSemMax = int(s.sem)
		}
		return
	}
	if !c.res.Deadlock {
		c.res.Deadlock = true
		c.res.DeadlockPath = append([]string(nil), path...)
	}
}

// stepConsumer executes the consumer's enabled step, if any.
func (c *wchecker) stepConsumer(s wstate) (wstate, string, bool) {
	switch s.cpc {
	case wTop:
		if s.queue > 0 {
			s.queue--
			s.consumed++
			s.cpc = c.afterConsume(s.consumed)
			return s, "C dequeue-ok", true
		}
		s.cpc = wClear
		return s, "C dequeue-empty", true

	case wClear:
		s.awake = false
		s.cpc = wDeq2
		return s, "C awake=0", true

	case wDeq2:
		if s.queue > 0 {
			s.queue--
			s.consumed++
			s.cpc = wDrain
			return s, "C deq2-ok", true
		}
		s.cpc = wPark
		return s, "C deq2-empty", true

	case wDrain:
		old := s.awake
		s.awake = true
		if old {
			s.cpc = wDrainP
		} else {
			s.cpc = c.afterConsume(s.consumed)
		}
		return s, "C tas(awake)", true

	case wDrainP:
		// Claim the pending redundant V. In waiting-array mode a count
		// of zero means the producer has not issued it yet; the claim
		// would park and be granted directly — same observable step.
		if s.sem > 0 {
			s.sem--
			s.cpc = c.afterConsume(s.consumed)
			return s, "C P(drain)", true
		}
		return s, "", false

	case wPark:
		// pCtxArray: count fast path, else park on a fresh slot.
		if s.sem > 0 {
			s.sem--
			s.cpc = wWake
			return s, "C PCtx-fast", true
		}
		s.slot = slotWaiting
		s.cpc = wParked
		return s, "C park(slot)", true

	case wParked:
		if s.slot == slotGranted {
			// The grant hand-off: the token was delivered directly to
			// this slot, never through the count.
			s.slot = slotNone
			s.cpc = wWake
			return s, "C granted", true
		}
		return s, "", false // parked until a V grants (or a cancel strikes)

	case wWake:
		s.awake = true
		s.cpc = wTop
		return s, "C awake=1", true

	case wCxl:
		// consumerWaitCtx cancel path: TAS the flag back; if a producer
		// had signalled, a token is owed — claim it before returning.
		old := s.awake
		s.awake = true
		if old {
			s.cpc = wCxlP
		} else {
			s.cpc = wTop // retry (the caller re-enters the wait)
		}
		return s, "C cxl-tas", true

	case wCxlP:
		// Plain P on the waiting array: count fast path, else park.
		if s.sem > 0 {
			s.sem--
			s.cpc = wCxlDeq
			return s, "C cxl-P-fast", true
		}
		s.slot = slotWaiting
		s.cpc = wCxlParked
		return s, "C cxl-park", true

	case wCxlParked:
		if s.slot == slotGranted {
			s.slot = slotNone
			s.cpc = wCxlDeq
			return s, "C cxl-granted", true
		}
		return s, "", false

	case wCxlDeq:
		if s.queue > 0 {
			s.queue--
			s.consumed++
			s.cpc = c.afterConsume(s.consumed)
			return s, "C cxl-deq-ok", true
		}
		s.cpc = wTop
		return s, "C cxl-deq-empty", true
	}
	return s, "", false
}

// stepCancel injects a cancellation at a parked PCtx, if the budget
// allows. Two races are distinguished, exactly as pCtxArray resolves
// them under its lock:
//   - slot still waiting: the slot becomes a hole (absorbed for free
//     by the next V's pop loop — no state needed) and the consumer
//     takes the cancel path;
//   - slot already granted: the grant won the race, so the token is
//     handed back — with no other waiter, to the count.
//
// Only the cancellable park (wParked) cancels; wCxlParked models a
// plain P, which has no cancel path.
func (c *wchecker) stepCancel(s wstate) (wstate, string, bool) {
	if s.cpc != wParked || int(s.cancels) >= c.cfg.MaxCancels {
		return s, "", false
	}
	s.cancels++
	if s.slot == slotGranted {
		s.sem++ // hand-back: the granted token returns to the count
		s.slot = slotNone
		s.cpc = wCxl
		return s, "X cancel-after-grant", true
	}
	s.slot = slotNone // the slot is a hole; V absorbs it for free
	s.cpc = wCxl
	return s, "X cancel-waiting", true
}

// afterConsume mirrors checker.afterConsume for the waiting-array pcs.
func (c *wchecker) afterConsume(consumed int8) int8 {
	if consumed >= c.target {
		return wDone
	}
	return wTop
}

// stepWProducer executes producer i's enabled step: the TAS+V
// discipline with V replaced by the waiting-array vArray — direct
// grant to a parked slot, else a count credit.
func (c *wchecker) stepWProducer(s wstate, i int) (wstate, string, bool) {
	name := func(step string) string { return fmt.Sprintf("P%d.%s", i+1, step) }
	switch s.ppc[i] {
	case pEnq:
		s.queue++
		s.sent[i]++
		s.ppc[i] = pTAS
		return s, name("enqueue"), true

	case pTAS:
		old := s.awake
		s.awake = true
		if !old {
			s.ppc[i] = pV
		} else {
			s.ppc[i] = c.nextWMsg(s, i)
		}
		return s, name("tas(awake)"), true

	case pV:
		// vArray: pop the oldest live waiter (holes were already
		// absorbed conceptually — see stepCancel) and grant directly;
		// with no waiter the token goes to the count.
		if s.slot == slotWaiting {
			s.slot = slotGranted
		} else {
			s.sem++
		}
		s.ppc[i] = c.nextWMsg(s, i)
		return s, name("V"), true
	}
	return s, "", false
}

func (c *wchecker) nextWMsg(s wstate, i int) int8 {
	if int(s.sent[i]) >= c.cfg.Msgs {
		return pDone
	}
	return pEnq
}
