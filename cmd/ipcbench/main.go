// Command ipcbench regenerates the paper's tables and figures from the
// discrete-event reproduction (and the live-runtime ablations).
//
// Usage:
//
//	ipcbench                    # run every experiment
//	ipcbench -exp fig2          # run one experiment
//	ipcbench -exp fig11 -msgs 5000
//	ipcbench -list              # list experiment ids
//	ipcbench -quick             # faster, lower-precision sweeps
//	ipcbench -records           # also dump the flat record map
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ulipc/internal/experiment"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run (default: all)")
		msgs    = flag.Int("msgs", 0, "requests per client (0 = experiment default)")
		quick   = flag.Bool("quick", false, "faster, lower-precision sweeps")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		records = flag.Bool("records", false, "also print the machine-readable record map")
		format  = flag.String("format", "text", "output format: text (tables + ASCII plots) or md (Markdown tables)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiment.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiment.Options{Msgs: *msgs, Quick: *quick}
	var toRun []experiment.Experiment
	if *exp == "" {
		toRun = experiment.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := experiment.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "ipcbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}

	for _, e := range toRun {
		rep, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipcbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *format == "md" {
			rep.RenderMarkdown(os.Stdout)
		} else {
			rep.Render(os.Stdout)
		}
		if *records {
			rep.RenderRecords(os.Stdout)
			fmt.Println()
		}
	}
}
