package experiment

import (
	"fmt"

	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/workload"
)

// RunArch compares the paper's evaluation architecture (one
// single-threaded server, a shared receive queue, a reply queue per
// client) against the alternative Section 2.1 sketches (a server thread
// per client with a full-duplex queue pair per connection), on both the
// uniprocessor and the multiprocessor models.
func RunArch(opt Options) (*Report, error) {
	r := newReport("arch", "Server architecture: shared queue vs thread-per-client",
		"Section 2.1: a single receive queue is adequate for multiple clients; thread-per-client doubles the queues and, on a uniprocessor, forfeits the server's request batching")
	msgs := opt.msgs()

	for _, m := range []*machine.Model{machine.SGIIndy(), machine.SGIChallenge8()} {
		clients := clientSweep(opt.Quick)
		if m.CPUs > 1 {
			clients = mpClientSweep(opt.Quick)
		}
		shared, _, err := sweep(workload.Config{Machine: m, Alg: core.BSLS, MaxSpin: 20}, clients, msgs)
		if err != nil {
			return nil, err
		}
		duplex, _, err := sweep(workload.Config{
			Machine: m, Alg: core.BSLS, MaxSpin: 20, Arch: workload.ArchThreadPerClient,
		}, clients, msgs)
		if err != nil {
			return nil, err
		}
		curves := map[string][]float64{"shared-queue": shared, "thread-per-client": duplex}
		order := []string{"shared-queue", "thread-per-client"}
		r.Tables = append(r.Tables, throughputTable(
			fmt.Sprintf("Architecture — %s, BSLS-20 (messages/ms)", m.Name), clients, curves, order))
		r.Plots = append(r.Plots, throughputPlot(
			fmt.Sprintf("Architecture — %s", m.Name), clients, curves, order))
		short := "uni"
		if m.CPUs > 1 {
			short = "mp"
		}
		r.recordCurve("arch/"+short+"/shared", clients, shared)
		r.recordCurve("arch/"+short+"/duplex", clients, duplex)
	}
	r.note("On the uniprocessor the shared queue wins under load: one server activation drains every client's request, while per-client handlers each pay their own wake-up and switch.")
	r.note("On the multiprocessor the per-client handlers can run in parallel, so thread-per-client narrows the gap (at the cost of a process and two queues per client).")
	return r, nil
}
