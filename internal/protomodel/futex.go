// Futex model: exhaustive interleaving checking for livebind's
// cross-process semaphore (ProcSem) — the futex-word rendezvous that
// replaces the in-process mutex+cond semaphore when the two sides of a
// binding live in different address spaces.
//
// The protocol under test is the classic three-word discipline:
//
//	waiter:  try-acquire; dead-check; waiters++; FUTEX_WAIT(count, 0);
//	         waiters--; retry
//	waker:   count++; if waiters != 0 { FUTEX_WAKE(count) }
//
// Every numbered step is one atomic transition here. The single
// non-obvious ingredient is the kernel's val-check: FUTEX_WAIT parks
// only if the count word still holds the expected value (zero), and
// returns EAGAIN otherwise — one atomic compare-and-park. The model
// demonstrates that this is load-bearing, not an optimisation:
//
//   - with the val-check, no interleaving of wakers and waiters
//     deadlocks, and every terminal state conserves tokens
//     (consumed + count left over == produced);
//   - with NoValCheck (a waiter that parks unconditionally, as a naive
//     "sleep then re-check" implementation would), the checker finds
//     the lost-wake interleaving: the waker's count++ and its
//     waiters==0 skip both land in the window between the waiter's
//     failed try-acquire and its waiters++, and the waiter parks on a
//     token it will never be shown;
//   - with Crash, a waker may die at the worst possible instants —
//     before its increment, or between the increment and the wake it
//     now owes — and the sweeper's poison (dead flag folded into the
//     futex word, then wake-all) still lets every waiter terminate.
//
// The real ProcSem additionally bounds each park with a wait slice, so
// even a hypothetical lost wake costs one slice, not forever. The model
// deliberately omits the slice: it is the backstop, and modelling it
// would mask exactly the bugs this file exists to rule out.
package protomodel

import "fmt"

const (
	maxFWakers  = 3
	maxFWaiters = 2
)

// FutexConfig selects the futex scenario to model-check.
type FutexConfig struct {
	Wakers  int // waker processes in [1,3]
	Tokens  int // tokens each waker releases, in [1,3]
	Waiters int // waiter processes in [1,2]; Wakers*Tokens must split evenly

	// NoValCheck models the naive variant: FUTEX_WAIT parks without
	// re-checking the word. Expected to deadlock (the lost wake).
	NoValCheck bool

	// Crash lets one waker die mid-protocol (before an increment, or
	// between an increment and its wake); a sweeper transition then
	// poisons the semaphore, which must rescue every parked waiter.
	Crash bool
}

// FutexResult summarises the exhaustive exploration.
type FutexResult struct {
	States       int      // distinct states explored
	Deadlock     bool     // some interleaving wedges the system
	DeadlockPath []string // step labels of one wedging interleaving
	Conserved    bool     // every terminal state: consumed+leftover == produced
	Terminal     int      // number of distinct terminal states
	Crashed      bool     // at least one explored path crashed a waker
	Rescued      bool     // some waiter exited via poison (without a token)
}

// Waiter program counters: the ProcSem.P loop.
const (
	fTry    = iota // try-acquire (count CAS)
	fDead          // poison check
	fIncW          // waiters++
	fWait          // FUTEX_WAIT: val-check, then park or EAGAIN
	fParked        // in the kernel; leaves only by a wake pulse
	fUnpark        // waiters--, then retry
	fDone
)

// Waker program counters.
const (
	wkInc     = iota // count++
	wkChk            // waiters != 0 ?
	wkWake           // FUTEX_WAKE(1)
	wkDone           // all tokens released
	wkCrashed        // SIGKILL'd (Crash mode)
)

// fstate is the full exploration state (a value type used as a map
// key, so exploration memoises on the complete state).
type fstate struct {
	count    int8 // the futex word (token count)
	waiters  int8 // advertised-waiter word
	poisoned bool // dead flag + poison bit (one step in ProcSem.Poison)

	wpc      [maxFWaiters]int8
	consumed [maxFWaiters]int8

	kpc      [maxFWakers]int8
	released [maxFWakers]int8

	crashed bool // one crash allowed per path
}

type fsucc struct {
	s     fstate
	label string
}

// FutexCheck exhaustively explores every interleaving of the futex
// wait/wake protocol for the given scenario.
func FutexCheck(cfg FutexConfig) (FutexResult, error) {
	if cfg.Wakers < 1 || cfg.Wakers > maxFWakers {
		return FutexResult{}, fmt.Errorf("protomodel: wakers must be in [1,%d]", maxFWakers)
	}
	if cfg.Tokens < 1 || cfg.Tokens > 3 {
		return FutexResult{}, fmt.Errorf("protomodel: tokens must be in [1,3]")
	}
	if cfg.Waiters < 1 || cfg.Waiters > maxFWaiters {
		return FutexResult{}, fmt.Errorf("protomodel: waiters must be in [1,%d]", maxFWaiters)
	}
	total := cfg.Wakers * cfg.Tokens
	if total%cfg.Waiters != 0 {
		return FutexResult{}, fmt.Errorf("protomodel: %d tokens do not split over %d waiters", total, cfg.Waiters)
	}
	c := &fchecker{cfg: cfg, quota: int8(total / cfg.Waiters), seen: map[fstate]bool{}, conserved: true}
	var init fstate
	for i := 0; i < cfg.Waiters; i++ {
		init.wpc[i] = fTry
	}
	for i := 0; i < cfg.Wakers; i++ {
		init.kpc[i] = wkInc
	}
	c.explore(init, nil)
	c.res.States = len(c.seen)
	c.res.Conserved = c.res.Terminal > 0 && c.conserved
	return c.res, nil
}

type fchecker struct {
	cfg       FutexConfig
	quota     int8
	seen      map[fstate]bool
	res       FutexResult
	conserved bool
}

func (c *fchecker) explore(s fstate, path []string) {
	if c.seen[s] {
		return
	}
	c.seen[s] = true

	var succs []fsucc
	for i := 0; i < c.cfg.Waiters; i++ {
		succs = c.stepWaiter(succs, s, i)
	}
	for i := 0; i < c.cfg.Wakers; i++ {
		succs = c.stepWaker(succs, s, i)
	}
	succs = c.stepSweeper(succs, s)

	if len(succs) > 0 {
		for _, n := range succs {
			c.explore(n.s, pathAppend(path, n.label))
		}
		return
	}

	done := true
	for i := 0; i < c.cfg.Waiters; i++ {
		if s.wpc[i] != fDone {
			done = false
		}
	}
	for i := 0; i < c.cfg.Wakers; i++ {
		if s.kpc[i] != wkDone && s.kpc[i] != wkCrashed {
			done = false
		}
	}
	if done {
		c.res.Terminal++
		var consumed, released int8
		for i := 0; i < c.cfg.Waiters; i++ {
			consumed += s.consumed[i]
		}
		for i := 0; i < c.cfg.Wakers; i++ {
			released += s.released[i]
		}
		if consumed+s.count != released {
			c.conserved = false
		}
		return
	}
	if !c.res.Deadlock {
		c.res.Deadlock = true
		c.res.DeadlockPath = append([]string(nil), path...)
	}
}

func (c *fchecker) stepWaiter(succs []fsucc, s fstate, i int) []fsucc {
	n := s
	switch s.wpc[i] {
	case fTry:
		if s.count > 0 {
			n.count--
			n.consumed[i]++
			if n.consumed[i] == c.quota {
				n.wpc[i] = fDone
			}
			return append(succs, fsucc{n, flabel("W%d acquire", i)})
		}
		n.wpc[i] = fDead
		return append(succs, fsucc{n, flabel("W%d acquire-miss", i)})

	case fDead:
		if s.poisoned {
			// ProcSem.P on a poisoned semaphore returns without a
			// token; the caller's port state reports the peer death.
			n.wpc[i] = fDone
			c.res.Rescued = true
			return append(succs, fsucc{n, flabel("W%d poisoned-exit", i)})
		}
		n.wpc[i] = fIncW
		return append(succs, fsucc{n, flabel("W%d alive", i)})

	case fIncW:
		n.waiters++
		n.wpc[i] = fWait
		return append(succs, fsucc{n, flabel("W%d waiters++", i)})

	case fWait:
		// The kernel's atomic val-check: park only if the word still
		// reads zero. ProcSem's poison bit lives in this same word, so
		// a poisoned semaphore fails the check too.
		if !c.cfg.NoValCheck && (s.count != 0 || s.poisoned) {
			n.wpc[i] = fUnpark
			return append(succs, fsucc{n, flabel("W%d EAGAIN", i)})
		}
		n.wpc[i] = fParked
		return append(succs, fsucc{n, flabel("W%d park", i)})

	case fParked:
		return succs // leaves only by a wake pulse

	case fUnpark:
		n.waiters--
		n.wpc[i] = fTry
		return append(succs, fsucc{n, flabel("W%d waiters--", i)})
	}
	return succs
}

func (c *fchecker) stepWaker(succs []fsucc, s fstate, i int) []fsucc {
	// The crash fault: one waker may die before an increment or while
	// owing a wake. Modelled as extra transitions out of the live
	// states, so every grant-vs-death race is explored both ways.
	if c.cfg.Crash && !s.crashed && (s.kpc[i] == wkInc || s.kpc[i] == wkChk || s.kpc[i] == wkWake) {
		n := s
		n.kpc[i] = wkCrashed
		n.crashed = true
		succs = append(succs, fsucc{n, flabel("K%d crash", i)})
	}
	n := s
	switch s.kpc[i] {
	case wkInc:
		n.count++
		n.released[i]++
		n.kpc[i] = wkChk
		return append(succs, fsucc{n, flabel("K%d count++", i)})

	case wkChk:
		if s.waiters != 0 {
			n.kpc[i] = wkWake
			return append(succs, fsucc{n, flabel("K%d waiters!=0", i)})
		}
		n.kpc[i] = c.afterRelease(n, i)
		return append(succs, fsucc{n, flabel("K%d skip-wake", i)})

	case wkWake:
		// FUTEX_WAKE(1): the kernel picks an arbitrary parked waiter,
		// so each choice is its own branch; with nobody parked the
		// wake is a no-op (the racing waiter's val-check covers it).
		next := c.afterRelease(n, i)
		woke := false
		for w := 0; w < c.cfg.Waiters; w++ {
			if s.wpc[w] == fParked {
				wn := s
				wn.wpc[w] = fUnpark
				wn.kpc[i] = next
				succs = append(succs, fsucc{wn, flabel2("K%d wake W%d", i, w)})
				woke = true
			}
		}
		if !woke {
			n.kpc[i] = next
			succs = append(succs, fsucc{n, flabel("K%d wake-noop", i)})
		}
		return succs
	}
	return succs
}

func (c *fchecker) afterRelease(s fstate, i int) int8 {
	if s.released[i] == int8(c.cfg.Tokens) {
		return wkDone
	}
	return wkInc
}

// stepSweeper models the recovery sweeper's poison: once a crash has
// been (nondeterministically) detected, set the dead flag, fold the
// poison into the futex word, and wake every parked waiter — ProcSem's
// Poison as one locked step against this semaphore's words.
func (c *fchecker) stepSweeper(succs []fsucc, s fstate) []fsucc {
	if !s.crashed || s.poisoned {
		return succs
	}
	n := s
	n.poisoned = true
	for w := 0; w < c.cfg.Waiters; w++ {
		if n.wpc[w] == fParked {
			n.wpc[w] = fUnpark
		}
	}
	c.res.Crashed = true
	return append(succs, fsucc{n, "S poison+wake-all"})
}

func flabel(format string, i int) string { return fmt.Sprintf(format, i) }
func flabel2(format string, i, j int) string {
	return fmt.Sprintf(format, i, j)
}
