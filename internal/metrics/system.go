package metrics

import "ulipc/internal/obs"

// SystemSnapshot is the histogram-aware (v2) system metrics view: the
// classic per-process counter snapshots plus, when an observer was
// attached, the per-protocol phase-latency histograms. The counters
// answer "how many" (yields, Ps, Vs, blocks); the histograms answer
// "how long" (round trip, queue wait, spin, sleep) — the paper's Table
// analyses need both.
type SystemSnapshot struct {
	Procs  []Snapshot          `json:"procs"`
	Total  Snapshot            `json:"total"`
	Protos []obs.ProtoSnapshot `json:"protos,omitempty"`
}

// SystemSnapshot builds the v2 view from a metrics set and an optional
// observer (nil yields counters only).
func (s *Set) SystemSnapshot(o *obs.Observer) SystemSnapshot {
	return SystemSnapshot{
		Procs:  s.Snapshots(),
		Total:  s.Total(),
		Protos: o.Snapshot(),
	}
}
