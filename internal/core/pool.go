package core

import (
	"sync/atomic"

	"ulipc/internal/metrics"
)

// Worker-pool server: Section 2.1 contemplates "multiple clients and
// multiple server threads" on the shared queues, but the paper's single
// awake flag cannot represent several sleeping workers — one V satisfies
// the flag and a second sleeping worker is never woken even though its
// message is queued (internal/protomodel finds the interleaving
// exhaustively). The pool uses the counted-waiters discipline instead,
// verified by the same model checker:
//
//   - a worker REGISTERS (waiters++) before its re-check, and sleeps if
//     the re-check still finds nothing;
//   - a producer, after enqueueing, CLAIMS a waiter (atomic decrement if
//     positive) and only then issues the V;
//   - a worker whose re-check found a message tries to unregister
//     (atomic decrement if positive); if it was already claimed it just
//     moves on — the stale V wakes some worker spuriously, and every
//     woken worker re-checks the queue before sleeping again. Draining
//     the V here instead would steal a live wake-up from a sibling (the
//     checker finds that deadlock too).

// PoolPort is a queue endpoint whose consumer side is a pool of workers
// synchronised by a waiter counter.
type PoolPort interface {
	TryEnqueue(m Msg) bool
	TryDequeue() (Msg, bool)
	Empty() bool

	// RegisterWaiter increments the waiter count (a worker is about to
	// re-check and then sleep).
	RegisterWaiter()

	// TryUnregisterWaiter atomically decrements the waiter count if it
	// is positive; false means a producer already claimed this
	// registration (its V is, or will be, pending).
	TryUnregisterWaiter() bool

	// ClaimWaiter atomically decrements the waiter count if it is
	// positive; true directs the producer to issue the wake-up V.
	ClaimWaiter() bool

	// Sem identifies the counting semaphore the pool sleeps on.
	Sem() SemID
}

// poolWake is the producer-side wake: claim a waiter, then V.
func poolWake(q PoolPort, a Actor) {
	if q.ClaimWaiter() {
		a.V(q.Sem())
	}
}

// PoolCoordinator is the shared bookkeeping of one worker pool:
// connection accounting and shutdown broadcast. All fields are atomic so
// the same type serves the live runtime and the simulator.
type PoolCoordinator struct {
	Workers int

	connected atomic.Int64
	ever      atomic.Bool
	served    atomic.Int64
	stop      atomic.Bool
}

// Stopped reports whether the pool has been shut down.
func (pc *PoolCoordinator) Stopped() bool { return pc.stop.Load() }

// Served returns the number of data requests handled across workers.
func (pc *PoolCoordinator) Served() int64 { return pc.served.Load() }

// PoolWorker is one server thread of a worker pool. All workers of a
// pool share the receive PoolPort, the reply ports and the coordinator;
// each has its own Actor (its own process/goroutine context).
type PoolWorker struct {
	Alg     Algorithm
	MaxSpin int
	Rcv     PoolPort
	Replies []Port
	A       Actor
	C       *PoolCoordinator
	M       *metrics.Proc
}

func (w *PoolWorker) maxSpin() int {
	if w.MaxSpin <= 0 {
		return DefaultMaxSpin
	}
	return w.MaxSpin
}

// Receive returns the next request, or false when the pool has shut
// down. Wake-ups are re-checked against both the queue and the stop
// flag, so spurious wakes (stale claimed Vs, shutdown broadcast) are
// absorbed here.
func (w *PoolWorker) Receive() (Msg, bool) {
	for {
		if w.C.Stopped() {
			return Msg{}, false
		}
		if m, ok := w.Rcv.TryDequeue(); ok {
			if w.M != nil {
				w.M.MsgsReceived.Add(1)
			}
			return m, true
		}
		switch w.Alg {
		case BSS:
			// Busy-wait with stop checks; no registration needed.
			w.A.BusyWait()
			continue
		case BSWY:
			w.A.Yield()
		case BSLS:
			spinPoll(w.Rcv, w.A, w.maxSpin(), w.M)
		}
		w.Rcv.RegisterWaiter()
		if m, ok := w.Rcv.TryDequeue(); ok {
			// Late success: unregister, or — if a producer claimed us —
			// leave the stale V for a sibling's re-check cycle.
			w.Rcv.TryUnregisterWaiter()
			if w.M != nil {
				w.M.MsgsReceived.Add(1)
			}
			return m, true
		}
		if w.C.Stopped() {
			// Don't park across shutdown; the registration is stale but
			// harmless (no producer will claim it).
			return Msg{}, false
		}
		w.A.P(w.Rcv.Sem())
		// Woken (possibly spuriously): loop to re-check.
	}
}

// Reply sends a response to the client and wakes it if needed. Reply
// queues have a single consumer each, so the paper's flag protocol
// applies unchanged; a synchronous client has at most one outstanding
// request, so no two workers touch the same reply queue concurrently.
func (w *PoolWorker) Reply(client int32, m Msg) {
	if client < 0 || int(client) >= len(w.Replies) {
		return // hostile/corrupted reply channel: drop
	}
	q := w.Replies[client]
	if w.Alg == BSS {
		busySpinUntil(w.A, func() bool { return q.TryEnqueue(m) })
		return
	}
	enqueueOrSleep(q, w.A, m)
	wakeConsumer(q, w.A)
}

// Serve runs this worker's echo loop until the pool shuts down (all
// clients disconnected). The worker that processes the last disconnect
// broadcasts shutdown by waking every sibling.
func (w *PoolWorker) Serve(work func(*Msg)) {
	for {
		m, ok := w.Receive()
		if !ok {
			return
		}
		if client := m.Client; client < 0 || int(client) >= len(w.Replies) {
			continue
		}
		switch m.Op {
		case OpConnect:
			w.C.connected.Add(1)
			w.C.ever.Store(true)
			w.Reply(m.Client, m)
		case OpDisconnect:
			left := w.C.connected.Add(-1)
			w.Reply(m.Client, m)
			if w.C.ever.Load() && left == 0 {
				w.C.stop.Store(true)
				// Shutdown broadcast: unconditional Vs so parked
				// siblings wake, observe the stop flag and exit.
				for i := 0; i < w.C.Workers; i++ {
					w.A.V(w.Rcv.Sem())
				}
				return
			}
		case OpWork:
			if work != nil {
				work(&m)
			}
			w.C.served.Add(1)
			w.Reply(m.Client, m)
		default: // OpEcho
			w.C.served.Add(1)
			w.Reply(m.Client, m)
		}
	}
}

// PoolClient is the client side of a worker-pool server: requests go to
// the shared pool queue with claim-based wake-ups; replies arrive on the
// client's own single-consumer queue using the paper's flag protocol.
type PoolClient struct {
	ID      int32
	Alg     Algorithm
	MaxSpin int
	Srv     PoolPort // enqueue endpoint of the pool's receive queue
	Rcv     Port     // dequeue endpoint of this client's reply queue
	A       Actor
	M       *metrics.Proc
}

func (c *PoolClient) maxSpin() int {
	if c.MaxSpin <= 0 {
		return DefaultMaxSpin
	}
	return c.MaxSpin
}

// Send performs a synchronous exchange with the worker pool.
func (c *PoolClient) Send(m Msg) Msg {
	m.Client = c.ID
	if c.M != nil {
		defer c.M.MsgsSent.Add(1)
	}
	if c.Alg == BSS {
		busySpinUntil(c.A, func() bool { return c.Srv.TryEnqueue(m) })
		var ans Msg
		busySpinUntil(c.A, func() bool {
			var ok bool
			ans, ok = c.Rcv.TryDequeue()
			return ok
		})
		return ans
	}
	for !c.Srv.TryEnqueue(m) {
		c.A.SleepSec(1)
	}
	poolWake(c.Srv, c.A)
	switch c.Alg {
	case BSW:
		return consumerWait(c.Rcv, c.A, nil)
	case BSWY:
		c.A.BusyWait()
		return consumerWait(c.Rcv, c.A, c.A.BusyWait)
	case BSLS:
		spinPoll(c.Rcv, c.A, c.maxSpin(), c.M)
		return consumerWait(c.Rcv, c.A, c.A.BusyWait)
	}
	panic("core: unknown algorithm")
}
