package sched

import "ulipc/internal/sim"

// Degrading models the dynamically degrading (aging) priority schedulers
// of IRIX 6.2 and AIX 4.1 (Section 2.2 of the paper). A process's
// effective priority drops one level per UsageQuantum of recently
// consumed CPU; off-CPU time forgives usage at DecayPerUs nanoseconds per
// microsecond. On a yield the scheduler prefers the incumbent on priority
// ties, which is exactly the behaviour that makes a spinning process
// perform ~2.5 yields before the OS finally switches: "it is only after
// the active process has accumulated sufficient execution time that its
// priority is degraded enough to warrant a full context switch."
type Degrading struct {
	name         string
	usageQuantum float64
	decayPerUs   float64
	quantum      sim.Time
	q            runq
	k            *sim.Kernel
}

// NewDegrading builds a degrading-priority policy with the machine's
// aging parameters. The name distinguishes flavours in reports.
func NewDegrading(name string) *Degrading {
	return &Degrading{name: name}
}

// Name implements sim.Scheduler.
func (d *Degrading) Name() string { return d.name }

// Attach implements sim.Scheduler.
func (d *Degrading) Attach(k *sim.Kernel) {
	d.k = k
	m := k.Machine()
	d.usageQuantum = float64(m.UsageQuantum)
	d.decayPerUs = m.DecayPerUs
	d.quantum = m.Quantum
}

// decay lazily forgives usage for time spent off-CPU.
func (d *Degrading) decay(p *sim.Proc) {
	now := d.k.Now()
	dt := now - p.UsageStamp
	if dt > 0 {
		p.Usage -= d.decayPerUs * float64(dt) / 1000.0
		if p.Usage < 0 {
			p.Usage = 0
		}
	}
	p.UsageStamp = now
}

// prio returns the effective (level-quantised) priority of p.
func (d *Degrading) prio(p *sim.Proc) float64 {
	d.decay(p)
	level := int(p.Usage / d.usageQuantum)
	return float64(p.BasePrio - level)
}

// Ready implements sim.Scheduler.
func (d *Degrading) Ready(p *sim.Proc) { d.q.add(p) }

// Pick implements sim.Scheduler.
func (d *Degrading) Pick(cpu int, incumbent *sim.Proc) *sim.Proc {
	return d.q.pickBest(incumbent, d.prio)
}

// Steal implements sim.Scheduler.
func (d *Degrading) Steal(p *sim.Proc) bool { return d.q.remove(p) }

// OnYield implements sim.Scheduler. Usage was already charged for the
// yield syscall itself; degrading schedulers apply no extra penalty.
func (d *Degrading) OnYield(p *sim.Proc) {}

// Charge implements sim.Scheduler.
func (d *Degrading) Charge(p *sim.Proc, dur sim.Time) {
	d.decay(p)
	p.Usage += float64(dur)
}

// QuantumFor implements sim.Scheduler.
func (d *Degrading) QuantumFor(p *sim.Proc) sim.Time { return d.quantum }

// ReadyCount implements sim.Scheduler.
func (d *Degrading) ReadyCount() int { return d.q.len() }
