package livebind

import (
	"context"
	"sync"

	"ulipc/internal/core"
)

// Waiting-array mode for Semaphore.
//
// The baseline Semaphore parks plain P callers on a single sync.Cond
// and cancellable PCtx callers on an unbounded slice that cancellation
// scans in O(n). Under heavy oversubscription both are convoy shapes:
// cond Broadcast wakes a herd to race for one token, and the slice scan
// makes cancel cost grow with the number of co-waiters.
//
// The waiting array replaces both with one FIFO ring of per-waiter
// slots. Every waiter — plain or cancellable — parks on its own
// buffered channel; V pops the head slot and hands the token DIRECTLY
// to that waiter (one channel send, one goroutine made runnable, no
// herd), skipping and recycling cancelled holes as it walks. Cancel
// marks the waiter's own slot in place, O(1), leaving a hole for V or
// the compactor to absorb. Token conservation is the same invariant the
// baseline proves the long way around: a token is either in the count
// or in exactly one granted slot, a cancelled waiter never consumes
// one, and a waiter cancelled after being granted hands its token back
// (to the next live slot, else to the count).
//
// Slots are pooled: a slot leaves the ring with its channel drained
// before reuse, so a grant from a previous life can never leak into the
// next waiter's park.

// waSlot states, guarded by the owning Semaphore's mutex.
const (
	waWaiting   int8 = iota // parked, in the ring
	waGranted               // V/hand-back delivered a token
	waCancelled             // waiter gave up; slot is a hole in the ring
	waClosed                // Close released the waiter without a token
)

// waSlot is one parked waiter's private hand-off cell. The channel has
// capacity 1 so granters never block while holding the semaphore lock;
// state transitions happen under that lock before the send, so a waiter
// that receives can trust the state it then reads.
type waSlot struct {
	ch    chan struct{}
	state int8
	pctx  bool // cancellable (PCtx) waiter, for the diagnostics split
}

// waitArray is the ring of parked waiters. ring[head:] is the active
// FIFO region; holes counts cancelled slots still inside it.
type waitArray struct {
	ring   []*waSlot
	head   int
	holes  int
	npctx  int // parked cancellable waiters (Waiters())
	nplain int // parked plain-P waiters (Sleeping())
	pool   sync.Pool
}

func newWaitArray() *waitArray { return &waitArray{} }

// getSlot takes a slot from the pool (or allocates) and resets it for a
// fresh park. Caller need not hold the lock.
func (wa *waitArray) getSlot(pctx bool) *waSlot {
	if v := wa.pool.Get(); v != nil {
		w := v.(*waSlot)
		w.state = waWaiting
		w.pctx = pctx
		return w
	}
	return &waSlot{ch: make(chan struct{}, 1), pctx: pctx}
}

// putSlot drains any unconsumed grant and returns the slot to the pool.
// Only call once the slot can no longer be sent to (it has left the
// ring, or its waiter consumed the send).
func (wa *waitArray) putSlot(w *waSlot) {
	select {
	case <-w.ch:
	default:
	}
	wa.pool.Put(w)
}

// pushLocked appends a parked waiter; caller holds the semaphore mutex.
func (wa *waitArray) pushLocked(w *waSlot) {
	wa.ring = append(wa.ring, w)
	if w.pctx {
		wa.npctx++
	} else {
		wa.nplain++
	}
}

// popLocked removes and returns the oldest live waiter, absorbing (and
// recycling) cancelled holes on the way. Returns nil if no live waiter
// is parked. Caller holds the semaphore mutex.
func (wa *waitArray) popLocked() *waSlot {
	for wa.head < len(wa.ring) {
		w := wa.ring[wa.head]
		wa.ring[wa.head] = nil
		wa.head++
		if wa.head == len(wa.ring) {
			wa.ring = wa.ring[:0]
			wa.head = 0
		}
		if w.state == waCancelled {
			wa.holes--
			wa.putSlot(w)
			continue
		}
		if w.pctx {
			wa.npctx--
		} else {
			wa.nplain--
		}
		return w
	}
	return nil
}

// cancelLocked turns a parked waiter's slot into a hole in place — O(1),
// versus the baseline's O(n) slice scan. When holes dominate the active
// region the ring is compacted, keeping the amortized cost constant
// even under cancel storms with no V traffic to absorb the holes.
// Caller holds the semaphore mutex.
func (wa *waitArray) cancelLocked(w *waSlot) {
	w.state = waCancelled
	wa.holes++
	if w.pctx {
		wa.npctx--
	} else {
		wa.nplain--
	}
	if wa.holes > 16 && wa.holes*2 > len(wa.ring)-wa.head {
		wa.compactLocked()
	}
}

// compactLocked rewrites the ring with only live waiters, recycling the
// holes. Caller holds the semaphore mutex. The in-place copy is safe:
// the write index never overtakes the read index.
func (wa *waitArray) compactLocked() {
	live := wa.ring[:0]
	for _, w := range wa.ring[wa.head:] {
		if w.state == waCancelled {
			wa.holes--
			wa.putSlot(w)
			continue
		}
		live = append(live, w)
	}
	for i := len(live); i < len(wa.ring); i++ {
		wa.ring[i] = nil
	}
	wa.ring = live
	wa.head = 0
}

// pArray is P in waiting-array mode: park on a private slot and wait
// for a direct hand-off (or Close). No cond race — a granted waiter
// owns its token outright.
func (s *Semaphore) pArray() (slept bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if s.count > 0 {
		s.count--
		s.mu.Unlock()
		return false
	}
	w := s.wa.getSlot(false)
	s.wa.pushLocked(w)
	s.mu.Unlock()

	<-w.ch // granted (token is ours) or closed (no token; caller sees port state)
	s.wa.putSlot(w)
	return true
}

// pCtxArray is PCtx in waiting-array mode. Cancellation marks the slot
// a hole in O(1); a grant that raced the cancellation is handed back so
// the token is never lost.
func (s *Semaphore) pCtxArray(ctx context.Context) (slept bool, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, core.ErrShutdown
	}
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		return false, err
	}
	if s.count > 0 {
		s.count--
		s.mu.Unlock()
		return false, nil
	}
	w := s.wa.getSlot(true)
	s.wa.pushLocked(w)
	s.mu.Unlock()

	select {
	case <-w.ch:
		s.mu.Lock()
		granted := w.state == waGranted
		s.mu.Unlock()
		s.wa.putSlot(w)
		if granted {
			return true, nil
		}
		return true, core.ErrShutdown // woken by Close
	case <-ctx.Done():
		s.mu.Lock()
		switch w.state {
		case waGranted:
			// A V (or hand-back) won the race: its token is in our
			// channel. Re-issue it so it is not lost, then recycle the
			// slot (putSlot drains the pending send).
			s.handBackArrayLocked()
			s.mu.Unlock()
			s.wa.putSlot(w)
		case waClosed:
			// Close won the race and already pulled the slot from the
			// ring; no token was granted, nothing to hand back.
			s.mu.Unlock()
			s.wa.putSlot(w)
		default:
			// Still parked: become a hole. The slot stays in the ring
			// until V, Close or the compactor absorbs it.
			s.wa.cancelLocked(w)
			s.mu.Unlock()
		}
		return true, ctx.Err()
	}
}

// handBackArrayLocked re-issues a token whose grantee was cancelled:
// to the oldest live waiter, else to the count. Caller holds s.mu.
func (s *Semaphore) handBackArrayLocked() {
	if w := s.wa.popLocked(); w != nil {
		w.state = waGranted
		w.ch <- struct{}{}
		return
	}
	s.count++
}

// vArray is V in waiting-array mode: O(1) direct hand-off to the oldest
// live waiter (holes are absorbed as they are met), else bump the
// count. Exactly one goroutine is made runnable per delivered token.
func (s *Semaphore) vArray() (woke bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if w := s.wa.popLocked(); w != nil {
		w.state = waGranted
		w.ch <- struct{}{} // capacity 1: never blocks under the lock
		s.mu.Unlock()
		return true
	}
	s.count++
	s.mu.Unlock()
	return false
}

// closeArray releases every parked waiter without granting tokens.
func (s *Semaphore) closeArray() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for {
		w := s.wa.popLocked()
		if w == nil {
			break
		}
		w.state = waClosed
		w.ch <- struct{}{}
	}
	s.mu.Unlock()
}
