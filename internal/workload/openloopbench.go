package workload

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/livebind"
)

// The open-loop overload sweep (`ipcbench -openloop`): for each
// protocol, a closed-loop capacity probe immediately followed by
// open-loop cells at fractions and multiples of that measured capacity
// — interleaved A/B, so each cell's offered rate is anchored to a
// capacity number read from the same machine state moments earlier.
// The headline acceptance: at 2x the measured capacity, goodput should
// hold near the 1x plateau (admission + shedding discard the excess
// cheaply) instead of collapsing, and the admitted messages' latency
// distribution stays bounded by the deadline.

// OpenLoopBenchOptions configures the overload sweep. Zero values pick
// the defaults noted per field.
type OpenLoopBenchOptions struct {
	Algs    []core.Algorithm // default all four protocols
	Clients int              // default 4
	Factors []float64        // offered rate as a multiple of measured capacity; default {0.5, 1, 2}

	Duration time.Duration // arrival window per open-loop cell; default 300ms
	Deadline time.Duration // per-message deadline; default 5ms

	// Burst additionally runs a bursty (on/off) twin after each Poisson
	// cell.
	Burst bool

	// HighWater / RetryCap configure admission for the open-loop cells;
	// defaults 48 and 32 (the closed-loop probes always run with
	// admission disabled — they are the baseline).
	HighWater int
	RetryCap  float64

	Msgs      int // capacity-probe messages per client; default 2000
	MaxSpin   int
	SpinIters int
	Seed      uint64
	Watchdog  time.Duration // per closed-loop probe; default 1 minute
}

func (o *OpenLoopBenchOptions) defaults() {
	if len(o.Algs) == 0 {
		o.Algs = core.Algorithms()
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if len(o.Factors) == 0 {
		o.Factors = []float64{0.5, 1, 2}
	}
	if o.Duration <= 0 {
		o.Duration = 300 * time.Millisecond
	}
	if o.Deadline <= 0 {
		o.Deadline = 5 * time.Millisecond
	}
	if o.HighWater == 0 {
		o.HighWater = 48
	}
	if o.RetryCap == 0 {
		o.RetryCap = 32
	}
	if o.Msgs <= 0 {
		o.Msgs = 2000
	}
	if o.Watchdog <= 0 {
		o.Watchdog = time.Minute
	}
}

// RunOpenLoopBench executes the overload sweep and returns the report.
// Failing cells are recorded with their Error and the sweep continues;
// the combined error names every failure.
func RunOpenLoopBench(opts OpenLoopBenchOptions, progress io.Writer) (*LiveBenchReport, error) {
	opts.defaults()
	rep := &LiveBenchReport{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		MsgsPerCli:   opts.Msgs,
		FutexBackend: livebind.FutexBackend,
	}
	var failures []error
	for _, alg := range opts.Algs {
		for _, factor := range opts.Factors {
			// Interleaved closed-loop probe: the freshest capacity
			// measurement anchors this factor's offered rate, and the
			// probe entry doubles as the A/B baseline (admission and
			// shedding disabled — the bar the doctrine's disabled cost
			// is held to by benchcmp's regular cells).
			capacity, err := openLoopProbe(opts, rep, alg, progress)
			if err != nil {
				failures = append(failures, err)
				continue
			}
			variants := []bool{false}
			if opts.Burst {
				variants = append(variants, true)
			}
			for _, burst := range variants {
				if err := runOpenLoopCell(opts, rep, alg, factor, capacity, burst, progress); err != nil {
					failures = append(failures, err)
				}
			}
		}
	}
	return rep, errors.Join(failures...)
}

// openLoopProbe runs the closed-loop capacity probe, appends its entry
// (queue "openloop-base") and returns the measured capacity in
// messages/second.
func openLoopProbe(opts OpenLoopBenchOptions, rep *LiveBenchReport, alg core.Algorithm, progress io.Writer) (float64, error) {
	res, err := RunLive(LiveConfig{
		Alg:       alg,
		Clients:   opts.Clients,
		Msgs:      opts.Msgs,
		MaxSpin:   opts.MaxSpin,
		SpinIters: opts.SpinIters,
		Watchdog:  opts.Watchdog,
		Observe:   true,
	})
	e := LiveBenchEntry{
		Queue:      "openloop-base",
		RecvKind:   "two-lock",
		ReplyKind:  "spsc",
		Alg:        alg.String(),
		Clients:    opts.Clients,
		MsgsPerCli: opts.Msgs,
		NsPerRTT:   res.RTTMicros * 1e3,
		MsgsPerSec: res.Throughput * 1e3,
		Yields:     res.All.Yields,
		SemP:       res.All.SemP,
		Blocks:     res.All.Blocks,
	}
	if p := res.Phase; p != nil {
		e.RTTP50Ns = p.RTT.Quantile(0.50)
		e.RTTP95Ns = p.RTT.Quantile(0.95)
		e.RTTP99Ns = p.RTT.Quantile(0.99)
		e.RTTMaxNs = float64(p.RTT.Max)
	}
	if err != nil {
		e.Error = err.Error()
	}
	rep.Entries = append(rep.Entries, e)
	if err != nil {
		return 0, fmt.Errorf("open-loop probe %s/%dc: %w", alg, opts.Clients, err)
	}
	if progress != nil {
		fmt.Fprintf(progress, "%-13s %-5s %3dc          %12.0f ns/rtt  %11.0f msgs/s  (capacity probe)\n",
			"openloop-base", e.Alg, opts.Clients, e.NsPerRTT, e.MsgsPerSec)
	}
	return e.MsgsPerSec, nil
}

// runOpenLoopCell runs one open-loop cell at factor x capacity and
// appends its entry (queue "openloop").
func runOpenLoopCell(opts OpenLoopBenchOptions, rep *LiveBenchReport, alg core.Algorithm,
	factor, capacity float64, burst bool, progress io.Writer) error {
	res, err := RunOpenLoop(OpenLoopConfig{
		Alg:       alg,
		Clients:   opts.Clients,
		Rate:      factor * capacity,
		Duration:  opts.Duration,
		Deadline:  opts.Deadline,
		Burst:     burst,
		Seed:      opts.Seed,
		HighWater: opts.HighWater,
		RetryCap:  opts.RetryCap,
		MaxSpin:   opts.MaxSpin,
		SpinIters: opts.SpinIters,
	})
	e := LiveBenchEntry{
		Queue:         "openloop",
		RecvKind:      "two-lock",
		ReplyKind:     "spsc",
		Alg:           alg.String(),
		Clients:       opts.Clients,
		RateFactor:    factor,
		Burst:         burst,
		OfferedPerSec: res.OfferedPerSec,
		GoodputPerSec: res.GoodputPerSec,
		MsgsPerSec:    res.GoodputPerSec,
		Offered:       res.Offered,
		Admitted:      res.Admitted,
		Overloads:     res.All.Overloads,
		Sheds:         res.All.Sheds,
		Expiries:      res.All.Expiries,
		CopyFallbacks: res.All.CopyFallbacks,
		Quarantines:   res.All.Quarantines,
		RTTP50Ns:      res.P50Ns,
		RTTP95Ns:      res.P95Ns,
		RTTP99Ns:      res.P99Ns,
		RTTMaxNs:      res.MaxNs,
		Yields:        res.All.Yields,
		SemP:          res.All.SemP,
		Blocks:        res.All.Blocks,
	}
	cell := fmt.Sprintf("openloop/%s/%dc/x%g", alg, opts.Clients, factor)
	if burst {
		cell += "/burst"
	}
	if err != nil {
		e.Error = err.Error()
		err = fmt.Errorf("open-loop cell %s: %w", cell, err)
	}
	rep.Entries = append(rep.Entries, e)
	if progress != nil {
		tag := fmt.Sprintf("/x%g", factor)
		if burst {
			tag += "/burst"
		}
		if err != nil {
			fmt.Fprintf(progress, "%-13s %-5s %3dc%-10s FAILED: %v\n", "openloop", e.Alg, opts.Clients, tag, err)
		} else {
			fmt.Fprintf(progress, "%-13s %-5s %3dc%-10s offered=%8.0f/s goodput=%8.0f/s p99=%8.0fns sheds=%d rejects=%d\n",
				"openloop", e.Alg, opts.Clients, tag, e.OfferedPerSec, e.GoodputPerSec, e.RTTP99Ns, e.Sheds, e.Overloads)
		}
	}
	return err
}
