// Package queue implements the concurrent FIFO queues the live runtime
// layers the IPC protocols over:
//
//   - TwoLock — the Michael & Scott two-lock queue the paper's evaluation
//     uses ("the evaluation software uses a common implementation of the
//     Michael and Scott two-lock queue").
//   - LockFree — the Michael & Scott non-blocking queue (ablation A2).
//   - Ring — a bounded MPMC ring buffer with per-slot sequence numbers
//     (ablation A2).
//   - SPSC — a cache-line-padded Lamport single-producer/single-consumer
//     ring with cached indices, the live runtime's fast path for
//     per-client reply channels. Unlike the other kinds it is NOT safe
//     for arbitrary concurrency, so the generic constructor New rejects
//     KindSPSC; build one with NewSPSC where the topology is provably
//     SPSC.
//
// All variants are flow-controlled: Enqueue reports false when the queue
// is full (for the list-based queues, when the fixed-size node pool is
// exhausted), which is the condition the protocols' queue-full sleep
// reacts to.
package queue

import (
	"fmt"

	"ulipc/internal/core"
)

// Queue is a concurrent, flow-controlled FIFO of fixed-size messages.
type Queue interface {
	// Enqueue appends m, reporting false if the queue is full.
	Enqueue(m core.Msg) bool
	// Dequeue removes the head message, reporting false if empty.
	Dequeue() (core.Msg, bool)
	// Empty reports whether the queue appears empty (a non-destructive
	// poll; may race with concurrent operations).
	Empty() bool
	// Cap returns the maximum number of queued messages.
	Cap() int
}

// Kind selects a queue implementation.
type Kind int

const (
	KindTwoLock Kind = iota
	KindLockFree
	KindRing
	KindSPSC
)

func (k Kind) String() string {
	switch k {
	case KindTwoLock:
		return "two-lock"
	case KindLockFree:
		return "lock-free"
	case KindRing:
		return "ring"
	case KindSPSC:
		return "spsc"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindByName parses a queue kind name.
func KindByName(s string) (Kind, error) {
	switch s {
	case "two-lock", "twolock", "2lock", "":
		return KindTwoLock, nil
	case "lock-free", "lockfree", "msq":
		return KindLockFree, nil
	case "ring", "mpmc":
		return KindRing, nil
	case "spsc", "lamport":
		return KindSPSC, nil
	}
	return 0, fmt.Errorf("queue: unknown kind %q", s)
}

// Kinds returns the general-purpose (MPMC-safe) implementations in
// presentation order. KindSPSC is deliberately excluded: it is only
// valid where the topology is provably single-producer/single-consumer,
// which generic sweeps over Kinds() cannot guarantee.
func Kinds() []Kind { return []Kind{KindTwoLock, KindLockFree, KindRing} }

// New builds a queue of the given kind with the given capacity.
//
// KindSPSC is rejected here by design: this constructor cannot assert
// the single-producer/single-consumer contract, so callers that can
// must use NewSPSC directly (livebind does this for reply channels).
func New(kind Kind, capacity int) (Queue, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("queue: capacity must be >= 1, got %d", capacity)
	}
	switch kind {
	case KindTwoLock:
		return NewTwoLock(capacity)
	case KindLockFree:
		return NewLockFree(capacity)
	case KindRing:
		return NewRing(capacity)
	case KindSPSC:
		return nil, fmt.Errorf("queue: KindSPSC requires a provably single-producer/single-consumer topology; use NewSPSC at a call site that asserts it")
	}
	return nil, fmt.Errorf("queue: unknown kind %d", kind)
}

// Drain removes and discards every message currently in the queue,
// returning how many were dropped. It is the teardown counterpart of
// the flow-controlled Enqueue: a system shutting down calls it on
// queues whose consumers are gone, so undelivered messages are counted
// rather than silently stranded. Like the underlying Dequeue it is safe
// under concurrency, but the count is exact only once producers have
// stopped.
func Drain(q Queue) int {
	n := 0
	for {
		if _, ok := q.Dequeue(); !ok {
			return n
		}
		n++
	}
}

// DrainFunc is Drain with a per-message callback, for teardown paths
// that must account for resources the discarded messages reference —
// e.g. payload-block leases that would otherwise be stranded with the
// message.
func DrainFunc(q Queue, fn func(core.Msg)) int {
	n := 0
	for {
		m, ok := q.Dequeue()
		if !ok {
			return n
		}
		fn(m)
		n++
	}
}
