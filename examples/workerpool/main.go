// workerpool: multiple server threads on one shared receive queue — the
// Section 2.1 extension. Four workers serve CPU-heavy requests (leibniz
// partial sums) in parallel for eight clients.
//
// The interesting part is invisible: the wake-up discipline. The paper's
// single awake flag loses wake-ups as soon as two workers sleep (run
// `go run ./cmd/ipcrace` for the exhaustive proof); the pool uses the
// counted-waiters discipline verified by the same model checker.
package main

import (
	"fmt"
	"log"
	"sync"

	"ulipc"
)

func main() {
	const (
		workers       = 4
		clients       = 8
		reqsPerClient = 50
		termsPerSlice = 20000
	)

	sys, err := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSW, Clients: clients})
	if err != nil {
		log.Fatal(err)
	}

	pool, err := sys.WorkerPool(workers)
	if err != nil {
		log.Fatal(err)
	}
	var serverWG sync.WaitGroup
	for _, w := range pool {
		serverWG.Add(1)
		go func(w *ulipc.PoolWorker) {
			defer serverWG.Done()
			w.Serve(func(m *ulipc.Msg) {
				// Partial Leibniz sum for slice m.Seq: CPU-bound work a
				// single-threaded server would serialise.
				start := int(m.Seq) * termsPerSlice
				sum := 0.0
				for k := start; k < start+termsPerSlice; k++ {
					term := 1.0 / float64(2*k+1)
					if k%2 == 1 {
						term = -term
					}
					sum += term
				}
				m.Val = sum
			})
		}(w)
	}

	var barrier, wg sync.WaitGroup
	barrier.Add(clients)
	partials := make([]float64, clients)
	for c := 0; c < clients; c++ {
		cl, err := sys.PoolClient(c)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(c int, cl *ulipc.PoolClient) {
			defer wg.Done()
			cl.Send(ulipc.Msg{Op: ulipc.OpConnect})
			barrier.Done()
			barrier.Wait()
			sum := 0.0
			for j := 0; j < reqsPerClient; j++ {
				slice := int32(c*reqsPerClient + j)
				ans := cl.Send(ulipc.Msg{Op: ulipc.OpWork, Seq: slice})
				sum += ans.Val
			}
			partials[c] = sum
			cl.Send(ulipc.Msg{Op: ulipc.OpDisconnect})
		}(c, cl)
	}
	wg.Wait()
	serverWG.Wait()

	pi := 0.0
	for _, p := range partials {
		pi += p
	}
	pi *= 4
	fmt.Printf("workerpool: %d workers served %d requests for %d clients -> pi ~= %.9f\n",
		workers, pool[0].C.Served(), clients, pi)
}
