package shm

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ulipc/internal/core"
)

func segPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "seg")
}

func mustCreate(t *testing.T, cfg SegConfig) (*Seg, string) {
	t.Helper()
	p := segPath(t)
	s, err := CreateFileSeg(p, cfg)
	if errors.Is(err, ErrMapUnsupported) {
		t.Skip("no mapping backend on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, p
}

// Two mappings of the same file in one process are two views of the
// same physical pages: a message written through one must be readable
// through the other, and the pool head is genuinely shared.
func TestSegSharedAcrossMappings(t *testing.T) {
	s1, p := mustCreate(t, SegConfig{Clients: 2, Nodes: 64, RingCap: 8})
	s2, err := MapFileSeg(p)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v1, _ := s1.View()
	v2, _ := s2.View()

	ref, ok := v1.Pool.Alloc()
	if !ok {
		t.Fatal("alloc failed on fresh pool")
	}
	v1.Arena().Node(ref).SetMsg(core.Msg{Op: core.OpEcho, Seq: 42, Val: 3.5, MsgMeta: core.MsgMeta{Client: 1}})
	if !v1.ReqLane(1).TryPush(ref) {
		t.Fatal("push failed on empty lane")
	}

	got, ok := v2.ReqLane(1).TryPop()
	if !ok {
		t.Fatal("second mapping saw an empty lane")
	}
	m := v2.Arena().Node(got).Msg()
	if m.Seq != 42 || m.Val != 3.5 || m.Client != 1 {
		t.Fatalf("message corrupted across mappings: %+v", m)
	}
	v2.Pool.Free(got)
	if free := v1.Pool.FreeCount(); free != 64 {
		t.Fatalf("pool free count %d through first mapping, want 64", free)
	}
}

func TestMapTruncatedFile(t *testing.T) {
	_, p := mustCreate(t, SegConfig{Clients: 1, Nodes: 32, RingCap: 8})

	// Shorter than even the header.
	if err := os.Truncate(p, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := MapFileSeg(p); !errors.Is(err, ErrShortSegment) {
		t.Fatalf("header-short file: got %v, want ErrShortSegment", err)
	}

	// Header intact but the body cut off: the geometry promises more
	// bytes than the file holds.
	s2, p2 := mustCreate(t, SegConfig{Clients: 1, Nodes: 32, RingCap: 8})
	full := s2.Layout().Size
	s2.Close()
	if err := os.Truncate(p2, int64(full/2)); err != nil {
		t.Fatal(err)
	}
	if _, err := MapFileSeg(p2); !errors.Is(err, ErrShortSegment) {
		t.Fatalf("body-short file: got %v, want ErrShortSegment", err)
	}
}

func TestMapBadMagicAndVersion(t *testing.T) {
	s, p := mustCreate(t, SegConfig{Clients: 1, Nodes: 32, RingCap: 8})
	s.Close()

	// Corrupt the magic.
	f, err := os.OpenFile(p, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xde, 0xad}, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := MapFileSeg(p); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v, want ErrBadMagic", err)
	}

	// Fresh segment with a bumped version word (offset 8, after magic).
	s2, p2 := mustCreate(t, SegConfig{Clients: 1, Nodes: 32, RingCap: 8})
	v2, _ := s2.View()
	v2.Hdr.Version.Store(SegVersion + 7)
	s2.Close()
	if _, err := MapFileSeg(p2); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("version bump: got %v, want ErrVersionMismatch", err)
	}

	// Foreign node ABI.
	s3, p3 := mustCreate(t, SegConfig{Clients: 1, Nodes: 32, RingCap: 8})
	v3, _ := s3.View()
	v3.Hdr.NodeSize.Store(1234)
	s3.Close()
	if _, err := MapFileSeg(p3); !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("node-size mismatch: got %v, want ErrBadGeometry", err)
	}
}

func TestDoubleMapAndUnmap(t *testing.T) {
	s, _ := mustCreate(t, SegConfig{Clients: 1, Nodes: 32, RingCap: 8})

	if err := s.Map(); !errors.Is(err, ErrMapped) {
		t.Fatalf("double map: got %v, want ErrMapped", err)
	}
	if err := s.Unmap(); err != nil {
		t.Fatal(err)
	}
	if err := s.Unmap(); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("double unmap: got %v, want ErrNotMapped", err)
	}
	if _, err := s.View(); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("view after unmap: got %v, want ErrNotMapped", err)
	}
	// Remap works and the data survived (it is a file).
	if err := s.Map(); err != nil {
		t.Fatal(err)
	}
	v, err := s.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.Hdr.State.Load() != SegReady {
		t.Fatalf("remapped segment state %d, want SegReady", v.Hdr.State.Load())
	}
}

func TestHeapSegUnmappable(t *testing.T) {
	s, err := NewHeapSeg(SegConfig{Clients: 1, Nodes: 16, RingCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Unmap(); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("heap remap: got %v, want ErrNotMapped", err)
	}
}

func TestMemfdSeg(t *testing.T) {
	s, f, err := CreateMemfdSeg("ulipc-test", SegConfig{Clients: 1, Nodes: 16, RingCap: 4})
	if errors.Is(err, ErrMapUnsupported) {
		t.Skip("no mapping backend on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer f.Close()
	v, _ := s.View()
	ref, ok := v.Pool.Alloc()
	if !ok {
		t.Fatal("alloc failed")
	}
	v.Arena().Node(ref).SetMsg(core.Msg{Seq: 9})

	s2, err := MapFDSeg(f.Fd())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v2, _ := s2.View()
	if got := v2.Arena().Node(ref).Msg().Seq; got != 9 {
		t.Fatalf("memfd mapping saw Seq %d, want 9", got)
	}
}

func TestLaneOrderAndBounds(t *testing.T) {
	s, err := NewHeapSeg(SegConfig{Clients: 1, Nodes: 32, RingCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	v, _ := s.View()
	l := v.ReqLane(0)
	if !l.Empty() {
		t.Fatal("fresh lane not empty")
	}
	for i := 0; i < 4; i++ {
		if !l.TryPush(Ref(i)) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if l.TryPush(99) {
		t.Fatal("push succeeded on a full lane")
	}
	if l.Len() != 4 {
		t.Fatalf("Len %d, want 4", l.Len())
	}
	for i := 0; i < 4; i++ {
		r, ok := l.TryPop()
		if !ok || r != Ref(i) {
			t.Fatalf("pop %d: got (%d,%v)", i, r, ok)
		}
	}
	if _, ok := l.TryPop(); ok {
		t.Fatal("pop succeeded on an empty lane")
	}
}

func TestSegReclaim(t *testing.T) {
	s, err := NewHeapSeg(SegConfig{Clients: 2, Nodes: 16, RingCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	v, _ := s.View()

	// One ref queued in a lane (a message whose consumer died), two
	// in-flight (held by a dead process, reachable from nowhere).
	queued, _ := v.Pool.Alloc()
	v.ReplyLane(1).TryPush(queued)
	v.Pool.Alloc()
	v.Pool.Alloc()

	msgs, refs, _, err := v.Reclaim()
	if err != nil {
		t.Fatal(err)
	}
	if msgs != 1 || refs != 2 {
		t.Fatalf("reclaim (%d msgs, %d refs), want (1, 2)", msgs, refs)
	}
	if free := v.Pool.FreeCount(); free != 16 {
		t.Fatalf("after reclaim free=%d, want 16", free)
	}
	// The pool must actually be whole: all 16 allocatable again.
	for i := 0; i < 16; i++ {
		if _, ok := v.Pool.Alloc(); !ok {
			t.Fatalf("alloc %d failed after reclaim", i)
		}
	}
}
