package livebind

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ulipc/internal/core"
)

func TestSemaphorePCtxConsumesToken(t *testing.T) {
	s := NewSemaphore(2)
	if _, err := s.PCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := s.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

func TestSemaphorePCtxPreCancelled(t *testing.T) {
	s := NewSemaphore(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.PCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := s.Count(); got != 1 {
		t.Fatalf("a cancelled wait must not consume a token: count = %d", got)
	}
}

func TestSemaphorePCtxDeadline(t *testing.T) {
	s := NewSemaphore(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.PCtx(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline not honoured: waited %v", elapsed)
	}
	if got := s.Waiters(); got != 0 {
		t.Fatalf("cancelled waiter not unlinked: waiters = %d", got)
	}
	// A V after the cancellation must not be swallowed by the dead waiter.
	s.V()
	if got := s.Count(); got != 1 {
		t.Fatalf("count = %d, want 1 after V", got)
	}
}

func TestSemaphorePCtxWokenByV(t *testing.T) {
	s := NewSemaphore(0)
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, err := s.PCtx(ctx)
		done <- err
	}()
	for s.Waiters() == 0 {
		time.Sleep(10 * time.Microsecond)
	}
	s.V()
	if err := <-done; err != nil {
		t.Fatalf("granted wait returned %v", err)
	}
	if got := s.Count(); got != 0 {
		t.Fatalf("count = %d, want 0 (token consumed by grant)", got)
	}
}

func TestSemaphoreCloseUnblocksWaiters(t *testing.T) {
	s := NewSemaphore(0)
	ctxErr := make(chan error, 1)
	plainDone := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, err := s.PCtx(ctx)
		ctxErr <- err
	}()
	go func() {
		s.P()
		close(plainDone)
	}()
	// Only the PCtx waiter is observable on the list; the plain P parks
	// on the cond. Close sets closed before broadcasting, so the plain P
	// is released whether or not it has parked yet.
	for s.Waiters() < 1 {
		time.Sleep(10 * time.Microsecond)
	}
	s.Close()
	if err := <-ctxErr; !errors.Is(err, core.ErrShutdown) {
		t.Fatalf("PCtx after Close = %v, want ErrShutdown", err)
	}
	select {
	case <-plainDone:
	case <-time.After(5 * time.Second):
		t.Fatal("plain P not released by Close")
	}
	// Later calls observe the closed state without blocking; Vs are dropped.
	if _, err := s.PCtx(context.Background()); !errors.Is(err, core.ErrShutdown) {
		t.Fatalf("PCtx on closed = %v, want ErrShutdown", err)
	}
	s.V()
	if got := s.Count(); got != 0 {
		t.Fatalf("V on closed must be dropped: count = %d", got)
	}
	s.Close() // idempotent
}

// TestSemaphoreTokenConservationStress is the wake-token accounting
// invariant under -race: with waits cancelling at random around
// concurrent Vs, every issued token is either consumed by exactly one
// successful wait or still in the count at quiescence — a cancelled
// wait never swallows one.
func TestSemaphoreTokenConservationStress(t *testing.T) {
	const (
		waiters   = 8
		vTotal    = 2000
		perWaiter = 1000
	)
	s := NewSemaphore(0)
	var consumed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < waiters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perWaiter; i++ {
				// Deadlines from "already expired" to ~200µs straddle the
				// park/grant race on both sides.
				d := time.Duration(rng.Intn(200)) * time.Microsecond
				ctx, cancel := context.WithTimeout(context.Background(), d)
				_, err := s.PCtx(ctx)
				cancel()
				switch {
				case err == nil:
					consumed.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
				case errors.Is(err, context.Canceled):
				default:
					t.Errorf("unexpected PCtx error: %v", err)
					return
				}
			}
		}(g)
	}
	var vg sync.WaitGroup
	vg.Add(1)
	go func() {
		defer vg.Done()
		for i := 0; i < vTotal; i++ {
			s.V()
			if i%64 == 0 {
				time.Sleep(time.Microsecond)
			}
		}
	}()
	vg.Wait()
	wg.Wait()
	if got := s.Waiters(); got != 0 {
		t.Fatalf("waiters = %d at quiescence", got)
	}
	if got, want := consumed.Load()+s.Count(), int64(vTotal); got != want {
		t.Fatalf("token conservation violated: consumed %d + count %d = %d, want %d",
			consumed.Load(), s.Count(), got, want)
	}
}
