package core

import (
	"context"

	"ulipc/internal/metrics"
	"ulipc/internal/obs"
)

// Server is the server side of the Send/Receive/Reply interface: a
// single-threaded loop that dequeues requests from one receive queue and
// enqueues responses on per-client reply queues (the architecture used
// for the paper's evaluation — one receive queue is adequate for multiple
// clients as long as each request carries its reply-channel number).
type Server struct {
	Alg     Algorithm
	MaxSpin int
	Tuner   *Tuner // BSA spin-budget controller (lazily built if nil)
	Rcv     Port   // dequeue endpoint of the receive queue
	Replies []Port // enqueue endpoints of the per-client reply queues
	A       Actor
	M       *metrics.Proc // optional spin-loop statistics
	Obs     obs.Hook      // optional phase histograms + flight recorder

	// Blocks is the payload slab arena (nil when the system was built
	// without one); Owner is the lease tag the server leases blocks
	// under. See payload.go.
	Blocks BlockStore
	Owner  uint32

	// UseHandoff makes the server's scheduling hints use
	// handoff(PID_ANY) instead of plain yield (Section 6).
	UseHandoff bool

	// Shed, when non-nil, enables deadline-aware shedding: messages
	// whose deadline has already passed are dropped at dequeue (payload
	// lease claim-freed, sender woken with at most one compensating V
	// per shed batch) instead of served late. See overload.go.
	Shed *ShedPolicy

	// Throttle, when positive, caps the number of simultaneously awake
	// (unparked) clients — the Section 5 "future work" extension that
	// breaks the BSLS positive-feedback collapse on multiprocessors.
	// When more than Throttle clients are active, a client that blocks
	// is "parked": its reply is enqueued but the wake-up V is deferred,
	// so the remaining active clients see short queues and stop falling
	// through their spin loops. Parked clients are re-admitted FIFO, one
	// at a time with pacing, plus an age-based force, so no client
	// starves.
	Throttle int

	deferred  []deferredWake
	receives  int64
	lastAdmit int64
	connected int // maintained by Serve (or SetConnected) for the throttle

	// outstanding[i] counts requests received from client i and not yet
	// replied to — the double-reply audit consulted by ReplyCtx. The
	// server handle is single-goroutine, so plain ints suffice.
	outstanding []int32

	// Batch-reply scratch (ReplyBatch/ReplyBatchCtx): pending-wake marks
	// and the distinct-client list, reused across calls so the vectored
	// reply path stays allocation-free.
	pendWake []bool
	touched  []int32
}

// SetConnected tells the throttle how many clients are currently
// connected. Serve maintains this automatically; callers driving
// Receive/Reply directly must keep it updated for Throttle to be safe.
func (s *Server) SetConnected(n int) { s.connected = n }

type deferredWake struct {
	client int32
	at     int64 // receive count when deferred (starvation guard)
}

func (s *Server) maxSpin() int {
	if s.MaxSpin <= 0 {
		return DefaultMaxSpin
	}
	return s.MaxSpin
}

// spinRcv runs the pre-block spin prefix on the receive queue: BSLS's
// fixed budget, or BSA's controller-tuned budget with feedback.
func (s *Server) spinRcv() {
	if s.Alg == BSA {
		if s.Tuner == nil {
			s.Tuner = NewTuner(TunerConfig{})
		}
		adaptiveSpin(s.Rcv, s.A, s.Tuner, s.M, s.Obs)
		return
	}
	spinPollObs(s.Rcv, s.A, s.maxSpin(), s.M, s.Obs)
}

func (s *Server) letClientsRun() {
	if s.M != nil {
		s.M.BusyWaits.Add(1)
	}
	if s.UseHandoff {
		s.A.Handoff(HandoffAny)
		return
	}
	s.A.Yield()
}

// noteReceived/noteReplied maintain the per-client outstanding-request
// counts behind the ErrDoubleReply audit.
func (s *Server) noteReceived(client int32) {
	if s.outstanding == nil {
		s.outstanding = make([]int32, len(s.Replies))
	}
	s.outstanding[client]++
}

func (s *Server) noteReplied(client int32) {
	if s.outstanding != nil && s.outstanding[client] > 0 {
		s.outstanding[client]--
	}
}

// Receive returns the next client request, blocking (per the configured
// protocol) while the receive queue is empty. If the system is shut
// down it returns the OpShutdown marker message (Client == -1) so a
// driving loop can exit; ReceiveCtx is the error-returning variant.
func (s *Server) Receive() Msg {
	for {
		if s.Throttle > 0 && s.connected > 0 && len(s.deferred) >= s.connected {
			// Every connected client is parked: the parked clients are the
			// only possible source of new requests, so admit one now or the
			// system would deadlock.
			s.admitOne()
		}
		var m Msg
		switch s.Alg {
		case BSS:
			if !busySpinUntil(s.A, s.Rcv, func() bool {
				var ok bool
				m, ok = s.Rcv.TryDequeue()
				return ok
			}) {
				return ShutdownMsg()
			}
		case BSW:
			m = consumerWait(s.Rcv, s.A, nil)
		case BSWY:
			// Figure 7: if a request is already queued, take it; otherwise
			// yield once to let clients run (and possibly enqueue) before
			// entering the blocking path. The extra dequeue attempt is what
			// makes the algorithm scale with multiple clients: with several
			// outstanding entries it is more productive to keep processing
			// than to give up the processor after every reply.
			if got, ok := s.Rcv.TryDequeue(); ok {
				m = got
				break
			}
			s.letClientsRun()
			m = consumerWait(s.Rcv, s.A, nil)
		case BSLS, BSA:
			s.spinRcv()
			m = consumerWait(s.Rcv, s.A, nil)
		default:
			panic(ErrUnknownAlgorithm)
		}
		if m.Op == OpShutdown && m.Client < 0 {
			// Honour the marker only when the port really is shut down: a
			// forged in-band Op=-1 message from a hostile client must not
			// stop the server (it falls to the invalid-client drop below).
			if portClosed(s.Rcv) {
				return m
			}
		}
		if s.M != nil {
			s.M.MsgsReceived.Add(1)
		}
		s.retireWake(m.Client)
		if s.shed(m) {
			continue // already expired: dropped, receive the next one
		}
		if s.ValidClient(m.Client) {
			s.noteReceived(m.Client)
		}
		return m
	}
}

// ReceiveCtx is Receive with deadline/cancellation support: it returns
// ctx.Err() when the context ends first and ErrShutdown once the system
// is shut down and the receive queue has drained.
func (s *Server) ReceiveCtx(ctx context.Context) (Msg, error) {
	for {
		if s.Throttle > 0 && s.connected > 0 && len(s.deferred) >= s.connected {
			s.admitOne()
		}
		var m Msg
		var err error
		switch s.Alg {
		case BSS:
			m, err = spinDequeueCtx(ctx, s.A, s.Rcv)
		case BSW:
			m, err = consumerWaitCtx(ctx, s.Rcv, s.A, nil)
		case BSWY:
			if got, ok := s.Rcv.TryDequeue(); ok {
				m = got
				break
			}
			s.letClientsRun()
			m, err = consumerWaitCtx(ctx, s.Rcv, s.A, nil)
		case BSLS, BSA:
			s.spinRcv()
			m, err = consumerWaitCtx(ctx, s.Rcv, s.A, nil)
		default:
			return Msg{}, ErrUnknownAlgorithm
		}
		if err != nil {
			return Msg{}, err
		}
		if s.M != nil {
			s.M.MsgsReceived.Add(1)
		}
		s.retireWake(m.Client)
		if s.shed(m) {
			continue // already expired: dropped, receive the next one
		}
		if s.ValidClient(m.Client) {
			s.noteReceived(m.Client)
		}
		return m, nil
	}
}

// ValidClient reports whether a client-supplied reply-channel number is
// usable. The paper's security note (Section 1) applies: the server must
// protect itself by careful access to the shared queues, and the
// reply-channel number arrives from untrusted client memory.
func (s *Server) ValidClient(client int32) bool {
	return client >= 0 && int(client) < len(s.Replies)
}

// Reply sends a response to the given client and wakes it if needed.
// Replies to out-of-range channel numbers are dropped (a hostile or
// corrupted client must not crash the server). Disconnect replies bypass
// the wake throttle: a departing client sends no further requests, so
// its wake slot would never retire.
func (s *Server) Reply(client int32, m Msg) {
	if !s.ValidClient(client) {
		dropPayload(s.Blocks, s.Owner, m)
		return
	}
	s.noteReplied(client)
	q := s.Replies[client]
	if s.Alg == BSS {
		if !busySpinUntil(s.A, q, func() bool { return q.TryEnqueue(m) }) {
			dropPayload(s.Blocks, s.Owner, m)
		}
		return
	}
	if !enqueueOrSleepObs(q, s.A, m, s.Obs) {
		// Shutdown or a dead client's closed channel: the reply is
		// dropped, so any payload lease riding it would be stranded with
		// a live owner no sweeper walks — return it here.
		dropPayload(s.Blocks, s.Owner, m)
		return
	}
	if m.Op == OpDisconnect || m.Op == OpConnect {
		// Control-path replies bypass the throttle: a departing client
		// sends no further requests (its slot would never retire) and a
		// connecting client may synchronise with other clients before
		// its first request (holding a slot across the barrier).
		wakeConsumer(q, s.A)
		return
	}
	s.wakeClient(client)
}

// ReplyCtx is Reply with deadline/cancellation support and a misuse
// audit: it returns ErrDoubleReply when no request from that client is
// outstanding, ErrShutdown once the system is shut down, and ctx.Err()
// if the context ends while the reply queue is full.
func (s *Server) ReplyCtx(ctx context.Context, client int32, m Msg) error {
	if !s.ValidClient(client) {
		return ErrDoubleReply
	}
	if s.outstanding == nil || s.outstanding[client] <= 0 {
		return ErrDoubleReply
	}
	q := s.Replies[client]
	if s.Alg == BSS {
		if err := spinEnqueueCtx(ctx, s.A, q, m); err != nil {
			return err
		}
		s.noteReplied(client)
		return nil
	}
	if err := enqueueOrSleepCtxObs(ctx, q, s.A, m, s.M, nil, s.Obs); err != nil {
		return err
	}
	s.noteReplied(client)
	if m.Op == OpDisconnect || m.Op == OpConnect {
		wakeConsumer(q, s.A)
		return nil
	}
	s.wakeClient(client)
	return nil
}

// wakeClient wakes the client's consumer, honouring the wake throttle.
func (s *Server) wakeClient(client int32) {
	q := s.Replies[client]
	if q.TASAwake() {
		return // client is awake (or another wake is already pending)
	}
	if s.Throttle > 0 && len(s.Replies)-len(s.deferred)-1 >= s.Throttle {
		// Too many clients are active: park this one. The awake flag is
		// already set (so no other producer will duplicate the wake) but
		// the V is owed; it is issued when the client is re-admitted.
		s.deferred = append(s.deferred, deferredWake{client: client, at: s.receives})
		return
	}
	s.A.V(q.Sem())
}

// retireWake paces the re-admission of parked clients.
func (s *Server) retireWake(client int32) {
	if s.Throttle <= 0 {
		return
	}
	s.receives++
	if len(s.deferred) == 0 {
		return
	}
	// Admission pacing: re-admit parked clients one at a time, at most
	// one per admitInterval receives. Bursting them all back in would
	// immediately re-create the overload that parked them. The age check
	// is the starvation guard: FIFO order plus a forced admission after
	// a bounded number of receives means every parked client is
	// eventually woken.
	interval := int64(2 * len(s.Replies))
	aged := s.receives-s.deferred[0].at > 4*interval
	if aged || s.receives-s.lastAdmit >= interval {
		s.admitOne()
	}
}

// admitOne wakes the longest-parked client.
func (s *Server) admitOne() {
	next := s.deferred[0].client
	s.deferred = s.deferred[1:]
	s.lastAdmit = s.receives
	s.A.V(s.Replies[next].Sem())
}

// PendingWakes reports how many deferred wake-ups are queued (tests).
func (s *Server) PendingWakes() int { return len(s.deferred) }

// Serve runs the canonical echo loop of the paper's evaluation: Receive
// requests and echo the argument back until every connected client has
// disconnected — or the system is shut down, which ends the loop
// cleanly after in-flight requests have been drained. work is invoked
// for OpWork requests to model server-side request processing; it may
// be nil.
func (s *Server) Serve(work func(*Msg)) (served int64) {
	connected := 0
	everConnected := false
	for {
		m := s.Receive()
		if m.Op == OpShutdown && m.Client < 0 {
			return served
		}
		if !s.ValidClient(m.Client) {
			// Hostile/corrupted request: no usable reply channel. Any
			// payload lease it carries is returned (Claim rejects refs
			// that don't decode, so a corrupted Ref is just dropped).
			dropPayload(s.Blocks, s.Owner, m)
			continue
		}
		switch m.Op {
		case OpConnect:
			connected++
			s.connected = connected
			everConnected = true
			s.Reply(m.Client, m)
		case OpDisconnect:
			connected--
			s.connected = connected
			s.Reply(m.Client, m)
			if everConnected && connected == 0 {
				return served
			}
		case OpWork:
			if work != nil {
				work(&m)
			}
			served++
			s.Reply(m.Client, m)
		default: // OpEcho
			served++
			s.Reply(m.Client, m)
		}
	}
}

// ServeCtx is Serve with deadline/cancellation support. It returns
// (served, nil) when every connected client has disconnected or the
// system shut down gracefully, and (served, ctx.Err()) when the context
// ends first.
func (s *Server) ServeCtx(ctx context.Context, work func(*Msg)) (served int64, err error) {
	connected := 0
	everConnected := false
	for {
		m, err := s.ReceiveCtx(ctx)
		if err == ErrShutdown {
			return served, nil
		}
		if err != nil {
			return served, err
		}
		if !s.ValidClient(m.Client) {
			dropPayload(s.Blocks, s.Owner, m)
			continue
		}
		switch m.Op {
		case OpConnect:
			connected++
			s.connected = connected
			everConnected = true
			s.Reply(m.Client, m)
		case OpDisconnect:
			connected--
			s.connected = connected
			s.Reply(m.Client, m)
			if everConnected && connected == 0 {
				return served, nil
			}
		case OpWork:
			if work != nil {
				work(&m)
			}
			served++
			s.Reply(m.Client, m)
		default:
			served++
			s.Reply(m.Client, m)
		}
	}
}
