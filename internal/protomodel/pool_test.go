package protomodel

import "testing"

// TestPoolSharedFlagBreaksWithTwoWorkers demonstrates the Section 2.1
// hazard this package's pool model exists for: the paper's single awake
// flag cannot represent two sleeping workers, so a producer's
// test-and-set suppresses the second wake-up and a worker sleeps forever
// with its message queued.
func TestPoolSharedFlagBreaksWithTwoWorkers(t *testing.T) {
	res, err := PoolCheck(PoolConfig{Consumers: 2, Producers: 2, Msgs: 1, SharedFlag: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlock {
		t.Fatal("shared awake flag with two workers must admit a lost wakeup")
	}
	if len(res.DeadlockPath) == 0 {
		t.Fatal("expected a counterexample trace")
	}
}

// TestPoolSharedFlagSafeWithOneWorker: with a single consumer the pool
// model degenerates to the paper's protocol and must be safe.
func TestPoolSharedFlagSafeWithOneWorker(t *testing.T) {
	for producers := 1; producers <= 3; producers++ {
		res, err := PoolCheck(PoolConfig{Consumers: 1, Producers: producers, Msgs: 2, SharedFlag: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlock {
			t.Fatalf("p=%d: deadlock:\n%v", producers, res.DeadlockPath)
		}
		if !res.AllConsumed {
			t.Fatalf("p=%d: messages lost", producers)
		}
	}
}

// TestPoolCountedWaitersSafe verifies the counted-waiters discipline —
// the fix internal/core's worker pool uses — across pool and producer
// sizes: no interleaving deadlocks and every message is consumed.
func TestPoolCountedWaitersSafe(t *testing.T) {
	for consumers := 1; consumers <= 2; consumers++ {
		for producers := 1; producers <= 3; producers++ {
			for msgs := 1; msgs <= 2; msgs++ {
				if (producers*msgs)%consumers != 0 {
					continue
				}
				res, err := PoolCheck(PoolConfig{Consumers: consumers, Producers: producers, Msgs: msgs})
				if err != nil {
					t.Fatal(err)
				}
				if res.Deadlock {
					t.Fatalf("c=%d p=%d m=%d: deadlock:\n%v", consumers, producers, msgs, res.DeadlockPath)
				}
				if !res.AllConsumed {
					t.Fatalf("c=%d p=%d m=%d: messages lost", consumers, producers, msgs)
				}
				// Claim-miss strands leave stale Vs pending; they are
				// bounded by the claims issued (one per message).
				if res.MaxSem > producers*msgs {
					t.Fatalf("c=%d p=%d m=%d: sem reached %d", consumers, producers, msgs, res.MaxSem)
				}
			}
		}
	}
}

// TestPoolValidation exercises the input guards.
func TestPoolValidation(t *testing.T) {
	if _, err := PoolCheck(PoolConfig{Consumers: 0, Producers: 1, Msgs: 1}); err == nil {
		t.Error("0 consumers accepted")
	}
	if _, err := PoolCheck(PoolConfig{Consumers: 3, Producers: 1, Msgs: 1}); err == nil {
		t.Error("3 consumers accepted (model bound is 2)")
	}
	if _, err := PoolCheck(PoolConfig{Consumers: 1, Producers: 0, Msgs: 1}); err == nil {
		t.Error("0 producers accepted")
	}
	if _, err := PoolCheck(PoolConfig{Consumers: 1, Producers: 1, Msgs: 4}); err == nil {
		t.Error("4 msgs accepted (model bound is 3)")
	}
}
