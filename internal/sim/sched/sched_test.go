package sched

import (
	"testing"

	"ulipc/internal/machine"
	"ulipc/internal/sim"
)

func newKernelWith(t *testing.T, pol sim.Scheduler) *sim.Kernel {
	t.Helper()
	k, err := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
	if s, err := New(""); err != nil || s.Name() != PolicyDegrading {
		t.Error("empty policy must default to degrading")
	}
}

// spawnIdle registers n processes with trivial bodies so they can be
// enqueued into a policy under test. The kernel is never Run.
func spawnIdle(k *sim.Kernel, n int) []*sim.Proc {
	procs := make([]*sim.Proc, n)
	for i := range procs {
		procs[i] = k.Spawn("p", 0, func(*sim.Proc) {})
	}
	return procs
}

func TestDegradingPrefersIncumbentOnTies(t *testing.T) {
	d := NewDegrading("degrading")
	k := newKernelWith(t, d)
	ps := spawnIdle(k, 2)
	d.Ready(ps[0])
	d.Ready(ps[1])
	// Equal usage: the incumbent wins the tie.
	if got := d.Pick(0, ps[1]); got != ps[1] {
		t.Fatalf("picked %v, want incumbent", got)
	}
	d.Ready(ps[1])
	// No incumbent: FIFO.
	if got := d.Pick(0, nil); got != ps[0] {
		t.Fatalf("picked %v, want FIFO head", got)
	}
}

func TestDegradingUsageDemotes(t *testing.T) {
	d := NewDegrading("degrading")
	k := newKernelWith(t, d)
	ps := spawnIdle(k, 2)
	// Charge one process past a usage quantum.
	d.Charge(ps[0], 2*k.Machine().UsageQuantum)
	d.Ready(ps[0])
	d.Ready(ps[1])
	if got := d.Pick(0, ps[0]); got != ps[1] {
		t.Fatalf("picked %v, want the fresh process despite incumbency", got)
	}
}

func TestDegradingUsageDecays(t *testing.T) {
	d := NewDegrading("degrading")
	k := newKernelWith(t, d)
	ps := spawnIdle(k, 1)
	d.Charge(ps[0], 10*k.Machine().UsageQuantum)
	before := ps[0].Usage
	// Decay is lazy and driven by kernel time, which is 0 here; force a
	// decay computation with the stamp in the past.
	ps[0].UsageStamp = -1000000 // 1ms before t=0
	d.Charge(ps[0], 0)
	if ps[0].Usage >= before {
		t.Fatalf("usage did not decay: %v -> %v", before, ps[0].Usage)
	}
}

func TestFixedIgnoresIncumbent(t *testing.T) {
	f := NewFixed()
	k := newKernelWith(t, f)
	ps := spawnIdle(k, 2)
	f.Ready(ps[0])
	f.Ready(ps[1])
	// Fixed priorities: FIFO rotation even when the incumbent is queued.
	if got := f.Pick(0, ps[1]); got != ps[0] {
		t.Fatalf("picked %v, want FIFO head", got)
	}
}

func TestFixedHonoursBasePrio(t *testing.T) {
	f := NewFixed()
	k := newKernelWith(t, f)
	low := k.Spawn("low", 0, func(*sim.Proc) {})
	high := k.Spawn("high", 5, func(*sim.Proc) {})
	f.Ready(low)
	f.Ready(high)
	if got := f.Pick(0, nil); got != high {
		t.Fatalf("picked %v, want high priority", got)
	}
}

func TestLinux10YieldKeepsIncumbent(t *testing.T) {
	l := NewLinux10()
	k := newKernelWith(t, l)
	ps := spawnIdle(k, 2)
	l.Ready(ps[0])
	l.Ready(ps[1])
	if got := l.Pick(0, ps[1]); got != ps[1] {
		t.Fatalf("picked %v, want incumbent (the Linux 1.0 yield bug)", got)
	}
	// Without an incumbent (quantum expiry): FIFO.
	l.Ready(ps[1])
	if got := l.Pick(0, nil); got != ps[0] {
		t.Fatalf("picked %v, want FIFO", got)
	}
}

func TestLinuxModAlwaysRotates(t *testing.T) {
	l := NewLinuxMod()
	k := newKernelWith(t, l)
	ps := spawnIdle(k, 2)
	l.Ready(ps[0])
	l.Ready(ps[1])
	if got := l.Pick(0, ps[1]); got != ps[0] {
		t.Fatalf("picked %v, want rotation (modified sched_yield)", got)
	}
}

func TestStealRemovesSpecificProc(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		k := newKernelWith(t, s)
		ps := spawnIdle(k, 3)
		for _, p := range ps {
			s.Ready(p)
		}
		if !s.Steal(ps[1]) {
			t.Errorf("%s: Steal failed", name)
		}
		if s.Steal(ps[1]) {
			t.Errorf("%s: double Steal succeeded", name)
		}
		if s.ReadyCount() != 2 {
			t.Errorf("%s: ready = %d", name, s.ReadyCount())
		}
	}
}

func TestPickEmptyReturnsNil(t *testing.T) {
	for _, name := range Names() {
		s, _ := New(name)
		newKernelWith(t, s)
		if s.Pick(0, nil) != nil {
			t.Errorf("%s: Pick on empty queue returned a process", name)
		}
	}
}
