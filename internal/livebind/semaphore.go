package livebind

import (
	"context"
	"sync"

	"ulipc/internal/core"
)

// Semaphore is a counting semaphore with System V semantics: P blocks
// while the count is zero; V increments the count or wakes one waiter.
// Like the kernel primitive, V never yields the caller.
//
// Two kinds of waiter coexist:
//
//   - Plain P parks on a sync.Cond and races for the count — the cheap,
//     allocation-free path the legacy (error-less) protocols pay on
//     every blocking round trip.
//   - PCtx parks on an explicit waiter list so the wait can be
//     cancelled with exact token accounting: V hands its token DIRECTLY
//     to the first listed waiter (marking it granted), and a waiter
//     cancelled after being granted hands the token back — to the next
//     listed waiter, or to the count (waking a cond sleeper). A
//     cancelled wait therefore never consumes a token, and a token
//     destined for a live waiter is never lost to a cancelled one. This
//     is the property the protocol layer's wake-token accounting
//     (core.consumerWaitCtx) builds on.
//
// A third shape is available as an opt-in mode (NewWaitArraySemaphore):
// a waiting array where EVERY waiter — plain or cancellable — parks on
// its own per-waiter slot and V hands the token directly to the oldest
// live slot. See semarray.go for the mode's invariants.
type Semaphore struct {
	mu       sync.Mutex
	cond     sync.Cond // plain P sleepers
	count    int64
	closed   bool
	sleeping int64        // plain P calls currently parked in cond.Wait
	waiters  []*semWaiter // parked PCtx calls, granted in FIFO order
	wa       *waitArray   // non-nil switches to waiting-array mode
}

// semWaiter is one parked PCtx call. granted is guarded by the
// semaphore mutex and is valid once ready is closed.
type semWaiter struct {
	ready   chan struct{}
	granted bool
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(initial int64) *Semaphore {
	s := &Semaphore{count: initial}
	s.cond.L = &s.mu
	return s
}

// NewWaitArraySemaphore creates a semaphore in waiting-array mode:
// per-waiter hand-off slots instead of the cond/slice pair, giving O(1)
// V and O(1) cancellation with no wake-up herd. Same external
// semantics and the same token-conservation guarantees.
func NewWaitArraySemaphore(initial int64) *Semaphore {
	s := NewSemaphore(initial)
	s.wa = newWaitArray()
	return s
}

// WaitArray reports whether the semaphore runs in waiting-array mode
// (diagnostics and tests).
func (s *Semaphore) WaitArray() bool { return s.wa != nil }

// P (down) decrements the count, blocking while it is zero. On a closed
// semaphore P returns immediately without consuming a token, so parked
// protocol loops unblock and observe the port state. The return value
// reports whether the call actually slept (parked at least once) — the
// paper's "fell through to the blocking path" distinction, surfaced so
// the binding can attribute sleep time without extra clock reads on the
// non-blocking path.
func (s *Semaphore) P() (slept bool) {
	if s.wa != nil {
		return s.pArray()
	}
	s.mu.Lock()
	for s.count == 0 && !s.closed {
		slept = true
		s.sleeping++
		s.cond.Wait()
		s.sleeping--
	}
	if !s.closed {
		s.count--
	}
	s.mu.Unlock()
	return slept
}

// PCtx is P with cancellation. It returns nil when a token was
// consumed; ctx.Err() when the wait was cancelled without consuming a
// token (a token granted concurrently with the cancellation is handed
// back); and core.ErrShutdown when the semaphore was closed. Like P,
// slept reports whether the call actually parked.
func (s *Semaphore) PCtx(ctx context.Context) (slept bool, err error) {
	if s.wa != nil {
		return s.pCtxArray(ctx)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, core.ErrShutdown
	}
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		return false, err
	}
	if s.count > 0 {
		s.count--
		s.mu.Unlock()
		return false, nil
	}
	w := &semWaiter{ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		s.mu.Lock()
		granted := w.granted
		s.mu.Unlock()
		if granted {
			return true, nil
		}
		return true, core.ErrShutdown // woken by Close
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// A V (or Close) won the race and the grant channel is closed
			// or closing. Hand the token back so it is not lost: to the
			// next waiter if any, otherwise to the count.
			s.handBackLocked()
		} else {
			s.removeWaiterLocked(w)
		}
		s.mu.Unlock()
		return true, ctx.Err()
	}
}

// handBackLocked re-issues a token whose grantee was cancelled; the
// caller holds s.mu.
func (s *Semaphore) handBackLocked() {
	if len(s.waiters) > 0 {
		next := s.waiters[0]
		s.waiters = s.waiters[1:]
		next.granted = true
		close(next.ready)
		return
	}
	s.count++
	s.cond.Signal() // a plain P may be sleeping on the count
}

// removeWaiterLocked unlinks a cancelled waiter; the caller holds s.mu.
// The waiter may already be gone (Close drained the list).
func (s *Semaphore) removeWaiterLocked(w *semWaiter) {
	for i, cand := range s.waiters {
		if cand == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// V (up) hands a token to the first listed (cancellable) waiter, or
// increments the count and signals a plain P sleeper. Vs on a closed
// semaphore are dropped (every waiter has already been released and no
// new ones arrive). The return value reports whether the V plausibly
// woke a sleeper — it granted a parked cancellable waiter, or a plain P
// was asleep when the count was bumped (the paper's "expensive wake-up
// system call" as opposed to a redundant V).
func (s *Semaphore) V() (woke bool) {
	if s.wa != nil {
		return s.vArray()
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.granted = true
		s.mu.Unlock()
		close(w.ready)
		return true
	}
	s.count++
	woke = s.sleeping > 0
	s.mu.Unlock()
	s.cond.Signal()
	return woke
}

// Close releases every parked waiter without granting tokens and makes
// all subsequent P calls non-blocking (PCtx returns core.ErrShutdown).
// Idempotent.
func (s *Semaphore) Close() {
	if s.wa != nil {
		s.closeArray()
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ws := s.waiters
	s.waiters = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, w := range ws {
		close(w.ready)
	}
}

// Closed reports whether the semaphore has been closed (diagnostics).
func (s *Semaphore) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Count returns the current count (diagnostics).
func (s *Semaphore) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Waiters returns the number of parked cancellable waiters (diagnostics
// and tests).
func (s *Semaphore) Waiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wa != nil {
		return s.wa.npctx
	}
	return len(s.waiters)
}

// Sleeping returns the number of plain P calls currently parked
// (diagnostics; the recovery sweeper's lost-wake heuristic needs to
// know whether anyone is actually asleep on the semaphore).
func (s *Semaphore) Sleeping() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wa != nil {
		return int64(s.wa.nplain)
	}
	return s.sleeping
}
