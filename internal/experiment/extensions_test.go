package experiment

import "testing"

func TestMultiprogShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "multiprog")
	// The paper's motivation: with infrequent requests, busy-waiting
	// wastes cycles a background job could use. Blocking protocols must
	// give the background job a larger CPU share...
	bssBG := rec(t, r, "multiprog/BSS/bgshare")
	bswBG := rec(t, r, "multiprog/BSW/bgshare")
	if bswBG < bssBG+0.05 {
		t.Errorf("BSW background share %.2f must clearly exceed BSS %.2f", bswBG, bssBG)
	}
	// ...without losing IPC throughput (the blocked server is woken
	// directly instead of competing from a degraded priority).
	bssTh := rec(t, r, "multiprog/BSS/throughput")
	bswTh := rec(t, r, "multiprog/BSW/throughput")
	if bswTh < bssTh*0.95 {
		t.Errorf("BSW IPC throughput %.2f must not trail BSS %.2f", bswTh, bssTh)
	}
	// BSLS sits between pure spinning and pure blocking.
	bslsBG := rec(t, r, "multiprog/BSLS-20/bgshare")
	if bslsBG < bssBG || bslsBG > bswBG+0.02 {
		t.Errorf("BSLS background share %.2f should sit between BSS %.2f and BSW %.2f",
			bslsBG, bssBG, bswBG)
	}
}

func TestArchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "arch")
	// Single client: the two architectures are equivalent (one
	// connection either way).
	s1 := rec(t, r, "arch/uni/shared/1")
	d1 := rec(t, r, "arch/uni/duplex/1")
	if d1 < s1*0.95 || d1 > s1*1.05 {
		t.Errorf("1 client: shared %.2f vs duplex %.2f, want equal", s1, d1)
	}
	// Under uniprocessor load the shared queue's batching wins.
	s6 := rec(t, r, "arch/uni/shared/6")
	d6 := rec(t, r, "arch/uni/duplex/6")
	if s6 <= d6 {
		t.Errorf("6 clients uni: shared %.2f must beat thread-per-client %.2f", s6, d6)
	}
}

func TestSensitivityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "sensitivity")
	// IBM's falling shape must be robust across the whole sweep.
	for _, scale := range []string{"0.50", "0.75", "1.00", "1.50", "2.00"} {
		if rec(t, r, "sensitivity/ibm/"+scale+"/falling") != 1 {
			t.Errorf("IBM falling shape broke at scale %s", scale)
		}
	}
	// SGI's rising shape holds in the sticky-yield regime (>= calibrated).
	for _, scale := range []string{"1.00", "1.50", "2.00"} {
		if rec(t, r, "sensitivity/sgi/"+scale+"/rising") != 1 {
			t.Errorf("SGI rising shape broke at scale %s", scale)
		}
	}
	// BSS beats SYSV from half to 1.5x the calibrated aging quantum.
	for _, scale := range []string{"0.50", "0.75", "1.00", "1.50"} {
		if rec(t, r, "sensitivity/sgi/"+scale+"/beats_sysv") != 1 {
			t.Errorf("SGI BSS-beats-SYSV broke at scale %s", scale)
		}
	}
}

func TestWorkersShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "workers")
	if s2 := rec(t, r, "workers/speedup2"); s2 < 1.7 || s2 > 2.2 {
		t.Errorf("2-worker speedup = %.2f, want ~2", s2)
	}
	if s4 := rec(t, r, "workers/speedup4"); s4 < 3.2 || s4 > 4.4 {
		t.Errorf("4-worker speedup = %.2f, want ~4", s4)
	}
}
