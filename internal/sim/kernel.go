// Package sim is a deterministic discrete-event simulator of a small
// multiprocessor UNIX kernel: processes, CPUs, a pluggable scheduler,
// counting semaphores, System V message queues, and the system calls the
// paper's protocols exercise (yield, P/V, sleep, msgsnd/msgrcv, handoff).
//
// Process bodies are ordinary Go functions running on dedicated
// goroutines, but the engine serialises them: a process executes Go code
// only between an engine resume and its next Step/syscall request, so at
// most one process runs at any real-time instant and all shared-memory
// effects are totally ordered by virtual time (ties broken FIFO). This
// yields deterministic, repeatable interleavings — including the races of
// the paper's Figure 4 — without real concurrency hazards.
package sim

import (
	"fmt"
	"runtime/debug"

	"ulipc/internal/machine"
	"ulipc/internal/metrics"
)

// CPU models one processor.
type CPU struct {
	id       int
	proc     *Proc // currently running process, nil if idle
	lastProc *Proc // last process to run (switch-cost accounting)
}

// ID returns the CPU number.
func (c *CPU) ID() int { return c.id }

// TraceFn receives engine trace events when configured.
type TraceFn func(t Time, cpu int, proc string, what, detail string)

// Config configures a Kernel.
type Config struct {
	Machine *machine.Model
	Sched   Scheduler
	MaxTime Time         // abort threshold; default 1000 virtual seconds
	Metrics *metrics.Set // optional; created if nil
	Trace   TraceFn      // optional
}

// Kernel is the simulated operating system instance.
type Kernel struct {
	mach  *machine.Model
	sched Scheduler

	now     Time
	seq     uint64
	maxTime Time

	cpus   []*CPU
	procs  []*Proc
	events eventHeap
	reqCh  chan request
	live   int

	sems     []*semaphore
	msgqs    []*msgQueue
	barriers []*barrier

	ms    *metrics.Set
	trace TraceFn

	started bool
	err     error
}

// New creates a kernel for the given machine model and scheduler policy.
func New(cfg Config) (*Kernel, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("sim: nil machine model")
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sched == nil {
		return nil, fmt.Errorf("sim: nil scheduler")
	}
	if cfg.MaxTime <= 0 {
		cfg.MaxTime = 1000 * Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewSet()
	}
	k := &Kernel{
		mach:    cfg.Machine,
		sched:   cfg.Sched,
		maxTime: cfg.MaxTime,
		reqCh:   make(chan request),
		ms:      cfg.Metrics,
		trace:   cfg.Trace,
	}
	for i := 0; i < cfg.Machine.CPUs; i++ {
		k.cpus = append(k.cpus, &CPU{id: i})
	}
	k.sched.Attach(k)
	return k, nil
}

// Machine returns the machine model in use.
func (k *Kernel) Machine() *machine.Model { return k.mach }

// Metrics returns the metrics set for this kernel.
func (k *Kernel) Metrics() *metrics.Set { return k.ms }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Procs returns all spawned processes.
func (k *Kernel) Procs() []*Proc { return k.procs }

// ProcByID returns the process with the given pid, or nil.
func (k *Kernel) ProcByID(pid int) *Proc {
	if pid < 0 || pid >= len(k.procs) {
		return nil
	}
	return k.procs[pid]
}

// Spawn registers a process with the given name, static priority and
// body. All processes become runnable when Run is called. Spawn must not
// be called after Run.
func (k *Kernel) Spawn(name string, basePrio int, body func(*Proc)) *Proc {
	if k.started {
		panic("sim: Spawn after Run")
	}
	p := &Proc{
		id:       len(k.procs),
		name:     name,
		k:        k,
		body:     body,
		resumeCh: make(chan struct{}),
		state:    StateNew,
		BasePrio: basePrio,
		M:        k.ms.NewProc(name),
	}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		<-p.resumeCh
		var exitErr error
		func() {
			defer func() {
				if r := recover(); r != nil {
					exitErr = fmt.Errorf("sim: process %s panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}()
			p.body(p)
		}()
		k.reqCh <- request{p: p, kind: reqExit, err: exitErr}
	}()
	return p
}

// Run executes the simulation until every process has exited. It returns
// an error on deadlock, on exceeding MaxTime, or if a process panicked.
func (k *Kernel) Run() error {
	if k.started {
		return fmt.Errorf("sim: Run called twice")
	}
	k.started = true
	for _, p := range k.procs {
		p.state = StateReady
		k.sched.Ready(p)
		p.queued = true
	}
	for _, c := range k.cpus {
		k.dispatch(c, 0)
	}
	for k.live > 0 && k.err == nil {
		if k.events.Len() == 0 {
			return k.deadlock()
		}
		ev := k.events.pop()
		if ev.t > k.maxTime {
			return fmt.Errorf("sim: virtual time exceeded MaxTime (%d ns) with %d live processes", k.maxTime, k.live)
		}
		k.now = ev.t
		switch ev.kind {
		case evTimer:
			if ev.p.state == StateSleeping {
				k.makeReady(ev.p)
			}
		case evRun:
			k.applyRun(ev)
		}
	}
	return k.err
}

func (k *Kernel) deadlock() error {
	desc := ""
	for _, p := range k.procs {
		if p.state != StateDead {
			desc += fmt.Sprintf(" %s=%s", p.name, p.state)
		}
	}
	return fmt.Errorf("sim: deadlock at t=%d:%s", k.now, desc)
}

func (k *Kernel) tracef(cpu int, proc, what, detail string) {
	if k.trace != nil {
		k.trace(k.now, cpu, proc, what, detail)
	}
}

// charge accounts consumed CPU time to the process.
func (k *Kernel) charge(p *Proc, d Time) {
	if d <= 0 {
		return
	}
	k.sched.Charge(p, d)
	p.quantumLeft -= d
	p.M.CPUTimeNS.Add(int64(d))
}

func (k *Kernel) applyRun(ev event) {
	p := ev.p
	k.charge(p, ev.dur)
	switch ev.req.kind {
	case reqStep:
		k.advance(p)
	case reqExit:
		k.exitProc(p, ev.req.err)
	case reqSys:
		k.applySyscall(p, ev.req)
	}
}

// collect resumes p and receives its next request. The process's code
// segment between its previous interaction point and the next request
// executes during this call, at the current virtual time.
func (k *Kernel) collect(p *Proc) request {
	p.resumeCh <- struct{}{}
	return <-k.reqCh
}

// advance lets the running process produce its next request, then
// schedules it (or preempts on quantum expiry).
func (k *Kernel) advance(p *Proc) {
	r := k.collect(p)
	k.scheduleOrPreempt(p, r)
}

func (k *Kernel) scheduleOrPreempt(p *Proc, r request) {
	if p.quantumLeft <= 0 && r.kind != reqExit && k.sched.ReadyCount() > 0 {
		cpu := p.cpu
		p.state = StateReady
		k.sched.Ready(p)
		p.queued = true
		// No incumbent preference at quantum expiry: the whole point of
		// the expiry is to round-robin among equal-priority processes.
		q := k.sched.Pick(cpu.id, nil)
		if q == p {
			// Still the best choice: refresh the quantum and continue.
			p.queued = false
			p.state = StateRunning
			p.quantumLeft = k.sched.QuantumFor(p)
			k.scheduleReq(p, r)
			return
		}
		p.M.InvoluntaryCS.Add(1)
		rr := r
		p.pending = &rr
		p.cpu = nil
		k.tracef(cpu.id, p.name, "preempt", "")
		k.startOn(cpu, q, 0)
		return
	}
	k.scheduleReq(p, r)
}

// scheduleReq pushes the completion event for the request, consuming any
// accumulated kernel overhead (context-switch / block cost).
func (k *Kernel) scheduleReq(p *Proc, r request) {
	d := r.cost + p.extraDelay
	p.extraDelay = 0
	k.seq++
	k.events.push(event{t: k.now + d, seq: k.seq, kind: evRun, p: p, req: r, dur: d})
}

// startOn places q on the CPU, charging a context-switch cost if the CPU
// last ran a different process.
func (k *Kernel) startOn(cpu *CPU, q *Proc, extra Time) {
	q.queued = false
	if cpu.lastProc != nil && cpu.lastProc != q {
		extra += k.mach.CtxSwitch(k.sched.ReadyCount() + 1)
		k.tracef(cpu.id, q.name, "switch-in", "")
	}
	cpu.proc = q
	cpu.lastProc = q
	q.cpu = cpu
	q.state = StateRunning
	q.quantumLeft = k.sched.QuantumFor(q)
	q.extraDelay += extra
	if q.pending != nil {
		r := *q.pending
		q.pending = nil
		k.scheduleReq(q, r)
		return
	}
	k.advance(q)
}

// dispatch picks the next process for an (about to be) idle CPU.
func (k *Kernel) dispatch(cpu *CPU, extra Time) {
	q := k.sched.Pick(cpu.id, nil)
	if q == nil {
		cpu.proc = nil
		return
	}
	q.queued = false
	k.startOn(cpu, q, extra)
}

// makeReady marks p runnable and fills an idle CPU if one exists. It does
// NOT preempt a running process: like the System V primitives the paper
// builds on, a wakeup only enters the run queue.
func (k *Kernel) makeReady(p *Proc) {
	p.state = StateReady
	if !p.queued {
		k.sched.Ready(p)
		p.queued = true
	}
	for _, c := range k.cpus {
		if c.proc == nil {
			k.dispatch(c, 0)
			return
		}
	}
}

// block removes the running process from its CPU and dispatches a
// replacement, charging the kernel's block cost to the switch.
func (k *Kernel) block(p *Proc, st ProcState) {
	p.state = st
	p.M.VoluntaryCS.Add(1)
	cpu := p.cpu
	p.cpu = nil
	cpu.proc = nil
	k.tracef(cpu.id, p.name, "block", st.String())
	k.dispatch(cpu, k.mach.BlockCost)
}

func (k *Kernel) exitProc(p *Proc, err error) {
	p.state = StateDead
	k.live--
	if err != nil && k.err == nil {
		k.err = err
	}
	cpu := p.cpu
	p.cpu = nil
	if cpu != nil {
		cpu.proc = nil
		if cpu.lastProc == p {
			cpu.lastProc = nil
		}
		k.dispatch(cpu, 0)
	}
	k.tracef(-1, p.name, "exit", "")
}

func (k *Kernel) applySyscall(p *Proc, r request) {
	switch r.sys {
	case sysYield:
		k.doYield(p)

	case sysSemP:
		s := k.sems[r.arg]
		if s.count > 0 {
			s.count--
			k.advance(p)
			return
		}
		p.M.Blocks.Add(1)
		s.waiters = append(s.waiters, p)
		k.block(p, StateBlocked)

	case sysSemV:
		s := k.sems[r.arg]
		if len(s.waiters) > 0 {
			w := s.waiters[0]
			s.waiters = s.waiters[1:]
			p.M.Wakeups.Add(1)
			p.extraDelay += k.mach.WakeupCost
			k.tracef(cpuID(p), p.name, "wake", w.name)
			k.makeReady(w)
		} else {
			s.count++
		}
		k.advance(p)

	case sysSleep:
		k.seq++
		k.events.push(event{t: k.now + r.arg, seq: k.seq, kind: evTimer, p: p})
		k.block(p, StateSleeping)

	case sysMsgSnd:
		q := k.msgqs[r.arg]
		if len(q.msgs) >= q.capacity {
			p.M.Blocks.Add(1)
			p.sysRet = r.payload // park until a receiver drains the queue
			q.sndWaiters = append(q.sndWaiters, p)
			k.block(p, StateBlocked)
			return
		}
		q.msgs = append(q.msgs, r.payload)
		if len(q.rcvWaiters) > 0 {
			w := q.rcvWaiters[0]
			q.rcvWaiters = q.rcvWaiters[1:]
			w.sysRet = q.msgs[0]
			q.msgs = q.msgs[1:]
			p.M.Wakeups.Add(1)
			p.extraDelay += k.mach.WakeupCost
			k.makeReady(w)
		}
		k.advance(p)

	case sysMsgRcv:
		q := k.msgqs[r.arg]
		if len(q.msgs) > 0 {
			p.sysRet = q.msgs[0]
			q.msgs = q.msgs[1:]
			if len(q.sndWaiters) > 0 {
				s := q.sndWaiters[0]
				q.sndWaiters = q.sndWaiters[1:]
				q.msgs = append(q.msgs, s.sysRet)
				s.sysRet = nil
				p.M.Wakeups.Add(1)
				p.extraDelay += k.mach.WakeupCost
				k.makeReady(s)
			}
			k.advance(p)
			return
		}
		p.M.Blocks.Add(1)
		q.rcvWaiters = append(q.rcvWaiters, p)
		k.block(p, StateBlocked)

	case sysBarrier:
		b := k.barriers[r.arg]
		b.arrived = append(b.arrived, p)
		if len(b.arrived) < b.parties {
			k.block(p, StateBlocked)
			return
		}
		waiters := b.arrived[:len(b.arrived)-1]
		b.arrived = nil
		for _, w := range waiters {
			k.makeReady(w)
		}
		k.advance(p)

	case sysHandoff:
		k.doHandoff(p, int(r.arg))

	default:
		k.err = fmt.Errorf("sim: unknown syscall %d", r.sys)
	}
}

func (k *Kernel) doYield(p *Proc) {
	k.sched.OnYield(p)
	cpu := p.cpu
	p.state = StateReady
	k.sched.Ready(p)
	p.queued = true
	q := k.sched.Pick(cpu.id, p)
	if q == p {
		// The scheduler chose the yielding process again: no switch.
		// Deliberately no quantum refresh — a yield that does not
		// transfer the CPU must still burn down the caller's slice, or
		// a spinning process could monopolise the CPU forever.
		p.queued = false
		p.state = StateRunning
		k.advance(p)
		return
	}
	p.M.VoluntaryCS.Add(1)
	p.cpu = nil
	k.tracef(cpu.id, p.name, "yield-switch", q.name)
	k.startOn(cpu, q, 0)
}

func (k *Kernel) doHandoff(p *Proc, pid int) {
	cpu := p.cpu
	switch {
	case pid == PIDSelf:
		k.doYield(p)

	case pid == PIDAny:
		// Deschedule the caller in favour of any other ready process,
		// even one with lower priority.
		q := k.sched.Pick(cpu.id, nil)
		if q == nil {
			k.advance(p)
			return
		}
		q.queued = false
		p.M.VoluntaryCS.Add(1)
		p.state = StateReady
		k.sched.Ready(p)
		p.queued = true
		p.cpu = nil
		k.tracef(cpu.id, p.name, "handoff-any", q.name)
		k.startOn(cpu, q, 0)

	default:
		t := k.ProcByID(pid)
		if t == nil || t.state != StateReady || !k.sched.Steal(t) {
			// Target not eligible: fall back to yield semantics.
			k.doYield(p)
			return
		}
		t.queued = false
		p.M.VoluntaryCS.Add(1)
		p.state = StateReady
		k.sched.Ready(p)
		p.queued = true
		p.cpu = nil
		k.tracef(cpu.id, p.name, "handoff", t.name)
		k.startOn(cpu, t, 0)
	}
}

func cpuID(p *Proc) int {
	if p.cpu == nil {
		return -1
	}
	return p.cpu.id
}
