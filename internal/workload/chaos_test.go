package workload

import (
	"strings"
	"testing"
	"time"

	"ulipc/internal/core"
)

// TestChaosCellSurvivesCrashes runs one seeded cell with aggressive
// crash and wake-mutation rates: the cell must stay live (no deadlock),
// leak nothing, and actually exercise the injection (at least one fault
// fired with these rates).
func TestChaosCellSurvivesCrashes(t *testing.T) {
	res, err := RunChaosCell(ChaosConfig{
		Alg:       core.BSW,
		Clients:   4,
		Msgs:      100,
		Seed:      1234,
		CrashRate: 0.05,
		DropRate:  0.10,
		DupRate:   0.05,
		DelayRate: 0.05,
		Watchdog:  30 * time.Second,
	})
	if err != nil {
		t.Fatalf("chaos cell: %v (result %+v)", err, res)
	}
	if res.Deadlocked {
		t.Fatalf("cell deadlocked: %+v", res)
	}
	if res.PoolLeaked != 0 {
		t.Fatalf("pool leaked %d refs: %+v", res.PoolLeaked, res)
	}
	if res.Crashes+res.WakeDrops+res.WakeDups+res.WakeDelays == 0 {
		t.Fatalf("no faults injected at these rates; the cell exercised nothing: %+v", res)
	}
	if res.Crashes > 0 && res.PeerDeaths == 0 {
		t.Fatalf("crashes without peer-death detection: %+v", res)
	}
}

// TestChaosCellCleanRun is the control: zero fault rates must complete
// every round trip with no recovery activity — the chaos plumbing
// itself costs the workload nothing.
func TestChaosCellCleanRun(t *testing.T) {
	const clients, msgs = 3, 100
	res, err := RunChaosCell(ChaosConfig{
		Alg:      core.BSLS,
		Clients:  clients,
		Msgs:     msgs,
		Seed:     1,
		Watchdog: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("clean cell: %v (result %+v)", err, res)
	}
	if res.Completed != clients*msgs {
		t.Fatalf("clean cell completed %d/%d round trips: %+v", res.Completed, clients*msgs, res)
	}
	if res.Crashes != 0 || res.PeerDeaths != 0 {
		t.Fatalf("clean cell recorded faults: %+v", res)
	}
}

// TestChaosBenchShortSweep runs a reduced matrix end to end and checks
// the report covers every cell.
func TestChaosBenchShortSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep in -short mode")
	}
	var progress strings.Builder
	rep, err := RunChaosBench(ChaosOptions{
		Algs:    []core.Algorithm{core.BSW, core.BSLS},
		Clients: []int{2, 4},
		Msgs:    50,
		Seed:    99,
	}, &progress)
	if err != nil {
		t.Fatalf("chaos sweep: %v\n%s", err, progress.String())
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("report has %d cells, want 4", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Error != "" {
			t.Fatalf("cell %s failed: %s", c.Label, c.Error)
		}
	}
}
