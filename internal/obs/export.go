package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Prometheus text-format exposition. The histograms are emitted at
// octave (power of two) granularity — the fine log-linear buckets stay
// internal so a scrape is a few hundred lines, not ten thousand. All
// series are nanosecond-valued and follow the Prometheus histogram
// convention: cumulative `_bucket{le=...}` counts, plus `_sum` and
// `_count`.

// promName maps a phase to its metric family name.
func promName(ph Phase) string {
	return "ulipc_" + ph.String() + "_ns"
}

// writePromHist emits one histogram series with a proto label.
func writePromHist(w io.Writer, name, proto string, s HistSnapshot) {
	cum := s.Cumulative()
	for _, b := range cum {
		fmt.Fprintf(w, "%s_bucket{proto=%q,le=\"%d\"} %d\n", name, proto, b.UpperNS, b.Count)
	}
	fmt.Fprintf(w, "%s_bucket{proto=%q,le=\"+Inf\"} %d\n", name, proto, s.Count)
	fmt.Fprintf(w, "%s_sum{proto=%q} %d\n", name, proto, s.Sum)
	fmt.Fprintf(w, "%s_count{proto=%q} %d\n", name, proto, s.Count)
}

// WritePrometheus writes every non-empty histogram in Prometheus text
// exposition format. Families with no observations anywhere are
// omitted entirely (TYPE lines included), keeping idle scrapes small.
func (o *Observer) WritePrometheus(w io.Writer) {
	if o == nil {
		return
	}
	snaps := o.Snapshot()
	for ph := PhaseRTT; ph < NumPhases; ph++ {
		name := promName(ph)
		wroteType := false
		for _, ps := range snaps {
			s := ps.PhaseSnap(ph)
			if s == nil || s.Count == 0 {
				continue
			}
			if !wroteType {
				fmt.Fprintf(w, "# HELP %s %s phase latency histogram (nanoseconds)\n", name, ph)
				fmt.Fprintf(w, "# TYPE %s histogram\n", name)
				wroteType = true
			}
			writePromHist(w, name, ps.Proto, *s)
		}
	}
	// Batch sizes are counts, not durations, so they get their own
	// family outside the *_ns phase loop.
	wroteBatch := false
	for _, ps := range snaps {
		if ps.Batch.Count == 0 {
			continue
		}
		if !wroteBatch {
			fmt.Fprintf(w, "# HELP ulipc_batch_size messages moved per vectored operation\n")
			fmt.Fprintf(w, "# TYPE ulipc_batch_size histogram\n")
			wroteBatch = true
		}
		writePromHist(w, "ulipc_batch_size", ps.Proto, ps.Batch)
	}
	// Payload sizes are bytes, not durations — their own family too.
	wrotePayload := false
	for _, ps := range snaps {
		if ps.Payload.Count == 0 {
			continue
		}
		if !wrotePayload {
			fmt.Fprintf(w, "# HELP ulipc_payload_bytes payload size per payload-carrying send\n")
			fmt.Fprintf(w, "# TYPE ulipc_payload_bytes histogram\n")
			wrotePayload = true
		}
		writePromHist(w, "ulipc_payload_bytes", ps.Proto, ps.Payload)
	}
	if o.rec != nil {
		fmt.Fprintf(w, "# HELP ulipc_flight_events_total events noted on the flight recorder\n")
		fmt.Fprintf(w, "# TYPE ulipc_flight_events_total counter\n")
		fmt.Fprintf(w, "ulipc_flight_events_total %d\n", o.rec.Len())
	}
}

// WritePrometheusCounter emits one counter family. Helper for callers
// (the live System) that combine histogram output with their own
// counters in a single exposition.
func WritePrometheusCounter(w io.Writer, name, help string, value int64) {
	if !strings.HasSuffix(name, "_total") {
		name += "_total"
	}
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s counter\n", name)
	fmt.Fprintf(w, "%s %d\n", name, value)
}

// WritePrometheusGauge emits one gauge family with optional label
// pairs (name1, value1, name2, value2, ...). Helper for callers
// exporting point-in-time values — the BSA spin-budget gauge, for
// example — alongside the histogram/counter exposition.
func WritePrometheusGauge(w io.Writer, name, help string, value int64, labels ...string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s gauge\n", name)
	if len(labels) >= 2 {
		fmt.Fprintf(w, "%s{", name)
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, "%s=%q", labels[i], labels[i+1])
		}
		fmt.Fprintf(w, "} %d\n", value)
		return
	}
	fmt.Fprintf(w, "%s %d\n", name, value)
}

// Handler serves the observer's Prometheus exposition over HTTP.
func (o *Observer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.WritePrometheus(w)
	})
}
