package core

// Variable-sized messages (Section 2.1): a fixed-size message carries a
// reference to a variable-sized component in shared memory. The Ref
// field holds the block reference (bitwise-complemented, high 32 bits)
// and the payload length (low 32 bits). Complementing the reference
// makes the zero Msg mean "no payload": a nil block ref (^uint32(0))
// with length 0 encodes to exactly 0, so HasBlock is a single compare
// and forgetting to attach a payload can never alias block 0 of class 0.
//
// Refs used to round-trip through Val's float64 bits; that was fragile
// under NaN canonicalization (any runtime or FFI boundary that loads
// and re-stores the float may quiet the NaN and silently rewrite the
// reference), which is why Ref is a dedicated integer field.

// SetBlock stores a shared-memory block reference and payload length in
// the message's Ref field.
func (m *Msg) SetBlock(ref uint32, n int) {
	m.Ref = uint64(^ref)<<32 | uint64(uint32(n))
}

// Block extracts the shared-memory block reference and payload length
// stored by SetBlock.
func (m *Msg) Block() (ref uint32, n int) {
	return ^uint32(m.Ref >> 32), int(uint32(m.Ref))
}

// HasBlock reports whether the message carries a payload reference.
func (m *Msg) HasBlock() bool { return m.Ref != 0 }

// ClearBlock removes the payload reference.
func (m *Msg) ClearBlock() { m.Ref = 0 }
