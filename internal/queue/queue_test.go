package queue

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"ulipc/internal/core"
)

func forEachKind(t *testing.T, f func(t *testing.T, kind Kind)) {
	t.Helper()
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) { f(t, kind) })
	}
}

func mustNew(t *testing.T, kind Kind, capacity int) Queue {
	t.Helper()
	q, err := New(kind, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestFIFOOrder(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind Kind) {
		q := mustNew(t, kind, 128)
		for i := 0; i < 100; i++ {
			if !q.Enqueue(core.Msg{Seq: int32(i)}) {
				t.Fatalf("enqueue %d failed", i)
			}
		}
		for i := 0; i < 100; i++ {
			m, ok := q.Dequeue()
			if !ok || m.Seq != int32(i) {
				t.Fatalf("dequeue %d: %+v, %v", i, m, ok)
			}
		}
		if _, ok := q.Dequeue(); ok {
			t.Fatal("dequeue on empty succeeded")
		}
	})
}

func TestEmptyReflectsState(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind Kind) {
		q := mustNew(t, kind, 8)
		if !q.Empty() {
			t.Fatal("fresh queue not empty")
		}
		q.Enqueue(core.Msg{})
		if q.Empty() {
			t.Fatal("non-empty queue reports empty")
		}
		q.Dequeue()
		if !q.Empty() {
			t.Fatal("drained queue not empty")
		}
	})
}

func TestFullBehaviour(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind Kind) {
		q := mustNew(t, kind, 4)
		n := 0
		for q.Enqueue(core.Msg{Seq: int32(n)}) {
			n++
			if n > q.Cap()+1 {
				t.Fatal("queue never fills")
			}
		}
		if n < 4 {
			t.Fatalf("capacity %d below requested 4", n)
		}
		// Dequeue one; an enqueue must succeed again.
		if _, ok := q.Dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
		if !q.Enqueue(core.Msg{Seq: int32(n)}) {
			t.Fatal("enqueue after drain failed")
		}
		// Order preserved across the full/drain cycle.
		want := int32(1)
		for {
			m, ok := q.Dequeue()
			if !ok {
				break
			}
			if m.Seq != want {
				t.Fatalf("seq = %d, want %d", m.Seq, want)
			}
			want++
		}
	})
}

// TestQuickMatchesModel drives each implementation with random
// enqueue/dequeue sequences and compares against a plain-slice model.
func TestQuickMatchesModel(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind Kind) {
		check := func(ops []bool, vals []int32) bool {
			q, err := New(kind, 16)
			if err != nil {
				return false
			}
			var model []int32
			vi := 0
			for _, enq := range ops {
				if enq {
					v := int32(0)
					if vi < len(vals) {
						v = vals[vi]
						vi++
					}
					ok := q.Enqueue(core.Msg{Seq: v})
					modelOK := len(model) < q.Cap()
					if ok != modelOK {
						// List-based queues may admit exactly Cap items;
						// both must agree on accept/reject given the
						// model's view of capacity.
						return false
					}
					if ok {
						model = append(model, v)
					}
				} else {
					m, ok := q.Dequeue()
					if ok != (len(model) > 0) {
						return false
					}
					if ok {
						if m.Seq != model[0] {
							return false
						}
						model = model[1:]
					}
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConcurrentConservation hammers each queue with concurrent
// producers and consumers and checks that no message is lost or
// duplicated and per-producer order is preserved.
func TestConcurrentConservation(t *testing.T) {
	forEachKind(t, func(t *testing.T, kind Kind) {
		const producers = 4
		const perProducer = 2000
		q := mustNew(t, kind, 256)

		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < perProducer; i++ {
					m := core.Msg{Seq: int32(i), MsgMeta: core.MsgMeta{Client: int32(p)}}
					for !q.Enqueue(m) {
						runtime.Gosched()
					}
				}
			}(p)
		}

		type rec struct {
			seen map[int32][]int32
		}
		const consumers = 2
		recs := make([]rec, consumers)
		var cwg sync.WaitGroup
		var consumed sync.WaitGroup
		consumed.Add(producers * perProducer)
		done := make(chan struct{})
		go func() { consumed.Wait(); close(done) }()
		for c := 0; c < consumers; c++ {
			recs[c] = rec{seen: map[int32][]int32{}}
			cwg.Add(1)
			go func(c int) {
				defer cwg.Done()
				for {
					m, ok := q.Dequeue()
					if ok {
						recs[c].seen[m.Client] = append(recs[c].seen[m.Client], m.Seq)
						consumed.Done()
						continue
					}
					select {
					case <-done:
						return
					default:
						runtime.Gosched()
					}
				}
			}(c)
		}
		wg.Wait()
		cwg.Wait()

		// Conservation + per-producer order within each consumer.
		for p := int32(0); p < producers; p++ {
			total := 0
			for c := 0; c < consumers; c++ {
				seq := recs[c].seen[p]
				total += len(seq)
				for i := 1; i < len(seq); i++ {
					if seq[i] <= seq[i-1] {
						t.Fatalf("consumer %d: producer %d out of order: %d after %d",
							c, p, seq[i], seq[i-1])
					}
				}
			}
			if total != perProducer {
				t.Fatalf("producer %d: %d delivered, want %d", p, total, perProducer)
			}
		}
	})
}

func TestKindNames(t *testing.T) {
	for _, kind := range Kinds() {
		got, err := KindByName(kind.String())
		if err != nil || got != kind {
			t.Errorf("round trip %s: %v %v", kind, got, err)
		}
	}
	if _, err := KindByName("bogus"); err == nil {
		t.Error("bad kind accepted")
	}
	if k, err := KindByName(""); err != nil || k != KindTwoLock {
		t.Error("empty kind must default to two-lock")
	}
}

func TestNewValidatesCapacity(t *testing.T) {
	for _, kind := range Kinds() {
		if _, err := New(kind, 0); err == nil {
			t.Errorf("%s: zero capacity accepted", kind)
		}
	}
}

func TestRingCapacityRounding(t *testing.T) {
	r, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", r.Cap())
	}
}

func TestTwoLockLen(t *testing.T) {
	q, err := NewTwoLock(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		q.Enqueue(core.Msg{})
	}
	if q.Len() != 5 {
		t.Fatalf("len = %d", q.Len())
	}
	q.Dequeue()
	if q.Len() != 4 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestLockFreeLenTracksApproximately(t *testing.T) {
	q, err := NewLockFree(8)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(core.Msg{})
	q.Enqueue(core.Msg{})
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
}
