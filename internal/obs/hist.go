// Package obs is the observability layer of the live runtime: lock-free
// log-bucketed latency histograms that attribute round-trip time to the
// phase where it is spent (spin vs. sleep vs. queue-wait), a bounded
// concurrent flight recorder of recent IPC events, and export surfaces
// (Prometheus text format, expvar-friendly snapshots).
//
// The package is deliberately a leaf: it imports only the standard
// library, so internal/core and internal/livebind can both hook into it
// without cycles. Every hot-path entry point (Hook methods,
// Histogram.Record, FlightRecorder.Note) is nil-receiver safe and
// allocation-free, so the disabled configuration costs exactly one
// pointer nil-check per hook site — the paper's measurement discipline
// (explain every RTT through counters) without a measurable tax on the
// fast path it measures.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear, 16 linear sub-buckets per
// power-of-two octave. Values 0..15ns land in exact unit buckets;
// octave g >= 1 covers [16<<(g-1), 16<<g) in 16 equal steps, giving a
// worst-case relative resolution of 1/16 (~6%) across the whole range.
// The top octave caps at 16<<histGroups ns (~18 minutes), far beyond
// any sane IPC phase duration; larger values clamp into the last
// bucket (their exact magnitude is still preserved in Sum and Max).
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // linear sub-buckets per octave
	histGroups  = 36               // octaves above the exact range
	histBuckets = (histGroups + 1) * histSub
)

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	g := bits.Len64(v) - histSubBits
	if g > histGroups {
		return histBuckets - 1
	}
	sub := (v >> uint(g-1)) & (histSub - 1)
	return g*histSub + int(sub)
}

// bucketLower returns the inclusive lower bound of a bucket.
func bucketLower(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	g := idx / histSub
	sub := idx % histSub
	return uint64(histSub+sub) << uint(g-1)
}

// bucketUpper returns the exclusive upper bound of a bucket.
func bucketUpper(idx int) uint64 {
	if idx >= histBuckets-1 {
		return 1 << 63 // open-ended top bucket
	}
	return bucketLower(idx + 1)
}

// Histogram is a lock-free log-bucketed latency histogram. Record is
// safe for any number of concurrent writers; Snapshot may run
// concurrently with writers and never loses a count (a racing snapshot
// may miss an in-flight Record, which a later snapshot then includes —
// counts are monotonic). The zero value is ready for use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64 // total nanoseconds
	max    atomic.Uint64 // largest recorded value (CAS-maintained)
}

// Record adds one duration observation. Negative durations clamp to
// zero (a monotonic-clock read can regress across VM migrations).
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot returns a plain-value copy of the histogram. The trailing
// all-zero buckets are trimmed so snapshots stay small in JSON exports.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var s HistSnapshot
	last := -1
	tmp := make([]uint64, histBuckets)
	for i := range h.counts {
		c := h.counts[i].Load()
		tmp[i] = c
		if c != 0 {
			last = i
			s.Count += c
		}
	}
	s.Counts = tmp[:last+1]
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, suitable for
// merging across processes and quantile evaluation.
type HistSnapshot struct {
	Counts []uint64 `json:"counts,omitempty"` // per-bucket counts, trailing zeros trimmed
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum_ns"`
	Max    uint64   `json:"max_ns"`
}

// Merge accumulates other into s.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	if len(other.Counts) > len(s.Counts) {
		grown := make([]uint64, len(other.Counts))
		copy(grown, s.Counts)
		s.Counts = grown
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
}

// Mean returns the mean recorded value in nanoseconds.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate (in nanoseconds) of the q-quantile,
// 0 <= q <= 1, by linear interpolation inside the target bucket. The
// estimate is exact for values below 16ns and within ~6% elsewhere.
// Quantile(1) returns the exact maximum.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return float64(s.Max)
	}
	if q < 0 {
		q = 0
	}
	target := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, hi := float64(bucketLower(i)), float64(bucketUpper(i))
			if m := float64(s.Max); hi > m {
				hi = m // the top occupied bucket cannot exceed the max
			}
			if hi < lo {
				hi = lo
			}
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return float64(s.Max)
}

// CumBucket is one cumulative bucket boundary of an exported histogram.
type CumBucket struct {
	UpperNS uint64 // inclusive upper bound of the cumulative count
	Count   uint64 // observations <= UpperNS
}

// Cumulative returns the cumulative bucket counts at octave (power of
// two) granularity — the coarse boundary set used for the Prometheus
// text exposition, where 600 fine buckets per series would bloat every
// scrape. The final entry always carries the total count.
func (s HistSnapshot) Cumulative() []CumBucket {
	var out []CumBucket
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		// Emit a point at each octave end (last sub-bucket of a group).
		if i%histSub == histSub-1 || i == len(s.Counts)-1 {
			out = append(out, CumBucket{UpperNS: bucketUpper(i) - 1, Count: cum})
		}
	}
	return out
}
