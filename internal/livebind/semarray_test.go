package livebind

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"ulipc/internal/core"
)

// The waiting-array variant must pass the same token-conservation
// gauntlet as the baseline cond/slice semaphore, plus its own shape
// checks: FIFO direct hand-off, hole recycling under cancel storms,
// and the cancel-vs-V race resolved exactly once. Run under -race.

func TestWaitArrayFlag(t *testing.T) {
	if NewSemaphore(0).WaitArray() {
		t.Fatal("baseline semaphore reports waiting-array mode")
	}
	s := NewWaitArraySemaphore(2)
	if !s.WaitArray() {
		t.Fatal("waiting-array semaphore does not report it")
	}
	if s.Count() != 2 {
		t.Fatalf("initial count %d, want 2", s.Count())
	}
	if s.P() || s.P() { // two credits: neither P may sleep
		t.Fatal("P slept with credits available")
	}
	if s.Count() != 0 {
		t.Fatalf("count %d after two Ps, want 0", s.Count())
	}
}

func TestWaitArrayPVConservation(t *testing.T) {
	s := NewWaitArraySemaphore(0)
	const waiters, tokens = 8, 8
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.P()
		}()
	}
	for s.Sleeping() != waiters {
		runtime.Gosched()
	}
	for i := 0; i < tokens; i++ {
		if !s.V() {
			t.Error("V with parked waiters woke nobody")
		}
	}
	wg.Wait()
	if c := s.Count(); c != 0 {
		t.Fatalf("count %d after balanced P/V, want 0", c)
	}
}

func TestWaitArrayPCtxCancelVRaceExactlyOnce(t *testing.T) {
	for i := 0; i < 500; i++ {
		s := NewWaitArraySemaphore(0)
		ctx, cancel := context.WithCancel(context.Background())
		res := make(chan error, 1)
		go func() {
			_, err := s.PCtx(ctx)
			res <- err
		}()
		for s.Waiters() == 0 {
			runtime.Gosched()
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); cancel() }()
		go func() { defer wg.Done(); s.V() }()
		wg.Wait()

		err := <-res
		if count := s.Count(); err == nil {
			if count != 0 {
				t.Fatalf("round %d: token consumed but count = %d (duplicated)", i, count)
			}
		} else {
			if err != context.Canceled {
				t.Fatalf("round %d: PCtx = %v, want nil or context.Canceled", i, err)
			}
			if count != 1 {
				t.Fatalf("round %d: cancelled wait left count = %d, want exactly 1 handed back", i, count)
			}
		}
		if w := s.Waiters(); w != 0 {
			t.Fatalf("round %d: %d waiters leaked", i, w)
		}
	}
}

// A cancelled waiter's hand-back must prefer a still-parked waiter over
// the count: the token moves along the array, not through it.
func TestWaitArrayHandBackGrantsNextWaiter(t *testing.T) {
	for i := 0; i < 200; i++ {
		s := NewWaitArraySemaphore(0)
		ctx, cancel := context.WithCancel(context.Background())
		first := make(chan error, 1)
		go func() {
			_, err := s.PCtx(ctx)
			first <- err
		}()
		for s.Waiters() == 0 {
			runtime.Gosched()
		}
		second := make(chan error, 1)
		go func() {
			_, err := s.PCtx(context.Background())
			second <- err
		}()
		for s.Waiters() != 2 {
			runtime.Gosched()
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); cancel() }()
		go func() { defer wg.Done(); s.V() }()
		wg.Wait()

		err1 := <-first
		if err1 == nil {
			// First waiter won the grant; feed the second one.
			s.V()
		}
		if err2 := <-second; err2 != nil {
			t.Fatalf("round %d: uncancelled second waiter failed: %v", i, err2)
		}
		if c := s.Count(); c != 0 {
			t.Fatalf("round %d: count %d after all waits settled, want 0", i, c)
		}
	}
}

// FIFO: tokens are granted in park order, not cond-broadcast order.
func TestWaitArrayFIFOGrant(t *testing.T) {
	s := NewWaitArraySemaphore(0)
	const n = 6
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			s.P()
			order <- i
		}()
		// Park strictly one at a time so array order equals loop order.
		for s.Sleeping() != int64(i+1) {
			runtime.Gosched()
		}
	}
	for i := 0; i < n; i++ {
		s.V()
		if got := <-order; got != i {
			t.Fatalf("grant %d went to waiter %d, want FIFO", i, got)
		}
	}
}

// A cancel storm with no V traffic must not leak ring slots: the hole
// compaction keeps the array bounded and a subsequent P/V pair still
// pairs up correctly.
func TestWaitArrayCancelStorm(t *testing.T) {
	s := NewWaitArraySemaphore(0)
	for round := 0; round < 50; round++ {
		var wg sync.WaitGroup
		const parked = 16
		ctx, cancel := context.WithCancel(context.Background())
		for i := 0; i < parked; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := s.PCtx(ctx); err != context.Canceled {
					t.Errorf("storm wait: %v, want context.Canceled", err)
				}
			}()
		}
		for s.Waiters() != parked {
			runtime.Gosched()
		}
		cancel()
		wg.Wait()
		if w := s.Waiters(); w != 0 {
			t.Fatalf("round %d: %d waiters leaked", round, w)
		}
		if c := s.Count(); c != 0 {
			t.Fatalf("round %d: count %d minted by cancellations", round, c)
		}
	}
	// The array still works after the storms.
	done := make(chan struct{})
	go func() { s.P(); close(done) }()
	for s.Sleeping() == 0 {
		runtime.Gosched()
	}
	s.V()
	<-done
}

func TestWaitArrayCloseUnblocks(t *testing.T) {
	s := NewWaitArraySemaphore(0)
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	wg.Add(2)
	go func() { defer wg.Done(); _, err := s.PCtx(context.Background()); errs <- err }()
	go func() { defer wg.Done(); _, err := s.PCtx(context.Background()); errs <- err }()
	for s.Waiters() != 2 {
		runtime.Gosched()
	}
	plain := make(chan bool, 1)
	go func() { plain <- s.P() }()
	for s.Sleeping() == 0 {
		runtime.Gosched()
	}
	s.Close()
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, core.ErrShutdown) {
			t.Fatalf("closed PCtx returned %v, want ErrShutdown", err)
		}
	}
	if !<-plain {
		t.Fatal("parked plain P unblocked by Close must report it slept")
	}
	if _, err := s.PCtx(context.Background()); !errors.Is(err, core.ErrShutdown) {
		t.Fatalf("post-close PCtx returned %v", err)
	}
	if s.V() {
		t.Fatal("V on closed semaphore woke someone")
	}
}

// Mixed concurrent P/PCtx traffic against V producers with rolling
// cancellations: every token is either acquired or handed back, so
// issued Vs minus successful acquisitions must equal the final count.
// Run under -race.
func TestWaitArrayMixedStress(t *testing.T) {
	s := NewWaitArraySemaphore(0)
	const consumers, rounds = 8, 250
	var acquired, issued int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				ctx, cancel := context.WithCancel(context.Background())
				if (i+j)%3 == 0 {
					go func() { runtime.Gosched(); cancel() }()
				}
				_, err := s.PCtx(ctx)
				cancel()
				if err == nil {
					mu.Lock()
					acquired++
					mu.Unlock()
				}
			}
		}(i)
	}
	// Feed tokens until every consumer settles; cancelled waits consume
	// none, so the feeder may overshoot — that surplus must sit on the
	// count, not vanish.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for feeding := true; feeding; {
		select {
		case <-done:
			feeding = false
		default:
			s.V()
			mu.Lock()
			issued++
			mu.Unlock()
			runtime.Gosched()
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if c := s.Count(); c != issued-acquired {
		t.Fatalf("count %d, want issued(%d) - acquired(%d) = %d", c, issued, acquired, issued-acquired)
	}
	if w := s.Waiters(); w != 0 {
		t.Fatalf("%d waiters leaked", w)
	}
}
