// Package shm provides the shared-memory substrate the live runtime
// builds its queues on: a fixed-size arena of message nodes addressed by
// 32-bit offsets (refs) and a lock-free free pool.
//
// All cross-"process" references are indices, never Go pointers, so the
// arena layout is position-independent — the same structure could live in
// a memory-mapped segment shared across address spaces, which is how the
// paper deploys it. The free pool implements the fixed-size-message
// free-pool management Section 2.1 calls out as the reason for fixed
// message sizes.
package shm

import (
	"fmt"
	"sync/atomic"

	"ulipc/internal/core"
)

// Ref is a position-independent reference to a node in an arena.
type Ref = uint32

// NilRef is the null reference.
const NilRef Ref = ^Ref(0)

// Node is one fixed-size message slot: a link and the message payload
// (the paper's 24-byte message: opcode, reply channel, argument).
type Node struct {
	next atomic.Uint32
	msg  core.Msg
}

// Next returns the node's link.
func (n *Node) Next() Ref { return n.next.Load() }

// SetNext stores the node's link.
func (n *Node) SetNext(r Ref) { n.next.Store(r) }

// Msg returns the node's message payload.
func (n *Node) Msg() core.Msg { return n.msg }

// SetMsg stores the node's message payload.
func (n *Node) SetMsg(m core.Msg) { n.msg = m }

// Arena is a fixed-size array of nodes addressed by Ref.
type Arena struct {
	nodes []Node
}

// NewArena allocates an arena with n node slots.
func NewArena(n int) (*Arena, error) {
	if n < 1 {
		return nil, fmt.Errorf("shm: arena size must be >= 1, got %d", n)
	}
	if n >= int(NilRef) {
		return nil, fmt.Errorf("shm: arena size %d exceeds ref space", n)
	}
	return &Arena{nodes: make([]Node, n)}, nil
}

// Len returns the number of node slots.
func (a *Arena) Len() int { return len(a.nodes) }

// Node returns the node at ref r. It panics on NilRef or out-of-range
// refs — those indicate corruption, not recoverable conditions.
func (a *Arena) Node(r Ref) *Node {
	return &a.nodes[r]
}

// packed pool head: high 32 bits are an ABA tag, low 32 bits the top ref.
func packHead(tag uint32, top Ref) uint64 { return uint64(tag)<<32 | uint64(top) }
func unpackHead(h uint64) (tag uint32, top Ref) {
	return uint32(h >> 32), Ref(h & 0xFFFFFFFF)
}

// Pool is a lock-free free list (Treiber stack with an ABA tag) of arena
// nodes. Exhaustion of the pool is the queue-full condition the
// protocols' flow control reacts to.
//
// The stack head (CASed by every alloc/free) and the free counter
// (bumped by every alloc/free) are padded onto separate 64-byte cache
// lines so the two atomics don't false-share — and neither shares a
// line with the read-only arena pointer.
type Pool struct {
	arena *Arena
	_     [64]byte
	head  atomic.Uint64
	_     [56]byte
	free  atomic.Int64 // approximate free count (diagnostics)
	_     [56]byte
}

// NewPool builds a pool owning every node of a fresh arena. The pool
// has exclusive access to the fresh arena, so the free list is threaded
// with plain per-node stores — node i links to node i+1, matching the
// ascending pop order the old one-CAS-per-node construction produced —
// rather than N CAS-looping Free calls.
func NewPool(arena *Arena) *Pool {
	p := &Pool{arena: arena}
	n := arena.Len()
	for i := 0; i < n-1; i++ {
		arena.Node(Ref(i)).SetNext(Ref(i + 1))
	}
	arena.Node(Ref(n - 1)).SetNext(NilRef)
	p.head.Store(packHead(0, 0))
	p.free.Store(int64(n))
	return p
}

// NewPoolSize is a convenience constructor: arena + pool of n nodes.
func NewPoolSize(n int) (*Pool, error) {
	a, err := NewArena(n)
	if err != nil {
		return nil, err
	}
	return NewPool(a), nil
}

// Arena returns the backing arena.
func (p *Pool) Arena() *Arena { return p.arena }

// Alloc pops a free node, reporting false if the pool is exhausted.
func (p *Pool) Alloc() (Ref, bool) {
	for {
		h := p.head.Load()
		tag, top := unpackHead(h)
		if top == NilRef {
			return NilRef, false
		}
		next := p.arena.Node(top).Next()
		if p.head.CompareAndSwap(h, packHead(tag+1, next)) {
			p.free.Add(-1)
			return top, true
		}
	}
}

// Free pushes a node back onto the free list.
func (p *Pool) Free(r Ref) {
	n := p.arena.Node(r)
	for {
		h := p.head.Load()
		tag, top := unpackHead(h)
		n.SetNext(top)
		if p.head.CompareAndSwap(h, packHead(tag+1, r)) {
			p.free.Add(1)
			return
		}
	}
}

// AllocN pops up to len(dst) nodes with a single CAS, writing their
// refs to dst in pop order and returning how many it took (0 when the
// pool is exhausted). This is the batching primitive that cuts Treiber
// head traffic from one CAS per node to one per batch.
//
// The walk down the free list races with concurrent alloc/free, so a
// link read mid-walk may be stale — but the final CAS carries the ABA
// tag, so it only succeeds if the head (and therefore the whole walked
// prefix: nodes on the free list have stable links while the head is
// unchanged) is exactly as first read; any interference fails the CAS
// and the walk restarts.
func (p *Pool) AllocN(dst []Ref) int {
	if len(dst) == 0 {
		return 0
	}
	for {
		h := p.head.Load()
		tag, top := unpackHead(h)
		if top == NilRef {
			return 0
		}
		n := 0
		r := top
		for n < len(dst) && r != NilRef {
			dst[n] = r
			n++
			r = p.arena.Node(r).Next()
		}
		if p.head.CompareAndSwap(h, packHead(tag+1, r)) {
			p.free.Add(-int64(n))
			return n
		}
	}
}

// FreeN pushes all the given nodes back onto the free list with a
// single CAS: the refs are chained locally (plain stores — the caller
// owns them) and the whole chain is spliced onto the stack at once.
func (p *Pool) FreeN(refs []Ref) {
	if len(refs) == 0 {
		return
	}
	for i := 0; i < len(refs)-1; i++ {
		p.arena.Node(refs[i]).SetNext(refs[i+1])
	}
	last := p.arena.Node(refs[len(refs)-1])
	first := refs[0]
	for {
		h := p.head.Load()
		tag, top := unpackHead(h)
		last.SetNext(top)
		if p.head.CompareAndSwap(h, packHead(tag+1, first)) {
			p.free.Add(int64(len(refs)))
			return
		}
	}
}

// FreeCount returns the approximate number of free nodes.
func (p *Pool) FreeCount() int64 { return p.free.Load() }
