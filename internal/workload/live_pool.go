package workload

import (
	"fmt"
	"sync"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/livebind"
	"ulipc/internal/metrics"
)

// RunLivePool executes the worker-pool workload on the live runtime:
// LiveConfig.Workers server goroutines share the receive queue using the
// model-checked counted-waiters discipline.
func RunLivePool(cfg LiveConfig, workers int) (Result, error) {
	if workers < 1 {
		return Result{}, fmt.Errorf("workload: need at least 1 worker")
	}
	if cfg.Clients < 1 || cfg.Msgs < 1 {
		return Result{}, fmt.Errorf("workload: need at least 1 client and 1 message")
	}
	if cfg.SleepScale == 0 {
		cfg.SleepScale = time.Millisecond
	}
	ms := metrics.NewSet()
	maxSpin, _ := tuneFor(cfg.Alg, cfg.MaxSpin, 0)
	sys, err := livebind.NewSystem(livebind.Options{
		Alg:        cfg.Alg,
		MaxSpin:    maxSpin,
		Clients:    cfg.Clients,
		QueueCap:   cfg.QueueCap,
		QueueKind:  cfg.QueueKind,
		SpinIters:  cfg.SpinIters,
		SleepScale: cfg.SleepScale,
		Metrics:    ms,
	})
	if err != nil {
		return Result{}, err
	}
	pool, err := sys.WorkerPool(workers)
	if err != nil {
		return Result{}, err
	}

	var swg sync.WaitGroup
	for _, w := range pool {
		swg.Add(1)
		go func(w *core.PoolWorker) {
			defer swg.Done()
			w.Serve(nil)
		}(w)
	}

	var (
		startMu sync.Mutex
		started bool
		start   time.Time
		errsMu  sync.Mutex
		errs    []string
	)
	noteErr := func(format string, args ...any) {
		errsMu.Lock()
		if len(errs) < 8 {
			errs = append(errs, fmt.Sprintf(format, args...))
		}
		errsMu.Unlock()
	}

	var barrier, wg sync.WaitGroup
	barrier.Add(cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		cl, err := sys.PoolClient(i)
		if err != nil {
			return Result{}, err
		}
		wg.Add(1)
		go func(i int, cl *core.PoolClient) {
			defer wg.Done()
			if ans := cl.Send(core.Msg{Op: core.OpConnect}); ans.Op != core.OpConnect {
				noteErr("client%d: bad connect reply %+v", i, ans)
			}
			barrier.Done()
			barrier.Wait()
			startMu.Lock()
			if !started {
				start = time.Now()
				started = true
			}
			startMu.Unlock()
			for j := 0; j < cfg.Msgs; j++ {
				ans := cl.Send(core.Msg{Op: core.OpEcho, Seq: int32(j), Val: float64(j)})
				if ans.Seq != int32(j) || ans.Val != float64(j) {
					noteErr("client%d: reply mismatch at %d: %+v", i, j, ans)
				}
			}
			cl.Send(core.Msg{Op: core.OpDisconnect})
		}(i, cl)
	}
	wg.Wait()
	swg.Wait()
	end := time.Now()

	if len(errs) > 0 {
		return Result{}, fmt.Errorf("workload: live pool validation failed: %v", errs)
	}
	total := int64(cfg.Clients * cfg.Msgs)
	if served := pool[0].C.Served(); served != total {
		return Result{}, fmt.Errorf("workload: pool served %d, want %d", served, total)
	}
	dur := end.Sub(start)
	if dur <= 0 {
		dur = time.Nanosecond
	}
	res := Result{
		Label:      fmt.Sprintf("live-pool%d/%s/%dc", workers, cfg.Alg, cfg.Clients),
		Throughput: float64(total) / (float64(dur.Nanoseconds()) / 1e6),
		RTTMicros:  float64(dur.Nanoseconds()) / 1e3 / float64(cfg.Msgs),
		Duration:   dur.Nanoseconds(),
		TotalMsgs:  total,
	}
	res.Server = ms.ByPrefix("server")
	res.Clients = ms.ByPrefix("client")
	res.All = ms.Total()
	return res, nil
}
