package machine

import "testing"

func TestPresetsValidate(t *testing.T) {
	for _, m := range Presets() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	m := SGIIndy()
	m.Name = ""
	if m.Validate() == nil {
		t.Error("empty name accepted")
	}

	m = SGIIndy()
	m.CPUs = 0
	if m.Validate() == nil {
		t.Error("zero CPUs accepted")
	}

	m = SGIIndy()
	m.YieldCost = 0
	if m.Validate() == nil {
		t.Error("zero yield cost accepted")
	}

	m = SGIIndy()
	m.DecayPerUs = -1
	if m.Validate() == nil {
		t.Error("negative decay accepted")
	}
}

func TestCtxSwitchGrowsAndCaps(t *testing.T) {
	m := SGIIndy()
	base := m.CtxSwitch(1)
	if base != m.CtxSwitchBase {
		t.Fatalf("1 ready: %d, want base %d", base, m.CtxSwitchBase)
	}
	if m.CtxSwitch(2) != m.CtxSwitchBase {
		t.Fatal("2 ready must still be base")
	}
	four := m.CtxSwitch(4)
	if four != m.CtxSwitchBase+2*m.CtxSwitchPerProc {
		t.Fatalf("4 ready: %d", four)
	}
	big := m.CtxSwitch(1000)
	if big != m.CtxSwitchMax {
		t.Fatalf("1000 ready: %d, want cap %d", big, m.CtxSwitchMax)
	}
}

// TestTable1Anchors pins the SGI model to the paper's Table 1 numbers:
// these are inputs, not measurements, so equality is exact.
func TestTable1Anchors(t *testing.T) {
	m := SGIIndy()
	if got := m.EnqueueCost + m.DequeueCost; got != 3*Microsecond {
		t.Errorf("enq/deq pair = %d, want 3us", got)
	}
	if got := m.MsgSndCost + m.MsgRcvCost; got != 37*Microsecond {
		t.Errorf("msgsnd/msgrcv pair = %d, want 37us", got)
	}
	if m.YieldCost != 16*Microsecond {
		t.Errorf("yield = %d, want 16us", m.YieldCost)
	}
	if m.YieldCost+m.CtxSwitch(2) != 18*Microsecond {
		t.Errorf("2-process yield trip = %d, want 18us", m.YieldCost+m.CtxSwitch(2))
	}
}

func TestByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want string
	}{
		{"sgi", "SGI-Indy-IRIX6.2"},
		{"ibm", "IBM-P4-AIX4.1"},
		{"challenge", "SGI-Challenge-8P"},
		{"linux", "Linux-486-1.0.32"},
	} {
		m, ok := ByName(tc.name)
		if !ok || m.Name != tc.want {
			t.Errorf("ByName(%q) = %v, %v", tc.name, m, ok)
		}
	}
	if _, ok := ByName("cray"); ok {
		t.Error("unknown machine accepted")
	}
}

func TestChallengeIsMultiprocessor(t *testing.T) {
	m := SGIChallenge8()
	if m.CPUs != 8 {
		t.Fatalf("CPUs = %d", m.CPUs)
	}
	if !m.BusyWaitSpin {
		t.Fatal("Challenge busy_wait must be a spin loop, not yield")
	}
	if SGIIndy().BusyWaitSpin {
		t.Fatal("Indy busy_wait must be yield")
	}
}

func TestString(t *testing.T) {
	if s := SGIIndy().String(); s == "" {
		t.Error("empty String()")
	}
}
