package livebind

import "errors"

// Typed configuration and topology errors of the v2 entry points.
// NewSystem and the handle constructors wrap these sentinels (with
// detail text), so callers branch with errors.Is instead of matching
// message strings.
var (
	// ErrBadClients reports an Options.Clients value outside [1, ∞).
	ErrBadClients = errors.New("livebind: invalid client count")

	// ErrBadOption reports an Options field with a nonsensical value
	// (negative capacities, batch sizes, spin budgets, ...).
	ErrBadOption = errors.New("livebind: invalid option")

	// ErrSPSCTopology reports a configuration or handle acquisition that
	// would break the single-producer/single-consumer guarantee of an
	// SPSC ring — a second producer on a reply channel, KindSPSC for the
	// shared receive queue, a worker pool over explicit SPSC replies.
	ErrSPSCTopology = errors.New("livebind: SPSC topology violation")

	// ErrNoFreeSlots reports that Connect found every pre-allocated
	// client slot in use.
	ErrNoFreeSlots = errors.New("livebind: all client slots in use")

	// ErrBadTuning reports a contradictory tuning configuration: the
	// adaptive controller (WithAdaptive / Tuning.Adaptive / Alg BSA)
	// combined with a hand-set spin budget, a wake throttle, or an
	// explicit non-BSA protocol. The controller owns those knobs — a
	// fixed MaxSpin under BSA would be silently ignored, so it is
	// rejected instead.
	ErrBadTuning = errors.New("livebind: contradictory tuning")
)
