package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"ulipc/internal/metrics"
)

// fakeStore is a deterministic BlockStore for lease-conservation tests:
// it tracks every alloc/free and the lease owner per ref, so a test can
// assert that a drop path returned exactly the blocks it was handed.
type fakeStore struct {
	next    uint32
	bufs    map[uint32][]byte
	owners  map[uint32]uint32 // leased refs -> owner tag
	allocs  int
	frees   int
	freeErr error // injected Free failure
}

func newFakeStore() *fakeStore {
	return &fakeStore{bufs: map[uint32][]byte{}, owners: map[uint32]uint32{}}
}

func (s *fakeStore) Alloc(n int) (uint32, []byte, bool) {
	ref := s.next
	s.next++
	buf := make([]byte, n)
	s.bufs[ref] = buf
	s.allocs++
	return ref, buf, true
}

func (s *fakeStore) Get(ref uint32) ([]byte, error) {
	buf, ok := s.bufs[ref]
	if !ok {
		return nil, fmt.Errorf("fakeStore: get of unallocated ref %d", ref)
	}
	return buf, nil
}

func (s *fakeStore) Free(ref uint32) error {
	if s.freeErr != nil {
		return s.freeErr
	}
	if _, ok := s.bufs[ref]; !ok {
		return fmt.Errorf("fakeStore: double free of ref %d", ref)
	}
	delete(s.bufs, ref)
	delete(s.owners, ref)
	s.frees++
	return nil
}

func (s *fakeStore) Lease(ref uint32, owner uint32) error {
	if _, ok := s.bufs[ref]; !ok {
		return fmt.Errorf("fakeStore: lease of unallocated ref %d", ref)
	}
	s.owners[ref] = owner
	return nil
}

// Claim is single-winner: only a currently-leased block can be claimed.
func (s *fakeStore) Claim(ref uint32, owner uint32) bool {
	if _, ok := s.owners[ref]; !ok {
		return false
	}
	s.owners[ref] = owner
	return true
}

func (s *fakeStore) MaxBlock() int { return 1 << 16 }

// outstanding is the conservation check: blocks allocated minus blocks
// returned. Every drop path must leave this at zero.
func (s *fakeStore) outstanding() int { return s.allocs - s.frees }

var _ BlockStore = (*fakeStore)(nil)

// payloadMsg allocates and leases a block as a client would and stamps
// it onto a message, returning the message and its ref.
func payloadMsg(t *testing.T, store *fakeStore, client int32) (Msg, uint32) {
	t.Helper()
	p, err := allocPayload(store, uint32(client)+100, 64)
	if err != nil {
		t.Fatalf("allocPayload: %v", err)
	}
	m := Msg{Op: OpEcho, MsgMeta: MsgMeta{Client: client}}
	ref := p.Ref()
	m.AttachPayload(p)
	return m, ref
}

// closablePort is a fakePort with shutdown state, for driving the drop
// branches that trigger only on a refusing/closed reply channel.
type closablePort struct {
	fakePort
	refusing bool
	closed   bool
}

func (p *closablePort) Refusing() bool { return p.refusing }
func (p *closablePort) Closed() bool   { return p.closed }

var _ PortState = (*closablePort)(nil)

// ---- dropPayload conservation on every Reply drop path ----

// Reply to an out-of-range client number must claim-free the payload:
// the message is dropped, so the lease would otherwise be stranded on a
// live owner no sweeper walks.
func TestReplyInvalidClientFreesPayload(t *testing.T) {
	for _, client := range []int32{-1, 2, 99} {
		h := newServerHarness(BSW, 2, 0)
		store := newFakeStore()
		h.srv.Blocks = store
		h.srv.Owner = 1
		m, _ := payloadMsg(t, store, client)
		h.srv.Reply(client, m)
		if n := store.outstanding(); n != 0 {
			t.Errorf("client %d: %d blocks leaked by invalid-client drop", client, n)
		}
	}
}

// Reply onto a dead client's refusing channel (the sweeper closed it)
// must free the payload instead of stranding the lease.
func TestReplyDeadChannelFreesPayload(t *testing.T) {
	h := newServerHarness(BSW, 1, 0)
	store := newFakeStore()
	h.srv.Blocks = store
	h.srv.Owner = 1
	dead := &closablePort{fakePort: fakePort{capacity: 4, awake: true, sem: 1}, refusing: true}
	h.srv.Replies[0] = dead
	m, _ := payloadMsg(t, store, 0)
	h.srv.Reply(0, m)
	if len(dead.msgs) != 0 {
		t.Fatal("reply enqueued onto a refusing channel")
	}
	if n := store.outstanding(); n != 0 {
		t.Errorf("%d blocks leaked by dead-channel drop", n)
	}
}

// The BSS reply leg spins rather than sleeps; when the spin aborts on a
// closed port the payload must be freed on that path too.
func TestReplyBSSSpinAbortFreesPayload(t *testing.T) {
	h := newServerHarness(BSS, 1, 0)
	store := newFakeStore()
	h.srv.Blocks = store
	h.srv.Owner = 1
	// Zero capacity keeps TryEnqueue failing; closed aborts the spin.
	full := &closablePort{fakePort: fakePort{capacity: 0, awake: true, sem: 1}, closed: true}
	h.srv.Replies[0] = full
	m, _ := payloadMsg(t, store, 0)
	h.srv.Reply(0, m)
	if n := store.outstanding(); n != 0 {
		t.Errorf("%d blocks leaked by BSS spin-abort drop", n)
	}
}

// A delivered reply must NOT free the payload — the lease rides the
// message to the client. This pins the drop paths to dropping only.
func TestReplyDeliveredKeepsPayloadLease(t *testing.T) {
	h := newServerHarness(BSW, 1, 0)
	store := newFakeStore()
	h.srv.Blocks = store
	h.srv.Owner = 1
	m, ref := payloadMsg(t, store, 0)
	h.srv.Reply(0, m)
	if len(h.replies[0].msgs) != 1 {
		t.Fatal("reply not delivered")
	}
	if n := store.outstanding(); n != 1 {
		t.Fatalf("delivered reply changed outstanding blocks: %d, want 1", n)
	}
	// The receiving client can still claim it.
	if !store.Claim(ref, 7) {
		t.Error("lease not claimable by the receiver after delivery")
	}
}

// dropPayload itself: claim-then-free exactly once, no-ops on messages
// without a block and on already-reclaimed (sweeper-won) blocks.
func TestDropPayloadIdempotent(t *testing.T) {
	store := newFakeStore()
	m, _ := payloadMsg(t, store, 0)
	dropPayload(store, 1, m)
	if n := store.outstanding(); n != 0 {
		t.Fatalf("outstanding = %d after drop, want 0", n)
	}
	// Second drop of the same message: Claim fails (no lease), no
	// double free.
	dropPayload(store, 1, m)
	if store.frees != 1 {
		t.Errorf("frees = %d, want 1 (double free)", store.frees)
	}
	// No block: untouched store.
	dropPayload(store, 1, Msg{Op: OpEcho})
	if store.frees != 1 || store.allocs != 1 {
		t.Errorf("no-block drop touched the store: %+v", store)
	}
	// Nil store: must not panic.
	dropPayload(nil, 1, m)
}

// ---- Server.shed ----

// shedHarness wires a controllable clock into a server's ShedPolicy:
// deadlines ride in Val, Now is the test's variable.
func shedHarness(t *testing.T, alg Algorithm, clients int) (*serverHarness, *int64) {
	t.Helper()
	h := newServerHarness(alg, clients, 4)
	now := new(int64)
	h.srv.M = &metrics.Proc{}
	h.srv.Shed = &ShedPolicy{
		Deadline: func(m Msg) (int64, bool) {
			if m.Op != OpEcho && m.Op != OpWork {
				return 0, false // control traffic is exempt
			}
			return int64(m.Val), true
		},
		Now: func() int64 { return *now },
	}
	return h, now
}

// An expired message is dropped at dequeue: Receive skips it, counts
// the shed, frees its payload, and the fresh message behind it is
// served instead.
func TestShedDropsExpiredAtDequeue(t *testing.T) {
	for _, alg := range Algorithms() {
		h, now := shedHarness(t, alg, 1)
		store := newFakeStore()
		h.srv.Blocks = store
		h.srv.Owner = 1
		*now = 100
		expired, _ := payloadMsg(t, store, 0)
		expired.Seq, expired.Val = 1, 50 // deadline 50 < now 100
		fresh := Msg{Op: OpEcho, Seq: 2, Val: 200, MsgMeta: MsgMeta{Client: 0}}
		h.push(expired)
		h.push(fresh)
		m := h.srv.Receive()
		if m.Seq != 2 {
			t.Errorf("%s: served %+v, want the fresh Seq=2", alg, m)
		}
		if got := h.srv.M.Sheds.Load(); got != 1 {
			t.Errorf("%s: Sheds = %d, want 1", alg, got)
		}
		if n := store.outstanding(); n != 0 {
			t.Errorf("%s: %d blocks leaked by shed", alg, n)
		}
	}
}

// The shed wake is TAS-guarded exactly like a reply's: one compensating
// V for a sleeping sender (so a client parked on the never-coming reply
// re-checks its queue), none for an awake one (no token accumulation).
func TestShedWakeTokenConservation(t *testing.T) {
	h, now := shedHarness(t, BSW, 2)
	*now = 100
	// Client 0 is asleep (awake flag clear): shedding its message must
	// V its semaphore once.
	h.replies[0].awake = false
	if !h.srv.shed(Msg{Op: OpEcho, Val: 50, MsgMeta: MsgMeta{Client: 0}}) {
		t.Fatal("expired message not shed")
	}
	if h.a.sems[1] != 1 {
		t.Errorf("sleeping sender sem = %d, want 1 compensating V", h.a.sems[1])
	}
	// Its flag is now set; a second shed for the same client must not
	// accumulate another token.
	if !h.srv.shed(Msg{Op: OpEcho, Val: 60, MsgMeta: MsgMeta{Client: 0}}) {
		t.Fatal("second expired message not shed")
	}
	if h.a.sems[1] != 1 {
		t.Errorf("sem = %d after second shed, want still 1 (TAS guard)", h.a.sems[1])
	}
	// Client 1 is awake: no V at all.
	h.replies[1].awake = true
	if !h.srv.shed(Msg{Op: OpEcho, Val: 50, MsgMeta: MsgMeta{Client: 1}}) {
		t.Fatal("expired message not shed")
	}
	if h.a.sems[2] != 0 {
		t.Errorf("awake sender sem = %d, want 0", h.a.sems[2])
	}
	if got := h.srv.M.Sheds.Load(); got != 3 {
		t.Errorf("Sheds = %d, want 3", got)
	}
}

// Fresh messages, exempt ops, and unstamped policies pass through.
func TestShedPassThrough(t *testing.T) {
	h, now := shedHarness(t, BSW, 1)
	*now = 100
	for _, tc := range []struct {
		name string
		m    Msg
	}{
		{"fresh", Msg{Op: OpEcho, Val: 200, MsgMeta: MsgMeta{Client: 0}}},
		{"deadline-now", Msg{Op: OpEcho, Val: 101, MsgMeta: MsgMeta{Client: 0}}},
		{"control", Msg{Op: OpConnect, Val: 50, MsgMeta: MsgMeta{Client: 0}}},
	} {
		if h.srv.shed(tc.m) {
			t.Errorf("%s message shed", tc.name)
		}
	}
	if got := h.srv.M.Sheds.Load(); got != 0 {
		t.Errorf("Sheds = %d, want 0", got)
	}
	// No policy at all: never sheds.
	h.srv.Shed = nil
	if h.srv.shed(Msg{Op: OpEcho, Val: 0, MsgMeta: MsgMeta{Client: 0}}) {
		t.Error("shed with nil policy")
	}
}

// Shedding a message from an invalid client must still free the payload
// but not touch any reply channel.
func TestShedInvalidClient(t *testing.T) {
	h, now := shedHarness(t, BSW, 1)
	store := newFakeStore()
	h.srv.Blocks = store
	h.srv.Owner = 1
	*now = 100
	m, _ := payloadMsg(t, store, 99)
	m.Val = 50
	if !h.srv.shed(m) {
		t.Fatal("expired message not shed")
	}
	if n := store.outstanding(); n != 0 {
		t.Errorf("%d blocks leaked", n)
	}
	if h.a.sems[1] != 0 {
		t.Errorf("wake issued for invalid client: sem = %d", h.a.sems[1])
	}
}

// ---- bounded admission ----

// depthPort is a fakePort that reports a configurable queue depth.
type depthPort struct {
	fakePort
	depth int
}

func (p *depthPort) Depth() int { return p.depth }

var _ DepthPort = (*depthPort)(nil)

func TestClientAdmit(t *testing.T) {
	srv := &depthPort{fakePort: fakePort{capacity: 64, awake: true}}
	c := &Client{ID: 0, Alg: BSW, Srv: srv, M: &metrics.Proc{}}

	// Disabled (HighWater 0): always admits, even at huge depth.
	srv.depth = 1 << 20
	if err := c.admit(); err != nil {
		t.Fatalf("admit with HighWater 0: %v", err)
	}

	c.HighWater = 16
	srv.depth = 15
	if err := c.admit(); err != nil {
		t.Fatalf("admit below high water: %v", err)
	}
	srv.depth = 16 // at the mark: reject (>=, not >)
	if err := c.admit(); !errors.Is(err, ErrOverload) {
		t.Fatalf("admit at high water: %v, want ErrOverload", err)
	}
	srv.depth = 17
	if err := c.admit(); !errors.Is(err, ErrOverload) {
		t.Fatalf("admit above high water: %v, want ErrOverload", err)
	}
	if got := c.M.Overloads.Load(); got != 2 {
		t.Errorf("Overloads = %d, want 2", got)
	}

	// A port that cannot report depth admits everything.
	c.Srv = newFakePort(0, 1)
	if err := c.admit(); err != nil {
		t.Fatalf("admit on depthless port: %v", err)
	}
}

// SendAsyncCtx surfaces the admission reject before enqueueing anything.
func TestSendAsyncCtxAdmission(t *testing.T) {
	srv := &depthPort{fakePort: fakePort{capacity: 64, awake: true}, depth: 50}
	c := &Client{ID: 0, Alg: BSW, Srv: srv, Rcv: newFakePort(1, 4),
		A: newFakeActor(2), M: &metrics.Proc{}, HighWater: 48}
	err := c.SendAsyncCtx(context.Background(), Msg{Op: OpEcho})
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("SendAsyncCtx over high water: %v, want ErrOverload", err)
	}
	if srv.enqAttempts != 0 {
		t.Errorf("rejected send still attempted %d enqueues", srv.enqAttempts)
	}
	srv.depth = 0
	if err := c.SendAsyncCtx(context.Background(), Msg{Op: OpEcho}); err != nil {
		t.Fatalf("SendAsyncCtx under high water: %v", err)
	}
	if len(srv.msgs) != 1 {
		t.Fatalf("admitted send not enqueued")
	}
}

// ---- retry budget ----

func TestRetryBudget(t *testing.T) {
	// Nil and disabled budgets never refuse.
	var nb *RetryBudget
	for i := 0; i < 100; i++ {
		if !nb.take() {
			t.Fatal("nil budget refused")
		}
	}
	nb.credit() // must not panic
	zb := &RetryBudget{}
	if !zb.take() {
		t.Fatal("zero budget refused")
	}

	b := &RetryBudget{Cap: 3, Refill: 0.5}
	b.credit() // pre-priming credit is a no-op (bucket already full)
	for i := 0; i < 3; i++ {
		if !b.take() {
			t.Fatalf("take %d refused with tokens left", i)
		}
	}
	if b.take() {
		t.Fatal("take succeeded on a dry bucket")
	}
	// One credit is half a token — still dry; a second makes a whole.
	b.credit()
	if b.take() {
		t.Fatal("take succeeded on half a token")
	}
	b.credit()
	b.credit()
	if !b.take() {
		t.Fatal("take refused after refill")
	}
	// Refill caps at Cap.
	for i := 0; i < 100; i++ {
		b.credit()
	}
	if b.tokens > b.Cap {
		t.Fatalf("tokens %g exceed cap %g", b.tokens, b.Cap)
	}
}

// ---- jittered backoff (the deduplicated full-queue nap helper) ----

func TestBackoffJitterAndCeiling(t *testing.T) {
	var b backoff
	ceil := 1
	for i := 0; i < 16; i++ {
		n := b.next()
		if n < 1 || n > ceil {
			t.Fatalf("nap %d outside [1,%d] at round %d", n, ceil, i)
		}
		if ceil < 8 {
			ceil <<= 1
		}
	}
	if b.nap != 8 {
		t.Errorf("ceiling = %d after growth, want 8", b.nap)
	}
	b.reset()
	if b.nap != 1 {
		t.Errorf("ceiling = %d after reset, want 1", b.nap)
	}
	if n := b.next(); n != 1 {
		t.Errorf("first nap after reset = %d, want 1", n)
	}

	// Dealiasing: two fresh backoffs draw from distinct jitter streams.
	var b1, b2 backoff
	b1.next()
	b2.next()
	if b1.rng == b2.rng {
		t.Error("two backoffs share a jitter state: retry storms stay in phase")
	}
}

// backoff.sleep is one full-queue retry round: Retries always counts,
// a dry budget converts to ErrOverload + Overloads, otherwise the
// jittered nap runs.
func TestBackoffSleep(t *testing.T) {
	a := &ctxFakeActor{fakeActor: newFakeActor(1)}
	pm := &metrics.Proc{}
	var bo backoff
	budget := &RetryBudget{Cap: 2}

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := bo.sleep(ctx, a, budget, pm); err != nil {
			t.Fatalf("sleep %d: %v", i, err)
		}
	}
	if len(a.sleptFor) != 2 {
		t.Fatalf("napped %d times, want 2", len(a.sleptFor))
	}
	if err := bo.sleep(ctx, a, budget, pm); !errors.Is(err, ErrOverload) {
		t.Fatalf("sleep on dry budget: %v, want ErrOverload", err)
	}
	if got := pm.Retries.Load(); got != 3 {
		t.Errorf("Retries = %d, want 3 (counted even when refused)", got)
	}
	if got := pm.Overloads.Load(); got != 1 {
		t.Errorf("Overloads = %d, want 1", got)
	}
	// Unbounded budget: nil never refuses.
	if err := bo.sleep(ctx, a, nil, pm); err != nil {
		t.Fatalf("sleep with nil budget: %v", err)
	}
	// A non-ctx actor cannot nap cancellably.
	if err := bo.sleep(ctx, nil, nil, pm); !errors.Is(err, ErrNotCancellable) {
		t.Fatalf("sleep without CtxActor: %v, want ErrNotCancellable", err)
	}
}
