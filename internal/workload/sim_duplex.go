package workload

import (
	"fmt"
	"sync/atomic"

	"ulipc/internal/core"
	"ulipc/internal/metrics"
	"ulipc/internal/sim"
	"ulipc/internal/simbind"
)

// runSimDuplex runs the thread-per-client architecture (Section 2.1's
// alternative): one server handler process per client, with a pair of
// unidirectional queues forming a full-duplex virtual connection.
func runSimDuplex(k *sim.Kernel, cfg Config, ms *metrics.Set) (Result, error) {
	rec := &recorder{}
	capacity := cfg.queueCap()
	op := opForRun(cfg)
	barrier := k.NewBarrier(cfg.Clients)

	type connQueues struct {
		c2s *simbind.SQueue
		s2c *simbind.SQueue
	}
	conns := make([]connQueues, cfg.Clients)
	for i := range conns {
		conns[i] = connQueues{
			c2s: simbind.NewQueue(k, fmt.Sprintf("c2s%d", i), capacity),
			s2c: simbind.NewQueue(k, fmt.Sprintf("s2c%d", i), capacity),
		}
	}

	var remaining atomic.Int64
	remaining.Store(int64(cfg.Clients))

	var stop atomic.Bool
	spawnBackground(k, cfg, &stop)

	for i := 0; i < cfg.Clients; i++ {
		i := i
		k.Spawn(fmt.Sprintf("server%d", i), cfg.ServerPrio, func(p *sim.Proc) {
			h := &core.DuplexHandler{
				Alg:     cfg.Alg,
				MaxSpin: cfg.MaxSpin,
				Rcv:     simbind.NewPort(p, conns[i].c2s),
				Snd:     simbind.NewPort(p, conns[i].s2c),
				A:       simbind.NewActor(p),
				M:       p.M,
			}
			var work func(*core.Msg)
			if cfg.ServerWork > 0 {
				work = func(*core.Msg) { p.Step(cfg.ServerWork) }
			}
			h.ServeConn(work)
			if remaining.Add(-1) == 0 {
				rec.lastDone = p.Now()
				stop.Store(true)
			}
		})
	}

	for i := 0; i < cfg.Clients; i++ {
		i := i
		k.Spawn(fmt.Sprintf("client%d", i), cfg.ClientPrio, func(p *sim.Proc) {
			cl := &core.DuplexClient{
				Alg:     cfg.Alg,
				MaxSpin: cfg.MaxSpin,
				Snd:     simbind.NewPort(p, conns[i].c2s),
				Rcv:     simbind.NewPort(p, conns[i].s2c),
				A:       simbind.NewActor(p),
				M:       p.M,
			}
			ans := cl.Send(core.Msg{Op: core.OpConnect})
			if ans.Op != core.OpConnect {
				rec.noteErr("client%d: bad connect reply op %d", i, ans.Op)
			}
			p.Barrier(barrier)
			rec.noteStart(p.Now())
			for j := 0; j < cfg.Msgs; j++ {
				if cfg.ClientThink > 0 {
					p.Step(cfg.ClientThink)
				}
				ans := cl.Send(core.Msg{Op: op, Seq: int32(j), Val: float64(j)})
				if ans.Seq != int32(j) || ans.Val != float64(j) {
					rec.noteErr("client%d: reply mismatch at %d: %+v", i, j, ans)
				}
			}
			cl.Send(core.Msg{Op: core.OpDisconnect})
		})
	}

	if err := k.Run(); err != nil {
		return Result{}, err
	}
	label := fmt.Sprintf("%s-duplex/%s/%dc", cfg.Alg, cfg.Machine.Name, cfg.Clients)
	res, err := buildResult(cfg, rec, ms, label)
	if err != nil {
		return Result{}, err
	}
	// Aggregate the per-connection server handlers under Server.
	res.Server = ms.ByPrefix("server")
	return res, nil
}
