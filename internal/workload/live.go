package workload

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/livebind"
	"ulipc/internal/metrics"
	"ulipc/internal/obs"
	"ulipc/internal/queue"
)

// LiveConfig describes a live (real goroutine) benchmark run.
type LiveConfig struct {
	Alg       core.Algorithm
	Clients   int
	Msgs      int
	MaxSpin   int
	QueueCap  int
	QueueKind queue.Kind
	SpinIters int // >0: multiprocessor busy_wait flavour
	Throttle  int

	// ReplyKind selects the reply-queue implementation. Unlike the
	// library default (SPSC), a nil ReplyKind here follows QueueKind, so
	// experiment sweeps over queue kinds (ablation A2) keep comparing
	// the same implementation on both legs of the round trip. Point it
	// at queue.KindSPSC to measure the reply fast path.
	ReplyKind *queue.Kind

	// AllocBatch enables producer-side allocation batching (see
	// livebind.Options.AllocBatch).
	AllocBatch int

	// SleepScale compresses the queue-full sleep(1) so tests and benches
	// don't stall for wall-clock seconds; defaults to 1ms per "second".
	SleepScale time.Duration

	// Watchdog, when positive, runs the workload on the context-threaded
	// paths (SendCtx/ServeCtx) under a deadline: if any participant is
	// still blocked past it — a deadlocked cell — the run shuts the
	// system down, reports partial results and returns an error instead
	// of hanging forever. Zero keeps the legacy error-less fast path.
	Watchdog time.Duration

	// Observe attaches phase-latency histograms to the run: the Result's
	// Phase field then reports RTT/queue-wait/spin/sleep distributions
	// for the cell's protocol. Off by default so legacy callers keep the
	// uninstrumented fast path.
	Observe bool

	// RecorderCap, when positive (and Observe is set), additionally
	// attaches a flight recorder holding the most recent RecorderCap IPC
	// events.
	RecorderCap int

	// DumpOnWatchdog, when non-nil, receives a flight-recorder dump if
	// the watchdog deadline trips — the last events before the stall.
	// Requires Observe and RecorderCap.
	DumpOnWatchdog io.Writer

	// Shards, when > 0, runs the cell against a server group of that
	// many shards (livebind.Options.Shards): per-client SPSC request
	// lanes, client-side shard selection, bounded work stealing, and
	// the vectored SendBatch/ServeBatch paths. QueueKind, ReplyKind and
	// Throttle do not apply in group mode (the lane mesh is
	// structurally SPSC).
	Shards int

	// Batch is the vectored transfer size in group mode (messages per
	// SendBatch / per ServeBatch receive buffer); default 16.
	Batch int

	// NoSteal disables inter-shard work stealing in group mode.
	NoSteal bool

	// Picker selects the client-side shard policy in group mode; nil
	// defaults to hash pinning.
	Picker livebind.ShardPicker

	// PaySize, when > 0, attaches a payload of that many bytes to every
	// request (and its echo): the system is built with a slab arena and
	// clients exchange leased blocks instead of bare 24-byte messages.
	// Payload cells always run the context-threaded paths (SendPayload
	// is context-based), so a zero Watchdog gets a generous default.
	// Not supported in group mode (the vectored batch paths move
	// fixed-size messages only).
	PaySize int

	// PayCopy selects the copy-in/copy-out baseline for the A/B axis:
	// the client copies bytes through a private scratch buffer on both
	// legs and the server re-allocates and copies the echo, so every
	// round trip pays the memcpys zero-copy elides.
	PayCopy bool

	// Blocks overrides the arena slot count; default 4*(Clients+1),
	// minimum 32.
	Blocks int
}

// tuneFor zeroes the hand-tuned knobs when alg is BSA: the controller
// owns the spin budget and the backoff, and NewSystem rejects the
// combination with ErrBadTuning.
func tuneFor(alg core.Algorithm, maxSpin, throttle int) (int, int) {
	if alg == core.BSA {
		return 0, 0
	}
	return maxSpin, throttle
}

// RunLive executes the client/server workload on the live runtime and
// returns wall-clock results. With cfg.Watchdog set it runs the
// context-threaded variant (see LiveConfig.Watchdog).
func RunLive(cfg LiveConfig) (Result, error) {
	if cfg.Clients < 1 {
		return Result{}, fmt.Errorf("workload: need at least 1 client")
	}
	if cfg.Msgs < 1 {
		return Result{}, fmt.Errorf("workload: need at least 1 message")
	}
	if cfg.SleepScale == 0 {
		cfg.SleepScale = time.Millisecond
	}
	blockSlots := 0
	if cfg.PaySize > 0 {
		if cfg.Shards > 0 {
			return Result{}, fmt.Errorf("workload: payload cells not supported in group mode")
		}
		blockSlots = cfg.Blocks
		if blockSlots <= 0 {
			blockSlots = 4 * (cfg.Clients + 1)
			if blockSlots < 32 {
				blockSlots = 32
			}
		}
		if cfg.Watchdog <= 0 {
			cfg.Watchdog = 2 * time.Minute
		}
	}
	replyKind := cfg.QueueKind
	if cfg.ReplyKind != nil {
		replyKind = *cfg.ReplyKind
	}
	maxSpin, throttle := tuneFor(cfg.Alg, cfg.MaxSpin, cfg.Throttle)
	ms := metrics.NewSet()
	var observer *obs.Observer
	if cfg.Observe {
		observer = obs.New(obs.Config{RecorderCap: cfg.RecorderCap})
		if cfg.RecorderCap > 0 {
			// Post-mortem on demand: SIGQUIT dumps the ring (and the
			// histogram exposition) to stderr while the cell runs,
			// mirroring the Go runtime's own dump-on-SIGQUIT.
			stop := observer.DumpOnSignal(syscall.SIGQUIT)
			defer stop()
		}
	}
	if cfg.Shards > 0 {
		sys, err := livebind.NewSystemGroup(cfg.Shards, livebind.Options{
			Alg:        cfg.Alg,
			MaxSpin:    maxSpin,
			Clients:    cfg.Clients,
			QueueCap:   cfg.QueueCap,
			AllocBatch: cfg.AllocBatch,
			SpinIters:  cfg.SpinIters,
			SleepScale: cfg.SleepScale,
			NoSteal:    cfg.NoSteal,
			Picker:     cfg.Picker,
			Metrics:    ms,
			Observer:   observer,
		})
		if err != nil {
			return Result{}, err
		}
		return runLiveGroup(cfg, sys, ms)
	}
	sys, err := livebind.NewSystem(livebind.Options{
		Alg:        cfg.Alg,
		MaxSpin:    maxSpin,
		Clients:    cfg.Clients,
		QueueCap:   cfg.QueueCap,
		QueueKind:  cfg.QueueKind,
		AllocBatch: cfg.AllocBatch,
		BlockSlots: blockSlots,
		SpinIters:  cfg.SpinIters,
		Throttle:   throttle,
		SleepScale: cfg.SleepScale,
		Metrics:    ms,
		Observer:   observer,
	}, livebind.WithReplyKind(replyKind))
	if err != nil {
		return Result{}, err
	}
	if cfg.Watchdog > 0 {
		return runLiveCtx(cfg, sys, ms)
	}

	var (
		startMu  sync.Mutex
		started  bool
		start    time.Time
		errsMu   sync.Mutex
		errs     []string
		serveEnd time.Time
	)
	noteStart := func() {
		startMu.Lock()
		if !started {
			start = time.Now()
			started = true
		}
		startMu.Unlock()
	}
	noteErr := func(format string, args ...any) {
		errsMu.Lock()
		if len(errs) < 8 {
			errs = append(errs, fmt.Sprintf(format, args...))
		}
		errsMu.Unlock()
	}

	srv := sys.Server()
	serverDone := make(chan int64, 1)
	go func() {
		served := srv.Serve(nil)
		serveEnd = time.Now()
		serverDone <- served
	}()

	var barrier sync.WaitGroup
	barrier.Add(cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		cl, err := sys.Client(i)
		if err != nil {
			return Result{}, err
		}
		wg.Add(1)
		go func(i int, cl *core.Client) {
			defer wg.Done()
			if ans := cl.Send(core.Msg{Op: core.OpConnect}); ans.Op != core.OpConnect {
				noteErr("client%d: bad connect reply %+v", i, ans)
			}
			barrier.Done()
			barrier.Wait()
			noteStart()
			for j := 0; j < cfg.Msgs; j++ {
				ans := cl.Send(core.Msg{Op: core.OpEcho, Seq: int32(j), Val: float64(j)})
				if ans.Seq != int32(j) || ans.Val != float64(j) {
					noteErr("client%d: reply mismatch at %d: %+v", i, j, ans)
				}
			}
			cl.Send(core.Msg{Op: core.OpDisconnect})
			livebind.DrainPort(cl.Srv)
		}(i, cl)
	}
	wg.Wait()
	served := <-serverDone
	for _, p := range srv.Replies {
		livebind.DrainPort(p)
	}

	if len(errs) > 0 {
		return Result{}, fmt.Errorf("workload: live validation failed: %v", errs)
	}
	total := int64(cfg.Clients * cfg.Msgs)
	if served != total {
		return Result{}, fmt.Errorf("workload: server served %d, want %d", served, total)
	}
	dur := serveEnd.Sub(start)
	if dur <= 0 {
		dur = time.Nanosecond
	}
	res := Result{
		Label:      fmt.Sprintf("live/%s/%dc", cfg.Alg, cfg.Clients),
		Throughput: float64(total) / (float64(dur.Nanoseconds()) / 1e6),
		RTTMicros:  float64(dur.Nanoseconds()) / 1e3 / float64(cfg.Msgs),
		Duration:   dur.Nanoseconds(),
		TotalMsgs:  total,
	}
	if s, ok := ms.Find("server"); ok {
		res.Server = s
	}
	res.Clients = ms.ByPrefix("client")
	res.All = ms.Total()
	res.Phase = phaseSnap(sys.Observer(), cfg.Alg)
	return res, nil
}

// phaseSnap extracts the phase-histogram snapshot for the benchmarked
// protocol (nil without an observer).
func phaseSnap(o *obs.Observer, alg core.Algorithm) *obs.ProtoSnapshot {
	if o == nil {
		return nil
	}
	p := o.Proto(int(alg))
	if p == nil {
		return nil
	}
	s := p.Snapshot(alg.String())
	return &s
}

// runLiveCtx is the watchdog variant of RunLive: the whole workload
// runs on the context-threaded paths under cfg.Watchdog. A cell that
// deadlocks (a protocol bug, a lost wake-up) trips the deadline instead
// of hanging the process: every blocked participant returns
// context.DeadlineExceeded, the system is shut down, and the partial
// results come back alongside the error.
func runLiveCtx(cfg LiveConfig, sys *livebind.System, ms *metrics.Set) (Result, error) {
	rootCtx, cancel := context.WithTimeout(context.Background(), cfg.Watchdog)
	defer cancel()

	var (
		startMu  sync.Mutex
		started  bool
		start    time.Time
		errsMu   sync.Mutex
		errs     []string
		serveEnd time.Time
	)
	noteStart := func() {
		startMu.Lock()
		if !started {
			start = time.Now()
			started = true
		}
		startMu.Unlock()
	}
	noteErr := func(format string, args ...any) {
		errsMu.Lock()
		if len(errs) < 8 {
			errs = append(errs, fmt.Sprintf(format, args...))
		}
		errsMu.Unlock()
	}

	srv := sys.Server()
	// Payload cells route requests through the OpWork handler: the
	// server claims the request lease and re-attaches it to the reply
	// (zero-copy), or pays the full re-alloc + memcpy (copy baseline).
	var work func(*core.Msg)
	if cfg.PaySize > 0 {
		work = func(m *core.Msg) {
			p, err := srv.Payload(*m)
			if err != nil {
				m.ClearBlock()
				return
			}
			if cfg.PayCopy {
				q, err := srv.AllocPayload(p.Len())
				if err == nil {
					copy(q.Bytes(), p.Bytes())
					_ = p.Release()
					p = q
				}
			}
			m.AttachPayload(p)
		}
	}
	serverDone := make(chan int64, 1)
	go func() {
		served, err := srv.ServeCtx(rootCtx, work)
		if err != nil {
			noteErr("server: %v", err)
		}
		serveEnd = time.Now()
		serverDone <- served
	}()

	var barrier sync.WaitGroup
	barrier.Add(cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		cl, err := sys.Client(i)
		if err != nil {
			return Result{}, err
		}
		wg.Add(1)
		go func(i int, cl *core.Client) {
			defer wg.Done()
			defer livebind.DrainPort(cl.Srv)
			// Each client derives its own child context: cancellation
			// still fans out from rootCtx, but the per-message Err()
			// polls hit a per-client mutex instead of contending on one
			// shared context across every client goroutine.
			cctx, ccancel := context.WithCancel(rootCtx)
			defer ccancel()
			if ans, err := cl.SendCtx(cctx, core.Msg{Op: core.OpConnect}); err != nil {
				noteErr("client%d: connect: %v", i, err)
				barrier.Done()
				return
			} else if ans.Op != core.OpConnect {
				noteErr("client%d: bad connect reply %+v", i, ans)
			}
			barrier.Done()
			barrier.Wait()
			noteStart()
			var pe *payEcho
			if cfg.PaySize > 0 {
				pe = &payEcho{cl: cl, size: cfg.PaySize}
				if cfg.PayCopy {
					pe.scratch = make([]byte, cfg.PaySize)
				}
				defer pe.close()
			}
			for j := 0; j < cfg.Msgs; j++ {
				m := core.Msg{Op: core.OpEcho, Seq: int32(j), Val: float64(j)}
				var ans core.Msg
				var err error
				if pe != nil {
					m.Op = core.OpWork
					ans, err = pe.echo(cctx, m)
				} else {
					ans, err = cl.SendCtx(cctx, m)
				}
				if err != nil {
					noteErr("client%d: send %d: %v", i, j, err)
					return
				}
				if ans.Seq != int32(j) || ans.Val != float64(j) {
					noteErr("client%d: reply mismatch at %d: %+v", i, j, ans)
				}
			}
			if pe != nil {
				pe.close()
			}
			if _, err := cl.SendCtx(cctx, core.Msg{Op: core.OpDisconnect}); err != nil {
				noteErr("client%d: disconnect: %v", i, err)
			}
		}(i, cl)
	}
	wg.Wait()
	// Flight-recorder dump on a tripped watchdog: the ring holds the
	// last events before the stall, which is exactly the interleaving a
	// deadlock post-mortem needs. The dump is always captured into the
	// Result (so reports can embed it) and mirrored to DumpOnWatchdog
	// when a sink is configured.
	var flightDump string
	if rootCtx.Err() != nil {
		var buf strings.Builder
		out := io.Writer(&buf)
		if cfg.DumpOnWatchdog != nil {
			out = io.MultiWriter(&buf, cfg.DumpOnWatchdog)
		}
		sys.DumpFlightRecorder(out)
		flightDump = buf.String()
	}
	// Unblock the server if clients bailed out without completing the
	// disconnect protocol (watchdog tripped), then tear the system down;
	// Shutdown also spills any batched producer caches.
	cancel()
	served := <-serverDone
	shutCtx, shutCancel := context.WithTimeout(context.Background(), time.Second)
	if err := sys.Shutdown(shutCtx); err != nil {
		noteErr("shutdown: %v", err)
	}
	shutCancel()
	// Lease-conservation audit: with every participant gone and the
	// caches spilled, a clean cell must have returned every block.
	if pool := sys.Blocks(); pool != nil && rootCtx.Err() == nil {
		if leaked := int64(pool.Capacity()) - pool.TotalFree(); leaked != 0 {
			noteErr("payload blocks leaked: %d", leaked)
		}
	}

	if !started {
		start = time.Now()
		serveEnd = start
	}
	dur := serveEnd.Sub(start)
	if dur <= 0 {
		dur = time.Nanosecond
	}
	total := int64(cfg.Clients * cfg.Msgs)
	label := fmt.Sprintf("live/%s/%dc", cfg.Alg, cfg.Clients)
	if cfg.PaySize > 0 {
		mode := "zc"
		if cfg.PayCopy {
			mode = "copy"
		}
		label = fmt.Sprintf("%s/p%d/%s", label, cfg.PaySize, mode)
	}
	res := Result{
		Label:      label,
		Throughput: float64(served) / (float64(dur.Nanoseconds()) / 1e6),
		RTTMicros:  float64(dur.Nanoseconds()) / 1e3 / float64(cfg.Msgs),
		Duration:   dur.Nanoseconds(),
		TotalMsgs:  served,
	}
	if s, ok := ms.Find("server"); ok {
		res.Server = s
	}
	res.Clients = ms.ByPrefix("client")
	res.All = ms.Total()
	res.Phase = phaseSnap(sys.Observer(), cfg.Alg)
	res.FlightDump = flightDump
	if cfg.PaySize > 0 {
		res.PaySize, res.PayCopy = cfg.PaySize, cfg.PayCopy
		res.BytesPerSec = float64(served*2*int64(cfg.PaySize)) / (float64(dur.Nanoseconds()) / 1e9)
	}

	if len(errs) > 0 {
		return res, fmt.Errorf("workload: live validation failed: %v", errs)
	}
	if served != total {
		return res, fmt.Errorf("workload: server served %d, want %d", served, total)
	}
	return res, nil
}

// runLiveGroup is the server-group variant of RunLive: every shard runs
// a vectored ServeBatch loop on its own goroutine, every client pushes
// its messages in SendBatch bursts of cfg.Batch. The harness skips the
// connect/disconnect handshake — shard membership is static and work
// stealing may carry a control op's bookkeeping to the wrong shard —
// so shards exit on the Shutdown marker once every client is done.
// Replies are validated as a per-batch multiset: stealing means another
// shard may answer, and answers may interleave, but every client must
// get exactly its own sequence set back.
func runLiveGroup(cfg LiveConfig, sys *livebind.System, ms *metrics.Set) (Result, error) {
	batch := cfg.Batch
	if batch < 1 {
		batch = 16
	}
	rootCtx := context.Background()
	var cancel context.CancelFunc = func() {}
	if cfg.Watchdog > 0 {
		rootCtx, cancel = context.WithTimeout(rootCtx, cfg.Watchdog)
	}
	defer cancel()

	var (
		startMu sync.Mutex
		started bool
		start   time.Time
		errsMu  sync.Mutex
		errs    []string
	)
	noteStart := func() {
		startMu.Lock()
		if !started {
			start = time.Now()
			started = true
		}
		startMu.Unlock()
	}
	noteErr := func(format string, args ...any) {
		errsMu.Lock()
		if len(errs) < 8 {
			errs = append(errs, fmt.Sprintf(format, args...))
		}
		errsMu.Unlock()
	}

	srvs, err := sys.ShardServers()
	if err != nil {
		return Result{}, err
	}
	var served atomic.Int64
	var swg sync.WaitGroup
	for _, srv := range srvs {
		swg.Add(1)
		go func(sv *core.Server) {
			defer swg.Done()
			if cfg.Watchdog > 0 {
				n, err := sv.ServeBatchCtx(rootCtx, nil, batch)
				if err != nil {
					noteErr("shard: %v", err)
				}
				served.Add(n)
				return
			}
			served.Add(sv.ServeBatch(nil, batch))
		}(srv)
	}

	var barrier sync.WaitGroup
	barrier.Add(cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		cl, err := sys.Client(i)
		if err != nil {
			return Result{}, err
		}
		wg.Add(1)
		go func(i int, cl *core.Client) {
			defer wg.Done()
			barrier.Done()
			barrier.Wait()
			noteStart()
			msgs := make([]core.Msg, 0, batch)
			var seenBig map[int32]bool // only allocated for batches > 64
			for j := 0; j < cfg.Msgs; j += len(msgs) {
				k := batch
				if j+k > cfg.Msgs {
					k = cfg.Msgs - j
				}
				msgs = msgs[:0]
				for q := 0; q < k; q++ {
					msgs = append(msgs, core.Msg{Op: core.OpEcho, Seq: int32(j + q), Val: float64(j + q)})
				}
				var out []core.Msg
				if cfg.Watchdog > 0 {
					var err error
					out, err = cl.SendBatchCtx(rootCtx, msgs)
					if err != nil {
						noteErr("client%d: batch at %d: %v", i, j, err)
						return
					}
				} else {
					out = cl.SendBatch(msgs)
				}
				if len(out) != k {
					noteErr("client%d: batch at %d: %d replies, want %d", i, j, len(out), k)
					return
				}
				// Multiset check per batch: stolen work means replies may
				// interleave across shards, but every sequence must appear
				// exactly once. A bitmask keeps the check allocation-free
				// on the hot path (batches ≤ 64).
				var seen uint64
				if k > 64 {
					seenBig = make(map[int32]bool, k)
				}
				for _, m := range out {
					if m.Client != cl.ID || m.Seq < int32(j) || m.Seq >= int32(j+k) ||
						m.Val != float64(m.Seq) {
						noteErr("client%d: bad reply %+v in batch at %d", i, m, j)
						return
					}
					if k > 64 {
						if seenBig[m.Seq] {
							noteErr("client%d: duplicate reply %+v in batch at %d", i, m, j)
							return
						}
						seenBig[m.Seq] = true
						continue
					}
					bit := uint64(1) << uint(m.Seq-int32(j))
					if seen&bit != 0 {
						noteErr("client%d: duplicate reply %+v in batch at %d", i, m, j)
						return
					}
					seen |= bit
				}
			}
		}(i, cl)
	}
	wg.Wait()
	end := time.Now()

	var flightDump string
	if rootCtx.Err() != nil {
		var buf strings.Builder
		out := io.Writer(&buf)
		if cfg.DumpOnWatchdog != nil {
			out = io.MultiWriter(&buf, cfg.DumpOnWatchdog)
		}
		sys.DumpFlightRecorder(out)
		flightDump = buf.String()
	}
	// Shutdown releases the shard loops (they exit on the marker). The
	// shards share rootCtx, so cancelling it before they drain would
	// turn a clean exit into a spurious "context canceled" shard error;
	// only cancel early if shutdown itself failed to release them.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := sys.Shutdown(shutCtx); err != nil {
		noteErr("shutdown: %v", err)
		cancel()
	}
	shutCancel()
	swg.Wait()

	if !started {
		start = time.Now()
		end = start
	}
	dur := end.Sub(start)
	if dur <= 0 {
		dur = time.Nanosecond
	}
	total := int64(cfg.Clients * cfg.Msgs)
	res := Result{
		Label:      fmt.Sprintf("live/%s/%dc/%ds", cfg.Alg, cfg.Clients, cfg.Shards),
		Throughput: float64(served.Load()) / (float64(dur.Nanoseconds()) / 1e6),
		RTTMicros:  float64(dur.Nanoseconds()) / 1e3 / float64(cfg.Msgs),
		Duration:   dur.Nanoseconds(),
		TotalMsgs:  served.Load(),
	}
	res.Clients = ms.ByPrefix("client")
	res.All = ms.Total()
	res.Phase = phaseSnap(sys.Observer(), cfg.Alg)
	res.FlightDump = flightDump

	if len(errs) > 0 {
		return res, fmt.Errorf("workload: live group validation failed: %v", errs)
	}
	if served.Load() != total {
		return res, fmt.Errorf("workload: shards served %d, want %d", served.Load(), total)
	}
	return res, nil
}
