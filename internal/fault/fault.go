// Package fault is the seeded, deterministic fault-injection layer the
// chaos harness drives the live runtime with. It follows the same
// zero-cost-when-disabled pattern as internal/obs: every instrumented
// call site holds a Hook by value, and the zero Hook reduces every
// operation to a single nil check, so production paths pay nothing.
//
// Faults come in two families:
//
//   - Crash-at-point: a Crashpoint call panics with a Crash value,
//     killing the calling goroutine mid-critical-section (the in-process
//     analogue of a peer process dying while holding a queue lock or
//     owing a semaphore V). Instrumented critical sections deliberately
//     do NOT defer their unlocks, so the panic leaves the lock held and
//     the structure half-mutated — exactly the state the recovery
//     machinery (generation-stamped lock reclaim, orphan drain) must
//     survive.
//   - Wake-up mutation: a V may be dropped, duplicated, or delayed,
//     modelling the lost/spurious/late wake-up hazards of Section 3 of
//     the paper under a faulty peer.
//
// Determinism: each actor draws its fault decisions from a private
// rand stream seeded from the plan seed and the actor id, so a given
// (seed, actor) pair produces the same decision sequence on every run
// regardless of scheduling. Cross-actor interleaving still varies — the
// recovery guarantees under test must hold for all interleavings.
package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Point identifies an injection site. Crash probabilities are
// configured per point so a schedule can target, say, only the
// tail-lock critical section.
type Point uint8

// The instrumented injection points.
const (
	PtAfterAlloc    Point = iota // node allocated from the pool, not yet linked
	PtEnqueueLocked              // holding the tail lock, node linked, tail not yet advanced
	PtDequeueLocked              // holding the head lock, head not yet advanced
	PtBeforeFree                 // node unlinked from the queue, not yet freed
	PtWake                       // about to V a semaphore
	PtBlock                      // about to P a semaphore
	PtBody                       // actor body, between protocol operations
	NumPoints                    // number of points (array bound)
)

// String returns the point name.
func (p Point) String() string {
	switch p {
	case PtAfterAlloc:
		return "after-alloc"
	case PtEnqueueLocked:
		return "enqueue-locked"
	case PtDequeueLocked:
		return "dequeue-locked"
	case PtBeforeFree:
		return "before-free"
	case PtWake:
		return "wake"
	case PtBlock:
		return "block"
	case PtBody:
		return "body"
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

// WakeOp is the mutation applied to one semaphore V.
type WakeOp uint8

// The wake-up mutations.
const (
	WakeNone  WakeOp = iota // deliver normally
	WakeDrop                // swallow the V (lost wake-up)
	WakeDup                 // deliver the V twice (spurious wake-up)
	WakeDelay               // deliver after a pause (late wake-up)
)

// Crash is the panic value a Crashpoint throws. Harness goroutine
// wrappers recover it and report the death to the recovery layer —
// the in-process analogue of the kernel's FUTEX_OWNER_DIED
// notification; any other panic value is a real bug and re-panics.
type Crash struct {
	Actor int32
	Point Point
}

// Error makes Crash usable as an error in reports.
func (c Crash) Error() string {
	return fmt.Sprintf("fault: actor %d crashed at %s", c.Actor, c.Point)
}

// AsCrash reports whether a recovered panic value is an injected crash.
func AsCrash(v any) (Crash, bool) {
	c, ok := v.(Crash)
	return c, ok
}

// Plan is one seeded fault schedule. Probabilities are per call to the
// corresponding hook; zero disables that fault class.
type Plan struct {
	Seed int64

	// Crash[p] is the probability that a Crashpoint(p) call panics.
	Crash [NumPoints]float64

	// Wake-mutation rates, evaluated per V in drop, dup, delay order.
	DropWake  float64
	DupWake   float64
	DelayWake float64

	// WakeDelayDur is how long a WakeDelay stalls the V (default 200µs).
	WakeDelayDur time.Duration

	// MaxCrashes caps the total injected crashes (0 = unlimited). A cap
	// keeps at least one side of every pairing alive long enough for the
	// run to make progress between deaths.
	MaxCrashes int
}

// UniformPlan builds a plan with the same crash probability at every
// point plus the given wake-mutation rates.
func UniformPlan(seed int64, crash, drop, dup, delay float64) Plan {
	p := Plan{Seed: seed, DropWake: drop, DupWake: dup, DelayWake: delay}
	for i := range p.Crash {
		p.Crash[i] = crash
	}
	return p
}

// Counts is a snapshot of the faults an injector has actually injected.
type Counts struct {
	Crashes    int64            // total crash panics thrown
	ByPoint    [NumPoints]int64 // crashes per injection point
	WakeDrops  int64
	WakeDups   int64
	WakeDelays int64
}

// PoolFreer is the slice of shm.Pool the pending-ref mechanism needs
// (shm.Ref is an alias of uint32, so *shm.Pool satisfies it without
// fault importing shm).
type PoolFreer interface {
	Free(uint32)
}

// actorState is the per-actor slice of an injector: a private rand
// stream plus the pending-ref cell. The rand stream is only touched by
// the owning goroutine; the pending cell is shared with the sweeper, so
// it sits behind its own mutex.
type actorState struct {
	rng     *rand.Rand
	crashed bool

	mu          sync.Mutex
	pendingPool PoolFreer
	pendingRef  uint32
	pendingSet  bool
}

// Injector owns one fault plan and hands out per-actor Hooks. Safe for
// concurrent use: per-actor state is created under a mutex, and the
// fault counters are atomics.
type Injector struct {
	plan    Plan
	crashes atomic.Int64
	byPoint [NumPoints]atomic.Int64
	drops   atomic.Int64
	dups    atomic.Int64
	delays  atomic.Int64

	mu     sync.Mutex
	actors map[int32]*actorState
}

// NewInjector builds an injector for the given plan.
func NewInjector(plan Plan) *Injector {
	if plan.WakeDelayDur <= 0 {
		plan.WakeDelayDur = 200 * time.Microsecond
	}
	return &Injector{plan: plan, actors: make(map[int32]*actorState)}
}

// Plan returns the injector's schedule.
func (inj *Injector) Plan() Plan { return inj.plan }

// Counts snapshots the injected-fault counters.
func (inj *Injector) Counts() Counts {
	var c Counts
	c.Crashes = inj.crashes.Load()
	for i := range c.ByPoint {
		c.ByPoint[i] = inj.byPoint[i].Load()
	}
	c.WakeDrops = inj.drops.Load()
	c.WakeDups = inj.dups.Load()
	c.WakeDelays = inj.delays.Load()
	return c
}

// state returns (creating if needed) the per-actor state for id.
func (inj *Injector) state(id int32) *actorState {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	st := inj.actors[id]
	if st == nil {
		// Mix the actor id into the seed with splitmix-style constants
		// so adjacent ids don't produce correlated streams.
		seed := inj.plan.Seed ^ int64(uint64(id+1)*0x9E3779B97F4A7C15)
		st = &actorState{rng: rand.New(rand.NewSource(seed))}
		inj.actors[id] = st
	}
	return st
}

// Hook returns the fault hook for one actor. Hooks are cheap values;
// the same actor id always maps to the same underlying state.
func (inj *Injector) Hook(actor int32) Hook {
	return Hook{inj: inj, st: inj.state(actor), actor: actor}
}

// ReclaimPending frees the actor's pending in-flight ref, if any, back
// to its pool. The sweeper calls this after the actor is declared dead;
// it reports whether a ref was reclaimed.
func (inj *Injector) ReclaimPending(actor int32) bool {
	inj.mu.Lock()
	st := inj.actors[actor]
	inj.mu.Unlock()
	if st == nil {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.pendingSet {
		return false
	}
	st.pendingPool.Free(st.pendingRef)
	st.pendingSet = false
	st.pendingPool = nil
	return true
}

// Hook is one actor's handle on the injector. The zero Hook is valid
// and disabled: every method reduces to one nil check, which is the
// whole cost of the layer when fault injection is off.
type Hook struct {
	inj   *Injector
	st    *actorState
	actor int32
}

// Enabled reports whether the hook injects anything.
func (h Hook) Enabled() bool { return h.inj != nil }

// Actor returns the hook's actor id (-1 when disabled).
func (h Hook) Actor() int32 {
	if h.inj == nil {
		return -1
	}
	return h.actor
}

// Crashpoint possibly panics with a Crash value, per the plan's
// probability for the point. A crashed actor never crashes twice, and
// the plan's MaxCrashes budget is respected.
func (h Hook) Crashpoint(p Point) {
	if h.inj == nil {
		return
	}
	pr := h.inj.plan.Crash[p]
	if pr <= 0 || h.st.crashed {
		return
	}
	if h.st.rng.Float64() >= pr {
		return
	}
	if max := h.inj.plan.MaxCrashes; max > 0 {
		if h.inj.crashes.Add(1) > int64(max) {
			h.inj.crashes.Add(-1)
			return
		}
	} else {
		h.inj.crashes.Add(1)
	}
	h.st.crashed = true
	h.inj.byPoint[p].Add(1)
	panic(Crash{Actor: h.actor, Point: p})
}

// WakeOp draws the mutation to apply to the next V. The injected-fault
// counters are bumped here, so a caller honouring the returned op keeps
// the counts accurate.
func (h Hook) WakeOp() WakeOp {
	if h.inj == nil {
		return WakeNone
	}
	f := h.st.rng.Float64()
	plan := &h.inj.plan
	if f < plan.DropWake {
		h.inj.drops.Add(1)
		return WakeDrop
	}
	f -= plan.DropWake
	if f < plan.DupWake {
		h.inj.dups.Add(1)
		return WakeDup
	}
	f -= plan.DupWake
	if f < plan.DelayWake {
		h.inj.delays.Add(1)
		return WakeDelay
	}
	return WakeNone
}

// WakeDelayDur returns how long a WakeDelay should stall.
func (h Hook) WakeDelayDur() time.Duration {
	if h.inj == nil {
		return 0
	}
	return h.inj.plan.WakeDelayDur
}

// SetPending records a ref the actor holds in flight (allocated but not
// yet linked, or unlinked but not yet freed). If the actor dies before
// ClearPending, the sweeper's ReclaimPending returns the ref to pool —
// the orphaned-node reclamation half of the recovery story.
func (h Hook) SetPending(pool PoolFreer, ref uint32) {
	if h.inj == nil {
		return
	}
	h.st.mu.Lock()
	h.st.pendingPool = pool
	h.st.pendingRef = ref
	h.st.pendingSet = true
	h.st.mu.Unlock()
}

// ClearPending marks the in-flight ref as safely handed over (linked
// into the queue, or freed).
func (h Hook) ClearPending() {
	if h.inj == nil {
		return
	}
	h.st.mu.Lock()
	h.st.pendingSet = false
	h.st.pendingPool = nil
	h.st.mu.Unlock()
}
