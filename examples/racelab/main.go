// racelab: the research side of the repository — replay a Figure 4 race
// on the exhaustive model checker and watch a scheduler time-line from
// the discrete-event kernel.
//
// Part 1 model-checks the BSW protocol with the producer-side
// test-and-set removed (Interleaving 2) and prints how high the pending
// wake-up count climbs as producers are added. Part 2 runs a tiny BSW
// exchange on the simulated SGI and prints the engine's execution
// interleaving, the presentation of the paper's Figure 4 time-lines.
package main

import (
	"fmt"
	"log"
	"os"

	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/protomodel"
	"ulipc/internal/sim"
	"ulipc/internal/sim/sched"
	"ulipc/internal/simbind"
	"ulipc/internal/trace"
)

func main() {
	part1()
	part2()
}

// part1: Interleaving 2 — wake-up accumulation without the TAS fix.
func part1() {
	fmt.Println("== Part 1: pending wake-up accumulation (Figure 4, Interleaving 2) ==")
	for producers := 1; producers <= 3; producers++ {
		broken := protomodel.FullProtocol(producers, 2)
		broken.ProducerTAS = false
		bres, err := protomodel.Check(broken)
		if err != nil {
			log.Fatal(err)
		}
		fixed := protomodel.FullProtocol(producers, 2)
		fres, err := protomodel.Check(fixed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d producer(s): max pending wake-ups without TAS = %d, with TAS = %d\n",
			producers, bres.MaxSem, fres.MaxSem)
	}
	fmt.Println("  (the unbounded variant overflowed a System V semaphore in the authors' first implementation)")
	fmt.Println()
}

// part2: a BSW exchange on the simulated SGI with the engine time-line.
func part2() {
	fmt.Println("== Part 2: BSW execution interleaving on the simulated SGI ==")
	rec := &trace.Recorder{Max: 64}
	pol, err := sched.New(sched.PolicyDegrading)
	if err != nil {
		log.Fatal(err)
	}
	k, err := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol, Trace: rec.Fn()})
	if err != nil {
		log.Fatal(err)
	}

	recvQ := simbind.NewQueue(k, "recvQ", 8)
	replyQ := simbind.NewQueue(k, "replyQ", 8)

	k.Spawn("server", 0, func(p *sim.Proc) {
		srv := &core.Server{
			Alg:     core.BSW,
			Rcv:     simbind.NewPort(p, recvQ),
			Replies: []core.Port{simbind.NewPort(p, replyQ)},
			A:       simbind.NewActor(p),
		}
		for i := 0; i < 3; i++ {
			m := srv.Receive()
			srv.Reply(0, m)
		}
	})
	k.Spawn("client", 0, func(p *sim.Proc) {
		cl := &core.Client{
			Alg: core.BSW,
			Srv: simbind.NewPort(p, recvQ),
			Rcv: simbind.NewPort(p, replyQ),
			A:   simbind.NewActor(p),
		}
		for i := 0; i < 3; i++ {
			cl.Send(core.Msg{Op: core.OpEcho, Seq: int32(i)})
		}
	})
	if err := k.Run(); err != nil {
		log.Fatal(err)
	}
	rec.RenderInterleaving(os.Stdout, []string{"client", "server"})
	fmt.Println("\n(three synchronous BSW round trips: each side blocks, is woken, and hands the CPU over)")
}
