package livebind

import (
	"context"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/shm"
)

// DefaultWaitSlice bounds how long a ProcSem waiter stays parked in the
// kernel before re-checking its condition. The slice is not a poll — a
// futex wake still ends the wait immediately — it is the backstop that
// caps how long a process can hang if its waker died at the worst
// possible instant (between the count increment and the FUTEX_WAKE) and
// the sweeper's poison somehow raced past it.
const DefaultWaitSlice = 20 * time.Millisecond

// ProcSem is the cross-process counting semaphore: the futex-backed
// replacement for Semaphore when the two sides of a binding live in
// different address spaces. All of its state is three words in a mapped
// shm.SemSlot — count (the futex word), waiters (gates the wake
// syscall), and the poison flag the recovery sweeper sets to turn
// parked waits into prompt returns.
//
// The blocking discipline mirrors Semaphore's shutdown semantics: P on
// a poisoned semaphore returns without a token (callers consult their
// port's Closed/PeerDead state, exactly as after Semaphore.Close), and
// a cancelled PCtx never consumes a token — a count granted while
// cancellation raced in simply stays in the count word for the next P,
// so tokens are conserved without a hand-back path.
//
// Lost-wake freedom is the futex val-check: a waiter advertises itself
// in Waiters, then asks the kernel to sleep only if Count is still
// zero. A V that increments Count before the waiter's syscall makes the
// kernel refuse the sleep (EAGAIN); a V that increments after it finds
// Waiters non-zero and issues the wake. Either order, the token is
// seen. internal/protomodel checks this interleaving exhaustively.
type ProcSem struct {
	s     *shm.SemSlot
	slice time.Duration
}

// NewProcSem wraps a mapped semaphore slot. slice bounds each parked
// wait (DefaultWaitSlice if <= 0).
func NewProcSem(s *shm.SemSlot, slice time.Duration) *ProcSem {
	if slice <= 0 {
		slice = DefaultWaitSlice
	}
	return &ProcSem{s: s, slice: slice}
}

// semPoisonBit is folded into the count word by Poison. Keeping the
// poison visible in the futex word itself — not just the Dead flag —
// matters for the polling backend, whose waiters watch only the word
// they parked on: a flag stored elsewhere would leave them sleeping out
// their full slice. (The futex backend gets the same benefit for free:
// a FUTEX_WAIT racing the poison sees a changed word and refuses to
// sleep.)
const semPoisonBit uint32 = 1 << 31

// tryAcquire consumes one token if any are available.
func (p *ProcSem) tryAcquire() bool {
	for {
		c := p.s.Count.Load()
		if c&^semPoisonBit == 0 {
			return false
		}
		if p.s.Count.CompareAndSwap(c, c-1) {
			return true
		}
	}
}

// P consumes a token, parking on the futex word until one arrives. It
// reports whether the call actually slept (the protocols' block
// accounting). On a poisoned semaphore P returns without a token.
func (p *ProcSem) P() (slept bool) {
	for {
		if p.tryAcquire() {
			return slept
		}
		if p.s.Dead.Load() != 0 {
			return slept
		}
		p.s.Waiters.Add(1)
		futexWait(&p.s.Count, 0, p.slice)
		p.s.Waiters.Add(^uint32(0))
		slept = true
	}
}

// PCtx is P with cancellation. It returns nil when a token was
// consumed, ctx.Err() when cancelled without consuming one, and
// core.ErrShutdown when the semaphore is poisoned (the caller's port
// state distinguishes orderly shutdown from peer death).
func (p *ProcSem) PCtx(ctx context.Context) (slept bool, err error) {
	for {
		if p.tryAcquire() {
			return slept, nil
		}
		if p.s.Dead.Load() != 0 {
			return slept, core.ErrShutdown
		}
		if err := ctx.Err(); err != nil {
			return slept, err
		}
		p.s.Waiters.Add(1)
		futexWait(&p.s.Count, 0, p.slice)
		p.s.Waiters.Add(^uint32(0))
		slept = true
	}
}

// V releases one token and wakes a parked waiter if there (plausibly)
// is one. It reports whether a wake syscall was issued — the protocols'
// wake-up accounting. V on a poisoned semaphore is dropped: the slot's
// owner is gone, and parking a token there would hide it from the
// post-mortem audit.
func (p *ProcSem) V() (woke bool) {
	if p.s.Dead.Load() != 0 {
		return false
	}
	p.s.Count.Add(1)
	if p.s.Waiters.Load() != 0 {
		futexWake(&p.s.Count, 1)
		return true
	}
	return false
}

// Poison marks the semaphore dead and wakes every parked waiter. Called
// by the recovery sweeper (peer death) and by graceful teardown; it is
// idempotent and safe from any process.
func (p *ProcSem) Poison() {
	p.s.Dead.Store(1)
	// Fold the poison into the futex word AFTER the flag store: a
	// waiter that sees the word change re-checks Dead and finds it set.
	for {
		c := p.s.Count.Load()
		if c&semPoisonBit != 0 {
			break
		}
		if p.s.Count.CompareAndSwap(c, c|semPoisonBit) {
			break
		}
	}
	futexWake(&p.s.Count, 1<<30)
}

// Poisoned reports whether the semaphore has been poisoned.
func (p *ProcSem) Poisoned() bool { return p.s.Dead.Load() != 0 }

// Count exposes the token count (diagnostics and the token-conservation
// assertions in tests).
func (p *ProcSem) Count() int64 { return int64(p.s.Count.Load() &^ semPoisonBit) }

// Waiters exposes the advertised waiter count (diagnostics).
func (p *ProcSem) Waiters() int { return int(p.s.Waiters.Load()) }
