package experiment

import (
	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/workload"
)

// RunFig12 reproduces Figure 12 and the Section 6 Linux study: with the
// unmodified Linux 1.0.32 scheduler a BSS round trip takes ~33
// milliseconds (yield does not expire the quantum); with the paper's
// modified sched_yield BSS returns to ~120us, BSWY — the algorithm with
// NO client-side spinning — matches busy-waiting BSS, and the handoff
// system call matches BSWY.
func RunFig12(opt Options) (*Report, error) {
	r := newReport("fig12", "Modified sched_yield in Linux (66 MHz 486)",
		"BSWY performs as well as busy-waiting BSS once yield expires the caller's quantum; handoff matches BSWY but does not improve it further")
	clients := clientSweep(opt.Quick)
	msgs := opt.msgs()
	m := machine.Linux486()

	// Unmodified kernel: a couple of messages is enough to demonstrate
	// the 33ms-scale latency without hours of virtual time.
	brokenRes, err := workload.RunSim(workload.Config{
		Machine: m, Policy: "linux10", Alg: core.BSS, Clients: 1, Msgs: 20,
	})
	if err != nil {
		return nil, err
	}
	r.Records["fig12/linux10/rtt_ms"] = brokenRes.RTTMicros / 1000
	r.note("Unmodified Linux 1.0.32 (yield keeps the CPU until the quantum expires): BSS round trip = " +
		f1(brokenRes.RTTMicros/1000) + " ms (paper: ~33 ms order of magnitude; ours includes both sides' quanta).")

	bss, bssRes, err := sweep(workload.Config{Machine: m, Policy: "linuxmod", Alg: core.BSS}, clients, msgs)
	if err != nil {
		return nil, err
	}
	bswy, _, err := sweep(workload.Config{Machine: m, Policy: "linuxmod", Alg: core.BSWY}, clients, msgs)
	if err != nil {
		return nil, err
	}
	handoff, _, err := sweep(workload.Config{Machine: m, Policy: "linuxmod", Alg: core.BSWY, Handoff: true}, clients, msgs)
	if err != nil {
		return nil, err
	}
	bsw, _, err := sweep(workload.Config{Machine: m, Policy: "linuxmod", Alg: core.BSW}, clients, msgs)
	if err != nil {
		return nil, err
	}
	sysv, _, err := sweep(workload.Config{Machine: m, Policy: "linuxmod", Transport: workload.TransportSysV}, clients, msgs)
	if err != nil {
		return nil, err
	}

	curves := map[string][]float64{
		"BSS": bss, "BSWY": bswy, "BSWY+handoff": handoff, "BSW": bsw, "SYSV": sysv,
	}
	order := []string{"BSS", "BSWY", "BSWY+handoff", "BSW", "SYSV"}
	r.Tables = append(r.Tables, throughputTable(
		"Figure 12 — "+m.Name+", modified sched_yield (messages/ms)", clients, curves, order))
	r.Plots = append(r.Plots, throughputPlot("Figure 12 — "+m.Name, clients, curves, order))
	r.recordCurve("fig12/bss", clients, bss)
	r.recordCurve("fig12/bswy", clients, bswy)
	r.recordCurve("fig12/handoff", clients, handoff)
	r.recordCurve("fig12/sysv", clients, sysv)
	r.Records["fig12/bss/rtt_us"] = bssRes[0].RTTMicros

	r.note("Modified sched_yield: 1-client BSS round trip = " + f1(bssRes[0].RTTMicros) +
		" us (paper: ~120 us on a 66 MHz 486).")
	r.note("handoff(pid) matches BSWY at one client, as the paper reports; at higher client counts the direct hand-off defeats the server's request batching in our simulation — a plausible mechanism for why the paper found no further improvement.")
	return r, nil
}
