package simbind

import (
	"testing"

	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/sim"
	"ulipc/internal/sim/sched"
)

func newKernel(t *testing.T, m *machine.Model) *sim.Kernel {
	t.Helper()
	pol, err := sched.New(sched.PolicyDegrading)
	if err != nil {
		t.Fatal(err)
	}
	k, err := sim.New(sim.Config{Machine: m, Sched: pol})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestPortOpsChargeVirtualTime(t *testing.T) {
	m := machine.SGIIndy()
	k := newKernel(t, m)
	q := NewQueue(k, "q", 8)
	var enqT, deqT, tasT, storeT, emptyT sim.Time
	k.Spawn("w", 0, func(p *sim.Proc) {
		port := NewPort(p, q)
		t0 := p.Now()
		port.TryEnqueue(core.Msg{})
		enqT = p.Now() - t0

		t0 = p.Now()
		port.TryDequeue()
		deqT = p.Now() - t0

		t0 = p.Now()
		port.TASAwake()
		tasT = p.Now() - t0

		t0 = p.Now()
		port.SetAwake(false)
		storeT = p.Now() - t0

		t0 = p.Now()
		port.Empty()
		emptyT = p.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if enqT != m.EnqueueCost {
		t.Errorf("enqueue charged %d, want %d", enqT, m.EnqueueCost)
	}
	if deqT != m.DequeueCost {
		t.Errorf("dequeue charged %d, want %d", deqT, m.DequeueCost)
	}
	if tasT != m.TASCost || storeT != m.StoreCost || emptyT != m.EmptyCost {
		t.Errorf("flag costs: tas=%d store=%d empty=%d", tasT, storeT, emptyT)
	}
}

func TestQueueFIFOAndCapacity(t *testing.T) {
	k := newKernel(t, machine.SGIIndy())
	q := NewQueue(k, "q", 2)
	var results []int32
	var fullRejected bool
	k.Spawn("w", 0, func(p *sim.Proc) {
		port := NewPort(p, q)
		port.TryEnqueue(core.Msg{Seq: 1})
		port.TryEnqueue(core.Msg{Seq: 2})
		fullRejected = !port.TryEnqueue(core.Msg{Seq: 3})
		for {
			m, ok := port.TryDequeue()
			if !ok {
				break
			}
			results = append(results, m.Seq)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fullRejected {
		t.Fatal("enqueue beyond capacity succeeded")
	}
	if len(results) != 2 || results[0] != 1 || results[1] != 2 {
		t.Fatalf("results = %v", results)
	}
	if q.Enqueues != 2 || q.Dequeues != 2 {
		t.Fatalf("op counters: enq=%d deq=%d", q.Enqueues, q.Dequeues)
	}
}

func TestTASAwakeSemantics(t *testing.T) {
	k := newKernel(t, machine.SGIIndy())
	q := NewQueue(k, "q", 2)
	var first, second bool
	k.Spawn("w", 0, func(p *sim.Proc) {
		port := NewPort(p, q)
		port.SetAwake(false)
		first = port.TASAwake()
		second = port.TASAwake()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if first {
		t.Fatal("first TAS after clear must return false")
	}
	if !second {
		t.Fatal("second TAS must return true")
	}
}

// TestLockContentionSerialises verifies the two-lock model on a
// multiprocessor: two CPUs enqueueing simultaneously must serialise on
// the tail lock in virtual time.
func TestLockContentionSerialises(t *testing.T) {
	m := machine.SGIChallenge8()
	k := newKernel(t, m)
	q := NewQueue(k, "q", 64)
	var ends [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("w", 0, func(p *sim.Proc) {
			port := NewPort(p, q)
			port.TryEnqueue(core.Msg{})
			ends[i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	d := ends[0] - ends[1]
	if d < 0 {
		d = -d
	}
	if d < m.LockHold {
		t.Fatalf("concurrent enqueues completed %dns apart; lock hold is %dns", d, m.LockHold)
	}
}

func TestActorBusyWaitFlavours(t *testing.T) {
	// Uniprocessor: busy_wait is a yield system call.
	k := newKernel(t, machine.SGIIndy())
	var yields int64
	k.Spawn("w", 0, func(p *sim.Proc) {
		a := NewActor(p)
		a.BusyWait()
		yields = p.M.Yields.Load()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if yields != 1 {
		t.Fatalf("uniprocessor busy_wait: yields = %d, want 1", yields)
	}

	// Multiprocessor: busy_wait is a timed spin, not a yield.
	mp := machine.SGIChallenge8()
	k2 := newKernel(t, mp)
	var mpYields int64
	var spun sim.Time
	k2.Spawn("w", 0, func(p *sim.Proc) {
		a := NewActor(p)
		t0 := p.Now()
		a.BusyWait()
		spun = p.Now() - t0
		mpYields = p.M.Yields.Load()
	})
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if mpYields != 0 {
		t.Fatalf("multiprocessor busy_wait yielded")
	}
	if spun != mp.SpinPollCost {
		t.Fatalf("spin = %d, want %d", spun, mp.SpinPollCost)
	}
}

func TestActorSemaphoreBridge(t *testing.T) {
	k := newKernel(t, machine.SGIIndy())
	q := NewQueue(k, "q", 2)
	var got core.Msg
	k.Spawn("consumer", 0, func(p *sim.Proc) {
		a := NewActor(p)
		port := NewPort(p, q)
		got = consumerRecv(port, a)
	})
	k.Spawn("producer", 0, func(p *sim.Proc) {
		a := NewActor(p)
		port := NewPort(p, q)
		p.Step(50 * sim.Microsecond)
		port.TryEnqueue(core.Msg{Val: 9})
		if !port.TASAwake() {
			a.V(port.Sem())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Val != 9 {
		t.Fatalf("got %+v", got)
	}
}

// consumerRecv is the BSW consumer-wait inlined (to avoid depending on
// core's unexported helper from another package).
func consumerRecv(q core.Port, a core.Actor) core.Msg {
	for {
		if m, ok := q.TryDequeue(); ok {
			return m
		}
		q.SetAwake(false)
		if m, ok := q.TryDequeue(); ok {
			if q.TASAwake() {
				a.P(q.Sem())
			}
			return m
		}
		a.P(q.Sem())
		q.SetAwake(true)
	}
}

func TestActorHandoffMapping(t *testing.T) {
	k := newKernel(t, machine.SGIIndy())
	order := []string{}
	var target *sim.Proc
	k.Spawn("a", 0, func(p *sim.Proc) {
		a := NewActor(p)
		order = append(order, "a1")
		a.Handoff(target.ID())
		order = append(order, "a2")
		a.Handoff(core.HandoffSelf)
		a.Handoff(core.HandoffAny)
	})
	target = k.Spawn("b", 0, func(p *sim.Proc) {
		order = append(order, "b")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a1" || order[1] != "b" || order[2] != "a2" {
		t.Fatalf("order = %v", order)
	}
}

func TestPoolPortWaiterAccounting(t *testing.T) {
	k := newKernel(t, machine.SGIIndy())
	q := NewQueue(k, "q", 8)
	var claims [3]bool
	k.Spawn("w", 0, func(p *sim.Proc) {
		pp := NewPoolPort(p, q)
		claims[0] = pp.ClaimWaiter() // no waiters
		pp.RegisterWaiter()
		pp.RegisterWaiter()
		claims[1] = pp.ClaimWaiter()
		if !pp.TryUnregisterWaiter() {
			t.Error("unregister failed with one waiter left")
		}
		claims[2] = pp.ClaimWaiter() // drained
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if claims[0] || !claims[1] || claims[2] {
		t.Fatalf("claims = %v, want [false true false]", claims)
	}
}

func TestPoolPortOpsChargeTime(t *testing.T) {
	m := machine.SGIIndy()
	k := newKernel(t, m)
	q := NewQueue(k, "q", 8)
	var regT sim.Time
	k.Spawn("w", 0, func(p *sim.Proc) {
		pp := NewPoolPort(p, q)
		t0 := p.Now()
		pp.RegisterWaiter()
		regT = p.Now() - t0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if regT != m.TASCost {
		t.Fatalf("register charged %d, want TAS cost %d", regT, m.TASCost)
	}
}
