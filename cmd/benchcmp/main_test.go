package main

import (
	"strings"
	"testing"

	"ulipc/internal/workload"
)

func rep(gomaxprocs int, entries ...workload.LiveBenchEntry) *workload.LiveBenchReport {
	return &workload.LiveBenchReport{GOMAXPROCS: gomaxprocs, NumCPU: gomaxprocs, Entries: entries}
}

func entry(queue, alg string, clients int, p50, mean float64) workload.LiveBenchEntry {
	return workload.LiveBenchEntry{Queue: queue, Alg: alg, Clients: clients, RTTP50Ns: p50, NsPerRTT: mean}
}

func TestCompareMatchesOnP50(t *testing.T) {
	base := rep(1, entry("default", "BSS", 1, 1000, 1100))
	cand := rep(1, entry("default", "BSS", 1, 1200, 9999))
	res := compare(base, cand)
	if len(res.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(res.Cells))
	}
	c := res.Cells[0]
	if c.Metric != "rtt_p50_ns" {
		t.Fatalf("metric = %q, want rtt_p50_ns", c.Metric)
	}
	if c.DeltaPct < 19.9 || c.DeltaPct > 20.1 {
		t.Fatalf("delta = %v, want ~20", c.DeltaPct)
	}
}

func TestCompareFallsBackToMean(t *testing.T) {
	// The baseline predates histograms (no p50): the mean gates instead.
	base := rep(1, entry("default", "BSLS", 4, 0, 1000))
	cand := rep(1, entry("default", "BSLS", 4, 1300, 1500))
	res := compare(base, cand)
	if len(res.Cells) != 1 || res.Cells[0].Metric != "ns_per_rtt" {
		t.Fatalf("cells = %+v, want one ns_per_rtt cell", res.Cells)
	}
	if got := res.Cells[0].DeltaPct; got < 49.9 || got > 50.1 {
		t.Fatalf("delta = %v, want ~50", got)
	}
}

func TestCompareSkipsErroredCells(t *testing.T) {
	bad := entry("ring", "BSW", 1, 500, 500)
	bad.Error = "watchdog: context deadline exceeded"
	base := rep(1, bad)
	cand := rep(1, entry("ring", "BSW", 1, 10000, 10000))
	if res := compare(base, cand); len(res.Cells) != 0 {
		t.Fatalf("errored baseline cell was gated: %+v", res.Cells)
	}
}

func TestCompareTracksMissingAndExtra(t *testing.T) {
	base := rep(1, entry("default", "BSS", 1, 1000, 1000), entry("default", "BSW", 1, 1000, 1000))
	cand := rep(1, entry("default", "BSS", 1, 1000, 1000), entry("ring", "BSS", 1, 1000, 1000))
	res := compare(base, cand)
	if len(res.Missing) != 1 || res.Missing[0] != "default/BSW/1c" {
		t.Fatalf("missing = %v", res.Missing)
	}
	if len(res.Extra) != 1 || res.Extra[0] != "ring/BSS/1c" {
		t.Fatalf("extra = %v", res.Extra)
	}
}

// TestCompareShardedCellsKeyOnShards checks sharded cells never collide
// with single-server cells of the same (queue, alg, clients), and that
// equal shard counts do match.
func TestCompareShardedCellsKeyOnShards(t *testing.T) {
	sharded := func(shards int, p50 float64) workload.LiveBenchEntry {
		e := entry("lanes", "BSLS", 16, p50, p50)
		e.Shards = shards
		return e
	}
	base := rep(1, entry("lanes", "BSLS", 16, 1000, 1000), sharded(4, 400))
	cand := rep(1, sharded(4, 500), sharded(2, 600))
	res := compare(base, cand)
	if len(res.Cells) != 1 || res.Cells[0].Key != "lanes/BSLS/16c/4s" {
		t.Fatalf("cells = %+v, want exactly the 4-shard pair", res.Cells)
	}
	if got := res.Cells[0].DeltaPct; got < 24.9 || got > 25.1 {
		t.Fatalf("delta = %v, want ~25", got)
	}
	if len(res.Missing) != 1 || res.Missing[0] != "lanes/BSLS/16c" {
		t.Fatalf("missing = %v, want the unsharded baseline cell", res.Missing)
	}
	if len(res.Extra) != 1 || res.Extra[0] != "lanes/BSLS/16c/2s" {
		t.Fatalf("extra = %v, want the 2-shard candidate cell", res.Extra)
	}
}

func TestGateThresholds(t *testing.T) {
	base := rep(1,
		entry("default", "BSS", 1, 1000, 1000),  // +5%: ok
		entry("default", "BSW", 1, 1000, 1000),  // +15%: warn
		entry("default", "BSLS", 1, 1000, 1000), // +40%: fail
		entry("ring", "BSS", 1, 1000, 1000),     // -30%: improved, never fails
	)
	cand := rep(1,
		entry("default", "BSS", 1, 1050, 1050),
		entry("default", "BSW", 1, 1150, 1150),
		entry("default", "BSLS", 1, 1400, 1400),
		entry("ring", "BSS", 1, 700, 700),
	)
	var out strings.Builder
	fails := gate(&out, compare(base, cand), 10, 25)
	if fails != 1 {
		t.Fatalf("fails = %d, want 1\n%s", fails, out.String())
	}
	s := out.String()
	for _, want := range []string{"FAIL", "WARN", "improved"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestMergeCandidatesBestOfK(t *testing.T) {
	slow := entry("default", "BSS", 1, 1500, 1500)
	fast := entry("default", "BSS", 1, 900, 900)
	errored := entry("default", "BSS", 1, 100, 100)
	errored.Error = "watchdog"
	other := entry("ring", "BSS", 1, 700, 700)
	merged := workload.MergeBest([]*workload.LiveBenchReport{
		rep(1, slow, other), rep(1, errored), rep(1, fast),
	})
	if len(merged.Entries) != 2 {
		t.Fatalf("merged %d entries, want 2", len(merged.Entries))
	}
	for _, e := range merged.Entries {
		switch cellKey(e) {
		case "default/BSS/1c":
			if e.RTTP50Ns != 900 || e.Error != "" {
				t.Fatalf("best sample not kept: %+v", e)
			}
		case "ring/BSS/1c":
			if e.RTTP50Ns != 700 {
				t.Fatalf("singleton cell mangled: %+v", e)
			}
		}
	}
	// Single-report merge is the identity.
	one := rep(1, slow)
	if got := workload.MergeBest([]*workload.LiveBenchReport{one}); got != one {
		t.Fatal("single candidate should pass through")
	}
}

func TestGateEnvMismatchDowngradesFailures(t *testing.T) {
	base := rep(8, entry("default", "BSS", 1, 1000, 1000))
	cand := rep(1, entry("default", "BSS", 1, 2000, 2000))
	var out strings.Builder
	res := compare(base, cand)
	if !res.EnvMismatch {
		t.Fatal("EnvMismatch not detected")
	}
	if fails := gate(&out, res, 10, 25); fails != 0 {
		t.Fatalf("fails = %d, want 0 (downgraded)\n%s", fails, out.String())
	}
	if !strings.Contains(out.String(), "downgraded") {
		t.Errorf("output does not mention the downgrade:\n%s", out.String())
	}
}

func TestGateBackendMismatchDowngradesProcCellsOnly(t *testing.T) {
	base := rep(1,
		entry("xproc", "BSW", 2, 0, 20000),
		entry("default", "BSS", 1, 1000, 1000),
	)
	base.FutexBackend = "futex"
	cand := rep(1,
		entry("xproc", "BSW", 2, 0, 40000),     // +100% but backends differ: warn
		entry("default", "BSS", 1, 2000, 2000), // +100% in-process: still fails
	)
	cand.FutexBackend = "poll"
	res := compare(base, cand)
	if !res.BackendMismatch {
		t.Fatal("BackendMismatch not detected")
	}
	var out strings.Builder
	if fails := gate(&out, res, 10, 25); fails != 1 {
		t.Fatalf("fails = %d, want 1 (only the in-process cell)\n%s", fails, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "futex backend mismatch") {
		t.Errorf("output does not mention the backend downgrade:\n%s", s)
	}
	if !strings.Contains(s, "backends differ") {
		t.Errorf("output missing the backend note:\n%s", s)
	}
}

// olEntry builds an open-loop overload cell: keyed by rate factor (and
// burst variant), compared on goodput.
func olEntry(alg string, clients int, factor float64, burst bool, goodput float64) workload.LiveBenchEntry {
	return workload.LiveBenchEntry{
		Queue: "openloop", Alg: alg, Clients: clients,
		RateFactor: factor, Burst: burst,
		OfferedPerSec: factor * 100000, GoodputPerSec: goodput,
		RTTP50Ns: 1000, NsPerRTT: 1000,
	}
}

func TestCompareOpenLoopCellsKeyOnRateFactor(t *testing.T) {
	// Different rate factors are different experiments; the bursty twin
	// is its own variant. Only the exact (factor, burst) pair matches,
	// and the compared axis is goodput with the regression sign flipped
	// (lower goodput = regressed).
	base := rep(1, olEntry("BSLS", 4, 2, false, 100000), olEntry("BSLS", 4, 0.5, false, 50000))
	cand := rep(1, olEntry("BSLS", 4, 2, false, 80000), olEntry("BSLS", 4, 2, true, 90000))
	res := compare(base, cand)
	if len(res.Cells) != 1 || res.Cells[0].Key != "openloop/BSLS/4c/x2" {
		t.Fatalf("cells = %+v, want exactly the x2 pair", res.Cells)
	}
	c := res.Cells[0]
	if c.Metric != "goodput_per_sec" {
		t.Fatalf("metric = %q, want goodput_per_sec", c.Metric)
	}
	if c.DeltaPct < 19.9 || c.DeltaPct > 20.1 {
		t.Fatalf("delta = %v, want ~20 (goodput fell 20%%)", c.DeltaPct)
	}
	if len(res.Extra) != 1 || res.Extra[0] != "openloop/BSLS/4c/x2/burst" {
		t.Fatalf("extra = %v, want the unmatched burst variant", res.Extra)
	}
	if len(res.Missing) != 1 || res.Missing[0] != "openloop/BSLS/4c/x0.5" {
		t.Fatalf("missing = %v, want the x0.5 baseline cell", res.Missing)
	}
}

func TestGateOpenLoopCellsAbsentFromBaselineNeverFail(t *testing.T) {
	// A committed baseline from before the overload sweep: the
	// candidate's open-loop cells (and their capacity probes) must
	// inform, not close the gate.
	base := rep(1, entry("default", "BSS", 1, 1000, 1000))
	cand := rep(1,
		entry("default", "BSS", 1, 1000, 1000),
		entry("openloop-base", "BSW", 4, 2000, 2000),
		olEntry("BSW", 4, 2, false, 90000),
	)
	res := compare(base, cand)
	if !res.OpenLoopBaselineGap {
		t.Fatal("OpenLoopBaselineGap not detected")
	}
	var out strings.Builder
	if fails := gate(&out, res, 10, 25); fails != 0 {
		t.Fatalf("fails = %d, want 0\n%s", fails, out.String())
	}
	if !strings.Contains(out.String(), "predates the open-loop overload sweep") {
		t.Errorf("output missing the stale-baseline note:\n%s", out.String())
	}
}

func TestGateProcCellsAbsentFromBaselineNeverFail(t *testing.T) {
	// A committed baseline from before the cross-process sweep: the
	// candidate's xproc pair must inform, not close the gate.
	base := rep(1, entry("default", "BSS", 1, 1000, 1000))
	cand := rep(1,
		entry("default", "BSS", 1, 1000, 1000),
		entry("xproc-base", "BSW", 2, 5000, 5000),
		entry("xproc", "BSW", 2, 0, 50000),
	)
	res := compare(base, cand)
	if !res.ProcBaselineGap {
		t.Fatal("ProcBaselineGap not detected")
	}
	var out strings.Builder
	if fails := gate(&out, res, 10, 25); fails != 0 {
		t.Fatalf("fails = %d, want 0\n%s", fails, out.String())
	}
	if !strings.Contains(out.String(), "predates the cross-process sweep") {
		t.Errorf("output missing the stale-baseline note:\n%s", out.String())
	}
}
