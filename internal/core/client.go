package core

import "ulipc/internal/metrics"

// Handoff targets understood by Actor.Handoff, mirroring the paper's
// proposed system call interface (Section 6).
const (
	HandoffSelf = -1 // same semantics as yield
	HandoffAny  = -2 // deschedule caller; run any other ready process
)

// Client is the client side of a Send/Receive/Reply connection: it
// enqueues requests on the server's receive queue and dequeues responses
// from its own reply queue.
type Client struct {
	ID      int32     // reply-channel number carried in every request
	Alg     Algorithm // sleep/wake-up protocol
	MaxSpin int       // BSLS MAX_SPIN (DefaultMaxSpin if zero)
	Srv     Port      // enqueue endpoint of the server's receive queue
	Rcv     Port      // dequeue endpoint of this client's reply queue
	A       Actor
	M       *metrics.Proc // optional spin-loop statistics

	// UseHandoff enables the Section 6 extension: hand-off hints replace
	// plain busy_wait/yield on the critical path. HandoffTarget is the
	// server's pid.
	UseHandoff    bool
	HandoffTarget int
}

func (c *Client) maxSpin() int {
	if c.MaxSpin <= 0 {
		return DefaultMaxSpin
	}
	return c.MaxSpin
}

// tryHandoff is the "try to handoff" hint: the handoff syscall when
// enabled, otherwise the portable busy_wait (yield on a uniprocessor,
// delay loop on a multiprocessor).
func (c *Client) tryHandoff() {
	if c.M != nil {
		c.M.BusyWaits.Add(1)
	}
	if c.UseHandoff {
		c.A.Handoff(c.HandoffTarget)
		return
	}
	c.A.BusyWait()
}

// Send performs a synchronous request/response exchange using the
// configured protocol and returns the server's reply.
func (c *Client) Send(m Msg) Msg {
	m.Client = c.ID
	if c.M != nil {
		defer c.M.MsgsSent.Add(1)
	}
	switch c.Alg {
	case BSS:
		return c.sendBSS(m)
	case BSW:
		return c.sendBSW(m)
	case BSWY:
		return c.sendBSWY(m)
	case BSLS:
		return c.sendBSLS(m)
	}
	panic("core: unknown algorithm")
}

// sendBSS is Figure 1: busy-wait on both the full and the empty
// condition.
func (c *Client) sendBSS(m Msg) Msg {
	busySpinUntil(c.A, func() bool { return c.Srv.TryEnqueue(m) })
	var ans Msg
	busySpinUntil(c.A, func() bool {
		var ok bool
		ans, ok = c.Rcv.TryDequeue()
		return ok
	})
	return ans
}

// sendBSW is Figure 5: wake the server if its awake flag is clear, then
// sleep on the reply semaphore via the raced-checked consumer wait.
func (c *Client) sendBSW(m Msg) Msg {
	enqueueOrSleep(c.Srv, c.A, m)
	wakeConsumer(c.Srv, c.A)
	return consumerWait(c.Rcv, c.A, nil)
}

// sendBSWY is Figure 7: BSW plus busy_wait calls that suggest hand-off
// scheduling — one right after waking the server ("and let it run") and
// one at the top of each wait iteration ("try to handoff").
func (c *Client) sendBSWY(m Msg) Msg {
	enqueueOrSleep(c.Srv, c.A, m)
	if !c.Srv.TASAwake() {
		c.A.V(c.Srv.Sem())
		c.tryHandoff()
	}
	return consumerWait(c.Rcv, c.A, c.tryHandoff)
}

// sendBSLS is Figure 9: poll the reply queue up to MAX_SPIN times before
// entering the blocking path.
func (c *Client) sendBSLS(m Msg) Msg {
	enqueueOrSleep(c.Srv, c.A, m)
	wakeConsumer(c.Srv, c.A)
	spinPoll(c.Rcv, c.A, c.maxSpin(), c.M)
	return consumerWait(c.Rcv, c.A, c.tryHandoff)
}

// SendAsync enqueues a request and wakes the server without waiting for
// a reply — the asynchronous IPC mode the paper's introduction motivates
// (a client can enqueue multiple requests and the server can drain them
// all without any kernel involvement).
func (c *Client) SendAsync(m Msg) {
	m.Client = c.ID
	enqueueOrSleep(c.Srv, c.A, m)
	if c.Alg != BSS {
		wakeConsumer(c.Srv, c.A)
	}
	if c.M != nil {
		c.M.MsgsSent.Add(1)
	}
}

// RecvReply collects one reply for a previous SendAsync, blocking
// according to the configured protocol.
func (c *Client) RecvReply() Msg {
	switch c.Alg {
	case BSS:
		var ans Msg
		busySpinUntil(c.A, func() bool {
			var ok bool
			ans, ok = c.Rcv.TryDequeue()
			return ok
		})
		return ans
	case BSW:
		return consumerWait(c.Rcv, c.A, nil)
	case BSWY:
		return consumerWait(c.Rcv, c.A, c.tryHandoff)
	case BSLS:
		spinPoll(c.Rcv, c.A, c.maxSpin(), c.M)
		return consumerWait(c.Rcv, c.A, c.tryHandoff)
	}
	panic("core: unknown algorithm")
}
