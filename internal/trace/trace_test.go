package trace

import (
	"strings"
	"testing"
)

func TestRecorderCollectsEvents(t *testing.T) {
	r := &Recorder{}
	fn := r.Fn()
	fn(1000, 0, "client", "yield-switch", "server")
	fn(2000, 0, "server", "block", "blocked")
	if len(r.Events) != 2 {
		t.Fatalf("events = %d", len(r.Events))
	}
	if r.Events[0].Proc != "client" || r.Events[1].What != "block" {
		t.Fatalf("events = %+v", r.Events)
	}
}

func TestRecorderCap(t *testing.T) {
	r := &Recorder{Max: 3}
	fn := r.Fn()
	for i := 0; i < 10; i++ {
		fn(int64(i), 0, "p", "e", "")
	}
	if len(r.Events) != 3 {
		t.Fatalf("events = %d, want capped at 3", len(r.Events))
	}
}

func TestRenderFlat(t *testing.T) {
	r := &Recorder{}
	fn := r.Fn()
	fn(1500, 1, "server", "wake", "client0")
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{"1.500us", "cpu1", "server", "wake client0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderInterleavingColumns(t *testing.T) {
	r := &Recorder{}
	fn := r.Fn()
	fn(1000, 0, "client", "yield", "")
	fn(2000, 0, "server", "wake", "")
	fn(3000, 0, "other", "noise", "")
	var sb strings.Builder
	r.RenderInterleaving(&sb, []string{"client", "server"})
	out := sb.String()
	if strings.Contains(out, "noise") {
		t.Error("events from unlisted processes must be dropped")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 events
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The server's event must be in the second column (offset by the
	// column width from the client's).
	clientCol := strings.Index(lines[1], "yield")
	serverCol := strings.Index(lines[2], "wake")
	if serverCol <= clientCol {
		t.Errorf("columns not separated: client@%d server@%d\n%s", clientCol, serverCol, out)
	}
}

func TestRenderInterleavingManyColumns(t *testing.T) {
	r := &Recorder{}
	fn := r.Fn()
	procs := []string{"a", "b", "c", "d"}
	for i, p := range procs {
		fn(int64(i)*1000, 0, p, "step", "")
	}
	var sb strings.Builder
	r.RenderInterleaving(&sb, procs)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 1+len(procs) {
		t.Fatalf("lines = %d", len(lines))
	}
	// Each event is in a strictly later column than the previous.
	prev := -1
	for i := 1; i < len(lines); i++ {
		col := strings.Index(lines[i], "step")
		if col <= prev {
			t.Fatalf("columns not increasing at line %d:\n%s", i, sb.String())
		}
		prev = col
	}
}

func TestRenderInterleavingTruncatesLongLabels(t *testing.T) {
	r := &Recorder{}
	fn := r.Fn()
	fn(0, 0, "p", strings.Repeat("x", 100), "detail")
	var sb strings.Builder
	r.RenderInterleaving(&sb, []string{"p"})
	for _, line := range strings.Split(sb.String(), "\n") {
		if len(line) > 120 {
			t.Fatalf("line too long: %d chars", len(line))
		}
	}
}
