package queue

import (
	"sync"
	"testing"

	"ulipc/internal/core"
)

func mkLanes(t *testing.T, n, capacity int) *Lanes {
	t.Helper()
	lanes := make([]*SPSC, n)
	for i := range lanes {
		q, err := NewSPSC(capacity)
		if err != nil {
			t.Fatal(err)
		}
		lanes[i] = q
	}
	l, err := NewLanes(lanes)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestLanesFanIn enqueues through per-producer lanes and dequeues
// through the fan-in view: every message must come out exactly once,
// and the shared Enqueue must refuse (producers own their lanes).
func TestLanesFanIn(t *testing.T) {
	const lanes, per = 3, 10
	l := mkLanes(t, lanes, 16)
	if l.Enqueue(core.Msg{}) {
		t.Fatal("fan-in Enqueue accepted a message; producers must use Lane(i)")
	}
	for i := 0; i < lanes; i++ {
		for j := 0; j < per; j++ {
			if !l.Lane(i).Enqueue(core.Msg{Seq: int32(j), MsgMeta: core.MsgMeta{Client: int32(i)}}) {
				t.Fatalf("lane %d refused message %d", i, j)
			}
		}
	}
	if l.Len() != lanes*per {
		t.Fatalf("Len = %d, want %d", l.Len(), lanes*per)
	}
	seen := make(map[[2]int32]bool)
	for k := 0; k < lanes*per; k++ {
		m, ok := l.Dequeue()
		if !ok {
			t.Fatalf("Dequeue %d failed with %d messages left", k, lanes*per-k)
		}
		key := [2]int32{m.Client, m.Seq}
		if seen[key] {
			t.Fatalf("message %v dequeued twice", key)
		}
		seen[key] = true
	}
	if _, ok := l.Dequeue(); ok {
		t.Fatal("Dequeue succeeded on empty lanes")
	}
	if !l.Empty() {
		t.Fatal("Empty = false after full drain")
	}
}

// TestLanesRoundRobin checks the consumer does not starve a lane: with
// every lane non-empty, consecutive dequeues must rotate through all of
// them rather than draining one to exhaustion.
func TestLanesRoundRobin(t *testing.T) {
	const lanes = 4
	l := mkLanes(t, lanes, 8)
	for i := 0; i < lanes; i++ {
		for j := 0; j < 2; j++ {
			l.Lane(i).Enqueue(core.Msg{MsgMeta: core.MsgMeta{Client: int32(i)}})
		}
	}
	var order []int32
	for k := 0; k < lanes; k++ {
		m, ok := l.Dequeue()
		if !ok {
			t.Fatal("unexpected empty")
		}
		order = append(order, m.Client)
	}
	seen := make(map[int32]bool)
	for _, c := range order {
		if seen[c] {
			t.Fatalf("lane %d served twice in one rotation (order %v): a non-empty lane was starved", c, order)
		}
		seen[c] = true
	}
}

// TestLanesSteal checks victim selection (deepest lane), the min
// threshold, and the dst bound.
func TestLanesSteal(t *testing.T) {
	l := mkLanes(t, 3, 16)
	for j := 0; j < 2; j++ {
		l.Lane(0).Enqueue(core.Msg{Seq: int32(j), MsgMeta: core.MsgMeta{Client: 0}})
	}
	for j := 0; j < 6; j++ {
		l.Lane(2).Enqueue(core.Msg{Seq: int32(j), MsgMeta: core.MsgMeta{Client: 2}})
	}
	dst := make([]core.Msg, 4)
	if n := l.Steal(dst, 7); n != 0 {
		t.Fatalf("Steal with min above every depth took %d", n)
	}
	n := l.Steal(dst, 3)
	if n != 4 {
		t.Fatalf("Steal = %d, want 4 (dst bound)", n)
	}
	for i := 0; i < n; i++ {
		if dst[i].Client != 2 {
			t.Fatalf("stole from lane %d, want deepest lane 2", dst[i].Client)
		}
		if dst[i].Seq != int32(i) {
			t.Fatalf("stolen messages out of FIFO order: got seq %d at %d", dst[i].Seq, i)
		}
	}
	if got := l.Lane(2).Len(); got != 2 {
		t.Fatalf("victim lane depth after steal = %d, want 2", got)
	}
	if got := l.Lane(0).Len(); got != 2 {
		t.Fatalf("bystander lane touched: depth %d, want 2", got)
	}
}

// TestLanesConcurrent runs producers on their own lanes, the owning
// consumer on the fan-in, and a thief stealing in a loop — the -race
// check that the per-lane consumer locks actually serialise the
// consumer-local ring state between owner and thief.
func TestLanesConcurrent(t *testing.T) {
	const lanes, per = 4, 2000
	l := mkLanes(t, lanes, 64)
	total := lanes * per

	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				for !l.Lane(i).Enqueue(core.Msg{Seq: int32(j), MsgMeta: core.MsgMeta{Client: int32(i)}}) {
				}
			}
		}(i)
	}

	results := make(chan core.Msg, total)
	done := make(chan struct{})
	var cg sync.WaitGroup
	cg.Add(2)
	go func() { // owning consumer
		defer cg.Done()
		for {
			if m, ok := l.Dequeue(); ok {
				results <- m
				continue
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	go func() { // thief
		defer cg.Done()
		buf := make([]core.Msg, 8)
		for {
			n := l.Steal(buf, 2)
			for i := 0; i < n; i++ {
				results <- buf[i]
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()

	wg.Wait()
	seen := make(map[[2]int32]bool, total)
	for k := 0; k < total; k++ {
		m := <-results
		key := [2]int32{m.Client, m.Seq}
		if seen[key] {
			t.Fatalf("message %v delivered twice", key)
		}
		seen[key] = true
	}
	close(done)
	cg.Wait()
	if !l.Empty() {
		t.Fatal("lanes not empty after all messages consumed")
	}
	select {
	case m := <-results:
		t.Fatalf("extra message %v fabricated", m)
	default:
	}
}
