package sim

import "ulipc/internal/machine"

// Time is virtual time in nanoseconds.
type Time = machine.Time

// Convenient re-exports so sim users need not import machine for units.
const (
	Microsecond = machine.Microsecond
	Millisecond = machine.Millisecond
	Second      = machine.Second
)

type evKind int

const (
	evRun   evKind = iota // a process step or syscall completes
	evTimer               // a sleeping process wakes
)

// event is a scheduled occurrence in virtual time.
type event struct {
	t    Time
	seq  uint64 // tie-break: FIFO among equal timestamps
	kind evKind
	p    *Proc
	req  request // for evRun: the request whose cost has now elapsed
	dur  Time    // CPU time represented by this event (for charging)
}

// eventHeap is a min-heap ordered by (t, seq).
type eventHeap struct {
	items []event
}

func (h *eventHeap) Len() int { return len(h.items) }

func (h *eventHeap) push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}
