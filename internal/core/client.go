package core

import (
	"context"
	"time"

	"ulipc/internal/metrics"
	"ulipc/internal/obs"
)

// Handoff targets understood by Actor.Handoff, mirroring the paper's
// proposed system call interface (Section 6).
const (
	HandoffSelf = -1 // same semantics as yield
	HandoffAny  = -2 // deschedule caller; run any other ready process
)

// Client is the client side of a Send/Receive/Reply connection: it
// enqueues requests on the server's receive queue and dequeues responses
// from its own reply queue.
//
// A handle is owned by a single goroutine. Send blocks until the reply
// arrives (or the system shuts down); SendCtx additionally honours the
// context's deadline/cancellation. After a cancelled SendCtx the reply
// is still owed by the server — the handle tracks that lag and drains
// the stale replies (in order, before enqueueing anything new) at the
// start of the next Send/SendCtx, so late replies are never
// misattributed to a newer request.
type Client struct {
	ID      int32     // reply-channel number carried in every request
	Alg     Algorithm // sleep/wake-up protocol
	MaxSpin int       // BSLS MAX_SPIN (DefaultMaxSpin if zero)
	Tuner   *Tuner    // BSA spin-budget controller (lazily built if nil)
	Srv     Port      // enqueue endpoint of the server's receive queue
	Rcv     Port      // dequeue endpoint of this client's reply queue
	A       Actor
	M       *metrics.Proc // optional spin-loop statistics
	Obs     obs.Hook      // optional phase histograms + flight recorder

	// Blocks is the payload slab arena (nil when the system was built
	// without one); Owner is the lease tag this endpoint leases blocks
	// under — unique per endpoint so a sweeper can attribute leaked
	// leases after a crash. See payload.go.
	Blocks BlockStore
	Owner  uint32

	// UseHandoff enables the Section 6 extension: hand-off hints replace
	// plain busy_wait/yield on the critical path. HandoffTarget is the
	// server's pid.
	UseHandoff    bool
	HandoffTarget int

	// HighWater enables bounded admission on the *Ctx send paths: when
	// positive and the request port reports a depth at or above it, a
	// send is rejected with ErrOverload instead of enqueued. Budget
	// bounds the full-queue retry naps on the same paths (nil or zero =
	// unbounded retry). See overload.go.
	HighWater int
	Budget    *RetryBudget

	// lag counts replies still owed for requests whose SendCtx was
	// cancelled after the request had been enqueued. disconnected is
	// set once a disconnect handshake completes. Both are single-owner
	// (the handle's goroutine), so they need no atomics.
	lag          int
	disconnected bool
}

func (c *Client) maxSpin() int {
	if c.MaxSpin <= 0 {
		return DefaultMaxSpin
	}
	return c.MaxSpin
}

// spinRcv runs the pre-block spin prefix on the reply queue: BSLS's
// fixed budget, or BSA's controller-tuned budget with feedback.
func (c *Client) spinRcv() {
	if c.Alg == BSA {
		if c.Tuner == nil {
			c.Tuner = NewTuner(TunerConfig{})
		}
		adaptiveSpin(c.Rcv, c.A, c.Tuner, c.M, c.Obs)
		return
	}
	spinPollObs(c.Rcv, c.A, c.maxSpin(), c.M, c.Obs)
}

// Lag reports how many replies are still owed for cancelled sends
// (diagnostics and tests).
func (c *Client) Lag() int { return c.lag }

// tryHandoff is the "try to handoff" hint: the handoff syscall when
// enabled, otherwise the portable busy_wait (yield on a uniprocessor,
// delay loop on a multiprocessor).
func (c *Client) tryHandoff() {
	if c.M != nil {
		c.M.BusyWaits.Add(1)
	}
	if c.UseHandoff {
		c.A.Handoff(c.HandoffTarget)
		return
	}
	c.A.BusyWait()
}

// Send performs a synchronous request/response exchange using the
// configured protocol and returns the server's reply. If the system is
// shut down underneath the exchange, Send returns the OpShutdown
// marker message instead of blocking forever (use SendCtx for an
// error-returning surface).
func (c *Client) Send(m Msg) Msg {
	m.Client = c.ID
	for c.lag > 0 {
		stale := c.recvReply()
		if stale.Op == OpShutdown {
			return stale
		}
		// A stale reply may carry a payload lease nobody will resolve:
		// claim-free it so cancelled exchanges cannot leak blocks.
		dropPayload(c.Blocks, c.Owner, stale)
		c.lag--
	}
	if c.M != nil {
		defer c.M.MsgsSent.Add(1)
	}
	if !c.Obs.Enabled() {
		return c.dispatchSend(m)
	}
	c.Obs.Note(obs.EvSend, int64(m.Seq))
	t0 := time.Now()
	ans := c.dispatchSend(m)
	c.Obs.RTT(time.Since(t0))
	c.Obs.Note(obs.EvRecv, int64(ans.Seq))
	return ans
}

// dispatchSend routes a request through the configured protocol.
func (c *Client) dispatchSend(m Msg) Msg {
	switch c.Alg {
	case BSS:
		return c.sendBSS(m)
	case BSW:
		return c.sendBSW(m)
	case BSWY:
		return c.sendBSWY(m)
	case BSLS, BSA:
		return c.sendBSLS(m)
	}
	panic(ErrUnknownAlgorithm)
}

// SendCtx is Send with deadline/cancellation support. It returns
// ctx.Err() if the context ends first, ErrShutdown if the system is
// shut down, ErrDisconnected after a completed disconnect handshake,
// and ErrNotCancellable if the binding's Actor cannot park cancellably.
// When cancellation and the reply race, the reply wins: a message that
// already arrived is returned rather than discarded.
func (c *Client) SendCtx(ctx context.Context, m Msg) (Msg, error) {
	if c.disconnected {
		return Msg{}, ErrDisconnected
	}
	m.Client = c.ID
	for c.lag > 0 {
		stale, err := c.recvReplyCtx(ctx)
		if err != nil {
			return Msg{}, err
		}
		dropPayload(c.Blocks, c.Owner, stale)
		c.lag--
	}
	if err := c.admit(); err != nil {
		return Msg{}, err
	}
	var t0 time.Time
	obsOn := c.Obs.Enabled()
	if obsOn {
		c.Obs.Note(obs.EvSend, int64(m.Seq))
		t0 = time.Now()
	}
	ans, err := c.exchangeCtx(ctx, m)
	if err != nil {
		return Msg{}, err
	}
	if obsOn {
		c.Obs.RTT(time.Since(t0))
		c.Obs.Note(obs.EvRecv, int64(ans.Seq))
	}
	if m.Op == OpDisconnect {
		c.disconnected = true
	}
	if c.M != nil {
		c.M.MsgsSent.Add(1)
	}
	return ans, nil
}

// exchangeCtx enqueues the request, wakes the server and awaits the
// reply, all under ctx. Once the request is enqueued, a failed wait
// leaves one reply owed (c.lag).
func (c *Client) exchangeCtx(ctx context.Context, m Msg) (Msg, error) {
	switch c.Alg {
	case BSS:
		if err := spinEnqueueCtx(ctx, c.A, c.Srv, m); err != nil {
			return Msg{}, err
		}
		c.lag++
		ans, err := spinDequeueCtx(ctx, c.A, c.Rcv)
		if err == nil {
			c.lag--
		}
		return ans, err
	case BSW, BSWY, BSLS, BSA:
		if err := enqueueOrSleepCtxObs(ctx, c.Srv, c.A, m, c.M, c.Budget, c.Obs); err != nil {
			return Msg{}, err
		}
		c.lag++
		if c.Alg == BSWY {
			if !c.Srv.TASAwake() {
				c.A.V(c.Srv.Sem())
				c.tryHandoff()
			}
		} else {
			wakeConsumer(c.Srv, c.A)
		}
		ans, err := c.recvReplyCtx(ctx)
		if err == nil {
			c.lag--
		}
		return ans, err
	}
	return Msg{}, ErrUnknownAlgorithm
}

// sendBSS is Figure 1: busy-wait on both the full and the empty
// condition.
func (c *Client) sendBSS(m Msg) Msg {
	if !busySpinUntil(c.A, c.Srv, func() bool { return c.Srv.TryEnqueue(m) }) {
		return ShutdownMsg()
	}
	var ans Msg
	if !busySpinUntil(c.A, c.Rcv, func() bool {
		var ok bool
		ans, ok = c.Rcv.TryDequeue()
		return ok
	}) {
		return ShutdownMsg()
	}
	return ans
}

// sendBSW is Figure 5: wake the server if its awake flag is clear, then
// sleep on the reply semaphore via the raced-checked consumer wait.
func (c *Client) sendBSW(m Msg) Msg {
	if !enqueueOrSleepObs(c.Srv, c.A, m, c.Obs) {
		return ShutdownMsg()
	}
	wakeConsumer(c.Srv, c.A)
	return consumerWait(c.Rcv, c.A, nil)
}

// sendBSWY is Figure 7: BSW plus busy_wait calls that suggest hand-off
// scheduling — one right after waking the server ("and let it run") and
// one at the top of each wait iteration ("try to handoff").
func (c *Client) sendBSWY(m Msg) Msg {
	if !enqueueOrSleepObs(c.Srv, c.A, m, c.Obs) {
		return ShutdownMsg()
	}
	if !c.Srv.TASAwake() {
		c.A.V(c.Srv.Sem())
		c.tryHandoff()
	}
	return consumerWait(c.Rcv, c.A, c.tryHandoff)
}

// sendBSLS is Figure 9: poll the reply queue up to MAX_SPIN times before
// entering the blocking path. BSA shares the shape — only the spin
// budget differs (live controller instead of the MAX_SPIN constant).
func (c *Client) sendBSLS(m Msg) Msg {
	if !enqueueOrSleepObs(c.Srv, c.A, m, c.Obs) {
		return ShutdownMsg()
	}
	wakeConsumer(c.Srv, c.A)
	c.spinRcv()
	return consumerWait(c.Rcv, c.A, c.tryHandoff)
}

// SendAsync enqueues a request and wakes the server without waiting for
// a reply — the asynchronous IPC mode the paper's introduction motivates
// (a client can enqueue multiple requests and the server can drain them
// all without any kernel involvement). On shutdown the request is
// silently dropped (use SendAsyncCtx for an error).
func (c *Client) SendAsync(m Msg) {
	m.Client = c.ID
	if !enqueueOrSleepObs(c.Srv, c.A, m, c.Obs) {
		return
	}
	if c.Alg != BSS {
		wakeConsumer(c.Srv, c.A)
	}
	if c.M != nil {
		c.M.MsgsSent.Add(1)
	}
}

// SendAsyncCtx is SendAsync with deadline/cancellation support. With
// admission configured it rejects with ErrOverload before enqueueing
// (the request is simply not sent; nothing is owed).
func (c *Client) SendAsyncCtx(ctx context.Context, m Msg) error {
	if c.disconnected {
		return ErrDisconnected
	}
	m.Client = c.ID
	if err := c.admit(); err != nil {
		return err
	}
	if c.Alg == BSS {
		if err := spinEnqueueCtx(ctx, c.A, c.Srv, m); err != nil {
			return err
		}
	} else {
		if err := enqueueOrSleepCtxObs(ctx, c.Srv, c.A, m, c.M, c.Budget, c.Obs); err != nil {
			return err
		}
		wakeConsumer(c.Srv, c.A)
	}
	if c.M != nil {
		c.M.MsgsSent.Add(1)
	}
	return nil
}

// recvReply is the per-protocol blocking reply dequeue (no metrics).
func (c *Client) recvReply() Msg {
	switch c.Alg {
	case BSS:
		var ans Msg
		if !busySpinUntil(c.A, c.Rcv, func() bool {
			var ok bool
			ans, ok = c.Rcv.TryDequeue()
			return ok
		}) {
			return ShutdownMsg()
		}
		return ans
	case BSW:
		return consumerWait(c.Rcv, c.A, nil)
	case BSWY:
		return consumerWait(c.Rcv, c.A, c.tryHandoff)
	case BSLS, BSA:
		c.spinRcv()
		return consumerWait(c.Rcv, c.A, c.tryHandoff)
	}
	panic(ErrUnknownAlgorithm)
}

// recvReplyCtx is the per-protocol cancellable reply dequeue.
func (c *Client) recvReplyCtx(ctx context.Context) (Msg, error) {
	switch c.Alg {
	case BSS:
		return spinDequeueCtx(ctx, c.A, c.Rcv)
	case BSW:
		return consumerWaitCtx(ctx, c.Rcv, c.A, nil)
	case BSWY:
		return consumerWaitCtx(ctx, c.Rcv, c.A, c.tryHandoff)
	case BSLS, BSA:
		c.spinRcv()
		return consumerWaitCtx(ctx, c.Rcv, c.A, c.tryHandoff)
	}
	return Msg{}, ErrUnknownAlgorithm
}

// RecvReply collects one reply for a previous SendAsync, blocking
// according to the configured protocol. On shutdown it returns the
// OpShutdown marker message.
func (c *Client) RecvReply() Msg { return c.recvReply() }

// RecvReplyCtx collects one reply for a previous SendAsyncCtx, honouring
// the context's deadline/cancellation.
func (c *Client) RecvReplyCtx(ctx context.Context) (Msg, error) {
	return c.recvReplyCtx(ctx)
}
