module ulipc

go 1.22
