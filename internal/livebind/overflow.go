package livebind

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ulipc/internal/shm"
)

// Heap-overflow payload blocks: the CopyFallback degraded mode
// (DESIGN.md §14). When the slab arena's size classes are exhausted, a
// system built WithCopyFallback serves the allocation from this
// mutex-guarded table of heap buffers instead of failing it. The refs
// it hands out live in a reserved size class (overflowClass) of the
// arena's 8/24 class/slot encoding, so they travel through Msg.Ref,
// the lease/claim discipline, and dropPayload untouched — every
// BlockStore operation routes on the class bits.
//
// The trade is explicit: a mutex and a GC allocation per block instead
// of one CAS on a pre-faulted slab — slower, but lossless under a
// burst that outruns the arena. In-process only: heap buffers cannot
// cross an address space, so the cross-process transport never sees
// overflow refs (its systems are built without CopyFallback).

// overflowClass is the reserved class id of heap-overflow refs. Real
// arenas have a handful of classes and NilBlock decodes to class 0xFF,
// so 0x7F collides with neither.
const overflowClass = 0x7F

// overflowSlots bounds the table (24-bit slot space is the hard
// ceiling; the practical bound keeps a leak from growing unchecked).
const overflowSlots = 1 << 16

// isOverflowRef reports whether a payload ref names a heap-overflow
// block rather than an arena slot.
func isOverflowRef(ref uint32) bool { return ref>>24 == overflowClass }

// heapOverflow is the degraded-mode block table. All slots are
// mutex-guarded; the outstanding count is atomic so audits read it
// without the lock.
type heapOverflow struct {
	max int // largest block servable (mirrors the arena's MaxBlock)

	mu       sync.Mutex
	slots    []overflowSlot
	recycled []uint32 // free slot indexes awaiting reuse
	out      atomic.Int64
}

type overflowSlot struct {
	buf   []byte
	owner uint32 // lease tag (owner+1); 0 = free/reclaimed
	used  bool
}

func newHeapOverflow(maxBlock int) *heapOverflow {
	return &heapOverflow{max: maxBlock}
}

// alloc returns a heap block of at least n bytes. It fails only past
// the arena's MaxBlock (so degraded mode never accepts a payload the
// normal mode would reject) or when the table itself is full.
func (o *heapOverflow) alloc(n int) (uint32, []byte, bool) {
	if o == nil || n < 0 || n > o.max {
		return shm.NilBlock, nil, false
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	var idx uint32
	if ln := len(o.recycled); ln > 0 {
		idx = o.recycled[ln-1]
		o.recycled = o.recycled[:ln-1]
	} else {
		if len(o.slots) >= overflowSlots {
			return shm.NilBlock, nil, false
		}
		idx = uint32(len(o.slots))
		o.slots = append(o.slots, overflowSlot{})
	}
	s := &o.slots[idx]
	if cap(s.buf) < o.max {
		s.buf = make([]byte, o.max)
	}
	s.used, s.owner = true, 0
	o.out.Add(1)
	return uint32(overflowClass)<<24 | idx, s.buf[:o.max], true
}

// slot resolves a ref to its table entry; the caller holds the lock.
func (o *heapOverflow) slot(ref uint32) (*overflowSlot, error) {
	if o == nil {
		return nil, fmt.Errorf("livebind: overflow ref %#x without CopyFallback", ref)
	}
	idx := ref & 0xFFFFFF
	if int(idx) >= len(o.slots) || !o.slots[idx].used {
		return nil, fmt.Errorf("livebind: bad overflow ref %#x", ref)
	}
	return &o.slots[idx], nil
}

func (o *heapOverflow) free(ref uint32) error {
	if o == nil {
		return fmt.Errorf("livebind: overflow ref %#x without CopyFallback", ref)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	s, err := o.slot(ref)
	if err != nil {
		return err
	}
	s.used, s.owner = false, 0
	o.recycled = append(o.recycled, ref&0xFFFFFF)
	o.out.Add(-1)
	return nil
}

func (o *heapOverflow) get(ref uint32) ([]byte, error) {
	if o == nil {
		return nil, fmt.Errorf("livebind: overflow ref %#x without CopyFallback", ref)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	s, err := o.slot(ref)
	if err != nil {
		return nil, err
	}
	return s.buf[:o.max], nil
}

func (o *heapOverflow) lease(ref uint32, owner uint32) error {
	if o == nil {
		return fmt.Errorf("livebind: overflow ref %#x without CopyFallback", ref)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	s, err := o.slot(ref)
	if err != nil {
		return err
	}
	s.owner = owner + 1
	return nil
}

// claim transfers the lease, succeeding only while the block is leased
// — the same single-winner contract as shm.BlockPool.Claim.
func (o *heapOverflow) claim(ref uint32, owner uint32) bool {
	if o == nil {
		return false
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	s, err := o.slot(ref)
	if err != nil || s.owner == 0 {
		return false
	}
	s.owner = owner + 1
	return true
}

// live returns the outstanding overflow-block count (audits); nil-safe.
func (o *heapOverflow) live() int64 {
	if o == nil {
		return 0
	}
	return o.out.Load()
}
