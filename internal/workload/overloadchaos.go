package workload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/livebind"
	"ulipc/internal/metrics"
	"ulipc/internal/queue"
)

// The overload-kill chaos cell: the overload doctrine and the recovery
// layer working the same incident. An open-loop blast drives the system
// past its high-water mark — admission rejects, the server sheds
// expired messages — and in the middle of that storm one client is
// killed (the in-process analogue of SIGKILL: no disconnect, no lease
// release, no reply drain). The cell passes when the two subsystems
// compose: the sweeper's audit holds with sheds still in flight —
// the dead client's stranded payload lease is reclaimed by the owner
// walk, its undrained reply queue (leases riding every message) is
// orphan-drained, replies the server sends it afterwards are dropped
// through the lease-conserving Reply path — and after teardown every
// node and block is back in its pool, while the survivors' overload
// machinery kept running (nonzero sheds AND rejects, no deadlock).

// Overload parameters of the kill cell. Fixed rather than configured:
// the cell asserts composition, not a tuning point.
const (
	okHighWater = 48                   // request-queue admission mark
	okRetryCap  = 16                   // client retry budget
	okDeadline  = 1 * time.Millisecond // per-message deadline
)

// RunChaosOverloadKill executes one overload-kill cell. cfg.Msgs is the
// per-client send attempt count (full tilt, no pacing — the offered
// rate is "as fast as the loop spins", which on any host is past
// capacity); the victim is client 0, killed after half its script.
func RunChaosOverloadKill(cfg ChaosConfig) (ChaosResult, error) {
	if err := cfg.defaults(); err != nil {
		return ChaosResult{}, err
	}
	if cfg.Clients < 2 {
		return ChaosResult{}, fmt.Errorf("workload: overload-kill cell needs at least 2 clients (a victim and a survivor)")
	}
	ms := metrics.NewSet()
	maxSpin, _ := tuneFor(cfg.Alg, cfg.MaxSpin, 0)
	blockSlots := 0
	if cfg.PaySize > 0 {
		blockSlots = 4 * (cfg.Clients + 1)
		if blockSlots < 32 {
			blockSlots = 32
		}
	}
	// Two-lock queues on both legs (as in RunChaosCell) so every pool is
	// auditable after teardown.
	sys, err := livebind.NewSystem(livebind.Options{
		Alg:        cfg.Alg,
		MaxSpin:    maxSpin,
		Clients:    cfg.Clients,
		QueueCap:   cfg.QueueCap,
		QueueKind:  queue.KindTwoLock,
		BlockSlots: blockSlots,
		SleepScale: time.Millisecond,
		Metrics:    ms,
	},
		livebind.WithReplyKind(queue.KindTwoLock),
		livebind.WithAdmission(livebind.Admission{HighWater: okHighWater, RetryCap: okRetryCap}),
		livebind.WithRecovery(livebind.RecoveryOptions{SweepInterval: cfg.SweepInterval}),
	)
	if err != nil {
		return ChaosResult{}, err
	}

	label := fmt.Sprintf("chaos/overloadkill/%s/%dc/seed%d", cfg.Alg, cfg.Clients, cfg.Seed)
	if cfg.PaySize > 0 {
		label += fmt.Sprintf("/p%d", cfg.PaySize)
	}
	res := ChaosResult{
		Label:   label,
		Alg:     cfg.Alg.String(),
		Clients: cfg.Clients,
		Seed:    cfg.Seed,
		PaySize: cfg.PaySize,
	}
	rootCtx, cancel := context.WithTimeout(context.Background(), cfg.Watchdog)
	defer cancel()

	var (
		completed atomic.Int64
		mu        sync.Mutex
		deadlock  bool
		hardErrs  []string
	)
	noteErr := func(format string, args ...any) {
		mu.Lock()
		if len(hardErrs) < 8 {
			hardErrs = append(hardErrs, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}

	// The shared run epoch and shed policy, exactly as the open-loop
	// runner wires them: deadlines ride in Val, control ops are exempt.
	epoch := time.Now()
	nowNs := func() int64 { return time.Since(epoch).Nanoseconds() }
	dlNs := okDeadline.Nanoseconds()
	srv := sys.Server()
	srv.Shed = &core.ShedPolicy{
		Deadline: func(m core.Msg) (int64, bool) {
			if m.Op != core.OpEcho && m.Op != core.OpWork {
				return 0, false
			}
			return int64(m.Val), true
		},
		Now: nowNs,
	}
	var work func(*core.Msg)
	if cfg.PaySize > 0 {
		work = func(m *core.Msg) {
			p, err := srv.Payload(*m)
			if err != nil {
				m.ClearBlock()
				return
			}
			m.AttachPayload(p)
		}
	}
	var swg sync.WaitGroup
	swg.Add(1)
	go func() {
		defer swg.Done()
		if _, err := srv.ServeCtx(rootCtx, work); err != nil {
			noteErr("server: %v", err)
		}
	}()

	// blast is the shared client body: full-tilt deadline-stamped sends
	// with opportunistic reply draining (primed-awake collector, as in
	// openLoopClient). It returns early — abandoning everything in
	// flight — when stopAt sends have gone out (the victim's death).
	blast := func(id int, cl *core.Client, stopAt int) {
		cl.Rcv.SetAwake(true)
		drain := func() {
			for {
				m, ok := cl.Rcv.TryDequeue()
				if !ok {
					return
				}
				if m.Op != core.OpEcho && m.Op != core.OpWork {
					continue
				}
				if m.HasBlock() {
					if p, err := cl.Payload(m); err == nil {
						_ = p.Release()
					}
				}
				completed.Add(1)
			}
		}
		for j := 0; j < cfg.Msgs && rootCtx.Err() == nil; j++ {
			if j == stopAt {
				return // killed mid-overload: no drain, no frees, no goodbye
			}
			drain()
			m := core.Msg{Op: core.OpEcho, Seq: int32(j), Val: float64(nowNs() + dlNs)}
			var payRef uint32
			hasPay := false
			if cfg.PaySize > 0 {
				p, err := cl.AllocPayload(cfg.PaySize)
				if err != nil {
					continue // exhausted arena: the arrival is lost at the allocator
				}
				m.Op = core.OpWork
				payRef, hasPay = p.Ref(), true
				m.AttachPayload(p)
			}
			switch err := cl.SendAsyncCtx(rootCtx, m); {
			case err == nil:
			case errors.Is(err, core.ErrOverload):
				if hasPay {
					_ = cl.Blocks.Free(payRef)
				}
			default:
				if hasPay {
					_ = cl.Blocks.Free(payRef)
				}
				if rootCtx.Err() == nil {
					noteErr("client%d: send: %v", id, err)
				}
				return
			}
		}
		// Survivors collect their backlog until the request queue drains
		// and the reply side stays quiet past the producer's backoff
		// ceiling (same settle rule as the open-loop grace drain).
		depth := func() int {
			if d, ok := cl.Srv.(core.DepthPort); ok {
				return d.Depth()
			}
			return 0
		}
		const settle = 8*int64(time.Millisecond) + 4_000_000
		quietSince := int64(-1)
		for rootCtx.Err() == nil {
			before := completed.Load()
			drain()
			if completed.Load() > before || depth() > 0 {
				quietSince = -1
			} else {
				now := nowNs()
				if quietSince < 0 {
					quietSince = now
				} else if now-quietSince > settle {
					return
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}

	const victim = 0
	victimCl, err := sys.Client(victim)
	if err != nil {
		return res, err
	}
	victimID := victimCl.A.(*livebind.Actor).ID
	victimGone := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(victimGone)
		// The stranded lease: allocated, never sent, never freed — only
		// the sweeper's owner walk can return it.
		if cfg.PaySize > 0 {
			if _, err := victimCl.AllocPayload(cfg.PaySize); err != nil {
				noteErr("victim: stranded-lease alloc: %v", err)
			}
		}
		blast(victim, victimCl, cfg.Msgs/2)
		// Hold the corpse until the storm is real: the kill must land
		// with sheds in flight, so wait (bounded — the final Sheds==0
		// check reports a cell that never overloaded) for the server to
		// have shed at least once while the survivors keep blasting.
		until := time.Now().Add(2 * time.Second)
		for rootCtx.Err() == nil && ms.Total().Sheds == 0 && time.Now().Before(until) {
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for i := 1; i < cfg.Clients; i++ {
		cl, err := sys.Client(i)
		if err != nil {
			cancel()
			wg.Wait()
			swg.Wait()
			return res, err
		}
		wg.Add(1)
		go func(i int, cl *core.Client) {
			defer wg.Done()
			blast(i, cl, -1)
		}(i, cl)
	}

	// The kill lands while the survivors are still blasting: mark the
	// victim dead and force a synchronous sweep, so recovery (owner
	// walk, orphan drains, peer-death marking) runs with the overload
	// machinery live around it.
	<-victimGone
	sys.KillActor(victimID)
	sys.SweepNow()

	joined := make(chan struct{})
	go func() { wg.Wait(); close(joined) }()
	select {
	case <-joined:
	case <-time.After(cfg.Watchdog + 5*time.Second):
		mu.Lock()
		deadlock = true
		hardErrs = append(hardErrs, "clients still blocked past watchdog+grace")
		mu.Unlock()
	}
	if rootCtx.Err() != nil {
		mu.Lock()
		deadlock = true
		mu.Unlock()
	}

	// A final sweep with everything quiesced: whatever the server sent
	// the dead victim after the kill is orphaned in its reply queue now.
	sys.SweepNow()
	if !sys.ReplyChannel(victim).Queue().Empty() {
		noteErr("victim's reply queue not orphan-drained by the sweeper")
	}

	shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
	serr := sys.Shutdown(shutCtx)
	shutCancel()
	if serr != nil && !errors.Is(serr, context.DeadlineExceeded) {
		noteErr("shutdown: %v", serr)
	}
	cancel()
	sdone := make(chan struct{})
	go func() { swg.Wait(); close(sdone) }()
	select {
	case <-sdone:
	case <-time.After(5 * time.Second):
		mu.Lock()
		deadlock = true
		hardErrs = append(hardErrs, "server still blocked after shutdown")
		mu.Unlock()
	}

	// Pool and lease audits, identical in spirit to RunChaosCell's:
	// drain teardown leftovers claim-freeing riding leases, then every
	// two-lock node pool and the whole slab arena must be whole.
	pool := sys.Blocks()
	audit := func(ch *livebind.Channel) {
		tl, ok := ch.Queue().(*queue.TwoLock)
		if !ok {
			return
		}
		if pool != nil {
			const auditOwner = ^uint32(0)
			queue.DrainFunc(tl, func(m core.Msg) {
				if !m.HasBlock() {
					return
				}
				if ref, _ := m.Block(); pool.Claim(ref, auditOwner) {
					_ = pool.Free(ref)
				}
			})
		} else {
			queue.Drain(tl)
		}
		res.PoolLeaked += int64(tl.Cap()) - tl.Pool().FreeCount()
	}
	audit(sys.ReceiveChannel())
	for i := 0; i < cfg.Clients; i++ {
		audit(sys.ReplyChannel(i))
	}
	if pool != nil && !deadlock {
		res.BlockLeaked = int64(pool.Capacity()) - pool.TotalFree()
	}

	total := ms.Total()
	res.Completed = completed.Load()
	res.PeerDeaths = total.PeerDeaths
	res.LockReclaims = total.LockReclaims
	res.OrphanMsgs = total.OrphanMsgs
	res.OrphanRefs = total.OrphanRefs
	res.OrphanBlocks = total.OrphanBlocks
	res.WakeRescues = total.WakeRescues
	res.Sheds = total.Sheds
	res.Overloads = total.Overloads
	res.Deadlocked = deadlock

	var fail []string
	if deadlock {
		fail = append(fail, "deadlocked: watchdog expired with participants blocked")
	}
	if res.PoolLeaked != 0 {
		fail = append(fail, fmt.Sprintf("pool leak: %d refs unaccounted for", res.PoolLeaked))
	}
	if res.BlockLeaked != 0 {
		fail = append(fail, fmt.Sprintf("payload leak: %d blocks unaccounted for", res.BlockLeaked))
	}
	if res.Sheds == 0 {
		fail = append(fail, "no sheds: the cell never reached overload, so it proves nothing")
	}
	if res.Overloads == 0 {
		fail = append(fail, "no admission rejects: the cell never reached overload")
	}
	if res.PeerDeaths == 0 {
		fail = append(fail, "victim's death never recovered")
	}
	if cfg.PaySize > 0 && res.OrphanBlocks == 0 {
		fail = append(fail, "stranded lease not reclaimed by the owner walk")
	}
	fail = append(fail, hardErrs...)
	if len(fail) > 0 {
		res.Error = fmt.Sprintf("%v", fail)
		return res, fmt.Errorf("chaos cell %s: %v", res.Label, fail)
	}
	return res, nil
}
