package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ulipc/internal/core"
)

// TestRunLiveObserved: an observed live run reports the phase
// histograms alongside the legacy counters.
func TestRunLiveObserved(t *testing.T) {
	res, err := RunLive(LiveConfig{Alg: core.BSW, Clients: 2, Msgs: 100, Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phase == nil {
		t.Fatal("observed run returned no phase snapshot")
	}
	if res.Phase.Proto != "BSW" {
		t.Fatalf("phase proto = %q, want BSW", res.Phase.Proto)
	}
	// 2 clients x (connect + 100 echoes + disconnect).
	if want := uint64(2 * 102); res.Phase.RTT.Count != want {
		t.Fatalf("RTT count = %d, want %d", res.Phase.RTT.Count, want)
	}
	if res.Phase.Sleep.Count == 0 {
		t.Fatal("BSW run recorded no sleep phase")
	}
	if p50 := res.Phase.RTT.Quantile(0.5); p50 <= 0 {
		t.Fatalf("p50 = %v", p50)
	}
}

// TestRunLiveUnobserved: the default path carries no snapshot.
func TestRunLiveUnobserved(t *testing.T) {
	res, err := RunLive(LiveConfig{Alg: core.BSS, Clients: 1, Msgs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phase != nil {
		t.Fatalf("unobserved run returned a phase snapshot: %+v", res.Phase)
	}
}

// TestWatchdogTripDumpsFlightRecorder forces a watchdog trip (a
// deadline far shorter than the workload) and checks the flight
// recorder lands on the configured writer — the post-mortem path.
func TestWatchdogTripDumpsFlightRecorder(t *testing.T) {
	var dump bytes.Buffer
	res, err := RunLive(LiveConfig{
		Alg:            core.BSW,
		Clients:        2,
		Msgs:           2_000_000, // far more than fits in the deadline
		Watchdog:       25 * time.Millisecond,
		Observe:        true,
		RecorderCap:    256,
		DumpOnWatchdog: &dump,
	})
	if err == nil {
		t.Fatal("run completed 4M round trips in 25ms — watchdog never tripped")
	}
	out := dump.String()
	if !strings.Contains(out, "flight recorder:") {
		t.Fatalf("no flight-recorder dump on watchdog trip; err=%v dump=%q", err, out)
	}
	// The dump must hold real traffic, attributed to named actors.
	if !strings.Contains(out, "send") || !strings.Contains(out, "client") {
		t.Fatalf("dump carries no attributed events:\n%s", out)
	}
	// The same dump is embedded in the Result so reports can carry it.
	if res.FlightDump != out {
		t.Fatalf("Result.FlightDump diverges from the writer dump:\nresult=%q\nwriter=%q", res.FlightDump, out)
	}
}

// TestLiveBenchEmbedsFlightDump: a watchdog-tripped cell of the bench
// matrix carries its flight-recorder dump in the JSON entry.
func TestLiveBenchEmbedsFlightDump(t *testing.T) {
	rep, err := RunLiveBench(LiveBenchOptions{
		Kinds:       []LiveBenchKind{DefaultLiveBenchKinds()[4]}, // "default"
		Algs:        []core.Algorithm{core.BSW},
		Clients:     []int{2},
		Msgs:        2_000_000, // far more than fits in the deadline
		Watchdog:    25 * time.Millisecond,
		RecorderCap: 256,
	}, nil)
	if err == nil {
		t.Fatal("4M round trips in 25ms — watchdog never tripped")
	}
	if len(rep.Entries) != 1 {
		t.Fatalf("got %d entries", len(rep.Entries))
	}
	e := rep.Entries[0]
	if e.Error == "" {
		t.Fatal("tripped cell has no Error")
	}
	if !strings.Contains(e.FlightDump, "flight recorder:") {
		t.Fatalf("tripped cell carries no flight dump: %+v", e)
	}
}

// TestLiveBenchQuantileColumns: an observed sweep fills the quantile
// and phase-breakdown fields of each cell.
func TestLiveBenchQuantileColumns(t *testing.T) {
	rep, err := RunLiveBench(LiveBenchOptions{
		Kinds:   []LiveBenchKind{DefaultLiveBenchKinds()[4]}, // "default"
		Algs:    []core.Algorithm{core.BSLS},
		Clients: []int{1},
		Msgs:    200,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 1 {
		t.Fatalf("got %d entries", len(rep.Entries))
	}
	e := rep.Entries[0]
	if e.RTTP50Ns <= 0 || e.RTTP95Ns < e.RTTP50Ns || e.RTTP99Ns < e.RTTP95Ns || e.RTTMaxNs < e.RTTP99Ns {
		t.Fatalf("quantiles not filled or not ordered: p50=%v p95=%v p99=%v max=%v",
			e.RTTP50Ns, e.RTTP95Ns, e.RTTP99Ns, e.RTTMaxNs)
	}

	// NoObs strips them again.
	rep, err = RunLiveBench(LiveBenchOptions{
		Kinds:   []LiveBenchKind{DefaultLiveBenchKinds()[4]},
		Algs:    []core.Algorithm{core.BSS},
		Clients: []int{1},
		Msgs:    100,
		NoObs:   true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e := rep.Entries[0]; e.RTTP50Ns != 0 || e.Sleeps != 0 {
		t.Fatalf("NoObs cell carries histogram columns: %+v", e)
	}
}

// TestRunLiveOverheadAB: the A/B harness produces medians for both arms
// and a finite delta on a tiny cell.
func TestRunLiveOverheadAB(t *testing.T) {
	res, err := RunLiveOverheadAB(LiveConfig{Alg: core.BSS, Clients: 1, Msgs: 50}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps != 3 || len(res.BaseNs) != 3 || len(res.ObsNs) != 3 {
		t.Fatalf("rep bookkeeping wrong: %+v", res)
	}
	if res.BaseMedianNs <= 0 || res.ObsMedianNs <= 0 {
		t.Fatalf("medians not positive: %+v", res)
	}
}

func TestMedian(t *testing.T) {
	if got := median(nil); got != 0 {
		t.Fatalf("median(nil) = %v", got)
	}
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v, want 2.5", got)
	}
}
