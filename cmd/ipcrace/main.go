// Command ipcrace explores the sleep/wake-up protocol races of the
// paper's Figure 4 with an exhaustive interleaving model checker. For
// each protocol variant it reports whether any interleaving deadlocks
// (a lost wake-up), how high the semaphore count can climb (the
// accumulation/overflow hazard), and — for broken variants — one
// concrete counterexample interleaving, in the same step vocabulary the
// paper uses (C.1–C.5, P.1–P.3).
//
// Usage:
//
//	ipcrace             # check the four Figure 4 scenarios
//	ipcrace -producers 3 -msgs 2
package main

import (
	"flag"
	"fmt"
	"os"

	"ulipc/internal/protomodel"
)

func main() {
	var (
		producers = flag.Int("producers", 2, "number of producers (1-3)")
		msgs      = flag.Int("msgs", 2, "messages per producer (1-4)")
	)
	flag.Parse()

	type scenario struct {
		name   string
		mutate func(*protomodel.Config)
		expect string
	}
	scenarios := []scenario{
		{
			name:   "full protocol (Figure 5: counting semaphores + TAS fixes + step C.3)",
			mutate: func(c *protomodel.Config) {},
			expect: "safe: no deadlock, bounded semaphore",
		},
		{
			name:   "Interleaving 1: event-style wake-up (wake-up does not remain pending)",
			mutate: func(c *protomodel.Config) { c.CountingSem = false },
			expect: "harmful: consumer can sleep forever",
		},
		{
			name:   "Interleaving 2: producers read the awake flag without test-and-set",
			mutate: func(c *protomodel.Config) { c.ProducerTAS = false },
			expect: "not fatal, but redundant wake-ups accumulate (semaphore overflow hazard)",
		},
		{
			name:   "Interleaving 3: consumer skips the test-and-set drain on a late reply",
			mutate: func(c *protomodel.Config) { c.ConsumerDrain = false },
			expect: "not fatal, but a pending wake-up leaks into later cycles",
		},
		{
			name:   "Interleaving 4: consumer drops the second dequeue (step C.3)",
			mutate: func(c *protomodel.Config) { c.UseC3 = false },
			expect: "harmful: consumer can sleep forever",
		},
	}

	for _, sc := range scenarios {
		cfg := protomodel.FullProtocol(*producers, *msgs)
		sc.mutate(&cfg)
		res, err := protomodel.Check(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipcrace:", err)
			os.Exit(1)
		}
		report(sc.name, sc.expect, res)
	}

	// Worker-pool scenarios (the Section 2.1 "multiple server threads"
	// extension): the paper's single awake flag vs the counted-waiters
	// discipline internal/core's pool uses.
	poolScenarios := []struct {
		name   string
		cfg    protomodel.PoolConfig
		expect string
	}{
		{
			name:   "worker pool, 2 workers sharing the paper's single awake flag",
			cfg:    protomodel.PoolConfig{Consumers: 2, Producers: 2, Msgs: 1, SharedFlag: true},
			expect: "harmful: one V satisfies the flag; the second sleeping worker is never woken",
		},
		{
			name:   "worker pool, 2 workers with the counted-waiters discipline",
			cfg:    protomodel.PoolConfig{Consumers: 2, Producers: 2, Msgs: 1},
			expect: "safe: register/claim/unregister keeps a wake-up per sleeping worker",
		},
	}
	for _, sc := range poolScenarios {
		res, err := protomodel.PoolCheck(sc.cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipcrace:", err)
			os.Exit(1)
		}
		report(sc.name, sc.expect, res)
	}
}

func report(name, expect string, res protomodel.Result) {
	fmt.Printf("== %s ==\n", name)
	fmt.Printf("paper: %s\n", expect)
	fmt.Printf("explored %d states, %d terminal; deadlock=%v; max pending wake-ups=%d; all messages consumed=%v\n",
		res.States, res.Terminal, res.Deadlock, res.MaxSem, res.AllConsumed)
	if res.Deadlock {
		fmt.Println("counterexample interleaving:")
		for _, step := range res.DeadlockPath {
			fmt.Printf("    %s\n", step)
		}
	}
	fmt.Println()
}
