package experiment

import (
	"fmt"

	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/workload"
)

// shortName maps a machine to the record-key prefix.
func shortName(m *machine.Model) string {
	if m.Name == machine.IBMP4().Name {
		return "ibm"
	}
	return "sgi"
}

// RunFig2 reproduces Figure 2: uniprocessor server throughput of the
// busy-waiting BSS algorithm vs System V message queues, for 1-6 clients
// on the SGI and IBM models.
func RunFig2(opt Options) (*Report, error) {
	r := newReport("fig2", "Uniprocessor server throughput: BSS vs SYSV",
		"SGI throughput RISES with clients (batching cuts context switches); IBM throughput FALLS from ~32 to ~19 msg/ms; BSS beats SYSV by >1.5x (SGI) and ~1.8x (IBM)")
	clients := clientSweep(opt.Quick)
	msgs := opt.msgs()

	for _, m := range uniMachines() {
		short := shortName(m)
		bss, _, err := sweep(workload.Config{Machine: m, Alg: core.BSS}, clients, msgs)
		if err != nil {
			return nil, err
		}
		sysv, _, err := sweep(workload.Config{Machine: m, Transport: workload.TransportSysV}, clients, msgs)
		if err != nil {
			return nil, err
		}
		curves := map[string][]float64{"BSS": bss, "SYSV": sysv}
		order := []string{"BSS", "SYSV"}
		r.Tables = append(r.Tables, throughputTable(
			fmt.Sprintf("Figure 2 — %s (messages/ms)", m.Name), clients, curves, order))
		r.Plots = append(r.Plots, throughputPlot(
			fmt.Sprintf("Figure 2 — %s", m.Name), clients, curves, order))
		r.recordCurve("fig2/"+short+"/bss", clients, bss)
		r.recordCurve("fig2/"+short+"/sysv", clients, sysv)
		r.Records["fig2/"+short+"/ratio1"] = bss[0] / sysv[0]
	}
	r.note("SGI 1-client BSS round trip: paper ~119us with ~2.5 yields per exchange (see the switches experiment for the yield instrumentation).")
	return r, nil
}

// RunFig3 reproduces Figure 3: the same BSS workload under non-degrading
// (fixed) priorities, which on the paper's machines requires super-user
// privileges.
func RunFig3(opt Options) (*Report, error) {
	r := newReport("fig3", "BSS under non-degrading (fixed) priorities",
		"fixed priorities increase BSS throughput by ~50% on the SGI and ~30% on the IBM: yields now reliably hand over the CPU")
	clients := clientSweep(opt.Quick)
	msgs := opt.msgs()

	for _, m := range uniMachines() {
		short := shortName(m)
		def, _, err := sweep(workload.Config{Machine: m, Alg: core.BSS}, clients, msgs)
		if err != nil {
			return nil, err
		}
		fixed, _, err := sweep(workload.Config{Machine: m, Alg: core.BSS, Policy: "fixed"}, clients, msgs)
		if err != nil {
			return nil, err
		}
		sysv, _, err := sweep(workload.Config{Machine: m, Transport: workload.TransportSysV}, clients, msgs)
		if err != nil {
			return nil, err
		}
		curves := map[string][]float64{"BSS-fixed": fixed, "BSS": def, "SYSV": sysv}
		order := []string{"BSS-fixed", "BSS", "SYSV"}
		r.Tables = append(r.Tables, throughputTable(
			fmt.Sprintf("Figure 3 — %s (messages/ms)", m.Name), clients, curves, order))
		r.Plots = append(r.Plots, throughputPlot(
			fmt.Sprintf("Figure 3 — %s", m.Name), clients, curves, order))
		r.recordCurve("fig3/"+short+"/fixed", clients, fixed)
		r.recordCurve("fig3/"+short+"/default", clients, def)
	}
	r.note("The simulated fixed-priority BSS reaches the Table-1 ideal (2 enq/deq pairs + 2 yield-with-switch per round trip) — the paper measured a smaller gain and itself notes the ideal is 'less than half of our observed latency'.")
	return r, nil
}

// RunFig6 reproduces Figure 6: the blocking Both Sides Wait algorithm
// compared against BSS and SYSV.
func RunFig6(opt Options) (*Report, error) {
	r := newReport("fig6", "Both Sides Wait (counting semaphores + awake flags)",
		"BSW 'more or less matches the performance of kernel mediated IPC': 4 system calls per round trip, like SYSV")
	clients := clientSweep(opt.Quick)
	msgs := opt.msgs()

	for _, m := range uniMachines() {
		short := shortName(m)
		bss, _, err := sweep(workload.Config{Machine: m, Alg: core.BSS}, clients, msgs)
		if err != nil {
			return nil, err
		}
		bsw, _, err := sweep(workload.Config{Machine: m, Alg: core.BSW}, clients, msgs)
		if err != nil {
			return nil, err
		}
		sysv, _, err := sweep(workload.Config{Machine: m, Transport: workload.TransportSysV}, clients, msgs)
		if err != nil {
			return nil, err
		}
		curves := map[string][]float64{"BSS": bss, "BSW": bsw, "SYSV": sysv}
		order := []string{"BSS", "BSW", "SYSV"}
		r.Tables = append(r.Tables, throughputTable(
			fmt.Sprintf("Figure 6 — %s (messages/ms)", m.Name), clients, curves, order))
		r.Plots = append(r.Plots, throughputPlot(
			fmt.Sprintf("Figure 6 — %s", m.Name), clients, curves, order))
		r.recordCurve("fig6/"+short+"/bsw", clients, bsw)
		r.recordCurve("fig6/"+short+"/sysv", clients, sysv)
		r.Records["fig6/"+short+"/bsw_vs_sysv1"] = bsw[0] / sysv[0]
	}
	return r, nil
}

// RunFig8 reproduces Figure 8: Both Sides Wait and Yield, with the
// default scheduler and with fixed priorities.
func RunFig8(opt Options) (*Report, error) {
	r := newReport("fig8", "Both Sides Wait and Yield (hand-off hints)",
		"busy_wait hints are effective for 1-2 clients but degrade with concurrency; with fixed priorities BSWY matches busy-waiting BSS")
	clients := clientSweep(opt.Quick)
	msgs := opt.msgs()

	for _, m := range uniMachines() {
		short := shortName(m)
		bsw, _, err := sweep(workload.Config{Machine: m, Alg: core.BSW}, clients, msgs)
		if err != nil {
			return nil, err
		}
		bswy, _, err := sweep(workload.Config{Machine: m, Alg: core.BSWY}, clients, msgs)
		if err != nil {
			return nil, err
		}
		bswyFixed, _, err := sweep(workload.Config{Machine: m, Alg: core.BSWY, Policy: "fixed"}, clients, msgs)
		if err != nil {
			return nil, err
		}
		bssFixed, _, err := sweep(workload.Config{Machine: m, Alg: core.BSS, Policy: "fixed"}, clients, msgs)
		if err != nil {
			return nil, err
		}
		curves := map[string][]float64{
			"BSWY-fixed": bswyFixed, "BSS-fixed": bssFixed, "BSWY": bswy, "BSW": bsw,
		}
		order := []string{"BSWY-fixed", "BSS-fixed", "BSWY", "BSW"}
		r.Tables = append(r.Tables, throughputTable(
			fmt.Sprintf("Figure 8 — %s (messages/ms)", m.Name), clients, curves, order))
		r.Plots = append(r.Plots, throughputPlot(
			fmt.Sprintf("Figure 8 — %s", m.Name), clients, curves, order))
		r.recordCurve("fig8/"+short+"/bswy", clients, bswy)
		r.recordCurve("fig8/"+short+"/bsw", clients, bsw)
		r.recordCurve("fig8/"+short+"/bswy_fixed", clients, bswyFixed)
		r.recordCurve("fig8/"+short+"/bss_fixed", clients, bssFixed)
	}
	return r, nil
}
