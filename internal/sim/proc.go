package sim

import (
	"fmt"

	"ulipc/internal/metrics"
)

// ProcState is the lifecycle state of a simulated process.
type ProcState int

const (
	StateNew ProcState = iota
	StateReady
	StateRunning
	StateBlocked  // waiting on a semaphore / message queue / barrier
	StateSleeping // in a timed sleep
	StateDead
)

func (s ProcState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateSleeping:
		return "sleeping"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Special pids for the handoff system call (Section 6 of the paper).
const (
	PIDSelf = -1 // handoff(PID_SELF): same semantics as yield
	PIDAny  = -2 // handoff(PID_ANY): block caller, run best other ready process
)

type reqKind int

const (
	reqStep reqKind = iota // consume CPU, then run the next code segment
	reqSys                 // system call
	reqExit                // process body returned (or panicked)
)

type sysKind int

const (
	sysYield sysKind = iota
	sysSemP
	sysSemV
	sysSleep
	sysMsgSnd
	sysMsgRcv
	sysBarrier
	sysHandoff
)

func (s sysKind) String() string {
	switch s {
	case sysYield:
		return "yield"
	case sysSemP:
		return "semP"
	case sysSemV:
		return "semV"
	case sysSleep:
		return "sleep"
	case sysMsgSnd:
		return "msgsnd"
	case sysMsgRcv:
		return "msgrcv"
	case sysBarrier:
		return "barrier"
	case sysHandoff:
		return "handoff"
	}
	return "sys?"
}

// request is what a process goroutine hands to the engine at each
// interaction point: "my last code segment is done; here is what I do
// next and what it costs".
type request struct {
	p       *Proc
	kind    reqKind
	sys     sysKind
	cost    Time
	arg     int64 // semaphore/queue/barrier id, sleep duration, handoff pid
	payload any   // msgsnd payload
	err     error // reqExit: non-nil if the body panicked
}

// Proc is a simulated kernel-level process. Its body runs on a dedicated
// goroutine, but the engine serialises execution: exactly one process
// executes Go code at any moment, and only between an engine resume and
// the process's next Step/syscall request.
type Proc struct {
	id   int
	name string
	k    *Kernel

	body func(*Proc)

	resumeCh chan struct{}

	state   ProcState
	cpu     *CPU
	pending *request // request not yet scheduled (preempted / not yet dispatched)
	sysRet  any      // return value for the in-progress blocking syscall

	// Scheduler-owned fields.
	BasePrio   int     // static priority (higher = more important)
	Usage      float64 // decayed recent CPU usage, in UsageQuantum units
	UsageStamp Time    // virtual time Usage was last decayed
	queued     bool    // in the scheduler run queue

	quantumLeft Time
	extraDelay  Time // kernel overhead (switch/block) charged before the next step

	M *metrics.Proc
}

// ID returns the process's pid.
func (p *Proc) ID() int { return p.id }

// Name returns the process's name.
func (p *Proc) Name() string { return p.name }

// State returns the current lifecycle state.
func (p *Proc) State() ProcState { return p.state }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time. Only valid while the process is
// executing (between a resume and its next request).
func (p *Proc) Now() Time { return p.k.now }

// request hands control to the engine and blocks until resumed.
func (p *Proc) request(r request) {
	r.p = p
	p.k.reqCh <- r
	<-p.resumeCh
}

// Step consumes cost of virtual CPU time. Code executed after Step
// returns (up to the next Step or syscall) happens atomically at the
// step's completion time with respect to all other processes.
func (p *Proc) Step(cost Time) {
	if cost < 0 {
		panic(fmt.Sprintf("sim: negative step cost %d", cost))
	}
	p.request(request{kind: reqStep, cost: cost})
}

// Yield performs a yield() system call. Whether the CPU actually switches
// is up to the scheduler policy, exactly as on the paper's systems.
func (p *Proc) Yield() {
	p.M.Yields.Add(1)
	p.M.Syscalls.Add(1)
	p.request(request{kind: reqSys, sys: sysYield, cost: p.k.mach.YieldCost})
}

// SemP performs a down (P) operation on a counting semaphore, blocking if
// the count is zero.
func (p *Proc) SemP(id SemID) {
	p.M.SemP.Add(1)
	p.M.Syscalls.Add(1)
	p.request(request{kind: reqSys, sys: sysSemP, cost: p.k.mach.SemPCost, arg: int64(id)})
}

// SemV performs an up (V) operation on a counting semaphore. It readies a
// waiter if one exists but — like System V semaphores — does NOT force a
// rescheduling decision on the caller's CPU.
func (p *Proc) SemV(id SemID) {
	p.M.SemV.Add(1)
	p.M.Syscalls.Add(1)
	p.request(request{kind: reqSys, sys: sysSemV, cost: p.k.mach.SemVCost, arg: int64(id)})
}

// SleepNS sleeps for at least d of virtual time.
func (p *Proc) SleepNS(d Time) {
	p.M.Sleeps.Add(1)
	p.M.Syscalls.Add(1)
	p.request(request{kind: reqSys, sys: sysSleep, cost: p.k.mach.BlockCost, arg: d})
}

// SleepSec sleeps for at least s seconds, honouring the machine's
// SleepFloor (UNIX sleep(1) semantics: at least one second).
func (p *Proc) SleepSec(s int) {
	d := Time(s) * Second
	if d < p.k.mach.SleepFloor {
		d = p.k.mach.SleepFloor
	}
	p.SleepNS(d)
}

// MsgSnd sends payload on a simulated System V message queue, blocking
// while the queue is full.
func (p *Proc) MsgSnd(q QID, payload any) {
	p.M.Syscalls.Add(1)
	p.request(request{kind: reqSys, sys: sysMsgSnd, cost: p.k.mach.MsgSndCost, arg: int64(q), payload: payload})
}

// MsgRcv receives the next message from a simulated System V message
// queue, blocking while it is empty.
func (p *Proc) MsgRcv(q QID) any {
	p.M.Syscalls.Add(1)
	p.sysRet = nil
	p.request(request{kind: reqSys, sys: sysMsgRcv, cost: p.k.mach.MsgRcvCost, arg: int64(q)})
	ret := p.sysRet
	p.sysRet = nil
	return ret
}

// Barrier blocks until all parties of the barrier have arrived.
func (p *Proc) Barrier(b BarrierID) {
	p.M.Syscalls.Add(1)
	p.request(request{kind: reqSys, sys: sysBarrier, cost: p.k.mach.SemPCost, arg: int64(b)})
}

// Handoff performs the paper's proposed handoff(pid) system call:
// pid >= 0 hands the CPU to that process if it is ready; PIDSelf behaves
// like yield; PIDAny deschedules the caller in favour of any other ready
// process, even one with lower priority.
func (p *Proc) Handoff(pid int) {
	p.M.Handoffs.Add(1)
	p.M.Syscalls.Add(1)
	p.request(request{kind: reqSys, sys: sysHandoff, cost: p.k.mach.HandoffCost, arg: int64(pid)})
}

func (p *Proc) String() string {
	return fmt.Sprintf("proc %d (%s, %s)", p.id, p.name, p.state)
}
