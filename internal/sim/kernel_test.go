package sim_test

import (
	"testing"

	"ulipc/internal/machine"
	"ulipc/internal/metrics"
	"ulipc/internal/sim"
	"ulipc/internal/sim/sched"
)

func newKernel(t *testing.T, m *machine.Model, policy string) *sim.Kernel {
	t.Helper()
	s, err := sched.New(policy)
	if err != nil {
		t.Fatal(err)
	}
	k, err := sim.New(sim.Config{Machine: m, Sched: s})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSingleProcRuns(t *testing.T) {
	k := newKernel(t, machine.SGIIndy(), sched.PolicyDegrading)
	var ticks int
	var endTime sim.Time
	k.Spawn("worker", 0, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Step(1000)
			ticks++
		}
		endTime = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if endTime != 10*1000 {
		t.Fatalf("virtual end time = %d, want 10000", endTime)
	}
}

func TestStepAdvancesVirtualTime(t *testing.T) {
	k := newKernel(t, machine.SGIIndy(), sched.PolicyDegrading)
	var times []sim.Time
	k.Spawn("w", 0, func(p *sim.Proc) {
		times = append(times, p.Now())
		p.Step(5 * sim.Microsecond)
		times = append(times, p.Now())
		p.Step(0)
		times = append(times, p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if times[1]-times[0] != 5*sim.Microsecond {
		t.Errorf("step advanced %d, want 5us", times[1]-times[0])
	}
	if times[2] != times[1] {
		t.Errorf("zero-cost step advanced time: %d -> %d", times[1], times[2])
	}
}

func TestSemaphoreBlocksAndWakes(t *testing.T) {
	k := newKernel(t, machine.SGIIndy(), sched.PolicyDegrading)
	sem := k.NewSem(0)
	var order []string
	k.Spawn("consumer", 0, func(p *sim.Proc) {
		p.SemP(sem)
		order = append(order, "consumed")
	})
	k.Spawn("producer", 0, func(p *sim.Proc) {
		p.Step(50 * sim.Microsecond)
		order = append(order, "produced")
		p.SemV(sem)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "produced" || order[1] != "consumed" {
		t.Fatalf("order = %v", order)
	}
}

func TestSemaphoreCountingSemantics(t *testing.T) {
	k := newKernel(t, machine.SGIIndy(), sched.PolicyDegrading)
	sem := k.NewSem(2)
	passed := 0
	k.Spawn("w", 0, func(p *sim.Proc) {
		p.SemP(sem)
		passed++
		p.SemP(sem)
		passed++
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if passed != 2 {
		t.Fatalf("passed = %d, want 2 (initial count 2 must not block)", passed)
	}
	if got := k.SemCount(sem); got != 0 {
		t.Fatalf("final count = %d, want 0", got)
	}
}

func TestSleepWakesAtRightTime(t *testing.T) {
	k := newKernel(t, machine.SGIIndy(), sched.PolicyDegrading)
	var woke sim.Time
	k.Spawn("sleeper", 0, func(p *sim.Proc) {
		p.SleepNS(2 * sim.Millisecond)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke < 2*sim.Millisecond {
		t.Fatalf("woke at %d, want >= 2ms", woke)
	}
	if woke > 3*sim.Millisecond {
		t.Fatalf("woke at %d, too late", woke)
	}
}

func TestMsgQueueRoundTrip(t *testing.T) {
	k := newKernel(t, machine.SGIIndy(), sched.PolicyDegrading)
	req := k.NewMsgQueue(16)
	rsp := k.NewMsgQueue(16)
	var got any
	k.Spawn("server", 0, func(p *sim.Proc) {
		v := p.MsgRcv(req)
		p.MsgSnd(rsp, v)
	})
	k.Spawn("client", 0, func(p *sim.Proc) {
		p.MsgSnd(req, 42)
		got = p.MsgRcv(rsp)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %v, want 42", got)
	}
}

func TestMsgQueueFullBlocksSender(t *testing.T) {
	k := newKernel(t, machine.SGIIndy(), sched.PolicyDegrading)
	q := k.NewMsgQueue(1)
	var received []any
	k.Spawn("sender", 0, func(p *sim.Proc) {
		p.MsgSnd(q, 1)
		p.MsgSnd(q, 2) // must block until the receiver drains
		p.MsgSnd(q, 3)
	})
	k.Spawn("receiver", 0, func(p *sim.Proc) {
		p.SleepNS(1 * sim.Millisecond)
		for i := 0; i < 3; i++ {
			received = append(received, p.MsgRcv(q))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(received) != 3 || received[0] != 1 || received[1] != 2 || received[2] != 3 {
		t.Fatalf("received = %v", received)
	}
}

func TestBarrierReleasesAllTogether(t *testing.T) {
	k := newKernel(t, machine.SGIIndy(), sched.PolicyDegrading)
	const n = 4
	b := k.NewBarrier(n)
	var before, after [n]sim.Time
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("w", 0, func(p *sim.Proc) {
			p.Step(sim.Time(i) * sim.Microsecond) // stagger arrivals
			before[i] = p.Now()
			p.Barrier(b)
			after[i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var maxBefore sim.Time
	for i := 0; i < n; i++ {
		if before[i] > maxBefore {
			maxBefore = before[i]
		}
	}
	for i := 0; i < n; i++ {
		if after[i] < maxBefore {
			t.Fatalf("proc %d passed barrier at %d before last arrival %d", i, after[i], maxBefore)
		}
	}
}

func TestYieldAlternatesUnderLinuxMod(t *testing.T) {
	k := newKernel(t, machine.Linux486(), sched.PolicyLinuxMod)
	var order []string
	mk := func(name string) func(*sim.Proc) {
		return func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				p.Yield()
			}
		}
	}
	k.Spawn("a", 0, mk("a"))
	k.Spawn("b", 0, mk("b"))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// With forced-switch yield the two processes must alternate.
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want alternation", order)
		}
	}
}

func TestYieldDoesNotSwitchUnderLinux10(t *testing.T) {
	k := newKernel(t, machine.Linux486(), sched.PolicyLinux10)
	var order []string
	mk := func(name string) func(*sim.Proc) {
		return func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				p.Yield()
			}
		}
	}
	k.Spawn("a", 0, mk("a"))
	k.Spawn("b", 0, mk("b"))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Unmodified Linux 1.0: yield re-picks the caller, so "a" finishes its
	// loop before "b" starts (quantum is far larger than 3 yields).
	want := []string{"a", "a", "a", "b", "b", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestHandoffTransfersCPU(t *testing.T) {
	k := newKernel(t, machine.Linux486(), sched.PolicyLinux10)
	var order []string
	var target *sim.Proc
	a := k.Spawn("a", 0, func(p *sim.Proc) {
		order = append(order, "a1")
		p.Handoff(target.ID())
		order = append(order, "a2")
	})
	target = k.Spawn("b", 0, func(p *sim.Proc) {
		order = append(order, "b1")
	})
	_ = a
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Even under linux10 (where yield would NOT switch), handoff must run b.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestHandoffPIDAnyRunsOther(t *testing.T) {
	k := newKernel(t, machine.Linux486(), sched.PolicyLinux10)
	var order []string
	k.Spawn("a", 5, func(p *sim.Proc) { // higher priority caller
		order = append(order, "a1")
		p.Handoff(sim.PIDAny)
		order = append(order, "a2")
	})
	k.Spawn("b", 0, func(p *sim.Proc) {
		order = append(order, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := newKernel(t, machine.SGIIndy(), sched.PolicyDegrading)
	sem := k.NewSem(0)
	k.Spawn("stuck", 0, func(p *sim.Proc) {
		p.SemP(sem) // nobody will V
	})
	err := k.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestPanicPropagates(t *testing.T) {
	k := newKernel(t, machine.SGIIndy(), sched.PolicyDegrading)
	k.Spawn("bad", 0, func(p *sim.Proc) {
		p.Step(100)
		panic("boom")
	})
	err := k.Run()
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestMetricsCountSyscalls(t *testing.T) {
	ms := metrics.NewSet()
	s, _ := sched.New(sched.PolicyDegrading)
	k, err := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: s, Metrics: ms})
	if err != nil {
		t.Fatal(err)
	}
	sem := k.NewSem(1)
	k.Spawn("w", 0, func(p *sim.Proc) {
		p.Yield()
		p.SemP(sem)
		p.SemV(sem)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	snap, ok := ms.Find("w")
	if !ok {
		t.Fatal("no metrics for w")
	}
	if snap.Yields != 1 || snap.SemP != 1 || snap.SemV != 1 {
		t.Fatalf("snap = %+v", snap)
	}
	if snap.Syscalls != 3 {
		t.Fatalf("syscalls = %d, want 3", snap.Syscalls)
	}
}

func TestMultiprocessorParallelism(t *testing.T) {
	// Two CPU-bound processes on an 8-CPU machine must overlap in virtual
	// time: total makespan ~= single process runtime.
	k := newKernel(t, machine.SGIChallenge8(), sched.PolicyDegrading)
	var ends [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("w", 0, func(p *sim.Proc) {
			for j := 0; j < 100; j++ {
				p.Step(10 * sim.Microsecond)
			}
			ends[i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, e := range ends {
		if e > 1100*sim.Microsecond {
			t.Fatalf("proc %d finished at %d; wanted parallel execution ~1000us", i, e)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, int64) {
		s, _ := sched.New(sched.PolicyDegrading)
		ms := metrics.NewSet()
		k, err := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: s, Metrics: ms})
		if err != nil {
			t.Fatal(err)
		}
		sem := k.NewSem(0)
		var end sim.Time
		k.Spawn("c", 0, func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				p.Step(500)
				p.SemV(sem)
				p.Yield()
			}
			end = p.Now()
		})
		k.Spawn("s", 0, func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				p.SemP(sem)
				p.Step(300)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return end, ms.Total().SwitchesTotal()
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", e1, s1, e2, s2)
	}
}
