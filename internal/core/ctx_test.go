package core

import (
	"context"
	"errors"
	"testing"

	"ulipc/internal/metrics"
)

// ctxFakeActor extends fakeActor with the CtxActor capability so the
// context-threaded protocol paths can be driven deterministically: the
// hooks run in place of a real park/sleep.
type ctxFakeActor struct {
	*fakeActor
	onPCtx     func(SemID) error // nil: fall back to non-blocking P semantics
	onSleepCtx func(int) error   // nil: count and succeed
	sleptFor   []int
}

func (a *ctxFakeActor) PCtx(ctx context.Context, id SemID) error {
	if a.onPCtx != nil {
		return a.onPCtx(id)
	}
	if a.sems[id] > 0 {
		a.sems[id]--
		return nil
	}
	return ctx.Err()
}

func (a *ctxFakeActor) SleepCtx(ctx context.Context, s int) error {
	a.sleptFor = append(a.sleptFor, s)
	if a.onSleepCtx != nil {
		return a.onSleepCtx(s)
	}
	return ctx.Err()
}

var _ CtxActor = (*ctxFakeActor)(nil)

func TestSendCtxNotCancellable(t *testing.T) {
	// A binding whose Actor cannot park cancellably (the simulator's)
	// must surface ErrNotCancellable from a wait that would block —
	// after the request was enqueued, so the reply lag is recorded.
	c := &Client{
		ID:  0,
		Alg: BSW,
		Srv: newFakePort(0, 4),
		Rcv: newFakePort(1, 4),
		A:   newFakeActor(2),
	}
	_, err := c.SendCtx(context.Background(), Msg{Op: OpEcho})
	if !errors.Is(err, ErrNotCancellable) {
		t.Fatalf("err = %v, want ErrNotCancellable", err)
	}
	if c.Lag() != 1 {
		t.Fatalf("lag = %d, want 1", c.Lag())
	}
}

func TestSendCtxDisconnected(t *testing.T) {
	rcv := newFakePort(1, 4)
	c := &Client{
		ID:  0,
		Alg: BSW,
		Srv: newFakePort(0, 4),
		Rcv: rcv,
		A:   newFakeActor(2),
	}
	// Pre-queue the disconnect ack so the handshake completes on the
	// fast path.
	rcv.TryEnqueue(Msg{Op: OpDisconnect})
	if _, err := c.SendCtx(context.Background(), Msg{Op: OpDisconnect}); err != nil {
		t.Fatalf("disconnect handshake: %v", err)
	}
	if _, err := c.SendCtx(context.Background(), Msg{Op: OpEcho}); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("send after disconnect = %v, want ErrDisconnected", err)
	}
}

func TestReplyCtxDoubleReply(t *testing.T) {
	rcv := newFakePort(0, 4)
	s := &Server{
		Alg:     BSW,
		Rcv:     rcv,
		Replies: []Port{newFakePort(1, 4)},
		A:       newFakeActor(2),
	}
	// No request received yet: any reply is a double reply.
	if err := s.ReplyCtx(context.Background(), 0, Msg{}); !errors.Is(err, ErrDoubleReply) {
		t.Fatalf("reply before receive = %v, want ErrDoubleReply", err)
	}
	rcv.TryEnqueue(Msg{Op: OpEcho, MsgMeta: MsgMeta{Client: 0}})
	if _, err := s.ReceiveCtx(context.Background()); err != nil {
		t.Fatalf("receive: %v", err)
	}
	if err := s.ReplyCtx(context.Background(), 0, Msg{Op: OpEcho}); err != nil {
		t.Fatalf("first reply: %v", err)
	}
	if err := s.ReplyCtx(context.Background(), 0, Msg{Op: OpEcho}); !errors.Is(err, ErrDoubleReply) {
		t.Fatalf("second reply = %v, want ErrDoubleReply", err)
	}
	// Out-of-range channels are the same misuse class.
	if err := s.ReplyCtx(context.Background(), 9, Msg{}); !errors.Is(err, ErrDoubleReply) {
		t.Fatalf("out-of-range reply = %v, want ErrDoubleReply", err)
	}
}

func TestEnqueueOrSleepCtxBackoff(t *testing.T) {
	q := newFakePort(0, 1)
	q.TryEnqueue(Msg{}) // fill
	base := newFakeActor(1)
	a := &ctxFakeActor{fakeActor: base}
	a.onSleepCtx = func(int) error {
		if len(a.sleptFor) == 3 {
			q.msgs = q.msgs[:0] // consumer finally drained the queue
		}
		return nil
	}
	pm := &metrics.Proc{}
	if err := enqueueOrSleepCtx(context.Background(), q, a, Msg{Val: 3}, pm, nil); err != nil {
		t.Fatal(err)
	}
	// The nap ceiling doubles per round (1, 2, 4 "seconds") with
	// uniform jitter below it — see backoff in overload.go. Exact naps
	// depend on the jitter stream; the ceiling schedule does not.
	if len(a.sleptFor) != 3 {
		t.Fatalf("sleeps = %v, want 3 rounds", a.sleptFor)
	}
	for i, s := range a.sleptFor {
		ceil := 1 << i
		if s < 1 || s > ceil {
			t.Fatalf("sleep %d = %d, want within [1,%d]", i, s, ceil)
		}
	}
	if got := pm.Retries.Load(); got != 3 {
		t.Fatalf("retries = %d, want 3", got)
	}
	if len(q.msgs) != 1 || q.msgs[0].Val != 3 {
		t.Fatalf("queue = %+v", q.msgs)
	}
}

func TestEnqueueOrSleepCtxDeadline(t *testing.T) {
	q := newFakePort(0, 1)
	q.TryEnqueue(Msg{}) // stays full
	a := &ctxFakeActor{fakeActor: newFakeActor(1)}
	ctx, cancel := context.WithCancel(context.Background())
	a.onSleepCtx = func(int) error {
		cancel() // deadline fires during the nap
		return ctx.Err()
	}
	pm := &metrics.Proc{}
	err := enqueueOrSleepCtx(ctx, q, a, Msg{}, pm, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(q.msgs) != 1 {
		t.Fatalf("cancelled retry must not enqueue: queue = %+v", q.msgs)
	}
}

// TestConsumerWaitCtxCancelDrainsRacingWake is the Figure 4 awake-flag
// race under cancellation, step by step: the consumer is parked, a
// producer enqueues + sets the flag + Vs, and the cancellation fires
// before the grant is observed. The cancelled wait must drain the
// producer's token and take the message — success beats cancellation,
// and the semaphore count returns to zero.
func TestConsumerWaitCtxCancelDrainsRacingWake(t *testing.T) {
	q := newFakePort(0, 4)
	base := newFakeActor(1)
	a := &ctxFakeActor{fakeActor: base}
	a.onPCtx = func(id SemID) error {
		// While "parked": the producer enqueues, TASes the flag (clear →
		// set, so it Vs), and then the wait is cancelled having consumed
		// no token.
		q.msgs = append(q.msgs, Msg{Val: 11})
		if !q.TASAwake() {
			base.sems[id]++
		}
		return context.Canceled
	}
	m, err := consumerWaitCtx(context.Background(), q, a, nil)
	if err != nil {
		t.Fatalf("racing wake must win over cancellation: %v", err)
	}
	if m.Val != 11 {
		t.Fatalf("got %+v", m)
	}
	if base.sems[0] != 0 {
		t.Fatalf("producer's token not drained: sem = %d", base.sems[0])
	}
}

// TestConsumerWaitCtxCancelSuppressesFutureWake is the complementary
// interleaving: the wait is cancelled with no producer in sight. The
// consumer must restore the awake flag so a later producer does not V
// into the void (which would leak a token).
func TestConsumerWaitCtxCancelSuppressesFutureWake(t *testing.T) {
	q := newFakePort(0, 4)
	base := newFakeActor(1)
	a := &ctxFakeActor{fakeActor: base}
	a.onPCtx = func(SemID) error { return context.DeadlineExceeded }
	_, err := consumerWaitCtx(context.Background(), q, a, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if !q.awake {
		t.Fatal("cancelled wait must restore the awake flag")
	}
	// The next producer now sees the flag set: no V, no leaked token.
	if wakeConsumer(q, base) {
		t.Fatal("producer must not V after the flag was restored")
	}
	if base.sems[0] != 0 {
		t.Fatalf("sem = %d, want 0", base.sems[0])
	}
}

func TestSendCtxPreCancelled(t *testing.T) {
	c := &Client{
		ID:  0,
		Alg: BSLS,
		Srv: newFakePort(0, 4),
		Rcv: newFakePort(1, 4),
		A:   &ctxFakeActor{fakeActor: newFakeActor(2)},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.SendCtx(ctx, Msg{Op: OpEcho}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
