// Package experiment regenerates every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each experiment
// produces a Report containing text tables, ASCII plots, notes, and a
// flat record map that the test suite asserts shape-level claims
// against (who wins, by what factor, where crossovers fall).
package experiment

import (
	"fmt"
	"io"
	"sort"

	"ulipc/internal/chart"
	"ulipc/internal/machine"
	"ulipc/internal/workload"
)

// Options tunes experiment execution.
type Options struct {
	// Msgs is the number of requests per client (0 = default 2000;
	// Quick runs use 500).
	Msgs int
	// Quick trades precision for speed (CI-friendly).
	Quick bool
}

func (o Options) msgs() int {
	if o.Msgs > 0 {
		return o.Msgs
	}
	if o.Quick {
		return 500
	}
	return 2000
}

// Report is the result of one experiment.
type Report struct {
	ID         string
	Title      string
	PaperClaim string // what the paper's artefact shows
	Tables     []*chart.Table
	Plots      []*chart.Plot
	Notes      []string
	Records    map[string]float64
}

func newReport(id, title, claim string) *Report {
	return &Report{ID: id, Title: title, PaperClaim: claim, Records: map[string]float64{}}
}

func (r *Report) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the full report to w.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(w, "paper: %s\n", r.PaperClaim)
	}
	fmt.Fprintln(w)
	for _, t := range r.Tables {
		t.Render(w)
		fmt.Fprintln(w)
	}
	for _, p := range r.Plots {
		p.Render(w, 64, 16)
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
	}
}

// RenderMarkdown writes the report's tables and notes as Markdown, the
// format EXPERIMENTS.md uses.
func (r *Report) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n\n", r.ID, r.Title)
	if r.PaperClaim != "" {
		fmt.Fprintf(w, "Paper: %s\n\n", r.PaperClaim)
	}
	for _, t := range r.Tables {
		t.RenderMarkdown(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "* %s\n", n)
	}
	if len(r.Notes) > 0 {
		fmt.Fprintln(w)
	}
}

// RenderRecords writes the flat record map (sorted) — the
// machine-readable paper-vs-measured data used by EXPERIMENTS.md.
func (r *Report) RenderRecords(w io.Writer) {
	keys := make([]string, 0, len(r.Records))
	for k := range r.Records {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s = %.3f\n", k, r.Records[k])
	}
}

// Experiment is a registered, runnable reproduction artefact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

// All returns the experiments in the paper's presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Primitive operation times (Table 1)", RunTable1},
		{"fig2", "Uniprocessor BSS vs SYSV throughput (Figure 2)", RunFig2},
		{"fig3", "Non-degrading (fixed) priorities (Figure 3)", RunFig3},
		{"fig6", "Both Sides Wait (Figure 6)", RunFig6},
		{"fig8", "Both Sides Wait and Yield (Figure 8)", RunFig8},
		{"fig10", "BSLS MAX_SPIN sensitivity (Figure 10)", RunFig10},
		{"fig11", "Multiprocessor throughput (Figure 11)", RunFig11},
		{"fig12", "Modified sched_yield in Linux (Figure 12)", RunFig12},
		{"switches", "Context-switch analysis (Section 2.2)", RunSwitches},
		{"multiprog", "Multiprogrammed environment (Section 1 motivation)", RunMultiprog},
		{"arch", "Server architecture: shared queue vs thread-per-client (Section 2.1)", RunArch},
		{"workers", "Server worker pool scaling (Section 2.1 extension)", RunWorkers},
		{"sensitivity", "Calibration robustness: aging-quantum sweep", RunSensitivity},
		{"ablation", "BSLS wake-throttling (Section 5 future work)", RunAblation},
		{"queues", "Queue implementation ablation (live runtime)", RunQueues},
		{"async", "Asynchronous send batching (Section 1 motivation)", RunAsync},
	}
}

// ByID finds an experiment by its identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// clientSweep is the client-count axis of the uniprocessor figures.
func clientSweep(quick bool) []int {
	if quick {
		return []int{1, 2, 4, 6}
	}
	return []int{1, 2, 3, 4, 5, 6}
}

// sweep runs the workload across client counts and returns throughputs
// in messages/ms.
func sweep(base workload.Config, clients []int, msgs int) ([]float64, []workload.Result, error) {
	ths := make([]float64, 0, len(clients))
	results := make([]workload.Result, 0, len(clients))
	for _, n := range clients {
		cfg := base
		cfg.Clients = n
		cfg.Msgs = msgs
		res, err := workload.RunSim(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("%s n=%d: %w", res.Label, n, err)
		}
		ths = append(ths, res.Throughput)
		results = append(results, res)
	}
	return ths, results, nil
}

func floats(ints []int) []float64 {
	out := make([]float64, len(ints))
	for i, v := range ints {
		out[i] = float64(v)
	}
	return out
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// recordCurve stores a throughput curve under prefix/<clients>.
func (r *Report) recordCurve(prefix string, clients []int, ths []float64) {
	for i, n := range clients {
		r.Records[fmt.Sprintf("%s/%d", prefix, n)] = ths[i]
	}
}

// uniMachines returns the two uniprocessor models of Figures 2-10.
func uniMachines() []*machine.Model {
	return []*machine.Model{machine.SGIIndy(), machine.IBMP4()}
}

// throughputTable builds the standard clients-vs-curves table.
func throughputTable(title string, clients []int, curves map[string][]float64, order []string) *chart.Table {
	t := &chart.Table{Title: title}
	t.Headers = append([]string{"clients"}, order...)
	for i, n := range clients {
		row := []string{fmt.Sprintf("%d", n)}
		for _, name := range order {
			row = append(row, f2(curves[name][i]))
		}
		t.AddRow(row...)
	}
	return t
}

// throughputPlot builds the standard throughput-vs-clients plot.
func throughputPlot(title string, clients []int, curves map[string][]float64, order []string) *chart.Plot {
	p := &chart.Plot{Title: title, XLabel: "clients", YLabel: "messages/ms", X: floats(clients)}
	for _, name := range order {
		p.Series = append(p.Series, chart.Series{Name: name, Y: curves[name]})
	}
	return p
}
