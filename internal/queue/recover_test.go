package queue

import (
	"testing"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/fault"
)

// crashAt builds a hook for actor that crashes with certainty at the
// given point and nowhere else.
func crashAt(inj **fault.Injector, actor int32, p fault.Point) fault.Hook {
	plan := fault.Plan{Seed: 1}
	plan.Crash[p] = 1.0
	*inj = fault.NewInjector(plan)
	return (*inj).Hook(actor)
}

// mustCrash runs f expecting an injected crash and returns it.
func mustCrash(t *testing.T, f func()) fault.Crash {
	t.Helper()
	var c fault.Crash
	var ok bool
	func() {
		defer func() { c, ok = fault.AsCrash(recover()) }()
		f()
	}()
	if !ok {
		t.Fatal("expected an injected crash")
	}
	return c
}

func TestRecoverTailLockAfterEnqueueCrash(t *testing.T) {
	q, err := NewTwoLock(8)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Enqueue(core.Msg{Seq: 1}) {
		t.Fatal("seed enqueue failed")
	}

	var inj *fault.Injector
	const dead int32 = 7
	fh := crashAt(&inj, dead, fault.PtEnqueueLocked)
	c := mustCrash(t, func() { q.EnqueueAs(dead, core.Msg{Seq: 2}, fh) })
	if c.Point != fault.PtEnqueueLocked {
		t.Fatalf("crashed at %v, want enqueue-locked", c.Point)
	}

	// The dead enqueuer holds the tail lock: another enqueuer would
	// spin forever. Prove the lock is held, then recover.
	if !q.tailMu.HeldBy(dead) {
		t.Fatal("tail lock not held by the dead owner")
	}
	if got := q.RecoverDead(dead); got != 1 {
		t.Fatalf("RecoverDead reclaimed %d locks, want 1", got)
	}
	if got := q.RecoverDead(dead); got != 0 {
		t.Fatalf("second RecoverDead reclaimed %d locks, want 0", got)
	}

	// Tail was re-validated: the crashed enqueuer's node (linked but
	// tail not advanced) must be preserved, and new enqueues must land
	// after it, not clobber it.
	if !q.Enqueue(core.Msg{Seq: 3}) {
		t.Fatal("post-recovery enqueue failed")
	}
	var seqs []int64
	for {
		m, ok := q.Dequeue()
		if !ok {
			break
		}
		seqs = append(seqs, int64(m.Seq))
	}
	want := []int64{1, 2, 3}
	if len(seqs) != len(want) {
		t.Fatalf("drained %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("drained %v, want %v", seqs, want)
		}
	}
	// No pending orphan: the node made it into the queue.
	if inj.ReclaimPending(dead) {
		t.Fatal("linked node was still registered as pending")
	}
}

// TestRecoverTailAfterDummyPassedStaleTail is the regression test for
// the chaos-found message-loss bug: while a dead enqueuer holds the
// tail lock with the tail ref stale, dequeuers may legally advance the
// dummy PAST the stale tail and free that node back to the pool. A
// repair that walks links from the stale tail then wanders into the
// free list and plants the tail on a free node — every later enqueue
// links onto an orphan chain invisible to dequeuers. The repair must
// re-derive the tail from the head dummy instead.
func TestRecoverTailAfterDummyPassedStaleTail(t *testing.T) {
	q, err := NewTwoLock(8)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Enqueue(core.Msg{Seq: 1}) {
		t.Fatal("seed enqueue failed")
	}

	var inj *fault.Injector
	const dead int32 = 7
	fh := crashAt(&inj, dead, fault.PtEnqueueLocked)
	mustCrash(t, func() { q.EnqueueAs(dead, core.Msg{Seq: 2}, fh) })

	// Drain past the stale tail: the second dequeue makes the node the
	// dead owner's tail ref still points at the dummy, and the third...
	// would stop — both messages out, the stale-tail node now freed.
	if m, ok := q.Dequeue(); !ok || m.Seq != 1 {
		t.Fatalf("first dequeue got (%v,%v)", m, ok)
	}
	if m, ok := q.Dequeue(); !ok || m.Seq != 2 {
		t.Fatalf("second dequeue got (%v,%v)", m, ok)
	}

	if got := q.RecoverDead(dead); got != 1 {
		t.Fatalf("RecoverDead reclaimed %d locks, want 1", got)
	}

	// The tail must point at a live queue node again: an enqueue after
	// recovery must be visible to dequeuers, and the pool must balance.
	if !q.Enqueue(core.Msg{Seq: 3}) {
		t.Fatal("post-recovery enqueue failed")
	}
	if m, ok := q.Dequeue(); !ok || m.Seq != 3 {
		t.Fatalf("post-recovery dequeue got (%v,%v), want seq 3", m, ok)
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("queue should be empty")
	}
	if free := q.Pool().FreeCount(); free != int64(q.Cap()) {
		t.Fatalf("pool free count %d, want %d", free, q.Cap())
	}
}

func TestRecoverHeadLockAfterDequeueCrash(t *testing.T) {
	q, err := NewTwoLock(8)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(core.Msg{Seq: 41})
	q.Enqueue(core.Msg{Seq: 42})

	var inj *fault.Injector
	const dead int32 = 3
	fh := crashAt(&inj, dead, fault.PtDequeueLocked)
	mustCrash(t, func() { q.DequeueAs(dead, fh) })

	if !q.headMu.HeldBy(dead) {
		t.Fatal("head lock not held by the dead owner")
	}
	if got := q.RecoverDead(dead); got != 1 {
		t.Fatalf("RecoverDead reclaimed %d locks, want 1", got)
	}

	// The head never advanced, so the in-flight message is re-delivered.
	m, ok := q.Dequeue()
	if !ok || m.Seq != 41 {
		t.Fatalf("redelivery got (%v,%v), want seq 41", m, ok)
	}
	m, ok = q.Dequeue()
	if !ok || m.Seq != 42 {
		t.Fatalf("second dequeue got (%v,%v), want seq 42", m, ok)
	}
}

func TestPendingOrphanReclaimRestoresPool(t *testing.T) {
	q, err := NewTwoLock(4)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(core.Msg{Seq: 9})
	baseline := q.Pool().FreeCount()

	// Crash after the dequeue unlinked the old dummy but before it was
	// freed: the node is unreachable from the queue — a true orphan.
	var inj *fault.Injector
	const dead int32 = 5
	fh := crashAt(&inj, dead, fault.PtBeforeFree)
	mustCrash(t, func() { q.DequeueAs(dead, fh) })

	if q.headMu.HeldBy(dead) {
		t.Fatal("head lock should have been released before the free")
	}
	if got := q.Pool().FreeCount(); got != baseline {
		t.Fatalf("free count %d, want %d (orphan not yet reclaimed)", got, baseline)
	}
	if !inj.ReclaimPending(dead) {
		t.Fatal("orphaned ref was not pending")
	}
	if got := q.Pool().FreeCount(); got != baseline+1 {
		t.Fatalf("free count %d after reclaim, want %d", got, baseline+1)
	}

	// Crash between alloc and link: same story on the enqueue side.
	fh2 := crashAt(&inj, dead+1, fault.PtAfterAlloc)
	before := q.Pool().FreeCount()
	mustCrash(t, func() { q.EnqueueAs(dead+1, core.Msg{Seq: 10}, fh2) })
	if got := q.Pool().FreeCount(); got != before-1 {
		t.Fatalf("free count %d after alloc-crash, want %d", got, before-1)
	}
	if !inj.ReclaimPending(dead + 1) {
		t.Fatal("allocated-unlinked ref was not pending")
	}
	if got := q.Pool().FreeCount(); got != before {
		t.Fatalf("free count %d after reclaim, want %d", got, before)
	}
}

func TestRevokedUnlockFailsAndQueueStaysUsable(t *testing.T) {
	q, err := NewTwoLock(4)
	if err != nil {
		t.Fatal(err)
	}
	// An owner acquires, is (wrongly) presumed dead and revoked, then
	// tries to unlock: the release must fail, and the next acquisition
	// must succeed.
	h := q.tailMu.Lock(12)
	if !q.tailMu.Revoke(12) {
		t.Fatal("revoke of a held lock failed")
	}
	if q.tailMu.Unlock(h) {
		t.Fatal("unlock succeeded after revocation")
	}
	done := make(chan struct{})
	go func() {
		h2 := q.tailMu.Lock(13)
		q.tailMu.Unlock(h2)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("lock not acquirable after revocation")
	}
}

func TestRecoverDeadNoLocksHeld(t *testing.T) {
	q, err := NewTwoLock(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.RecoverDead(99); got != 0 {
		t.Fatalf("RecoverDead of an innocent owner reclaimed %d locks", got)
	}
	if !q.Enqueue(core.Msg{Seq: 1}) {
		t.Fatal("enqueue failed after no-op recovery")
	}
}
