package sched

import (
	"fmt"

	"ulipc/internal/sim"
)

// Policy names accepted by New.
const (
	PolicyDegrading = "degrading" // default degrading-priority UNIX scheduler
	PolicyFixed     = "fixed"     // non-degrading fixed priorities
	PolicyLinux10   = "linux10"   // unmodified Linux 1.0.32
	PolicyLinuxMod  = "linuxmod"  // Linux with the paper's modified sched_yield
)

// New constructs a scheduler policy by name.
func New(name string) (sim.Scheduler, error) {
	switch name {
	case PolicyDegrading, "":
		return NewDegrading(PolicyDegrading), nil
	case PolicyFixed:
		return NewFixed(), nil
	case PolicyLinux10:
		return NewLinux10(), nil
	case PolicyLinuxMod:
		return NewLinuxMod(), nil
	}
	return nil, fmt.Errorf("sched: unknown policy %q", name)
}

// Names returns all policy names.
func Names() []string {
	return []string{PolicyDegrading, PolicyFixed, PolicyLinux10, PolicyLinuxMod}
}
