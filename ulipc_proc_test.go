package ulipc_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ulipc"
)

// The public cross-process surface end to end: a memfd segment, a
// server and a client attached through the exported wrappers. Both
// sides live in this test process, but every message crosses the
// mapped segment and the futex words exactly as two processes would
// (the multi-process version is internal/workload's proc cells).
func TestProcPublicSurface(t *testing.T) {
	seg, f, err := ulipc.CreateMemfdSeg("ulipc-test", ulipc.SegConfig{Clients: 1})
	if errors.Is(err, ulipc.ErrMapUnsupported) {
		t.Skip("no mapped-segment backend on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	defer f.Close()

	if ulipc.FutexBackend != "futex" && ulipc.FutexBackend != "poll" {
		t.Fatalf("unknown futex backend %q", ulipc.FutexBackend)
	}

	opts := ulipc.ProcOptions{Alg: ulipc.BSW}
	srv, err := ulipc.AttachProcServer(seg, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	var served int64
	go func() {
		defer wg.Done()
		served, _ = srv.ServeCtx(ctx, nil)
	}()

	cl, err := ulipc.AttachProcClient(seg, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SendCtx(ctx, ulipc.Msg{Op: ulipc.OpConnect}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r, err := cl.SendCtx(ctx, ulipc.Msg{Op: ulipc.OpEcho, Seq: int32(i), Val: float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if r.Seq != int32(i) || r.Val != float64(i) {
			t.Fatalf("echo %d corrupted: %+v", i, r)
		}
	}
	if _, err := cl.SendCtx(ctx, ulipc.Msg{Op: ulipc.OpDisconnect}); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	wg.Wait()
	srv.Close()
	if served != 100 {
		t.Fatalf("served %d, want 100", served)
	}
}
