package experiment

import (
	"fmt"

	"ulipc/internal/chart"
	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/workload"
)

// RunSwitches reproduces the Section 2.2 instrumentation: the getrusage
// analysis of voluntary context switches (with one client the server
// voluntarily switches once per message; with two clients batching cuts
// switches per message) and the "approximately 2.5 yields per round-trip
// message exchange" measurement that exposed the priority-aging problem.
func RunSwitches(opt Options) (*Report, error) {
	r := newReport("switches", "Context-switch and yield instrumentation (Section 2.2)",
		"100k requests from 1 client => ~100k voluntary switches at the server; with 2 clients fewer switches per message; each SGI process performs ~2.5 yields per round trip")
	msgs := opt.msgs()
	m := machine.SGIIndy()

	t := &chart.Table{
		Title:   "Server voluntary context switches per message (SGI, BSS)",
		Headers: []string{"clients", "messages", "voluntary CS", "CS/msg", "yields/msg (client)", "yields/msg (server)"},
	}
	var csPerMsg []float64
	for _, n := range []int{1, 2, 4, 6} {
		res, err := workload.RunSim(workload.Config{Machine: m, Alg: core.BSS, Clients: n, Msgs: msgs})
		if err != nil {
			return nil, err
		}
		total := float64(res.TotalMsgs)
		cs := float64(res.Server.VoluntaryCS)
		clientYields := res.Clients.YieldsPerMsg()
		serverYields := float64(res.Server.Yields) / float64(res.Server.MsgsReceived)
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", res.TotalMsgs),
			fmt.Sprintf("%d", res.Server.VoluntaryCS),
			f2(cs/total),
			f2(clientYields),
			f2(serverYields),
		)
		csPerMsg = append(csPerMsg, cs/total)
		r.Records[fmt.Sprintf("switches/cs_per_msg/%d", n)] = cs / total
		if n == 1 {
			r.Records["switches/yields_per_msg"] = clientYields
		}
	}
	r.Tables = append(r.Tables, t)
	r.note("With one client every message costs the server one voluntary switch; with more clients the server batches the queue and the per-message switch count drops — the reason SGI throughput RISES with clients.")
	r.note("Instrumented yields per round trip on the SGI: " + f2(r.Records["switches/yields_per_msg"]) +
		" (paper: ~2.5) — the degrading-priority scheduler re-runs the yielding process until its priority has aged below its partner's.")
	_ = csPerMsg
	return r, nil
}
