package workload

import (
	"strings"
	"testing"
	"time"

	"ulipc/internal/core"
)

// TestChaosCellSurvivesCrashes runs one seeded cell with aggressive
// crash and wake-mutation rates: the cell must stay live (no deadlock),
// leak nothing, and actually exercise the injection (at least one fault
// fired with these rates).
func TestChaosCellSurvivesCrashes(t *testing.T) {
	res, err := RunChaosCell(ChaosConfig{
		Alg:       core.BSW,
		Clients:   4,
		Msgs:      100,
		Seed:      1234,
		CrashRate: 0.05,
		DropRate:  0.10,
		DupRate:   0.05,
		DelayRate: 0.05,
		Watchdog:  30 * time.Second,
	})
	if err != nil {
		t.Fatalf("chaos cell: %v (result %+v)", err, res)
	}
	if res.Deadlocked {
		t.Fatalf("cell deadlocked: %+v", res)
	}
	if res.PoolLeaked != 0 {
		t.Fatalf("pool leaked %d refs: %+v", res.PoolLeaked, res)
	}
	if res.Crashes+res.WakeDrops+res.WakeDups+res.WakeDelays == 0 {
		t.Fatalf("no faults injected at these rates; the cell exercised nothing: %+v", res)
	}
	if res.Crashes > 0 && res.PeerDeaths == 0 {
		t.Fatalf("crashes without peer-death detection: %+v", res)
	}
}

// TestChaosCellCleanRun is the control: zero fault rates must complete
// every round trip with no recovery activity — the chaos plumbing
// itself costs the workload nothing.
func TestChaosCellCleanRun(t *testing.T) {
	const clients, msgs = 3, 100
	res, err := RunChaosCell(ChaosConfig{
		Alg:      core.BSLS,
		Clients:  clients,
		Msgs:     msgs,
		Seed:     1,
		Watchdog: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("clean cell: %v (result %+v)", err, res)
	}
	if res.Completed != clients*msgs {
		t.Fatalf("clean cell completed %d/%d round trips: %+v", res.Completed, clients*msgs, res)
	}
	if res.Crashes != 0 || res.PeerDeaths != 0 {
		t.Fatalf("clean cell recorded faults: %+v", res)
	}
}

// TestChaosBenchShortSweep runs a reduced matrix end to end and checks
// the report covers every cell, including the default shard-kill cells
// appended after the classic matrix.
func TestChaosBenchShortSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep in -short mode")
	}
	var progress strings.Builder
	rep, err := RunChaosBench(ChaosOptions{
		Algs:    []core.Algorithm{core.BSW, core.BSLS},
		Clients: []int{2, 4},
		Msgs:    50,
		Seed:    99,
	}, &progress)
	if err != nil {
		t.Fatalf("chaos sweep: %v\n%s", err, progress.String())
	}
	if len(rep.Cells) != 8 {
		t.Fatalf("report has %d cells, want 8 (4 classic + 2 shard-kill + 2 overload-kill)", len(rep.Cells))
	}
	shardKills, overloadKills := 0, 0
	for _, c := range rep.Cells {
		if c.Error != "" {
			t.Fatalf("cell %s failed: %s", c.Label, c.Error)
		}
		if c.Shards > 0 {
			shardKills++
		}
		if strings.Contains(c.Label, "overloadkill") {
			overloadKills++
			if c.Sheds == 0 || c.Overloads == 0 {
				t.Errorf("overload-kill cell %s recorded no overload (sheds %d, rejects %d)",
					c.Label, c.Sheds, c.Overloads)
			}
		}
	}
	if shardKills != 2 {
		t.Fatalf("sweep ran %d shard-kill cells, want 2", shardKills)
	}
	if overloadKills != 2 {
		t.Fatalf("sweep ran %d overload-kill cells, want 2", overloadKills)
	}
}

// TestChaosShardKillCell pins the shard-kill contract: with strict lane
// ownership, killing one of three shards aborts exactly the clients
// homed to it (each seeing ErrPeerDead on a post-kill send), while the
// survivors complete every round trip and the dead shard's request
// lanes end up drained.
func TestChaosShardKillCell(t *testing.T) {
	const clients, shards, msgs, warmup = 6, 3, 90, 8
	res, err := RunChaosShardKill(ChaosConfig{
		Alg:      core.BSW,
		Clients:  clients,
		Msgs:     msgs,
		Seed:     5,
		Watchdog: 30 * time.Second,
	}, shards)
	if err != nil {
		t.Fatalf("shard-kill cell: %v (result %+v)", err, res)
	}
	if res.Deadlocked {
		t.Fatalf("cell deadlocked: %+v", res)
	}
	victims := clients / shards // clients homed to shard 0
	if res.Aborted != victims {
		t.Fatalf("aborted %d clients, want the %d homed to the dead shard: %+v", res.Aborted, victims, res)
	}
	survivors := clients - victims
	want := int64(survivors*msgs + victims*warmup)
	if res.Completed != want {
		t.Fatalf("completed %d round trips, want %d (survivors full scripts + victim warm-ups): %+v",
			res.Completed, want, res)
	}
	if res.PeerDeaths == 0 {
		t.Fatalf("no peer-death detected for the killed shard: %+v", res)
	}
}

// TestChaosOverloadKillCell pins the overload-kill contract: a client
// SIGKILLed mid-overload (sheds and admission rejects in flight,
// payload leases riding the traffic) must cost nothing durable — the
// sweeper reclaims its stranded lease and orphaned replies, the
// server's reply path drops (and claim-frees) what it sends the corpse,
// and after teardown every node pool and the slab arena are whole.
func TestChaosOverloadKillCell(t *testing.T) {
	res, err := RunChaosOverloadKill(ChaosConfig{
		Alg:      core.BSLS,
		Clients:  4,
		Msgs:     2000,
		Seed:     9,
		Watchdog: 60 * time.Second,
		PaySize:  64,
	})
	if err != nil {
		t.Fatalf("overload-kill cell: %v (result %+v)", err, res)
	}
	if res.Sheds == 0 || res.Overloads == 0 {
		t.Fatalf("cell never overloaded: %+v", res)
	}
	if res.PeerDeaths == 0 {
		t.Fatalf("victim's death never recovered: %+v", res)
	}
	if res.OrphanBlocks == 0 {
		t.Fatalf("stranded lease not reclaimed: %+v", res)
	}
	if res.PoolLeaked != 0 || res.BlockLeaked != 0 {
		t.Fatalf("leak past the sweeper: %+v", res)
	}
}
