package queue

import (
	"sync/atomic"

	"ulipc/internal/core"
)

// LockFree is the Michael & Scott non-blocking concurrent queue
// [Michael & Scott, PODC'96]. It serves as the ablation counterpart to
// the two-lock queue the paper uses. Nodes are garbage-collected Go
// allocations rather than arena offsets: GC rules out ABA without
// counted pointers, at the cost of the position-independent layout (this
// variant could not live in a shared mapping as-is — which is one reason
// the paper's system uses the two-lock queue).
type LockFree struct {
	head     atomic.Pointer[lfNode] // dummy
	tail     atomic.Pointer[lfNode]
	length   atomic.Int64
	capacity int
}

type lfNode struct {
	next atomic.Pointer[lfNode]
	msg  core.Msg
}

// NewLockFree builds a lock-free M&S queue holding at most capacity
// messages.
func NewLockFree(capacity int) (*LockFree, error) {
	q := &LockFree{capacity: capacity}
	dummy := &lfNode{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q, nil
}

// Cap implements Queue.
func (q *LockFree) Cap() int { return q.capacity }

// Enqueue implements Queue.
func (q *LockFree) Enqueue(m core.Msg) bool {
	// Flow control: reserve a slot first; undo on the (impossible in
	// this algorithm) failure path.
	if q.length.Add(1) > int64(q.capacity) {
		q.length.Add(-1)
		return false
	}
	node := &lfNode{msg: m}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue // tail moved under us; retry
		}
		if next != nil {
			// Tail is lagging: help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, node) {
			q.tail.CompareAndSwap(tail, node)
			return true
		}
	}
}

// Dequeue implements Queue.
func (q *LockFree) Dequeue() (core.Msg, bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return core.Msg{}, false // empty
		}
		if head == tail {
			// Tail is lagging behind a concurrent enqueue: help it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		m := next.msg
		if q.head.CompareAndSwap(head, next) {
			q.length.Add(-1)
			return m, true
		}
	}
}

// Empty implements Queue.
func (q *LockFree) Empty() bool {
	return q.head.Load().next.Load() == nil
}

// Len returns the approximate number of queued messages.
func (q *LockFree) Len() int { return int(q.length.Load()) }
