package shm

import "sync"

// PoolCache is a private cache of free-pool refs with one primary
// owner. A producer that allocates one node per message hits the shared
// Treiber head with one CAS per message; routing the allocations
// through a cache of batch k turns that into one batched CAS
// (AllocN/FreeN) per k messages. The cache belongs to exactly one
// producer (livebind gives each producer Port its own); a light mutex
// makes Drain safe to call from another goroutine — System.Shutdown
// spills caches whose owners may still be mid-allocation — without
// changing the single-owner usage model. The lock is uncontended in
// steady state (one owner), so it costs an uncontended atomic pair per
// batched allocation, off the default (uncached) fast path entirely.
//
// Flow-control interaction: refs parked in a cache are invisible to
// other producers, so a pool can look exhausted while caches hold spare
// refs — exhaustion remains exact for a single producer (Alloc fails
// only when both the cache and the pool are empty) but becomes
// conservative with several. Owners must Drain() the cache when they
// retire so parked refs return to the pool instead of leaking.
type PoolCache struct {
	pool  *Pool
	batch int

	mu   sync.Mutex
	refs []Ref // LIFO stash; high end is the hot end

	// Refills and Spills count batched transfers from/to the pool,
	// written under mu; read them after the owner has quiesced.
	Refills int64
	Spills  int64
}

// NewCache builds a cache drawing batches of batch refs from the pool.
// A batch below 2 is clamped to 2 (batch 1 would be strictly worse than
// uncached allocation).
func (p *Pool) NewCache(batch int) *PoolCache {
	if batch < 2 {
		batch = 2
	}
	return &PoolCache{pool: p, batch: batch, refs: make([]Ref, 0, 2*batch)}
}

// Batch returns the configured refill/spill batch size.
func (c *PoolCache) Batch() int { return c.batch }

// Len returns the number of refs currently parked in the cache.
func (c *PoolCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.refs)
}

// Alloc pops a cached ref, refilling from the pool in one batched
// operation when the cache is empty. refilled reports that a refill
// happened (metrics hook). It fails only when the cache and the pool
// are both exhausted — a partial refill (pool holds fewer than batch
// refs) still succeeds with what is available.
func (c *PoolCache) Alloc() (r Ref, ok bool, refilled bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.refs) == 0 {
		n := c.pool.AllocN(c.refs[:c.batch])
		if n == 0 {
			return NilRef, false, false
		}
		c.refs = c.refs[:n]
		c.Refills++
		refilled = true
	}
	r = c.refs[len(c.refs)-1]
	c.refs = c.refs[:len(c.refs)-1]
	return r, true, refilled
}

// Free parks a ref in the cache; when the cache reaches twice the batch
// size, the cold half is spilled back to the pool in one batched
// operation so hoarded refs stay visible to the pool's flow control.
func (c *PoolCache) Free(r Ref) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refs = append(c.refs, r)
	if len(c.refs) >= 2*c.batch {
		c.pool.FreeN(c.refs[c.batch:])
		c.refs = c.refs[:c.batch]
		c.Spills++
	}
}

// Drain returns every parked ref to the pool (one batched operation)
// and reports how many were spilled. Owners call it when the producer
// retires — and System.Shutdown calls it on the owner's behalf during
// teardown; afterwards the cache is empty but remains usable.
func (c *PoolCache) Drain() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.refs)
	if n > 0 {
		c.pool.FreeN(c.refs)
		c.refs = c.refs[:0]
		c.Spills++
	}
	return n
}
