//go:build linux

package shm

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
	"unsafe"
)

// memfd_create is not exported by the frozen syscall package; the
// number is ABI-stable per architecture. Architectures without a known
// number fall back to an unlinked tmpfs file, which has the same
// lifetime property (kernel reclaims on last close).
func memfdSyscallNum() (uintptr, bool) {
	switch runtime.GOARCH {
	case "amd64":
		return 319, true
	case "arm64":
		return 279, true
	case "386":
		return 356, true
	case "arm":
		return 385, true
	case "riscv64":
		return 279, true
	case "ppc64", "ppc64le":
		return 360, true
	case "s390x":
		return 350, true
	}
	return 0, false
}

// memfdCreate returns an anonymous memory-backed file.
func memfdCreate(name string) (*os.File, error) {
	if num, ok := memfdSyscallNum(); ok {
		nameb := append([]byte(name), 0)
		fd, _, errno := syscall.Syscall(num, uintptr(unsafe.Pointer(&nameb[0])), 0, 0)
		if errno == 0 {
			return os.NewFile(fd, "memfd:"+name), nil
		}
		if errno != syscall.ENOSYS {
			return nil, fmt.Errorf("shm: memfd_create: %w", errno)
		}
	}
	// Fallback: an unlinked file on tmpfs (or the default temp dir).
	dir := "/dev/shm"
	if _, err := os.Stat(dir); err != nil {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "ulipc-memfd-*")
	if err != nil {
		return nil, err
	}
	if err := os.Remove(f.Name()); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}
