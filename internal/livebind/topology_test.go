package livebind

import (
	"strings"
	"testing"

	"ulipc/internal/core"
	"ulipc/internal/queue"
)

// Topology enforcement for the SPSC reply fast path: KindSPSC must be
// impossible to obtain anywhere the single-producer/single-consumer
// property is not provable, and System must refuse any handle
// acquisition that would attach a second producer to an SPSC ring.

func TestNewChannelRejectsSPSC(t *testing.T) {
	if _, err := NewChannel(queue.KindSPSC, 8); err == nil {
		t.Fatal("NewChannel(KindSPSC) must fail: a bare channel's topology is unprovable")
	}
}

func TestNewSystemRejectsSPSCQueueKind(t *testing.T) {
	_, err := NewSystem(Options{Clients: 2, QueueKind: queue.KindSPSC})
	if err == nil {
		t.Fatal("NewSystem must reject QueueKind=KindSPSC: the receive queue is multi-producer")
	}
}

func TestDefaultReplyKindIsSPSC(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if k := sys.ReplyChannel(i).Kind(); k != queue.KindSPSC {
			t.Fatalf("reply channel %d kind = %v, want SPSC default", i, k)
		}
	}
	if k := sys.ReceiveChannel().Kind(); k == queue.KindSPSC {
		t.Fatal("receive channel must never be SPSC")
	}
	// An explicit MPMC reply kind restores the old behaviour.
	sys2, err := NewSystem(Options{Clients: 1}, WithReplyKind(queue.KindRing))
	if err != nil {
		t.Fatal(err)
	}
	if k := sys2.ReplyChannel(0).Kind(); k != queue.KindRing {
		t.Fatalf("explicit ReplyKind ignored: got %v", k)
	}
}

func TestServerDoubleTakePanicsUnderSPSC(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Server()
	defer func() {
		if recover() == nil {
			t.Fatal("second Server() must panic with SPSC reply channels")
		}
	}()
	sys.Server()
}

func TestServerDoubleTakeAllowedWithMPMCReplies(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 1}, WithReplyKind(queue.KindRing))
	if err != nil {
		t.Fatal(err)
	}
	sys.Server()
	sys.Server() // no panic: ring replies tolerate several producers
}

func TestDuplexPairSPSCConflicts(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 2, Duplex: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.DuplexPair(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.DuplexPair(0); err == nil {
		t.Fatal("second DuplexPair(0) must fail: the reply ring already has a producer")
	}
	if _, _, err := sys.DuplexPair(1); err != nil {
		t.Fatalf("DuplexPair(1) is a distinct ring and must succeed: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Server() after DuplexPair must panic with SPSC replies")
		}
	}()
	sys.Server()
}

func TestDuplexPairAfterServerErrors(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 1, Duplex: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.Server()
	if _, _, err := sys.DuplexPair(0); err == nil {
		t.Fatal("DuplexPair after Server must fail: Server produces into every reply ring")
	}
}

func TestWorkerPoolRebuildsAutoSPSCReplies(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 2, QueueKind: queue.KindRing})
	if err != nil {
		t.Fatal(err)
	}
	workers, err := sys.WorkerPool(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) != 2 {
		t.Fatalf("got %d workers, want 2", len(workers))
	}
	for i := 0; i < 2; i++ {
		if k := sys.ReplyChannel(i).Kind(); k != queue.KindRing {
			t.Fatalf("reply channel %d kind = %v after WorkerPool, want the system's QueueKind (ring)", i, k)
		}
	}
	if _, err := sys.PoolClient(0); err != nil {
		t.Fatalf("PoolClient after WorkerPool: %v", err)
	}
}

func TestWorkerPoolExplicitSPSCErrors(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 1}, WithReplyKind(queue.KindSPSC))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WorkerPool(2); err == nil {
		t.Fatal("WorkerPool must refuse explicitly-requested SPSC replies")
	}
}

func TestWorkerPoolAfterHandleErrors(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Client(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WorkerPool(2); err == nil {
		t.Fatal("WorkerPool after a handle was issued must fail: it rebuilds the reply queues")
	}
}

func TestPoolClientBeforeWorkerPoolErrors(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.PoolClient(0)
	if err == nil || !strings.Contains(err.Error(), "WorkerPool") {
		t.Fatalf("PoolClient before WorkerPool: got %v, want an error pointing at WorkerPool", err)
	}
}

// TestBatchedPortDrainRestoresPool drives a batched producer port at
// the port level (no protocol loops) and checks the full alloc
// lifecycle: a refill takes a batch from the receive-queue pool,
// consumption returns nodes one by one, and DrainPort returns the
// parked remainder — FreeCount, the protocols' queue-full signal, ends
// exactly where it started.
func TestBatchedPortDrainRestoresPool(t *testing.T) {
	const batch = 8
	sys, err := NewSystem(Options{Clients: 1, QueueKind: queue.KindTwoLock, AllocBatch: batch})
	if err != nil {
		t.Fatal(err)
	}
	tl, ok := sys.ReceiveChannel().Queue().(*queue.TwoLock)
	if !ok {
		t.Fatal("receive queue is not two-lock")
	}
	full := tl.Pool().FreeCount()

	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !cl.Srv.TryEnqueue(core.Msg{Seq: int32(i)}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if got := tl.Pool().FreeCount(); got != full-batch {
		t.Fatalf("FreeCount after 5 batched enqueues = %d, want %d (one refill of %d)", got, full-batch, batch)
	}
	rcv := NewPort(sys.ReceiveChannel())
	for i := 0; i < 5; i++ {
		m, ok := rcv.TryDequeue()
		if !ok || m.Seq != int32(i) {
			t.Fatalf("dequeue %d: %+v, %v", i, m, ok)
		}
	}
	DrainPort(cl.Srv)
	if got := tl.Pool().FreeCount(); got != full {
		t.Fatalf("FreeCount after drain = %d, want %d (cached refs leaked)", got, full)
	}
	if s, ok := sys.Metrics().Find("client0"); !ok || s.PoolRefills < 1 {
		t.Fatalf("client0 PoolRefills = %+v, want >= 1", s.PoolRefills)
	}
}

// TestConnCloseDrainsCache is the dynamic-connection flavour: Connect /
// Conn.Close must not leak cached refs even though the slot (and its
// queues) outlive the connection. A keeper connection pins the server's
// Serve loop (it returns when the connected count hits zero) while
// short-lived connections cycle on the other slot.
func TestConnCloseDrainsCache(t *testing.T) {
	const batch = 4
	sys, err := NewSystem(Options{
		Alg:        core.BSW,
		Clients:    2,
		QueueKind:  queue.KindTwoLock,
		AllocBatch: batch,
		SleepScale: 1, // nanosecond-scale queue-full naps
	})
	if err != nil {
		t.Fatal(err)
	}
	tl := sys.ReceiveChannel().Queue().(*queue.TwoLock)
	full := tl.Pool().FreeCount()

	srv := sys.Server()
	done := make(chan struct{})
	go func() {
		srv.Serve(nil)
		close(done)
	}()

	keeper, err := sys.Connect()
	if err != nil {
		t.Fatal(err)
	}
	// The keeper's port cache holds refs of its own; everything after
	// must restore the pool to this baseline.
	baseline := tl.Pool().FreeCount()

	for round := 0; round < 3; round++ {
		conn, err := sys.Connect()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			ans, err := conn.Send(core.Msg{Op: core.OpEcho, Seq: int32(i)})
			if err != nil || ans.Seq != int32(i) {
				t.Fatalf("round %d send %d: %+v, %v", round, i, ans, err)
			}
		}
		if err := conn.Close(); err != nil {
			t.Fatal(err)
		}
		if got := tl.Pool().FreeCount(); got != baseline {
			t.Fatalf("round %d: FreeCount after Close = %d, want %d", round, got, baseline)
		}
	}
	if err := keeper.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	if got := tl.Pool().FreeCount(); got != full {
		t.Fatalf("FreeCount after all connections closed = %d, want %d", got, full)
	}
}
