package ulipc_test

import (
	"fmt"
	"sync"
	"testing"

	"ulipc"
)

// TestPublicAPIEcho exercises the facade the way the README shows.
func TestPublicAPIEcho(t *testing.T) {
	sys, err := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSLS, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := sys.Server()
	done := make(chan int64, 1)
	go func() { done <- srv.Serve(nil) }()

	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	cl.Send(ulipc.Msg{Op: ulipc.OpConnect})
	for i := 0; i < 100; i++ {
		ans := cl.Send(ulipc.Msg{Op: ulipc.OpEcho, Seq: int32(i), Val: float64(i)})
		if ans.Val != float64(i) {
			t.Fatalf("echo %d: %+v", i, ans)
		}
	}
	cl.Send(ulipc.Msg{Op: ulipc.OpDisconnect})
	if served := <-done; served != 100 {
		t.Fatalf("served = %d", served)
	}
}

// TestPublicAPIAllProtocolsAndQueues sweeps the protocol x queue matrix
// through the facade.
func TestPublicAPIAllProtocolsAndQueues(t *testing.T) {
	for _, alg := range ulipc.Algorithms() {
		for _, kind := range []ulipc.QueueKind{ulipc.QueueTwoLock, ulipc.QueueLockFree, ulipc.QueueRing} {
			sys, err := ulipc.NewSystem(ulipc.Options{Alg: alg, Clients: 2, QueueKind: kind})
			if err != nil {
				t.Fatal(err)
			}
			srv := sys.Server()
			go srv.Serve(nil)
			var wg sync.WaitGroup
			var barrier sync.WaitGroup
			barrier.Add(2)
			for i := 0; i < 2; i++ {
				cl, err := sys.Client(i)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(i int, cl *ulipc.Client) {
					defer wg.Done()
					cl.Send(ulipc.Msg{Op: ulipc.OpConnect})
					barrier.Done()
					barrier.Wait()
					for j := 0; j < 50; j++ {
						ans := cl.Send(ulipc.Msg{Op: ulipc.OpEcho, Seq: int32(j)})
						if ans.Seq != int32(j) {
							t.Errorf("%s/%s: bad reply %+v", alg, kind, ans)
							return
						}
					}
					cl.Send(ulipc.Msg{Op: ulipc.OpDisconnect})
				}(i, cl)
			}
			wg.Wait()
		}
	}
}

// TestPublicAPIDuplexAndBlocks covers the extension surface.
func TestPublicAPIDuplexAndBlocks(t *testing.T) {
	sys, err := ulipc.NewSystem(ulipc.Options{
		Alg: ulipc.BSW, Clients: 1, Duplex: true, BlockSlots: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, h, err := sys.DuplexPair(0)
	if err != nil {
		t.Fatal(err)
	}
	pool := sys.Blocks()
	go h.ServeConn(func(m *ulipc.Msg) {
		ref, n := m.Block()
		buf, err := pool.Get(ref)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n/2; i++ { // reverse in place
			buf[i], buf[n-1-i] = buf[n-1-i], buf[i]
		}
	})

	payload := "abcdef"
	ref, buf, ok := pool.Alloc(len(payload))
	if !ok {
		t.Fatal("alloc failed")
	}
	copy(buf, payload)
	req := ulipc.Msg{Op: ulipc.OpWork}
	req.SetBlock(ref, len(payload))
	ans := cl.Send(req)
	gotRef, n := ans.Block()
	got, err := pool.Get(gotRef)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:n]) != "fedcba" {
		t.Fatalf("got %q", got[:n])
	}
	cl.Send(ulipc.Msg{Op: ulipc.OpDisconnect})
}

func TestAlgorithmByNameFacade(t *testing.T) {
	alg, err := ulipc.AlgorithmByName("BSLS")
	if err != nil || alg != ulipc.BSLS {
		t.Fatalf("got %v, %v", alg, err)
	}
}

// ExampleNewSystem is the documented quick start.
func ExampleNewSystem() {
	sys, _ := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSLS, Clients: 1})
	srv := sys.Server()
	go srv.Serve(nil)

	cl, _ := sys.Client(0)
	cl.Send(ulipc.Msg{Op: ulipc.OpConnect})
	reply := cl.Send(ulipc.Msg{Op: ulipc.OpEcho, Val: 42})
	cl.Send(ulipc.Msg{Op: ulipc.OpDisconnect})
	fmt.Println(reply.Val)
	// Output: 42
}

// ExampleClient_SendAsync shows the asynchronous batching mode.
func ExampleClient_SendAsync() {
	sys, _ := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSW, Clients: 1, QueueCap: 16})
	srv := sys.Server()
	go srv.Serve(nil)

	cl, _ := sys.Client(0)
	cl.Send(ulipc.Msg{Op: ulipc.OpConnect})
	for i := 0; i < 4; i++ {
		cl.SendAsync(ulipc.Msg{Op: ulipc.OpEcho, Seq: int32(i)})
	}
	sum := int32(0)
	for i := 0; i < 4; i++ {
		sum += cl.RecvReply().Seq
	}
	cl.Send(ulipc.Msg{Op: ulipc.OpDisconnect})
	fmt.Println(sum)
	// Output: 6
}

// TestPublicAPIConnLifecycle covers the dynamic connection surface.
func TestPublicAPIConnLifecycle(t *testing.T) {
	sys, err := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSLS, Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := sys.Server()
	done := make(chan int64, 1)
	go func() { done <- srv.Serve(nil) }()

	conn, err := sys.Connect()
	if err != nil {
		t.Fatal(err)
	}
	ans, err := conn.Send(ulipc.Msg{Op: ulipc.OpEcho, Val: 7})
	if err != nil || ans.Val != 7 {
		t.Fatalf("send: %+v %v", ans, err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestPublicAPIWorkerPool covers the pool surface end to end.
func TestPublicAPIWorkerPool(t *testing.T) {
	sys, err := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSW, Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := sys.WorkerPool(2)
	if err != nil {
		t.Fatal(err)
	}
	var swg sync.WaitGroup
	for _, w := range pool {
		swg.Add(1)
		go func(w *ulipc.PoolWorker) {
			defer swg.Done()
			w.Serve(nil)
		}(w)
	}
	var barrier, wg sync.WaitGroup
	barrier.Add(2)
	for i := 0; i < 2; i++ {
		cl, err := sys.PoolClient(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cl *ulipc.PoolClient) {
			defer wg.Done()
			cl.Send(ulipc.Msg{Op: ulipc.OpConnect})
			barrier.Done()
			barrier.Wait()
			for j := 0; j < 100; j++ {
				if ans := cl.Send(ulipc.Msg{Op: ulipc.OpEcho, Seq: int32(j)}); ans.Seq != int32(j) {
					t.Errorf("bad reply %+v", ans)
					return
				}
			}
			cl.Send(ulipc.Msg{Op: ulipc.OpDisconnect})
		}(cl)
	}
	wg.Wait()
	swg.Wait()
}
