package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/queue"
)

// The live wall-clock benchmark matrix: {queue configuration} x
// {protocol} x {client count} on the host runtime, emitted as
// BENCH_live.json so successive PRs accumulate a perf trajectory.
// Driven by `ipcbench -live` and `make bench-live`; bench_test.go's
// BenchmarkLive* suite measures the same cells under testing.B.

// LiveBenchKind names one queue configuration of the matrix: the kind
// of the shared receive queue and the kind of the per-client reply
// queues (KindSPSC only for the latter — the receive queue is
// multi-producer by construction).
type LiveBenchKind struct {
	Name  string
	Recv  queue.Kind
	Reply queue.Kind
}

// DefaultLiveBenchKinds returns the benchmark's queue configurations:
// the three MPMC kinds used symmetrically, the ring/SPSC pair that
// isolates the reply-path win, and the library default (two-lock
// receive + SPSC replies).
func DefaultLiveBenchKinds() []LiveBenchKind {
	return []LiveBenchKind{
		{"two-lock", queue.KindTwoLock, queue.KindTwoLock},
		{"lock-free", queue.KindLockFree, queue.KindLockFree},
		{"ring", queue.KindRing, queue.KindRing},
		{"ring+spsc", queue.KindRing, queue.KindSPSC},
		{"default", queue.KindTwoLock, queue.KindSPSC},
	}
}

// LiveBenchOptions configures a live benchmark sweep. Zero values pick
// the defaults noted per field.
type LiveBenchOptions struct {
	Kinds      []LiveBenchKind  // default DefaultLiveBenchKinds()
	Algs       []core.Algorithm // default all four protocols
	Clients    []int            // default {1, 4, 16}
	Msgs       int              // per client; default 1000
	MaxSpin    int              // default core.DefaultMaxSpin
	AllocBatch int              // producer alloc batching (two-lock only)
	SpinIters  int              // >0: multiprocessor busy_wait flavour

	// Watchdog, when positive, runs every cell on the context-threaded
	// paths under a deadline: a deadlocked cell trips the deadline, is
	// recorded with its Error, and the sweep continues with the next
	// cell instead of hanging the whole benchmark.
	Watchdog time.Duration
}

func (o *LiveBenchOptions) defaults() {
	if len(o.Kinds) == 0 {
		o.Kinds = DefaultLiveBenchKinds()
	}
	if len(o.Algs) == 0 {
		o.Algs = core.Algorithms()
	}
	if len(o.Clients) == 0 {
		o.Clients = []int{1, 4, 16}
	}
	if o.Msgs <= 0 {
		o.Msgs = 1000
	}
	if o.MaxSpin <= 0 {
		o.MaxSpin = core.DefaultMaxSpin
	}
}

// LiveBenchEntry is one cell of the matrix.
type LiveBenchEntry struct {
	Queue       string  `json:"queue"`      // configuration name
	RecvKind    string  `json:"recv_kind"`  // receive-queue implementation
	ReplyKind   string  `json:"reply_kind"` // reply-queue implementation
	Alg         string  `json:"alg"`
	Clients     int     `json:"clients"`
	MsgsPerCli  int     `json:"msgs_per_client"`
	NsPerRTT    float64 `json:"ns_per_rtt"`   // wall-clock RTT per request
	MsgsPerSec  float64 `json:"msgs_per_sec"` // server throughput
	Yields      int64   `json:"yields"`
	SemP        int64   `json:"sem_p"`
	Blocks      int64   `json:"blocks"`
	PoolRefills int64   `json:"pool_refills"`
	PoolSpills  int64   `json:"pool_spills"`

	// Error records a failed cell (watchdog deadline, validation
	// mismatch); the numeric fields then hold the partial results
	// gathered before the failure.
	Error string `json:"error,omitempty"`
}

// LiveBenchReport is the BENCH_live.json document.
type LiveBenchReport struct {
	GeneratedAt string           `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	NumCPU      int              `json:"num_cpu"`
	MsgsPerCli  int              `json:"msgs_per_client"`
	AllocBatch  int              `json:"alloc_batch"`
	Entries     []LiveBenchEntry `json:"entries"`
}

// RunLiveBench executes the full matrix and returns the report.
// progress, when non-nil, receives one line per completed cell.
//
// Without a Watchdog the first failing cell aborts the sweep (legacy
// behaviour: a deadlock would hang anyway). With a Watchdog, failing
// cells are recorded in the report with their Error and partial
// numbers, the sweep continues, and the combined error returned at the
// end names every failed cell — callers get the full report either way.
func RunLiveBench(opts LiveBenchOptions, progress io.Writer) (*LiveBenchReport, error) {
	opts.defaults()
	rep := &LiveBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		MsgsPerCli:  opts.Msgs,
		AllocBatch:  opts.AllocBatch,
	}
	var failures []error
	for _, k := range opts.Kinds {
		for _, alg := range opts.Algs {
			for _, n := range opts.Clients {
				reply := k.Reply
				res, err := RunLive(LiveConfig{
					Alg:        alg,
					Clients:    n,
					Msgs:       opts.Msgs,
					MaxSpin:    opts.MaxSpin,
					QueueKind:  k.Recv,
					ReplyKind:  &reply,
					AllocBatch: opts.AllocBatch,
					SpinIters:  opts.SpinIters,
					Watchdog:   opts.Watchdog,
				})
				if err != nil && opts.Watchdog <= 0 {
					return nil, fmt.Errorf("live bench %s/%s/%dc: %w", k.Name, alg, n, err)
				}
				e := LiveBenchEntry{
					Queue:       k.Name,
					RecvKind:    k.Recv.String(),
					ReplyKind:   k.Reply.String(),
					Alg:         alg.String(),
					Clients:     n,
					MsgsPerCli:  opts.Msgs,
					NsPerRTT:    res.RTTMicros * 1e3,
					MsgsPerSec:  res.Throughput * 1e3,
					Yields:      res.All.Yields,
					SemP:        res.All.SemP,
					Blocks:      res.All.Blocks,
					PoolRefills: res.All.PoolRefills,
					PoolSpills:  res.All.PoolSpills,
				}
				if err != nil {
					e.Error = err.Error()
					failures = append(failures, fmt.Errorf("live bench %s/%s/%dc: %w", k.Name, alg, n, err))
				}
				rep.Entries = append(rep.Entries, e)
				if progress != nil {
					if err != nil {
						fmt.Fprintf(progress, "%-10s %-5s %2dc  FAILED: %v\n", k.Name, e.Alg, n, err)
					} else {
						fmt.Fprintf(progress, "%-10s %-5s %2dc  %12.0f ns/rtt  %11.0f msgs/s  refills=%d\n",
							k.Name, e.Alg, n, e.NsPerRTT, e.MsgsPerSec, e.PoolRefills)
					}
				}
			}
		}
	}
	return rep, errors.Join(failures...)
}

// WriteJSON emits the report as indented JSON.
func (r *LiveBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderText prints the report as a fixed-width table.
func (r *LiveBenchReport) RenderText(w io.Writer) {
	fmt.Fprintf(w, "Live wall-clock benchmark (GOMAXPROCS=%d, %d msgs/client, alloc batch %d)\n",
		r.GOMAXPROCS, r.MsgsPerCli, r.AllocBatch)
	fmt.Fprintf(w, "%-10s %-10s %-6s %-5s %8s %14s %14s %9s %8s\n",
		"queue", "recv", "reply", "alg", "clients", "ns/rtt", "msgs/s", "refills", "spills")
	for _, e := range r.Entries {
		fmt.Fprintf(w, "%-10s %-10s %-6s %-5s %8d %14.0f %14.0f %9d %8d",
			e.Queue, e.RecvKind, e.ReplyKind, e.Alg, e.Clients, e.NsPerRTT, e.MsgsPerSec, e.PoolRefills, e.PoolSpills)
		if e.Error != "" {
			fmt.Fprintf(w, "  FAILED (partial): %s", e.Error)
		}
		fmt.Fprintln(w)
	}
}
