package experiment

import (
	"strings"
	"testing"
)

// The shape tests assert the paper's qualitative claims — who wins, by
// roughly what factor, where crossovers fall — from the experiments'
// record maps. They are the reproduction's acceptance suite.

var shapeOpts = Options{Quick: true, Msgs: 600}

func runExp(t *testing.T, id string) *Report {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	rep, err := e.Run(shapeOpts)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return rep
}

func rec(t *testing.T, r *Report, key string) float64 {
	t.Helper()
	v, ok := r.Records[key]
	if !ok {
		t.Fatalf("%s: missing record %q; have %d records", r.ID, key, len(r.Records))
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "table1")
	// SGI rows (index: 0 enq/deq, 1 msg pair, 2/3/4 yields) vs Table 1.
	within := func(key string, want, tol float64) {
		got := rec(t, r, key)
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %.2f, want %.1f +/- %.1f", key, got, want, tol)
		}
	}
	within("t1/sgi/0", 3, 0.3)  // enqueue/dequeue pair
	within("t1/sgi/1", 37, 1.0) // msgsnd/msgrcv pair
	within("t1/sgi/2", 16, 0.5) // 1-process yields
	within("t1/sgi/3", 18, 2.0) // 2-process yields
	within("t1/sgi/4", 45, 5.0) // 4-process yields
}

func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "fig2")

	// SGI: BSS throughput RISES with clients (the batching effect) and
	// beats SYSV by at least 1.4x at one client (paper: >1.5).
	sgi1 := rec(t, r, "fig2/sgi/bss/1")
	sgi6 := rec(t, r, "fig2/sgi/bss/6")
	if sgi6 <= sgi1 {
		t.Errorf("SGI BSS must rise with clients: %.2f -> %.2f", sgi1, sgi6)
	}
	if ratio := rec(t, r, "fig2/sgi/ratio1"); ratio < 1.4 {
		t.Errorf("SGI BSS/SYSV at 1 client = %.2f, want >= 1.4", ratio)
	}
	// SGI 1-client throughput anchors near the paper's ~8.4 msg/ms.
	if sgi1 < 7 || sgi1 > 10 {
		t.Errorf("SGI BSS 1-client = %.2f msg/ms, want ~8.4", sgi1)
	}

	// IBM: BSS throughput FALLS with clients; ~32 msg/ms at one client
	// rolling off toward ~19; BSS/SYSV ~1.8.
	ibm1 := rec(t, r, "fig2/ibm/bss/1")
	ibm6 := rec(t, r, "fig2/ibm/bss/6")
	if ibm6 >= ibm1 {
		t.Errorf("IBM BSS must fall with clients: %.2f -> %.2f", ibm1, ibm6)
	}
	if ibm1 < 25 || ibm1 > 45 {
		t.Errorf("IBM BSS 1-client = %.2f msg/ms, want ~32", ibm1)
	}
	if ratio := rec(t, r, "fig2/ibm/ratio1"); ratio < 1.4 {
		t.Errorf("IBM BSS/SYSV at 1 client = %.2f, want >= 1.4", ratio)
	}
	// The rolloff lands in the paper's ballpark (19): within a band.
	if ibm6 < 12 || ibm6 > 25 {
		t.Errorf("IBM BSS 6-client = %.2f msg/ms, want ~19", ibm6)
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "fig3")
	// Fixed priorities beat the default scheduler on both machines at
	// one client (paper: +50% SGI, +30% IBM; our idealised fixed mode
	// gains more on the SGI — see the experiment note).
	for _, m := range []string{"sgi", "ibm"} {
		fixed := rec(t, r, "fig3/"+m+"/fixed/1")
		def := rec(t, r, "fig3/"+m+"/default/1")
		if fixed < def*1.0 {
			t.Errorf("%s: fixed (%.2f) must not lose to default (%.2f)", m, fixed, def)
		}
	}
	if fixed, def := rec(t, r, "fig3/sgi/fixed/1"), rec(t, r, "fig3/sgi/default/1"); fixed < def*1.4 {
		t.Errorf("SGI fixed = %.2f vs default %.2f; want >= 1.4x", fixed, def)
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "fig6")
	// BSW "more or less matches" SYSV on both machines.
	for _, m := range []string{"sgi", "ibm"} {
		ratio := rec(t, r, "fig6/"+m+"/bsw_vs_sysv1")
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("%s: BSW/SYSV at 1 client = %.2f, want ~1", m, ratio)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "fig8")
	// The busy_wait hints help at 1 client...
	if bswy, bsw := rec(t, r, "fig8/sgi/bswy/1"), rec(t, r, "fig8/sgi/bsw/1"); bswy <= bsw {
		t.Errorf("SGI: BSWY (%.2f) must beat BSW (%.2f) at 1 client", bswy, bsw)
	}
	// ...but degrade as concurrency grows (paper: "performance degrades
	// as concurrency is increased further").
	if one, six := rec(t, r, "fig8/sgi/bswy/1"), rec(t, r, "fig8/sgi/bswy/6"); six >= one {
		t.Errorf("SGI: BSWY must degrade with clients: %.2f -> %.2f", one, six)
	}
	// With fixed priorities BSWY matches busy-waiting BSS.
	bswyF := rec(t, r, "fig8/sgi/bswy_fixed/1")
	bssF := rec(t, r, "fig8/sgi/bss_fixed/1")
	if bswyF < bssF*0.9 || bswyF > bssF*1.1 {
		t.Errorf("SGI fixed: BSWY %.2f vs BSS %.2f, want within 10%%", bswyF, bssF)
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "fig10")
	// Performance generally improves as MAX_SPIN increases: spin=20 is
	// at least as good as spin=1 everywhere on both machines.
	for _, m := range []string{"sgi", "ibm"} {
		for _, n := range []int{1, 2, 4, 6} {
			lo := r.Records[key2("fig10/%s/spin1/%d", m, n)]
			hi := r.Records[key2("fig10/%s/spin20/%d", m, n)]
			if lo > hi*1.05 {
				t.Errorf("%s %d clients: spin1 (%.2f) beats spin20 (%.2f)", m, n, lo, hi)
			}
		}
		// At MAX_SPIN=20 BSLS is within 10% of busy-waiting BSS.
		bsls := r.Records[key2("fig10/%s/spin20/%d", m, 1)]
		bss := r.Records[key2("fig10/%s/bss/%d", m, 1)]
		if bsls < bss*0.9 {
			t.Errorf("%s: BSLS-20 (%.2f) must approach BSS (%.2f)", m, bsls, bss)
		}
	}
	// Spin-loop statistics: at small MAX_SPIN clients block per message;
	// at MAX_SPIN=20 blocking is (near-)zero — the paper's 3% is OS
	// noise our deterministic simulator does not have.
	if fall := rec(t, r, "fig10/stats/fallthrough/1/1"); fall < 50 {
		t.Errorf("MAX_SPIN=1 fall-through = %.1f%%, want high", fall)
	}
	if fall := rec(t, r, "fig10/stats/fallthrough/1/20"); fall > 5 {
		t.Errorf("MAX_SPIN=20 fall-through = %.1f%%, want ~0 (paper: 3%%)", fall)
	}
}

func key2(format, m string, n int) string {
	return strings.Replace(strings.Replace(format, "%s", m, 1), "%d", itoa(n), 1)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "fig11")
	// BSS rises then saturates: the last two points are within 10%.
	b5 := rec(t, r, "fig11/bss/5")
	b7 := rec(t, r, "fig11/bss/7")
	if b7 < b5*0.85 {
		t.Errorf("BSS must stay stable after saturation: %.2f -> %.2f", b5, b7)
	}
	if b5 < rec(t, r, "fig11/bss/1")*2 {
		t.Errorf("BSS must scale up before saturation")
	}
	// BSLS with the smallest MAX_SPIN collapses: well below BSS at 7
	// clients.
	s1 := rec(t, r, "fig11/spin1/7")
	if s1 > b7*0.5 {
		t.Errorf("BSLS-1 must collapse at 7 clients: %.2f vs BSS %.2f", s1, b7)
	}
	// The collapse point moves right with MAX_SPIN: the largest spin
	// value has not collapsed by 7 clients.
	s4 := rec(t, r, "fig11/spin4/7")
	if s4 < b7*0.8 {
		t.Errorf("BSLS-4 must still track BSS at 7 clients: %.2f vs %.2f", s4, b7)
	}
	// SYSV is the worst performer and does not scale.
	v1 := rec(t, r, "fig11/sysv/1")
	v7 := rec(t, r, "fig11/sysv/7")
	if v7 > v1*1.2 {
		t.Errorf("SYSV must not scale: %.2f -> %.2f", v1, v7)
	}
	if v7 > b7 {
		t.Errorf("SYSV (%.2f) must trail BSS (%.2f)", v7, b7)
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "fig12")
	// The unmodified kernel's BSS round trip is on the tens-of-ms scale.
	if rtt := rec(t, r, "fig12/linux10/rtt_ms"); rtt < 10 {
		t.Errorf("linux10 BSS rtt = %.1f ms, want tens of ms", rtt)
	}
	// The modified sched_yield restores the ~120us round trip.
	if rtt := rec(t, r, "fig12/bss/rtt_us"); rtt < 90 || rtt > 160 {
		t.Errorf("linuxmod BSS rtt = %.1f us, want ~120", rtt)
	}
	// BSWY — with no client-side spinning — performs as well as BSS
	// across the curve (within 10%).
	for _, n := range []int{1, 2, 4, 6} {
		bss := r.Records["fig12/bss/"+itoa(n)]
		bswy := r.Records["fig12/bswy/"+itoa(n)]
		if bswy < bss*0.9 {
			t.Errorf("%d clients: BSWY (%.2f) must match BSS (%.2f)", n, bswy, bss)
		}
	}
	// handoff matches BSWY at one client.
	h1 := rec(t, r, "fig12/handoff/1")
	w1 := rec(t, r, "fig12/bswy/1")
	if h1 < w1*0.9 || h1 > w1*1.1 {
		t.Errorf("handoff (%.2f) must match BSWY (%.2f) at 1 client", h1, w1)
	}
}

func TestSwitchesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "switches")
	// One client: one voluntary switch per message at the server.
	if cs := rec(t, r, "switches/cs_per_msg/1"); cs < 0.9 || cs > 1.1 {
		t.Errorf("1 client: %.2f voluntary CS/msg, want ~1", cs)
	}
	// More clients: strictly fewer switches per message (batching).
	prev := rec(t, r, "switches/cs_per_msg/1")
	for _, n := range []int{2, 4, 6} {
		cur := rec(t, r, "switches/cs_per_msg/"+itoa(n))
		if cur >= prev {
			t.Errorf("CS/msg must fall with clients: %d clients %.3f >= %.3f", n, cur, prev)
		}
		prev = cur
	}
	// ~2.5 yields per round trip on the SGI (we accept 2-4).
	if y := rec(t, r, "switches/yields_per_msg"); y < 2 || y > 4 {
		t.Errorf("yields/msg = %.2f, want ~2.5", y)
	}
}

func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "ablation")
	// At the collapse point (5+ clients) the throttle must recover
	// throughput relative to no throttle.
	for _, n := range []int{5, 7} {
		no := rec(t, r, "ablation/throttle0/"+itoa(n))
		th := rec(t, r, "ablation/throttle2/"+itoa(n))
		if th < no {
			t.Errorf("%d clients: throttle=2 (%.2f) must not lose to none (%.2f)", n, th, no)
		}
	}
	if no, th := rec(t, r, "ablation/throttle0/5"), rec(t, r, "ablation/throttle2/5"); th < no*1.2 {
		t.Errorf("5 clients: throttle=2 (%.2f) should recover >20%% over none (%.2f)", th, no)
	}
}

func TestAsyncShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := runExp(t, "async")
	// Per-message cost falls monotonically with batch depth, and a deep
	// batch amortises at least 3x over synchronous sends.
	prev := rec(t, r, "async/us_per_msg/1")
	for _, b := range []int{2, 4, 8, 16} {
		cur := rec(t, r, "async/us_per_msg/"+itoa(b))
		if cur >= prev {
			t.Errorf("batch %d: %.2f us/msg >= previous %.2f", b, cur, prev)
		}
		prev = cur
	}
	if deep, sync := rec(t, r, "async/us_per_msg/16"), rec(t, r, "async/us_per_msg/1"); sync < deep*3 {
		t.Errorf("batching gain = %.1fx, want >= 3x", sync/deep)
	}
}

func TestQueuesExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	e, _ := ByID("queues")
	rep, err := e.Run(Options{Quick: true, Msgs: 150})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"two-lock", "lock-free", "ring"} {
		if v, ok := rep.Records["queues/"+kind+"/1"]; !ok || v <= 0 {
			t.Errorf("missing/zero live throughput for %s", kind)
		}
	}
}

func TestRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if _, ok := ByID(e.ID); !ok {
			t.Errorf("ByID(%s) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
	// Every figure and table of the paper's evaluation is covered.
	for _, id := range []string{"table1", "fig2", "fig3", "fig6", "fig8", "fig10", "fig11", "fig12"} {
		if !seen[id] {
			t.Errorf("paper artefact %s missing from registry", id)
		}
	}
}

func TestReportRender(t *testing.T) {
	r := newReport("id", "title", "claim")
	r.Records["a/b"] = 1.5
	r.note("hello %d", 7)
	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()
	for _, want := range []string{"id", "title", "claim", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	sb.Reset()
	r.RenderRecords(&sb)
	if !strings.Contains(sb.String(), "a/b = 1.500") {
		t.Errorf("records render: %q", sb.String())
	}
}

func TestReportRenderMarkdown(t *testing.T) {
	r := newReport("id", "title", "claim")
	tbl := throughputTable("tbl", []int{1, 2}, map[string][]float64{"A": {1, 2}}, []string{"A"})
	r.Tables = append(r.Tables, tbl)
	r.note("a note")
	var sb strings.Builder
	r.RenderMarkdown(&sb)
	out := sb.String()
	for _, want := range []string{"## id — title", "Paper: claim", "| clients | A |", "* a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
