package workload

import (
	"testing"

	"ulipc/internal/core"
	"ulipc/internal/machine"
)

func TestDuplexArchCompletes(t *testing.T) {
	for _, alg := range core.Algorithms() {
		res := run(t, Config{
			Alg: alg, Arch: ArchThreadPerClient, Clients: 3, Msgs: 100,
		})
		if res.TotalMsgs != 300 {
			t.Errorf("%s duplex: total %d", alg, res.TotalMsgs)
		}
		if res.Server.MsgsReceived == 0 {
			t.Errorf("%s duplex: server handlers recorded no messages", alg)
		}
	}
}

func TestDuplexMatchesSharedAtOneClient(t *testing.T) {
	shared := run(t, Config{Alg: core.BSW, Clients: 1, Msgs: 300})
	duplex := run(t, Config{Alg: core.BSW, Arch: ArchThreadPerClient, Clients: 1, Msgs: 300})
	ratio := duplex.Throughput / shared.Throughput
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("1-client duplex/shared = %.3f, want ~1 (identical protocol)", ratio)
	}
}

func TestClientThinkSlowsThroughput(t *testing.T) {
	fast := run(t, Config{Alg: core.BSW, Clients: 1, Msgs: 200})
	slow := run(t, Config{Alg: core.BSW, Clients: 1, Msgs: 200, ClientThink: 500 * machine.Microsecond})
	if slow.Throughput >= fast.Throughput {
		t.Errorf("think time did not slow throughput: %.2f vs %.2f", slow.Throughput, fast.Throughput)
	}
	// Round trips now include the think time.
	if slow.RTTMicros < 500 {
		t.Errorf("rtt = %.1f us, must include the 500us think", slow.RTTMicros)
	}
}

func TestBackgroundProcessesRun(t *testing.T) {
	res := run(t, Config{Alg: core.BSW, Clients: 1, Msgs: 200, Background: 2, ClientThink: 200 * machine.Microsecond})
	if res.Background.CPUTimeNS == 0 {
		t.Fatal("background processes recorded no CPU time")
	}
	if share := res.BackgroundCPUShare(); share <= 0 {
		t.Fatalf("background share = %v", share)
	}
}

func TestBackgroundDoesNotCorruptIPC(t *testing.T) {
	res := run(t, Config{Alg: core.BSLS, MaxSpin: 5, Clients: 4, Msgs: 150, Background: 2})
	if res.TotalMsgs != 600 {
		t.Fatalf("total = %d", res.TotalMsgs)
	}
}

func TestBackgroundShareZeroWithoutBackground(t *testing.T) {
	res := run(t, Config{Alg: core.BSS, Clients: 1, Msgs: 100})
	if res.BackgroundCPUShare() != 0 {
		t.Fatalf("share = %v without background procs", res.BackgroundCPUShare())
	}
}

func TestDuplexWithSysVRejected(t *testing.T) {
	// SysV + thread-per-client is not modelled; the SysV transport takes
	// precedence and must still complete (documented behaviour).
	res := run(t, Config{Transport: TransportSysV, Arch: ArchThreadPerClient, Clients: 2, Msgs: 50})
	if res.TotalMsgs != 100 {
		t.Fatalf("total = %d", res.TotalMsgs)
	}
}

func TestPoolWorkersComplete(t *testing.T) {
	for _, alg := range core.Algorithms() {
		res := run(t, Config{
			Machine: machine.SGIChallenge8(), Alg: alg,
			Clients: 4, Msgs: 100, ServerWorkers: 3,
		})
		if res.TotalMsgs != 400 {
			t.Errorf("%s pool: total %d", alg, res.TotalMsgs)
		}
		if res.Server.MsgsReceived < 400 {
			t.Errorf("%s pool: workers received %d", alg, res.Server.MsgsReceived)
		}
	}
}

func TestPoolScalesWithWorkers(t *testing.T) {
	through := func(workers int) float64 {
		res := run(t, Config{
			Machine: machine.SGIChallenge8(), Alg: core.BSW,
			Clients: 6, Msgs: 300, ServerWorkers: workers,
			ServerWork: 20 * machine.Microsecond,
		})
		return res.Throughput
	}
	one, four := through(1), through(4)
	if four < one*3 {
		t.Errorf("4 workers = %.2f msg/ms vs 1 worker = %.2f; want >= 3x", four, one)
	}
}

func TestPoolOnUniprocessor(t *testing.T) {
	// A pool on one CPU cannot scale but must stay correct.
	res := run(t, Config{Machine: machine.SGIIndy(), Alg: core.BSW, Clients: 3, Msgs: 100, ServerWorkers: 2})
	if res.TotalMsgs != 300 {
		t.Errorf("total %d", res.TotalMsgs)
	}
}
