package livebind

import (
	"sync"
	"testing"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/queue"
)

func TestSemaphorePendingV(t *testing.T) {
	s := NewSemaphore(0)
	s.V() // V before P must remain pending (counting semantics)
	done := make(chan struct{})
	go func() {
		s.P()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("P blocked despite a pending V")
	}
	if s.Count() != 0 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestSemaphoreBlocksUntilV(t *testing.T) {
	s := NewSemaphore(0)
	released := make(chan struct{})
	go func() {
		s.P()
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("P returned without a V")
	case <-time.After(20 * time.Millisecond):
	}
	s.V()
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("V did not release the waiter")
	}
}

func TestSemaphoreCountingUnderConcurrency(t *testing.T) {
	s := NewSemaphore(0)
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.P()
		}()
	}
	for i := 0; i < n; i++ {
		s.V()
	}
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("waiters not all released")
	}
	if s.Count() != 0 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestChannelAwakeTAS(t *testing.T) {
	c, err := NewChannel(queue.KindTwoLock, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPort(c)
	if !p.TASAwake() {
		t.Fatal("initial awake must be true")
	}
	p.SetAwake(false)
	if p.TASAwake() {
		t.Fatal("TAS after clear must return false")
	}
	if !p.TASAwake() {
		t.Fatal("second TAS must return true")
	}
}

func TestPortQueueOps(t *testing.T) {
	c, err := NewChannel(queue.KindRing, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPort(c)
	if !p.Empty() {
		t.Fatal("fresh channel not empty")
	}
	if !p.TryEnqueue(core.Msg{Seq: 1}) {
		t.Fatal("enqueue failed")
	}
	if p.Empty() {
		t.Fatal("queue with message reports empty")
	}
	m, ok := p.TryDequeue()
	if !ok || m.Seq != 1 {
		t.Fatalf("dequeue: %+v %v", m, ok)
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(Options{Clients: 0}); err == nil {
		t.Error("zero clients accepted")
	}
	sys, err := NewSystem(Options{Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Client(-1); err == nil {
		t.Error("negative client index accepted")
	}
	if _, err := sys.Client(2); err == nil {
		t.Error("out-of-range client index accepted")
	}
	if _, err := sys.Client(1); err != nil {
		t.Errorf("valid client index rejected: %v", err)
	}
}

// TestSemaphoreBounded verifies the Figure 4 claim end-to-end on the
// live runtime: with the TAS fixes in place, no reply semaphore
// accumulates pending wake-ups across a multi-client run.
func TestSemaphoreBounded(t *testing.T) {
	const clients = 4
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: clients})
	if err != nil {
		t.Fatal(err)
	}
	srv := sys.Server()
	done := make(chan struct{})
	go func() { srv.Serve(nil); close(done) }()

	// All clients must be connected before any disconnects, or Serve
	// (which exits when the connected count returns to zero) can end
	// early — the same reason the paper's methodology barriers after
	// connecting.
	var barrier sync.WaitGroup
	barrier.Add(clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cl, err := sys.Client(i)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cl *core.Client) {
			defer wg.Done()
			cl.Send(core.Msg{Op: core.OpConnect})
			barrier.Done()
			barrier.Wait()
			for j := 0; j < 500; j++ {
				cl.Send(core.Msg{Op: core.OpEcho, Seq: int32(j)})
			}
			cl.Send(core.Msg{Op: core.OpDisconnect})
		}(cl)
	}
	wg.Wait()
	<-done

	if c := sys.ReceiveChannel().SemCount(); c > 1 {
		t.Errorf("server semaphore accumulated: %d", c)
	}
	for i := 0; i < clients; i++ {
		if c := sys.ReplyChannel(i).SemCount(); c > 1 {
			t.Errorf("client %d semaphore accumulated: %d", i, c)
		}
	}
}

func TestActorSleepScale(t *testing.T) {
	a := &Actor{SleepScale: time.Microsecond}
	start := time.Now()
	a.SleepSec(1)
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("scaled sleep took %v", d)
	}
}

func TestActorSpinFlavour(t *testing.T) {
	a := &Actor{SpinIters: 100}
	a.BusyWait() // must not yield/panic; just burn cycles
	a.PollDelay()
	if a.spinSink == 0 {
		t.Fatal("spin did not run")
	}
}

func TestActorHandoffDegradesToYield(t *testing.T) {
	a := &Actor{}
	a.Handoff(5) // must not panic; degrades to Gosched
}

func TestSystemMetricsNames(t *testing.T) {
	sys, err := NewSystem(Options{Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys.Server()
	if _, err := sys.Client(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.Metrics().Find("server"); !ok {
		t.Error("server metrics missing")
	}
	if _, ok := sys.Metrics().Find("client0"); !ok {
		t.Error("client0 metrics missing")
	}
}
