package workload

import (
	"fmt"
	"sync/atomic"

	"ulipc/internal/core"
	"ulipc/internal/metrics"
	"ulipc/internal/sim"
	"ulipc/internal/simbind"
)

// runSimPool runs the worker-pool architecture: ServerWorkers server
// processes all receiving from one shared queue using the counted-waiters
// discipline (model-checked in internal/protomodel), replying on
// per-client queues with the paper's flag protocol.
func runSimPool(k *sim.Kernel, cfg Config, ms *metrics.Set) (Result, error) {
	rec := &recorder{}
	capacity := cfg.queueCap()
	op := opForRun(cfg)
	barrier := k.NewBarrier(cfg.Clients)

	recvQ := simbind.NewQueue(k, "recvQ", capacity)
	replyQs := make([]*simbind.SQueue, cfg.Clients)
	for i := range replyQs {
		replyQs[i] = simbind.NewQueue(k, fmt.Sprintf("replyQ%d", i), capacity)
	}

	var stop atomic.Bool
	spawnBackground(k, cfg, &stop)

	coord := &core.PoolCoordinator{Workers: cfg.ServerWorkers}
	var remaining atomic.Int64
	remaining.Store(int64(cfg.ServerWorkers))

	for w := 0; w < cfg.ServerWorkers; w++ {
		k.Spawn(fmt.Sprintf("server%d", w), cfg.ServerPrio, func(p *sim.Proc) {
			replies := make([]core.Port, cfg.Clients)
			for i := range replies {
				replies[i] = simbind.NewPort(p, replyQs[i])
			}
			worker := &core.PoolWorker{
				Alg:     cfg.Alg,
				MaxSpin: cfg.MaxSpin,
				Rcv:     simbind.NewPoolPort(p, recvQ),
				Replies: replies,
				A:       simbind.NewActor(p),
				C:       coord,
				M:       p.M,
			}
			var work func(*core.Msg)
			if cfg.ServerWork > 0 {
				work = func(*core.Msg) { p.Step(cfg.ServerWork) }
			}
			worker.Serve(work)
			if remaining.Add(-1) == 0 {
				rec.lastDone = p.Now()
				stop.Store(true)
			}
		})
	}

	for i := 0; i < cfg.Clients; i++ {
		i := i
		k.Spawn(fmt.Sprintf("client%d", i), cfg.ClientPrio, func(p *sim.Proc) {
			cl := &core.PoolClient{
				ID:      int32(i),
				Alg:     cfg.Alg,
				MaxSpin: cfg.MaxSpin,
				Srv:     simbind.NewPoolPort(p, recvQ),
				Rcv:     simbind.NewPort(p, replyQs[i]),
				A:       simbind.NewActor(p),
				M:       p.M,
			}
			ans := cl.Send(core.Msg{Op: core.OpConnect})
			if ans.Op != core.OpConnect {
				rec.noteErr("client%d: bad connect reply op %d", i, ans.Op)
			}
			p.Barrier(barrier)
			rec.noteStart(p.Now())
			for j := 0; j < cfg.Msgs; j++ {
				if cfg.ClientThink > 0 {
					p.Step(cfg.ClientThink)
				}
				ans := cl.Send(core.Msg{Op: op, Seq: int32(j), Val: float64(j)})
				if ans.Seq != int32(j) || ans.Val != float64(j) {
					rec.noteErr("client%d: reply mismatch at %d: %+v", i, j, ans)
				}
			}
			cl.Send(core.Msg{Op: core.OpDisconnect})
		})
	}

	if err := k.Run(); err != nil {
		return Result{}, err
	}
	label := fmt.Sprintf("%s-pool%d/%s/%dc", cfg.Alg, cfg.ServerWorkers, cfg.Machine.Name, cfg.Clients)
	res, err := buildResult(cfg, rec, ms, label)
	if err != nil {
		return Result{}, err
	}
	res.Server = ms.ByPrefix("server")
	return res, nil
}
