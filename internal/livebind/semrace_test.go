package livebind

import (
	"context"
	"runtime"
	"sync"
	"testing"
)

// TestSemaphorePCtxCancelVRaceExactlyOnce races a PCtx cancellation
// against a concurrent V over many rounds and checks the wake token is
// conserved exactly in every interleaving: either the waiter consumed
// it (returns nil, count stays 0) or the cancelled waiter handed it
// back exactly once (returns ctx.Err(), count is exactly 1). A lost
// token would strand the next sleeper forever; a doubled one would
// admit a consumer with no message. Run under -race.
func TestSemaphorePCtxCancelVRaceExactlyOnce(t *testing.T) {
	for i := 0; i < 500; i++ {
		s := NewSemaphore(0)
		ctx, cancel := context.WithCancel(context.Background())
		res := make(chan error, 1)
		go func() {
			_, err := s.PCtx(ctx)
			res <- err
		}()
		for s.Waiters() == 0 { // waiter parked before the race starts
			runtime.Gosched()
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); cancel() }()
		go func() { defer wg.Done(); s.V() }()
		wg.Wait()

		err := <-res
		if count := s.Count(); err == nil {
			if count != 0 {
				t.Fatalf("round %d: token consumed but count = %d (duplicated)", i, count)
			}
		} else {
			if err != context.Canceled {
				t.Fatalf("round %d: PCtx = %v, want nil or context.Canceled", i, err)
			}
			if count != 1 {
				t.Fatalf("round %d: cancelled wait left count = %d, want exactly 1 handed back", i, count)
			}
		}
		if w := s.Waiters(); w != 0 {
			t.Fatalf("round %d: %d waiters leaked", i, w)
		}
	}
}
