// Package chart renders the experiment results as text tables and ASCII
// line charts, so every figure of the paper can be regenerated in a
// terminal.
package chart

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, cols)
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named curve of a plot.
type Series struct {
	Name string
	Y    []float64
}

// Plot is a multi-series line chart over a shared X axis.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// markers distinguish series in the ASCII rendering.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the plot as ASCII art of the given size (sensible
// defaults are used for non-positive width/height).
func (p *Plot) Render(w io.Writer, width, height int) {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	if len(p.X) == 0 || len(p.Series) == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", p.Title)
		return
	}

	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for _, v := range s.Y {
			if math.IsNaN(v) {
				continue
			}
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	if math.IsInf(ymin, 1) {
		fmt.Fprintf(w, "%s: (no data)\n", p.Title)
		return
	}
	if ymin > 0 && ymin < ymax/2 {
		ymin = 0 // throughput plots read better anchored at zero
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	xmin, xmax := p.X[0], p.X[len(p.X)-1]
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plotPoint := func(x, y float64, mark byte) {
		cx := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		cy := int(math.Round((y - ymin) / (ymax - ymin) * float64(height-1)))
		row := height - 1 - cy
		if row < 0 || row >= height || cx < 0 || cx >= width {
			return
		}
		grid[row][cx] = mark
	}
	for si, s := range p.Series {
		mark := markers[si%len(markers)]
		for i, v := range s.Y {
			if i >= len(p.X) || math.IsNaN(v) {
				continue
			}
			plotPoint(p.X[i], v, mark)
			// Linear interpolation towards the next point for a line-ish look.
			if i+1 < len(s.Y) && i+1 < len(p.X) && !math.IsNaN(s.Y[i+1]) {
				steps := 8
				for k := 1; k < steps; k++ {
					f := float64(k) / float64(steps)
					plotPoint(p.X[i]+(p.X[i+1]-p.X[i])*f, v+(s.Y[i+1]-v)*f, '.')
				}
			}
		}
	}
	// Re-stamp markers over interpolation dots.
	for si, s := range p.Series {
		mark := markers[si%len(markers)]
		for i, v := range s.Y {
			if i < len(p.X) && !math.IsNaN(v) {
				plotPoint(p.X[i], v, mark)
			}
		}
	}

	if p.Title != "" {
		fmt.Fprintf(w, "%s\n", p.Title)
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.1f", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.1f", ymin)
		case height / 2:
			label = fmt.Sprintf("%8.1f", (ymax+ymin)/2)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-8.3g%s%8.3g\n", strings.Repeat(" ", 8), xmin,
		strings.Repeat(" ", max(1, width-16)), xmax)
	if p.YLabel != "" || p.XLabel != "" {
		fmt.Fprintf(w, "          y: %s, x: %s\n", p.YLabel, p.XLabel)
	}
	for si, s := range p.Series {
		fmt.Fprintf(w, "          %c %s\n", markers[si%len(markers)], s.Name)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RenderMarkdown writes the table as GitHub-flavoured Markdown, so
// experiment output can be pasted into EXPERIMENTS.md verbatim.
func (t *Table) RenderMarkdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "**%s**\n\n", t.Title)
	}
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	if cols == 0 {
		return
	}
	row := func(cells []string) {
		fmt.Fprint(w, "|")
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(w, " %s |", strings.ReplaceAll(c, "|", "\\|"))
		}
		fmt.Fprintln(w)
	}
	row(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	fmt.Fprintln(w)
}
