package livebind

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"

	"ulipc/internal/core"
	"ulipc/internal/metrics"
	"ulipc/internal/obs"
)

// Observability surface of a live System: the v2 metrics accessor
// (counters + per-protocol phase histograms), Prometheus text
// exposition, expvar publication, and flight-recorder dumps. All of it
// is nil-safe: a System built without WithObserver/WithHistograms
// reports counters only and dumps nothing.

// Observer returns the attached observer, or nil.
func (s *System) Observer() *obs.Observer { return s.obs }

// MetricsV2 returns the histogram-aware system snapshot: per-process
// counters, their total, and — when an observer is attached — the
// per-protocol phase-latency histograms.
func (s *System) MetricsV2() metrics.SystemSnapshot {
	snap := s.ms.SystemSnapshot(s.obs)
	if s.blocks != nil {
		for _, cs := range s.blocks.Stats() {
			snap.Blocks = append(snap.Blocks, metrics.BlockClass{
				Size:      cs.Size,
				Count:     cs.Count,
				Free:      cs.Free,
				Fallbacks: cs.Fallbacks,
				Exhausts:  cs.Exhausts,
			})
		}
	}
	return snap
}

// WritePrometheus writes the system's metrics in Prometheus text
// exposition format: the observer's phase histograms (if any) followed
// by the aggregate protocol counters.
func (s *System) WritePrometheus(w io.Writer) {
	s.obs.WritePrometheus(w)
	t := s.ms.Total()
	for _, c := range []struct {
		name, help string
		value      int64
	}{
		{"ulipc_msgs_sent", "messages sent by all participants", t.MsgsSent},
		{"ulipc_msgs_received", "messages received by all participants", t.MsgsReceived},
		{"ulipc_sem_p", "semaphore P (down) operations", t.SemP},
		{"ulipc_sem_v", "semaphore V (up) operations", t.SemV},
		{"ulipc_blocks", "P operations that actually slept", t.Blocks},
		{"ulipc_wakeups", "V operations that woke a sleeper", t.Wakeups},
		{"ulipc_yields", "yield system calls", t.Yields},
		{"ulipc_spin_fallthrus", "BSLS poll loops that exhausted MAX_SPIN", t.SpinFallThrus},
		{"ulipc_timeouts", "cancellable waits ended by a deadline", t.Timeouts},
		{"ulipc_cancels", "cancellable waits ended by explicit cancel", t.Cancels},
		{"ulipc_retries", "queue-full retry rounds", t.Retries},
		{"ulipc_overloads", "sends rejected by admission control or a dry retry budget", t.Overloads},
		{"ulipc_sheds", "expired messages shed at server dequeue", t.Sheds},
		{"ulipc_expiries", "replies that arrived after their deadline", t.Expiries},
		{"ulipc_copy_fallbacks", "payload allocations degraded to the heap fallback", t.CopyFallbacks},
		{"ulipc_quarantines", "shard circuits opened on sustained high water", t.Quarantines},
		{"ulipc_crashes", "injected crash panics recovered", t.Crashes},
		{"ulipc_peer_deaths", "actors declared dead by the sweeper", t.PeerDeaths},
		{"ulipc_lock_reclaims", "robust queue locks revoked from dead holders", t.LockReclaims},
		{"ulipc_orphan_msgs", "orphaned queued messages drained to the pool", t.OrphanMsgs},
		{"ulipc_orphan_refs", "leaked in-flight refs returned to the pool", t.OrphanRefs},
		{"ulipc_orphan_blocks", "leaked payload blocks reclaimed from dead owners", t.OrphanBlocks},
		{"ulipc_wake_rescues", "rescue Vs issued for lost wake-ups", t.WakeRescues},
		{"ulipc_block_refills", "payload cache batched refills from the arena", t.BlockRefills},
		{"ulipc_block_spills", "payload cache batched spills back to the arena", t.BlockSpills},
		{"ulipc_block_fails", "payload allocations denied by class exhaustion", t.BlockFails},
	} {
		obs.WritePrometheusCounter(w, c.name, c.help, c.value)
	}
	s.writeBlockMetrics(w)
	s.writeTunerMetrics(w)
}

// writeBlockMetrics emits the payload slab arena's per-class exposition:
// free/capacity gauges plus the fallback/exhaustion backpressure
// counters, labelled by class size. A no-op without a payload arena.
func (s *System) writeBlockMetrics(w io.Writer) {
	if s.blocks == nil {
		return
	}
	stats := s.blocks.Stats()
	fmt.Fprintf(w, "# HELP ulipc_block_free free payload blocks per size class\n")
	fmt.Fprintf(w, "# TYPE ulipc_block_free gauge\n")
	for _, cs := range stats {
		fmt.Fprintf(w, "ulipc_block_free{size=\"%d\"} %d\n", cs.Size, cs.Free)
	}
	fmt.Fprintf(w, "# HELP ulipc_block_capacity payload block slots per size class\n")
	fmt.Fprintf(w, "# TYPE ulipc_block_capacity gauge\n")
	for _, cs := range stats {
		fmt.Fprintf(w, "ulipc_block_capacity{size=\"%d\"} %d\n", cs.Size, cs.Count)
	}
	fmt.Fprintf(w, "# HELP ulipc_block_fallbacks_total allocs absorbed for a smaller exhausted class\n")
	fmt.Fprintf(w, "# TYPE ulipc_block_fallbacks_total counter\n")
	for _, cs := range stats {
		fmt.Fprintf(w, "ulipc_block_fallbacks_total{size=\"%d\"} %d\n", cs.Size, cs.Fallbacks)
	}
	fmt.Fprintf(w, "# HELP ulipc_block_exhausts_total allocs that found the class empty\n")
	fmt.Fprintf(w, "# TYPE ulipc_block_exhausts_total counter\n")
	for _, cs := range stats {
		fmt.Fprintf(w, "ulipc_block_exhausts_total{size=\"%d\"} %d\n", cs.Size, cs.Exhausts)
	}
}

// writeTunerMetrics emits the BSA controller exposition: one
// spin-budget gauge per handle plus the aggregated decision counters.
// A no-op on the fixed-budget protocols (no tuners registered).
func (s *System) writeTunerMetrics(w io.Writer) {
	ts := s.Tuners()
	if len(ts) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP ulipc_spin_budget current BSA spin budget per handle\n")
	fmt.Fprintf(w, "# TYPE ulipc_spin_budget gauge\n")
	var sum core.TunerSnapshot
	for _, t := range ts {
		snap := t.T.Snapshot()
		fmt.Fprintf(w, "ulipc_spin_budget{handle=%q} %d\n", t.Name, snap.Budget)
		sum.Polls += snap.Polls
		sum.FallThrus += snap.FallThrus
		sum.Grows += snap.Grows
		sum.Shrinks += snap.Shrinks
		sum.Backoffs += snap.Backoffs
	}
	obs.WritePrometheusCounter(w, "ulipc_tuner_polls", "BSA waits observed by the controllers", sum.Polls)
	obs.WritePrometheusCounter(w, "ulipc_tuner_fallthrus", "BSA waits whose spin budget expired (slept)", sum.FallThrus)
	obs.WritePrometheusCounter(w, "ulipc_tuner_grows", "BSA budget increases", sum.Grows)
	obs.WritePrometheusCounter(w, "ulipc_tuner_shrinks", "BSA budget decreases tracking shorter arrivals", sum.Shrinks)
	obs.WritePrometheusCounter(w, "ulipc_tuner_backoffs", "BSA budget halvings by the oversubscription guard", sum.Backoffs)
}

// MetricsHandler serves the system's Prometheus exposition over HTTP.
func (s *System) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WritePrometheus(w)
	})
}

// PublishExpvar publishes the system's v2 metrics snapshot under the
// given expvar name (shown on /debug/vars when net/http/pprof or the
// expvar handler is mounted). expvar panics on duplicate names, so a
// name already taken — e.g. by an earlier System in the same process —
// is reported as an error instead.
func (s *System) PublishExpvar(name string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("livebind: expvar name %q already published", name)
		}
	}()
	expvar.Publish(name, expvar.Func(func() any {
		snap := s.MetricsV2()
		// Round-trip through JSON so expvar renders plain data, not
		// atomic wrappers (SystemSnapshot is plain already; this guards
		// future fields).
		b, err := json.Marshal(snap)
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		var v any
		if err := json.Unmarshal(b, &v); err != nil {
			return map[string]string{"error": err.Error()}
		}
		return v
	}))
	return nil
}

// DumpFlightRecorder writes the observer's flight-recorder contents
// with actor names resolved; a no-op when no recorder is attached.
func (s *System) DumpFlightRecorder(w io.Writer) {
	s.obs.Dump(w)
}
