//go:build linux

package shm

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// File- and memfd-backed segments. A segment file is mapped MAP_SHARED
// into every participating process; the offset-based layout (seg.go)
// makes the base address irrelevant. memfd segments never touch the
// filesystem — the parent passes the fd to children over exec
// (os/exec.Cmd.ExtraFiles) and the kernel reclaims the memory when the
// last fd closes, so a SIGKILLed fleet leaks nothing.

// CreateFileSeg creates (truncating) a segment file of the given
// geometry and maps it. The returned Seg is mapped and initialised.
func CreateFileSeg(path string, cfg SegConfig) (*Seg, error) {
	lay, err := LayoutFor(cfg)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(lay.Size)); err != nil {
		f.Close()
		return nil, err
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, lay.Size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("shm: mmap %s: %w", path, err)
	}
	s := &Seg{
		mem: mem, lay: lay, view: viewOver(mem, lay), mapped: true,
		remap: func() ([]byte, error) { return mapWholeFile(path) },
		unmap: syscall.Munmap,
	}
	s.view.init(lay)
	return s, nil
}

// OpenFileSeg returns an unmapped handle on an existing segment file;
// call Map to validate and attach. MapFileSeg is the one-step variant.
func OpenFileSeg(path string) (*Seg, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	return &Seg{
		remap: func() ([]byte, error) { return mapWholeFile(path) },
		unmap: syscall.Munmap,
	}, nil
}

// MapFileSeg opens and maps an existing segment file, validating its
// header (magic, version, node ABI, geometry vs file size).
func MapFileSeg(path string) (*Seg, error) {
	s, err := OpenFileSeg(path)
	if err != nil {
		return nil, err
	}
	if err := s.Map(); err != nil {
		return nil, err
	}
	return s, nil
}

// mapWholeFile maps an entire existing file read-write/shared.
func mapWholeFile(path string) ([]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < int64(unsafe.Sizeof(SegHeader{})) {
		return nil, fmt.Errorf("%w: %s is %d bytes", ErrShortSegment, path, st.Size())
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("shm: mmap %s: %w", path, err)
	}
	return mem, nil
}

// CreateMemfdSeg creates an anonymous memory-backed segment. The
// returned *os.File is the memfd: pass it to worker processes via
// ExtraFiles and map it there with MapFDSeg; close it when the last
// worker has been spawned. The Seg itself holds a duplicate fd, so the
// caller's close does not tear down the mapping source.
func CreateMemfdSeg(name string, cfg SegConfig) (*Seg, *os.File, error) {
	lay, err := LayoutFor(cfg)
	if err != nil {
		return nil, nil, err
	}
	f, err := memfdCreate(name)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(int64(lay.Size)); err != nil {
		f.Close()
		return nil, nil, err
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, lay.Size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("shm: mmap memfd: %w", err)
	}
	s := &Seg{
		mem: mem, lay: lay, view: viewOver(mem, lay), mapped: true,
		remap: func() ([]byte, error) { return mapWholeFD(f.Fd()) },
		unmap: syscall.Munmap,
	}
	s.view.init(lay)
	return s, f, nil
}

// MapFDSeg maps a segment from an inherited file descriptor (the child
// side of a memfd hand-off). The fd stays open and owned by the caller.
func MapFDSeg(fd uintptr) (*Seg, error) {
	s := &Seg{
		remap: func() ([]byte, error) { return mapWholeFD(fd) },
		unmap: syscall.Munmap,
	}
	if err := s.Map(); err != nil {
		return nil, err
	}
	return s, nil
}

// mapWholeFD maps an entire fd read-write/shared.
func mapWholeFD(fd uintptr) ([]byte, error) {
	var st syscall.Stat_t
	if err := syscall.Fstat(int(fd), &st); err != nil {
		return nil, fmt.Errorf("shm: fstat fd %d: %w", fd, err)
	}
	if st.Size < int64(unsafe.Sizeof(SegHeader{})) {
		return nil, fmt.Errorf("%w: fd %d is %d bytes", ErrShortSegment, fd, st.Size)
	}
	mem, err := syscall.Mmap(int(fd), 0, int(st.Size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("shm: mmap fd %d: %w", fd, err)
	}
	return mem, nil
}
