package core

import (
	"fmt"

	"ulipc/internal/obs"
)

// protocolInfo is one row of the protocol registry: the algorithm
// value, its canonical (paper) name, the lower-case parse alias, and a
// one-line description for docs and tooling.
type protocolInfo struct {
	Alg  Algorithm
	Name string
	Desc string
}

// protocols is THE registration table: Algorithms, AlgorithmByName,
// Algorithm.String and the per-protocol histogram-set names in
// internal/obs all derive from it. Adding a protocol means adding one
// row here (plus its dispatch arms), not editing N switch statements.
// Rows must be dense and in Algorithm order — init checks.
var protocols = [...]protocolInfo{
	{BSS, "BSS", "Both Sides Spin (Figure 1)"},
	{BSW, "BSW", "Both Sides Wait (Figure 5)"},
	{BSWY, "BSWY", "Both Sides Wait and Yield (Figure 7)"},
	{BSLS, "BSLS", "Both Sides Limited Spin (Figure 9)"},
	{BSA, "BSA", "Both Sides Adaptive (online spin-budget controller)"},
}

func init() {
	for i, p := range protocols {
		if p.Alg != Algorithm(i) {
			panic(fmt.Sprintf("core: protocol table row %d registers %v", i, p.Alg))
		}
	}
	// The obs package cannot import core, so the registry pushes the
	// protocol naming down: every observer built with the default config
	// indexes its histogram sets by these names.
	obs.DefaultProtoNames = AlgorithmNames()
}

// Algorithms lists all protocols in presentation (registration) order.
func Algorithms() []Algorithm {
	out := make([]Algorithm, len(protocols))
	for i, p := range protocols {
		out[i] = p.Alg
	}
	return out
}

// AlgorithmNames lists the canonical protocol names in registration
// order, indexed by Algorithm value.
func AlgorithmNames() []string {
	out := make([]string, len(protocols))
	for i, p := range protocols {
		out[i] = p.Name
	}
	return out
}

// ValidAlgorithm reports whether a is a registered protocol.
func ValidAlgorithm(a Algorithm) bool {
	return a >= 0 && int(a) < len(protocols)
}

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	if ValidAlgorithm(a) {
		return protocols[a].Name
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Describe returns the registry's one-line description of the protocol
// (docs and tooling; empty for unregistered values).
func (a Algorithm) Describe() string {
	if ValidAlgorithm(a) {
		return protocols[a].Desc
	}
	return ""
}

// AlgorithmByName parses a protocol name — the canonical upper-case
// form or its lower-case alias, as printed by String.
func AlgorithmByName(s string) (Algorithm, error) {
	for _, p := range protocols {
		if s == p.Name || s == lower(p.Name) {
			return p.Alg, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", s)
}

// lower is an ASCII-only lowercase (the table holds ASCII names; avoids
// pulling strings into the hot-path package for one call site).
func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
