package core

import (
	"testing"
	"time"

	"ulipc/internal/obs"
)

func TestTunerDefaults(t *testing.T) {
	tn := NewTuner(TunerConfig{})
	if got := tn.Budget(); got != DefaultMaxSpin {
		t.Fatalf("initial budget %d, want the paper's MAX_SPIN %d", got, DefaultMaxSpin)
	}
	if d := tn.NapScale(time.Millisecond); d != time.Millisecond {
		t.Fatalf("idle nap scale changed the nap: %v", d)
	}
}

func TestTunerTracksArrivalLag(t *testing.T) {
	tn := NewTuner(TunerConfig{})
	// Replies consistently land after 100 polls: the budget must grow
	// toward ~2x the arrival lag so those waits never park.
	for i := 0; i < 200; i++ {
		tn.Observe(100, false)
	}
	if got := tn.Budget(); got < 150 || got > 250 {
		t.Fatalf("budget %d after steady 100-poll arrivals, want ~200", got)
	}
	// Arrivals speed up to 5 polls: the budget must shrink back down.
	for i := 0; i < 200; i++ {
		tn.Observe(5, false)
	}
	if got := tn.Budget(); got < DefaultSpinMin || got > 20 {
		t.Fatalf("budget %d after steady 5-poll arrivals, want ~11", got)
	}
	s := tn.Snapshot()
	if s.Grows == 0 || s.Shrinks == 0 {
		t.Fatalf("decision counters did not move: %+v", s)
	}
	if s.Polls != 400 {
		t.Fatalf("polls %d, want 400", s.Polls)
	}
}

func TestTunerOversubscriptionBackoff(t *testing.T) {
	tn := NewTuner(TunerConfig{Initial: 256})
	// Every wait falls through — the oversubscription signature. The
	// budget must collapse toward the floor and the naps must stretch.
	for i := 0; i < 100; i++ {
		tn.Observe(256, true)
	}
	if got := tn.Budget(); got != DefaultSpinMin {
		t.Fatalf("budget %d under sustained fall-through, want floor %d", got, DefaultSpinMin)
	}
	s := tn.Snapshot()
	if s.Backoffs == 0 {
		t.Fatalf("no backoffs recorded: %+v", s)
	}
	if s.FallThrus != 100 {
		t.Fatalf("fall-thrus %d, want 100", s.FallThrus)
	}
	if d := tn.NapScale(time.Millisecond); d != 4*time.Millisecond {
		t.Fatalf("nap scale %v under backoff, want 4x", d)
	}
	// Pressure lifts: the nap scale must relax back to 1x and the
	// budget must recover toward the new arrival lag.
	for i := 0; i < 200; i++ {
		tn.Observe(10, false)
	}
	if d := tn.NapScale(time.Millisecond); d != time.Millisecond {
		t.Fatalf("nap scale %v after recovery, want 1x", d)
	}
	if got := tn.Budget(); got < 10 || got > 40 {
		t.Fatalf("budget %d after recovery at 10-poll arrivals, want ~21", got)
	}
}

func TestTunerClamps(t *testing.T) {
	tn := NewTuner(TunerConfig{Initial: 10000, Min: 4, Max: 64})
	if got := tn.Budget(); got != 64 {
		t.Fatalf("initial budget %d, want clamp to 64", got)
	}
	for i := 0; i < 100; i++ {
		tn.Observe(10000, false)
	}
	if got := tn.Budget(); got != 64 {
		t.Fatalf("budget %d, want ceiling 64", got)
	}
	for i := 0; i < 100; i++ {
		tn.Observe(0, true)
	}
	if got := tn.Budget(); got != 4 {
		t.Fatalf("budget %d, want floor 4", got)
	}
}

func TestTunerSnapshotJSONStable(t *testing.T) {
	tn := NewTuner(TunerConfig{})
	tn.Observe(3, false)
	s := tn.Snapshot()
	if s.Budget != int64(tn.Budget()) || s.Polls != 1 {
		t.Fatalf("snapshot out of sync: %+v", s)
	}
}

// adaptiveSpin's fall-through predicate must be exact: an arrival on
// the last budgeted poll is a successful spin, not a sleep.
type scriptedQueue struct{ emptyFor int }

func (q *scriptedQueue) Empty() bool {
	if q.emptyFor > 0 {
		q.emptyFor--
		return true
	}
	return false
}

func TestAdaptiveSpinExactFallThrough(t *testing.T) {
	tn := NewTuner(TunerConfig{Initial: 8, Min: 2, Max: 512})
	a := &fakeActor{}
	// Arrival exactly when the budget expires: Empty() true for the
	// whole loop, false immediately after — a success, not a sleep.
	q := &scriptedQueue{emptyFor: tn.Budget()}
	adaptiveSpin(q, a, tn, nil, obs.Hook{})
	if got := tn.FallThrus.Load(); got != 0 {
		t.Fatalf("last-poll arrival counted as fall-through")
	}
	// Queue still empty after the loop: a genuine fall-through.
	q = &scriptedQueue{emptyFor: 1 << 30}
	adaptiveSpin(q, a, tn, nil, obs.Hook{})
	if got := tn.FallThrus.Load(); got != 1 {
		t.Fatalf("fall-thrus %d after an expired wait, want 1", got)
	}
}
