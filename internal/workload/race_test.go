//go:build !race

package workload

// raceEnabled reports whether the race detector is compiled in. The
// open-loop tests scale their per-message deadlines by it: the
// detector's 5-20x slowdown would otherwise expire every message,
// turning a goodput assertion into a shed-everything cell.
const raceEnabled = false
