package core

import (
	"context"
	"time"

	"ulipc/internal/metrics"
	"ulipc/internal/obs"
)

// This file implements the alternative server architecture Section 2.1
// sketches: "an alternative architecture might be to have a server
// thread per client, but that would require two queues per client to
// implement the full-duplex virtual connection." Each client gets a
// dedicated server handler and a pair of unidirectional queues; both
// endpoints use the same sleep/wake-up protocols as the shared-queue
// architecture.

// DuplexClient is the client endpoint of a full-duplex virtual
// connection: it enqueues requests on the client-to-server queue and
// waits for responses on the server-to-client queue. Like Client, the
// handle is single-goroutine and tracks the replies owed for cancelled
// SendCtx calls, draining them before the next request goes out.
type DuplexClient struct {
	Alg     Algorithm
	MaxSpin int
	Tuner   *Tuner // BSA spin-budget controller (lazily built if nil)
	Snd     Port   // enqueue endpoint of the client->server queue
	Rcv     Port   // dequeue endpoint of the server->client queue
	A       Actor
	M       *metrics.Proc
	Obs     obs.Hook // optional phase histograms + flight recorder

	lag int
}

// Send performs a synchronous request/response exchange on the
// connection. On shutdown it returns the OpShutdown marker message.
func (c *DuplexClient) Send(m Msg) Msg {
	for c.lag > 0 {
		if stale := c.recvReply(); stale.Op == OpShutdown {
			return stale
		}
		c.lag--
	}
	if c.M != nil {
		defer c.M.MsgsSent.Add(1)
	}
	if !c.Obs.Enabled() {
		return c.dispatchSend(m)
	}
	c.Obs.Note(obs.EvSend, int64(m.Seq))
	t0 := time.Now()
	ans := c.dispatchSend(m)
	c.Obs.RTT(time.Since(t0))
	c.Obs.Note(obs.EvRecv, int64(ans.Seq))
	return ans
}

// dispatchSend routes a request through the configured protocol.
func (c *DuplexClient) dispatchSend(m Msg) Msg {
	switch c.Alg {
	case BSS:
		if !busySpinUntil(c.A, c.Snd, func() bool { return c.Snd.TryEnqueue(m) }) {
			return ShutdownMsg()
		}
		return c.recvReply()
	case BSW:
		if !enqueueOrSleepObs(c.Snd, c.A, m, c.Obs) {
			return ShutdownMsg()
		}
		wakeConsumer(c.Snd, c.A)
		return consumerWait(c.Rcv, c.A, nil)
	case BSWY:
		if !enqueueOrSleepObs(c.Snd, c.A, m, c.Obs) {
			return ShutdownMsg()
		}
		if !c.Snd.TASAwake() {
			c.A.V(c.Snd.Sem())
			c.A.BusyWait()
		}
		return consumerWait(c.Rcv, c.A, c.A.BusyWait)
	case BSLS, BSA:
		if !enqueueOrSleepObs(c.Snd, c.A, m, c.Obs) {
			return ShutdownMsg()
		}
		wakeConsumer(c.Snd, c.A)
		c.spinRcv()
		return consumerWait(c.Rcv, c.A, c.A.BusyWait)
	}
	panic(ErrUnknownAlgorithm)
}

// SendCtx is Send with deadline/cancellation support (see
// Client.SendCtx for the error contract).
func (c *DuplexClient) SendCtx(ctx context.Context, m Msg) (Msg, error) {
	for c.lag > 0 {
		if _, err := c.recvReplyCtx(ctx); err != nil {
			return Msg{}, err
		}
		c.lag--
	}
	var t0 time.Time
	obsOn := c.Obs.Enabled()
	if obsOn {
		c.Obs.Note(obs.EvSend, int64(m.Seq))
		t0 = time.Now()
	}
	var err error
	switch c.Alg {
	case BSS:
		err = spinEnqueueCtx(ctx, c.A, c.Snd, m)
	case BSW, BSLS, BSA:
		if err = enqueueOrSleepCtxObs(ctx, c.Snd, c.A, m, c.M, nil, c.Obs); err == nil {
			wakeConsumer(c.Snd, c.A)
		}
	case BSWY:
		if err = enqueueOrSleepCtxObs(ctx, c.Snd, c.A, m, c.M, nil, c.Obs); err == nil {
			if !c.Snd.TASAwake() {
				c.A.V(c.Snd.Sem())
				c.A.BusyWait()
			}
		}
	default:
		return Msg{}, ErrUnknownAlgorithm
	}
	if err != nil {
		return Msg{}, err
	}
	c.lag++
	ans, err := c.recvReplyCtx(ctx)
	if err != nil {
		return Msg{}, err
	}
	c.lag--
	if obsOn {
		c.Obs.RTT(time.Since(t0))
		c.Obs.Note(obs.EvRecv, int64(ans.Seq))
	}
	if c.M != nil {
		c.M.MsgsSent.Add(1)
	}
	return ans, nil
}

// recvReply is the per-protocol blocking reply dequeue.
func (c *DuplexClient) recvReply() Msg {
	switch c.Alg {
	case BSS:
		var ans Msg
		if !busySpinUntil(c.A, c.Rcv, func() bool {
			var ok bool
			ans, ok = c.Rcv.TryDequeue()
			return ok
		}) {
			return ShutdownMsg()
		}
		return ans
	case BSW:
		return consumerWait(c.Rcv, c.A, nil)
	case BSWY:
		return consumerWait(c.Rcv, c.A, c.A.BusyWait)
	case BSLS, BSA:
		c.spinRcv()
		return consumerWait(c.Rcv, c.A, c.A.BusyWait)
	}
	panic(ErrUnknownAlgorithm)
}

// recvReplyCtx is the per-protocol cancellable reply dequeue.
func (c *DuplexClient) recvReplyCtx(ctx context.Context) (Msg, error) {
	switch c.Alg {
	case BSS:
		return spinDequeueCtx(ctx, c.A, c.Rcv)
	case BSW:
		return consumerWaitCtx(ctx, c.Rcv, c.A, nil)
	case BSWY:
		return consumerWaitCtx(ctx, c.Rcv, c.A, c.A.BusyWait)
	case BSLS, BSA:
		c.spinRcv()
		return consumerWaitCtx(ctx, c.Rcv, c.A, c.A.BusyWait)
	}
	return Msg{}, ErrUnknownAlgorithm
}

func (c *DuplexClient) maxSpin() int {
	if c.MaxSpin <= 0 {
		return DefaultMaxSpin
	}
	return c.MaxSpin
}

// spinRcv runs the pre-block spin prefix on the reply queue: BSLS's
// fixed budget, or BSA's controller-tuned budget with feedback.
func (c *DuplexClient) spinRcv() {
	if c.Alg == BSA {
		if c.Tuner == nil {
			c.Tuner = NewTuner(TunerConfig{})
		}
		adaptiveSpin(c.Rcv, c.A, c.Tuner, c.M, c.Obs)
		return
	}
	spinPollObs(c.Rcv, c.A, c.maxSpin(), c.M, c.Obs)
}

// DuplexHandler is the server endpoint of one full-duplex connection —
// the body of a per-client server thread.
type DuplexHandler struct {
	Alg     Algorithm
	MaxSpin int
	Tuner   *Tuner // BSA spin-budget controller (lazily built if nil)
	Rcv     Port   // dequeue endpoint of the client->server queue
	Snd     Port   // enqueue endpoint of the server->client queue
	A       Actor
	M       *metrics.Proc
	Obs     obs.Hook // optional phase histograms + flight recorder

	// pending counts requests received and not yet replied to — the
	// double-reply audit consulted by ReplyCtx.
	pending int
}

func (h *DuplexHandler) maxSpin() int {
	if h.MaxSpin <= 0 {
		return DefaultMaxSpin
	}
	return h.MaxSpin
}

// spinRcv runs the pre-block spin prefix on the connection's receive
// queue: BSLS's fixed budget, or BSA's controller-tuned budget.
func (h *DuplexHandler) spinRcv() {
	if h.Alg == BSA {
		if h.Tuner == nil {
			h.Tuner = NewTuner(TunerConfig{})
		}
		adaptiveSpin(h.Rcv, h.A, h.Tuner, h.M, h.Obs)
		return
	}
	spinPollObs(h.Rcv, h.A, h.maxSpin(), h.M, h.Obs)
}

// Receive returns the connection's next request, or the OpShutdown
// marker message once the system is shut down and the queue drained.
func (h *DuplexHandler) Receive() Msg {
	var m Msg
	switch h.Alg {
	case BSS:
		if !busySpinUntil(h.A, h.Rcv, func() bool {
			var ok bool
			m, ok = h.Rcv.TryDequeue()
			return ok
		}) {
			return ShutdownMsg()
		}
	case BSW:
		m = consumerWait(h.Rcv, h.A, nil)
	case BSWY:
		if got, ok := h.Rcv.TryDequeue(); ok {
			m = got
			break
		}
		h.A.Yield()
		m = consumerWait(h.Rcv, h.A, nil)
	case BSLS, BSA:
		h.spinRcv()
		m = consumerWait(h.Rcv, h.A, nil)
	default:
		panic(ErrUnknownAlgorithm)
	}
	if m.Op == OpShutdown && m.Client < 0 && portClosed(h.Rcv) {
		return m
	}
	if h.M != nil {
		h.M.MsgsReceived.Add(1)
	}
	h.pending++
	return m
}

// ReceiveCtx is Receive with deadline/cancellation support.
func (h *DuplexHandler) ReceiveCtx(ctx context.Context) (Msg, error) {
	var m Msg
	var err error
	switch h.Alg {
	case BSS:
		m, err = spinDequeueCtx(ctx, h.A, h.Rcv)
	case BSW:
		m, err = consumerWaitCtx(ctx, h.Rcv, h.A, nil)
	case BSWY:
		if got, ok := h.Rcv.TryDequeue(); ok {
			m = got
			break
		}
		h.A.Yield()
		m, err = consumerWaitCtx(ctx, h.Rcv, h.A, nil)
	case BSLS, BSA:
		h.spinRcv()
		m, err = consumerWaitCtx(ctx, h.Rcv, h.A, nil)
	default:
		return Msg{}, ErrUnknownAlgorithm
	}
	if err != nil {
		return Msg{}, err
	}
	if h.M != nil {
		h.M.MsgsReceived.Add(1)
	}
	h.pending++
	return m, nil
}

// Reply sends the response on the connection.
func (h *DuplexHandler) Reply(m Msg) {
	if h.pending > 0 {
		h.pending--
	}
	if h.Alg == BSS {
		busySpinUntil(h.A, h.Snd, func() bool { return h.Snd.TryEnqueue(m) })
		return
	}
	if !enqueueOrSleepObs(h.Snd, h.A, m, h.Obs) {
		return
	}
	wakeConsumer(h.Snd, h.A)
}

// ReplyCtx is Reply with deadline/cancellation support and the
// double-reply audit: replying with no request outstanding returns
// ErrDoubleReply.
func (h *DuplexHandler) ReplyCtx(ctx context.Context, m Msg) error {
	if h.pending <= 0 {
		return ErrDoubleReply
	}
	if h.Alg == BSS {
		if err := spinEnqueueCtx(ctx, h.A, h.Snd, m); err != nil {
			return err
		}
		h.pending--
		return nil
	}
	if err := enqueueOrSleepCtxObs(ctx, h.Snd, h.A, m, h.M, nil, h.Obs); err != nil {
		return err
	}
	h.pending--
	wakeConsumer(h.Snd, h.A)
	return nil
}

// ServeConn runs the echo loop for one connection until the client
// disconnects (or the system shuts down), returning the number of data
// requests served.
func (h *DuplexHandler) ServeConn(work func(*Msg)) (served int64) {
	for {
		m := h.Receive()
		switch m.Op {
		case OpShutdown:
			if m.Client < 0 {
				return served
			}
			h.Reply(m)
		case OpDisconnect:
			h.Reply(m)
			return served
		case OpWork:
			if work != nil {
				work(&m)
			}
			served++
			h.Reply(m)
		default: // OpConnect, OpEcho
			if m.Op != OpConnect {
				served++
			}
			h.Reply(m)
		}
	}
}

// ServeConnCtx is ServeConn with deadline/cancellation support.
func (h *DuplexHandler) ServeConnCtx(ctx context.Context, work func(*Msg)) (served int64, err error) {
	for {
		m, err := h.ReceiveCtx(ctx)
		if err == ErrShutdown {
			return served, nil
		}
		if err != nil {
			return served, err
		}
		switch m.Op {
		case OpDisconnect:
			h.Reply(m)
			return served, nil
		case OpWork:
			if work != nil {
				work(&m)
			}
			served++
			h.Reply(m)
		default:
			if m.Op != OpConnect {
				served++
			}
			h.Reply(m)
		}
	}
}
