package protomodel

import (
	"strings"
	"testing"
	"testing/quick"
)

func check(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFullProtocolIsSafe verifies the complete BSW protocol (Figure 5):
// no interleaving deadlocks, every message is consumed, and the
// semaphore count stays bounded regardless of producer count.
func TestFullProtocolIsSafe(t *testing.T) {
	for producers := 1; producers <= 3; producers++ {
		for msgs := 1; msgs <= 3; msgs++ {
			res := check(t, FullProtocol(producers, msgs))
			if res.Deadlock {
				t.Errorf("p=%d m=%d: deadlock:\n%v", producers, msgs, res.DeadlockPath)
			}
			if !res.AllConsumed {
				t.Errorf("p=%d m=%d: some terminal state lost messages", producers, msgs)
			}
			if res.MaxSem > producers {
				t.Errorf("p=%d m=%d: semaphore reached %d", producers, msgs, res.MaxSem)
			}
		}
	}
}

// TestInterleaving1LostWakeup verifies the first race of Figure 4: with
// an event-style (non-pending) wake-up, a producer can issue the wake
// before the consumer sleeps and the consumer sleeps forever. Counting
// semaphores fix it because the wake-up remains pending.
func TestInterleaving1LostWakeup(t *testing.T) {
	broken := FullProtocol(1, 2)
	broken.CountingSem = false
	res := check(t, broken)
	if !res.Deadlock {
		t.Fatal("event-style wakeup must admit a lost-wakeup deadlock")
	}
	if len(res.DeadlockPath) == 0 {
		t.Fatal("expected a counterexample trace")
	}

	fixed := FullProtocol(1, 2)
	res = check(t, fixed)
	if res.Deadlock {
		t.Fatalf("counting semaphores must prevent the lost wakeup; trace:\n%v", res.DeadlockPath)
	}
}

// TestInterleaving2MultipleWakeups verifies the second race: without
// test-and-set on the producer side, concurrent producers both observe
// awake==0 and both issue V, so the semaphore count accumulates beyond
// one pending wake-up — the overflow path the authors hit in their first
// implementation. The TAS fix bounds it.
func TestInterleaving2MultipleWakeups(t *testing.T) {
	broken := FullProtocol(3, 2)
	broken.ProducerTAS = false
	res := check(t, broken)
	if res.MaxSem < 2 {
		t.Fatalf("plain-read producers must accumulate wakeups; max sem = %d", res.MaxSem)
	}
	if res.Deadlock {
		// The race is a performance problem, not a safety one — the
		// paper: "this race condition is not necessarily harmful".
		t.Fatalf("multiple wakeups must not deadlock; trace:\n%v", res.DeadlockPath)
	}

	fixed := FullProtocol(3, 2)
	res = check(t, fixed)
	if res.MaxSem > 1 {
		t.Fatalf("with producer TAS at most one wakeup may be pending; max sem = %d", res.MaxSem)
	}
}

// TestInterleaving3WakeupWithoutSleep verifies the third race: a
// producer wakes a consumer that did not need to sleep (its second
// dequeue succeeded). Without the consumer-side drain the count is left
// pending and accumulates over time; with the drain the consumer
// consumes the redundant V immediately.
func TestInterleaving3WakeupWithoutSleep(t *testing.T) {
	// Without the drain, a pending V survives into the next cycle even
	// with a single producer.
	broken := FullProtocol(1, 3)
	broken.ConsumerDrain = false
	res := check(t, broken)
	if res.Deadlock {
		t.Fatalf("missing drain must not deadlock; trace:\n%v", res.DeadlockPath)
	}
	if !res.AllConsumed {
		t.Fatal("missing drain must not lose messages")
	}
	if res.MaxSem < 1 {
		t.Fatal("expected a redundant pending wakeup to be observable")
	}

	fixed := FullProtocol(1, 3)
	fres := check(t, fixed)
	if fres.MaxSem > 1 {
		t.Fatalf("full protocol: max sem = %d", fres.MaxSem)
	}
}

// TestInterleaving4SecondDequeueRequired verifies the fourth time-line
// of Figure 4: without step C.3 the producer can check the awake flag
// after the consumer's failed dequeue but before the flag is cleared,
// skip the wake-up, and leave the consumer asleep forever.
func TestInterleaving4SecondDequeueRequired(t *testing.T) {
	broken := FullProtocol(1, 1)
	broken.UseC3 = false
	res := check(t, broken)
	if !res.Deadlock {
		t.Fatal("dropping step C.3 must admit a sleep-forever deadlock")
	}

	fixed := FullProtocol(1, 1)
	res = check(t, fixed)
	if res.Deadlock {
		t.Fatalf("full protocol must not deadlock; trace:\n%v", res.DeadlockPath)
	}
}

// TestSemAccumulationGrowsWithProducers quantifies the Interleaving 2
// accumulation: the maximum pending count grows with the number of
// racing producers when the TAS fix is absent.
func TestSemAccumulationGrowsWithProducers(t *testing.T) {
	prev := 0
	for producers := 1; producers <= 3; producers++ {
		cfg := FullProtocol(producers, 2)
		cfg.ProducerTAS = false
		res := check(t, cfg)
		if res.MaxSem < prev {
			t.Errorf("max sem decreased with more producers: %d -> %d", prev, res.MaxSem)
		}
		prev = res.MaxSem
	}
	if prev < 2 {
		t.Errorf("3 racing producers should accumulate >= 2 pending wakeups, got %d", prev)
	}
}

// TestCrashLastVDeadlocksWithoutSweeper verifies the peer-death hazard:
// a producer that dies after enqueueing (and, under TAS, after setting
// the awake flag) but before its V leaves the consumer blocked forever —
// and the flag it set makes every surviving producer skip its own V, so
// more producers do not help.
func TestCrashLastVDeadlocksWithoutSweeper(t *testing.T) {
	for producers := 1; producers <= 3; producers++ {
		cfg := FullProtocol(producers, 2)
		cfg.CrashLastV = true
		res := check(t, cfg)
		if !res.Deadlock {
			t.Errorf("p=%d: a crashed producer owing a V must admit a deadlock", producers)
		}
		if len(res.DeadlockPath) == 0 {
			t.Errorf("p=%d: expected a counterexample trace", producers)
		}
	}
}

// TestSweeperRescuesCrashLastV verifies the recovery claim the chaos
// harness tests end-to-end: with the sweeper's compensating V (lost-wake
// rescue + peer-death close), no interleaving of the crash deadlocks and
// every enqueued message — including the dead producer's last one — is
// still consumed.
func TestSweeperRescuesCrashLastV(t *testing.T) {
	for producers := 1; producers <= 3; producers++ {
		for msgs := 1; msgs <= 2; msgs++ {
			cfg := FullProtocol(producers, msgs)
			cfg.CrashLastV = true
			cfg.Sweeper = true
			res := check(t, cfg)
			if res.Deadlock {
				t.Errorf("p=%d m=%d: sweeper failed to rescue; trace:\n%v",
					producers, msgs, res.DeadlockPath)
			}
			if !res.AllConsumed {
				t.Errorf("p=%d m=%d: a terminal state lost messages", producers, msgs)
			}
			if res.MaxSem > producers+1 {
				t.Errorf("p=%d m=%d: compensation unbounded: max sem = %d",
					producers, msgs, res.MaxSem)
			}
		}
	}
}

// TestSweeperOnHealthyRunStaysBounded: a spurious rescue is harmless —
// with no crash at all the sweeper must not break safety or unbound the
// semaphore.
func TestSweeperOnHealthyRunStaysBounded(t *testing.T) {
	cfg := FullProtocol(2, 2)
	cfg.Sweeper = true
	res := check(t, cfg)
	if res.Deadlock {
		t.Fatalf("sweeper on a healthy run deadlocked; trace:\n%v", res.DeadlockPath)
	}
	if !res.AllConsumed {
		t.Fatal("sweeper on a healthy run lost messages")
	}
	if res.MaxSem > 3 {
		t.Fatalf("sweeper compensation unbounded on healthy run: max sem = %d", res.MaxSem)
	}
}

// TestConfigValidation exercises the input guards.
func TestConfigValidation(t *testing.T) {
	if _, err := Check(Config{Producers: 0, Msgs: 1}); err == nil {
		t.Error("0 producers accepted")
	}
	if _, err := Check(Config{Producers: 4, Msgs: 1}); err == nil {
		t.Error("4 producers accepted (model bound is 3)")
	}
	if _, err := Check(Config{Producers: 1, Msgs: 0}); err == nil {
		t.Error("0 msgs accepted")
	}
	if _, err := Check(Config{Producers: 1, Msgs: 5}); err == nil {
		t.Error("5 msgs accepted (model bound is 4)")
	}
}

// TestStateSpaceIsExplored sanity-checks that the checker explores a
// nontrivial state space and reaches terminal states.
func TestStateSpaceIsExplored(t *testing.T) {
	res := check(t, FullProtocol(2, 2))
	if res.States < 100 {
		t.Errorf("suspiciously small state space: %d", res.States)
	}
	if res.Terminal == 0 {
		t.Error("no terminal states reached")
	}
}

// TestQuickSafeConfigsNeverLoseMessages drives random protocol variants
// through the checker: any variant with counting semaphores and step C.3
// is deadlock-free and delivers every message, regardless of the other
// two fixes (they affect only the pending-wakeup accounting).
func TestQuickSafeConfigsNeverLoseMessages(t *testing.T) {
	check := func(producers, msgs uint8, producerTAS, consumerDrain bool) bool {
		cfg := Config{
			Producers:     1 + int(producers)%3,
			Msgs:          1 + int(msgs)%3,
			CountingSem:   true,
			UseC3:         true,
			ProducerTAS:   producerTAS,
			ConsumerDrain: consumerDrain,
		}
		res, err := Check(cfg)
		if err != nil {
			return false
		}
		return !res.Deadlock && res.AllConsumed
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlockTraceIsWellFormed: counterexample traces use the paper's
// step vocabulary.
func TestDeadlockTraceIsWellFormed(t *testing.T) {
	cfg := FullProtocol(1, 1)
	cfg.UseC3 = false
	res, err := Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlock || len(res.DeadlockPath) == 0 {
		t.Fatal("expected a deadlock trace")
	}
	for _, step := range res.DeadlockPath {
		if !strings.HasPrefix(step, "C.") && !strings.HasPrefix(step, "P") {
			t.Fatalf("unexpected step label %q", step)
		}
	}
}
