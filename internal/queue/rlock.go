package queue

import (
	"runtime"
	"sync/atomic"
)

// AnonOwner is the owner id used by callers that never crash (or whose
// crashes nobody recovers from): the plain Enqueue/Dequeue entry points.
// Anonymous holders are indistinguishable from one another and are never
// revoked.
const AnonOwner int32 = -1

// rlock is a generation-stamped, owner-tagged spinlock — the in-process
// analogue of a robust mutex. The single atomic word packs
//
//	[ generation : 32 | holder tag : 32 ]
//
// where holder tag 0 means free and tag = uint32(owner)+2 otherwise
// (the +2 keeps AnonOwner's tag non-zero). A normal release CASes the
// acquired word to {generation+1, free}; when a holder dies
// mid-critical-section, the sweeper revokes the lock the same way after
// repairing the structure the dead holder left half-mutated. The
// generation bump makes revocation visible: a release CAS by a holder
// whose lock was revoked out from under it fails instead of silently
// unlocking someone else's critical section. Generations are 32-bit and
// may wrap; a wrap-collision would require 2^32 acquisitions between a
// holder's acquire and release, which the bounded critical sections here
// cannot approach.
//
// Unlike sync.Mutex, a dead holder does not wedge the lock forever —
// that recoverability is the whole reason TwoLock uses this instead.
type rlock struct {
	word atomic.Uint64
}

func ownerTag(owner int32) uint64 { return uint64(uint32(owner) + 2) }

// Lock acquires the lock for owner, spinning (with escalation to
// Gosched so a same-P holder can run) until it is free. It returns the
// acquired word, which Unlock needs to detect revocation.
func (l *rlock) Lock(owner int32) uint64 {
	tag := ownerTag(owner)
	spins := 0
	for {
		h := l.word.Load()
		if h&0xFFFFFFFF == 0 {
			nh := h | tag
			if l.word.CompareAndSwap(h, nh) {
				return nh
			}
			continue
		}
		spins++
		if spins >= 32 {
			runtime.Gosched()
			spins = 0
		}
	}
}

// Unlock releases a lock acquired as word h. It reports false when the
// lock had been revoked (the holder was presumed dead while it was in
// fact alive); the caller must then treat the critical section as lost
// and not touch the protected structure further.
func (l *rlock) Unlock(h uint64) bool {
	return l.word.CompareAndSwap(h, (h>>32+1)<<32)
}

// HeldBy reports whether owner currently holds the lock.
func (l *rlock) HeldBy(owner int32) bool {
	return uint64(uint32(l.word.Load())) == ownerTag(owner)
}

// Revoke forcibly releases the lock if (and only if) owner holds it,
// bumping the generation so the dead holder's Unlock can never succeed
// afterwards. The caller must have repaired the protected structure
// first: between the HeldBy check and the CAS no third party can
// acquire, because the word still names the dead holder.
func (l *rlock) Revoke(owner int32) bool {
	h := l.word.Load()
	if uint64(uint32(h)) != ownerTag(owner) {
		return false
	}
	return l.word.CompareAndSwap(h, (h>>32+1)<<32)
}
