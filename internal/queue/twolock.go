package queue

import (
	"sync"

	"ulipc/internal/core"
	"ulipc/internal/shm"
)

// TwoLock is the Michael & Scott two-lock concurrent queue [Michael &
// Scott, PODC'96] over an offset-addressed node arena. A dummy node
// decouples the head and tail locks so enqueuers never contend with
// dequeuers; the fixed-size node pool provides flow control.
type TwoLock struct {
	pool *shm.Pool

	headMu sync.Mutex
	head   shm.Ref // dummy node; head.next is the first real element

	tailMu sync.Mutex
	tail   shm.Ref

	capacity int
}

// NewTwoLock builds a two-lock queue holding at most capacity messages.
func NewTwoLock(capacity int) (*TwoLock, error) {
	// One extra node for the dummy.
	pool, err := shm.NewPoolSize(capacity + 1)
	if err != nil {
		return nil, err
	}
	dummy, ok := pool.Alloc()
	if !ok {
		panic("queue: fresh pool exhausted")
	}
	pool.Arena().Node(dummy).SetNext(shm.NilRef)
	return &TwoLock{pool: pool, head: dummy, tail: dummy, capacity: capacity}, nil
}

// Cap implements Queue.
func (q *TwoLock) Cap() int { return q.capacity }

// Enqueue implements Queue.
func (q *TwoLock) Enqueue(m core.Msg) bool {
	node, ok := q.pool.Alloc()
	if !ok {
		return false // pool exhausted: queue full
	}
	a := q.pool.Arena()
	n := a.Node(node)
	n.SetMsg(m)
	n.SetNext(shm.NilRef)

	q.tailMu.Lock()
	a.Node(q.tail).SetNext(node)
	q.tail = node
	q.tailMu.Unlock()
	return true
}

// Dequeue implements Queue.
func (q *TwoLock) Dequeue() (core.Msg, bool) {
	a := q.pool.Arena()
	q.headMu.Lock()
	dummy := q.head
	first := a.Node(dummy).Next()
	if first == shm.NilRef {
		q.headMu.Unlock()
		return core.Msg{}, false
	}
	m := a.Node(first).Msg()
	q.head = first // first becomes the new dummy
	q.headMu.Unlock()
	q.pool.Free(dummy)
	return m, true
}

// Empty implements Queue.
func (q *TwoLock) Empty() bool {
	q.headMu.Lock()
	first := q.pool.Arena().Node(q.head).Next()
	q.headMu.Unlock()
	return first == shm.NilRef
}

// Len returns the number of queued messages (O(n); diagnostics only).
func (q *TwoLock) Len() int {
	a := q.pool.Arena()
	q.headMu.Lock()
	defer q.headMu.Unlock()
	n := 0
	for r := a.Node(q.head).Next(); r != shm.NilRef; r = a.Node(r).Next() {
		n++
	}
	return n
}
