package obs

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies a flight-recorder event.
type EventKind uint8

// The recorded IPC event kinds.
const (
	EvNone     EventKind = iota
	EvSend               // client enqueued a request (arg: sequence number)
	EvRecv               // client received the matching reply (arg: sequence number)
	EvBlock              // a participant parked on a semaphore (arg: blocked ns)
	EvWake               // a V handed a token to (or signalled) a sleeper (arg: semaphore id)
	EvRetry              // producer found the queue full and backed off (arg: client id)
	EvCancel             // a cancellable wait ended by explicit cancel
	EvTimeout            // a cancellable wait ended by deadline expiry
	EvShutdown           // the system entered a shutdown phase (arg: phase 1..5)
	EvCrash              // an injected crash killed an actor (arg: fault point)
	EvPeerDead           // the sweeper declared an actor dead (arg: actor id)
	EvReclaim            // the sweeper reclaimed a lock or orphaned node (arg: count)
	EvRescue             // the sweeper issued a rescue V for a lost wake (arg: sem id)
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvBlock:
		return "block"
	case EvWake:
		return "wake"
	case EvRetry:
		return "retry"
	case EvCancel:
		return "cancel"
	case EvTimeout:
		return "timeout"
	case EvShutdown:
		return "shutdown"
	case EvCrash:
		return "crash"
	case EvPeerDead:
		return "peer-dead"
	case EvReclaim:
		return "reclaim"
	case EvRescue:
		return "rescue"
	}
	return fmt.Sprintf("ev(%d)", uint8(k))
}

// Event is one recovered flight-recorder entry.
type Event struct {
	Seq    uint64 // global event sequence number (1-based)
	TimeNS int64  // nanoseconds since the recorder was created
	Kind   EventKind
	Actor  int32 // registered actor id (-1 if unattributed)
	Arg    int64 // kind-specific detail
}

// recSlot is one ring entry. Every field is an atomic so concurrent
// Note/Snapshot stay race-detector clean; the seq field doubles as a
// seqlock — it is zeroed before the payload is written and restored
// after, so a reader that observes the same non-zero seq before and
// after reading the payload holds a consistent event.
type recSlot struct {
	seq  atomic.Uint64
	time atomic.Int64
	meta atomic.Uint64 // kind<<32 | uint32(actor)
	arg  atomic.Int64
}

// FlightRecorder is a bounded in-memory ring of recent IPC events,
// modeled on internal/trace's Recorder but safe for concurrent writers
// and allocation-free on the hot path: Note claims a slot with one
// atomic increment and writes four atomic words. The ring keeps the
// most recent capacity events; older entries are overwritten. Intended
// use: attach via Config.RecorderCap, dump on a watchdog trip or
// SIGQUIT to see the final interleaving before a stall.
//
// Consistency: a slot being overwritten while Snapshot reads it is
// detected by the per-slot seqlock and skipped or retried. Two writers
// a full ring apart racing on one slot can in principle interleave
// their stores; the seqlock detects the torn write unless the stores
// interleave into a self-consistent view, which requires the ring to
// wrap during a four-word write — acceptable for a diagnostic ring.
type FlightRecorder struct {
	mask  uint64
	next  atomic.Uint64
	base  time.Time
	slots []recSlot
}

// NewFlightRecorder builds a recorder holding the most recent capacity
// events (rounded up to a power of two, minimum 64).
func NewFlightRecorder(capacity int) *FlightRecorder {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &FlightRecorder{
		mask:  uint64(n - 1),
		base:  time.Now(),
		slots: make([]recSlot, n),
	}
}

// Note records one event. Nil-safe and allocation-free.
func (r *FlightRecorder) Note(k EventKind, actor int32, arg int64) {
	if r == nil {
		return
	}
	seq := r.next.Add(1)
	s := &r.slots[seq&r.mask]
	s.seq.Store(0) // invalidate for concurrent readers
	s.time.Store(time.Since(r.base).Nanoseconds())
	s.meta.Store(uint64(k)<<32 | uint64(uint32(actor)))
	s.arg.Store(arg)
	s.seq.Store(seq)
}

// Len returns the total number of events ever noted (not the ring
// occupancy).
func (r *FlightRecorder) Len() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Cap returns the ring capacity.
func (r *FlightRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Snapshot returns the currently held events in sequence order. Safe
// to call concurrently with writers; slots being overwritten mid-read
// are skipped.
func (r *FlightRecorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		for attempt := 0; attempt < 3; attempt++ {
			s1 := s.seq.Load()
			if s1 == 0 {
				break // empty or being written right now
			}
			t := s.time.Load()
			m := s.meta.Load()
			a := s.arg.Load()
			if s.seq.Load() != s1 {
				continue // torn read: writer struck mid-copy, retry
			}
			out = append(out, Event{
				Seq:    s1,
				TimeNS: t,
				Kind:   EventKind(m >> 32),
				Actor:  int32(uint32(m)),
				Arg:    a,
			})
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump renders the held events chronologically, one per line, in the
// same spirit as internal/trace.Recorder.Render. name resolves actor
// ids (nil prints raw ids).
func (r *FlightRecorder) Dump(w io.Writer, name func(int32) string) {
	if r == nil {
		return
	}
	evs := r.Snapshot()
	fmt.Fprintf(w, "flight recorder: %d events held (%d total, cap %d)\n",
		len(evs), r.Len(), r.Cap())
	for _, e := range evs {
		who := fmt.Sprintf("actor%d", e.Actor)
		if name != nil {
			who = name(e.Actor)
		}
		fmt.Fprintf(w, "%12.3fus %-10s %-8s arg=%d\n",
			float64(e.TimeNS)/1000, who, e.Kind, e.Arg)
	}
}

// Dump writes the observer's flight-recorder contents with actor names
// resolved; a no-op when no recorder is attached.
func (o *Observer) Dump(w io.Writer) {
	if o == nil || o.rec == nil {
		return
	}
	o.rec.Dump(w, o.ActorName)
}

// DumpOnSignal dumps the flight recorder (and a histogram summary) to
// stderr whenever one of the given signals arrives — SIGQUIT being the
// conventional choice, mirroring the Go runtime's own dump-on-SIGQUIT.
// Note that registering a handler stops the runtime's default
// kill-with-stacks behaviour for that signal while active. The returned
// stop function unregisters the handler and releases the goroutine.
func (o *Observer) DumpOnSignal(sig ...os.Signal) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sig...)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				fmt.Fprintf(os.Stderr, "== obs dump (signal) ==\n")
				o.Dump(os.Stderr)
				o.WritePrometheus(os.Stderr)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
	}
}
