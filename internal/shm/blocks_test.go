package shm

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestBlockPoolValidation(t *testing.T) {
	if _, err := NewBlockPool(nil, 4); err == nil {
		t.Error("empty classes accepted")
	}
	if _, err := NewBlockPool([]int{64, 32}, 4); err == nil {
		t.Error("descending classes accepted")
	}
	if _, err := NewBlockPool([]int{64, 64}, 4); err == nil {
		t.Error("duplicate classes accepted")
	}
	if _, err := NewBlockPool([]int{64}, 0); err == nil {
		t.Error("zero count accepted")
	}
}

func TestBlockAllocPicksSmallestClass(t *testing.T) {
	p, err := NewBlockPool([]int{64, 256, 1024}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, buf, ok := p.Alloc(100)
	if !ok {
		t.Fatal("alloc failed")
	}
	if len(buf) != 256 {
		t.Fatalf("got a %d-byte block, want the 256 class", len(buf))
	}
	got, err := p.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[0] {
		t.Fatal("Get returned different storage")
	}
	if err := p.Free(ref); err != nil {
		t.Fatal(err)
	}
}

func TestBlockAllocTooLarge(t *testing.T) {
	p, _ := NewDefaultBlockPool(2)
	if _, _, ok := p.Alloc(p.MaxBlock() + 1); ok {
		t.Fatal("oversized alloc succeeded")
	}
	if _, _, ok := p.Alloc(-1); ok {
		t.Fatal("negative alloc succeeded")
	}
}

func TestBlockExhaustionFallsToLargerClass(t *testing.T) {
	p, err := NewBlockPool([]int{64, 256}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1, b1, ok := p.Alloc(10)
	if !ok || len(b1) != 64 {
		t.Fatalf("first alloc: %v %d", ok, len(b1))
	}
	// The 64 class is exhausted: the request spills into the 256 class.
	r2, b2, ok := p.Alloc(10)
	if !ok || len(b2) != 256 {
		t.Fatalf("spill alloc: %v %d", ok, len(b2))
	}
	if _, _, ok := p.Alloc(10); ok {
		t.Fatal("alloc succeeded with every class exhausted")
	}
	p.Free(r1)
	p.Free(r2)
	if p.FreeCount(10) != 1 || p.FreeCount(100) != 1 {
		t.Fatalf("free counts: %d %d", p.FreeCount(10), p.FreeCount(100))
	}
}

func TestBlockDataIsolation(t *testing.T) {
	p, _ := NewBlockPool([]int{16}, 4)
	refs := make([]BlockRef, 4)
	for i := range refs {
		ref, buf, ok := p.Alloc(16)
		if !ok {
			t.Fatal("alloc failed")
		}
		refs[i] = ref
		for j := range buf {
			buf[j] = byte(i)
		}
	}
	for i, ref := range refs {
		buf, err := p.Get(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, bytes.Repeat([]byte{byte(i)}, 16)) {
			t.Fatalf("block %d corrupted: %v", i, buf)
		}
	}
}

func TestBlockBadRefs(t *testing.T) {
	p, _ := NewDefaultBlockPool(2)
	if _, err := p.Get(packBlock(200, 0)); err == nil {
		t.Error("bad class accepted by Get")
	}
	if _, err := p.Get(packBlock(0, 99)); err == nil {
		t.Error("bad slot accepted by Get")
	}
	if err := p.Free(packBlock(200, 0)); err == nil {
		t.Error("bad class accepted by Free")
	}
	if err := p.Free(packBlock(0, 99)); err == nil {
		t.Error("bad slot accepted by Free")
	}
}

func TestBlockRefPacking(t *testing.T) {
	check := func(class uint8, slot uint32) bool {
		s := int(slot & 0xFFFFFF)
		c, g := unpackBlock(packBlock(int(class), s))
		return c == int(class) && g == s
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// The backpressure counters: an exhausted class records the miss, the
// larger class that absorbs the request records the fallback.
func TestBlockFallbackExhaustCounters(t *testing.T) {
	p, err := NewBlockPool([]int{64, 256}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1, _, _ := p.Alloc(10) // takes the 64 class
	r2, _, _ := p.Alloc(10) // 64 exhausted: spills to 256
	if _, _, ok := p.Alloc(10); ok {
		t.Fatal("alloc succeeded with every class exhausted")
	}
	st := p.Stats()
	if st[0].Exhausts != 2 {
		t.Errorf("class 64 exhausts = %d, want 2 (spill + total miss)", st[0].Exhausts)
	}
	if st[1].Fallbacks != 1 {
		t.Errorf("class 256 fallbacks = %d, want 1", st[1].Fallbacks)
	}
	if st[1].Exhausts != 1 {
		t.Errorf("class 256 exhausts = %d, want 1 (the total miss)", st[1].Exhausts)
	}
	if st[0].Free != 0 || st[1].Free != 0 {
		t.Errorf("free counts = %d/%d, want 0/0", st[0].Free, st[1].Free)
	}
	p.Free(r1)
	p.Free(r2)
	st = p.Stats()
	if st[0].Free != 1 || st[1].Free != 1 {
		t.Errorf("free counts after release = %d/%d, want 1/1", st[0].Free, st[1].Free)
	}
}

// ABA regression for the tagged-head Treiber pop: a pop that read the
// head before an A-pop/B-pop/A-push interleaving must fail its CAS even
// though the top slot is A again — only the tag distinguishes the two
// states. An untagged head would install the stale next pointer (B,
// which is now allocated) and hand the same block out twice.
func TestBlockTaggedHeadABA(t *testing.T) {
	p, err := NewBlockPool([]int{32}, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := &p.classes[0]

	// The stalled pop's view of the world.
	h0 := c.ctl.Head.Load()
	tag0, top0 := unpackHead(h0)
	next0 := c.next[top0].Load()

	// Interleaving: A and B pop, A is pushed back.
	a, ok := c.pop()
	if !ok || a != top0 {
		t.Fatalf("first pop got %d/%v, want top %d", a, ok, top0)
	}
	b, ok := c.pop()
	if !ok || b != next0 {
		t.Fatalf("second pop got %d/%v, want next %d", b, ok, next0)
	}
	c.push(a)

	// The ABA shape is real: the top slot matches the stale view...
	_, topNow := unpackHead(c.ctl.Head.Load())
	if topNow != top0 {
		t.Fatalf("head top = %d, want %d (ABA scenario not reconstructed)", topNow, top0)
	}
	// ...so only the tag can reject the stale CAS. If this succeeds, the
	// still-allocated B becomes the free-list head: a double allocation.
	if c.ctl.Head.CompareAndSwap(h0, packHead(tag0+1, next0)) {
		t.Fatal("stale pop CAS succeeded across an A-B-A interleaving")
	}
	c.push(b)
	if got := p.TotalFree(); got != 4 {
		t.Fatalf("total free = %d, want 4", got)
	}
}

// Claim-vs-reclaim is the lease discipline's race: when a peer dies
// mid-flight, its receiver's Claim and the sweeper's ReclaimOwner must
// pick exactly one winner per block — never a double free, never a
// use-after-reclaim.
func TestBlockClaimReclaimRace(t *testing.T) {
	const owner, claimer = 1, 2
	for round := 0; round < 50; round++ {
		p, err := NewBlockPool([]int{32}, 16)
		if err != nil {
			t.Fatal(err)
		}
		refs := make([]BlockRef, 16)
		for i := range refs {
			ref, _, ok := p.Alloc(32)
			if !ok {
				t.Fatal("alloc failed")
			}
			if err := p.Lease(ref, owner); err != nil {
				t.Fatal(err)
			}
			refs[i] = ref
		}
		var wg sync.WaitGroup
		var claimed, reclaimed int64
		wg.Add(2)
		go func() { // the surviving receiver resolving in-flight payloads
			defer wg.Done()
			for _, ref := range refs {
				if p.Claim(ref, claimer) {
					claimed++
					if err := p.Free(ref); err != nil {
						t.Errorf("free after claim: %v", err)
					}
				}
			}
		}()
		go func() { // the sweeper declaring the owner dead
			defer wg.Done()
			reclaimed = int64(p.ReclaimOwner(owner))
		}()
		wg.Wait()
		if claimed+reclaimed != 16 {
			t.Fatalf("round %d: claimed %d + reclaimed %d, want 16", round, claimed, reclaimed)
		}
		if free := p.TotalFree(); free != 16 {
			t.Fatalf("round %d: total free = %d, want 16", round, free)
		}
	}
}

// Claim after the sweeper cleared the tag must refuse: the slot may
// already be reallocated to someone else.
func TestBlockClaimAfterReclaim(t *testing.T) {
	p, _ := NewBlockPool([]int{32}, 2)
	ref, _, _ := p.Alloc(32)
	p.Lease(ref, 1)
	if n := p.ReclaimOwner(1); n != 1 {
		t.Fatalf("reclaimed %d, want 1", n)
	}
	if p.Claim(ref, 2) {
		t.Fatal("claim succeeded on a reclaimed block")
	}
	if got, leased := p.Owner(ref); leased {
		t.Fatalf("reclaimed block still leased to %d", got)
	}
}

func TestBlockConcurrentStress(t *testing.T) {
	p, err := NewBlockPool([]int{32}, 64)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				ref, buf, ok := p.Alloc(32)
				if !ok {
					continue
				}
				buf[0] = byte(g)
				if buf[0] != byte(g) {
					t.Errorf("lost write")
				}
				if err := p.Free(ref); err != nil {
					t.Errorf("free: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if p.FreeCount(32) != 64 {
		t.Fatalf("free count = %d, want 64", p.FreeCount(32))
	}
}

// Cross-class stress under the race detector: goroutines allocate
// random sizes (so spills cross class boundaries mid-run), write a
// goroutine-unique pattern, re-verify it, and free — single blocks and
// FreeClassN batches mixed. The arena must end exactly full, with every
// class's free counter restored.
func TestBlockConcurrentCrossClassStress(t *testing.T) {
	p, err := NewBlockPool([]int{32, 128, 512}, 24)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{8, 32, 100, 128, 400, 512}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var batch []BlockRef
			var batchClass int
			for i := 0; i < 2000; i++ {
				ref, buf, ok := p.Alloc(sizes[(g+i)%len(sizes)])
				if !ok {
					continue // exhaustion is backpressure, not an error
				}
				for j := range buf {
					buf[j] = byte(g)
				}
				if buf[0] != byte(g) || buf[len(buf)-1] != byte(g) {
					t.Errorf("g%d: lost write", g)
				}
				// Batch same-class refs for FreeClassN; free the rest
				// singly, so both return paths run concurrently.
				class, _ := unpackBlock(ref)
				switch {
				case len(batch) == 0:
					batch, batchClass = append(batch, ref), class
				case class == batchClass && len(batch) < 4:
					batch = append(batch, ref)
				default:
					if err := p.FreeClassN(batch); err != nil {
						t.Errorf("g%d: FreeClassN: %v", g, err)
					}
					batch, batchClass = append(batch[:0], ref), class
				}
			}
			if err := p.FreeClassN(batch); err != nil {
				t.Errorf("g%d: final FreeClassN: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if free := p.TotalFree(); free != int64(p.Capacity()) {
		t.Fatalf("total free = %d, want %d", free, p.Capacity())
	}
	for _, st := range p.Stats() {
		if st.Free != int64(st.Count) {
			t.Fatalf("class %d free = %d, want %d", st.Size, st.Free, st.Count)
		}
	}
}
