package workload

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/fault"
	"ulipc/internal/livebind"
	"ulipc/internal/metrics"
	"ulipc/internal/queue"
)

// The chaos harness: the live client/server workload run under seeded
// fault injection with the recovery sweeper on. A cell passes when it
// stays LIVE — every participant either completes its script, dies to
// an injected crash, or observes its peer's death and returns — and
// LEAK-FREE: after teardown every shm pool holds exactly the refs it
// started with, crashes notwithstanding. Throughput is explicitly not
// the point; the cell's wall-clock is dominated by recovery latency.

// ChaosConfig describes one chaos cell. The zero value of every rate
// disables that fault class; Seed makes the cell reproducible.
type ChaosConfig struct {
	Alg      core.Algorithm
	Clients  int
	Msgs     int // per client
	QueueCap int
	MaxSpin  int

	// Seed drives every per-actor fault stream; the same seed and
	// topology replay the same faults.
	Seed int64

	// CrashRate is the per-draw probability of an injected crash at each
	// crashpoint (queue critical sections, semaphore ops, actor bodies).
	CrashRate float64

	// MaxCrashes caps the total injected crashes (the crash budget);
	// 0 defaults to half the participants so the cell keeps survivors.
	MaxCrashes int

	// DropRate/DupRate/DelayRate mutate wake-up Vs: swallowed, doubled,
	// or delivered late.
	DropRate  float64
	DupRate   float64
	DelayRate float64

	// Watchdog bounds the whole cell (default 30s): if any participant
	// is still blocked past it, the cell is deadlocked — the failure the
	// recovery layer exists to prevent.
	Watchdog time.Duration

	// SweepInterval is the recovery sweeper period (default 200µs).
	SweepInterval time.Duration

	// PaySize, when > 0, attaches a leased payload block to every echo:
	// the system is built with a slab arena and the cell additionally
	// audits lease conservation — after teardown every block must be
	// back in the arena, crashes mid-lease notwithstanding.
	PaySize int
}

func (c *ChaosConfig) defaults() error {
	if c.Clients < 1 {
		return fmt.Errorf("workload: chaos cell needs at least 1 client")
	}
	if c.Msgs < 1 {
		return fmt.Errorf("workload: chaos cell needs at least 1 message")
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.MaxSpin <= 0 {
		c.MaxSpin = core.DefaultMaxSpin
	}
	if c.Watchdog <= 0 {
		c.Watchdog = 30 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = 200 * time.Microsecond
	}
	if c.MaxCrashes <= 0 {
		c.MaxCrashes = (c.Clients + 1) / 2
	}
	return nil
}

// ChaosResult is one cell's outcome, JSON-ready for the chaos report.
type ChaosResult struct {
	Label   string `json:"label"`
	Alg     string `json:"alg"`
	Clients int    `json:"clients"`
	Seed    int64  `json:"seed"`

	Completed int64 `json:"completed"` // validated round trips
	Aborted   int   `json:"aborted"`   // clients ended early (crash or peer death)

	// Injected fault tallies (from the injector).
	Crashes    int64 `json:"crashes"`
	WakeDrops  int64 `json:"wake_drops"`
	WakeDups   int64 `json:"wake_dups"`
	WakeDelays int64 `json:"wake_delays"`

	// Recovery tallies (from the sweeper's counters).
	PeerDeaths   int64 `json:"peer_deaths"`
	LockReclaims int64 `json:"lock_reclaims"`
	OrphanMsgs   int64 `json:"orphan_msgs"`
	OrphanRefs   int64 `json:"orphan_refs"`
	OrphanBlocks int64 `json:"orphan_blocks,omitempty"`
	WakeRescues  int64 `json:"wake_rescues"`

	// Failure modes. Deadlocked: the watchdog expired with participants
	// still blocked. PoolLeaked: refs missing from (positive) or
	// double-freed into (negative) the shm pools after teardown.
	// BlockLeaked is the payload analogue — blocks missing from the slab
	// arena after teardown and reclaim (payload cells only).
	Deadlocked  bool   `json:"deadlocked"`
	PoolLeaked  int64  `json:"pool_leaked"`
	BlockLeaked int64  `json:"block_leaked,omitempty"`
	Error       string `json:"error,omitempty"`

	// Overload tallies, set by the overload-kill cell (the kill lands
	// while admission rejects and deadline sheds are in flight).
	Sheds     int64 `json:"sheds,omitempty"`
	Overloads int64 `json:"overloads,omitempty"`

	// PaySize is set on payload cells (0 = bare 24-byte messages).
	PaySize int `json:"pay_size,omitempty"`

	// Shards is set on server-group shard-kill cells (0 = classic cell).
	Shards int `json:"shards,omitempty"`
}

// RunChaosCell executes one seeded chaos cell and returns its result.
// The returned error is non-nil when the cell violated a hard
// invariant: deadlock, a pool leak, a validation mismatch, or a panic
// that was not an injected fault.
func RunChaosCell(cfg ChaosConfig) (ChaosResult, error) {
	if err := cfg.defaults(); err != nil {
		return ChaosResult{}, err
	}
	plan := fault.Plan{
		Seed:         cfg.Seed,
		DropWake:     cfg.DropRate,
		DupWake:      cfg.DupRate,
		DelayWake:    cfg.DelayRate,
		WakeDelayDur: 100 * time.Microsecond,
		MaxCrashes:   cfg.MaxCrashes,
	}
	for _, p := range []fault.Point{
		fault.PtAfterAlloc, fault.PtEnqueueLocked, fault.PtDequeueLocked,
		fault.PtBeforeFree, fault.PtWake, fault.PtBlock, fault.PtBody,
	} {
		plan.Crash[p] = cfg.CrashRate
	}
	inj := fault.NewInjector(plan)
	ms := metrics.NewSet()

	// Two-lock queues on BOTH legs: the chaos cell wants every enqueue
	// and dequeue walking the recoverable critical sections, so the SPSC
	// reply default (no locks, nothing to crash in) is deliberately
	// overridden.
	maxSpin, _ := tuneFor(cfg.Alg, cfg.MaxSpin, 0)
	blockSlots := 0
	if cfg.PaySize > 0 {
		blockSlots = 4 * (cfg.Clients + 1)
		if blockSlots < 32 {
			blockSlots = 32
		}
	}
	sys, err := livebind.NewSystem(livebind.Options{
		Alg:        cfg.Alg,
		MaxSpin:    maxSpin,
		Clients:    cfg.Clients,
		QueueCap:   cfg.QueueCap,
		QueueKind:  queue.KindTwoLock,
		BlockSlots: blockSlots,
		SleepScale: time.Millisecond,
		Metrics:    ms,
	},
		livebind.WithReplyKind(queue.KindTwoLock),
		livebind.WithFaults(inj),
		livebind.WithRecovery(livebind.RecoveryOptions{SweepInterval: cfg.SweepInterval}),
	)
	if err != nil {
		return ChaosResult{}, err
	}

	label := fmt.Sprintf("chaos/%s/%dc/seed%d", cfg.Alg, cfg.Clients, cfg.Seed)
	if cfg.PaySize > 0 {
		label += fmt.Sprintf("/p%d", cfg.PaySize)
	}
	res := ChaosResult{
		Label:   label,
		Alg:     cfg.Alg.String(),
		Clients: cfg.Clients,
		Seed:    cfg.Seed,
		PaySize: cfg.PaySize,
	}
	rootCtx, cancel := context.WithTimeout(context.Background(), cfg.Watchdog)
	defer cancel()

	var (
		mu        sync.Mutex
		completed int64
		aborted   int
		deadlock  bool
		hardErrs  []string
	)
	noteErr := func(format string, args ...any) {
		mu.Lock()
		if len(hardErrs) < 8 {
			hardErrs = append(hardErrs, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}
	// endOfRound classifies a client's failed protocol call: injected
	// peer death and shutdown end the participant gracefully; a watchdog
	// expiry is the deadlock the cell exists to detect; anything else is
	// a bug.
	endOfRound := func(who string, err error) {
		switch {
		case errors.Is(err, core.ErrPeerDead), errors.Is(err, core.ErrShutdown):
			mu.Lock()
			aborted++
			mu.Unlock()
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			mu.Lock()
			deadlock = true
			mu.Unlock()
		default:
			noteErr("%s: %v", who, err)
		}
	}
	// survive wraps a participant body: an injected crash panic is
	// reported to the lifetable (the FUTEX_OWNER_DIED analogue) and the
	// goroutine dies in place; any other panic is a real bug.
	survive := func(body func()) {
		defer func() {
			if v := recover(); v != nil {
				if !sys.ReportCrash(v) {
					panic(v)
				}
			}
		}()
		body()
	}

	// The server's exit is NOT a liveness criterion: a crashed client
	// never disconnects, so a correct server legitimately waits for work
	// until the harness cancels it. Only non-ctx, non-peer-death server
	// errors are bugs.
	srv := sys.Server()
	// Payload cells route echoes through the OpWork handler so the
	// server side of the lease discipline (claim + re-attach) is under
	// fire too: a crash between the claim and the reply leaves the block
	// tagged by the server, which only the sweeper's owner walk can
	// recover.
	var work func(*core.Msg)
	if cfg.PaySize > 0 {
		work = func(m *core.Msg) {
			p, err := srv.Payload(*m)
			if err != nil {
				m.ClearBlock()
				return
			}
			m.AttachPayload(p)
		}
	}
	serverDone := make(chan struct{})
	go func() {
		defer close(serverDone)
		survive(func() {
			_, err := srv.ServeCtx(rootCtx, work)
			if err != nil && !errors.Is(err, core.ErrPeerDead) && !errors.Is(err, core.ErrShutdown) &&
				!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				noteErr("server: %v", err)
			}
		})
	}()

	// pos tracks each client's script position (last protocol call) so a
	// deadlocked cell can name who was stuck where — the first question
	// any chaos failure raises.
	pos := make([]string, cfg.Clients)
	setPos := func(i int, s string) { mu.Lock(); pos[i] = s; mu.Unlock() }

	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		cl, err := sys.Client(i)
		if err != nil {
			return res, err
		}
		wg.Add(1)
		go func(i int, cl *core.Client) {
			defer wg.Done()
			fh := cl.A.(*livebind.Actor).FH
			survive(func() {
				// An injected crash (panic) deliberately skips closePE so
				// the dead client strands its lease — the sweeper's owner
				// walk must recover it or the block audit fails the cell.
				var pe *payEcho
				if cfg.PaySize > 0 {
					pe = &payEcho{cl: cl, size: cfg.PaySize}
				}
				closePE := func() {
					if pe != nil {
						pe.close()
					}
				}
				setPos(i, "connect")
				if _, err := cl.SendCtx(rootCtx, core.Msg{Op: core.OpConnect}); err != nil {
					setPos(i, fmt.Sprintf("connect-err:%v", err))
					endOfRound(fmt.Sprintf("client%d connect", i), err)
					return
				}
				for j := 0; j < cfg.Msgs; j++ {
					fh.Crashpoint(fault.PtBody)
					setPos(i, fmt.Sprintf("send %d", j))
					m := core.Msg{Op: core.OpEcho, Seq: int32(j), Val: float64(j)}
					var ans core.Msg
					var err error
					if pe != nil {
						m.Op = core.OpWork
						ans, err = pe.echo(rootCtx, m)
					} else {
						ans, err = cl.SendCtx(rootCtx, m)
					}
					if err != nil {
						setPos(i, fmt.Sprintf("send %d err:%v", j, err))
						closePE()
						endOfRound(fmt.Sprintf("client%d send %d", i, j), err)
						return
					}
					if ans.Seq != int32(j) || ans.Val != float64(j) {
						noteErr("client%d: reply mismatch at %d: %+v", i, j, ans)
						closePE()
						return
					}
					mu.Lock()
					completed++
					mu.Unlock()
				}
				closePE()
				setPos(i, "disconnect")
				if _, err := cl.SendCtx(rootCtx, core.Msg{Op: core.OpDisconnect}); err != nil {
					setPos(i, fmt.Sprintf("disconnect-err:%v", err))
					endOfRound(fmt.Sprintf("client%d disconnect", i), err)
					return
				}
				setPos(i, "done")
			})
			mu.Lock()
			pos[i] += " [exited]"
			mu.Unlock()
		}(i, cl)
	}

	// Join the clients with a grace period past the watchdog: rootCtx
	// expiry should unblock everyone, so a client still stuck after the
	// grace is a hard hang even the context could not break. Then cancel
	// the root context to release the server (which may be correctly
	// waiting for crashed clients that will never disconnect) and hold it
	// to the same grace.
	joined := make(chan struct{})
	go func() { wg.Wait(); close(joined) }()
	select {
	case <-joined:
	case <-time.After(cfg.Watchdog + 5*time.Second):
		mu.Lock()
		deadlock = true
		hardErrs = append(hardErrs, "clients still blocked past watchdog+grace")
		mu.Unlock()
	}
	cancel()
	select {
	case <-serverDone:
	case <-time.After(5 * time.Second):
		mu.Lock()
		deadlock = true
		hardErrs = append(hardErrs, "server still blocked after cancellation")
		mu.Unlock()
	}

	shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
	serr := sys.Shutdown(shutCtx) // halts the sweeper after a final sweep
	shutCancel()
	if serr != nil && !errors.Is(serr, context.DeadlineExceeded) {
		noteErr("shutdown: %v", serr)
	}

	// Pool-leak audit: drain what teardown left queued, then every
	// two-lock pool must be whole again — capacity free refs (the +1 of
	// the pool is the queue's resident dummy). A dead actor's lock,
	// cached ref, or unlinked node that escaped recovery shows up here.
	pool := sys.Blocks()
	audit := func(ch *livebind.Channel) {
		tl, ok := ch.Queue().(*queue.TwoLock)
		if !ok {
			return
		}
		if pool != nil {
			// Teardown leftovers may still carry payload leases (a reply
			// to a crashed client the sweeper had no reason to drain):
			// claim-free them alongside their nodes, same race-safe rule
			// as the sweeper's own drain.
			const auditOwner = ^uint32(0)
			queue.DrainFunc(tl, func(m core.Msg) {
				if !m.HasBlock() {
					return
				}
				if ref, _ := m.Block(); pool.Claim(ref, auditOwner) {
					_ = pool.Free(ref)
				}
			})
		} else {
			queue.Drain(tl)
		}
		res.PoolLeaked += int64(tl.Cap()) - tl.Pool().FreeCount()
	}
	audit(sys.ReceiveChannel())
	for i := 0; i < cfg.Clients; i++ {
		audit(sys.ReplyChannel(i))
	}
	// Lease-conservation audit: with queues drained, crashes reclaimed
	// and caches spilled, every payload block must be back in the arena.
	if pool != nil {
		res.BlockLeaked = int64(pool.Capacity()) - pool.TotalFree()
	}

	counts := inj.Counts()
	total := ms.Total()
	res.Completed = completed
	res.Aborted = aborted
	res.Crashes = counts.Crashes
	res.WakeDrops = counts.WakeDrops
	res.WakeDups = counts.WakeDups
	res.WakeDelays = counts.WakeDelays
	res.PeerDeaths = total.PeerDeaths
	res.LockReclaims = total.LockReclaims
	res.OrphanMsgs = total.OrphanMsgs
	res.OrphanRefs = total.OrphanRefs
	res.OrphanBlocks = total.OrphanBlocks
	res.WakeRescues = total.WakeRescues
	res.Deadlocked = deadlock

	var fail []string
	if deadlock {
		mu.Lock()
		stuck := fmt.Sprintf("deadlocked: watchdog expired with participants blocked (clients: %v)", pos)
		mu.Unlock()
		fail = append(fail, stuck)
	}
	if res.PoolLeaked != 0 {
		fail = append(fail, fmt.Sprintf("pool leak: %d refs unaccounted for", res.PoolLeaked))
	}
	if res.BlockLeaked != 0 {
		fail = append(fail, fmt.Sprintf("payload leak: %d blocks unaccounted for", res.BlockLeaked))
	}
	fail = append(fail, hardErrs...)
	if len(fail) > 0 {
		res.Error = fmt.Sprintf("%v", fail)
		return res, fmt.Errorf("chaos cell %s: %v", res.Label, fail)
	}
	return res, nil
}

// RunChaosShardKill runs the server-group fault cell: a sharded system
// (strict lane ownership — stealing is off, so a dead thief cannot
// strand a live victim's messages) in which one shard is crashed
// mid-run. The cell passes when the blast radius is exactly the dead
// shard: every client homed to it observes ErrPeerDead (its parked
// send released by the recovery layer's compensating wake), every
// other client completes its full script through the surviving shards,
// and the dead shard's request lanes are drained by the sweeper's
// orphan pass. Deadlock anywhere fails the cell.
func RunChaosShardKill(cfg ChaosConfig, shards int) (ChaosResult, error) {
	if err := cfg.defaults(); err != nil {
		return ChaosResult{}, err
	}
	if shards < 2 {
		return ChaosResult{}, fmt.Errorf("workload: shard-kill cell needs at least 2 shards")
	}
	if cfg.Clients < shards {
		return ChaosResult{}, fmt.Errorf("workload: shard-kill cell needs a client per shard")
	}
	const batch = 8
	ms := metrics.NewSet()
	groupSpin, _ := tuneFor(cfg.Alg, cfg.MaxSpin, 0)
	sys, err := livebind.NewSystemGroup(shards, livebind.Options{
		Alg:        cfg.Alg,
		MaxSpin:    groupSpin,
		Clients:    cfg.Clients,
		QueueCap:   cfg.QueueCap,
		SleepScale: time.Millisecond,
		NoSteal:    true,
		Metrics:    ms,
	},
		livebind.WithRecovery(livebind.RecoveryOptions{SweepInterval: cfg.SweepInterval}),
	)
	if err != nil {
		return ChaosResult{}, err
	}

	res := ChaosResult{
		Label:   fmt.Sprintf("chaos/shardkill/%s/%dc/%ds", cfg.Alg, cfg.Clients, shards),
		Alg:     cfg.Alg.String(),
		Clients: cfg.Clients,
		Seed:    cfg.Seed,
		Shards:  shards,
	}
	rootCtx, cancel := context.WithTimeout(context.Background(), cfg.Watchdog)
	defer cancel()

	var (
		mu        sync.Mutex
		completed int64
		aborted   int
		deadlock  bool
		hardErrs  []string
	)
	noteErr := func(format string, args ...any) {
		mu.Lock()
		if len(hardErrs) < 8 {
			hardErrs = append(hardErrs, fmt.Sprintf(format, args...))
		}
		mu.Unlock()
	}

	const victim = 0
	srvs, err := sys.ShardServers()
	if err != nil {
		return res, err
	}
	victimCtx, killVictim := context.WithCancel(rootCtx)
	defer killVictim()
	var swg sync.WaitGroup
	for sh, srv := range srvs {
		swg.Add(1)
		go func(sh int, sv *core.Server) {
			defer swg.Done()
			ctx := rootCtx
			if sh == victim {
				ctx = victimCtx
			}
			_, err := sv.ServeBatchCtx(ctx, nil, batch)
			if err != nil && !errors.Is(err, core.ErrPeerDead) && !errors.Is(err, core.ErrShutdown) &&
				!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
				noteErr("shard%d: %v", sh, err)
			}
		}(sh, srv)
	}

	// Client i is homed to shard i%shards by the hash picker. Clients of
	// the victim send one warm-up batch (proving the shard served), hold
	// at a gate while the harness crashes it, then send again — the send
	// that MUST surface ErrPeerDead. Survivor clients run their scripts
	// uninterrupted.
	warm := make(chan struct{}, cfg.Clients)
	killed := make(chan struct{})
	sendBatch := func(cl *core.Client, base, k int) error {
		msgs := make([]core.Msg, 0, k)
		for q := 0; q < k; q++ {
			msgs = append(msgs, core.Msg{Op: core.OpEcho, Seq: int32(base + q), Val: float64(base + q)})
		}
		out, err := cl.SendBatchCtx(rootCtx, msgs)
		if err != nil {
			return err
		}
		if len(out) != k {
			return fmt.Errorf("%d replies, want %d", len(out), k)
		}
		seen := make(map[int32]bool, k)
		for _, m := range out {
			if m.Client != cl.ID || m.Seq < int32(base) || m.Seq >= int32(base+k) ||
				m.Val != float64(m.Seq) || seen[m.Seq] {
				return fmt.Errorf("bad reply %+v", m)
			}
			seen[m.Seq] = true
		}
		mu.Lock()
		completed += int64(k)
		mu.Unlock()
		return nil
	}
	victimClients := 0
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		cl, err := sys.Client(i)
		if err != nil {
			return res, err
		}
		onVictim := i%shards == victim
		if onVictim {
			victimClients++
		}
		wg.Add(1)
		go func(i int, cl *core.Client, onVictim bool) {
			defer wg.Done()
			j := 0
			if onVictim {
				if err := sendBatch(cl, j, batch); err != nil {
					noteErr("client%d warm-up: %v", i, err)
					warm <- struct{}{}
					return
				}
				j += batch
				warm <- struct{}{}
				<-killed
			}
			for ; j < cfg.Msgs; j += batch {
				k := batch
				if j+k > cfg.Msgs {
					k = cfg.Msgs - j
				}
				if err := sendBatch(cl, j, k); err != nil {
					switch {
					case errors.Is(err, core.ErrPeerDead), errors.Is(err, core.ErrShutdown):
						mu.Lock()
						aborted++
						mu.Unlock()
						if !onVictim {
							noteErr("client%d (survivor, shard %d): spurious %v", i, i%shards, err)
						}
					case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
						mu.Lock()
						deadlock = true
						mu.Unlock()
					default:
						noteErr("client%d at %d: %v", i, j, err)
					}
					return
				}
			}
			if onVictim {
				// A victim client whose post-kill sends all succeeded saw
				// neither ErrPeerDead nor the recovery path — the kill
				// landed after its script; the cell proves nothing then.
				noteErr("client%d: completed despite its shard being killed", i)
			}
		}(i, cl, onVictim)
	}

	// Crash the victim once each of its clients has a served warm-up
	// batch: stop its serve loop, report the actor dead, and force a
	// sweep so recovery (peer-death marking, lane drain, compensating
	// client wakes) runs before the held clients send again.
	for w := 0; w < victimClients; w++ {
		select {
		case <-warm:
		case <-rootCtx.Done():
			mu.Lock()
			deadlock = true
			mu.Unlock()
		}
	}
	killVictim()
	vid := srvs[victim].A.(*livebind.Actor).ID
	sys.KillActor(vid)
	sys.SweepNow()
	close(killed)

	joined := make(chan struct{})
	go func() { wg.Wait(); close(joined) }()
	select {
	case <-joined:
	case <-time.After(cfg.Watchdog + 5*time.Second):
		mu.Lock()
		deadlock = true
		hardErrs = append(hardErrs, "clients still blocked past watchdog+grace")
		mu.Unlock()
	}

	if !sys.ShardDead(victim) {
		noteErr("shard %d not marked dead after kill", victim)
	}
	for sh := 1; sh < shards; sh++ {
		if sys.ShardDead(sh) {
			noteErr("surviving shard %d marked dead", sh)
		}
	}
	sys.SweepNow() // final orphan pass over the dead shard's lanes
	if !sys.ShardChannel(victim).Queue().Empty() {
		noteErr("dead shard %d still holds undrained requests", victim)
	}

	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	serr := sys.Shutdown(shutCtx)
	shutCancel()
	if serr != nil && !errors.Is(serr, context.DeadlineExceeded) {
		noteErr("shutdown: %v", serr)
	}
	cancel()
	sdone := make(chan struct{})
	go func() { swg.Wait(); close(sdone) }()
	select {
	case <-sdone:
	case <-time.After(5 * time.Second):
		mu.Lock()
		deadlock = true
		hardErrs = append(hardErrs, "surviving shards still blocked after shutdown")
		mu.Unlock()
	}

	total := ms.Total()
	res.Completed = completed
	res.Aborted = aborted
	res.PeerDeaths = total.PeerDeaths
	res.LockReclaims = total.LockReclaims
	res.OrphanMsgs = total.OrphanMsgs
	res.OrphanRefs = total.OrphanRefs
	res.WakeRescues = total.WakeRescues
	res.Deadlocked = deadlock

	var fail []string
	if deadlock {
		fail = append(fail, "deadlocked: watchdog expired with participants blocked")
	}
	if aborted != victimClients {
		fail = append(fail, fmt.Sprintf("aborted %d clients, want exactly the %d homed to the dead shard", aborted, victimClients))
	}
	fail = append(fail, hardErrs...)
	if len(fail) > 0 {
		res.Error = fmt.Sprintf("%v", fail)
		return res, fmt.Errorf("chaos cell %s: %v", res.Label, fail)
	}
	return res, nil
}

// ChaosOptions configures a chaos sweep over the protocol matrix.
type ChaosOptions struct {
	Algs    []core.Algorithm // default all four protocols
	Clients []int            // default {2, 4, 8}
	Msgs    int              // per client; default 200
	Seed    int64            // base seed; cell i uses Seed+i

	// Fault rates for every cell; zero values take the defaults noted.
	CrashRate float64 // default 0.02
	DropRate  float64 // default 0.05
	DupRate   float64 // default 0.02
	DelayRate float64 // default 0.02

	// Shards lists the server-group sizes to run a shard-kill cell at
	// (one cell per alg × size, after the classic matrix). Default {2};
	// explicit empty slice via NoShardKill disables them.
	Shards      []int
	NoShardKill bool

	// NoOverloadKill disables the overload-kill cells (one per alg,
	// after the shard-kill cells: a client SIGKILLed mid-overload with
	// sheds in flight, payload leases audited).
	NoOverloadKill bool

	// PaySizes lists payload sizes to run leak-audited payload cells at
	// (one cell per alg × size at the largest client count, after the
	// classic matrix). Empty disables them.
	PaySizes []int

	Watchdog time.Duration // per cell; default 30s
}

func (o *ChaosOptions) defaults() {
	if len(o.Algs) == 0 {
		o.Algs = core.Algorithms()
	}
	if len(o.Clients) == 0 {
		o.Clients = []int{2, 4, 8}
	}
	if o.Msgs <= 0 {
		o.Msgs = 200
	}
	if o.CrashRate == 0 {
		o.CrashRate = 0.02
	}
	if o.DropRate == 0 {
		o.DropRate = 0.05
	}
	if o.DupRate == 0 {
		o.DupRate = 0.02
	}
	if o.DelayRate == 0 {
		o.DelayRate = 0.02
	}
	if len(o.Shards) == 0 && !o.NoShardKill {
		o.Shards = []int{2}
	}
	if o.Watchdog <= 0 {
		o.Watchdog = 30 * time.Second
	}
}

// ChaosReport is the chaos sweep document (BENCH_chaos.json).
type ChaosReport struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	BaseSeed    int64         `json:"base_seed"`
	MsgsPerCli  int           `json:"msgs_per_client"`
	Cells       []ChaosResult `json:"cells"`
}

// RunChaosBench sweeps the protocol matrix under seeded fault
// injection. Every cell runs to completion regardless of earlier
// failures; the combined error names each violated cell. progress,
// when non-nil, receives one line per cell.
func RunChaosBench(opts ChaosOptions, progress io.Writer) (*ChaosReport, error) {
	opts.defaults()
	rep := &ChaosReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		BaseSeed:    opts.Seed,
		MsgsPerCli:  opts.Msgs,
	}
	var failures []error
	cell := 0
	for _, alg := range opts.Algs {
		for _, n := range opts.Clients {
			res, err := RunChaosCell(ChaosConfig{
				Alg:       alg,
				Clients:   n,
				Msgs:      opts.Msgs,
				Seed:      opts.Seed + int64(cell),
				CrashRate: opts.CrashRate,
				DropRate:  opts.DropRate,
				DupRate:   opts.DupRate,
				DelayRate: opts.DelayRate,
				Watchdog:  opts.Watchdog,
			})
			cell++
			if err != nil {
				failures = append(failures, err)
			}
			rep.Cells = append(rep.Cells, res)
			if progress != nil {
				if err != nil {
					fmt.Fprintf(progress, "%-24s FAILED: %v\n", res.Label, err)
				} else {
					fmt.Fprintf(progress, "%-24s ok: %d/%d rtts, %d crashes, %d peer-deaths, %d reclaims, %d rescues\n",
						res.Label, res.Completed, int64(n*opts.Msgs), res.Crashes,
						res.PeerDeaths, res.LockReclaims+res.OrphanRefs, res.WakeRescues)
				}
			}
		}
	}
	for _, size := range opts.PaySizes {
		if size <= 0 {
			continue
		}
		for _, alg := range opts.Algs {
			n := opts.Clients[len(opts.Clients)-1]
			res, err := RunChaosCell(ChaosConfig{
				Alg:       alg,
				Clients:   n,
				Msgs:      opts.Msgs,
				Seed:      opts.Seed + int64(cell),
				CrashRate: opts.CrashRate,
				DropRate:  opts.DropRate,
				DupRate:   opts.DupRate,
				DelayRate: opts.DelayRate,
				Watchdog:  opts.Watchdog,
				PaySize:   size,
			})
			cell++
			if err != nil {
				failures = append(failures, err)
			}
			rep.Cells = append(rep.Cells, res)
			if progress != nil {
				if err != nil {
					fmt.Fprintf(progress, "%-24s FAILED: %v\n", res.Label, err)
				} else {
					fmt.Fprintf(progress, "%-24s ok: %d/%d rtts, %d crashes, %d orphan blocks, 0 leaked\n",
						res.Label, res.Completed, int64(n*opts.Msgs), res.Crashes, res.OrphanBlocks)
				}
			}
		}
	}
	if !opts.NoShardKill {
		for _, alg := range opts.Algs {
			for _, shards := range opts.Shards {
				clients := shards * 2
				if max := opts.Clients[len(opts.Clients)-1]; clients < max {
					clients = max
				}
				res, err := RunChaosShardKill(ChaosConfig{
					Alg:      alg,
					Clients:  clients,
					Msgs:     opts.Msgs,
					Seed:     opts.Seed + int64(cell),
					Watchdog: opts.Watchdog,
				}, shards)
				cell++
				if err != nil {
					failures = append(failures, err)
				}
				rep.Cells = append(rep.Cells, res)
				if progress != nil {
					if err != nil {
						fmt.Fprintf(progress, "%-24s FAILED: %v\n", res.Label, err)
					} else {
						fmt.Fprintf(progress, "%-24s ok: %d rtts, %d clients lost their shard, %d peer-deaths, %d orphans\n",
							res.Label, res.Completed, res.Aborted, res.PeerDeaths, res.OrphanMsgs)
					}
				}
			}
		}
	}
	if !opts.NoOverloadKill {
		// Full-tilt sends are cheap; the storm needs volume — with too few
		// messages the blast is over before anything queues long enough to
		// shed, and a cell that never overloads proves nothing.
		overloadMsgs := opts.Msgs * 4
		if overloadMsgs < 2000 {
			overloadMsgs = 2000
		}
		for _, alg := range opts.Algs {
			res, err := RunChaosOverloadKill(ChaosConfig{
				Alg:      alg,
				Clients:  4,
				Msgs:     overloadMsgs,
				Seed:     opts.Seed + int64(cell),
				Watchdog: opts.Watchdog,
				PaySize:  64,
			})
			cell++
			if err != nil {
				failures = append(failures, err)
			}
			rep.Cells = append(rep.Cells, res)
			if progress != nil {
				if err != nil {
					fmt.Fprintf(progress, "%-24s FAILED: %v\n", res.Label, err)
				} else {
					fmt.Fprintf(progress, "%-24s ok: %d rtts, %d sheds, %d rejects, %d orphan blocks, 0 leaked\n",
						res.Label, res.Completed, res.Sheds, res.Overloads, res.OrphanBlocks)
				}
			}
		}
	}
	return rep, errors.Join(failures...)
}

// WriteJSON emits the chaos report as indented JSON.
func (r *ChaosReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
