package sched

import "ulipc/internal/sim"

// Fixed models non-degrading (fixed) priority scheduling (the paper's
// Figure 3 and the dotted curves of Figure 8): effective priority is the
// static priority alone, and a yield always rotates among equal-priority
// processes, so yielding reliably hands the CPU over. On the paper's
// systems this mode requires super-user privileges; here it is just a
// policy choice.
type Fixed struct {
	q       runq
	quantum sim.Time
}

// NewFixed builds a fixed-priority policy.
func NewFixed() *Fixed { return &Fixed{} }

// Name implements sim.Scheduler.
func (f *Fixed) Name() string { return "fixed" }

// Attach implements sim.Scheduler.
func (f *Fixed) Attach(k *sim.Kernel) { f.quantum = k.Machine().Quantum }

// Ready implements sim.Scheduler.
func (f *Fixed) Ready(p *sim.Proc) { f.q.add(p) }

// Pick implements sim.Scheduler. The incumbent is deliberately NOT
// preferred: a yield under fixed priorities moves the caller behind its
// equal-priority peers, giving strict round-robin hand-over.
func (f *Fixed) Pick(cpu int, incumbent *sim.Proc) *sim.Proc {
	return f.q.pickBest(nil, func(p *sim.Proc) float64 { return float64(p.BasePrio) })
}

// Steal implements sim.Scheduler.
func (f *Fixed) Steal(p *sim.Proc) bool { return f.q.remove(p) }

// OnYield implements sim.Scheduler.
func (f *Fixed) OnYield(p *sim.Proc) {}

// Charge implements sim.Scheduler. Fixed priorities do not age.
func (f *Fixed) Charge(p *sim.Proc, dur sim.Time) {}

// QuantumFor implements sim.Scheduler.
func (f *Fixed) QuantumFor(p *sim.Proc) sim.Time { return f.quantum }

// ReadyCount implements sim.Scheduler.
func (f *Fixed) ReadyCount() int { return f.q.len() }
