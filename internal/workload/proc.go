package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/livebind"
	"ulipc/internal/metrics"
	"ulipc/internal/shm"
)

// The cross-process harness: real OS processes exchanging messages
// through a memfd segment with futex wake-ups. The parent creates the
// segment and re-executes its own binary once per participant (the
// classic helper-process pattern): a worker recognises itself by
// ULIPC_PROC_ROLE in the environment, maps the inherited fd, runs its
// script against livebind's proc binding, and reports one JSON line on
// stdout. Any binary whose main (or TestMain) calls MaybeProcWorker
// can host workers — cmd/ipcbench and this package's tests both do.

const (
	procRoleEnv = "ULIPC_PROC_ROLE"
	procCfgEnv  = "ULIPC_PROC_CFG"
	// procSegFD is where the inherited memfd lands in a worker:
	// ExtraFiles[0] is always descriptor 3.
	procSegFD = 3

	procRoleServer = "server"
	procRoleClient = "client"
)

// ProcConfig describes one cross-process cell.
type ProcConfig struct {
	Alg     core.Algorithm
	Clients int
	Msgs    int // per client; 0 = unbounded (chaos cells run until error)

	MaxSpin   int
	SpinIters int
	RingCap   int // per-lane capacity (segment geometry)
	Nodes     int // arena size; 0 = geometry default

	// PaySize arms the payload path: every echo carries that many bytes
	// in a leased shared-memory block. PayCopy selects the copy-mode
	// baseline (memcpy in and out of the blocks plus a server-side
	// re-allocation) against which the zero-copy default is A/B'd.
	// Blocks sizes the slab arena (slots per class; defaulted when
	// PaySize > 0 and Blocks is 0).
	PaySize int
	PayCopy bool
	Blocks  int

	SleepScale time.Duration // queue-full nap compression (default 1ms)
	WaitSlice  time.Duration // futex park slice (default livebind's)

	HeartbeatEvery time.Duration
	SweepEvery     time.Duration
	Lease          time.Duration

	// Watchdog bounds every worker (default 60s): a cell that trips it
	// is deadlocked, which is a hard failure.
	Watchdog time.Duration

	// KillServerAfter arms the chaos cell: the parent SIGKILLs the
	// server that long after the clients start (default 150ms, plus
	// seeded jitter when Seed is set).
	KillServerAfter time.Duration
	Seed            int64

	// Exe is the worker binary (default: this executable).
	Exe string
}

func (c *ProcConfig) defaults() error {
	if c.Clients < 1 {
		return fmt.Errorf("workload: proc cell needs at least 1 client")
	}
	if c.MaxSpin <= 0 {
		c.MaxSpin = core.DefaultMaxSpin
	}
	if c.RingCap <= 0 {
		c.RingCap = 64
	}
	if c.SleepScale <= 0 {
		c.SleepScale = time.Millisecond
	}
	if c.Watchdog <= 0 {
		c.Watchdog = 60 * time.Second
	}
	if c.Lease <= 0 {
		// Chaos detection depends on this: the pid probe usually fires
		// first, but the lease must be short enough that a cell where
		// probes lie still converges well inside the watchdog.
		c.Lease = 750 * time.Millisecond
	}
	if c.PaySize > 0 && c.Blocks <= 0 {
		// Enough slots per class that every client can hold a request and
		// a reply block simultaneously, with headroom for in-flight ones.
		c.Blocks = 4 * (c.Clients + 1)
		if c.Blocks < 32 {
			c.Blocks = 32
		}
	}
	if c.Exe == "" {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("workload: cannot locate worker binary: %w", err)
		}
		c.Exe = exe
	}
	return nil
}

// procWireCfg is the parent→worker configuration, serialised into the
// environment. Durations travel as nanoseconds.
type procWireCfg struct {
	Alg         string `json:"alg"`
	Clients     int    `json:"clients"`
	Msgs        int    `json:"msgs"`
	ClientID    int    `json:"client_id"`
	MaxSpin     int    `json:"max_spin"`
	SpinIters   int    `json:"spin_iters"`
	SleepNs     int64  `json:"sleep_ns"`
	WaitNs      int64  `json:"wait_ns"`
	HeartbeatNs int64  `json:"heartbeat_ns"`
	SweepNs     int64  `json:"sweep_ns"`
	LeaseNs     int64  `json:"lease_ns"`
	WatchdogNs  int64  `json:"watchdog_ns"`
	PaySize     int    `json:"pay_size,omitempty"`
	PayCopy     bool   `json:"pay_copy,omitempty"`
}

// procWorkerResult is the worker→parent report: one JSON line on
// stdout.
type procWorkerResult struct {
	Role      string           `json:"role"`
	ClientID  int              `json:"client_id"`
	Backend   string           `json:"backend"`
	Pid       int              `json:"pid"`
	Served    int64            `json:"served"`
	Sent      int64            `json:"sent"`
	ElapsedNs int64            `json:"elapsed_ns"`
	PeerDead  bool             `json:"peer_dead"`
	DetectNs  int64            `json:"detect_ns"`
	Hung      bool             `json:"hung"`
	Err       string           `json:"err,omitempty"`
	Metrics   metrics.Snapshot `json:"metrics"`
}

// MaybeProcWorker turns the current process into a cross-process
// worker when ULIPC_PROC_ROLE is set, and never returns in that case.
// Call it first thing in main (before flag parsing) of any binary that
// spawns proc cells; in tests, call it from TestMain.
func MaybeProcWorker() {
	role := os.Getenv(procRoleEnv)
	if role == "" {
		return
	}
	os.Exit(runProcWorker(role, os.Getenv(procCfgEnv)))
}

// runProcWorker executes one worker role and reports on stdout. The
// exit code is 0 whenever a result was produced — including expected
// failures like observing the server's death — and non-zero only for
// harness errors (bad config, hung past the watchdog).
func runProcWorker(role, cfgJSON string) int {
	res := procWorkerResult{Role: role, Backend: livebind.FutexBackend, Pid: os.Getpid()}
	emit := func() int {
		_ = json.NewEncoder(os.Stdout).Encode(&res)
		if res.Hung || (res.Err != "" && !res.PeerDead) {
			return 1
		}
		return 0
	}
	var wire procWireCfg
	if err := json.Unmarshal([]byte(cfgJSON), &wire); err != nil {
		res.Err = fmt.Sprintf("bad %s: %v", procCfgEnv, err)
		return emit()
	}
	alg, err := core.AlgorithmByName(wire.Alg)
	if err != nil {
		res.Err = err.Error()
		return emit()
	}
	seg, err := shm.MapFDSeg(procSegFD)
	if err != nil {
		res.Err = fmt.Sprintf("map inherited segment: %v", err)
		return emit()
	}
	defer seg.Close()

	m := &metrics.Proc{Name: role}
	opts := livebind.ProcOptions{
		Alg:            alg,
		MaxSpin:        wire.MaxSpin,
		SpinIters:      wire.SpinIters,
		SleepScale:     time.Duration(wire.SleepNs),
		WaitSlice:      time.Duration(wire.WaitNs),
		HeartbeatEvery: time.Duration(wire.HeartbeatNs),
		SweepEvery:     time.Duration(wire.SweepNs),
		Lease:          time.Duration(wire.LeaseNs),
		M:              m,
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(wire.WatchdogNs))
	defer cancel()

	switch role {
	case procRoleServer:
		runProcServerRole(ctx, &res, seg, opts, wire)
	case procRoleClient:
		runProcClientRole(ctx, &res, seg, opts, wire)
	default:
		res.Err = fmt.Sprintf("unknown role %q", role)
	}
	res.Metrics = m.Snapshot()
	return emit()
}

func runProcServerRole(ctx context.Context, res *procWorkerResult, seg *shm.Seg, opts livebind.ProcOptions, wire procWireCfg) {
	srv, err := livebind.AttachProcServer(seg, opts)
	if err != nil {
		res.Err = err.Error()
		return
	}
	defer srv.Close()
	t0 := time.Now()
	served, err := procServe(ctx, srv, wire.Clients, wire.PayCopy)
	res.Served = served
	res.ElapsedNs = time.Since(t0).Nanoseconds()
	if err != nil {
		res.Err = err.Error()
		res.PeerDead = errors.Is(err, core.ErrPeerDead)
		res.Hung = errors.Is(err, context.DeadlineExceeded)
	}
}

// procServe is the server loop of a proc cell. It exits after every
// client has disconnected — counting disconnects against the segment
// geometry rather than a live connect balance, because client
// processes start at arbitrary times: with a balance, one fast client
// connecting and disconnecting before the others attach would end the
// loop early.
func procServe(ctx context.Context, srv *livebind.ProcServer, clients int, payCopy bool) (served int64, err error) {
	disconnects := 0
	for disconnects < clients {
		m, err := srv.ReceiveCtx(ctx)
		if err != nil {
			return served, err
		}
		if !srv.ValidClient(m.Client) {
			continue
		}
		switch m.Op {
		case core.OpConnect:
		case core.OpDisconnect:
			disconnects++
		default:
			served++
			if m.HasBlock() {
				procEchoPayload(srv, payCopy, m)
				continue
			}
		}
		srv.Reply(m.Client, m)
	}
	return served, nil
}

// procEchoPayload echoes a payload-carrying request: claim the lease,
// then hand it back — re-leasing the same block (zero-copy), or copying
// into a fresh block first (the copy-mode baseline a copy API would
// force on the server).
func procEchoPayload(srv *livebind.ProcServer, payCopy bool, m core.Msg) {
	p, err := srv.Payload(m)
	if err != nil {
		// The payload was lost to recovery (its sender died and a sweeper
		// reclaimed the block): reply without it rather than forwarding a
		// dangling reference.
		m.ClearBlock()
		srv.Reply(m.Client, m)
		return
	}
	if payCopy {
		if q, qerr := srv.AllocPayload(p.Len()); qerr == nil {
			copy(q.Bytes(), p.Bytes())
			_ = p.Release()
			p = q
		}
	}
	srv.ReplyPayload(m.Client, m, p)
}

func runProcClientRole(ctx context.Context, res *procWorkerResult, seg *shm.Seg, opts livebind.ProcOptions, wire procWireCfg) {
	res.ClientID = wire.ClientID
	cl, err := livebind.AttachProcClient(seg, wire.ClientID, opts)
	if err != nil {
		res.Err = err.Error()
		return
	}
	defer cl.Close()

	classify := func(err error) {
		res.Err = err.Error()
		switch {
		case errors.Is(err, core.ErrPeerDead):
			res.PeerDead = true
		case errors.Is(err, context.DeadlineExceeded):
			res.Hung = true
		}
	}

	t0 := time.Now()
	if _, err := cl.SendCtx(ctx, core.Msg{Op: core.OpConnect}); err != nil {
		classify(err)
		if res.PeerDead {
			res.DetectNs = time.Since(t0).Nanoseconds()
		}
		res.ElapsedNs = time.Since(t0).Nanoseconds()
		return
	}
	pe := &payEcho{cl: cl.Client, size: wire.PaySize}
	if wire.PaySize > 0 && wire.PayCopy {
		// Copy-mode scratch: the "user buffer" a copy API would force the
		// payload through (memcpy in before send, memcpy out after receive).
		pe.scratch = make([]byte, wire.PaySize)
		for j := range pe.scratch {
			pe.scratch[j] = byte(j)
		}
	}
	lastOK := time.Now()
	for i := 0; wire.Msgs == 0 || i < wire.Msgs; i++ {
		m := core.Msg{Op: core.OpEcho, Seq: int32(i % (1 << 30)), Val: float64(i%1024) * 1.5}
		var r core.Msg
		var err error
		if wire.PaySize > 0 {
			r, err = pe.echo(ctx, m)
		} else {
			r, err = cl.SendCtx(ctx, m)
		}
		if err != nil {
			classify(err)
			if res.PeerDead {
				res.DetectNs = time.Since(lastOK).Nanoseconds()
			}
			break
		}
		if r.Seq != m.Seq || r.Val != m.Val {
			res.Err = fmt.Sprintf("echo %d corrupted: sent %+v got %+v", i, m, r)
			break
		}
		res.Sent++
		lastOK = time.Now()
	}
	pe.close()
	if res.Err == "" {
		if _, err := cl.SendCtx(ctx, core.Msg{Op: core.OpDisconnect}); err != nil {
			classify(err)
		}
	}
	res.ElapsedNs = time.Since(t0).Nanoseconds()
}

// payEcho drives one client's payload echoes. In zero-copy mode one
// block circulates: the request block comes back as the reply block and
// is reused for the next request, so steady state touches no free list.
// In copy mode every exchange allocates, memcpys in, memcpys out, and
// frees — the per-call cost a copy API would impose.
type payEcho struct {
	cl      *core.Client
	size    int
	scratch []byte        // non-nil selects copy mode
	held    *core.Payload // zero-copy: the circulating block
}

func (pe *payEcho) echo(ctx context.Context, m core.Msg) (core.Msg, error) {
	p := pe.held
	pe.held = nil
	if p == nil {
		var err error
		p, err = pe.cl.AllocPayload(pe.size)
		if err != nil {
			// Backpressure (or no arena): degrade to a plain exchange so
			// the loop keeps making progress and still surfaces shutdown
			// or peer death the usual way.
			return pe.cl.SendCtx(ctx, m)
		}
	}
	stamp := byte(m.Seq)
	if pe.scratch != nil {
		pe.scratch[0], pe.scratch[len(pe.scratch)-1] = stamp, stamp
		copy(p.Bytes(), pe.scratch)
	} else {
		b := p.Bytes()
		b[0], b[len(b)-1] = stamp, stamp
	}
	r, rp, err := pe.cl.SendPayload(ctx, m, p)
	if errors.Is(err, core.ErrPayloadLost) {
		// The reply's payload holder died mid-lease and the sweeper
		// reclaimed the block before we could claim it — an expected
		// outcome under chaos, not a protocol failure. The round trip
		// itself succeeded; there is just nothing to verify.
		return r, nil
	}
	if err != nil {
		return r, err
	}
	if rp == nil {
		return r, nil // server dropped a recovery-lost payload: nothing to verify
	}
	b := rp.Bytes()
	if pe.scratch != nil {
		copy(pe.scratch, b)
		b = pe.scratch
	}
	if len(b) == 0 || b[0] != stamp || b[len(b)-1] != stamp {
		_ = rp.Release()
		return r, fmt.Errorf("payload echo corrupted at seq %d", m.Seq)
	}
	if pe.scratch != nil {
		_ = rp.Release()
	} else {
		_ = rp.Resize(pe.size)
		pe.held = rp
	}
	return r, nil
}

// close returns the circulating block so clean cells audit leak-free.
func (pe *payEcho) close() {
	if pe.held != nil {
		_ = pe.held.Release()
		pe.held = nil
	}
}

// procWorker is the parent-side handle on one spawned worker.
type procWorker struct {
	cmd  *exec.Cmd
	out  bytes.Buffer
	errb bytes.Buffer
}

func spawnProcWorker(exe, role string, wire procWireCfg, segFile *os.File) (*procWorker, error) {
	b, err := json.Marshal(wire)
	if err != nil {
		return nil, err
	}
	w := &procWorker{cmd: exec.Command(exe)}
	w.cmd.Env = append(os.Environ(),
		procRoleEnv+"="+role,
		procCfgEnv+"="+string(b),
	)
	w.cmd.ExtraFiles = []*os.File{segFile} // fd 3 in the worker
	w.cmd.Stdout = &w.out
	w.cmd.Stderr = &w.errb
	if err := w.cmd.Start(); err != nil {
		return nil, fmt.Errorf("workload: spawn %s worker: %w", role, err)
	}
	return w, nil
}

// wait reaps the worker with a deadline and parses its report. A
// worker that outlives the deadline is killed and reported as hung.
func (w *procWorker) wait(d time.Duration) (procWorkerResult, error) {
	done := make(chan error, 1)
	go func() { done <- w.cmd.Wait() }()
	var werr error
	select {
	case werr = <-done:
	case <-time.After(d):
		_ = w.cmd.Process.Kill()
		<-done
		return procWorkerResult{Hung: true}, fmt.Errorf("workload: worker exceeded parent deadline (%v); stderr: %s", d, w.errb.String())
	}
	var res procWorkerResult
	if err := json.Unmarshal(lastLine(w.out.Bytes()), &res); err != nil {
		return res, fmt.Errorf("workload: unparsable worker report (exit: %v, stderr: %s): %w", werr, w.errb.String(), err)
	}
	return res, nil
}

// kill SIGKILLs the worker and reaps it — the chaos hammer. Reaping
// matters: a zombie still answers kill(pid, 0) probes, so survivors
// would fall back to the (much slower) lease before declaring death.
func (w *procWorker) kill() {
	_ = w.cmd.Process.Kill()
	_ = w.cmd.Wait()
}

func lastLine(b []byte) []byte {
	b = bytes.TrimRight(b, "\n")
	if i := bytes.LastIndexByte(b, '\n'); i >= 0 {
		return b[i+1:]
	}
	return b
}

// ProcClientResult is one client process's outcome within a cell.
type ProcClientResult struct {
	ID        int     `json:"id"`
	Sent      int64   `json:"sent"`
	ElapsedNs int64   `json:"elapsed_ns"`
	PeerDead  bool    `json:"peer_dead"`
	DetectMs  float64 `json:"detect_ms,omitempty"`
	Hung      bool    `json:"hung,omitempty"`
	Err       string  `json:"err,omitempty"`
}

// ProcResult is a clean cross-process cell's outcome.
type ProcResult struct {
	Served      int64
	Sent        int64
	RTTMicros   float64 // wall-clock per round trip (per client)
	Throughput  float64 // msgs per millisecond, cell-wide
	BytesPerSec float64 // payload bytes moved per second (PaySize cells)
	PaySize     int     // payload bytes per echo (0 = legacy 24-byte cell)
	PayCopy     bool    // copy-mode baseline rather than zero-copy
	Backend     string  // futex or poll
	All         metrics.Snapshot
	PoolLeaked  int64 // refs missing from the pool after teardown
	BlockLeaked int64 // payload blocks missing from the arena after teardown
	Clients     []ProcClientResult
}

// sumProcMetrics folds a worker's counters into the cell total.
func sumProcMetrics(all *metrics.Snapshot, s metrics.Snapshot) {
	all.Yields += s.Yields
	all.SemP += s.SemP
	all.SemV += s.SemV
	all.Blocks += s.Blocks
	all.Wakeups += s.Wakeups
	all.Sleeps += s.Sleeps
	all.Timeouts += s.Timeouts
	all.Cancels += s.Cancels
	all.PeerDeaths += s.PeerDeaths
	all.OrphanMsgs += s.OrphanMsgs
	all.OrphanBlocks += s.OrphanBlocks
	all.WakeRescues += s.WakeRescues
	all.BlockRefills += s.BlockRefills
	all.BlockSpills += s.BlockSpills
	all.BlockFails += s.BlockFails
}

// RunProcCell runs one clean cross-process cell: one server process,
// cfg.Clients client processes, cfg.Msgs echoes each, through a memfd
// segment. On platforms without a mapping backend it returns
// shm.ErrMapUnsupported.
func RunProcCell(cfg ProcConfig) (*ProcResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if cfg.Msgs <= 0 {
		cfg.Msgs = 1000
	}
	seg, segFile, err := shm.CreateMemfdSeg("ulipc-proc", shm.SegConfig{
		Clients: cfg.Clients, Nodes: cfg.Nodes, RingCap: cfg.RingCap,
		Blocks: cfg.Blocks,
	})
	if err != nil {
		return nil, err
	}
	defer seg.Close()
	defer segFile.Close()

	wire := procWireCfg{
		Alg:         cfg.Alg.String(),
		Clients:     cfg.Clients,
		Msgs:        cfg.Msgs,
		MaxSpin:     cfg.MaxSpin,
		SpinIters:   cfg.SpinIters,
		SleepNs:     int64(cfg.SleepScale),
		WaitNs:      int64(cfg.WaitSlice),
		HeartbeatNs: int64(cfg.HeartbeatEvery),
		SweepNs:     int64(cfg.SweepEvery),
		LeaseNs:     int64(cfg.Lease),
		WatchdogNs:  int64(cfg.Watchdog),
		PaySize:     cfg.PaySize,
		PayCopy:     cfg.PayCopy,
	}
	server, err := spawnProcWorker(cfg.Exe, procRoleServer, wire, segFile)
	if err != nil {
		return nil, err
	}
	clients := make([]*procWorker, cfg.Clients)
	for i := range clients {
		cw := wire
		cw.ClientID = i
		clients[i], err = spawnProcWorker(cfg.Exe, procRoleClient, cw, segFile)
		if err != nil {
			server.kill()
			for _, c := range clients[:i] {
				c.kill()
			}
			return nil, err
		}
	}

	res := &ProcResult{}
	var failures []error
	deadline := cfg.Watchdog + 10*time.Second
	var maxElapsed int64
	for i, c := range clients {
		r, err := c.wait(deadline)
		if err != nil {
			failures = append(failures, fmt.Errorf("client %d: %w", i, err))
		} else if r.Err != "" {
			failures = append(failures, fmt.Errorf("client %d: %s", i, r.Err))
		}
		res.Backend = r.Backend
		res.Sent += r.Sent
		if r.ElapsedNs > maxElapsed {
			maxElapsed = r.ElapsedNs
		}
		sumProcMetrics(&res.All, r.Metrics)
		res.Clients = append(res.Clients, ProcClientResult{
			ID: i, Sent: r.Sent, ElapsedNs: r.ElapsedNs,
			PeerDead: r.PeerDead, Hung: r.Hung, Err: r.Err,
		})
	}
	sr, err := server.wait(deadline)
	if err != nil {
		failures = append(failures, fmt.Errorf("server: %w", err))
	} else if sr.Err != "" {
		failures = append(failures, fmt.Errorf("server: %s", sr.Err))
	}
	res.Served = sr.Served
	sumProcMetrics(&res.All, sr.Metrics)

	res.PaySize, res.PayCopy = cfg.PaySize, cfg.PayCopy
	if maxElapsed > 0 {
		res.RTTMicros = float64(maxElapsed) / 1e3 / float64(cfg.Msgs)
		res.Throughput = float64(res.Sent) / (float64(maxElapsed) / 1e6)
		if cfg.PaySize > 0 {
			// Each validated round trip moved the payload both ways.
			res.BytesPerSec = float64(res.Sent) * 2 * float64(cfg.PaySize) /
				(float64(maxElapsed) / 1e9)
		}
	}
	v, verr := seg.View()
	if verr == nil {
		if leaked := int64(v.Config().Nodes) - v.Pool.FreeCount(); leaked != 0 {
			res.PoolLeaked = leaked
			failures = append(failures, fmt.Errorf("pool leaked %d refs after clean run", leaked))
		}
		if v.Blocks != nil {
			if leaked := int64(v.Blocks.Capacity()) - v.Blocks.TotalFree(); leaked != 0 {
				res.BlockLeaked = leaked
				failures = append(failures, fmt.Errorf("payload arena leaked %d blocks after clean run", leaked))
			}
		}
	}
	want := int64(cfg.Clients) * int64(cfg.Msgs)
	if len(failures) == 0 && (res.Sent != want || res.Served != want) {
		failures = append(failures, fmt.Errorf("message count mismatch: sent %d served %d want %d", res.Sent, res.Served, want))
	}
	return res, errors.Join(failures...)
}

// ProcChaosResult is the SIGKILL chaos cell's outcome.
type ProcChaosResult struct {
	Alg         string  `json:"alg"`
	Clients     int     `json:"clients"`
	Seed        int64   `json:"seed"`
	Backend     string  `json:"backend"`
	KillAfterMs float64 `json:"kill_after_ms"`
	PaySize     int     `json:"pay_size,omitempty"` // SIGKILL-mid-lease cell when > 0

	Completed   int64   `json:"completed"`     // validated round trips before the kill
	Detected    int     `json:"detected"`      // clients that surfaced ErrPeerDead
	Hung        int     `json:"hung"`          // clients still blocked at the watchdog
	DetectMsMax float64 `json:"detect_ms_max"` // slowest client's detection latency

	PeerDeaths   int64 `json:"peer_deaths"`
	WakeRescues  int64 `json:"wake_rescues"`
	OrphanMsgs   int64 `json:"orphan_msgs"`   // post-mortem: drained queued messages
	OrphanRefs   int64 `json:"orphan_refs"`   // post-mortem: reclaimed in-flight refs
	OrphanBlocks int64 `json:"orphan_blocks"` // post-mortem: reclaimed payload blocks
	PoolLeaked   int64 `json:"pool_leaked"`   // refs still missing AFTER the audit
	BlockLeaked  int64 `json:"block_leaked"`  // payload blocks still missing AFTER the audit

	Error string `json:"error,omitempty"`

	ClientResults []ProcClientResult `json:"clients_detail,omitempty"`
}

// RunProcChaosKill runs the cross-process SIGKILL cell: server and
// clients exchange traffic until the parent SIGKILLs the server, then
// every surviving client must unblock with core.ErrPeerDead — no
// hang, and no leak once the post-mortem audit has run. The returned
// error is non-nil when a hard invariant failed (a hung client, a
// missed detection, a leaked pool).
func RunProcChaosKill(cfg ProcConfig) (ProcChaosResult, error) {
	cfg.Msgs = 0 // clients run until the kill stops them
	if err := cfg.defaults(); err != nil {
		return ProcChaosResult{}, err
	}
	if cfg.Watchdog > 30*time.Second {
		cfg.Watchdog = 30 * time.Second
	}
	killAfter := cfg.KillServerAfter
	if killAfter <= 0 {
		killAfter = 150 * time.Millisecond
	}
	if cfg.Seed != 0 {
		killAfter += time.Duration(rand.New(rand.NewSource(cfg.Seed)).Int63n(int64(150 * time.Millisecond)))
	}
	out := ProcChaosResult{
		Alg: cfg.Alg.String(), Clients: cfg.Clients, Seed: cfg.Seed,
		KillAfterMs: float64(killAfter) / float64(time.Millisecond),
		PaySize:     cfg.PaySize,
	}

	seg, segFile, err := shm.CreateMemfdSeg("ulipc-chaos", shm.SegConfig{
		Clients: cfg.Clients, Nodes: cfg.Nodes, RingCap: cfg.RingCap,
		Blocks: cfg.Blocks,
	})
	if err != nil {
		return out, err
	}
	defer seg.Close()
	defer segFile.Close()

	wire := procWireCfg{
		Alg:         cfg.Alg.String(),
		Clients:     cfg.Clients,
		Msgs:        0,
		MaxSpin:     cfg.MaxSpin,
		SpinIters:   cfg.SpinIters,
		SleepNs:     int64(cfg.SleepScale),
		WaitNs:      int64(cfg.WaitSlice),
		HeartbeatNs: int64(cfg.HeartbeatEvery),
		SweepNs:     int64(cfg.SweepEvery),
		LeaseNs:     int64(cfg.Lease),
		WatchdogNs:  int64(cfg.Watchdog),
		PaySize:     cfg.PaySize,
		PayCopy:     cfg.PayCopy,
	}
	server, err := spawnProcWorker(cfg.Exe, procRoleServer, wire, segFile)
	if err != nil {
		return out, err
	}
	clients := make([]*procWorker, cfg.Clients)
	for i := range clients {
		cw := wire
		cw.ClientID = i
		clients[i], err = spawnProcWorker(cfg.Exe, procRoleClient, cw, segFile)
		if err != nil {
			server.kill()
			for _, c := range clients[:i] {
				c.kill()
			}
			return out, err
		}
	}

	// Let traffic flow, then murder the server mid-exchange. kill()
	// also reaps, so survivors' pid probes see ESRCH immediately.
	time.Sleep(killAfter)
	server.kill()

	var failures []error
	deadline := cfg.Watchdog + 10*time.Second
	for i, c := range clients {
		r, err := c.wait(deadline)
		if err != nil {
			out.Hung++
			failures = append(failures, fmt.Errorf("client %d: %w", i, err))
			continue
		}
		out.Backend = r.Backend
		out.Completed += r.Sent
		cr := ProcClientResult{
			ID: i, Sent: r.Sent, ElapsedNs: r.ElapsedNs,
			PeerDead: r.PeerDead, Hung: r.Hung, Err: r.Err,
			DetectMs: float64(r.DetectNs) / float64(time.Millisecond),
		}
		out.ClientResults = append(out.ClientResults, cr)
		out.PeerDeaths += r.Metrics.PeerDeaths
		out.WakeRescues += r.Metrics.WakeRescues
		switch {
		case r.Hung:
			out.Hung++
			failures = append(failures, fmt.Errorf("client %d hung past the watchdog", i))
		case r.PeerDead:
			out.Detected++
			if cr.DetectMs > out.DetectMsMax {
				out.DetectMsMax = cr.DetectMs
			}
		default:
			failures = append(failures, fmt.Errorf("client %d exited without observing the server's death: %s", i, r.Err))
		}
	}

	// Post-mortem audit: every process is gone, so the parent has
	// exclusive access. The segment must account for every ref.
	v, verr := seg.View()
	if verr != nil {
		failures = append(failures, verr)
	} else {
		msgs, refs, blocks, rerr := v.Reclaim()
		out.OrphanMsgs, out.OrphanRefs, out.OrphanBlocks = int64(msgs), int64(refs), int64(blocks)
		if rerr != nil {
			failures = append(failures, rerr)
		}
		if leaked := int64(v.Config().Nodes) - v.Pool.FreeCount(); leaked != 0 {
			out.PoolLeaked = leaked
			failures = append(failures, fmt.Errorf("pool leaked %d refs after reclaim", leaked))
		}
		if v.Blocks != nil {
			if leaked := int64(v.Blocks.Capacity()) - v.Blocks.TotalFree(); leaked != 0 {
				out.BlockLeaked = leaked
				failures = append(failures, fmt.Errorf("payload arena leaked %d blocks after reclaim", leaked))
			}
		}
	}
	err = errors.Join(failures...)
	if err != nil {
		out.Error = err.Error()
	}
	return out, err
}

// WriteJSON emits the chaos result as indented JSON.
func (r *ProcChaosResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
