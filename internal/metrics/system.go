package metrics

import "ulipc/internal/obs"

// SystemSnapshot is the histogram-aware (v2) system metrics view: the
// classic per-process counter snapshots plus, when an observer was
// attached, the per-protocol phase-latency histograms. The counters
// answer "how many" (yields, Ps, Vs, blocks); the histograms answer
// "how long" (round trip, queue wait, spin, sleep) — the paper's Table
// analyses need both.
type SystemSnapshot struct {
	Procs  []Snapshot          `json:"procs"`
	Total  Snapshot            `json:"total"`
	Protos []obs.ProtoSnapshot `json:"protos,omitempty"`
	Blocks []BlockClass        `json:"blocks,omitempty"`
}

// BlockClass mirrors one payload size class of the slab arena
// (shm.BlockClassStats) without importing shm: size/capacity geometry
// plus the backpressure counters — fallbacks (allocs absorbed for a
// smaller exhausted class) and exhausts (allocs that found the class
// empty). Populated by the runtime layer that owns the pool.
type BlockClass struct {
	Size      int   `json:"size"`
	Count     int   `json:"count"`
	Free      int64 `json:"free"`
	Fallbacks int64 `json:"fallbacks"`
	Exhausts  int64 `json:"exhausts"`
}

// SystemSnapshot builds the v2 view from a metrics set and an optional
// observer (nil yields counters only).
func (s *Set) SystemSnapshot(o *obs.Observer) SystemSnapshot {
	return SystemSnapshot{
		Procs:  s.Snapshots(),
		Total:  s.Total(),
		Protos: o.Snapshot(),
	}
}
