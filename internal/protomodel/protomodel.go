// Package protomodel is an exhaustive interleaving model checker for the
// paper's sleep/wake-up protocol (Figure 4). It enumerates every
// interleaving of one consumer and P producers executing the abstract
// protocol steps (C.1–C.5, P.1–P.3) over shared state (queue length,
// awake flag, semaphore count) and verifies the paper's claims about
// each race condition and each fix:
//
//   - Interleaving 1 (wake-up before sleep): harmful — the consumer can
//     sleep forever — unless the wake-up remains pending, i.e. the
//     sleep/wake-up primitive is a counting semaphore.
//   - Interleaving 2 (multiple wake-ups): with plain reads of the awake
//     flag, concurrent producers issue redundant Vs and the semaphore
//     count accumulates (the overflow the authors hit); test-and-set on
//     the flag bounds it.
//   - Interleaving 3 (wake-up without sleep): without the consumer-side
//     test-and-set drain, the count accumulates even with one producer;
//     with it the count stays bounded.
//   - Interleaving 4 (why step C.3 is required): dropping the second
//     dequeue deadlocks — a producer can check the flag between the
//     consumer's failed dequeue and its clearing of the flag.
package protomodel

import "fmt"

// Config selects the protocol variant to model-check.
type Config struct {
	Producers int // number of producer processes (>= 1)
	Msgs      int // messages each producer enqueues (>= 1)

	// CountingSem: the sleep/wake-up primitive is a counting semaphore
	// (wake-ups remain pending). False models an event/binary wake-up:
	// waking a non-sleeping consumer is a no-op.
	CountingSem bool

	// UseC3: the consumer re-checks the queue after clearing the awake
	// flag (step C.3).
	UseC3 bool

	// ProducerTAS: producers test-and-set the awake flag so only the
	// first issues the wake-up (the Interleaving 2 fix).
	ProducerTAS bool

	// ConsumerDrain: on a successful C.3 dequeue the consumer
	// test-and-sets the flag and drains a pending redundant V (the
	// Interleaving 3 fix).
	ConsumerDrain bool

	// CrashLastV: producer 1 crashes immediately before the V of its
	// final message — the canonical peer-death hazard. The message is
	// enqueued and (under ProducerTAS) the awake flag is set, so every
	// other producer believes the wake-up is already on its way; the
	// dead producer owes a V that will never arrive.
	CrashLastV bool

	// Sweeper: a recovery process that may issue a compensating V
	// whenever the consumer is blocked on the semaphore with work
	// queued or with a crashed producer owing a wake-up — the abstract
	// counterpart of livebind's sweeper (lost-wake rescue + peer-death
	// close). Requires CountingSem (the rescue is a pending wake-up).
	Sweeper bool
}

// FullProtocol returns the configuration with every fix applied — the
// protocol of Figure 5 (BSW).
func FullProtocol(producers, msgs int) Config {
	return Config{
		Producers: producers, Msgs: msgs,
		CountingSem: true, UseC3: true, ProducerTAS: true, ConsumerDrain: true,
	}
}

// Result summarises the exhaustive exploration.
type Result struct {
	States       int      // distinct states explored
	Deadlock     bool     // some interleaving wedges the system
	DeadlockPath []string // step labels of one wedging interleaving
	MaxSem       int      // highest semaphore count over all interleavings
	AllConsumed  bool     // every terminal state consumed every message
	Terminal     int      // number of distinct terminal states
}

// Consumer program counters.
const (
	cTop    = iota // C.1: dequeue attempt
	cClear         // C.2: awake <- false
	cDeq2          // C.3: second dequeue attempt
	cDrain         // test-and-set awake; pending V?
	cDrainP        // drain the pending V (never blocks in a correct run)
	cSleep         // C.4: block(consumer)
	cWake          // C.5: awake <- true
	cDone
)

// Producer program counters.
const (
	pEnq  = iota // P.1: enqueue
	pTAS         // P.2 with fix: test-and-set awake
	pRead        // P.2 without fix: read awake
	pTest        // P.2 without fix: decide from the stale read
	pV           // P.3: unblock(consumer)
	pDone
)

// state is the full interleaving-exploration state. It is a value type
// used as a map key, so exploration memoises on the complete state.
type state struct {
	queue    int8
	awake    bool
	sem      int8
	consumed int8

	cpc     int8 // consumer pc
	blocked bool // consumer blocked in P with nothing pending

	ppc  [maxProducers]int8
	preg [maxProducers]bool // producer's stale read of awake
	sent [maxProducers]int8

	crashed bool // a producer died owing a V (CrashLastV fired)
}

const maxProducers = 3

// Check exhaustively explores every interleaving of the configured
// protocol variant.
func Check(cfg Config) (Result, error) {
	if cfg.Producers < 1 || cfg.Producers > maxProducers {
		return Result{}, fmt.Errorf("protomodel: producers must be in [1,%d]", maxProducers)
	}
	if cfg.Msgs < 1 || cfg.Msgs > 4 {
		return Result{}, fmt.Errorf("protomodel: msgs must be in [1,4]")
	}
	target := int8(cfg.Producers * cfg.Msgs)

	c := &checker{cfg: cfg, target: target, seen: map[state]bool{}, allConsumed: true}
	init := state{awake: true, cpc: cTop}
	for i := 0; i < cfg.Producers; i++ {
		init.ppc[i] = pEnq
	}
	c.explore(init, nil)
	c.res.States = len(c.seen)
	c.res.AllConsumed = c.res.Terminal > 0 && c.allConsumed
	return c.res, nil
}

type checker struct {
	cfg         Config
	target      int8
	seen        map[state]bool
	res         Result
	allConsumed bool
}

func (c *checker) explore(s state, path []string) {
	if c.seen[s] {
		return
	}
	c.seen[s] = true
	if int(s.sem) > c.res.MaxSem {
		c.res.MaxSem = int(s.sem)
	}

	moved := false

	// Consumer step.
	if ns, label, ok := c.stepConsumer(s); ok {
		moved = true
		c.explore(ns, pathAppend(path, label))
	}
	// Producer steps.
	for i := 0; i < c.cfg.Producers; i++ {
		if ns, label, ok := c.stepProducer(s, i); ok {
			moved = true
			c.explore(ns, pathAppend(path, label))
		}
	}
	// Sweeper step.
	if c.cfg.Sweeper {
		if ns, label, ok := c.stepSweeper(s); ok {
			moved = true
			c.explore(ns, pathAppend(path, label))
		}
	}

	if moved {
		return
	}
	// No process can step: terminal or deadlocked.
	producersDone := true
	for i := 0; i < c.cfg.Producers; i++ {
		if s.ppc[i] != pDone {
			producersDone = false
		}
	}
	if s.cpc == cDone && producersDone {
		c.res.Terminal++
		if s.consumed != c.target {
			c.allConsumed = false
		}
		return
	}
	if !c.res.Deadlock {
		c.res.Deadlock = true
		c.res.DeadlockPath = append([]string(nil), path...)
	}
}

// stepConsumer executes the consumer's enabled step, if any.
func (c *checker) stepConsumer(s state) (state, string, bool) {
	switch s.cpc {
	case cTop:
		if s.queue > 0 {
			s.queue--
			s.consumed++
			s.cpc = c.afterConsume(s.consumed)
			return s, "C.1 dequeue-ok", true
		}
		s.cpc = cClear
		return s, "C.1 dequeue-empty", true

	case cClear:
		s.awake = false
		if c.cfg.UseC3 {
			s.cpc = cDeq2
		} else {
			s.cpc = cSleep
		}
		return s, "C.2 awake=0", true

	case cDeq2:
		if s.queue > 0 {
			s.queue--
			s.consumed++
			if c.cfg.ConsumerDrain {
				s.cpc = cDrain
			} else {
				s.cpc = c.afterConsume(s.consumed)
			}
			return s, "C.3 dequeue-ok", true
		}
		s.cpc = cSleep
		return s, "C.3 dequeue-empty", true

	case cDrain:
		old := s.awake
		s.awake = true
		if old && c.cfg.CountingSem {
			s.cpc = cDrainP // a producer signalled: drain its V
		} else {
			// No pending signal (or event semantics, where there is no
			// count to drain).
			s.cpc = c.afterConsume(s.consumed)
		}
		return s, "C.3' tas(awake)", true

	case cDrainP:
		if s.sem > 0 {
			s.sem--
			s.cpc = c.afterConsume(s.consumed)
			return s, "C.3' P(drain)", true
		}
		// The pending V has not landed yet: wait for it (the producer
		// that set the flag is still before its V step).
		return s, "", false

	case cSleep:
		if c.cfg.CountingSem {
			if s.sem > 0 {
				s.sem--
				s.cpc = cWake
				return s, "C.4 P()", true
			}
			return s, "", false // blocked until a V
		}
		// Event semantics: mark blocked; only a producer's unblock can
		// transition us (handled in the producer's V step).
		if !s.blocked {
			s.blocked = true
			return s, "C.4 block()", true
		}
		return s, "", false

	case cWake:
		s.awake = true
		s.cpc = cTop
		return s, "C.5 awake=1", true
	}
	return s, "", false
}

func (c *checker) afterConsume(consumed int8) int8 {
	if consumed >= c.target {
		return cDone
	}
	return cTop
}

// stepProducer executes producer i's enabled step, if any.
func (c *checker) stepProducer(s state, i int) (state, string, bool) {
	name := func(step string) string { return fmt.Sprintf("P%d.%s", i+1, step) }
	switch s.ppc[i] {
	case pEnq:
		s.queue++
		s.sent[i]++
		if c.cfg.ProducerTAS {
			s.ppc[i] = pTAS
		} else {
			s.ppc[i] = pRead
		}
		return s, name("1 enqueue"), true

	case pTAS:
		old := s.awake
		s.awake = true
		if !old {
			s.ppc[i] = pV
		} else {
			s.ppc[i] = c.nextMsg(s, i)
		}
		return s, name("2 tas(awake)"), true

	case pRead:
		s.preg[i] = s.awake
		s.ppc[i] = pTest
		return s, name("2 read awake"), true

	case pTest:
		if !s.preg[i] {
			s.ppc[i] = pV
		} else {
			s.ppc[i] = c.nextMsg(s, i)
		}
		return s, name("2 test"), true

	case pV:
		if c.cfg.CrashLastV && i == 0 && int(s.sent[i]) >= c.cfg.Msgs {
			// The producer dies owing this V: the message is enqueued
			// and (under TAS) the flag is set, but the wake-up never
			// lands. Peers that test the flag will all skip their Vs.
			s.crashed = true
			s.ppc[i] = pDone
			return s, name("3 CRASH before V"), true
		}
		if c.cfg.CountingSem {
			s.sem++
		} else if s.blocked {
			s.blocked = false
			s.cpc = cWake
		}
		// Event semantics on a non-sleeping consumer: the wake-up is
		// lost (Interleaving 1's hazard).
		s.ppc[i] = c.nextMsg(s, i)
		return s, name("3 unblock"), true
	}
	return s, "", false
}

// stepSweeper executes the recovery sweeper's enabled step, if any: a
// compensating V when the consumer is blocked on the semaphore and
// either work is queued (the lost-wake rescue heuristic) or a crashed
// producer owes a wake-up (the peer-death path). Firing only while the
// consumer is actually blocked keeps the compensation bounded, exactly
// like the real sweeper's parked-across-two-sweeps condition.
func (c *checker) stepSweeper(s state) (state, string, bool) {
	if !c.cfg.CountingSem || s.sem != 0 {
		return s, "", false
	}
	if s.cpc != cSleep && s.cpc != cDrainP {
		return s, "", false
	}
	if s.queue == 0 && !s.crashed {
		return s, "", false
	}
	s.sem++
	return s, "S compensating V", true
}

// pathAppend copies on append so sibling branches cannot clobber a
// recorded counterexample trace.
func pathAppend(path []string, label string) []string {
	np := make([]string, len(path)+1)
	copy(np, path)
	np[len(path)] = label
	return np
}

func (c *checker) nextMsg(s state, i int) int8 {
	if int(s.sent[i]) >= c.cfg.Msgs {
		return pDone
	}
	return pEnq
}
