package experiment

import (
	"fmt"

	"ulipc/internal/chart"
	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/workload"
)

// RunMultiprog tests the paper's core motivation for blocking semantics
// (Section 1): "To obtain the best overall system throughput,
// particularly in multi-programmed environments, the IPC mechanism
// should support blocking semantics." A CPU-bound background process
// competes with the IPC pair on the uniprocessor; the busy-waiting BSS
// algorithm burns the CPU it yields back and forth, while the blocking
// protocols leave it to the background job.
func RunMultiprog(opt Options) (*Report, error) {
	r := newReport("multiprog", "Multiprogrammed environment: IPC vs a CPU-bound competitor",
		"busy-waiting wastes processor cycles other processes could use; blocking protocols preserve background throughput at a modest IPC cost")
	msgs := opt.msgs()
	m := machine.SGIIndy()

	// Requests are deliberately infrequent (client think time): the
	// paper's waste scenario is a server spinning between requests.
	const think = 400 * machine.Microsecond

	t := &chart.Table{
		Title:   "SGI uniprocessor, 1 client (400us think time) + 1 CPU-bound background process",
		Headers: []string{"protocol", "IPC msgs/ms", "IPC rtt (us)", "background CPU share"},
	}
	type variant struct {
		name string
		cfg  workload.Config
	}
	variants := []variant{
		{"BSS", workload.Config{Machine: m, Alg: core.BSS}},
		{"BSLS-20", workload.Config{Machine: m, Alg: core.BSLS, MaxSpin: 20}},
		{"BSW", workload.Config{Machine: m, Alg: core.BSW}},
		{"SYSV", workload.Config{Machine: m, Transport: workload.TransportSysV}},
	}
	for _, v := range variants {
		cfg := v.cfg
		cfg.Clients = 1
		cfg.Msgs = msgs
		cfg.Background = 1
		cfg.ClientThink = think
		res, err := workload.RunSim(cfg)
		if err != nil {
			return nil, err
		}
		share := res.BackgroundCPUShare()
		t.AddRow(v.name, f2(res.Throughput), f1(res.RTTMicros), f2(share))
		r.Records["multiprog/"+v.name+"/throughput"] = res.Throughput
		r.Records["multiprog/"+v.name+"/bgshare"] = share
	}
	r.Tables = append(r.Tables, t)

	// System throughput view: how much background work gets done per
	// 1000 IPC messages under each protocol.
	t2 := &chart.Table{
		Title:   "Background CPU milliseconds obtained per 1000 IPC messages",
		Headers: []string{"protocol", "bg ms / 1000 msgs"},
	}
	for _, v := range variants {
		name := v.name
		th := r.Records["multiprog/"+name+"/throughput"]
		share := r.Records["multiprog/"+name+"/bgshare"]
		if th > 0 {
			per1000 := share * 1000 / th // ms of bg CPU per 1000 messages
			t2.AddRow(name, f2(per1000))
			r.Records["multiprog/"+name+"/bg_per_1000"] = per1000
		}
	}
	r.Tables = append(r.Tables, t2)
	r.note(fmt.Sprintf("Blocking protocols cede the CPU whenever both IPC parties wait; the background share under BSW should far exceed BSS (msgs=%d).", msgs))
	return r, nil
}
