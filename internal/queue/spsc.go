package queue

import (
	"fmt"
	"sync/atomic"

	"ulipc/internal/core"
)

// SPSC is a cache-line-padded Lamport single-producer/single-consumer
// ring with cached indices [Lamport '77; Torquati, "Single-Producer/
// Single-Consumer Queues on Shared Cache Multi-Core Systems"]. The
// producer caches the consumer index and the consumer caches the
// producer index, so in the common (non-boundary) case an operation
// touches only the caller's own cache line: zero cross-core loads, zero
// CAS, zero per-slot sequence atomics. That makes it strictly cheaper
// than the MPMC Ring wherever the topology permits it.
//
// Contract: exactly ONE goroutine may call Enqueue and exactly ONE
// goroutine may call Dequeue. The two may differ, and ownership may be
// handed to another goroutine if the handoff is itself synchronized
// (e.g. livebind's connection-slot reuse hands the consumer side over
// under a mutex). Violating the contract corrupts the ring silently —
// which is why the generic constructor New rejects KindSPSC and callers
// must use NewSPSC directly, asserting the topology at the call site.
// Empty and Len are safe from any goroutine.
//
// The live runtime uses it for per-client reply channels, where the
// topology is SPSC by construction: one server (or one duplex handler)
// produces replies, one client consumes them.
type SPSC struct {
	mask  uint64
	slots []core.Msg

	_ [64]byte // keep the consumer line off the read-only header

	// Consumer-owned cache line: only Dequeue writes these.
	head       atomic.Uint64 // next index to dequeue
	cachedTail uint64        // consumer's last-seen copy of tail
	_          [48]byte

	// Producer-owned cache line: only Enqueue writes these.
	tail       atomic.Uint64 // next index to enqueue
	cachedHead uint64        // producer's last-seen copy of head
	_          [48]byte
}

// NewSPSC builds an SPSC ring holding at least capacity messages
// (rounded up to the next power of two, like NewRing). The caller
// asserts the single-producer/single-consumer contract documented on
// SPSC.
func NewSPSC(capacity int) (*SPSC, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("queue: capacity must be >= 1, got %d", capacity)
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &SPSC{mask: uint64(n - 1), slots: make([]core.Msg, n)}, nil
}

// Cap implements Queue. Like Ring, the effective capacity is the
// requested one rounded up to a power of two.
func (q *SPSC) Cap() int { return len(q.slots) }

// Enqueue implements Queue. Producer side only.
func (q *SPSC) Enqueue(m core.Msg) bool {
	t := q.tail.Load()
	if t-q.cachedHead == uint64(len(q.slots)) {
		// Ring looks full against the cached consumer position; refresh
		// the cache with one cross-core load and re-check.
		q.cachedHead = q.head.Load()
		if t-q.cachedHead == uint64(len(q.slots)) {
			return false
		}
	}
	q.slots[t&q.mask] = m
	q.tail.Store(t + 1) // release: publishes the slot write
	return true
}

// Dequeue implements Queue. Consumer side only.
func (q *SPSC) Dequeue() (core.Msg, bool) {
	h := q.head.Load()
	if h == q.cachedTail {
		q.cachedTail = q.tail.Load()
		if h == q.cachedTail {
			return core.Msg{}, false
		}
	}
	m := q.slots[h&q.mask]
	q.head.Store(h + 1) // release: returns the slot to the producer
	return m, true
}

// Empty implements Queue. Unlike Enqueue/Dequeue it is safe from any
// goroutine (it reads only the atomic indices and mutates no cache), so
// the BSLS spin loop can poll it freely.
func (q *SPSC) Empty() bool {
	return q.head.Load() == q.tail.Load()
}

// Len returns the number of queued messages, clamped to [0, Cap()]
// (the two indices are loaded independently, so a racing snapshot can
// be momentarily inconsistent).
func (q *SPSC) Len() int {
	t, h := q.tail.Load(), q.head.Load()
	if t < h {
		return 0
	}
	n := t - h
	if n > uint64(len(q.slots)) {
		return len(q.slots)
	}
	return int(n)
}
