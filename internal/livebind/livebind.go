// Package livebind binds the protocol code of internal/core to a real
// in-process runtime: queues from internal/queue, atomic test-and-set on
// the awake flags, runtime.Gosched as yield, and cancellable counting
// semaphores with direct token hand-off (see Semaphore).
//
// This is the library surface a Go program uses directly. "Processes"
// are goroutines (optionally pinned to OS threads); the address-space
// boundary of the paper's deployment is elided, but every code path —
// the queues, the awake-flag races, the wake-up system calls — is the
// same one a shared-memory deployment exercises. See DESIGN.md for the
// substitution rationale.
package livebind

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/fault"
	"ulipc/internal/metrics"
	"ulipc/internal/obs"
	"ulipc/internal/queue"
	"ulipc/internal/shm"
)

// Channel is one unidirectional shared queue plus its consumer's wake
// state (awake flag and semaphore) — the live analogue of the paper's
// shared-memory queue segment.
//
// The wake-state words are padded onto separate 64-byte cache lines:
// the awake flag is test-and-set by every producer and stored by the
// consumer on every blocking cycle, the waiters count is CASed by pool
// clients and workers, and neither should invalidate the read-mostly
// header (queue interface, semaphore pointer, sem id) or each other.
type Channel struct {
	q    queue.Queue
	sem  *Semaphore
	id   core.SemID
	kind queue.Kind

	// Shutdown state (core.PortState). refuse flips first (producers
	// stop, consumers drain), closed second (consumers unblock). Both
	// are written once, at shutdown, and only loaded on blocking/empty
	// cycles — they share the read-mostly header line by design.
	refuse atomic.Bool
	closed atomic.Bool

	// dead marks a channel whose peer (its only consumer, or its every
	// producer) has been declared dead by the recovery sweeper. It
	// upgrades the closed state's ErrShutdown to core.ErrPeerDead on the
	// *Ctx paths (core.PortHealth); like refuse/closed it is written
	// once and loaded only on blocking cycles.
	dead atomic.Bool

	_       [64]byte
	awake   atomic.Bool
	_       [64]byte
	waiters atomic.Int64 // worker-pool registrations
	_       [64]byte
}

// NewChannel builds a channel over the given queue implementation.
// KindSPSC is rejected: a bare channel's topology is not provable (any
// number of ports may be attached to either side), so SPSC channels
// exist only inside System, which controls endpoint creation.
func NewChannel(kind queue.Kind, capacity int) (*Channel, error) {
	if kind == queue.KindSPSC {
		return nil, fmt.Errorf("livebind: KindSPSC needs a provably single-producer/single-consumer topology; use Options.ReplyKind (System enforces the topology) or queue.NewSPSC directly")
	}
	q, err := queue.New(kind, capacity)
	if err != nil {
		return nil, err
	}
	c := &Channel{q: q, kind: kind, sem: NewSemaphore(0)}
	c.awake.Store(true)
	return c, nil
}

// newSPSCChannel builds a channel over an SPSC ring. Callers (System)
// must guarantee a single producer endpoint and a single consumer
// endpoint; see the enforcement in System.Server/DuplexPair/WorkerPool.
func newSPSCChannel(capacity int) (*Channel, error) {
	q, err := queue.NewSPSC(capacity)
	if err != nil {
		return nil, err
	}
	c := &Channel{q: q, kind: queue.KindSPSC, sem: NewSemaphore(0)}
	c.awake.Store(true)
	return c, nil
}

// Kind returns the queue implementation the channel was built with.
func (c *Channel) Kind() queue.Kind { return c.kind }

// Queue exposes the underlying queue (diagnostics).
func (c *Channel) Queue() queue.Queue { return c.q }

// SemCount exposes the semaphore count (diagnostics and tests: the
// Figure 4 race analysis is about this value staying bounded).
func (c *Channel) SemCount() int64 { return c.sem.Count() }

// Sem exposes the channel's wake-up semaphore (diagnostics, tests).
func (c *Channel) Sem() *Semaphore { return c.sem }

// Refuse makes the channel reject new messages (producers observe
// Refusing and stop) while consumers keep draining — phase one of the
// graceful shutdown.
func (c *Channel) Refuse() { c.refuse.Store(true) }

// CloseDown fully shuts the channel: it refuses new messages, marks the
// channel closed (consumers return the shutdown marker once drained)
// and releases every waiter parked on the channel's semaphore.
func (c *Channel) CloseDown() {
	c.refuse.Store(true)
	c.closed.Store(true)
	c.sem.Close()
}

// MarkPeerDead is CloseDown for a partial failure: the sweeper calls it
// when one side of the channel is entirely dead. The closed state
// unblocks parked waiters exactly as in a shutdown, and the dead flag
// makes the *Ctx paths surface core.ErrPeerDead instead of ErrShutdown
// (legacy error-less paths still get the shutdown marker — they have no
// error surface).
func (c *Channel) MarkPeerDead() {
	c.dead.Store(true)
	c.CloseDown()
}

// PeerDead reports whether the sweeper declared the channel's peer dead.
func (c *Channel) PeerDead() bool { return c.dead.Load() }

// Port is a process's endpoint on a channel; it implements core.Port.
//
// A port built by System with Options.AllocBatch > 1 over a two-lock
// queue carries a private shm.PoolCache: TryEnqueue then draws nodes
// from the cache (refilled from the shared pool in batches) instead of
// CASing the pool head per message. Such a port must be Closed (or
// passed to DrainPort) when its owner retires, or the cached refs stay
// invisible to the pool's flow control.
type Port struct {
	c     *Channel
	tl    *queue.TwoLock // non-nil iff cache is non-nil or fh is enabled
	cache *shm.PoolCache
	m     *metrics.Proc // optional: batching statistics

	// Fault/recovery identity: owner tags the robust queue locks this
	// port takes (so the sweeper can reclaim them if the owner dies) and
	// fh carries the owner's injected-fault schedule. System-built ports
	// bind these when fault injection is on; otherwise the port operates
	// anonymously and the zero hook keeps the hot path to one nil check.
	owner int32
	fh    fault.Hook
}

// NewPort returns an endpoint view of the channel.
func NewPort(c *Channel) *Port { return &Port{c: c, owner: queue.AnonOwner} }

// newBatchedPort returns a producer endpoint with a private allocation
// cache of the given batch size when the channel's queue supports it
// (two-lock only — the other kinds have no shared node pool to batch).
func newBatchedPort(c *Channel, batch int, m *metrics.Proc) *Port {
	p := &Port{c: c, m: m, owner: queue.AnonOwner}
	if tl, ok := c.q.(*queue.TwoLock); ok && batch > 1 {
		p.tl = tl
		p.cache = tl.Pool().NewCache(batch)
	}
	return p
}

// bindActor attaches an actor's fault identity to the port: robust
// locks it takes are tagged with the actor id, and the actor's fault
// hook injects crashes inside the queue's critical sections. No-op
// binding when the actor carries no hook (fault injection off).
func (p *Port) bindActor(a *Actor) *Port {
	if !a.FH.Enabled() {
		return p
	}
	p.owner = a.ID
	p.fh = a.FH
	if tl, ok := p.c.q.(*queue.TwoLock); ok {
		p.tl = tl
	}
	return p
}

// TryEnqueue implements core.Port.
func (p *Port) TryEnqueue(m core.Msg) bool {
	if p.cache != nil {
		ref, ok, refilled := p.cache.Alloc()
		if refilled && p.m != nil {
			p.m.PoolRefills.Add(1)
		}
		if !ok {
			return false // cache and pool both exhausted: queue full
		}
		p.tl.EnqueueRefAs(p.owner, ref, m, p.fh)
		return true
	}
	if p.fh.Enabled() && p.tl != nil {
		return p.tl.EnqueueAs(p.owner, m, p.fh)
	}
	return p.c.q.Enqueue(m)
}

// Close drains the port's private allocation cache, if any, back to the
// shared pool. Idempotent; safe on uncached ports.
func (p *Port) Close() {
	if p.cache == nil {
		return
	}
	if p.cache.Drain() > 0 && p.m != nil {
		p.m.PoolSpills.Add(1)
	}
}

// DrainPort releases a port's private producer cache (no-op for ports
// of other bindings or uncached ports). Callers that build clients or
// servers from a batched System should drain the producer ports when
// the owning goroutine retires.
func DrainPort(p core.Port) {
	if lp, ok := p.(*Port); ok {
		lp.Close()
	}
}

// TryDequeue implements core.Port.
func (p *Port) TryDequeue() (core.Msg, bool) {
	if p.fh.Enabled() && p.tl != nil {
		return p.tl.DequeueAs(p.owner, p.fh)
	}
	return p.c.q.Dequeue()
}

// Empty implements core.Port.
func (p *Port) Empty() bool { return p.c.q.Empty() }

// Depth implements core.DepthPort: the channel's queued-message count,
// the admission-control observable (racy snapshot, like queue Len).
func (p *Port) Depth() int {
	if l, ok := p.c.q.(interface{ Len() int }); ok {
		return l.Len()
	}
	return 0
}

// SetAwake implements core.Port.
func (p *Port) SetAwake(v bool) { p.c.awake.Store(v) }

// TASAwake implements core.Port.
func (p *Port) TASAwake() bool { return p.c.awake.Swap(true) }

// Sem implements core.Port.
func (p *Port) Sem() core.SemID { return p.c.id }

// Refusing implements core.PortState.
func (p *Port) Refusing() bool { return p.c.refuse.Load() }

// Closed implements core.PortState.
func (p *Port) Closed() bool { return p.c.closed.Load() }

// PeerDead implements core.PortHealth.
func (p *Port) PeerDead() bool { return p.c.dead.Load() }

// Actor implements core.Actor over the Go runtime. Each participant
// (client or server goroutine) owns one Actor; the sems table maps
// core.SemID to the process-wide semaphores.
type Actor struct {
	sems []*Semaphore

	// SpinIters, when positive, makes BusyWait/PollDelay a bounded spin
	// (multiprocessor flavour); otherwise they are runtime.Gosched
	// (uniprocessor flavour).
	SpinIters int

	// SleepScale compresses the protocols' queue-full sleep(1) for
	// testing; 0 means full UNIX semantics (1 second).
	SleepScale time.Duration

	// Tun, when non-nil, is the handle's BSA controller: queue-full
	// naps stretch with its oversubscription backoff (Tuner.NapScale),
	// the producer-side half of the adaptive protocol.
	Tun *core.Tuner

	M *metrics.Proc // optional

	// Obs, when enabled, receives the sleep-phase durations (time spent
	// actually parked on a semaphore) and the block/wake flight-recorder
	// events. The zero Hook keeps P/V clock-free.
	Obs obs.Hook

	// ID is the actor's recovery identity: robust queue locks taken
	// through this actor's ports are tagged with it, and crash reports
	// name it. Assigned by System.newActor; queue.AnonOwner otherwise.
	ID int32

	// FH is the actor's fault-injection hook (zero when injection is
	// off). The chaos harness also calls FH.Crashpoint(fault.PtBody)
	// between protocol operations to kill actors outside the runtime's
	// own injection points.
	FH fault.Hook

	// life is the actor's slot in the recovery lifetable (nil when
	// recovery is off); hot operations beat it so lease-based detection
	// can tell a live-but-parked actor from a vanished one.
	life *lifeSlot

	spinSink int64
}

// beat records liveness progress for lease-based peer-death detection.
func (a *Actor) beat() {
	if a.life != nil {
		a.life.beat.Add(1)
	}
}

// Yield implements core.Actor.
func (a *Actor) Yield() {
	if a.M != nil {
		a.M.Yields.Add(1)
	}
	runtime.Gosched()
}

// BusyWait implements core.Actor.
func (a *Actor) BusyWait() {
	if a.SpinIters > 0 {
		a.spin(a.SpinIters)
		return
	}
	runtime.Gosched()
}

// PollDelay implements core.Actor.
func (a *Actor) PollDelay() { a.BusyWait() }

// SleepSec implements core.Actor.
func (a *Actor) SleepSec(s int) {
	if a.M != nil {
		a.M.Sleeps.Add(1)
	}
	d := time.Duration(s) * time.Second
	if a.SleepScale > 0 {
		d = time.Duration(s) * a.SleepScale
	}
	if a.Tun != nil {
		d = a.Tun.NapScale(d)
	}
	time.Sleep(d)
}

// P implements core.Actor. When the call actually sleeps it is counted
// as a block; with observability attached the parked duration lands in
// the sleep-phase histogram and an EvBlock event (arg: blocked ns) on
// the flight recorder. The non-blocking path takes no timestamps.
func (a *Actor) P(id core.SemID) {
	if a.M != nil {
		a.M.SemP.Add(1)
	}
	a.beat()
	a.FH.Crashpoint(fault.PtBlock)
	if !a.Obs.Enabled() {
		if a.sems[id].P() && a.M != nil {
			a.M.Blocks.Add(1)
		}
		return
	}
	t0 := time.Now()
	if a.sems[id].P() {
		d := time.Since(t0)
		if a.M != nil {
			a.M.Blocks.Add(1)
		}
		a.Obs.Sleep(d)
		a.Obs.Note(obs.EvBlock, d.Nanoseconds())
	}
}

// V implements core.Actor. A V that (plausibly) woke a sleeper counts
// as a wake-up and is noted on the flight recorder (arg: semaphore id).
//
// With fault injection enabled, the V may be mutated: dropped (the lost
// wake-up the sweeper's rescue heuristic must repair), duplicated (the
// spurious wake-up the protocols' token accounting must absorb), or
// delayed. A crashpoint right before the mutation models a producer
// dying owing its wake-up — Figure 4's race window, made permanent.
func (a *Actor) V(id core.SemID) {
	if a.M != nil {
		a.M.SemV.Add(1)
	}
	a.beat()
	if a.FH.Enabled() {
		a.FH.Crashpoint(fault.PtWake)
		switch a.FH.WakeOp() {
		case fault.WakeDrop:
			return // the V never happens
		case fault.WakeDup:
			a.sems[id].V()
		case fault.WakeDelay:
			time.Sleep(a.FH.WakeDelayDur())
		}
	}
	if a.sems[id].V() {
		if a.M != nil {
			a.M.Wakeups.Add(1)
		}
		a.Obs.Note(obs.EvWake, int64(id))
	}
}

// Handoff implements core.Actor. The Go runtime exposes no hand-off
// primitive, so the hint degrades to a yield — exactly the fallback the
// paper's portable implementation uses.
func (a *Actor) Handoff(target int) { a.Yield() }

// countCtxErr attributes a cancellation outcome to the robustness
// counters and the flight recorder.
func (a *Actor) countCtxErr(err error) {
	if err == nil {
		return
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		if a.M != nil {
			a.M.Timeouts.Add(1)
		}
		a.Obs.Note(obs.EvTimeout, 0)
	case errors.Is(err, context.Canceled):
		if a.M != nil {
			a.M.Cancels.Add(1)
		}
		a.Obs.Note(obs.EvCancel, 0)
	}
}

// PCtx implements core.CtxActor: P with cancellation and exact token
// accounting (see Semaphore.PCtx). Sleep attribution mirrors P.
func (a *Actor) PCtx(ctx context.Context, id core.SemID) error {
	if a.M != nil {
		a.M.SemP.Add(1)
	}
	a.beat()
	a.FH.Crashpoint(fault.PtBlock)
	if !a.Obs.Enabled() {
		slept, err := a.sems[id].PCtx(ctx)
		if slept && a.M != nil {
			a.M.Blocks.Add(1)
		}
		a.countCtxErr(err)
		return err
	}
	t0 := time.Now()
	slept, err := a.sems[id].PCtx(ctx)
	if slept {
		d := time.Since(t0)
		if a.M != nil {
			a.M.Blocks.Add(1)
		}
		a.Obs.Sleep(d)
		a.Obs.Note(obs.EvBlock, d.Nanoseconds())
	}
	a.countCtxErr(err)
	return err
}

// SleepCtx implements core.CtxActor: the queue-full nap, cancellable.
func (a *Actor) SleepCtx(ctx context.Context, s int) error {
	if a.M != nil {
		a.M.Sleeps.Add(1)
	}
	d := time.Duration(s) * time.Second
	if a.SleepScale > 0 {
		d = time.Duration(s) * a.SleepScale
	}
	if a.Tun != nil {
		d = a.Tun.NapScale(d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		a.countCtxErr(ctx.Err())
		return ctx.Err()
	}
}

// spin burns CPU without synchronisation. The accumulator is per-Actor
// (one Actor per goroutine), so there is no shared mutable state.
//
//go:noinline
func (a *Actor) spin(n int) {
	acc := a.spinSink
	for i := 0; i < n; i++ {
		acc += int64(i)
	}
	a.spinSink = acc
}

var (
	_ core.Port       = (*Port)(nil)
	_ core.Actor      = (*Actor)(nil)
	_ core.CtxActor   = (*Actor)(nil)
	_ core.PortState  = (*Port)(nil)
	_ core.PortHealth = (*Port)(nil)
	_ core.DepthPort  = (*Port)(nil)
)

// PoolPort is a channel endpoint whose consumer side is a worker pool
// (counted waiters); it implements core.PoolPort.
type PoolPort struct {
	c *Channel
}

// NewPoolPort returns a pool-endpoint view of the channel.
func NewPoolPort(c *Channel) *PoolPort { return &PoolPort{c: c} }

// TryEnqueue implements core.PoolPort.
func (p *PoolPort) TryEnqueue(m core.Msg) bool { return p.c.q.Enqueue(m) }

// TryDequeue implements core.PoolPort.
func (p *PoolPort) TryDequeue() (core.Msg, bool) { return p.c.q.Dequeue() }

// Empty implements core.PoolPort.
func (p *PoolPort) Empty() bool { return p.c.q.Empty() }

// RegisterWaiter implements core.PoolPort.
func (p *PoolPort) RegisterWaiter() { p.c.waiters.Add(1) }

// TryUnregisterWaiter implements core.PoolPort.
func (p *PoolPort) TryUnregisterWaiter() bool { return decIfPositive(&p.c.waiters) }

// ClaimWaiter implements core.PoolPort.
func (p *PoolPort) ClaimWaiter() bool { return decIfPositive(&p.c.waiters) }

// Sem implements core.PoolPort.
func (p *PoolPort) Sem() core.SemID { return p.c.id }

// Refusing implements core.PortState.
func (p *PoolPort) Refusing() bool { return p.c.refuse.Load() }

// Closed implements core.PortState.
func (p *PoolPort) Closed() bool { return p.c.closed.Load() }

// PeerDead implements core.PortHealth.
func (p *PoolPort) PeerDead() bool { return p.c.dead.Load() }

// decIfPositive atomically decrements v if it is positive.
func decIfPositive(v *atomic.Int64) bool {
	for {
		cur := v.Load()
		if cur <= 0 {
			return false
		}
		if v.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

var (
	_ core.PoolPort   = (*PoolPort)(nil)
	_ core.PortState  = (*PoolPort)(nil)
	_ core.PortHealth = (*PoolPort)(nil)
)
