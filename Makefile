GO ?= go

.PHONY: build test race vet bench bench-live

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchmem

# Regenerate the live wall-clock benchmark document. One run per cell of
# {queue configuration} x {protocol} x {1,4,16 clients}; see DESIGN.md §6.
# -watchdog 0 keeps the recorded trajectory on the legacy (error-less)
# send path so successive BENCH_live.json snapshots stay comparable;
# interactive runs default to a watchdog (see README).
bench-live:
	$(GO) run ./cmd/ipcbench -live -watchdog 0 -json -o BENCH_live.json
	@echo wrote BENCH_live.json
