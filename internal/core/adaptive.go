package core

import (
	"sync/atomic"
	"time"

	"ulipc/internal/metrics"
	"ulipc/internal/obs"
)

// Tuner is BSA's online controller: one per channel consumer, tuning
// that consumer's spin budget (and the producer-side nap scale) from
// the feedback the paper leaves on the table. BSLS answers the
// spin-vs-block tradeoff once, at compile time, with MAX_SPIN=20; the
// controller answers it continuously:
//
//   - Every wait reports how long the spin prefix ran and whether it
//     fell through to the blocking path (Observe). Successful spins
//     feed an EWMA of the arrival lag; the budget tracks 2x that EWMA,
//     so a reply that usually lands after k polls is awaited ~2k polls
//     before paying the park/wake pair.
//   - A high fall-through (slept-wake) ratio is the oversubscription
//     signature — more runnable parties than processors, where spinning
//     only steals cycles from whoever would produce the message. The
//     controller then backs the budget off multiplicatively and
//     stretches the queue-full naps (NapScale), the same positive-
//     feedback break the Section 5 throttle applies from the outside.
//
// Budget is read on the hot path with one atomic load from the same
// struct the owning consumer just wrote — per-handle tuners mean the
// line stays in that consumer's cache, so consulting the live
// controller costs no more than the static MaxSpin field it replaces.
// The EWMA state is owned by the consumer goroutine (handles are
// single-goroutine by contract); only budget, nap scale and the
// decision counters are atomic, because metrics exporters read them
// from other goroutines.
type Tuner struct {
	budget atomic.Int64 // current spin budget, poll iterations
	nap    atomic.Int64 // queue-full nap scale, fixed-point /256 (256 = 1x)

	// EWMA state, fixed-point, owned by the waiting goroutine.
	ewmaSpin int64 // successful spin length x16
	ewmaFell int64 // fall-through indicator x1024

	min, max int64

	// Decision counters for the observability layer.
	Polls     atomic.Int64 // Observe calls (one per wait with a spin prefix)
	FallThrus atomic.Int64 // waits whose spin budget expired (slept)
	Grows     atomic.Int64 // budget raised
	Shrinks   atomic.Int64 // budget lowered (tracking shorter arrivals)
	Backoffs  atomic.Int64 // budget halved by the oversubscription guard
}

// TunerConfig bounds the controller. Zero values pick the defaults:
// Initial = DefaultMaxSpin (the paper's MAX_SPIN, so an idle BSA
// channel starts exactly where hand-tuned BSLS starts), Min = 2,
// Max = 512.
type TunerConfig struct {
	Initial int
	Min     int
	Max     int
}

// Default controller bounds.
const (
	DefaultSpinMin = 2
	DefaultSpinMax = 512
)

// NewTuner builds a controller with the given bounds.
func NewTuner(cfg TunerConfig) *Tuner {
	t := &Tuner{}
	t.min, t.max = int64(cfg.Min), int64(cfg.Max)
	if t.min <= 0 {
		t.min = DefaultSpinMin
	}
	if t.max <= 0 {
		t.max = DefaultSpinMax
	}
	if t.max < t.min {
		t.max = t.min
	}
	init := int64(cfg.Initial)
	if init <= 0 {
		init = DefaultMaxSpin
	}
	t.budget.Store(clamp64(init, t.min, t.max))
	t.ewmaSpin = t.budget.Load() << 3 // half the budget, x16
	t.nap.Store(256)
	return t
}

// Budget returns the current spin budget (the hot-path read).
func (t *Tuner) Budget() int { return int(t.budget.Load()) }

// NapScale scales a producer's queue-full nap: 1x normally, stretched
// up to 4x while the oversubscription guard is backing off.
func (t *Tuner) NapScale(d time.Duration) time.Duration {
	s := t.nap.Load()
	if s == 256 {
		return d
	}
	return d * time.Duration(s) / 256
}

// EWMA smoothing: new = old + (sample - old)/ewmaDiv.
const ewmaDiv = 8

// Observe feeds back one wait: the spin prefix ran spun iterations,
// and fell reports whether it expired with the queue still empty (the
// wait went on to park). Called by the owning consumer goroutine only.
func (t *Tuner) Observe(spun int, fell bool) {
	t.Polls.Add(1)
	if fell {
		t.FallThrus.Add(1)
		t.ewmaFell += (1024 - t.ewmaFell) / ewmaDiv
	} else {
		t.ewmaFell -= t.ewmaFell / ewmaDiv
		t.ewmaSpin += (int64(spun)<<4 - t.ewmaSpin) / ewmaDiv
	}

	cur := t.budget.Load()
	var target int64
	oversub := t.ewmaFell > 512 // most recent waits slept anyway
	if oversub {
		target = clamp64(cur/2, t.min, t.max)
	} else {
		target = clamp64(2*(t.ewmaSpin>>4)+1, t.min, t.max)
	}
	// Step halfway to the target each wait: geometric smoothing without
	// a second EWMA, so one outlier arrival cannot whipsaw the budget.
	next := cur + (target-cur)/2
	if next == cur && target != cur {
		if target > cur {
			next = cur + 1
		} else {
			next = cur - 1
		}
	}
	switch {
	case next > cur:
		t.Grows.Add(1)
	case next < cur && oversub:
		t.Backoffs.Add(1)
	case next < cur:
		t.Shrinks.Add(1)
	}
	if next != cur {
		t.budget.Store(next)
	}

	// Nap scale follows the oversubscription signal: stretch toward 4x
	// while backing off, relax toward 1x otherwise.
	nap := t.nap.Load()
	if oversub && nap < 1024 {
		t.nap.Store(nap * 2)
	} else if !oversub && nap > 256 {
		t.nap.Store(nap / 2)
	}
}

// TunerSnapshot is a point-in-time view of one controller, for the
// metrics exporters.
type TunerSnapshot struct {
	Budget    int64 `json:"budget"`
	Polls     int64 `json:"polls"`
	FallThrus int64 `json:"fall_thrus"`
	Grows     int64 `json:"grows"`
	Shrinks   int64 `json:"shrinks"`
	Backoffs  int64 `json:"backoffs"`
}

// Snapshot reads the controller's gauge and decision counters.
func (t *Tuner) Snapshot() TunerSnapshot {
	return TunerSnapshot{
		Budget:    t.budget.Load(),
		Polls:     t.Polls.Load(),
		FallThrus: t.FallThrus.Load(),
		Grows:     t.Grows.Load(),
		Shrinks:   t.Shrinks.Load(),
		Backoffs:  t.Backoffs.Load(),
	}
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// adaptiveSpin is BSA's spin prefix: Figure 9's limited-spin loop with
// the budget read from the controller and the outcome fed back. The
// fall-through predicate is exact (queue still empty after the loop),
// unlike the metrics counter's budget-exhausted approximation — the
// controller must not count a last-iteration arrival as a sleep.
func adaptiveSpin(q interface{ Empty() bool }, a Actor, t *Tuner, m *metrics.Proc, h obs.Hook) {
	var t0 time.Time
	if h.H != nil {
		t0 = time.Now()
	}
	if m != nil {
		m.SpinLoops.Add(1)
	}
	budget := t.Budget()
	spincnt := 0
	for q.Empty() && spincnt < budget {
		a.PollDelay()
		spincnt++
		if m != nil {
			m.SpinIters.Add(1)
		}
	}
	fell := q.Empty()
	if fell && m != nil {
		m.SpinFallThrus.Add(1)
	}
	t.Observe(spincnt, fell)
	if h.H != nil {
		h.Spin(time.Since(t0))
	}
}
