package queue

import (
	"fmt"
	"sync/atomic"

	"ulipc/internal/core"
)

// Lanes is a fan-in view over a set of per-producer SPSC rings that
// share one logical consumer: each producer owns exactly one lane (so
// every ring keeps its single-producer contract), and the consumer
// scans the lanes round-robin. This is the Torquati-style composition
// — SPSC rings as the building block, fan-in done by the consumer —
// that lets a server shard own one wait-free lane per client instead
// of one contended MPMC queue.
//
// Lanes implements Queue so it can sit behind a livebind Channel and
// inherit the existing shutdown-drain and recovery machinery, with one
// deliberate exception: Enqueue always reports full. Producers must
// enqueue through their own ring via Lane(i); the fan-in view cannot
// know which lane a caller owns, and accepting messages on an
// arbitrary lane would break the SPSC contract the whole construction
// exists to preserve.
//
// The consumer side is guarded by a per-lane try-lock so that a
// bounded work-stealing peer (Steal) — or a shutdown/recovery drainer
// running while the owner is still live — can dequeue without racing
// the owner on the ring's consumer-local state (head + cached tail).
// The lock is an atomic CAS: release(Store) → acquire(CAS) orders the
// consumer-local writes between alternating dequeuers. Producers never
// touch the locks.
type Lanes struct {
	lanes []*SPSC
	locks []laneLock
	next  atomic.Uint32 // round-robin cursor (shared with drainers)
}

// laneLock is a padded consumer try-lock, one per lane, each on its
// own cache line so a thief hammering one lane's lock does not false-
// share with the owner scanning its neighbours.
type laneLock struct {
	held atomic.Bool
	_    [63]byte
}

// NewLanes builds the fan-in view. The lane slice is captured, not
// copied: index i must be the lane owned by producer i for the
// lifetime of the view.
func NewLanes(lanes []*SPSC) (*Lanes, error) {
	if len(lanes) == 0 {
		return nil, fmt.Errorf("queue: Lanes needs at least one lane")
	}
	for i, ln := range lanes {
		if ln == nil {
			return nil, fmt.Errorf("queue: Lanes lane %d is nil", i)
		}
	}
	return &Lanes{lanes: lanes, locks: make([]laneLock, len(lanes))}, nil
}

// Lane returns producer i's ring. The producer enqueues here directly
// — wait-free, no fan-in coordination.
func (l *Lanes) Lane(i int) *SPSC { return l.lanes[i] }

// NumLanes returns the number of lanes.
func (l *Lanes) NumLanes() int { return len(l.lanes) }

// Enqueue always reports full: producers must use Lane(i).Enqueue to
// keep each ring single-producer. Present only to satisfy Queue.
func (l *Lanes) Enqueue(core.Msg) bool { return false }

// Dequeue removes one message, scanning the lanes round-robin from
// just past the last served lane. Lanes that look empty are skipped
// without touching their lock; a lane whose lock is held (a thief or
// drainer is on it) is also skipped — the holder is responsible for
// re-waking this consumer if it leaves messages behind (see the steal
// protocol in DESIGN.md §10).
func (l *Lanes) Dequeue() (core.Msg, bool) {
	n := uint32(len(l.lanes))
	start := l.next.Load()
	for k := uint32(0); k < n; k++ {
		i := (start + k) % n
		ln := l.lanes[i]
		if ln.Empty() {
			continue
		}
		if !l.locks[i].held.CompareAndSwap(false, true) {
			continue
		}
		m, ok := ln.Dequeue()
		l.locks[i].held.Store(false)
		if ok {
			l.next.Store((i + 1) % n)
			return m, true
		}
	}
	return core.Msg{}, false
}

// Steal drains up to len(dst) messages from the single deepest lane,
// provided that lane holds at least min messages, and reports how many
// were taken. It is the bounded work-stealing primitive: a sibling
// shard whose own lanes ran dry calls it on the victim's Lanes. The
// caller must re-wake the victim if the stolen lane (or any other)
// still holds messages afterwards — the victim may have parked while
// this steal held the lane lock, consuming the producer's wake token
// without seeing the message it announced.
func (l *Lanes) Steal(dst []core.Msg, min int) int {
	if len(dst) == 0 {
		return 0
	}
	if min < 1 {
		min = 1
	}
	best, depth := -1, min-1
	for i, ln := range l.lanes {
		if d := ln.Len(); d > depth {
			best, depth = i, d
		}
	}
	if best < 0 {
		return 0
	}
	if !l.locks[best].held.CompareAndSwap(false, true) {
		return 0
	}
	n := 0
	for n < len(dst) {
		m, ok := l.lanes[best].Dequeue()
		if !ok {
			break
		}
		dst[n] = m
		n++
	}
	l.locks[best].held.Store(false)
	return n
}

// Empty reports whether every lane appears empty.
func (l *Lanes) Empty() bool {
	for _, ln := range l.lanes {
		if !ln.Empty() {
			return false
		}
	}
	return true
}

// Len returns the total queued messages across lanes (racy, like the
// underlying SPSC.Len; used for depth-based shard selection and steal
// victim choice).
func (l *Lanes) Len() int {
	n := 0
	for _, ln := range l.lanes {
		n += ln.Len()
	}
	return n
}

// Cap returns the summed lane capacity.
func (l *Lanes) Cap() int {
	n := 0
	for _, ln := range l.lanes {
		n += ln.Cap()
	}
	return n
}
