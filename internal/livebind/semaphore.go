package livebind

import "sync"

// Semaphore is a counting semaphore with System V semantics: P blocks
// while the count is zero; V increments the count or wakes one waiter.
// Like the kernel primitive, V never yields the caller.
type Semaphore struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int64
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(initial int64) *Semaphore {
	s := &Semaphore{count: initial}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// P (down) decrements the count, blocking while it is zero.
func (s *Semaphore) P() {
	s.mu.Lock()
	for s.count == 0 {
		s.cond.Wait()
	}
	s.count--
	s.mu.Unlock()
}

// V (up) increments the count and wakes one waiter.
func (s *Semaphore) V() {
	s.mu.Lock()
	s.count++
	s.mu.Unlock()
	s.cond.Signal()
}

// Count returns the current count (diagnostics).
func (s *Semaphore) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}
