package queue

import (
	"runtime"
	"sync"
	"testing"

	"ulipc/internal/core"
)

// TestTwoLockEmptyConcurrentWithDequeue is the regression test for the
// lock-free Empty rewrite: Empty used to take the head mutex, so a BSLS
// spin loop polling it would serialize against dequeuers. It is now two
// atomic loads that race benignly with Dequeue (the loaded dummy may be
// freed between them). Under -race this certifies the poll is
// data-race-free; the assertions check it still converges to the truth
// once the queue is quiescent.
func TestTwoLockEmptyConcurrentWithDequeue(t *testing.T) {
	const total = 100_000
	q, err := NewTwoLock(64)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // the BSLS-style poller
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = q.Empty()
			runtime.Gosched() // keep the poll cooperative on GOMAXPROCS=1
		}
	}()
	go func() { // producer
		defer wg.Done()
		for i := 0; i < total; i++ {
			for !q.Enqueue(core.Msg{Val: float64(i)}) {
				runtime.Gosched()
			}
		}
	}()
	for i := 0; i < total; i++ { // consumer (main goroutine)
		for {
			if m, ok := q.Dequeue(); ok {
				if m.Val != float64(i) {
					t.Fatalf("out of order at %d: %+v", i, m)
				}
				break
			}
			runtime.Gosched()
		}
	}
	close(stop)
	wg.Wait()
	if !q.Empty() {
		t.Fatal("quiescent drained queue reports non-empty")
	}
	q.Enqueue(core.Msg{})
	if q.Empty() {
		t.Fatal("quiescent non-empty queue reports empty")
	}
}

// TestTwoLockEnqueueRef checks the split alloc/enqueue path the batched
// producer ports use: refs drawn straight from Pool() and handed to
// EnqueueRef must flow through the queue exactly like Enqueue'd ones.
func TestTwoLockEnqueueRef(t *testing.T) {
	q, err := NewTwoLock(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ref, ok := q.Pool().Alloc()
		if !ok {
			t.Fatalf("pool exhausted at %d", i)
		}
		q.EnqueueRef(ref, core.Msg{Seq: int32(i)})
	}
	for i := 0; i < 5; i++ {
		m, ok := q.Dequeue()
		if !ok || m.Seq != int32(i) {
			t.Fatalf("dequeue %d: %+v, %v", i, m, ok)
		}
	}
}
