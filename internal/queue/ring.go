package queue

import (
	"sync/atomic"

	"ulipc/internal/core"
)

// Ring is a bounded multi-producer multi-consumer ring buffer with
// per-slot sequence numbers (Vyukov's MPMC queue). Unlike the list-based
// queues it needs no node pool and no locks, but its capacity is fixed
// at a power of two. Ablation counterpart A2.
type Ring struct {
	mask  uint64
	slots []ringSlot

	// The enqueue and dequeue cursors are the two hottest words in the
	// structure and are hammered by disjoint parties (producers vs
	// consumers); padding keeps each on its own 64-byte cache line so a
	// producer CAS does not invalidate every consumer's cached cursor
	// (and vice versa).
	_   [64]byte
	enq atomic.Uint64
	_   [56]byte
	deq atomic.Uint64
	_   [56]byte
}

type ringSlot struct {
	seq atomic.Uint64
	msg core.Msg
}

// NewRing builds a ring holding at least capacity messages. The
// capacity is rounded UP to the next power of two — Cap() reports the
// effective value, which may exceed the request (flow-control
// experiments that need an exact bound must request a power of two).
func NewRing(capacity int) (*Ring, error) {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &Ring{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r, nil
}

// Cap implements Queue.
func (r *Ring) Cap() int { return len(r.slots) }

// Enqueue implements Queue.
func (r *Ring) Enqueue(m core.Msg) bool {
	for {
		pos := r.enq.Load()
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				slot.msg = m
				slot.seq.Store(pos + 1)
				return true
			}
		case seq < pos:
			return false // slot still owned by a lagging consumer: full
		}
		// seq > pos: another producer claimed this slot; retry.
	}
}

// Dequeue implements Queue.
func (r *Ring) Dequeue() (core.Msg, bool) {
	for {
		pos := r.deq.Load()
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos+1:
			if r.deq.CompareAndSwap(pos, pos+1) {
				m := slot.msg
				slot.seq.Store(pos + uint64(len(r.slots)))
				return m, true
			}
		case seq <= pos:
			return core.Msg{}, false // empty
		}
		// seq > pos+1: another consumer claimed this slot; retry.
	}
}

// Empty implements Queue. It is a non-destructive racy poll: it reads
// the dequeue cursor and that slot's sequence without synchronising
// against concurrent operations, so the answer may be stale by the time
// the caller acts on it (exactly the guarantee the BSLS spin loop
// needs, no stronger).
func (r *Ring) Empty() bool {
	pos := r.deq.Load()
	return r.slots[pos&r.mask].seq.Load() <= pos
}

// Len returns the approximate number of queued messages, clamped to
// [0, Cap()]. The two cursors are loaded independently, so a snapshot
// taken during concurrent operations can be transiently inconsistent
// (e.g. a dequeue between the two loads could otherwise make the
// difference exceed the capacity); the clamp keeps the result inside
// the queue's invariant range.
func (r *Ring) Len() int {
	e, d := r.enq.Load(), r.deq.Load()
	if e < d {
		return 0
	}
	n := e - d
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}
