package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/livebind"
	"ulipc/internal/queue"
	"ulipc/internal/shm"
)

// The live wall-clock benchmark matrix: {queue configuration} x
// {protocol} x {client count} on the host runtime, emitted as
// BENCH_live.json so successive PRs accumulate a perf trajectory.
// Driven by `ipcbench -live` and `make bench-live`; bench_test.go's
// BenchmarkLive* suite measures the same cells under testing.B.

// LiveBenchKind names one queue configuration of the matrix: the kind
// of the shared receive queue and the kind of the per-client reply
// queues (KindSPSC only for the latter — the receive queue is
// multi-producer by construction).
type LiveBenchKind struct {
	Name  string
	Recv  queue.Kind
	Reply queue.Kind
}

// DefaultLiveBenchKinds returns the benchmark's queue configurations:
// the three MPMC kinds used symmetrically, the ring/SPSC pair that
// isolates the reply-path win, and the library default (two-lock
// receive + SPSC replies).
func DefaultLiveBenchKinds() []LiveBenchKind {
	return []LiveBenchKind{
		{"two-lock", queue.KindTwoLock, queue.KindTwoLock},
		{"lock-free", queue.KindLockFree, queue.KindLockFree},
		{"ring", queue.KindRing, queue.KindRing},
		{"ring+spsc", queue.KindRing, queue.KindSPSC},
		{"default", queue.KindTwoLock, queue.KindSPSC},
	}
}

// LiveBenchOptions configures a live benchmark sweep. Zero values pick
// the defaults noted per field.
type LiveBenchOptions struct {
	Kinds      []LiveBenchKind  // default DefaultLiveBenchKinds()
	Algs       []core.Algorithm // default all four protocols
	Clients    []int            // default {1, 4, 16}
	Msgs       int              // per client; default 1000
	MaxSpin    int              // default core.DefaultMaxSpin
	AllocBatch int              // producer alloc batching (two-lock only)
	SpinIters  int              // >0: multiprocessor busy_wait flavour

	// Watchdog, when positive, runs every cell on the context-threaded
	// paths under a deadline: a deadlocked cell trips the deadline, is
	// recorded with its Error, and the sweep continues with the next
	// cell instead of hanging the whole benchmark.
	Watchdog time.Duration

	// NoObs disables the per-cell phase-latency histograms. By default
	// every cell is observed, so the report carries RTT quantiles and
	// the spin-vs-sleep breakdown; disable to measure the bare legacy
	// fast path.
	NoObs bool

	// RecorderCap, when positive, attaches a flight recorder of that
	// many events to every observed cell; with a Watchdog set, a tripped
	// cell dumps the recorder to DumpTo.
	RecorderCap int

	// DumpTo receives flight-recorder dumps from watchdog-tripped cells
	// (nil suppresses dumps).
	DumpTo io.Writer

	// Shards, when non-empty, appends the scale-out sweep: for each
	// protocol and each ShardClients count, one single-server baseline
	// cell (shards=0) immediately followed by one cell per shard count
	// — interleaved A/B, so baseline and group samples share the same
	// machine state within each group of cells.
	Shards []int

	// ShardClients are the client counts of the scale-out sweep;
	// default {16, 64, 256}.
	ShardClients []int

	// Batch is the vectored transfer size for sharded cells; default 16.
	Batch int

	// ProcClients, when non-empty, appends the cross-process sweep: for
	// each protocol and client count one in-process baseline cell
	// (queue "xproc-base") immediately followed by the same workload
	// spread across real OS processes over a memfd segment (queue
	// "xproc") — interleaved A/B, so the address-space-crossing cost is
	// read against the same machine state. Skipped with a progress note
	// on platforms without a mapping backend.
	ProcClients []int

	// ProcOnly restricts the sweep to the cross-process pairs (the CI
	// smoke job's mode); ProcClients defaults to {1, 4} when set.
	ProcOnly bool

	// ProcExe is the worker binary for cross-process cells (default:
	// this executable, which must call workload.MaybeProcWorker early
	// in main).
	ProcExe string

	// PaySizes, when non-empty, appends the payload (bytes/s) sweep: for
	// each protocol, client count and non-zero size, one copy-baseline
	// cell immediately followed by its zero-copy twin — interleaved A/B,
	// so the memcpy cost is read against the same machine state. A size
	// of 0 runs the bare 24-byte legacy cell for reference. When
	// ProcClients is also set, each size additionally runs the
	// cross-process copy/zero-copy pair.
	PaySizes []int
}

func (o *LiveBenchOptions) defaults() {
	if len(o.Kinds) == 0 {
		o.Kinds = DefaultLiveBenchKinds()
	}
	if len(o.Algs) == 0 {
		o.Algs = core.Algorithms()
	}
	if len(o.Clients) == 0 {
		o.Clients = []int{1, 4, 16}
	}
	if o.Msgs <= 0 {
		o.Msgs = 1000
	}
	if o.MaxSpin <= 0 {
		o.MaxSpin = core.DefaultMaxSpin
	}
	if len(o.ShardClients) == 0 {
		o.ShardClients = []int{16, 64, 256}
	}
	if o.Batch <= 0 {
		o.Batch = 16
	}
	if o.ProcOnly && len(o.ProcClients) == 0 {
		o.ProcClients = []int{1, 4}
	}
}

// LiveBenchEntry is one cell of the matrix.
type LiveBenchEntry struct {
	Queue      string  `json:"queue"`      // configuration name
	RecvKind   string  `json:"recv_kind"`  // receive-queue implementation
	ReplyKind  string  `json:"reply_kind"` // reply-queue implementation
	Alg        string  `json:"alg"`
	Clients    int     `json:"clients"`
	MsgsPerCli int     `json:"msgs_per_client"`
	Shards     int     `json:"shards,omitempty"` // server-group size (0 = single server)
	Batch      int     `json:"batch,omitempty"`  // vectored transfer size (sharded cells)
	NsPerRTT   float64 `json:"ns_per_rtt"`       // wall-clock RTT per request
	MsgsPerSec float64 `json:"msgs_per_sec"`     // server throughput

	// Payload axis (payload sweep cells only): bytes per message, the
	// transfer discipline, and the achieved payload bandwidth (request +
	// response bytes over the measured interval).
	PaySize     int     `json:"pay_size,omitempty"`
	ZeroCopy    bool    `json:"zero_copy,omitempty"`
	BytesPerSec float64 `json:"bytes_per_sec,omitempty"`

	// Open-loop axis (overload sweep cells only): offered vs goodput
	// rates, the rate factor relative to the interleaved closed-loop
	// capacity probe, and the overload-doctrine counters. For these
	// cells MsgsPerSec carries the goodput and the RTT quantiles the
	// collected-within-deadline latency distribution.
	RateFactor    float64 `json:"rate_factor,omitempty"`
	Burst         bool    `json:"burst,omitempty"`
	OfferedPerSec float64 `json:"offered_per_sec,omitempty"`
	GoodputPerSec float64 `json:"goodput_per_sec,omitempty"`
	Offered       int64   `json:"offered,omitempty"`
	Admitted      int64   `json:"admitted,omitempty"`
	Overloads     int64   `json:"overloads,omitempty"`
	Sheds         int64   `json:"sheds,omitempty"`
	Expiries      int64   `json:"expiries,omitempty"`
	CopyFallbacks int64   `json:"copy_fallbacks,omitempty"`
	Quarantines   int64   `json:"quarantines,omitempty"`

	Yields      int64 `json:"yields"`
	SemP        int64 `json:"sem_p"`
	Blocks      int64 `json:"blocks"`
	PoolRefills int64 `json:"pool_refills"`
	PoolSpills  int64 `json:"pool_spills"`

	// WakeupsPerMsg is semaphore Vs that woke a sleeper divided by
	// total messages — the batching headline: vectored paths should
	// push it well below the scalar protocol's.
	WakeupsPerMsg float64 `json:"wakeups_per_msg,omitempty"`

	// Per-request RTT distribution and phase breakdown, from the
	// client-side histograms (absent when the sweep ran with NoObs).
	// SpinNsPerRTT/SleepNsPerRTT are total phase time divided by
	// round trips — for a BSLS cell they answer the paper's fall-through
	// question: how much of the wait was spun vs. actually slept.
	RTTP50Ns      float64 `json:"rtt_p50_ns,omitempty"`
	RTTP95Ns      float64 `json:"rtt_p95_ns,omitempty"`
	RTTP99Ns      float64 `json:"rtt_p99_ns,omitempty"`
	RTTMaxNs      float64 `json:"rtt_max_ns,omitempty"`
	SpinNsPerRTT  float64 `json:"spin_ns_per_rtt,omitempty"`
	SleepNsPerRTT float64 `json:"sleep_ns_per_rtt,omitempty"`
	Sleeps        int64   `json:"sleeps,omitempty"` // sleep-phase observations

	// Recovery counters: non-zero only in chaos-instrumented or
	// recovery-enabled runs, but always carried so a tripped cell's
	// report shows what the sweeper did (or failed to do).
	Crashes      int64 `json:"crashes,omitempty"`
	PeerDeaths   int64 `json:"peer_deaths,omitempty"`
	LockReclaims int64 `json:"lock_reclaims,omitempty"`
	OrphanMsgs   int64 `json:"orphan_msgs,omitempty"`
	OrphanRefs   int64 `json:"orphan_refs,omitempty"`
	OrphanBlocks int64 `json:"orphan_blocks,omitempty"`
	BlockFails   int64 `json:"block_fails,omitempty"`
	WakeRescues  int64 `json:"wake_rescues,omitempty"`

	// Error records a failed cell (watchdog deadline, validation
	// mismatch); the numeric fields then hold the partial results
	// gathered before the failure.
	Error string `json:"error,omitempty"`

	// FlightDump embeds the tripped cell's flight-recorder contents —
	// the last IPC events before the stall (requires RecorderCap; empty
	// for clean cells).
	FlightDump string `json:"flight_dump,omitempty"`
}

// LiveBenchReport is the BENCH_live.json document.
type LiveBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	MsgsPerCli  int    `json:"msgs_per_client"`
	AllocBatch  int    `json:"alloc_batch"`

	// FutexBackend records which sleep/wake implementation the binary
	// was built with ("futex" on Linux, "poll" under -tags nofutex or
	// elsewhere) — cross-process cells are not comparable across
	// backends, and benchcmp treats a mismatch as an env change.
	FutexBackend string `json:"futex_backend,omitempty"`

	Entries []LiveBenchEntry `json:"entries"`
}

// RunLiveBench executes the full matrix and returns the report.
// progress, when non-nil, receives one line per completed cell.
//
// Without a Watchdog the first failing cell aborts the sweep (legacy
// behaviour: a deadlock would hang anyway). With a Watchdog, failing
// cells are recorded in the report with their Error and partial
// numbers, the sweep continues, and the combined error returned at the
// end names every failed cell — callers get the full report either way.
func RunLiveBench(opts LiveBenchOptions, progress io.Writer) (*LiveBenchReport, error) {
	opts.defaults()
	rep := &LiveBenchReport{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		MsgsPerCli:   opts.Msgs,
		AllocBatch:   opts.AllocBatch,
		FutexBackend: livebind.FutexBackend,
	}
	var failures []error
	runCell := func(k LiveBenchKind, alg core.Algorithm, n, shards, paySize int, payCopy bool) error {
		cfg := LiveConfig{
			Alg:            alg,
			Clients:        n,
			Msgs:           opts.Msgs,
			MaxSpin:        opts.MaxSpin,
			AllocBatch:     opts.AllocBatch,
			SpinIters:      opts.SpinIters,
			Watchdog:       opts.Watchdog,
			Observe:        !opts.NoObs,
			RecorderCap:    opts.RecorderCap,
			DumpOnWatchdog: opts.DumpTo,
			PaySize:        paySize,
			PayCopy:        payCopy,
		}
		queueName, recvName, replyName := k.Name, k.Recv.String(), k.Reply.String()
		if shards > 0 {
			cfg.Shards = shards
			cfg.Batch = opts.Batch
			queueName, recvName, replyName = "lanes", "spsc-lanes", "spsc"
		} else {
			reply := k.Reply
			cfg.QueueKind = k.Recv
			cfg.ReplyKind = &reply
		}
		res, err := RunLive(cfg)
		cell := fmt.Sprintf("%s/%s/%dc", queueName, alg, n)
		if shards > 0 {
			cell += fmt.Sprintf("/%ds", shards)
		}
		if paySize > 0 {
			cell += fmt.Sprintf("/p%d/%s", paySize, payMode(payCopy))
		}
		if err != nil && opts.Watchdog <= 0 {
			return fmt.Errorf("live bench %s: %w", cell, err)
		}
		e := LiveBenchEntry{
			Queue:       queueName,
			RecvKind:    recvName,
			ReplyKind:   replyName,
			Alg:         alg.String(),
			Clients:     n,
			MsgsPerCli:  opts.Msgs,
			Shards:      shards,
			NsPerRTT:    res.RTTMicros * 1e3,
			MsgsPerSec:  res.Throughput * 1e3,
			Yields:      res.All.Yields,
			SemP:        res.All.SemP,
			Blocks:      res.All.Blocks,
			PoolRefills: res.All.PoolRefills,
			PoolSpills:  res.All.PoolSpills,
		}
		if shards > 0 {
			e.Batch = opts.Batch
		}
		if paySize > 0 {
			e.PaySize, e.ZeroCopy, e.BytesPerSec = paySize, !payCopy, res.BytesPerSec
		}
		if total := int64(n) * int64(opts.Msgs); total > 0 {
			e.WakeupsPerMsg = float64(res.All.Wakeups) / float64(total)
		}
		if p := res.Phase; p != nil {
			e.RTTP50Ns = p.RTT.Quantile(0.50)
			e.RTTP95Ns = p.RTT.Quantile(0.95)
			e.RTTP99Ns = p.RTT.Quantile(0.99)
			e.RTTMaxNs = float64(p.RTT.Max)
			e.Sleeps = int64(p.Sleep.Count)
			if p.RTT.Count > 0 {
				e.SpinNsPerRTT = float64(p.Spin.Sum) / float64(p.RTT.Count)
				e.SleepNsPerRTT = float64(p.Sleep.Sum) / float64(p.RTT.Count)
			}
		}
		e.Crashes = res.All.Crashes
		e.PeerDeaths = res.All.PeerDeaths
		e.LockReclaims = res.All.LockReclaims
		e.OrphanMsgs = res.All.OrphanMsgs
		e.OrphanRefs = res.All.OrphanRefs
		e.OrphanBlocks = res.All.OrphanBlocks
		e.BlockFails = res.All.BlockFails
		e.WakeRescues = res.All.WakeRescues
		if err != nil {
			e.Error = err.Error()
			e.FlightDump = res.FlightDump
			failures = append(failures, fmt.Errorf("live bench %s: %w", cell, err))
		}
		rep.Entries = append(rep.Entries, e)
		if progress != nil {
			tag := ""
			if shards > 0 {
				tag = fmt.Sprintf("/%ds", shards)
			}
			if paySize > 0 {
				tag += fmt.Sprintf("/p%d/%s", paySize, payMode(payCopy))
			}
			if err != nil {
				fmt.Fprintf(progress, "%-10s %-5s %3dc%-12s FAILED: %v\n", queueName, e.Alg, n, tag, err)
			} else if paySize > 0 {
				fmt.Fprintf(progress, "%-10s %-5s %3dc%-12s %12.0f ns/rtt  %11.0f msgs/s  %8.1f MB/s\n",
					queueName, e.Alg, n, tag, e.NsPerRTT, e.MsgsPerSec, e.BytesPerSec/1e6)
			} else {
				fmt.Fprintf(progress, "%-10s %-5s %3dc%-12s %12.0f ns/rtt  %11.0f msgs/s  wakes/msg=%.3f\n",
					queueName, e.Alg, n, tag, e.NsPerRTT, e.MsgsPerSec, e.WakeupsPerMsg)
			}
		}
		return nil
	}
	if !opts.ProcOnly {
		for _, k := range opts.Kinds {
			for _, alg := range opts.Algs {
				for _, n := range opts.Clients {
					if err := runCell(k, alg, n, 0, 0, false); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	// Scale-out sweep: each group of cells runs the single-server
	// baseline (shards=0) back to back with the sharded samples, so the
	// A/B comparison for a given (alg, clients) shares machine state.
	if !opts.ProcOnly && len(opts.Shards) > 0 {
		base := LiveBenchKind{Name: "default", Recv: queue.KindTwoLock, Reply: queue.KindSPSC}
		for _, alg := range opts.Algs {
			for _, n := range opts.ShardClients {
				for _, s := range append([]int{0}, opts.Shards...) {
					if err := runCell(base, alg, n, s, 0, false); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	// Payload sweep: for each size the copy baseline runs immediately
	// before its zero-copy twin — interleaved A/B, so the bytes/s column
	// reads the elided memcpys against the same machine state. Size 0 is
	// the bare legacy cell, kept in the same section for reference.
	if !opts.ProcOnly && len(opts.PaySizes) > 0 {
		base := LiveBenchKind{Name: "payload", Recv: queue.KindTwoLock, Reply: queue.KindSPSC}
		for _, alg := range opts.Algs {
			for _, n := range opts.Clients {
				for _, size := range opts.PaySizes {
					if size <= 0 {
						if err := runCell(base, alg, n, 0, 0, false); err != nil {
							return nil, err
						}
						continue
					}
					for _, payCopy := range []bool{true, false} {
						if err := runCell(base, alg, n, 0, size, payCopy); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	// Cross-process sweep: for each (alg, clients) the in-process
	// baseline cell runs immediately before the real-processes cell —
	// interleaved A/B again, so BENCH_live.json reads the cost of
	// crossing address spaces against the same machine state.
	if len(opts.ProcClients) > 0 {
		base := LiveBenchKind{Name: "xproc-base", Recv: queue.KindTwoLock, Reply: queue.KindSPSC}
		for _, alg := range opts.Algs {
			for _, n := range opts.ProcClients {
				if err := runCell(base, alg, n, 0, 0, false); err != nil {
					return nil, err
				}
				skipped, err := runProcBenchCell(opts, rep, alg, n, 0, false, progress)
				if err != nil {
					failures = append(failures, err)
				}
				if skipped {
					// No mapping backend on this platform: drop the
					// orphaned baseline entry too, so the report never
					// carries half a pair.
					rep.Entries = rep.Entries[:len(rep.Entries)-1]
					if progress != nil {
						fmt.Fprintf(progress, "xproc      %-5s %3dc     skipped: no mapped-segment backend\n", alg, n)
					}
					continue
				}
				// Cross-process payload pairs: copy baseline immediately
				// before its zero-copy twin, same interleaved-A/B shape as
				// the in-process payload sweep.
				for _, size := range opts.PaySizes {
					if size <= 0 {
						continue
					}
					for _, payCopy := range []bool{true, false} {
						if _, err := runProcBenchCell(opts, rep, alg, n, size, payCopy, progress); err != nil {
							failures = append(failures, err)
						}
					}
				}
			}
		}
	}
	return rep, errors.Join(failures...)
}

// payMode names the payload transfer discipline in cell labels.
func payMode(payCopy bool) string {
	if payCopy {
		return "copy"
	}
	return "zc"
}

// runProcBenchCell runs one cross-process cell and appends its entry.
// skipped reports the platform has no mapping backend (not an error).
func runProcBenchCell(opts LiveBenchOptions, rep *LiveBenchReport, alg core.Algorithm, n, paySize int, payCopy bool, progress io.Writer) (skipped bool, err error) {
	watchdog := opts.Watchdog
	if watchdog <= 0 {
		// Unlike in-process cells, a cross-process cell always runs
		// bounded: a hung worker process would otherwise outlive the
		// whole benchmark.
		watchdog = time.Minute
	}
	res, err := RunProcCell(ProcConfig{
		Alg:       alg,
		Clients:   n,
		Msgs:      opts.Msgs,
		MaxSpin:   opts.MaxSpin,
		SpinIters: opts.SpinIters,
		Watchdog:  watchdog,
		Exe:       opts.ProcExe,
		PaySize:   paySize,
		PayCopy:   payCopy,
	})
	if errors.Is(err, shm.ErrMapUnsupported) {
		return true, nil
	}
	e := LiveBenchEntry{
		Queue:      "xproc",
		RecvKind:   "seg-lanes",
		ReplyKind:  "seg-lane",
		Alg:        alg.String(),
		Clients:    n,
		MsgsPerCli: opts.Msgs,
	}
	cell := fmt.Sprintf("xproc/%s/%dc", alg, n)
	tag := ""
	if paySize > 0 {
		e.PaySize, e.ZeroCopy = paySize, !payCopy
		tag = fmt.Sprintf("/p%d/%s", paySize, payMode(payCopy))
		cell += tag
	}
	if res != nil {
		e.NsPerRTT = res.RTTMicros * 1e3
		e.MsgsPerSec = res.Throughput * 1e3
		e.BytesPerSec = res.BytesPerSec
		e.Yields = res.All.Yields
		e.SemP = res.All.SemP
		e.Blocks = res.All.Blocks
		e.PeerDeaths = res.All.PeerDeaths
		e.OrphanMsgs = res.All.OrphanMsgs
		e.OrphanBlocks = res.All.OrphanBlocks
		e.BlockFails = res.All.BlockFails
		e.WakeRescues = res.All.WakeRescues
		if total := int64(n) * int64(opts.Msgs); total > 0 {
			e.WakeupsPerMsg = float64(res.All.Wakeups) / float64(total)
		}
	}
	if err != nil {
		e.Error = err.Error()
		err = fmt.Errorf("live bench %s: %w", cell, err)
	}
	rep.Entries = append(rep.Entries, e)
	if progress != nil {
		switch {
		case err != nil:
			fmt.Fprintf(progress, "%-10s %-5s %3dc%-12s FAILED: %v\n", "xproc", e.Alg, n, tag, err)
		case paySize > 0:
			fmt.Fprintf(progress, "%-10s %-5s %3dc%-12s %12.0f ns/rtt  %11.0f msgs/s  %8.1f MB/s\n",
				"xproc", e.Alg, n, tag, e.NsPerRTT, e.MsgsPerSec, e.BytesPerSec/1e6)
		default:
			fmt.Fprintf(progress, "%-10s %-5s %3dc%-12s %12.0f ns/rtt  %11.0f msgs/s  wakes/msg=%.3f\n",
				"xproc", e.Alg, n, tag, e.NsPerRTT, e.MsgsPerSec, e.WakeupsPerMsg)
		}
	}
	return false, err
}

// FasterEntry reports whether a beats b on the benchmark's headline
// metric: goodput for open-loop cells (higher is better — latency of
// an overloaded cell is bounded by shedding, not a figure of merit),
// otherwise the p50 RTT when both entries carry histograms, the mean
// RTT as a last resort.
func FasterEntry(a, b LiveBenchEntry) bool {
	if a.OfferedPerSec > 0 && b.OfferedPerSec > 0 {
		return a.GoodputPerSec > b.GoodputPerSec
	}
	if a.RTTP50Ns > 0 && b.RTTP50Ns > 0 {
		return a.RTTP50Ns < b.RTTP50Ns
	}
	return a.NsPerRTT < b.NsPerRTT
}

// MergeBest folds several runs of the same matrix into one report
// holding each cell's fastest clean sample (best-of-K). A single run
// on a busy host jitters by 10-20%; its distribution floor is far more
// stable, which is what a committed baseline (and the CI bench gate
// comparing against it) wants. An errored sample never displaces a
// clean one. Metadata comes from the last run.
func MergeBest(reps []*LiveBenchReport) *LiveBenchReport {
	if len(reps) == 0 {
		return nil
	}
	if len(reps) == 1 {
		return reps[0]
	}
	last := reps[len(reps)-1]
	merged := &LiveBenchReport{
		GeneratedAt:  last.GeneratedAt,
		GoVersion:    last.GoVersion,
		GOMAXPROCS:   last.GOMAXPROCS,
		NumCPU:       last.NumCPU,
		MsgsPerCli:   last.MsgsPerCli,
		AllocBatch:   last.AllocBatch,
		FutexBackend: last.FutexBackend,
	}
	best := map[string]int{} // cell key -> index into merged.Entries
	key := func(e LiveBenchEntry) string {
		k := fmt.Sprintf("%s/%s/%dc", e.Queue, e.Alg, e.Clients)
		if e.Shards > 0 {
			k += fmt.Sprintf("/%ds", e.Shards)
		}
		if e.PaySize > 0 {
			k += fmt.Sprintf("/p%d/%s", e.PaySize, payMode(!e.ZeroCopy))
		}
		if e.RateFactor > 0 {
			k += fmt.Sprintf("/x%g", e.RateFactor)
		}
		if e.Burst {
			k += "/burst"
		}
		return k
	}
	for _, r := range reps {
		for _, e := range r.Entries {
			k := key(e)
			i, ok := best[k]
			switch {
			case !ok:
				best[k] = len(merged.Entries)
				merged.Entries = append(merged.Entries, e)
			case merged.Entries[i].Error != "" && e.Error == "",
				merged.Entries[i].Error == e.Error && FasterEntry(e, merged.Entries[i]):
				merged.Entries[i] = e
			}
		}
	}
	return merged
}

// WriteJSON emits the report as indented JSON.
func (r *LiveBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderText prints the report as a fixed-width table. Cells benchmarked
// with histograms attached additionally show the RTT quantiles and the
// spin-vs-sleep wait breakdown.
func (r *LiveBenchReport) RenderText(w io.Writer) {
	fmt.Fprintf(w, "Live wall-clock benchmark (GOMAXPROCS=%d, %d msgs/client, alloc batch %d)\n",
		r.GOMAXPROCS, r.MsgsPerCli, r.AllocBatch)
	fmt.Fprintf(w, "%-10s %-10s %-6s %-5s %8s %7s %10s %12s %12s %10s %10s %10s %9s %9s\n",
		"queue", "recv", "reply", "alg", "clients", "shards", "payload", "ns/rtt", "msgs/s", "p50", "p95", "p99", "spin/rtt", "sleep/rtt")
	for _, e := range r.Entries {
		shards := "-"
		if e.Shards > 0 {
			shards = fmt.Sprintf("%d", e.Shards)
		}
		payload := "-"
		if e.PaySize > 0 {
			payload = fmt.Sprintf("%d/%s", e.PaySize, payMode(!e.ZeroCopy))
		}
		fmt.Fprintf(w, "%-10s %-10s %-6s %-5s %8d %7s %10s %12.0f %12.0f %10.0f %10.0f %10.0f %9.0f %9.0f",
			e.Queue, e.RecvKind, e.ReplyKind, e.Alg, e.Clients, shards, payload, e.NsPerRTT, e.MsgsPerSec,
			e.RTTP50Ns, e.RTTP95Ns, e.RTTP99Ns, e.SpinNsPerRTT, e.SleepNsPerRTT)
		if e.BytesPerSec > 0 {
			fmt.Fprintf(w, "  %8.1f MB/s", e.BytesPerSec/1e6)
		}
		if e.OfferedPerSec > 0 {
			fmt.Fprintf(w, "  x%-4g offered=%.0f/s goodput=%.0f/s sheds=%d rejects=%d expiries=%d",
				e.RateFactor, e.OfferedPerSec, e.GoodputPerSec, e.Sheds, e.Overloads, e.Expiries)
			if e.Burst {
				fmt.Fprintf(w, " burst")
			}
		}
		if e.Error != "" {
			fmt.Fprintf(w, "  FAILED (partial): %s", e.Error)
		}
		fmt.Fprintln(w)
	}
}
