// kvstore: a small key-value store with variable-size values served
// over user-level IPC — the client-server shape (multiple clients, one
// single-threaded server, per-client reply queues) that motivated the
// paper's work on a database server.
//
// The fixed-size message carries only the key (Seq) and a verb (Val);
// the value bytes live in leased shared-memory blocks and never cross
// a queue (Section 2.1). The lease discipline doubles as the store's
// memory manager: a PUT's block is written once by the client and then
// *kept* by the server as the stored value — no copy on the way in —
// and a GET copies it into a fresh leased block whose lease rides the
// reply back to the client.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync"

	"ulipc"
)

// Verbs, carried in Val on OpWork messages (OpWork is the only opcode
// that reaches the ServeCtx work callback).
const (
	verbPut = 1 // request payload carries the value; empty ack
	verbGet = 2 // no request payload; reply payload carries the value
)

func value(key int32) string {
	// Sizes sweep the pool's 64B..4KiB classes (3B up to ~4000B).
	return strings.Repeat(fmt.Sprintf("v%d;", key), 1+(int(key)*29)%800)
}

func main() {
	const clients = 4
	const keysPerClient = 24

	sys, err := ulipc.NewSystem(ulipc.Options{
		Alg:        ulipc.BSLS,
		Clients:    clients,
		BlockSlots: 96, // slab arena: 96 blocks per size class
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The server owns the table outright — a single-threaded server
	// needs no locks. The stored values are leased blocks the server
	// holds on to: the client wrote the bytes, the server never copies
	// them in.
	table := map[int32]*ulipc.Payload{}
	srv := sys.Server()
	done := make(chan int64, 1)
	go func() {
		served, err := srv.ServeCtx(ctx, func(m *ulipc.Msg) {
			switch int(m.Val) {
			case verbPut:
				p, err := srv.Payload(*m) // claim the request's lease
				if err != nil {
					m.Val = -1
					m.ClearBlock()
					return
				}
				if old := table[m.Seq]; old != nil {
					old.Release()
				}
				table[m.Seq] = p // keep the lease as the stored value
				m.ClearBlock()   // the ack carries no payload
			case verbGet:
				v, ok := table[m.Seq]
				if !ok {
					m.Val = -1
					m.ClearBlock()
					return
				}
				p, err := srv.AllocPayload(v.Len()) // copy-on-read
				if err != nil {
					m.Val = -1
					m.ClearBlock()
					return
				}
				copy(p.Bytes(), v.Bytes())
				m.AttachPayload(p) // the reply carries the lease out
			}
		})
		if err != nil {
			log.Printf("kvstore server: %v", err)
		}
		done <- served
	}()

	var wg sync.WaitGroup
	var verified sync.Map
	for c := 0; c < clients; c++ {
		cl, err := sys.Client(c)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(c int, cl *ulipc.Client) {
			defer wg.Done()
			if _, err := cl.SendCtx(ctx, ulipc.Msg{Op: ulipc.OpConnect}); err != nil {
				log.Fatalf("client %d: connect: %v", c, err)
			}
			base := int32(c * keysPerClient)
			good := 0
			for i := int32(0); i < keysPerClient; i++ {
				key := base + i
				want := value(key)

				// PUT: lease a block, fill it in place, send the lease.
				p, err := cl.AllocPayload(len(want))
				if err != nil {
					log.Fatalf("client %d: alloc: %v", c, err)
				}
				copy(p.Bytes(), want)
				ack, _, err := cl.SendPayload(ctx, ulipc.Msg{Op: ulipc.OpWork, Seq: key, Val: verbPut}, p)
				if err != nil || ack.Val < 0 {
					log.Fatalf("client %d: put %d failed: %v", c, key, err)
				}

				// GET: the reply's payload is leased to us; read, release.
				ans, rp, err := cl.SendPayload(ctx, ulipc.Msg{Op: ulipc.OpWork, Seq: key, Val: verbGet}, nil)
				if err != nil || ans.Val < 0 || rp == nil {
					log.Fatalf("client %d: get %d failed: %v", c, key, err)
				}
				if string(rp.Bytes()) != want {
					log.Fatalf("client %d: key %d corrupted (%d bytes)", c, key, rp.Len())
				}
				rp.Release()
				good++
			}
			verified.Store(c, good)
			if _, err := cl.SendCtx(ctx, ulipc.Msg{Op: ulipc.OpDisconnect}); err != nil {
				log.Fatalf("client %d: disconnect: %v", c, err)
			}
		}(c, cl)
	}
	wg.Wait()
	served := <-done

	// The stored values still hold their leases; return them and prove
	// lease conservation: every block the arena ever handed out is back.
	for _, p := range table {
		p.Release()
	}
	pool := sys.Blocks()
	if leaked := int64(pool.Capacity()) - pool.TotalFree(); leaked != 0 {
		log.Fatalf("kvstore: %d payload blocks leaked", leaked)
	}

	total := 0
	verified.Range(func(_, v any) bool { total += v.(int); return true })
	fmt.Printf("kvstore: %d clients x %d keys (values 3B..~4KB), server handled %d requests, %d round-trips verified, zero blocks leaked\n",
		clients, keysPerClient, served, total)
}
