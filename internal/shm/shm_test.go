package shm

import (
	"sync"
	"testing"
	"testing/quick"

	"ulipc/internal/core"
)

func TestArenaValidation(t *testing.T) {
	if _, err := NewArena(0); err == nil {
		t.Error("zero-size arena accepted")
	}
	if _, err := NewArena(-3); err == nil {
		t.Error("negative arena accepted")
	}
	a, err := NewArena(10)
	if err != nil || a.Len() != 10 {
		t.Fatalf("arena: %v len=%d", err, a.Len())
	}
}

func TestNodeAccessors(t *testing.T) {
	a, _ := NewArena(2)
	n := a.Node(1)
	n.SetMsg(core.Msg{Op: 3, Val: 1.5})
	n.SetNext(0)
	if got := n.Msg(); got.Op != 3 || got.Val != 1.5 {
		t.Fatalf("msg = %+v", got)
	}
	if n.Next() != 0 {
		t.Fatalf("next = %d", n.Next())
	}
}

func TestPoolAllocAll(t *testing.T) {
	p, err := NewPoolSize(5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Ref]bool{}
	for i := 0; i < 5; i++ {
		r, ok := p.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if seen[r] {
			t.Fatalf("ref %d allocated twice", r)
		}
		seen[r] = true
	}
	if _, ok := p.Alloc(); ok {
		t.Fatal("alloc beyond capacity succeeded")
	}
	if p.FreeCount() != 0 {
		t.Fatalf("free count = %d", p.FreeCount())
	}
	for r := range seen {
		p.Free(r)
	}
	if p.FreeCount() != 5 {
		t.Fatalf("free count = %d after freeing all", p.FreeCount())
	}
}

// TestPoolQuickNoDoubleAlloc drives random alloc/free sequences and
// verifies a node is never handed out twice while held.
func TestPoolQuickNoDoubleAlloc(t *testing.T) {
	check := func(ops []bool) bool {
		p, err := NewPoolSize(8)
		if err != nil {
			return false
		}
		held := map[Ref]bool{}
		var order []Ref
		for _, alloc := range ops {
			if alloc {
				r, ok := p.Alloc()
				if ok {
					if held[r] {
						return false // double allocation
					}
					held[r] = true
					order = append(order, r)
				} else if len(held) != 8 {
					return false // spurious exhaustion
				}
			} else if len(order) > 0 {
				r := order[0]
				order = order[1:]
				delete(held, r)
				p.Free(r)
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolConcurrentStress(t *testing.T) {
	p, err := NewPoolSize(64)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]Ref, 0, 8)
			for i := 0; i < 5000; i++ {
				if len(local) < 8 {
					if r, ok := p.Alloc(); ok {
						local = append(local, r)
						continue
					}
				}
				if len(local) > 0 {
					p.Free(local[len(local)-1])
					local = local[:len(local)-1]
				}
			}
			for _, r := range local {
				p.Free(r)
			}
		}()
	}
	wg.Wait()
	if p.FreeCount() != 64 {
		t.Fatalf("free count = %d, want 64 (leak or double free)", p.FreeCount())
	}
	// Every node allocatable again, each exactly once.
	seen := map[Ref]bool{}
	for i := 0; i < 64; i++ {
		r, ok := p.Alloc()
		if !ok || seen[r] {
			t.Fatalf("post-stress alloc %d: ok=%v dup=%v", i, ok, seen[r])
		}
		seen[r] = true
	}
}

func TestPackHeadRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		tag uint32
		top Ref
	}{{0, 0}, {1, NilRef}, {0xFFFFFFFF, 12345}, {7, 0xFFFFFFFE}} {
		tag, top := unpackHead(packHead(tc.tag, tc.top))
		if tag != tc.tag || top != tc.top {
			t.Errorf("pack(%d,%d) round-tripped to (%d,%d)", tc.tag, tc.top, tag, top)
		}
	}
}
