package core

import (
	"context"
	"errors"
)

// Sentinel errors of the v2 (error-returning, context-threaded) API
// surface. The legacy methods keep their original signatures: where a
// legacy path hits one of these conditions it either panics with the
// sentinel as the panic value (programming errors such as an unknown
// algorithm) or returns an OpShutdown-marked message (system teardown,
// which is not a programming error and must not crash a process that
// merely outlived its server).
var (
	// ErrShutdown is returned by every blocking *Ctx path once the
	// system has been shut down: parked waiters are unblocked with it,
	// and new sends fail fast with it while the system drains.
	ErrShutdown = errors.New("core: system shut down")

	// ErrNotCancellable is returned by a *Ctx method whose Actor does
	// not implement CtxActor and which would otherwise have to block
	// uncancellably (the discrete-event simulator binding, for one,
	// has no cancellation surface).
	ErrNotCancellable = errors.New("core: actor does not support cancellable waits")

	// ErrUnknownAlgorithm reports an Algorithm value outside the four
	// protocols. The legacy methods panic with this same sentinel.
	ErrUnknownAlgorithm = errors.New("core: unknown algorithm")

	// ErrDisconnected is returned by SendCtx after the handle completed
	// a disconnect handshake: the server no longer counts this client,
	// so further requests could deadlock the Serve exit protocol.
	ErrDisconnected = errors.New("core: send after disconnect")

	// ErrDoubleReply is returned by ReplyCtx when there is no received
	// request outstanding for the target — replying twice would enqueue
	// a stray message the client will misattribute to its next request.
	ErrDoubleReply = errors.New("core: reply without outstanding request")

	// ErrPeerDead is returned by blocking *Ctx paths when the peer on
	// the other end of the port died (detected by the recovery sweeper):
	// a client blocked on a dead server's reply — or a server blocked on
	// a queue whose every producer is gone — unblocks with this instead
	// of hanging until its deadline. It is distinct from ErrShutdown so
	// callers can tell an orderly teardown from a partial failure.
	ErrPeerDead = errors.New("core: peer died")

	// ErrOverload is returned by the *Ctx send paths when the system is
	// saturated and the caller opted into bounded admission: the request
	// queue is at or above the high-water mark, or the handle's retry
	// budget is spent. The request was NOT enqueued — no reply is owed
	// and no payload lease has moved — so the caller may back off,
	// degrade, or drop the work. It is distinct from the ctx errors
	// (the caller's own deadline) and from ErrShutdown (the system is
	// going away): overload is a property of the current load, not of
	// this request or this system's lifetime. See overload.go.
	ErrOverload = errors.New("core: overloaded, request rejected")
)

// OpShutdown is the control opcode legacy (error-less) blocking paths
// return when the system is shut down underneath them: Receive hands
// Serve a Msg{Op: OpShutdown, MsgMeta: MsgMeta{Client: -1}} so the loop can exit instead
// of panicking, and a legacy Send unblocked by shutdown returns the
// same marker as its "reply". It is negative so it can never collide
// with application opcodes (which grow upward from OpEcho).
const OpShutdown int32 = -1

// ShutdownMsg is the marker message legacy blocking paths return when
// unblocked by a system shutdown.
func ShutdownMsg() Msg { return Msg{Op: OpShutdown, MsgMeta: MsgMeta{Client: -1}} }

// CtxActor extends Actor with cancellable blocking operations. The live
// binding implements it; the simulator binding does not (simulated time
// has no caller to cancel from), which is why the *Ctx methods discover
// it by assertion and fail with ErrNotCancellable rather than demanding
// it in the type system.
type CtxActor interface {
	Actor

	// PCtx is P with cancellation. It returns nil when a semaphore
	// token was consumed; ctx.Err() when the wait was cancelled WITHOUT
	// consuming a token (a token granted concurrently with cancellation
	// must be handed back to the semaphore — see the wake-token
	// accounting note on consumerWaitCtx); and ErrShutdown when the
	// semaphore was shut down.
	PCtx(ctx context.Context, id SemID) error

	// SleepCtx is SleepSec with cancellation: it returns ctx.Err() if
	// the context ends before the (scaled) sleep elapses.
	SleepCtx(ctx context.Context, s int) error
}

// PortState is optionally implemented by ports whose system supports
// graceful shutdown (livebind). Both predicates must be cheap: the
// protocol paths consult them on every blocking cycle.
type PortState interface {
	// Refusing reports that the port accepts no new messages — the
	// system is draining (producers stop, consumers keep going) or
	// fully shut down.
	Refusing() bool

	// Closed reports that the port is fully shut down: queued messages
	// may still be drained, but no more will arrive and parked
	// consumers have been (or are being) unblocked.
	Closed() bool
}

// portRefusing reports whether an endpoint refuses new messages.
// Endpoints that do not implement PortState (the simulator's) never
// refuse.
func portRefusing(q any) bool {
	s, ok := q.(PortState)
	return ok && s.Refusing()
}

// portClosed reports whether an endpoint is fully shut down.
func portClosed(q any) bool {
	s, ok := q.(PortState)
	return ok && s.Closed()
}

// PortHealth is optionally implemented by ports whose system runs a
// peer-death sweeper (livebind with recovery enabled). A dead port
// behaves like a closed one — the sweeper sets the closed state too, so
// legacy paths unblock — but the *Ctx paths consult PeerDead to report
// ErrPeerDead rather than ErrShutdown.
type PortHealth interface {
	// PeerDead reports that the participant on the other side of this
	// port has been declared dead by the recovery sweeper.
	PeerDead() bool
}

// portDead reports whether an endpoint's peer has been declared dead.
func portDead(q any) bool {
	h, ok := q.(PortHealth)
	return ok && h.PeerDead()
}

// shutdownErr maps a refusing/closed port to the right sentinel: a port
// whose peer died reports ErrPeerDead, an orderly teardown ErrShutdown.
func shutdownErr(q any) error {
	if portDead(q) {
		return ErrPeerDead
	}
	return ErrShutdown
}

// deadOr upgrades an ErrShutdown that was caused by peer death (the
// sweeper closes the port's semaphore, so parked waiters surface
// ErrShutdown) to ErrPeerDead; other errors pass through untouched.
func deadOr(q any, err error) error {
	if err == ErrShutdown && portDead(q) {
		return ErrPeerDead
	}
	return err
}
