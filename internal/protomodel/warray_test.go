package protomodel

import "testing"

// The waiting-array semaphore under the cancellable consumer wait must
// be deadlock-free (no lost wake-up), lose no messages, and leave at
// most one redundant credit on the count at quiescence — with and
// without cancellations striking parked waits.
func TestWArrayNoLostWakeup(t *testing.T) {
	for producers := 1; producers <= 3; producers++ {
		for msgs := 1; msgs <= 3; msgs++ {
			for _, cancels := range []int{0, 1, 2} {
				res, err := WArrayCheck(WArrayConfig{Producers: producers, Msgs: msgs, MaxCancels: cancels})
				if err != nil {
					t.Fatal(err)
				}
				tag := func() string {
					return "producers=" + itoa(producers) + " msgs=" + itoa(msgs) + " cancels=" + itoa(cancels)
				}
				if res.Deadlock {
					t.Errorf("%s: deadlock; one path:\n%s", tag(), pathString(res.DeadlockPath))
				}
				if !res.AllConsumed {
					t.Errorf("%s: some terminal state lost a message", tag())
				}
				if res.TermSemMax > 1 {
					t.Errorf("%s: %d semaphore credits at quiescence, want <= 1", tag(), res.TermSemMax)
				}
				if cancels > 0 && producers >= 2 && !res.Cancelled {
					t.Errorf("%s: no explored path exercised a cancellation", tag())
				}
			}
		}
	}
}

// The cancel budget must actually drive both race outcomes: at least
// one configuration explores enough states that cancel-after-grant
// (the hand-back path) occurs, visible as a terminal count of exactly
// one somewhere in the sweep plus more states than the cancel-free run.
func TestWArrayCancelExpandsStateSpace(t *testing.T) {
	base, err := WArrayCheck(WArrayConfig{Producers: 2, Msgs: 2})
	if err != nil {
		t.Fatal(err)
	}
	cxl, err := WArrayCheck(WArrayConfig{Producers: 2, Msgs: 2, MaxCancels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cxl.Cancelled {
		t.Fatal("cancel-enabled run explored no cancellation")
	}
	if cxl.States <= base.States {
		t.Fatalf("cancel-enabled run explored %d states, base %d — cancels added nothing", cxl.States, base.States)
	}
	if base.Cancelled {
		t.Fatal("cancel-free run reported a cancellation")
	}
}

func TestWArrayConfigValidation(t *testing.T) {
	bad := []WArrayConfig{
		{Producers: 0, Msgs: 1},
		{Producers: 4, Msgs: 1},
		{Producers: 1, Msgs: 0},
		{Producers: 1, Msgs: 5},
		{Producers: 1, Msgs: 1, MaxCancels: -1},
		{Producers: 1, Msgs: 1, MaxCancels: 5},
	}
	for _, cfg := range bad {
		if _, err := WArrayCheck(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

func pathString(path []string) string {
	out := ""
	for _, s := range path {
		out += "  " + s + "\n"
	}
	return out
}
