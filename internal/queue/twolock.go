package queue

import (
	"sync"
	"sync/atomic"

	"ulipc/internal/core"
	"ulipc/internal/shm"
)

// TwoLock is the Michael & Scott two-lock concurrent queue [Michael &
// Scott, PODC'96] over an offset-addressed node arena. A dummy node
// decouples the head and tail locks so enqueuers never contend with
// dequeuers; the fixed-size node pool provides flow control.
//
// The head half (mutex + dummy ref, touched by dequeuers) and the tail
// half (mutex + tail ref, touched by enqueuers) live on separate
// 64-byte cache lines: the two-lock design's whole point is that the
// two parties don't contend, and sharing a line would reintroduce that
// contention as coherence traffic.
type TwoLock struct {
	pool     *shm.Pool
	capacity int

	_      [64]byte
	headMu sync.Mutex
	head   atomic.Uint32 // dummy node ref; head.next is the first real element

	_      [64]byte
	tailMu sync.Mutex
	tail   shm.Ref
	_      [64]byte
}

// NewTwoLock builds a two-lock queue holding at most capacity messages.
func NewTwoLock(capacity int) (*TwoLock, error) {
	// One extra node for the dummy.
	pool, err := shm.NewPoolSize(capacity + 1)
	if err != nil {
		return nil, err
	}
	dummy, ok := pool.Alloc()
	if !ok {
		panic("queue: fresh pool exhausted")
	}
	pool.Arena().Node(dummy).SetNext(shm.NilRef)
	q := &TwoLock{pool: pool, tail: dummy, capacity: capacity}
	q.head.Store(dummy)
	return q, nil
}

// Cap implements Queue.
func (q *TwoLock) Cap() int { return q.capacity }

// Pool exposes the backing node pool. Producers that batch their
// allocations (shm.PoolCache) draw from it and hand the node to
// EnqueueRef.
func (q *TwoLock) Pool() *shm.Pool { return q.pool }

// Enqueue implements Queue.
func (q *TwoLock) Enqueue(m core.Msg) bool {
	node, ok := q.pool.Alloc()
	if !ok {
		return false // pool exhausted: queue full
	}
	q.EnqueueRef(node, m)
	return true
}

// EnqueueRef appends a node the caller already allocated from Pool()
// (directly or through a shm.PoolCache). The caller transfers ownership
// of the ref to the queue.
func (q *TwoLock) EnqueueRef(node shm.Ref, m core.Msg) {
	a := q.pool.Arena()
	n := a.Node(node)
	n.SetMsg(m)
	n.SetNext(shm.NilRef)

	q.tailMu.Lock()
	a.Node(q.tail).SetNext(node)
	q.tail = node
	q.tailMu.Unlock()
}

// Dequeue implements Queue.
func (q *TwoLock) Dequeue() (core.Msg, bool) {
	a := q.pool.Arena()
	q.headMu.Lock()
	dummy := q.head.Load()
	first := a.Node(dummy).Next()
	if first == shm.NilRef {
		q.headMu.Unlock()
		return core.Msg{}, false
	}
	m := a.Node(first).Msg()
	q.head.Store(first) // first becomes the new dummy
	q.headMu.Unlock()
	q.pool.Free(dummy)
	return m, true
}

// Empty implements Queue. It is lock-free: an atomic load of the dummy
// ref followed by an atomic load of that node's link, so the BSLS spin
// loop can poll it without contending with dequeuers on the head mutex.
//
// The read races benignly with Dequeue: the loaded dummy may be freed
// (its link rewritten by the pool) between the two loads, yielding a
// stale answer — acceptable for Empty's documented contract of a
// non-destructive poll that may race. Callers act on the answer by
// attempting a real (locked) dequeue, which re-checks.
func (q *TwoLock) Empty() bool {
	return q.pool.Arena().Node(q.head.Load()).Next() == shm.NilRef
}

// Len returns the number of queued messages (O(n); diagnostics only).
func (q *TwoLock) Len() int {
	a := q.pool.Arena()
	q.headMu.Lock()
	defer q.headMu.Unlock()
	n := 0
	for r := a.Node(q.head.Load()).Next(); r != shm.NilRef; r = a.Node(r).Next() {
		n++
	}
	return n
}
