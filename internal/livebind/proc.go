package livebind

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/metrics"
	"ulipc/internal/obs"
	"ulipc/internal/shm"
)

// Cross-process binding: core.Client/core.Server running over a mapped
// shm.Seg, with futex-backed semaphores (ProcSem) instead of sync.Cond
// and a process-granular lifetable instead of the goroutine one.
//
// Topology. The segment carries one SPSC request lane and one SPSC
// reply lane per client. The server's receive endpoint round-robins
// over the request lanes (MPSC built from provably-SPSC parts — the
// same construction the sharded in-process System uses), so no
// cross-process lock exists anywhere on the message path: lanes are
// single-writer-cursor rings and the node pool is a lock-free Treiber
// stack. That is what makes SIGKILL survivable — there is no lock a
// dying process can be holding.
//
// Death doctrine. Every participant heartbeats its lifetable slot and
// runs a sweeper over the others' slots (pid probe + lease staleness).
// The first sweeper to CAS a slot Live→Dead executes the recovery —
// the words it writes live in the shared segment, so it does not
// matter which process wins:
//
//   - server died: the whole segment is dead. State goes SegDead and
//     every semaphore is poisoned, so every parked client unblocks and
//     surfaces core.ErrPeerDead through its port's PortHealth.
//   - a client died: its semaphore is poisoned, its reply lane (which
//     lost its only consumer) is drained back to the pool, and the
//     server receives one compensating V — the client may have died
//     between pushing a request and issuing its wake-up, which is the
//     Figure 4 race window made permanent.
//
// Refs a dead process held in-flight are unreachable until the
// post-mortem audit (shm.SegView.Reclaim) runs with exclusive access.

// ServerSlot is the server's lifetable slot; client i occupies 1+i.
const ServerSlot = 0

// ProcOptions configures one participant's attachment to a segment.
type ProcOptions struct {
	Alg     core.Algorithm
	MaxSpin int

	// SpinIters/SleepScale mirror Actor: bounded spin vs yield for
	// busy_wait, and the compressed queue-full sleep.
	SpinIters  int
	SleepScale time.Duration

	// WaitSlice bounds each parked futex wait (DefaultWaitSlice if 0).
	WaitSlice time.Duration

	// HeartbeatEvery is the lifetable beat period (default 5ms).
	// SweepEvery is the peer-scan period (default 4 beats). Lease is
	// the heartbeat staleness that declares a pid-probe-alive process
	// dead anyway (default 60 sweeps; 0 disables lease detection).
	HeartbeatEvery time.Duration
	SweepEvery     time.Duration
	Lease          time.Duration

	// NoSweep disables peer-death detection (tests that want to stage
	// deaths by hand).
	NoSweep bool

	M   *metrics.Proc
	Obs obs.Hook
}

func (o *ProcOptions) defaults() {
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 5 * time.Millisecond
	}
	if o.SweepEvery <= 0 {
		o.SweepEvery = 4 * o.HeartbeatEvery
	}
	if o.Lease == 0 {
		o.Lease = 60 * o.SweepEvery
	}
}

// ProcStats is a snapshot of a participant's recovery counters.
type ProcStats struct {
	PeerDeaths   int64 // slots this participant's sweeper declared dead
	WakeRescues  int64 // compensating Vs issued for dead producers
	OrphanMsgs   int64 // refs drained from dead consumers' lanes
	OrphanBlocks int64 // payload blocks reclaimed from dead peers' leases
	Epoch        uint32
	DeadSlot     int32 // first slot declared dead segment-wide (-1 none)
}

// ProcSystem is one process's attachment to a shared segment: its
// lifetable slot, its heartbeat/sweeper runner, and the semaphore table
// its actors index.
type ProcSystem struct {
	seg  *shm.Seg
	v    *shm.SegView
	sems []*ProcSem
	self int
	opts ProcOptions

	stop      chan struct{}
	done      sync.WaitGroup
	closeOnce sync.Once

	peerDeaths   atomic.Int64
	wakeRescues  atomic.Int64
	orphanMsgs   atomic.Int64
	orphanBlocks atomic.Int64

	// Sweeper-local lease tracking: last observed beat per slot and
	// when it was observed. Only the runner goroutine touches these.
	lastBeat   []uint64
	lastBeatAt []time.Time
}

// attachProc claims a lifetable slot and starts the runner.
func attachProc(seg *shm.Seg, slot int, opts ProcOptions) (*ProcSystem, error) {
	opts.defaults()
	v, err := seg.View()
	if err != nil {
		return nil, err
	}
	switch v.Hdr.State.Load() {
	case shm.SegReady:
	case shm.SegDead:
		return nil, fmt.Errorf("livebind: attach to dead segment: %w", core.ErrPeerDead)
	default:
		return nil, fmt.Errorf("livebind: attach to segment in state %d: %w", v.Hdr.State.Load(), core.ErrShutdown)
	}
	if slot < 0 || slot >= len(v.Life) {
		return nil, fmt.Errorf("livebind: lifetable slot %d out of range [0,%d)", slot, len(v.Life))
	}
	ls := &v.Life[slot]
	if !ls.State.CompareAndSwap(shm.LifeFree, shm.LifeLive) {
		return nil, fmt.Errorf("livebind: lifetable slot %d already claimed (state %d)", slot, ls.State.Load())
	}
	ls.Pid.Store(uint32(os.Getpid()))
	ls.Beat.Add(1)

	s := &ProcSystem{
		seg: seg, v: v, self: slot, opts: opts,
		stop:       make(chan struct{}),
		lastBeat:   make([]uint64, len(v.Life)),
		lastBeatAt: make([]time.Time, len(v.Life)),
	}
	s.sems = make([]*ProcSem, len(v.Sems))
	for i := range s.sems {
		s.sems[i] = NewProcSem(&v.Sems[i], opts.WaitSlice)
	}
	s.done.Add(1)
	go s.run()
	return s, nil
}

// run is the heartbeat/sweeper loop.
func (s *ProcSystem) run() {
	defer s.done.Done()
	t := time.NewTicker(s.opts.HeartbeatEvery)
	defer t.Stop()
	nextSweep := time.Now().Add(s.opts.SweepEvery)
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			s.v.Life[s.self].Beat.Add(1)
			if !s.opts.NoSweep && now.After(nextSweep) {
				s.sweep(now)
				nextSweep = now.Add(s.opts.SweepEvery)
			}
		}
	}
}

// sweep scans the other lifetable slots for dead peers. Detection is
// two-pronged: a kill(pid, 0) probe (ESRCH means the process is gone)
// and a heartbeat lease (a pid that answers probes — pid reuse, or a
// livelocked runtime — but whose beat word has not moved for a full
// lease is dead for our purposes too).
func (s *ProcSystem) sweep(now time.Time) {
	for i := range s.v.Life {
		if i == s.self {
			continue
		}
		sl := &s.v.Life[i]
		if sl.State.Load() != shm.LifeLive {
			continue
		}
		beat := sl.Beat.Load()
		if beat != s.lastBeat[i] || s.lastBeatAt[i].IsZero() {
			s.lastBeat[i] = beat
			s.lastBeatAt[i] = now
		}
		dead := false
		if pid := sl.Pid.Load(); pid != 0 && !pidAlive(int(pid)) {
			dead = true
		}
		if !dead && s.opts.Lease > 0 && now.Sub(s.lastBeatAt[i]) > s.opts.Lease {
			dead = true
		}
		if dead && sl.State.CompareAndSwap(shm.LifeLive, shm.LifeDead) {
			s.onPeerDeath(i)
		}
	}
}

// onPeerDeath executes the recovery for a slot this sweeper won the
// Live→Dead CAS on. Everything it writes is segment state, so exactly
// one process performs the recovery and every process observes it.
func (s *ProcSystem) onPeerDeath(slot int) {
	s.peerDeaths.Add(1)
	s.v.Hdr.Epoch.Add(1)
	s.v.Hdr.DeadSlot.CompareAndSwap(-1, int32(slot))
	if slot == ServerSlot {
		// The server is the segment: poison everything. Parked clients
		// unblock, see their port PeerDead, surface core.ErrPeerDead.
		s.v.Hdr.State.Store(shm.SegDead)
		for _, sem := range s.sems {
			sem.Poison()
		}
		return
	}
	// A client died. Its reply lane lost its only consumer — drain it
	// back to the pool (we are its consumer now; the server may still
	// push until it observes the refusing port, and whatever lands
	// after this drain is picked up by the post-mortem audit). Its
	// request lane keeps its live consumer (the server drains it
	// organically), so we must not touch it.
	client := slot - 1
	s.sems[slot].Poison()
	lane := s.v.ReplyLane(client)
	for {
		r, ok := lane.TryPop()
		if !ok {
			break
		}
		m := s.v.Arena().Node(r).Msg()
		s.v.Pool.Free(r)
		s.orphanMsgs.Add(1)
		// A drained reply may carry a payload lease that now has no
		// receiver: claim-free it (the claim keeps it race-free against
		// any other reclaimer — tag already cleared means it was freed).
		s.reclaimMsgBlock(m)
	}
	// Return whatever the dead client still held leased (blocks it had
	// allocated but not yet sent, or reply payloads it had claimed).
	if s.v.Blocks != nil {
		if n := s.v.Blocks.ReclaimOwner(uint32(slot)); n > 0 {
			s.orphanBlocks.Add(int64(n))
			if s.opts.M != nil {
				s.opts.M.OrphanBlocks.Add(int64(n))
			}
		}
	}
	// The client may have died between enqueueing a request and issuing
	// its wake-up V — a permanently lost wake. One compensating V keeps
	// the server's token accounting conservative: at worst it is a
	// spurious wake-up, which the awake-flag protocol absorbs.
	if s.sems[ServerSlot].V() {
		s.opts.Obs.Note(obs.EvWake, int64(ServerSlot))
	}
	s.wakeRescues.Add(1)
}

// reclaimMsgBlock claim-frees the payload of a message drained during
// recovery (its receiver is dead, so nobody else will resolve it).
func (s *ProcSystem) reclaimMsgBlock(m core.Msg) {
	if s.v.Blocks == nil || !m.HasBlock() {
		return
	}
	ref, _ := m.Block()
	if s.v.Blocks.Claim(ref, uint32(s.self)) {
		_ = s.v.Blocks.Free(ref)
		s.orphanBlocks.Add(1)
		if s.opts.M != nil {
			s.opts.M.OrphanBlocks.Add(1)
		}
	}
}

// Close detaches: stops the runner, marks our slot Done, and — when we
// are the server — moves the segment to SegShutdown and poisons every
// semaphore so parked peers unblock. It does not unmap the segment;
// the Seg handle's owner does that.
func (s *ProcSystem) Close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.done.Wait()
		s.v.Life[s.self].State.CompareAndSwap(shm.LifeLive, shm.LifeDone)
		if s.self == ServerSlot {
			s.v.Hdr.State.CompareAndSwap(shm.SegReady, shm.SegShutdown)
			for _, sem := range s.sems {
				sem.Poison()
			}
		}
	})
}

// Stats snapshots the recovery counters.
func (s *ProcSystem) Stats() ProcStats {
	return ProcStats{
		PeerDeaths:   s.peerDeaths.Load(),
		WakeRescues:  s.wakeRescues.Load(),
		OrphanMsgs:   s.orphanMsgs.Load(),
		OrphanBlocks: s.orphanBlocks.Load(),
		Epoch:        s.v.Hdr.Epoch.Load(),
		DeadSlot:     s.v.Hdr.DeadSlot.Load(),
	}
}

// View exposes the segment view (post-mortem audits, tests).
func (s *ProcSystem) View() *shm.SegView { return s.v }

// SegDead reports whether the segment has been declared dead (server
// death observed by any sweeper).
func (s *ProcSystem) SegDead() bool { return s.v.Hdr.State.Load() == shm.SegDead }

// newActor builds this participant's actor over the semaphore table.
func (s *ProcSystem) newActor() *ProcActor {
	return &ProcActor{
		sems:       s.sems,
		SpinIters:  s.opts.SpinIters,
		SleepScale: s.opts.SleepScale,
		M:          s.opts.M,
		Obs:        s.opts.Obs,
	}
}

// procPort is an endpoint over segment lanes; it implements core.Port,
// core.PortState and core.PortHealth. An enqueue endpoint has enq set;
// a dequeue endpoint has deq set (the server's receive endpoint holds
// every request lane and round-robins). slot/sem name the consumer's
// wake state, whichever side of the port this process is.
type procPort struct {
	v    *shm.SegView
	pool *shm.SegPool
	enq  *shm.Lane
	deq  []*shm.Lane
	slot *shm.SemSlot
	sem  core.SemID
	peer int // lifetable slot of the peer (-1: the server's many clients)
	rr   int
}

// TryEnqueue implements core.Port: allocate a node from the shared
// pool, write the message, publish the ref. A full lane or an exhausted
// pool is queue-full (the protocols sleep and retry).
func (p *procPort) TryEnqueue(m core.Msg) bool {
	ref, ok := p.pool.Alloc()
	if !ok {
		return false
	}
	p.v.Arena().Node(ref).SetMsg(m)
	if !p.enq.TryPush(ref) {
		p.pool.Free(ref)
		return false
	}
	return true
}

// TryDequeue implements core.Port, round-robinning over the endpoint's
// lanes so no client starves the server's receive loop.
func (p *procPort) TryDequeue() (core.Msg, bool) {
	n := len(p.deq)
	for i := 0; i < n; i++ {
		l := p.deq[(p.rr+i)%n]
		r, ok := l.TryPop()
		if !ok {
			continue
		}
		p.rr = (p.rr + i + 1) % n
		m := p.v.Arena().Node(r).Msg()
		p.pool.Free(r)
		return m, true
	}
	return core.Msg{}, false
}

// Empty implements core.Port (the BSLS poll).
func (p *procPort) Empty() bool {
	if p.deq == nil {
		return p.enq.Empty()
	}
	for _, l := range p.deq {
		if !l.Empty() {
			return false
		}
	}
	return true
}

// SetAwake implements core.Port.
func (p *procPort) SetAwake(v bool) {
	if v {
		p.slot.Awake.Store(1)
	} else {
		p.slot.Awake.Store(0)
	}
}

// TASAwake implements core.Port.
func (p *procPort) TASAwake() bool { return p.slot.Awake.Swap(1) != 0 }

// Sem implements core.Port.
func (p *procPort) Sem() core.SemID { return p.sem }

func (p *procPort) peerDead() bool {
	return p.peer >= 0 && p.v.Life[p.peer].State.Load() == shm.LifeDead
}

// Refusing implements core.PortState. Cross-process shutdown is
// single-phase (the segment flips straight to Shutdown/Dead), so
// Refusing and Closed coincide; a port whose specific peer died is
// refused even while the segment as a whole stays up.
func (p *procPort) Refusing() bool {
	return p.v.Hdr.State.Load() >= shm.SegShutdown || p.peerDead()
}

// Closed implements core.PortState.
func (p *procPort) Closed() bool { return p.Refusing() }

// PeerDead implements core.PortHealth.
func (p *procPort) PeerDead() bool {
	return p.v.Hdr.State.Load() == shm.SegDead || p.peerDead()
}

// ProcActor implements core.Actor/core.CtxActor over the futex
// semaphore table. It is Actor with the process-local pieces swapped
// out: ProcSem for Semaphore, sched_yield for runtime.Gosched.
type ProcActor struct {
	sems       []*ProcSem
	SpinIters  int
	SleepScale time.Duration
	M          *metrics.Proc
	Obs        obs.Hook
	spinSink   int64
}

// Yield implements core.Actor with a real sched_yield: the peer that
// should run lives in another process.
func (a *ProcActor) Yield() {
	if a.M != nil {
		a.M.Yields.Add(1)
	}
	osYield()
}

// BusyWait implements core.Actor.
func (a *ProcActor) BusyWait() {
	if a.SpinIters > 0 {
		a.spin(a.SpinIters)
		return
	}
	osYield()
}

// PollDelay implements core.Actor.
func (a *ProcActor) PollDelay() { a.BusyWait() }

// SleepSec implements core.Actor.
func (a *ProcActor) SleepSec(s int) {
	if a.M != nil {
		a.M.Sleeps.Add(1)
	}
	d := time.Duration(s) * time.Second
	if a.SleepScale > 0 {
		d = time.Duration(s) * a.SleepScale
	}
	time.Sleep(d)
}

// P implements core.Actor; block accounting mirrors Actor.P.
func (a *ProcActor) P(id core.SemID) {
	if a.M != nil {
		a.M.SemP.Add(1)
	}
	if !a.Obs.Enabled() {
		if a.sems[id].P() && a.M != nil {
			a.M.Blocks.Add(1)
		}
		return
	}
	t0 := time.Now()
	if a.sems[id].P() {
		d := time.Since(t0)
		if a.M != nil {
			a.M.Blocks.Add(1)
		}
		a.Obs.Sleep(d)
		a.Obs.Note(obs.EvBlock, d.Nanoseconds())
	}
}

// V implements core.Actor.
func (a *ProcActor) V(id core.SemID) {
	if a.M != nil {
		a.M.SemV.Add(1)
	}
	if a.sems[id].V() {
		if a.M != nil {
			a.M.Wakeups.Add(1)
		}
		a.Obs.Note(obs.EvWake, int64(id))
	}
}

// Handoff implements core.Actor: no cross-process hand-off primitive
// exists, so the hint degrades to sched_yield — which at least gives
// the scheduler the chance to run the peer process.
func (a *ProcActor) Handoff(target int) { a.Yield() }

// PCtx implements core.CtxActor.
func (a *ProcActor) PCtx(ctx context.Context, id core.SemID) error {
	if a.M != nil {
		a.M.SemP.Add(1)
	}
	t0 := time.Time{}
	if a.Obs.Enabled() {
		t0 = time.Now()
	}
	slept, err := a.sems[id].PCtx(ctx)
	if slept {
		if a.M != nil {
			a.M.Blocks.Add(1)
		}
		if !t0.IsZero() {
			d := time.Since(t0)
			a.Obs.Sleep(d)
			a.Obs.Note(obs.EvBlock, d.Nanoseconds())
		}
	}
	a.countCtxErr(err)
	return err
}

// SleepCtx implements core.CtxActor.
func (a *ProcActor) SleepCtx(ctx context.Context, s int) error {
	if a.M != nil {
		a.M.Sleeps.Add(1)
	}
	d := time.Duration(s) * time.Second
	if a.SleepScale > 0 {
		d = time.Duration(s) * a.SleepScale
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		a.countCtxErr(ctx.Err())
		return ctx.Err()
	}
}

// countCtxErr mirrors Actor.countCtxErr.
func (a *ProcActor) countCtxErr(err error) {
	if err == nil {
		return
	}
	switch err {
	case context.DeadlineExceeded:
		if a.M != nil {
			a.M.Timeouts.Add(1)
		}
		a.Obs.Note(obs.EvTimeout, 0)
	case context.Canceled:
		if a.M != nil {
			a.M.Cancels.Add(1)
		}
		a.Obs.Note(obs.EvCancel, 0)
	}
}

//go:noinline
func (a *ProcActor) spin(n int) {
	acc := a.spinSink
	for i := 0; i < n; i++ {
		acc += int64(i)
	}
	a.spinSink = acc
}

var (
	_ core.Port       = (*procPort)(nil)
	_ core.PortState  = (*procPort)(nil)
	_ core.PortHealth = (*procPort)(nil)
	_ core.Actor      = (*ProcActor)(nil)
	_ core.CtxActor   = (*ProcActor)(nil)
)

// ProcServer is a core.Server attached to a segment, plus its
// participant state. Close detaches (and shuts the segment down).
type ProcServer struct {
	*core.Server
	Sys *ProcSystem
}

// Close detaches the server from the segment.
func (s *ProcServer) Close() { s.Sys.Close() }

// ProcClient is a core.Client attached to a segment.
type ProcClient struct {
	*core.Client
	Sys *ProcSystem
}

// Close detaches the client from the segment.
func (c *ProcClient) Close() { c.Sys.Close() }

// AttachProcServer claims the server slot of a mapped segment and
// builds the server handle over it: the receive endpoint round-robins
// every request lane, and each reply endpoint targets one client's
// reply lane and wake slot.
func AttachProcServer(seg *shm.Seg, opts ProcOptions) (*ProcServer, error) {
	sys, err := attachProc(seg, ServerSlot, opts)
	if err != nil {
		return nil, err
	}
	v := sys.v
	n := v.Clients()
	deq := make([]*shm.Lane, n)
	for i := range deq {
		deq[i] = v.ReqLane(i)
	}
	rcv := &procPort{
		v: v, pool: v.Pool, deq: deq,
		slot: &v.Sems[ServerSlot], sem: core.SemID(ServerSlot), peer: -1,
	}
	replies := make([]core.Port, n)
	for i := range replies {
		replies[i] = &procPort{
			v: v, pool: v.Pool, enq: v.ReplyLane(i),
			slot: &v.Sems[1+i], sem: core.SemID(1 + i), peer: 1 + i,
		}
	}
	srv := &core.Server{
		Alg: opts.Alg, MaxSpin: opts.MaxSpin,
		Rcv: rcv, Replies: replies, A: sys.newActor(),
		M: opts.M, Obs: opts.Obs,
	}
	if v.Blocks != nil {
		// Lease owner = lifetable slot, so the sweeper can attribute and
		// reclaim a dead participant's payload blocks.
		srv.Blocks, srv.Owner = v.Blocks, uint32(ServerSlot)
	}
	return &ProcServer{Server: srv, Sys: sys}, nil
}

// AttachProcClient claims client id's slot of a mapped segment and
// builds the client handle over it.
func AttachProcClient(seg *shm.Seg, id int, opts ProcOptions) (*ProcClient, error) {
	if vv, err := seg.View(); err != nil {
		return nil, err
	} else if id < 0 || id >= vv.Clients() {
		return nil, fmt.Errorf("livebind: client id %d out of range [0,%d)", id, vv.Clients())
	}
	sys, err := attachProc(seg, 1+id, opts)
	if err != nil {
		return nil, err
	}
	v := sys.v
	srvPort := &procPort{
		v: v, pool: v.Pool, enq: v.ReqLane(id),
		slot: &v.Sems[ServerSlot], sem: core.SemID(ServerSlot), peer: ServerSlot,
	}
	rcv := &procPort{
		v: v, pool: v.Pool, deq: []*shm.Lane{v.ReplyLane(id)},
		slot: &v.Sems[1+id], sem: core.SemID(1 + id), peer: ServerSlot,
	}
	cl := &core.Client{
		ID: int32(id), Alg: opts.Alg, MaxSpin: opts.MaxSpin,
		Srv: srvPort, Rcv: rcv, A: sys.newActor(),
		M: opts.M, Obs: opts.Obs,
	}
	if v.Blocks != nil {
		cl.Blocks, cl.Owner = v.Blocks, uint32(1+id)
	}
	return &ProcClient{Client: cl, Sys: sys}, nil
}
